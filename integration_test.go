package osdc

// Repository-level integration tests. The scenario registry drives the
// broad coverage — every registered scenario must run and render — while
// the tests below it keep the assertions that need structured results: the
// Figure 1 HTTP walk hop by hop and Table 3's values against the paper.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"osdc/internal/core"
	"osdc/internal/experiments"
	"osdc/internal/iaas"
	"osdc/internal/scenario"
	"osdc/internal/sim"
	"osdc/internal/tukey"
)

// TestAllScenariosRunAndRender iterates the registry: every scenario must
// run from a small seed, produce metrics and a table, and satisfy its
// scenario-specific spot checks. New scenarios get the generic coverage
// for free; add a checks entry only when there is something extra to pin.
func TestAllScenariosRunAndRender(t *testing.T) {
	checks := map[string]func(t *testing.T, r scenario.Result){
		"table1": func(t *testing.T, r scenario.Result) {
			if !strings.Contains(r.Table, "Commercial CSP") {
				t.Fatal("table 1 format")
			}
			if r.Metrics["science-elephant-share"] < 0.9 {
				t.Fatalf("science traffic lost its elephants: %v", r.Metrics)
			}
		},
		"table2": func(t *testing.T, r scenario.Result) {
			if !strings.Contains(r.Table, "OCC-Y") {
				t.Fatal("table 2 format")
			}
		},
		"table3": func(t *testing.T, r scenario.Result) {
			if !strings.Contains(r.Table, "udr (no encryption)") {
				t.Fatalf("table 3 format:\n%s", r.Table)
			}
		},
		"fig2": func(t *testing.T, r scenario.Result) {
			if r.Metrics["flood-tiles"] == 0 || !strings.Contains(r.Table, "≈") {
				t.Fatalf("no flood in figure 2 output:\n%s", r.Table)
			}
			if r.Metrics["map-locality"] < 0.5 {
				t.Fatalf("map locality %.2f suspiciously low", r.Metrics["map-locality"])
			}
		},
		"fig3": func(t *testing.T, r scenario.Result) {
			for _, cluster := range []string{"OSDC-Adler", "OSDC-Sullivan", "OSDC-Root", "OCC-Y", "OCC-Matsu"} {
				if !strings.Contains(r.Table, cluster) {
					t.Fatalf("figure 3 missing %s:\n%s", cluster, r.Table)
				}
			}
			if strings.Count(r.Table, "solid") != 3 || strings.Count(r.Table, "partial") != 2 {
				t.Fatalf("figure 3 arrows wrong:\n%s", r.Table)
			}
		},
		"cost": func(t *testing.T, r scenario.Result) {
			if !strings.Contains(r.Table, "crossover") {
				t.Fatal("cost format")
			}
		},
		"provision": func(t *testing.T, r scenario.Result) {
			if !strings.Contains(r.Table, "speedup") {
				t.Fatal("provision format")
			}
			if r.Metrics["speedup"] <= 1 {
				t.Fatalf("automation not faster than manual: %v", r.Metrics)
			}
		},
		"mixed-workload": func(t *testing.T, r scenario.Result) {
			if r.Metrics["vm-core-hours"] <= 0 || r.Metrics["elephant-mbit"] <= 0 {
				t.Fatalf("mixed workload left a subsystem idle: %v", r.Metrics)
			}
		},
		"wan-contention": func(t *testing.T, r scenario.Result) {
			if f := r.Metrics["fairness[4-flows]"]; f < 0.8 {
				t.Fatalf("4 identical UDT flows shared unfairly: %.3f", f)
			}
			if r.Metrics["utilization[8-flows]"] < r.Metrics["utilization[1-flows]"] {
				t.Fatalf("more flows should fill the pipe during ramp-up: %v", r.Metrics)
			}
		},
	}

	if len(scenario.Names()) < 11 {
		t.Fatalf("registry holds %v, want the nine paper scenarios plus the new ones", scenario.Names())
	}
	for _, s := range scenario.All() {
		t.Run(s.Name(), func(t *testing.T) {
			r, err := s.Run(5)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Metrics) == 0 {
				t.Fatalf("%s returned no metrics", s.Name())
			}
			if r.Table == "" {
				t.Fatalf("%s returned no table", s.Name())
			}
			if chk := checks[s.Name()]; chk != nil {
				chk(t, r)
			}
		})
	}
}

// TestFigure1TukeyEndToEnd walks the Figure 1 arrows with real HTTP at
// every hop: user → Tukey Console → middleware (auth + translation) →
// {OpenStack-dialect Adler, Eucalyptus-dialect Sullivan} → usage/billing.
// The fig1 scenario runs the same walk; this test keeps the per-hop
// assertions on status codes and dialect translation.
func TestFigure1TukeyEndToEnd(t *testing.T) {
	f, err := core.New(core.Options{Seed: 42, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Expose both clouds' native APIs over live HTTP.
	novaSrv := httptest.NewServer(&iaas.NovaAPI{Cloud: f.Adler})
	defer novaSrv.Close()
	eucaSrv := httptest.NewServer(&iaas.EucaAPI{Cloud: f.Sullivan})
	defer eucaSrv.Close()
	f.Tukey.AttachCloud(tukey.CloudConfig{Name: core.ClusterAdler, Stack: "openstack", Endpoint: novaSrv.URL})
	f.Tukey.AttachCloud(tukey.CloudConfig{Name: core.ClusterSullivan, Stack: "eucalyptus", Endpoint: eucaSrv.URL})

	// Console on top of the middleware + biller + catalog.
	consoleSrv := httptest.NewServer(&tukey.Console{MW: f.Tukey, Biller: f.Biller, Catalog: f.Catalog})
	defer consoleSrv.Close()

	f.EnrollResearcher("allison", "s3cret")
	f.Adler.SetQuota("allison", iaas.Quota{MaxInstances: 10, MaxCores: 64})
	f.Sullivan.SetQuota("allison", iaas.Quota{MaxInstances: 10, MaxCores: 64})

	post := func(path, body string, token string) *http.Response {
		req, err := http.NewRequest("POST", consoleSrv.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("X-Tukey-Session", token)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	get := func(path, token string) *http.Response {
		req, _ := http.NewRequest("GET", consoleSrv.URL+path, nil)
		req.Header.Set("X-Tukey-Session", token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// 1. Log in through the Shibboleth flow.
	resp := post("/login", `{"provider":"shibboleth","username":"allison","secret":"s3cret"}`, "")
	if resp.StatusCode != 200 {
		t.Fatalf("login status %d", resp.StatusCode)
	}
	var login struct {
		Token string `json:"token"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&login); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// 2. Provision one VM on each cloud stack via the console.
	for _, cloud := range []string{core.ClusterAdler, core.ClusterSullivan} {
		resp = post("/console/launch", `{"cloud":"`+cloud+`","name":"fig1-vm","flavor":"m1.large"}`, login.Token)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("launch on %s: status %d", cloud, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// 3. The aggregated list shows both, tagged by cloud, in OpenStack form.
	resp = get("/console/instances", login.Token)
	var list struct {
		Servers []tukey.TaggedServer `json:"servers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Servers) != 2 {
		t.Fatalf("aggregated servers = %d, want 2", len(list.Servers))
	}
	clouds := map[string]bool{}
	for _, s := range list.Servers {
		clouds[s.Cloud] = true
		if s.Status != "BUILD" && s.Status != "ACTIVE" {
			t.Fatalf("server status %q not in OpenStack form", s.Status)
		}
	}
	if !clouds[core.ClusterAdler] || !clouds[core.ClusterSullivan] {
		t.Fatalf("missing a cloud in aggregation: %v", clouds)
	}

	// 4. Metering: run the simulated clock for 3 hours, check usage via the
	// console (8 cores × 3 h = 24 core-hours).
	f.Engine.RunFor(3 * sim.Hour)
	resp = get("/console/usage", login.Token)
	var usage struct {
		CoreHours float64 `json:"core_hours"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&usage); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if usage.CoreHours < 23 || usage.CoreHours > 25 {
		t.Fatalf("core-hours = %v, want ~24", usage.CoreHours)
	}

	// 5. Public datasets module reachable from the same session.
	resp = get("/console/datasets?q=genomes", login.Token)
	var ds struct {
		Datasets []struct {
			Name string `json:"Name"`
		} `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ds); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ds.Datasets) == 0 {
		t.Fatal("dataset search empty")
	}
}

func TestTable3ShapeAgainstPaper(t *testing.T) {
	got := experiments.Table3(2012)
	want := experiments.PaperTable3()
	if len(got) != len(want) {
		t.Fatalf("rows = %d", len(got))
	}
	for i := range got {
		g, w := got[i], want[i]
		// Within 15% of the paper's measured throughput on both sizes.
		for _, pair := range [][2]float64{{g.Mbit108, w.Mbit108}, {g.Mbit1T, w.Mbit1T}} {
			ratio := pair[0] / pair[1]
			if ratio < 0.85 || ratio > 1.15 {
				t.Errorf("%s: measured %.0f vs paper %.0f mbit/s (ratio %.2f)",
					g.Config, pair[0], pair[1], ratio)
			}
		}
		if diff := g.LLR108 - w.LLR108; diff > 0.06 || diff < -0.06 {
			t.Errorf("%s: LLR %.2f vs paper %.2f", g.Config, g.LLR108, w.LLR108)
		}
	}
}
