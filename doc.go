// Package osdc is a full reproduction of "The Design of a Community
// Science Cloud: The Open Science Data Cloud Perspective" (Grossman et
// al., SC Companion 2012) as a Go library.
//
// The public surface lives in the command-line tools (cmd/), the runnable
// examples (examples/), and the benchmark harness at this repository root,
// which regenerates every table and figure in the paper through the
// scenario registry (internal/scenario): cmd/osdc-bench -list enumerates
// the experiments, -seeds N fans a sweep over a worker pool. The
// implementation packages are under internal/; see DESIGN.md for the
// system inventory and scenario-subsystem architecture and EXPERIMENTS.md
// for paper-vs-measured results.
package osdc
