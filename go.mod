module osdc

go 1.24
