package osdc

// Service-layer concurrency stress: concurrent Console traffic (login,
// launch, list, usage, datasets, status, terminate) plus direct reads of
// the billing, monitoring and catalog services, all while a wall-clock
// driver advances the simulation engine underneath. This test exists to be
// run with -race (CI does): it pins the locking added to sim, iaas, tukey,
// billing, monitor and datasets.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"osdc/internal/core"
	"osdc/internal/iaas"
	"osdc/internal/sim"
	"osdc/internal/tukey"
)

func TestConsoleConcurrencyStress(t *testing.T) {
	f, err := core.New(core.Options{Seed: 99, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	novaSrv := httptest.NewServer(&iaas.NovaAPI{Cloud: f.Adler})
	defer novaSrv.Close()
	eucaSrv := httptest.NewServer(&iaas.EucaAPI{Cloud: f.Sullivan})
	defer eucaSrv.Close()
	f.Tukey.AttachCloud(tukey.CloudConfig{Name: core.ClusterAdler, Stack: "openstack", Endpoint: novaSrv.URL})
	f.Tukey.AttachCloud(tukey.CloudConfig{Name: core.ClusterSullivan, Stack: "eucalyptus", Endpoint: eucaSrv.URL})
	consoleSrv := httptest.NewServer(&tukey.Console{MW: f.Tukey, Biller: f.Biller, Catalog: f.Catalog})
	defer consoleSrv.Close()

	const workers = 6
	for i := 0; i < workers; i++ {
		u := fmt.Sprintf("stress%d", i)
		f.EnrollResearcher(u, "pw")
		f.Adler.SetQuota(u, iaas.Quota{MaxInstances: 10, MaxCores: 32})
		f.Sullivan.SetQuota(u, iaas.Quota{MaxInstances: 10, MaxCores: 32})
	}

	// The clock driver advances minute polls, monitor sweeps and VM boot
	// timers while the workers hammer the console.
	driver := sim.StartDriver(f.Engine, 30_000, 2*time.Millisecond)
	defer driver.Stop()

	var badStatus atomic.Int64
	var wg sync.WaitGroup
	var httpWG sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		httpWG.Add(1)
		go func() {
			defer wg.Done()
			defer httpWG.Done()
			user := fmt.Sprintf("stress%d", i)
			resp, err := http.Post(consoleSrv.URL+"/login", "application/json",
				strings.NewReader(`{"provider":"shibboleth","username":"`+user+`","secret":"pw"}`))
			if err != nil {
				badStatus.Add(1)
				return
			}
			var login struct {
				Token string `json:"token"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&login)
			resp.Body.Close()

			do := func(method, path, body string) {
				req, _ := http.NewRequest(method, consoleSrv.URL+path, strings.NewReader(body))
				req.Header.Set("X-Tukey-Session", login.Token)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					badStatus.Add(1)
					return
				}
				if resp.StatusCode >= 500 {
					badStatus.Add(1)
				}
				resp.Body.Close()
			}
			cloud := core.ClusterAdler
			if i%2 == 1 {
				cloud = core.ClusterSullivan
			}
			for it := 0; it < 10; it++ {
				do("POST", "/console/launch", fmt.Sprintf(`{"cloud":%q,"name":"s%d-%d","flavor":"m1.small"}`, cloud, i, it))
				do("GET", "/console/instances", "")
				do("GET", "/console/usage", "")
				do("GET", "/console/datasets?q=survey", "")
				do("GET", "/console/status", "")
			}
		}()
	}
	// A reader goroutine hits the service APIs directly — the paths the
	// public status page and operator tooling use.
	stopReads := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopReads:
				return
			default:
				_ = f.Biller.Invoices("")
				_ = f.Biller.Cycle()
				_ = f.UsageMon.PublicStatus()
				_ = f.Nagios.Alerts()
				_ = f.Catalog.Search("genomics")
				_ = f.Adler.Instances("")
				_ = f.Tukey.SessionCount()
			}
		}
	}()

	// The reader runs for as long as the HTTP workers do, so every direct
	// read path stays raced against the mutators for the whole window.
	go func() {
		httpWG.Wait()
		close(stopReads)
	}()
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stress workers wedged")
	}
	if n := badStatus.Load(); n != 0 {
		t.Fatalf("%d requests failed or returned 5xx under concurrency", n)
	}
	if f.Engine.Now() == 0 {
		t.Fatal("driver never advanced the clock")
	}
}
