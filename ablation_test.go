package osdc

// Ablation benchmarks for the design choices DESIGN.md calls out: what
// happens to Table 3's story as path loss, socket buffers, and pipeline
// concurrency vary. These are not paper artifacts; they probe the model's
// sensitivity and the claims' robustness.

import (
	"fmt"
	"testing"

	"osdc/internal/dfs"
	"osdc/internal/provision"
	"osdc/internal/sim"
	"osdc/internal/simdisk"
	"osdc/internal/tcpmodel"
	"osdc/internal/transport"
	"osdc/internal/udt"
)

// BenchmarkAblationLossSweep shows the congestion-control contrast that
// buffer caps hide on the clean production path: as residual loss rises,
// Reno collapses like 1/sqrt(p) while UDT's DAIMD degrades gently. This is
// the regime where the UDT design (by the paper's own authors) earns its
// keep.
func BenchmarkAblationLossSweep(b *testing.B) {
	base := transport.Path{BandwidthBps: 10e9, RTT: 0.104, MSS: transport.DefaultMSS}
	for _, loss := range []float64{1e-7, 1e-6, 1e-5, 1e-4} {
		loss := loss
		b.Run(fmt.Sprintf("p=%.0e", loss), func(b *testing.B) {
			path := base
			path.Loss = loss
			var udtMb, tcpMb float64
			for i := 0; i < b.N; i++ {
				rng := sim.NewRNG(uint64(i) + 1)
				u := transport.Simulate(rng, path, udt.NewRateControl(path), 5<<30, transport.Caps{})
				r := transport.Simulate(rng, path, tcpmodel.NewReno(path, 0), 5<<30, transport.Caps{})
				udtMb, tcpMb = u.ThroughputMbit(), r.ThroughputMbit()
			}
			b.ReportMetric(udtMb, "udt-mbit/s")
			b.ReportMetric(tcpMb, "tcp-mbit/s")
			b.ReportMetric(udtMb/tcpMb, "udt/tcp-ratio")
		})
	}
}

// BenchmarkAblationSocketBuffer sweeps the TCP window cap: the knob that
// pins plain rsync at ~405 Mbit/s in Table 3. Doubling the 2012 default
// buffer would have roughly doubled rsync's row — the "TCP tuning" fix the
// UDT approach sidesteps.
func BenchmarkAblationSocketBuffer(b *testing.B) {
	path := transport.Path{BandwidthBps: 10e9, RTT: 0.104, Loss: 2e-9, MSS: transport.DefaultMSS}
	for _, bufMB := range []float64{1, 2.5, 5.27, 10, 16} {
		bufMB := bufMB
		b.Run(fmt.Sprintf("buf=%.2fMB", bufMB), func(b *testing.B) {
			var mb float64
			for i := 0; i < b.N; i++ {
				rng := sim.NewRNG(uint64(i) + 1)
				r := transport.Simulate(rng, path, tcpmodel.NewReno(path, int(bufMB*1e6)), 10<<30, transport.Caps{})
				mb = r.ThroughputMbit()
			}
			b.ReportMetric(mb, "mbit/s")
		})
	}
}

// BenchmarkAblationInstallSlots sweeps the provisioning pipeline's
// concurrent-install limit (apt-mirror bandwidth): the §7.3 "much less
// than a day" claim holds even with a badly undersized mirror.
func BenchmarkAblationInstallSlots(b *testing.B) {
	for _, slots := range []int{2, 4, 8, 16, 39} {
		slots := slots
		b.Run(fmt.Sprintf("slots=%d", slots), func(b *testing.B) {
			var hours float64
			for i := 0; i < b.N; i++ {
				e := sim.NewEngine(uint64(i) + 1)
				p := provision.NewPipeline(e, provision.DefaultDurations(), slots, 0)
				res := provision.ProvisionRack(e, p, 39)
				hours = res.Duration / 3600
			}
			b.ReportMetric(hours, "rack-hours")
			if hours >= 24 {
				b.Fatalf("rack took %.1f h with %d slots; claim broken", hours, slots)
			}
		})
	}
}

// BenchmarkAblationDFSReplication measures the raw-capacity overhead and
// failure tolerance of replica-1/2/3 volumes holding the same logical data
// — the §3.2 sustainability trade (the OSDC ran replica 2 plus off-site
// backup rather than replica 3).
func BenchmarkAblationDFSReplication(b *testing.B) {
	for _, replica := range []int{1, 2, 3} {
		replica := replica
		b.Run(fmt.Sprintf("replica=%d", replica), func(b *testing.B) {
			var overhead, survival float64
			for i := 0; i < b.N; i++ {
				e := sim.NewEngine(uint64(i) + 1)
				bricks := make([]*dfs.Brick, 6)
				for j := range bricks {
					d := simdisk.New(e, fmt.Sprintf("d%d", j), 3072e6, 1136e6, 1<<40)
					bricks[j] = dfs.NewBrick(fmt.Sprintf("b%d", j), "n", d)
				}
				vol, err := dfs.NewVolume(e, "v", replica, dfs.Version33, bricks)
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < 120; k++ {
					if err := vol.Write(fmt.Sprintf("/f%d", k), make([]byte, 4096)); err != nil {
						b.Fatal(err)
					}
				}
				overhead = float64(vol.RawBytes()) / float64(vol.UsedBytes())
				// Kill one brick; count surviving reads.
				vol.Bricks()[0].SetOnline(false)
				ok := 0
				for k := 0; k < 120; k++ {
					if _, err := vol.Read(fmt.Sprintf("/f%d", k)); err == nil {
						ok++
					}
				}
				survival = float64(ok) / 120 * 100
			}
			b.ReportMetric(overhead, "raw/logical")
			b.ReportMetric(survival, "survival-%")
		})
	}
}
