package osdc

// Repository-root benchmarks. BenchmarkScenarios drives every registered
// scenario through the registry — one sub-benchmark per experiment, custom
// metrics carrying the paper-comparable numbers — so a new scenario gets a
// benchmark for free. The remaining benchmarks are the micro-level pieces
// the scenarios are built from (the rsync delta engine, the real ciphers,
// per-config Table 3 transfers, a month of metering). Run with:
//
//	go test -bench=. -benchmem

import (
	"strings"
	"testing"

	"osdc/internal/billing"
	"osdc/internal/cipher"
	"osdc/internal/cloudapi"
	"osdc/internal/experiments"
	"osdc/internal/iaas"
	"osdc/internal/scenario"
	"osdc/internal/sim"
	"osdc/internal/udr"
)

// BenchmarkScenarios regenerates every table and figure via the registry,
// reporting each scenario's metrics from the last iteration.
func BenchmarkScenarios(b *testing.B) {
	for _, s := range scenario.All() {
		b.Run(s.Name(), func(b *testing.B) {
			var last scenario.Result
			for i := 0; i < b.N; i++ {
				var err error
				last, err = s.Run(uint64(i) + 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			if len(last.Metrics) == 0 {
				b.Fatalf("%s returned no metrics", s.Name())
			}
			for _, k := range last.MetricNames() {
				// ReportMetric rejects units containing whitespace; metric
				// keys like "mbit-108GB[udr (no encryption)]" carry spaces.
				b.ReportMetric(last.Metrics[k], strings.ReplaceAll(k, " ", "_"))
			}
		})
	}
}

// BenchmarkScenarioSweep measures the multi-seed runner itself: 16 seeds of
// the provisioning scenario fanned over the worker pool.
func BenchmarkScenarioSweep(b *testing.B) {
	s, ok := scenario.Get("provision")
	if !ok {
		b.Fatal("provision scenario not registered")
	}
	for i := 0; i < b.N; i++ {
		sr, err := scenario.Sweep(s, scenario.Seeds(uint64(i)+1, 16), 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(sr.Metrics) == 0 {
			b.Fatal("sweep produced no aggregates")
		}
	}
}

// BenchmarkTable3Transfers regenerates the headline Table 3: one
// sub-benchmark per tool/cipher row, reporting mbit/s and LLR for the
// 108 GB dataset (the 1.1 TB column tracks it within a few percent; the
// full matrix is in cmd/osdc-bench -exp table3).
func BenchmarkTable3Transfers(b *testing.B) {
	path := experiments.ChicagoLVOCPath(2012)
	for _, cfg := range udr.Table3Configs() {
		cfg := cfg
		b.Run(cfg.String(), func(b *testing.B) {
			var mbit, llr float64
			for i := 0; i < b.N; i++ {
				rng := sim.NewRNG(uint64(i) + 7)
				res, caps := udr.Transfer(rng, cfg, path, 108<<30)
				mbit, llr = res.ThroughputMbit(), res.LLR(caps)
			}
			b.ReportMetric(mbit, "mbit/s")
			b.ReportMetric(llr, "LLR")
		})
	}
}

// BenchmarkTable3RsyncDeltaAlgorithm measures the real rsync rolling-
// checksum engine that gives UDR its interface (CPU-bound component of
// Table 3's tools).
func BenchmarkTable3RsyncDeltaAlgorithm(b *testing.B) {
	old := make([]byte, 4<<20)
	for i := range old {
		old[i] = byte(i * 31)
	}
	data := append([]byte(nil), old...)
	copy(data[2<<20:], []byte("EDITEDITEDIT"))
	sigs := udr.Signatures(old, udr.DefaultBlockSize)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := udr.ComputeDelta(sigs, udr.DefaultBlockSize, data)
		if d.LiteralBytes() > 4096 {
			b.Fatal("delta exploded")
		}
	}
}

// BenchmarkCipherThroughput measures the real ciphers backing Table 3's
// encrypted rows.
func BenchmarkCipherThroughput(b *testing.B) {
	buf := make([]byte, 1<<20)
	for _, name := range []cipher.Name{cipher.Blowfish, cipher.TripleDES} {
		name := name
		b.Run(string(name), func(b *testing.B) {
			s, err := cipher.NewStream(name, []byte("k"), []byte("iv"))
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(buf)))
			for i := 0; i < b.N; i++ {
				s.Process(buf, buf)
			}
		})
	}
}

// BenchmarkSection64Billing simulates a month of per-minute metering over
// the two utility clouds.
func BenchmarkSection64Billing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine(uint64(i) + 9)
		c := iaas.NewCloud(e, "adler", "openstack", "chicago")
		c.AddRack("r", 10)
		c.SetQuota("u", iaas.Quota{MaxInstances: 100, MaxCores: 1000})
		biller := billing.New(e, billing.DefaultRates(), []cloudapi.CloudAPI{cloudapi.NewLocal(c)}, nil)
		for v := 0; v < 8; v++ {
			if _, err := c.Launch("u", "vm", "m1.large", ""); err != nil {
				b.Fatal(err)
			}
		}
		e.RunFor(31 * sim.Day)
		invs := biller.Invoices("u")
		if len(invs) != 1 || invs[0].CoreHours < 20000 {
			b.Fatalf("invoice = %+v", invs)
		}
	}
}
