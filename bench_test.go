package osdc

// One benchmark per table and figure in the paper's evaluation, plus the
// §6.4/§7.3/§9.1 operational claims. Run with:
//
//	go test -bench=. -benchmem
//
// Reported custom metrics carry the paper-comparable numbers (mbit/s, LLR,
// crossover utilization, ...). cmd/osdc-bench prints the same results as
// formatted tables.

import (
	"testing"

	"osdc/internal/billing"
	"osdc/internal/cipher"
	"osdc/internal/experiments"
	"osdc/internal/iaas"
	"osdc/internal/sim"
	"osdc/internal/udr"
)

// BenchmarkTable1FlowCharacterization regenerates Table 1's commercial-vs-
// science traffic contrast.
func BenchmarkTable1FlowCharacterization(b *testing.B) {
	var r experiments.Table1Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table1(uint64(i) + 1)
	}
	b.ReportMetric(float64(r.Web.MedianBytes), "web-median-bytes")
	b.ReportMetric(float64(r.Science.MedianBytes)/(1<<30), "science-median-GB")
	b.ReportMetric(100*r.Science.ElephantShare, "science-elephant-%")
}

// BenchmarkTable2ResourceInventory regenerates Table 2 by building the
// federation and summing its inventory.
func BenchmarkTable2ResourceInventory(b *testing.B) {
	var cores int
	var disk int64
	for i := 0; i < b.N; i++ {
		rows, c, d, err := experiments.Table2(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("inventory rows")
		}
		cores, disk = c, d
	}
	b.ReportMetric(float64(cores), "cores")
	b.ReportMetric(float64(disk), "disk-TB")
}

// BenchmarkTable3Transfers regenerates the headline Table 3: one
// sub-benchmark per tool/cipher row, reporting mbit/s and LLR for the
// 108 GB dataset (the 1.1 TB column tracks it within a few percent; the
// full matrix is in cmd/osdc-bench -exp table3).
func BenchmarkTable3Transfers(b *testing.B) {
	path := experiments.ChicagoLVOCPath(2012)
	for _, cfg := range udr.Table3Configs() {
		cfg := cfg
		b.Run(cfg.String(), func(b *testing.B) {
			var mbit, llr float64
			for i := 0; i < b.N; i++ {
				rng := sim.NewRNG(uint64(i) + 7)
				res, caps := udr.Transfer(rng, cfg, path, 108<<30)
				mbit, llr = res.ThroughputMbit(), res.LLR(caps)
			}
			b.ReportMetric(mbit, "mbit/s")
			b.ReportMetric(llr, "LLR")
		})
	}
}

// BenchmarkTable3RsyncDeltaAlgorithm measures the real rsync rolling-
// checksum engine that gives UDR its interface (CPU-bound component of
// Table 3's tools).
func BenchmarkTable3RsyncDeltaAlgorithm(b *testing.B) {
	old := make([]byte, 4<<20)
	for i := range old {
		old[i] = byte(i * 31)
	}
	data := append([]byte(nil), old...)
	copy(data[2<<20:], []byte("EDITEDITEDIT"))
	sigs := udr.Signatures(old, udr.DefaultBlockSize)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := udr.ComputeDelta(sigs, udr.DefaultBlockSize, data)
		if d.LiteralBytes() > 4096 {
			b.Fatal("delta exploded")
		}
	}
}

// BenchmarkCipherThroughput measures the real ciphers backing Table 3's
// encrypted rows.
func BenchmarkCipherThroughput(b *testing.B) {
	buf := make([]byte, 1<<20)
	for _, name := range []cipher.Name{cipher.Blowfish, cipher.TripleDES} {
		name := name
		b.Run(string(name), func(b *testing.B) {
			s, err := cipher.NewStream(name, []byte("k"), []byte("iv"))
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(buf)))
			for i := 0; i < b.N; i++ {
				s.Process(buf, buf)
			}
		})
	}
}

// BenchmarkFigure2MatsuPipeline regenerates Figure 2: synthesize a
// Hyperion-like scene, calibrate L0→L1, tile, detect floods on the
// OCC-Matsu MapReduce cluster.
func BenchmarkFigure2MatsuPipeline(b *testing.B) {
	var r experiments.Figure2Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure2(uint64(i)+5, 256, 256)
		if err != nil {
			b.Fatal(err)
		}
		if r.FloodTiles == 0 {
			b.Fatal("no flood detected over Namibia scene")
		}
	}
	b.ReportMetric(float64(r.FloodTiles), "flood-tiles")
	b.ReportMetric(r.FloodKm2, "flood-km2")
	b.ReportMetric(100*r.Locality, "map-locality-%")
}

// BenchmarkSection9CostCrossover regenerates the §9.1 sweep.
func BenchmarkSection9CostCrossover(b *testing.B) {
	var r experiments.CostSweepResult
	for i := 0; i < b.N; i++ {
		r = experiments.CostSweep()
	}
	b.ReportMetric(100*r.Crossover, "crossover-%util")
}

// BenchmarkSection73Provisioning regenerates the §7.3 manual-vs-automated
// rack comparison.
func BenchmarkSection73Provisioning(b *testing.B) {
	var r experiments.ProvisionResult
	for i := 0; i < b.N; i++ {
		r = experiments.Provisioning(uint64(i) + 3)
	}
	b.ReportMetric(r.AutomatedDur/3600, "automated-hours")
	b.ReportMetric(r.ManualDur/86400, "manual-days")
	b.ReportMetric(r.Speedup, "speedup-x")
}

// BenchmarkSection64Billing simulates a month of per-minute metering over
// the two utility clouds.
func BenchmarkSection64Billing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine(uint64(i) + 9)
		c := iaas.NewCloud(e, "adler", "openstack", "chicago")
		c.AddRack("r", 10)
		c.SetQuota("u", iaas.Quota{MaxInstances: 100, MaxCores: 1000})
		biller := billing.New(e, billing.DefaultRates(), []*iaas.Cloud{c}, nil)
		for v := 0; v < 8; v++ {
			if _, err := c.Launch("u", "vm", "m1.large", ""); err != nil {
				b.Fatal(err)
			}
		}
		e.RunFor(31 * sim.Day)
		invs := biller.Invoices("u")
		if len(invs) != 1 || invs[0].CoreHours < 20000 {
			b.Fatalf("invoice = %+v", invs)
		}
	}
}
