// Command cloud-site runs ONE federation cloud as its own OS process: a
// private sim.Engine, the cloud built on it (OSDC-Adler's OpenStack dialect
// or OSDC-Sullivan's Eucalyptus dialect), and a cloudapi.Server exposing
// the native tenant API, the JSON operator plane, and the clock plane on
// one listener. This is the paper's actual deployment shape taken all the
// way: with tukey-server attaching the site by URL (-site name=url), the
// federation becomes a set of real processes speaking only HTTP.
//
// Clock modes:
//
//   - default (free-run): the site's engine tracks wall time at -speedup
//     simulated seconds per wall second, unsynchronized — fine alone, but
//     engines drift apart across a federation;
//   - -clock-follow push: the engine advances only toward targets POSTed
//     to /cloudapi/clock — how a console-side clock coordinator keeps this
//     site within a bounded skew of the console engine;
//   - -clock-follow <coordinator-url>: same follower, but this process
//     also polls the coordinator's clock endpoint every -clock-interval
//     and feeds the answer to the follower — for sites the coordinator
//     cannot reach inbound. A bare base URL polls <url>/clock
//     (tukey-server's endpoint); any URL with a path is polled verbatim,
//     so a peer site's /cloudapi/clock works too.
//
// Data plane: every cloud-site serves its dataset store on
// /cloudapi/datasets — a per-site inventory backed by a volume sized per
// Table 2 — so a console-side replication coordinator can place dataset
// replicas next to this site's compute over the wire.
//
// Auth: -operator-secret gates every mutating operator-plane request
// (clock targets, quotas, dataset replicas) behind a shared-secret header;
// the attaching tukey-server passes the same value. The same secret gates
// GET /metrics — the site's kernel and usage-cache series in Prometheus
// text form, what a console-side telemetry collector scrapes.
//
// Usage:
//
//	cloud-site -cloud OSDC-Adler [-addr 127.0.0.1:0] [-seed 1] [-scale 4]
//	           [-speedup 60] [-clock-follow push|<url>] [-clock-interval 50ms]
//	           [-operator-secret S]
//
// The line "cloud-site <name> (<stack>) listening on <url>" is printed to
// stdout once the listener is up, so a spawning process can scrape the
// ephemeral address.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"time"

	"osdc/internal/cloudapi"
	"osdc/internal/core"
	"osdc/internal/datastore"
	"osdc/internal/sim"
)

// options bundle the site knobs so tests can drive newCloudSite directly.
type options struct {
	cloud          string
	addr           string
	seed           uint64
	scale          int
	speedup        float64
	clockFollow    string        // "" = free-run, "push" = follow, else coordinator URL
	clockTick      time.Duration // follower tick / coordinator poll period
	operatorSecret string        // gates operator-plane writes when set
	shards         int           // kernel shard count (<= 1 = single engine)
}

// cloudSite is the assembled process: one cloudapi.Site (engine, clock
// source, listener) plus the optional coordinator poller.
type cloudSite struct {
	engine   *sim.Engine
	site     *cloudapi.Site
	url      string
	name     string
	stack    string
	follower *sim.Follower
	stopPoll chan struct{}
}

// newCloudSite builds the world and starts serving. It does not block.
// The site wiring (listener, server, clock-mode selection) is exactly
// cloudapi.StartSiteWithOptions — this binary only adds the process
// boundary and the pull-mode coordinator poller.
func newCloudSite(opt options) (*cloudSite, error) {
	if opt.scale < 1 {
		opt.scale = 4
	}
	if opt.clockTick <= 0 {
		opt.clockTick = 50 * time.Millisecond
	}
	set := sim.NewShardSet(opt.seed, opt.shards)
	e := set.Anchor()
	c := core.BuildCloud(e, opt.cloud, opt.scale)
	// The site's dataset store: its own volume on the private engine,
	// served on /cloudapi/datasets so a console-side replication
	// coordinator can place replicas here over the wire.
	vol, err := core.BuildDatasetVolume(e, opt.cloud)
	if err != nil {
		return nil, fmt.Errorf("cloud-site: %w", err)
	}
	store := datastore.NewStore(opt.cloud, core.SiteOf(opt.cloud), vol)

	siteOpts := cloudapi.SiteOptions{
		Clock: cloudapi.ClockFreeRun, Speedup: opt.speedup, Addr: opt.addr,
		Datasets: store, OperatorSecret: opt.operatorSecret,
	}
	if set.K() > 1 {
		siteOpts.Set = set
	}
	if opt.clockFollow != "" {
		// Follow mode: speedup 0 = jump to each published target; the
		// 2 ms default tick stays well under any sane sync interval.
		siteOpts.Clock, siteOpts.Speedup = cloudapi.ClockFollow, 0
	}
	site, err := cloudapi.StartSiteWithOptions(e, c, siteOpts)
	if err != nil {
		return nil, fmt.Errorf("cloud-site: %w", err)
	}
	s := &cloudSite{
		engine: e, site: site, url: site.URL,
		name: c.Name, stack: c.Stack, follower: site.Follower(),
	}
	if opt.clockFollow != "" && opt.clockFollow != "push" {
		poll, err := clockPollURL(opt.clockFollow)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.stopPoll = make(chan struct{})
		go s.pollCoordinator(poll, opt.clockTick)
	}
	return s, nil
}

// clockPollURL resolves the -clock-follow value to the URL polled for the
// coordinator's time: a bare base URL gets /clock appended.
func clockPollURL(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return "", fmt.Errorf("cloud-site: -clock-follow wants 'push' or a coordinator URL, got %q", raw)
	}
	if u.Path == "" || u.Path == "/" {
		u.Path = "/clock"
	}
	return u.String(), nil
}

// pollCoordinator pulls the coordinator's virtual time every tick and
// feeds it to the follower. Errors are logged and retried: a site that
// misses syncs holds its clock still rather than drifting.
func (s *cloudSite) pollCoordinator(pollURL string, every time.Duration) {
	client := &http.Client{Timeout: cloudapi.DefaultTimeout}
	tick := time.NewTicker(every)
	defer tick.Stop()
	fails := 0
	for {
		select {
		case <-s.stopPoll:
			return
		case <-tick.C:
			resp, err := client.Get(pollURL)
			if err != nil {
				if fails++; fails%20 == 1 {
					log.Printf("clock poll %s: %v", pollURL, err)
				}
				continue
			}
			var body cloudapi.ClockStatus
			err = json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				if fails++; fails%20 == 1 {
					log.Printf("clock poll %s: status %d, err %v", pollURL, resp.StatusCode, err)
				}
				continue
			}
			fails = 0
			s.follower.SetTarget(sim.Time(body.Now))
		}
	}
}

// Close stops the poller, then the site's clock source and listener.
func (s *cloudSite) Close() {
	if s.stopPoll != nil {
		close(s.stopPoll)
	}
	s.site.Close()
}

func main() {
	cloud := flag.String("cloud", core.ClusterAdler,
		fmt.Sprintf("which cloud this site hosts (%s or %s)", core.ClusterAdler, core.ClusterSullivan))
	addr := flag.String("addr", "127.0.0.1:0", "listen address (port 0 picks an ephemeral port)")
	seed := flag.Uint64("seed", 1, "simulation seed for this site's private engine")
	scale := flag.Int("scale", 4, "server-count divisor (1 = paper scale)")
	speedup := flag.Float64("speedup", 60, "free-run simulated seconds per wall second (0 freezes; ignored when following)")
	clockFollow := flag.String("clock-follow", "",
		"clock mode: empty free-runs; 'push' follows POSTed targets; a coordinator URL also polls it for time")
	clockTick := flag.Duration("clock-interval", 50*time.Millisecond, "coordinator poll period when -clock-follow is a URL")
	operatorSecret := flag.String("operator-secret", "", "shared secret gating operator-plane writes (clock, quota, dataset replicas)")
	shards := flag.Int("shards", 1, "kernel shard count: K engines advanced in lockstep, per-instance timers spread by entity hash")
	flag.Parse()

	s, err := newCloudSite(options{
		cloud: *cloud, addr: *addr, seed: *seed, scale: *scale,
		speedup: *speedup, clockFollow: *clockFollow, clockTick: *clockTick,
		operatorSecret: *operatorSecret, shards: *shards,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	// The stdout line is the spawn contract: parents scrape the ephemeral
	// address from it.
	fmt.Printf("cloud-site %s (%s) listening on %s\n", s.name, s.stack, s.url)
	mode := "free-run"
	if s.follower != nil {
		mode = "follow"
	}
	log.Printf("clock mode %s; operator plane at %s/cloudapi/, native %s dialect at /", mode, s.url, s.stack)
	select {} // serve until killed
}
