package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"osdc/internal/cloudapi"
	"osdc/internal/core"
	"osdc/internal/sim"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCloudSiteFreeRunServesNativeAndOperatorPlanes: the default mode is a
// self-contained site — native dialect, operator plane, readable clock.
func TestCloudSiteFreeRunServesNativeAndOperatorPlanes(t *testing.T) {
	s, err := newCloudSite(options{cloud: core.ClusterAdler, addr: "127.0.0.1:0", seed: 7, scale: 8, speedup: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	r := cloudapi.NewRemote(s.name, s.stack, s.url, nil)
	if s.stack != "openstack" {
		t.Fatalf("Adler stack = %s", s.stack)
	}
	if _, err := r.Flavors(); err != nil {
		t.Fatalf("native flavors route: %v", err)
	}
	if _, err := r.Usage(); err != nil {
		t.Fatalf("operator usage route: %v", err)
	}
	st, err := r.Clock()
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "free-run" {
		t.Fatalf("clock mode = %s, want free-run", st.Mode)
	}
	// The free-running driver advances the private engine.
	waitUntil(t, 5*time.Second, func() bool { return s.engine.Now() > 0 },
		"free-run clock never advanced")
}

// TestCloudSitePushFollow: -clock-follow push makes the site's engine track
// POSTed targets exactly.
func TestCloudSitePushFollow(t *testing.T) {
	s, err := newCloudSite(options{cloud: core.ClusterSullivan, addr: "127.0.0.1:0", seed: 8, scale: 8, clockFollow: "push"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	r := cloudapi.NewRemote(s.name, s.stack, s.url, nil)
	if err := r.ClockSync(sim.Time(2 * sim.Minute)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, func() bool { return s.engine.Now() >= sim.Time(2*sim.Minute) },
		"pushed target never reached")
	if now := s.engine.Now(); now != sim.Time(2*sim.Minute) {
		t.Fatalf("engine overshot the pushed target: %v", now)
	}
}

// TestCloudSitePollsCoordinator: -clock-follow <url> polls the
// coordinator's /clock endpoint and follows what it reports.
func TestCloudSitePollsCoordinator(t *testing.T) {
	var now atomic.Value
	now.Store(0.0)
	coord := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/clock" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintf(w, `{"now":%g}`, now.Load().(float64))
	}))
	defer coord.Close()

	s, err := newCloudSite(options{
		cloud: core.ClusterAdler, addr: "127.0.0.1:0", seed: 9, scale: 8,
		clockFollow: coord.URL, clockTick: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	now.Store(120.0)
	waitUntil(t, 5*time.Second, func() bool { return s.engine.Now() >= 120 },
		"site never caught the coordinator's clock")
	// The coordinator holding still holds the site still.
	time.Sleep(20 * time.Millisecond)
	if got := s.engine.Now(); got != 120 {
		t.Fatalf("site clock = %v with the coordinator parked at 120", got)
	}
}

// TestClockPollURL pins the -clock-follow URL resolution rules.
func TestClockPollURL(t *testing.T) {
	for raw, want := range map[string]string{
		"http://h:1":                "http://h:1/clock",
		"http://h:1/":               "http://h:1/clock",
		"http://h:1/cloudapi/clock": "http://h:1/cloudapi/clock",
	} {
		got, err := clockPollURL(raw)
		if err != nil || got != want {
			t.Errorf("clockPollURL(%q) = %q, %v; want %q", raw, got, err, want)
		}
	}
	if _, err := clockPollURL("not-a-url"); err == nil {
		t.Error("clockPollURL accepted a bare word")
	}
}
