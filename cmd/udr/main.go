// Command udr is the UDR transfer tool (paper §7.2) against the simulated
// OSDC WAN: "the familiar interface of rsync while utilizing the high
// performance UDT protocol".
//
// Usage:
//
//	udr [-tool udr|rsync] [-cipher none|blowfish|3des] [-size 108GB|1.1TB|<bytes>]
//
// Prints the transfer plan and the simulated Chicago→LVOC result, including
// the paper's LLR metric.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"osdc/internal/cipher"
	"osdc/internal/experiments"
	"osdc/internal/sim"
	"osdc/internal/udr"
)

func main() {
	tool := flag.String("tool", "udr", "transfer tool: udr or rsync")
	ciph := flag.String("cipher", "none", "cipher: none, blowfish, 3des")
	size := flag.String("size", "108GB", "dataset size: 108GB, 1.1TB, or bytes")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	bytes, err := parseSize(*size)
	if err != nil {
		log.Fatal(err)
	}
	cfg := udr.Config{Tool: udr.Tool(*tool), Cipher: cipher.Name(*ciph)}
	if cfg.Tool != udr.ToolUDR && cfg.Tool != udr.ToolRsync {
		log.Fatalf("unknown tool %q", *tool)
	}

	path := experiments.ChicagoLVOCPath(*seed)
	fmt.Printf("path: Chicago → LVOC, %.0f ms RTT, %.0f Gbit/s bottleneck\n",
		path.RTT*1000, path.BandwidthBps/1e9)
	res, caps := udr.Transfer(sim.NewRNG(*seed), cfg, path, bytes)
	fmt.Printf("%s: %s in %v\n", cfg, *size, sim.Time(res.Duration))
	fmt.Printf("  throughput : %.0f mbit/s\n", res.ThroughputMbit())
	fmt.Printf("  LLR        : %.2f (vs min disk %.0f mbit/s)\n", res.LLR(caps), 1136.0)
	fmt.Printf("  retransmits: %d packets, %d loss events\n", res.Retransmit, res.LossEvents)
}

func parseSize(s string) (int64, error) {
	switch strings.ToUpper(s) {
	case "108GB":
		return 108 << 30, nil
	case "1.1TB":
		return int64(11) << 40 / 10, nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q (use 108GB, 1.1TB, or positive bytes)", s)
	}
	return n, nil
}
