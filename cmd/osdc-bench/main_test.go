package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"osdc/internal/scenario"
)

var update = flag.Bool("update", false, "rewrite golden files")

// normalizeGolden makes live-measurement scenarios golden-able: metrics
// whose names carry the "live-" prefix are wall-clock measurements
// (latency percentiles, requests/sec) that legitimately differ run to
// run, so their values — and the table that renders them — are zeroed
// before comparison. Scenarios without live- metrics pass through
// byte-identical.
func normalizeGolden(t *testing.T, raw []byte) []byte {
	t.Helper()
	var entries []map[string]interface{}
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatalf("golden JSON: %v", err)
	}
	touched := false
	for _, e := range entries {
		metrics, _ := e["metrics"].(map[string]interface{})
		live := false
		for k := range metrics {
			if strings.HasPrefix(k, "live-") {
				metrics[k] = 0.0
				live = true
			}
		}
		if live {
			touched = true
			delete(e, "table")
		}
	}
	if !touched {
		return raw
	}
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestEveryScenarioDispatches runs every registered scenario through the
// CLI's -exp dispatch with a small seed, asserting each produces formatted
// output, and golden-files the -json form.
func TestEveryScenarioDispatches(t *testing.T) {
	names := scenario.Names()
	if len(names) < 11 {
		t.Fatalf("registry holds %d scenarios, want >= 11: %v", len(names), names)
	}
	// The formatted-output check reruns the scenario a second time; for
	// scenarios whose default sweep is expensive (console-knee stands up
	// 9 federations), pin the formatted run to one cheap grid point. The
	// -json golden below still runs the full default sweep.
	formattedParams := map[string][]string{
		"console-knee": {"-param", "users=128,replicas=2"},
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			if name == "console-knee" && raceEnabled {
				// The knee grid is ~140k HTTP requests of CPU-bound load:
				// minutes under the race detector for no new interleavings.
				// Raced coverage of this stack comes from the lb tests, the
				// tukey-server multi-replica smoke test, and console-load.
				t.Skip("console-knee golden skipped under -race")
			}
			var out bytes.Buffer
			if err := run(append([]string{"-exp", name, "-seed", "7"}, formattedParams[name]...), &out); err != nil {
				t.Fatalf("run -exp %s: %v", name, err)
			}
			if out.Len() == 0 {
				t.Fatalf("-exp %s produced no output", name)
			}
			if !strings.Contains(out.String(), "metrics (seed 7)") {
				t.Fatalf("-exp %s output missing metrics block:\n%s", name, out.String())
			}

			var jsonOut bytes.Buffer
			if err := run([]string{"-exp", name, "-seed", "7", "-json"}, &jsonOut); err != nil {
				t.Fatalf("run -exp %s -json: %v", name, err)
			}
			var parsed []struct {
				Scenario string             `json:"scenario"`
				Seed     uint64             `json:"seed"`
				Metrics  map[string]float64 `json:"metrics"`
			}
			if err := json.Unmarshal(jsonOut.Bytes(), &parsed); err != nil {
				t.Fatalf("-exp %s -json is not valid JSON: %v", name, err)
			}
			if len(parsed) != 1 || parsed[0].Scenario != name || len(parsed[0].Metrics) == 0 {
				t.Fatalf("-exp %s -json parsed to %+v", name, parsed)
			}

			normalized := normalizeGolden(t, jsonOut.Bytes())
			golden := filepath.Join("testdata", name+".json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, normalized, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(want, normalized) {
				t.Errorf("-exp %s -json drifted from golden %s\n--- got ---\n%s\n--- want ---\n%s",
					name, golden, normalized, want)
			}
		})
	}
}

func TestSweepAggregatesOverSeeds(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "provision", "-seed", "3", "-seeds", "8", "-parallel", "4", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var sweeps []scenario.SweepResult
	if err := json.Unmarshal(out.Bytes(), &sweeps); err != nil {
		t.Fatalf("sweep JSON: %v\n%s", err, out.String())
	}
	if len(sweeps) != 1 || sweeps[0].Scenario != "provision" || len(sweeps[0].Seeds) != 8 {
		t.Fatalf("sweep = %+v", sweeps)
	}
	var speedup *scenario.Aggregate
	for i := range sweeps[0].Metrics {
		if sweeps[0].Metrics[i].Metric == "speedup" {
			speedup = &sweeps[0].Metrics[i]
		}
	}
	if speedup == nil || speedup.N != 8 || speedup.Mean <= 1 {
		t.Fatalf("speedup aggregate = %+v", speedup)
	}
	if speedup.Min > speedup.Mean || speedup.Mean > speedup.Max {
		t.Fatalf("aggregate ordering broken: %+v", speedup)
	}
}

func TestListFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range scenario.Names() {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("-list missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownScenarioErrors(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-exp", "does-not-exist"}, &out)
	if err == nil || !strings.Contains(err.Error(), "does-not-exist") {
		t.Fatalf("err = %v, want unknown-scenario error", err)
	}
	if !strings.Contains(err.Error(), "table3") {
		t.Fatalf("error should list available scenarios: %v", err)
	}
}

func TestBadSeedCount(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-seeds", "0"}, &out); err == nil {
		t.Fatal("expected error for -seeds 0")
	}
}

func TestParamOverridesWorkload(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "console-load", "-seed", "5", "-param", "users=2,iters=1", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var parsed []struct {
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatalf("-param -json: %v\n%s", err, out.String())
	}
	if len(parsed) != 1 || parsed[0].Metrics["users"] != 2 || parsed[0].Metrics["iterations"] != 1 {
		t.Fatalf("params not applied: %+v", parsed)
	}
}

func TestParamErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-param", "users=2"}, &out); err == nil || !strings.Contains(err.Error(), "-exp") {
		t.Fatalf("err = %v, want -param-requires--exp error", err)
	}
	if err := run([]string{"-exp", "table1", "-param", "users=2"}, &out); err == nil || !strings.Contains(err.Error(), "no parameters") {
		t.Fatalf("err = %v, want takes-no-parameters error", err)
	}
	if err := run([]string{"-exp", "console-load", "-param", "bogus"}, &out); err == nil {
		t.Fatal("malformed -param accepted")
	}
	if err := run([]string{"-exp", "console-load", "-param", "userz=3"}, &out); err == nil || !strings.Contains(err.Error(), "userz") {
		t.Fatalf("err = %v, want unknown-parameter error", err)
	}
}

func TestListShowsParams(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "users=8") {
		t.Fatalf("-list does not show console-load params:\n%s", out.String())
	}
}

// TestMutexProfileWritten: -mutexprofile captures a pprof mutex profile of
// the run into the named file.
func TestMutexProfileWritten(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mutex.pb.gz")
	var out bytes.Buffer
	if err := run([]string{"-exp", "provision", "-seed", "3", "-mutexprofile", path}, &out); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("mutex profile not written: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("mutex profile is empty")
	}
}

// TestShardedGoldensPinnedAtK1 is the sharded live path's backward-
// compatibility gate: running the scenarios that grew a shard axis with an
// explicit shards=1 override must reproduce the pre-sharding goldens byte
// for byte — K=1 is not "approximately the old behavior", it IS the old
// behavior (same engine seeding, same serial dispatch, no extra metric
// keys).
func TestShardedGoldensPinnedAtK1(t *testing.T) {
	cases := map[string]string{
		"console-load":   "shards=1,bg-instances=0",
		"mixed-workload": "shards=1",
	}
	for name, params := range cases {
		t.Run(name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run([]string{"-exp", name, "-seed", "7", "-param", params, "-json"}, &out); err != nil {
				t.Fatalf("run -exp %s -param %s: %v", name, params, err)
			}
			normalized := normalizeGolden(t, out.Bytes())
			want, err := os.ReadFile(filepath.Join("testdata", name+".json"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, normalized) {
				t.Errorf("explicit K=1 run of %s drifted from the pre-sharding golden\n--- got ---\n%s\n--- want ---\n%s",
					name, normalized, want)
			}
		})
	}
}

// TestDeterministicAccountingPinnedAcrossTopologies is the federated clock
// plane's acceptance invariant, checked at the golden layer: console-load,
// console-load-remote and console-load-remote-sync must agree on every
// deterministic metric (request accounting, launches, dataset hits, usage
// visibility). Topology markers and live- measurements are the only
// permitted differences.
func TestDeterministicAccountingPinnedAcrossTopologies(t *testing.T) {
	topologyKeys := map[string]bool{"remote-topology": true, "clock-follow": true}
	load := func(name string) map[string]float64 {
		t.Helper()
		raw, err := os.ReadFile(filepath.Join("testdata", name+".json"))
		if err != nil {
			t.Fatal(err)
		}
		var entries []struct {
			Metrics map[string]float64 `json:"metrics"`
		}
		if err := json.Unmarshal(raw, &entries); err != nil || len(entries) != 1 {
			t.Fatalf("golden %s: %v", name, err)
		}
		det := map[string]float64{}
		for k, v := range entries[0].Metrics {
			if !strings.HasPrefix(k, "live-") && !topologyKeys[k] {
				det[k] = v
			}
		}
		return det
	}
	base := load("console-load")
	if base["requests-total"] == 0 {
		t.Fatal("baseline golden has no request accounting")
	}
	for _, name := range []string{"console-load-remote", "console-load-remote-sync"} {
		got := load(name)
		if len(got) != len(base) {
			t.Errorf("%s deterministic keys %d != baseline %d", name, len(got), len(base))
		}
		for k, v := range base {
			if gv, ok := got[k]; !ok || gv != v {
				t.Errorf("%s: metric %s = %v, baseline %v", name, k, gv, v)
			}
		}
	}
}

// TestBenchCompare pins the -bench-compare surface: per-metric deltas,
// new/dropped metric flags, a num_cpu mismatch warning, and the warn-only
// contract (regressions never fail the run; only unreadable input does).
func TestBenchCompare(t *testing.T) {
	dir := t.TempDir()
	writeSnap := func(name, body string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := writeSnap("old.json", `{
		"pr": "8", "goos": "linux", "goarch": "amd64", "num_cpu": 1,
		"metrics": [
			{"name": "usage-sample-sharded-k1", "ns_per_op": 13000000, "unit": "ns/op"},
			{"name": "retired-metric", "ns_per_op": 42, "unit": "ns/op"}
		]}`)
	newPath := writeSnap("new.json", `{
		"pr": "9", "goos": "linux", "goarch": "amd64", "num_cpu": 4,
		"metrics": [
			{"name": "usage-sample-sharded-k1", "ns_per_op": 26000000, "unit": "ns/op"},
			{"name": "usage-sample-incremental-k1", "ns_per_op": 9000, "unit": "ns/op"}
		]}`)

	var out bytes.Buffer
	if err := run([]string{"-bench-compare", oldPath + "," + newPath}, &out); err != nil {
		t.Fatalf("bench-compare is warn-only but returned %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"PR 8",
		"PR 9",
		"num_cpu differs (1 → 4)",
		"usage-sample-sharded-k1",
		"+100.0%",
		"usage-sample-incremental-k1",
		"(new metric)",
		"retired-metric",
		"dropped",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("bench-compare output missing %q:\n%s", want, text)
		}
	}

	if err := run([]string{"-bench-compare", oldPath}, &out); err == nil {
		t.Fatal("single-file -bench-compare did not error")
	}
	if err := run([]string{"-bench-compare", oldPath + "," + filepath.Join(dir, "missing.json")}, &out); err == nil {
		t.Fatal("unreadable snapshot did not error")
	}
}
