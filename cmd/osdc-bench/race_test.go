//go:build race

package main

// raceEnabled reports whether this test binary was built with -race; the
// golden suite uses it to skip scenarios whose default sweeps are pure
// CPU-bound HTTP load (no new interleavings, minutes of runtime under the
// detector).
const raceEnabled = true
