// Command osdc-bench regenerates every table and figure from the paper's
// evaluation and prints them in the paper's format.
//
// Usage:
//
//	osdc-bench [-exp all|table1|table2|table3|fig1|fig2|fig3|cost|provision|ciphers] [-seed N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"osdc/internal/core"
	"osdc/internal/experiments"
	"osdc/internal/iaas"
	"osdc/internal/sim"
	"osdc/internal/tukey"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	seed := flag.Uint64("seed", 2012, "simulation seed")
	flag.Parse()

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("══ %s ══\n", header(name))
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		fmt.Print(experiments.FormatTable1(experiments.Table1(*seed)))
		return nil
	})
	run("table2", func() error {
		rows, cores, disk, err := experiments.Table2(*seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable2(rows, cores, disk))
		return nil
	})
	run("table3", func() error {
		fmt.Println("measured (this reproduction):")
		fmt.Print(experiments.FormatTable3(experiments.Table3(*seed)))
		fmt.Println("\npaper (Grossman et al. 2012, Table 3):")
		fmt.Print(experiments.FormatTable3(experiments.PaperTable3()))
		return nil
	})
	run("fig1", runFigure1)
	run("fig2", func() error {
		r, err := experiments.Figure2(*seed, 256, 256)
		if err != nil {
			return err
		}
		fmt.Printf("EO-1 Hyperion tiles over Namibia (≈ flood, ^ fire, . clear):\n%s", r.TileMap)
		fmt.Printf("flooded tiles: %d/%d (%.2f km²), alerts: %d\n",
			r.FloodTiles, r.TotalTiles, r.FloodKm2, r.Alerts)
		fmt.Printf("mapreduce job: %v on OCC-Matsu, %.0f%% data-local maps\n",
			sim.Time(r.JobDuration), 100*r.Locality)
		return nil
	})
	run("fig3", func() error {
		out, err := experiments.Figure3(*seed)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	})
	run("cost", func() error {
		fmt.Print(experiments.FormatCostSweep(experiments.CostSweep()))
		return nil
	})
	run("provision", func() error {
		fmt.Print(experiments.FormatProvisioning(experiments.Provisioning(*seed)))
		return nil
	})
	run("ciphers", func() error {
		out, err := experiments.CipherSanity()
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	})
}

func header(name string) string {
	titles := map[string]string{
		"table1":    "Table 1 — Commercial vs Science CSPs",
		"table2":    "Table 2 — OCC resource inventory",
		"table3":    "Table 3 — UDR vs rsync, Chicago↔LVOC (104 ms RTT)",
		"fig1":      "Figure 1 — Tukey end to end (live HTTP)",
		"fig2":      "Figure 2 — Project Matsu flood detection",
		"fig3":      "Figure 3 — OSDC cluster topology",
		"cost":      "§9.1 — OSDC rack vs AWS utilization sweep",
		"provision": "§7.3 — bare metal to cloud",
		"ciphers":   "Cipher self-test",
	}
	if t, ok := titles[name]; ok {
		return t
	}
	return name
}

// runFigure1 performs the Figure 1 walk with live HTTP servers and prints
// each hop.
func runFigure1() error {
	f, err := core.New(core.Options{Seed: 42, Scale: 8})
	if err != nil {
		return err
	}
	novaSrv := httptest.NewServer(&iaas.NovaAPI{Cloud: f.Adler})
	defer novaSrv.Close()
	eucaSrv := httptest.NewServer(&iaas.EucaAPI{Cloud: f.Sullivan})
	defer eucaSrv.Close()
	f.Tukey.AttachCloud(tukey.CloudConfig{Name: core.ClusterAdler, Stack: "openstack", Endpoint: novaSrv.URL})
	f.Tukey.AttachCloud(tukey.CloudConfig{Name: core.ClusterSullivan, Stack: "eucalyptus", Endpoint: eucaSrv.URL})
	console := httptest.NewServer(&tukey.Console{MW: f.Tukey, Biller: f.Biller, Catalog: f.Catalog})
	defer console.Close()

	f.EnrollResearcher("demo", "demo-pw")
	f.Adler.SetQuota("demo", iaas.Quota{MaxInstances: 10, MaxCores: 64})
	f.Sullivan.SetQuota("demo", iaas.Quota{MaxInstances: 10, MaxCores: 64})

	resp, err := http.Post(console.URL+"/login", "application/json",
		strings.NewReader(`{"provider":"shibboleth","username":"demo","secret":"demo-pw"}`))
	if err != nil {
		return err
	}
	var login struct {
		Token string `json:"token"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&login); err != nil {
		return err
	}
	resp.Body.Close()
	fmt.Printf("login: shibboleth demo@uchicago.edu → session %s\n", login.Token)

	for _, cloud := range []string{core.ClusterAdler, core.ClusterSullivan} {
		req, _ := http.NewRequest("POST", console.URL+"/console/launch",
			strings.NewReader(fmt.Sprintf(`{"cloud":%q,"name":"fig1","flavor":"m1.large"}`, cloud)))
		req.Header.Set("X-Tukey-Session", login.Token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		fmt.Printf("launch: m1.large on %-14s → HTTP %d (native dialect: %s)\n",
			cloud, resp.StatusCode, map[string]string{
				core.ClusterAdler: "OpenStack JSON", core.ClusterSullivan: "EC2 query/XML",
			}[cloud])
	}

	req, _ := http.NewRequest("GET", console.URL+"/console/instances", nil)
	req.Header.Set("X-Tukey-Session", login.Token)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	var list struct {
		Servers []tukey.TaggedServer `json:"servers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return err
	}
	resp.Body.Close()
	fmt.Println("aggregated OpenStack-format response:")
	for _, s := range list.Servers {
		fmt.Printf("  cloud=%-14s id=%-22s status=%-6s flavor=%s\n", s.Cloud, s.ID, s.Status, s.Flavor)
	}

	f.Engine.RunFor(2 * sim.Hour)
	u := f.Biller.CurrentUsage("demo")
	fmt.Printf("billing after 2 simulated hours: %.1f core-hours (8 cores running)\n", u.CoreHours())
	return nil
}
