// Command osdc-bench runs the paper's evaluation scenarios through the
// scenario registry and prints them in the paper's format.
//
// Usage:
//
//	osdc-bench [-exp all|<name>] [-seed N] [-seeds N] [-parallel N]
//	           [-param k=v,k2=v2] [-json] [-list] [-mutexprofile out.pb.gz]
//
// With -seeds 1 (the default) each scenario runs once and prints its
// paper-style table. With -seeds N > 1 the seeds fan out over a worker
// pool (-parallel, default NumCPU) and the per-metric mean/std/min/max
// aggregates are printed instead. -param overrides a parametric scenario's
// workload shape (e.g. -exp console-load -param users=32,think-ms=5) and
// requires naming one scenario with -exp. -json emits the same results as
// JSON; -list enumerates the registered scenarios with their parameters.
// -mutexprofile captures a full mutex-contention profile of the run —
// `osdc-bench -exp console-knee -mutexprofile knee.pb.gz` answers which
// service lock saturates first at the latency knee (inspect with `go tool
// pprof knee.pb.gz`).
//
// -bench-json FILE runs the tracked perf suite (internal/perf: engine
// churn, pooled churn, sharded churn, same-tick batch dispatch, biller
// parallel accrual, console-load p95) through testing.Benchmark and
// writes the snapshot as JSON — the BENCH_<pr>.json files CI uploads so
// the perf trajectory is pinned per PR. "-" writes to stdout; -bench-pr
// labels the snapshot. -bench-compare OLD.json,NEW.json diffs two such
// snapshots and prints per-metric deltas (new and dropped metrics
// flagged); it is warn-only — regressions print, the exit code stays 0 —
// because snapshots from different boxes are a trajectory to read, not a
// gate.
//
// Experiments live in internal/experiments and self-register into
// internal/scenario; adding a scenario there makes it appear here with no
// changes to this file.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	_ "osdc/internal/experiments" // populate the scenario registry
	"osdc/internal/perf"
	"osdc/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "osdc-bench: %v\n", err)
		os.Exit(1)
	}
}

// singleResult is the JSON form of one scenario × one seed.
type singleResult struct {
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	scenario.Result
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("osdc-bench", flag.ContinueOnError)
	// Parse errors surface once, via main's error print; only an explicit
	// -h/-help gets the usage block, on stdout, so -json output stays
	// pipeable.
	fs.SetOutput(io.Discard)
	exp := fs.String("exp", "all", "scenario to run, or 'all'")
	seed := fs.Uint64("seed", 2012, "base simulation seed")
	seeds := fs.Int("seeds", 1, "number of consecutive seeds to sweep")
	parallel := fs.Int("parallel", 0, "sweep workers (0 = NumCPU)")
	asJSON := fs.Bool("json", false, "emit JSON instead of formatted tables")
	list := fs.Bool("list", false, "list registered scenarios and exit")
	params := fs.String("param", "", "comma-separated k=v overrides for a parametric scenario (requires -exp <name>)")
	mutexProfile := fs.String("mutexprofile", "", "write a mutex-contention profile of the run to this file (e.g. during -exp console-knee)")
	benchJSON := fs.String("bench-json", "", "run the tracked perf suite and write the JSON snapshot to this file ('-' = stdout)")
	benchPR := fs.String("bench-pr", "", "PR label embedded in the -bench-json snapshot")
	benchCompare := fs.String("bench-compare", "", "diff two perf snapshots (OLD.json,NEW.json) and print per-metric deltas; always exits 0 (warn-only)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(stdout)
			fs.Usage()
			return nil
		}
		return err
	}

	if *mutexProfile != "" {
		// Sample every mutex contention event for the whole run — the
		// ROADMAP's "which lock saturates first at the console knee"
		// question wants the full picture, and scenario runs are short.
		runtime.SetMutexProfileFraction(1)
		defer func() {
			runtime.SetMutexProfileFraction(0)
			f, err := os.Create(*mutexProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "osdc-bench: mutex profile: %v\n", err)
				return
			}
			defer f.Close()
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "osdc-bench: mutex profile: %v\n", err)
			}
		}()
	}

	if *benchCompare != "" {
		oldPath, newPath, ok := strings.Cut(*benchCompare, ",")
		if !ok || oldPath == "" || newPath == "" {
			return fmt.Errorf("-bench-compare wants OLD.json,NEW.json, got %q", *benchCompare)
		}
		return compareBenchJSON(oldPath, newPath, stdout)
	}

	if *benchJSON != "" {
		return writeBenchJSON(*benchJSON, *benchPR, stdout)
	}

	if *list {
		for _, s := range scenario.All() {
			fmt.Fprintf(stdout, "%-20s %s\n", s.Name(), s.Describe())
			if p, ok := s.(scenario.Parametric); ok {
				fmt.Fprintf(stdout, "%-20s params: %s\n", "", formatParams(p.Params()))
			}
		}
		return nil
	}
	if *seeds < 1 {
		return fmt.Errorf("-seeds must be >= 1, got %d", *seeds)
	}

	var selected []scenario.Scenario
	if *exp == "all" {
		selected = scenario.All()
	} else {
		s, ok := scenario.Get(*exp)
		if !ok {
			return fmt.Errorf("unknown scenario %q (have: %s)", *exp, strings.Join(scenario.Names(), ", "))
		}
		selected = []scenario.Scenario{s}
	}

	if *params != "" {
		if *exp == "all" {
			return fmt.Errorf("-param requires naming one scenario with -exp")
		}
		overrides, err := parseParams(*params)
		if err != nil {
			return err
		}
		p, ok := selected[0].(scenario.Parametric)
		if !ok {
			return fmt.Errorf("scenario %q takes no parameters", *exp)
		}
		tuned, err := p.With(overrides)
		if err != nil {
			return err
		}
		selected[0] = tuned
	}

	var jsonOut []interface{}
	for _, s := range selected {
		if *seeds == 1 {
			res, err := s.Run(*seed)
			if err != nil {
				return fmt.Errorf("%s: %w", s.Name(), err)
			}
			if *asJSON {
				jsonOut = append(jsonOut, singleResult{Scenario: s.Name(), Seed: *seed, Result: res})
				continue
			}
			fmt.Fprintf(stdout, "══ %s ══\n", s.Describe())
			fmt.Fprint(stdout, res.Table)
			fmt.Fprintf(stdout, "\nmetrics (seed %d):\n%s\n", *seed, res.MetricsTable())
			continue
		}
		sweep, err := scenario.Sweep(s, scenario.Seeds(*seed, *seeds), *parallel)
		if err != nil {
			return err
		}
		if *asJSON {
			jsonOut = append(jsonOut, sweep)
			continue
		}
		fmt.Fprintf(stdout, "══ %s ══\n", s.Describe())
		fmt.Fprint(stdout, sweep.Format())
		fmt.Fprintln(stdout)
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(jsonOut)
	}
	return nil
}

// writeBenchJSON runs the tracked perf suite and writes the snapshot.
func writeBenchJSON(path, pr string, stdout io.Writer) error {
	snap, err := perf.Collect(pr)
	if err != nil {
		return err
	}
	out := stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// compareBenchJSON prints per-metric deltas between two perf snapshots.
// It is deliberately warn-only — it always returns nil on a readable pair
// of files — because the reference runner has nproc=1 and the recorded
// caveat (EXPERIMENTS.md) says cross-box comparisons are a trajectory to
// read, not a gate to fail CI on.
func compareBenchJSON(oldPath, newPath string, stdout io.Writer) error {
	read := func(path string) (perf.Snapshot, error) {
		var s perf.Snapshot
		raw, err := os.ReadFile(path)
		if err != nil {
			return s, err
		}
		return s, json.Unmarshal(raw, &s)
	}
	oldSnap, err := read(oldPath)
	if err != nil {
		return fmt.Errorf("bench-compare: %w", err)
	}
	newSnap, err := read(newPath)
	if err != nil {
		return fmt.Errorf("bench-compare: %w", err)
	}
	prev := make(map[string]perf.Metric, len(oldSnap.Metrics))
	for _, m := range oldSnap.Metrics {
		prev[m.Name] = m
	}
	fmt.Fprintf(stdout, "bench-compare: %s (PR %s) → %s (PR %s)\n",
		oldPath, oldSnap.PR, newPath, newSnap.PR)
	if oldSnap.NumCPU != newSnap.NumCPU {
		fmt.Fprintf(stdout, "  warning: num_cpu differs (%d → %d); deltas are not like-for-like\n",
			oldSnap.NumCPU, newSnap.NumCPU)
	}
	seen := make(map[string]bool, len(newSnap.Metrics))
	for _, m := range newSnap.Metrics {
		seen[m.Name] = true
		p, ok := prev[m.Name]
		if !ok {
			fmt.Fprintf(stdout, "  %-32s %14.1f %-5s (new metric)\n", m.Name, m.NsPerOp, m.Unit)
			continue
		}
		pct := 0.0
		if p.NsPerOp != 0 {
			pct = (m.NsPerOp - p.NsPerOp) / p.NsPerOp * 100
		}
		fmt.Fprintf(stdout, "  %-32s %14.1f → %14.1f %-5s %+7.1f%%\n",
			m.Name, p.NsPerOp, m.NsPerOp, m.Unit, pct)
	}
	for _, m := range oldSnap.Metrics {
		if !seen[m.Name] {
			fmt.Fprintf(stdout, "  %-32s dropped (was %.1f %s)\n", m.Name, m.NsPerOp, m.Unit)
		}
	}
	return nil
}

// parseParams turns "users=32,think-ms=5" into a parameter map.
func parseParams(s string) (map[string]float64, error) {
	out := map[string]float64{}
	for _, pair := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("bad -param entry %q, want k=v", pair)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -param value in %q: %v", pair, err)
		}
		out[k] = f
	}
	return out, nil
}

// formatParams renders a parameter map as sorted k=v pairs.
func formatParams(p map[string]float64) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%g", k, p[k])
	}
	return strings.Join(parts, " ")
}
