// Command tukey-lb fronts N stateless console replicas (tukey-server
// -state-url) with one address.
//
// Requests carrying a session token stick to a replica by consistent hash
// (affinity keeps connections and caches warm); logins round-robin. Every
// -probe interval each backend's /healthz is checked: failures mark it
// down (its sessions transparently remap and in-flight requests retry on
// a sibling), and -evict-after consecutive failures remove it from the
// ring for good. Because the replicas keep their state in tukey-state,
// losing one loses nothing — the balancer only has to stop sending
// traffic at the corpse.
//
// With -operator-secret the balancer serves its own health accounting —
// retries, mark-downs, evictions, live backend counts — at GET /metrics
// behind the federation's operator gate.
//
// Usage:
//
//	tukey-lb -backend http://host1:8080 -backend http://host2:8080
//	         [-addr :8000] [-probe 2s] [-evict-after 5] [-operator-secret S]
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"osdc/internal/lb"
	"osdc/internal/telemetry"
)

// backendList collects repeated -backend flags.
type backendList []string

func (b *backendList) String() string { return strings.Join(*b, ",") }

func (b *backendList) Set(v string) error {
	*b = append(*b, v)
	return nil
}

func main() {
	addr := flag.String("addr", ":8000", "balancer listen address")
	probe := flag.Duration("probe", 2*time.Second, "health-probe interval (0 = passive mark-down only)")
	evictAfter := flag.Int("evict-after", 5, "evict a backend after this many consecutive failed probes (0 = never)")
	operatorSecret := flag.String("operator-secret", "", "serve GET /metrics behind this operator secret (\"\" = no metrics plane)")
	var backends backendList
	flag.Var(&backends, "backend", "console replica base URL (repeatable)")
	flag.Parse()
	if len(backends) == 0 {
		log.Fatal("tukey-lb: at least one -backend is required")
	}

	pool := lb.NewPool(backends, nil)
	if *probe > 0 {
		go pool.ProbeLoop(*probe, *evictAfter, make(chan struct{}))
	}
	reg := telemetry.NewRegistry()
	pool.RegisterMetrics(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		telemetry.ServeMetrics(*operatorSecret, reg, w, r)
	})
	mux.Handle("/", pool)
	log.Printf("tukey-lb on %s over %d replicas (probe %v, evict after %d)",
		*addr, len(backends), *probe, *evictAfter)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
