package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"osdc/internal/core"
	"osdc/internal/telemetry"
	"osdc/internal/tukey"
)

// consoleDo issues one authenticated console request.
func consoleDo(t *testing.T, base, method, path, token, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, base+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("X-Tukey-Session", token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// login authenticates the pre-enrolled demo researcher.
func login(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Post(base+"/login", "application/json",
		strings.NewReader(`{"provider":"shibboleth","username":"demo","secret":"demo-pw"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Token string `json:"token"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Token == "" {
		t.Fatal("no session token")
	}
	return out.Token
}

// TestUsageAccruesThroughHTTP is the regression test for the frozen-clock
// bug: tukey-server used to build the federation but never step the
// engine, so /console/usage reported zero core-hours and cycle 1 forever.
// With the clock driver running, a launched VM must show nonzero usage
// through the HTTP route within wall seconds.
func TestUsageAccruesThroughHTTP(t *testing.T) {
	// 1 wall second ≈ 1 simulated day: minute polls land immediately.
	s, err := newServer(options{seed: 7, speedup: 86_400})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.console)
	defer srv.Close()
	tok := login(t, srv.URL)

	// Launch a VM on each cloud through the console.
	for _, cloud := range []string{core.ClusterAdler, core.ClusterSullivan} {
		resp := consoleDo(t, srv.URL, "POST", "/console/launch", tok,
			`{"cloud":"`+cloud+`","name":"reg","flavor":"m1.large"}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("launch on %s: status %d", cloud, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// The driver must advance the sim clock under us until the billing
	// poller has metered the VMs: poll the HTTP route, not the internals.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := consoleDo(t, srv.URL, "GET", "/console/usage", tok, "")
		var usage struct {
			CoreHours float64 `json:"core_hours"`
			Cycle     int     `json:"cycle"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&usage); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if usage.CoreHours > 0 {
			if usage.Cycle < 1 {
				t.Fatalf("cycle = %d", usage.Cycle)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("usage still zero after 10 s wall with the clock driver running: %+v", usage)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFrozenClockStaysAtZero pins the opt-out: with speedup 0 the engine
// never advances, which is what the old tukey-server did unconditionally.
func TestFrozenClockStaysAtZero(t *testing.T) {
	s, err := newServer(options{seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.driver != nil {
		t.Fatal("speedup 0 must not start a driver")
	}
	if s.fed.Engine.Now() != 0 {
		t.Fatalf("clock = %v, want 0", s.fed.Engine.Now())
	}
}

// TestRemoteCloudsFullConsoleFlow is the -remote-clouds acceptance walk:
// each cloud behind its own HTTP listener with its own engine and driver,
// and the whole console flow — login → status → launch → list → usage →
// terminate — working over Remote transports only.
func TestRemoteCloudsFullConsoleFlow(t *testing.T) {
	s, err := newServer(options{seed: 9, speedup: 86_400, remoteClouds: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if len(s.sites) != 2 {
		t.Fatalf("%d cloud sites, want 2", len(s.sites))
	}
	if s.sites[0].URL == s.sites[1].URL {
		t.Fatal("both clouds share one listener")
	}
	if s.sites[0].Engine == s.sites[1].Engine || s.sites[0].Engine == s.fed.Engine {
		t.Fatal("cloud sites must not share an engine")
	}
	srv := httptest.NewServer(s.console)
	defer srv.Close()
	tok := login(t, srv.URL)

	// Status: both remote clouds attached.
	resp := consoleDo(t, srv.URL, "GET", "/console/status", tok, "")
	var status struct {
		Clouds []string `json:"clouds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(status.Clouds) != 2 {
		t.Fatalf("clouds = %v, want both remote sites", status.Clouds)
	}

	// Launch on each cloud (each request crosses console → middleware →
	// remote dialect → site listener).
	for _, cloud := range []string{core.ClusterAdler, core.ClusterSullivan} {
		resp := consoleDo(t, srv.URL, "POST", "/console/launch", tok,
			`{"cloud":"`+cloud+`","name":"remote-vm","flavor":"m1.large"}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("launch on %s: status %d", cloud, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// The aggregated listing shows both clouds' VMs.
	resp = consoleDo(t, srv.URL, "GET", "/console/instances", tok, "")
	var list struct {
		Servers []tukey.TaggedServer `json:"servers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Servers) != 2 {
		t.Fatalf("aggregated %d servers, want 2: %+v", len(list.Servers), list.Servers)
	}
	byCloud := map[string]tukey.TaggedServer{}
	for _, srv := range list.Servers {
		byCloud[srv.Cloud] = srv
	}
	if len(byCloud) != 2 {
		t.Fatalf("servers not spread across both clouds: %+v", list.Servers)
	}

	// Usage accrues: the console-engine biller polls the sites over HTTP.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := consoleDo(t, srv.URL, "GET", "/console/usage", tok, "")
		var usage struct {
			CoreHours float64 `json:"core_hours"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&usage); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if usage.CoreHours > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("usage still zero after 10 s wall in remote topology")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Terminate both; the listing empties.
	for cloud, srvr := range byCloud {
		resp := consoleDo(t, srv.URL, "POST", "/console/terminate", tok,
			`{"cloud":"`+cloud+`","id":"`+srvr.ID+`"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("terminate %s on %s: status %d", srvr.ID, cloud, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp = consoleDo(t, srv.URL, "GET", "/console/instances", tok, "")
	list.Servers = nil
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Servers) != 0 {
		t.Fatalf("servers after terminate = %+v", list.Servers)
	}
}

// TestRateLimitFlag wires the -rate-limit flag through to 429s: a burst of
// requests from one user exhausts their bucket while the next user still
// gets through.
func TestRateLimitFlag(t *testing.T) {
	s, err := newServer(options{seed: 10, rateLimit: 1, rateBurst: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.console)
	defer srv.Close()
	tok := login(t, srv.URL) // spends 1 of demo's 3 tokens

	limited := false
	for i := 0; i < 5; i++ {
		resp := consoleDo(t, srv.URL, "GET", "/console/status", tok, "")
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			limited = true
			break
		}
	}
	if !limited {
		t.Fatal("burst of 6 requests against burst=3 never saw 429")
	}
}

// TestShardedLiveConsoleFlow drives the -shards live path: a K=4 kernel
// behind the shard driver, launch/stop/terminate through the console, and
// usage accruing while every shard advances in lockstep (an instance homed
// off the anchor shard would otherwise never boot or meter).
func TestShardedLiveConsoleFlow(t *testing.T) {
	s, err := newServer(options{seed: 11, shards: 4, speedup: 86_400})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.fed.Set.K() != 4 {
		t.Fatalf("kernel K = %d, want 4", s.fed.Set.K())
	}
	srv := httptest.NewServer(s.console)
	defer srv.Close()
	tok := login(t, srv.URL)

	// Enough launches that some instance IDs hash off the anchor shard.
	var ids []string
	for i := 0; i < 6; i++ {
		resp := consoleDo(t, srv.URL, "POST", "/console/launch", tok,
			`{"cloud":"`+core.ClusterAdler+`","name":"sh","flavor":"m1.small"}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("launch %d: status %d", i, resp.StatusCode)
		}
		var out struct {
			Server struct {
				ID string `json:"ID"`
			} `json:"server"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ids = append(ids, out.Server.ID)
	}
	offAnchor := false
	for _, id := range ids {
		if s.fed.Set.ShardIndex(id) != 0 {
			offAnchor = true
		}
	}
	if !offAnchor {
		t.Fatalf("all %d instances hashed to the anchor shard; test proves nothing", len(ids))
	}

	// Every instance reaches ACTIVE: the shard driver advances the owning
	// shard's boot timer no matter where the ID hashed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := consoleDo(t, srv.URL, "GET", "/console/instances", tok, "")
		var list struct {
			Servers []tukey.TaggedServer `json:"servers"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		active := 0
		for _, sv := range list.Servers {
			if sv.Status == "ACTIVE" {
				active++
			}
		}
		if active == len(ids) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d instances ACTIVE after 10 s wall on the sharded kernel", active, len(ids))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Stop one off-anchor instance through the console; the stop timer must
	// fire on the owning shard and reach SHUTOFF.
	stopID := ""
	for _, id := range ids {
		if s.fed.Set.ShardIndex(id) != 0 {
			stopID = id
			break
		}
	}
	resp := consoleDo(t, srv.URL, "POST", "/console/stop", tok,
		`{"cloud":"`+core.ClusterAdler+`","id":"`+stopID+`"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stop: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	deadline = time.Now().Add(10 * time.Second)
	for {
		inst, err := s.fed.AdlerAPI.Instance(stopID)
		if err != nil {
			t.Fatal(err)
		}
		if inst.Status == "SHUTOFF" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("off-anchor instance %s still %s after stop", stopID, inst.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Usage accrues through the anchor-shard biller.
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp := consoleDo(t, srv.URL, "GET", "/console/usage", tok, "")
		var usage struct {
			CoreHours float64 `json:"core_hours"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&usage); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if usage.CoreHours > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("usage still zero on the sharded kernel")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPprofBehindOperatorGate is the profiling-plane smoke test: without
// -operator-secret the endpoints do not exist, an unauthenticated fetch
// against a gated server is 403, and the right X-OSDC-Operator header
// serves the pprof index.
func TestPprofBehindOperatorGate(t *testing.T) {
	open, err := newServer(options{seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	defer open.Close()
	openSrv := httptest.NewServer(open.handler)
	defer openSrv.Close()
	resp, err := http.Get(openSrv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without a secret = %d, want 404", resp.StatusCode)
	}

	gated, err := newServer(options{seed: 32, operatorSecret: "op-secret"})
	if err != nil {
		t.Fatal(err)
	}
	defer gated.Close()
	gatedSrv := httptest.NewServer(gated.handler)
	defer gatedSrv.Close()

	resp, err = http.Get(gatedSrv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unauthenticated pprof fetch = %d, want 403", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodGet, gatedSrv.URL+"/debug/pprof/", nil)
	req.Header.Set("X-OSDC-Operator", "op-secret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated pprof fetch = %d, want 200", resp.StatusCode)
	}
}

// TestMetricsBehindOperatorGate: the telemetry plane shares the pprof
// gate contract exactly — 404 without a secret, 403 without (or with the
// wrong) X-OSDC-Operator header, exposition text with it — and the
// console-side registry carries the kernel, billing, and console series.
func TestMetricsBehindOperatorGate(t *testing.T) {
	open, err := newServer(options{seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	defer open.Close()
	openSrv := httptest.NewServer(open.handler)
	defer openSrv.Close()
	resp, err := http.Get(openSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("metrics without a secret = %d, want 404", resp.StatusCode)
	}

	gated, err := newServer(options{seed: 42, operatorSecret: "op-secret"})
	if err != nil {
		t.Fatal(err)
	}
	defer gated.Close()
	gatedSrv := httptest.NewServer(gated.handler)
	defer gatedSrv.Close()

	resp, err = http.Get(gatedSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unauthenticated metrics fetch = %d, want 403", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodGet, gatedSrv.URL+"/metrics", nil)
	req.Header.Set("X-OSDC-Operator", "not-the-secret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("wrong-secret metrics fetch = %d, want 403", resp.StatusCode)
	}

	// One console request so the per-route counters exist before scraping.
	tok := login(t, gatedSrv.URL)
	consoleDo(t, gatedSrv.URL, "GET", "/console/status", tok, "").Body.Close()

	req.Header.Set("X-OSDC-Operator", "op-secret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated metrics fetch = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type = %q", ct)
	}
	parsed, err := telemetry.ParseText(body)
	if err != nil {
		t.Fatalf("exposition body does not parse: %v", err)
	}
	for _, want := range []string{
		`osdc_engine_fired_total{shard="0"}`,
		"osdc_billing_polls_total",
		`osdc_console_requests_total{route="GET /console/status"}`,
		"osdc_console_throttled_total",
	} {
		if _, ok := parsed[want]; !ok {
			t.Errorf("series %s missing from tukey-server exposition", want)
		}
	}
}
