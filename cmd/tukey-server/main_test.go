package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"osdc/internal/core"
)

// TestUsageAccruesThroughHTTP is the regression test for the frozen-clock
// bug: tukey-server used to build the federation but never step the
// engine, so /console/usage reported zero core-hours and cycle 1 forever.
// With the clock driver running, a launched VM must show nonzero usage
// through the HTTP route within wall seconds.
func TestUsageAccruesThroughHTTP(t *testing.T) {
	// 1 wall second ≈ 1 simulated day: minute polls land immediately.
	s, err := newServer(7, 86_400, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.console)
	defer srv.Close()

	// Login as the pre-enrolled demo researcher.
	resp, err := http.Post(srv.URL+"/login", "application/json",
		strings.NewReader(`{"provider":"shibboleth","username":"demo","secret":"demo-pw"}`))
	if err != nil {
		t.Fatal(err)
	}
	var login struct {
		Token string `json:"token"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&login); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if login.Token == "" {
		t.Fatal("no session token")
	}
	do := func(method, path, body string) *http.Response {
		req, err := http.NewRequest(method, srv.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Tukey-Session", login.Token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Launch a VM on each cloud through the console.
	for _, cloud := range []string{core.ClusterAdler, core.ClusterSullivan} {
		resp := do("POST", "/console/launch", `{"cloud":"`+cloud+`","name":"reg","flavor":"m1.large"}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("launch on %s: status %d", cloud, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// The driver must advance the sim clock under us until the billing
	// poller has metered the VMs: poll the HTTP route, not the internals.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := do("GET", "/console/usage", "")
		var usage struct {
			CoreHours float64 `json:"core_hours"`
			Cycle     int     `json:"cycle"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&usage); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if usage.CoreHours > 0 {
			if usage.Cycle < 1 {
				t.Fatalf("cycle = %d", usage.Cycle)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("usage still zero after 10 s wall with the clock driver running: %+v", usage)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFrozenClockStaysAtZero pins the opt-out: with speedup 0 the engine
// never advances, which is what the old tukey-server did unconditionally.
func TestFrozenClockStaysAtZero(t *testing.T) {
	s, err := newServer(8, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.driver != nil {
		t.Fatal("speedup 0 must not start a driver")
	}
	if s.fed.Engine.Now() != 0 {
		t.Fatalf("clock = %v, want 0", s.fed.Engine.Now())
	}
}
