package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"osdc/internal/cloudapi"
	"osdc/internal/core"
)

// TestFollowedClockRemoteTopology: with -remote-clouds and -clock-sync the
// site engines advance ONLY via coordinator pushes — so usage accruing
// through the whole console → remote → billing loop proves the clock plane
// works — and the observed skew stays within the sync-interval bound.
func TestFollowedClockRemoteTopology(t *testing.T) {
	const speedup = 86_400
	syncEvery := 10 * time.Millisecond
	s, err := newServer(options{seed: 11, speedup: speedup, remoteClouds: true, clockSync: syncEvery})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for _, site := range s.sites {
		if site.Mode != cloudapi.ClockFollow {
			t.Fatalf("site %s clock mode = %v, want follow", site.Cloud.Name, site.Mode)
		}
		if site.Follower() == nil {
			t.Fatalf("site %s has no follower", site.Cloud.Name)
		}
	}
	if s.fed.ClockSync == nil {
		t.Fatal("no clock coordinator started")
	}

	srv := httptest.NewServer(s.handler)
	defer srv.Close()
	tok := login(t, srv.URL)
	for _, cloud := range []string{core.ClusterAdler, core.ClusterSullivan} {
		resp := consoleDo(t, srv.URL, "POST", "/console/launch", tok,
			`{"cloud":"`+cloud+`","name":"sync-vm","flavor":"m1.large"}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("launch on %s: status %d", cloud, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Usage can only accrue if the followed site engines move — which only
	// the coordinator's pushes can cause.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := consoleDo(t, srv.URL, "GET", "/console/usage", tok, "")
		var usage struct {
			CoreHours float64 `json:"core_hours"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&usage); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if usage.CoreHours > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("usage still zero: followed site clocks are not advancing")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Let the coordinator complete enough rounds for the skew statistics
	// to mean something, and require the followed engines to have actually
	// moved (only pushes can move them).
	deadline = time.Now().Add(10 * time.Second)
	for s.fed.ClockSync.Syncs() < 20 {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator completed only %d sync rounds", s.fed.ClockSync.Syncs())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, site := range s.sites {
		if site.Engine.Now() == 0 {
			t.Errorf("site %s engine never advanced despite syncs", site.Cloud.Name)
		}
	}

	// Skew bound: no site trails the console by more than one actual sync
	// interval plus sub-interval slack (half an interval's virtual span
	// covers the follower tick and the clock-read round trip).
	stats := s.fed.ClockSync.Stats()
	if len(stats) != 2 {
		t.Fatalf("coordinator tracks %d sites, want 2: %+v", len(stats), stats)
	}
	bound := 0.5 * speedup * syncEvery.Seconds()
	for _, st := range stats {
		if st.Syncs == 0 {
			t.Errorf("site %s never synced", st.Site)
		}
		if st.Errors > 0 {
			t.Errorf("site %s: %d sync errors", st.Site, st.Errors)
		}
		if st.MaxExcess > bound {
			t.Errorf("site %s skew exceeded one sync interval by %.0f virtual s (slack %.0f)",
				st.Site, st.MaxExcess, bound)
		}
	}
	// The console also never sees a site clock ahead of its own.
	consoleNow := s.fed.Engine.Now()
	for _, site := range s.sites {
		if siteNow := site.Engine.Now(); siteNow > consoleNow {
			t.Errorf("site %s ran past the console: %v > %v", site.Cloud.Name, siteNow, consoleNow)
		}
	}
}

// TestClockEndpointServesConsoleTime: GET /clock exposes the console
// engine's virtual time for polling cloud-site processes.
func TestClockEndpointServesConsoleTime(t *testing.T) {
	s, err := newServer(options{seed: 12, speedup: 86_400})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.handler)
	defer srv.Close()

	read := func() float64 {
		resp, err := http.Get(srv.URL + "/clock")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Now float64 `json:"now"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Now
	}
	first := read()
	deadline := time.Now().Add(5 * time.Second)
	for read() <= first {
		if time.Now().After(deadline) {
			t.Fatal("/clock never advanced")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSessionFileSurvivesRestart wires -session-file end to end: a token
// minted before a console "restart" still authenticates after it.
func TestSessionFileSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.json")
	s1, err := newServer(options{seed: 13, sessionFile: path})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(s1.console)
	tok := login(t, srv1.URL)
	srv1.Close()
	s1.Close()

	s2, err := newServer(options{seed: 13, sessionFile: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	srv2 := httptest.NewServer(s2.console)
	defer srv2.Close()
	resp := consoleDo(t, srv2.URL, "GET", "/console/status", tok, "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted console rejected the old session: %d", resp.StatusCode)
	}
}

// TestStatusReportsPerSitePollErrors: the console status view carries the
// per-cloud poller health maps (zero for healthy sites).
func TestStatusReportsPerSitePollErrors(t *testing.T) {
	s, err := newServer(options{seed: 14, remoteClouds: true, speedup: 86_400})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.console)
	defer srv.Close()
	tok := login(t, srv.URL)

	resp := consoleDo(t, srv.URL, "GET", "/console/status", tok, "")
	defer resp.Body.Close()
	var status struct {
		Clouds       []string         `json:"clouds"`
		PollErrors   map[string]int64 `json:"poll_errors"`
		SampleErrors map[string]int64 `json:"sample_errors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	for _, m := range []map[string]int64{status.PollErrors, status.SampleErrors} {
		if len(m) != 2 {
			t.Fatalf("per-site error map has %d entries, want 2: %+v", len(m), status)
		}
		for cloud, n := range m {
			if n != 0 {
				t.Errorf("healthy site %s shows %d errors", cloud, n)
			}
		}
	}
}

// TestCloudSiteSubprocess is the multi-process federation smoke test:
// OSDC-Sullivan runs as a real cloud-site OS process (built from
// cmd/cloud-site), tukey-server attaches it with -site, the clock
// coordinator pushes the console's time into it, and the full console flow
// — login → status → launch → list → usage accrual → terminate — crosses
// the process boundary. Bounded skew is asserted from the coordinator's
// observations.
func TestCloudSiteSubprocess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a subprocess and builds a binary")
	}
	bin := filepath.Join(t.TempDir(), "cloud-site")
	build := exec.Command("go", "build", "-o", bin, "osdc/cmd/cloud-site")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cloud-site: %v\n%s", err, out)
	}

	site := exec.Command(bin,
		"-cloud", core.ClusterSullivan, "-addr", "127.0.0.1:0",
		"-seed", "99", "-scale", "4", "-clock-follow", "push")
	stdout, err := site.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := site.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = site.Process.Kill()
		_ = site.Wait()
	}()

	// The spawn contract: the site prints its ephemeral URL on stdout.
	var siteURL string
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		line := scanner.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			siteURL = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if siteURL == "" {
		t.Fatalf("cloud-site never printed its address (scan err %v)", scanner.Err())
	}

	const speedup = 86_400
	syncEvery := 10 * time.Millisecond
	s, err := newServer(options{
		seed: 15, speedup: speedup, clockSync: syncEvery,
		sites: siteList{{name: core.ClusterSullivan, url: siteURL}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.handler)
	defer srv.Close()
	tok := login(t, srv.URL)

	// Status: the in-process Adler and the subprocess Sullivan.
	resp := consoleDo(t, srv.URL, "GET", "/console/status", tok, "")
	var status struct {
		Clouds []string `json:"clouds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(status.Clouds) != 2 {
		t.Fatalf("clouds = %v, want Adler + subprocess Sullivan", status.Clouds)
	}

	// Launch on the subprocess cloud: console → middleware → EC2 dialect
	// over the wire → another OS process.
	resp = consoleDo(t, srv.URL, "POST", "/console/launch", tok,
		`{"cloud":"`+core.ClusterSullivan+`","name":"proc-vm","flavor":"m1.large"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("launch on subprocess site: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// The listing crosses the boundary too.
	resp = consoleDo(t, srv.URL, "GET", "/console/instances", tok, "")
	var list struct {
		Servers []struct {
			Cloud string `json:"cloud"`
			ID    string `json:"id"`
		} `json:"servers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Servers) != 1 || list.Servers[0].Cloud != core.ClusterSullivan {
		t.Fatalf("aggregated listing = %+v", list.Servers)
	}

	// Usage accrual proves the subprocess engine advances — and the ONLY
	// thing that can advance it is the coordinator pushing the console's
	// clock across the process boundary.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp := consoleDo(t, srv.URL, "GET", "/console/usage", tok, "")
		var usage struct {
			CoreHours float64 `json:"core_hours"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&usage); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if usage.CoreHours > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("usage never accrued: subprocess clock is not being synced")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Bounded skew across the process boundary.
	if s.fed.ClockSync == nil {
		t.Fatal("no coordinator running")
	}
	deadline = time.Now().Add(10 * time.Second)
	for s.fed.ClockSync.Syncs() < 20 {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator completed only %d sync rounds against the subprocess", s.fed.ClockSync.Syncs())
		}
		time.Sleep(5 * time.Millisecond)
	}
	bound := 0.5 * speedup * syncEvery.Seconds()
	for _, st := range s.fed.ClockSync.Stats() {
		if st.Syncs == 0 {
			t.Errorf("site %s never synced", st.Site)
		}
		if st.MaxExcess > bound {
			t.Errorf("site %s skew exceeded one sync interval by %.0f virtual s (slack %.0f)",
				st.Site, st.MaxExcess, bound)
		}
	}

	// Terminate through the console; the subprocess cloud empties.
	resp = consoleDo(t, srv.URL, "POST", "/console/terminate", tok,
		`{"cloud":"`+core.ClusterSullivan+`","id":"`+list.Servers[0].ID+`"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("terminate across processes: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}
