// Command tukey-server runs the Tukey Console and middleware as a real HTTP
// service over a freshly built OSDC federation, with both cloud stacks'
// native APIs mounted on loopback. A demo researcher account
// (demo / demo-pw, Shibboleth) is pre-enrolled.
//
// A wall-clock driver advances the federation's simulation clock while the
// server runs (default 60 simulated seconds per wall second, so a wall
// minute meters an hour of VM time): billing pollers, monitoring sweeps and
// VM boot timers all fire under live traffic, and /console/usage actually
// accrues.
//
// Usage:
//
//	tukey-server [-addr :8080] [-speedup 60] [-session-ttl 12h]
//
// Then:
//
//	curl -s -X POST localhost:8080/login \
//	  -d '{"provider":"shibboleth","username":"demo","secret":"demo-pw"}'
//	curl -s localhost:8080/console/instances -H "X-Tukey-Session: <token>"
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"osdc/internal/core"
	"osdc/internal/iaas"
	"osdc/internal/sim"
	"osdc/internal/tukey"
)

// server is the assembled service: the federation, its console handler,
// and the clock driver keeping the simulation live.
type server struct {
	fed     *core.Federation
	console *tukey.Console
	driver  *sim.Driver
	close   func() // shuts the native-API listeners down
}

// newServer builds the federation, mounts both native cloud APIs on
// loopback listeners, enrolls the demo researcher, and starts the clock
// driver (speedup simulated seconds per wall second; <= 0 leaves the clock
// stopped, which tests use to advance it manually).
func newServer(seed uint64, speedup float64, sessionTTL time.Duration) (*server, error) {
	f, err := core.New(core.Options{Seed: seed, Scale: 4})
	if err != nil {
		return nil, err
	}

	novaLn, novaURL, err := serve(&iaas.NovaAPI{Cloud: f.Adler})
	if err != nil {
		return nil, err
	}
	eucaLn, eucaURL, err := serve(&iaas.EucaAPI{Cloud: f.Sullivan})
	if err != nil {
		novaLn.Close()
		return nil, err
	}
	f.Tukey.AttachCloud(tukey.CloudConfig{Name: core.ClusterAdler, Stack: "openstack", Endpoint: novaURL})
	f.Tukey.AttachCloud(tukey.CloudConfig{Name: core.ClusterSullivan, Stack: "eucalyptus", Endpoint: eucaURL})
	if sessionTTL > 0 {
		f.Tukey.SetSessionTTL(sessionTTL)
	}

	f.EnrollResearcher("demo", "demo-pw")
	f.Adler.SetQuota("demo", iaas.Quota{MaxInstances: 10, MaxCores: 64})
	f.Sullivan.SetQuota("demo", iaas.Quota{MaxInstances: 10, MaxCores: 64})

	s := &server{
		fed:     f,
		console: &tukey.Console{MW: f.Tukey, Biller: f.Biller, Catalog: f.Catalog},
		close: func() {
			novaLn.Close()
			eucaLn.Close()
		},
	}
	if speedup > 0 {
		s.driver = sim.StartDriver(f.Engine, speedup, 5*time.Millisecond)
	}
	log.Printf("OSDC up: adler(openstack)=%s sullivan(eucalyptus)=%s", novaURL, eucaURL)
	return s, nil
}

// Close stops the driver and the native-API listeners.
func (s *server) Close() {
	if s.driver != nil {
		s.driver.Stop()
	}
	s.close()
}

func main() {
	addr := flag.String("addr", ":8080", "console listen address")
	speedup := flag.Float64("speedup", 60, "simulated seconds advanced per wall second (0 freezes the clock)")
	sessionTTL := flag.Duration("session-ttl", 12*time.Hour, "wall-clock session lifetime (0 = never expire)")
	flag.Parse()

	s, err := newServer(1, *speedup, *sessionTTL)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	log.Printf("Tukey console on %s — login with demo/demo-pw (shibboleth); clock at %gx", *addr, *speedup)
	log.Fatal(http.ListenAndServe(*addr, s.console))
}

// serve mounts a handler on an ephemeral loopback port and returns the
// listener (for shutdown) and its URL.
func serve(h http.Handler) (net.Listener, string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	go func() {
		if err := http.Serve(ln, h); err != nil {
			log.Printf("backend server: %v", err)
		}
	}()
	return ln, fmt.Sprintf("http://%s", ln.Addr()), nil
}
