// Command tukey-server runs the Tukey Console and middleware as a real HTTP
// service over a freshly built OSDC federation, with both cloud stacks'
// native APIs mounted on loopback. A demo researcher account
// (demo / demo-pw, Shibboleth) is pre-enrolled.
//
// A wall-clock driver advances the federation's simulation clock while the
// server runs (default 60 simulated seconds per wall second, so a wall
// minute meters an hour of VM time): billing pollers, monitoring sweeps and
// VM boot timers all fire under live traffic, and /console/usage actually
// accrues.
//
// Topology: by default both clouds share the federation engine behind
// per-cloud loopback servers (single process, one clock). With
// -remote-clouds every cloud instead runs as its own site — a private
// sim.Engine, its own clock source, its own HTTP listener — and the
// console, billing and monitoring reach it only through cloudapi.Remote
// clients speaking the cloud's native dialect, the paper's actual
// deployment shape (§5.2, §7). With -site name=url a cloud is not built
// in-process at all: the named cloud is expected to be an externally
// running cloud-site process (cmd/cloud-site), attached by URL.
//
// Clock plane: -clock-sync <interval> puts every in-process remote site in
// follow mode and starts a coordinator pushing the console engine's
// virtual time to each followed site (in-process or external) every
// interval, bounding cross-engine skew to about one sync interval. The
// console's own clock is served at GET /clock for cloud-site processes
// that poll rather than accept pushes.
//
// Data plane: -replication-factor N starts the replication coordinator —
// every catalog dataset is kept at N replicas across the sites' dataset
// stores (OSDC-Root holds the master copies; each cloud site serves its
// store on /cloudapi/datasets), transfers priced as simulated UDT flows
// over the WAN topology. The console gains /console/datasets/replicas
// (placement view) and /console/datasets/stage (pre-launch placement).
//
// Auth: -operator-secret gates every mutating operator-plane request on
// the cloud servers (clock targets, quotas, dataset replicas) behind a
// shared-secret header; pass the same value to external cloud-sites.
//
// Usage:
//
//	tukey-server [-addr :8080] [-speedup 60] [-shards K] [-session-ttl 12h]
//	             [-session-file sessions.json] [-remote-clouds]
//	             [-site name=url ...] [-clock-sync 50ms]
//	             [-site-timeout 10s] [-rate-limit N] [-rate-burst M]
//	             [-replication-factor N] [-replication-interval 200ms]
//	             [-operator-secret S] [-state-url http://...] [-replica r1]
//
// Replica mode: with -state-url the server keeps no session or rate-limit
// state of its own — tokens resolve through the tukey-state service and
// admission draws on its shared per-user budgets, so any number of such
// replicas (each with a distinct -replica name) behind cmd/tukey-lb behave
// as one console: kill a replica and its users' sessions keep working on
// the survivors. GET /healthz is the balancer's probe endpoint.
//
// Then:
//
//	curl -s -X POST localhost:8080/login \
//	  -d '{"provider":"shibboleth","username":"demo","secret":"demo-pw"}'
//	curl -s localhost:8080/console/instances -H "X-Tukey-Session: <token>"
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"osdc/internal/cloudapi"
	"osdc/internal/core"
	"osdc/internal/datastore"
	"osdc/internal/iaas"
	"osdc/internal/sim"
	"osdc/internal/telemetry"
	"osdc/internal/tukey"
	"osdc/internal/tukeystate"
)

// sitePair is one -site flag value: an externally running cloud-site to
// attach instead of building that cloud in-process.
type sitePair struct {
	name string
	url  string
}

// siteList collects repeated -site flags.
type siteList []sitePair

func (s *siteList) String() string {
	parts := make([]string, len(*s))
	for i, p := range *s {
		parts[i] = p.name + "=" + p.url
	}
	return strings.Join(parts, ",")
}

func (s *siteList) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return errors.New("want name=url")
	}
	for _, p := range *s {
		if p.name == name {
			return fmt.Errorf("cloud %s attached twice", name)
		}
	}
	*s = append(*s, sitePair{name: name, url: url})
	return nil
}

// options bundle the server knobs (one struct so tests can set exactly
// what they exercise).
type options struct {
	seed         uint64
	shards       int           // kernel shard count on the live path; <= 1 = single engine
	speedup      float64       // simulated seconds per wall second; <= 0 freezes every clock
	sessionTTL   time.Duration // 0 = sessions never expire
	sessionFile  string        // persistent session store; "" = in-memory
	remoteClouds bool          // per-site topology: one engine + listener per cloud
	sites        siteList      // externally running cloud-sites to attach by URL
	siteTimeout  time.Duration // per-request deadline on site transports; 0 = cloudapi.DefaultTimeout
	clockSync    time.Duration // push console time to followed sites this often; 0 = free-run
	rateLimit    float64       // per-user console requests/second; 0 = off
	rateBurst    float64       // per-user burst; 0 = 2× rateLimit
	// replicationFactor keeps every catalog dataset at N replicas across
	// the site stores; 0 leaves the data plane passive (stores served,
	// no coordinator).
	replicationFactor   int
	replicationInterval time.Duration // coordinator round period; 0 = 200ms
	operatorSecret      string        // gates operator-plane writes when set
	// stateURL points at a tukey-state service; when set this replica holds
	// no session or rate-limit state of its own — sessions resolve through
	// a RemoteSessionStore and admission through a RemoteLimiter, so any
	// number of replicas behind tukey-lb behave as one console.
	stateURL string
	// replica names this replica; it becomes the session-token prefix, so
	// replicas sharing a state plane never mint colliding tokens. Required
	// when stateURL is set.
	replica string
	// telemetryScrape starts the cross-site collector: every interval the
	// console scrapes each attached cloud's /metrics and folds the series
	// (member-labelled) into its own plane. 0 = no collector.
	telemetryScrape time.Duration
	// streamPeriod is the /console/stream cadence in simulated seconds
	// (virtual clock, so frames land deterministically); 0 = 1s.
	streamPeriod float64
}

// server is the assembled service: the federation, its console handler,
// the clock drivers keeping the simulation(s) live, and every listener to
// shut down.
type server struct {
	fed       *core.Federation
	console   *tukey.Console
	handler   http.Handler     // console plus the /clock coordinator endpoint
	driver    *sim.Driver      // console-side clock; nil when frozen
	sites     []*cloudapi.Site // per-cloud worlds in -remote-clouds mode
	metrics   *telemetry.Registry
	collector *telemetry.Collector // cross-site scraper; nil without -telemetry-scrape
	stream    *telemetry.Streamer
	close     func() // shuts the native-API listeners down
}

// newServer builds the federation in the requested topology, enrolls the
// demo researcher, and starts the clock source(s) and coordinator.
func newServer(opt options) (*server, error) {
	f, err := core.New(core.Options{Seed: opt.seed, Scale: 4, Shards: opt.shards})
	if err != nil {
		return nil, err
	}
	if opt.sessionTTL > 0 {
		f.Tukey.SetSessionTTL(opt.sessionTTL)
	}
	if opt.sessionFile != "" {
		store, err := tukey.NewFileSessionStore(opt.sessionFile)
		if err != nil {
			return nil, err
		}
		f.Tukey.SetSessionStore(store)
		if n := store.Count(); n > 0 {
			log.Printf("session store %s: %d sessions survive the restart", opt.sessionFile, n)
		}
	}
	if opt.stateURL != "" {
		if opt.sessionFile != "" {
			return nil, errors.New("-state-url and -session-file are mutually exclusive: the state plane owns the sessions")
		}
		if opt.replica == "" {
			return nil, errors.New("-state-url needs -replica: replicas sharing a store must mint distinct tokens")
		}
		f.Tukey.SetSessionStore(tukeystate.NewRemoteSessionStore(opt.stateURL, nil))
		f.Tukey.SetTokenPrefix(opt.replica + "-")
		log.Printf("replica %s: sessions and admission served by state plane at %s", opt.replica, opt.stateURL)
	}
	siteClient := &http.Client{Timeout: cloudapi.DefaultTimeout}
	if opt.siteTimeout > 0 {
		siteClient = &http.Client{Timeout: opt.siteTimeout}
		f.Tukey.SetHTTPTimeout(opt.siteTimeout)
	}

	s := &server{fed: f, close: func() {}}
	// apis reach each cloud's operator plane for quota administration.
	apis := make(map[string]cloudapi.CloudAPI)
	// pollAPIs is what billing/monitoring watch when any cloud is remote.
	var pollAPIs []cloudapi.CloudAPI
	// syncTargets are the followed clock planes the coordinator pushes to.
	var syncTargets []cloudapi.ClockSyncTarget
	// dataSites are the dataset planes the replication coordinator
	// places replicas across; OSDC-Root always anchors the master copies.
	dataSites := []datastore.API{f.Stores[core.ClusterRoot]}
	// cloudServers are the in-process per-cloud HTTP servers, kept so the
	// console can read their usage-cache counters directly.
	cloudServers := map[string]*cloudapi.Server{}
	// usageRemotes are the delta-capable usage clients whose cache health
	// the telemetry plane reports.
	var usageRemotes []*cloudapi.Remote
	// members are every attached cloud's /metrics endpoint — what the
	// cross-site collector scrapes.
	var members []telemetry.Member

	external := map[string]string{}
	for _, p := range opt.sites {
		external[p.name] = p.url
	}
	inProcess := make([]string, 0, 2)
	for _, name := range []string{core.ClusterAdler, core.ClusterSullivan} {
		if _, ok := external[name]; !ok {
			inProcess = append(inProcess, name)
		}
	}

	clockMode := cloudapi.ClockFreeRun
	if opt.clockSync > 0 {
		clockMode = cloudapi.ClockFollow
	}

	if opt.remoteClouds {
		// Every in-process cloud becomes a site: own engine (offset seeds
		// keep the worlds distinct), own clock source, own listener. The
		// console-side services are rewired onto Remote transports — after
		// this, a cloud is an address. In follow mode the site clock only
		// moves when the coordinator pushes (speedup caps nothing: 0 =
		// jump to each target).
		speedup := opt.speedup
		if clockMode == cloudapi.ClockFollow {
			speedup = 0
		}
		sites, err := f.StartRemoteSitesWithOptions(core.RemoteSiteOptions{
			Seed: opt.seed, Scale: 4, Speedup: speedup,
			Clock: clockMode, Client: siteClient, Clouds: inProcess,
			Datasets: true, OperatorSecret: opt.operatorSecret,
			Shards: opt.shards,
		})
		if err != nil {
			s.Close()
			return nil, err
		}
		s.sites = sites
		for _, site := range sites {
			remote := site.RemoteWithClient(siteClient)
			apis[site.Cloud.Name] = remote
			pollAPIs = append(pollAPIs, remote)
			cloudServers[site.Cloud.Name] = site.Server()
			usageRemotes = append(usageRemotes, remote)
			members = append(members, telemetry.Member{Name: site.Cloud.Name, URL: site.URL})
			if clockMode == cloudapi.ClockFollow {
				syncTargets = append(syncTargets, remote)
			}
			dataSites = append(dataSites, site.DatasetsRemote(siteClient))
			log.Printf("cloud site %s (%s) on %s, private engine (%s clock)",
				site.Cloud.Name, site.Cloud.Stack, site.URL, site.Mode)
		}
	} else {
		for _, name := range inProcess {
			c := f.Adler
			if name == core.ClusterSullivan {
				c = f.Sullivan
			}
			srv := cloudapi.NewServer(c)
			// The shared federation engine is readable on each cloud's
			// clock plane even in the single-process topology, and the
			// cloud's dataset store is served on its datasets plane.
			srv.Clock = cloudapi.EngineClock{E: f.Engine}
			srv.Datasets = f.Stores[name]
			srv.OperatorSecret = opt.operatorSecret
			dataSites = append(dataSites, f.Stores[name])
			ln, url, err := serve(srv)
			if err != nil {
				s.Close()
				return nil, err
			}
			prev := s.close
			s.close = func() { prev(); ln.Close() }
			cloudServers[name] = srv
			members = append(members, telemetry.Member{Name: name, URL: url})
			f.Tukey.AttachCloud(tukey.CloudConfig{Name: c.Name, Stack: c.Stack, Endpoint: url})
			api := f.AdlerAPI
			if name == core.ClusterSullivan {
				api = f.SullivanAPI
			}
			apis[name] = api
			pollAPIs = append(pollAPIs, api)
			log.Printf("cloud %s (%s) on %s, shared engine", c.Name, c.Stack, url)
		}
	}

	// Externally running cloud-sites: probe each URL's discovery document,
	// attach the Remote to the console, and fold it into polling and —
	// when it follows — clock sync.
	for _, p := range opt.sites {
		remote, err := cloudapi.ProbeRemote(p.url, siteClient)
		if err != nil {
			s.Close()
			return nil, err
		}
		if remote.Name() != p.name {
			s.Close()
			return nil, fmt.Errorf("site %s reports cloud %q, not %q", p.url, remote.Name(), p.name)
		}
		remote.SetOperatorSecret(opt.operatorSecret)
		f.Tukey.AttachCloud(tukey.CloudConfig{API: remote})
		if ds, err := datastore.ProbeRemote(p.url, siteClient); err == nil {
			ds.SetOperatorSecret(opt.operatorSecret)
			dataSites = append(dataSites, ds)
		} else if opt.replicationFactor > 0 {
			// With replication requested, silently skipping a site's data
			// plane would under-place every dataset; fail loudly instead.
			s.Close()
			return nil, fmt.Errorf("site %s at %s: datasets plane unreadable with -replication-factor on: %w", p.name, p.url, err)
		}
		apis[p.name] = remote
		pollAPIs = append(pollAPIs, remote)
		usageRemotes = append(usageRemotes, remote)
		members = append(members, telemetry.Member{Name: p.name, URL: p.url})
		mode := "unknown"
		st, clockErr := remote.Clock()
		if clockErr == nil {
			mode = st.Mode
			if st.Mode == cloudapi.ClockFollow.String() && opt.clockSync > 0 {
				syncTargets = append(syncTargets, remote)
			}
		} else if opt.clockSync > 0 {
			// With clock sync requested, silently excluding a site from
			// the coordinator would freeze its virtual clock forever (a
			// follower with no pushes holds still). Fail loudly instead:
			// the operator retries once the site answers its clock plane.
			s.Close()
			return nil, fmt.Errorf("site %s at %s: clock plane unreadable with -clock-sync on: %w", p.name, p.url, clockErr)
		}
		log.Printf("external cloud site %s (%s) attached at %s (%s clock)", p.name, remote.Stack(), p.url, mode)
	}

	// Rewire billing/monitoring when any cloud sits behind a transport the
	// default federation wiring does not watch. In pure -remote-clouds
	// mode StartRemoteSitesWithOptions already did this rewire; only
	// external sites extend the poll set beyond it.
	if len(opt.sites) > 0 {
		f.UseCloudAPIs(pollAPIs...)
	}

	f.EnrollResearcher("demo", "demo-pw")
	for _, api := range apis {
		if err := api.SetQuota("demo", iaas.Quota{MaxInstances: 10, MaxCores: 64}); err != nil {
			s.Close()
			return nil, err
		}
	}

	// The data plane: keep every catalog dataset at the target factor
	// across the attached site stores, and expose placement + staging on
	// the console.
	if opt.replicationFactor > 0 {
		interval := opt.replicationInterval
		if interval <= 0 {
			interval = 200 * time.Millisecond
		}
		f.StartReplication(core.ReplicationOptions{
			Factor: opt.replicationFactor, Interval: interval,
			Seed: opt.seed, Sites: dataSites,
		})
		log.Printf("replication coordinator: factor %d over %d site stores, round every %v",
			opt.replicationFactor, len(dataSites), interval)
	}

	s.console = &tukey.Console{MW: f.Tukey, Biller: f.Biller, Catalog: f.Catalog, UsageMon: f.UsageMon,
		Replication: f.Replication}
	switch {
	case opt.stateURL != "":
		if opt.rateLimit > 0 {
			return nil, errors.New("-rate-limit is configured on tukey-state, not the replica, when -state-url is set")
		}
		s.console.Limiter = tukeystate.NewRemoteLimiter(opt.stateURL, nil)
	case opt.rateLimit > 0:
		burst := opt.rateBurst
		if burst <= 0 {
			burst = 2 * opt.rateLimit
		}
		s.console.Limiter = tukey.NewRateLimiter(opt.rateLimit, burst)
	}

	// --- telemetry plane: one registry fed by every in-process source,
	// the collector folding in member-labelled remote series, the streamer
	// framing deltas on the virtual clock for /console/stream ---
	reg := telemetry.NewRegistry()
	s.metrics = reg
	f.RegisterTelemetry(reg)
	s.console.RegisterMetrics(reg)
	cloudapi.RegisterUsageDeltaClients(reg, usageRemotes...)
	s.console.UsageCacheHits = func() map[string]int64 {
		out := make(map[string]int64, len(cloudServers))
		for name, srv := range cloudServers {
			out[name] = srv.UsageCacheHits.Load()
		}
		return out
	}
	if opt.telemetryScrape > 0 && len(members) > 0 {
		s.collector = telemetry.NewCollector(opt.operatorSecret, siteClient, members...)
		s.collector.RegisterMetrics(reg)
		s.collector.Start(opt.telemetryScrape)
		log.Printf("telemetry collector: scraping %d member(s) every %v", len(members), opt.telemetryScrape)
	}
	col := s.collector
	s.stream = telemetry.NewStreamer(func() map[string]float64 {
		snap := reg.Snapshot()
		if col != nil {
			for k, v := range col.Snapshot() {
				snap[k] = v
			}
		}
		return snap
	})
	streamPeriod := opt.streamPeriod
	if streamPeriod <= 0 {
		streamPeriod = 1
	}
	s.stream.Start(f.Engine, sim.Duration(streamPeriod))
	s.console.Stream = s.stream

	mux := http.NewServeMux()
	mux.Handle("/", s.console)
	// GET /healthz is what tukey-lb probes: 200 means this replica is
	// taking traffic.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok", "replica": opt.replica})
	})
	// GET /clock is the coordinator's readable face: cloud-site processes
	// started with -clock-follow <this server's URL> poll it. Same wire
	// form as every site's /cloudapi/clock (cloudapi.ClockStatus).
	consoleClock := cloudapi.EngineClock{E: f.Engine}
	mux.HandleFunc("/clock", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(consoleClock.ClockStatus())
	})
	// /debug/pprof/ rides the same operator gate as the cloud servers:
	// absent without -operator-secret, 403 without the matching
	// X-OSDC-Operator header.
	mux.HandleFunc("/debug/pprof/", func(w http.ResponseWriter, r *http.Request) {
		cloudapi.ServePprof(opt.operatorSecret, w, r)
	})
	// GET /metrics rides the same operator gate: the console's own plane
	// plus everything the collector folded in from member clouds.
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		telemetry.ServeMetrics(opt.operatorSecret, reg, w, r)
	})
	s.handler = mux

	if opt.speedup > 0 {
		// A sharded kernel must advance every shard in lockstep — driving
		// only the anchor would strand instances homed on other shards with
		// frozen boot and stop timers.
		if f.Set.K() > 1 {
			s.driver = sim.StartShardDriver(f.Set, opt.speedup, 5*time.Millisecond)
		} else {
			s.driver = sim.StartDriver(f.Engine, opt.speedup, 5*time.Millisecond)
		}
	}
	if opt.clockSync > 0 && len(syncTargets) > 0 {
		f.StartClockSync(opt.clockSync, syncTargets...)
		s.console.ClockSync = f.ClockSync
	}
	return s, nil
}

// Close stops the coordinators, every clock source and every listener.
func (s *server) Close() {
	s.fed.StopReplication()
	s.fed.StopClockSync()
	if s.collector != nil {
		s.collector.Stop()
	}
	if s.stream != nil {
		s.stream.Close()
	}
	if s.driver != nil {
		s.driver.Stop()
	}
	for _, site := range s.sites {
		site.Close()
	}
	s.close()
}

func main() {
	addr := flag.String("addr", ":8080", "console listen address")
	speedup := flag.Float64("speedup", 60, "simulated seconds advanced per wall second (0 freezes the clock)")
	shards := flag.Int("shards", 1, "simulation kernel shards on the live path (1 = single engine, bit-identical to the historic behavior)")
	sessionTTL := flag.Duration("session-ttl", 12*time.Hour, "wall-clock session lifetime (0 = never expire)")
	sessionFile := flag.String("session-file", "", "persist sessions to this JSON file so restarts keep users logged in")
	remote := flag.Bool("remote-clouds", false, "run each cloud behind its own HTTP listener with its own engine and clock")
	siteTimeout := flag.Duration("site-timeout", cloudapi.DefaultTimeout, "per-request deadline for reaching cloud sites")
	clockSync := flag.Duration("clock-sync", 0, "sync followed site clocks to the console engine this often (0 = free-run)")
	rateLimit := flag.Float64("rate-limit", 0, "per-user console requests/second (0 = unlimited)")
	rateBurst := flag.Float64("rate-burst", 0, "per-user burst size (0 = 2× -rate-limit)")
	replicationFactor := flag.Int("replication-factor", 0, "keep every catalog dataset at N site replicas (0 = no coordinator)")
	replicationInterval := flag.Duration("replication-interval", 200*time.Millisecond, "replication coordinator round period")
	operatorSecret := flag.String("operator-secret", "", "shared secret gating operator-plane writes on cloud servers")
	stateURL := flag.String("state-url", "", "tukey-state service URL; makes this a stateless replica (requires -replica)")
	replica := flag.String("replica", "", "replica name; prefixes session tokens so replicas sharing a state plane never collide")
	telemetryScrape := flag.Duration("telemetry-scrape", 0, "scrape every attached cloud's /metrics this often into the console plane (0 = off)")
	streamPeriod := flag.Float64("stream-period", 1, "/console/stream frame cadence in simulated seconds")
	var sites siteList
	flag.Var(&sites, "site", "attach an externally running cloud-site as name=url (repeatable)")
	flag.Parse()

	s, err := newServer(options{
		seed: 1, shards: *shards, speedup: *speedup, sessionTTL: *sessionTTL, sessionFile: *sessionFile,
		remoteClouds: *remote, sites: sites, siteTimeout: *siteTimeout, clockSync: *clockSync,
		rateLimit: *rateLimit, rateBurst: *rateBurst,
		replicationFactor: *replicationFactor, replicationInterval: *replicationInterval,
		operatorSecret: *operatorSecret, stateURL: *stateURL, replica: *replica,
		telemetryScrape: *telemetryScrape, streamPeriod: *streamPeriod,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	topology := "single-process"
	if *remote {
		topology = "per-site remote"
	}
	if len(sites) > 0 {
		topology += fmt.Sprintf(" + %d external site(s)", len(sites))
	}
	log.Printf("Tukey console on %s (%s topology) — login with demo/demo-pw (shibboleth); clock at %gx",
		*addr, topology, *speedup)
	log.Fatal(http.ListenAndServe(*addr, s.handler))
}

// serve mounts a handler on an ephemeral loopback port and returns the
// listener (for shutdown) and its URL.
func serve(h http.Handler) (net.Listener, string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	go func() {
		if err := http.Serve(ln, h); err != nil {
			log.Printf("backend server: %v", err)
		}
	}()
	return ln, fmt.Sprintf("http://%s", ln.Addr()), nil
}
