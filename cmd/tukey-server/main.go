// Command tukey-server runs the Tukey Console and middleware as a real HTTP
// service over a freshly built OSDC federation, with both cloud stacks'
// native APIs mounted on loopback. A demo researcher account
// (demo / demo-pw, Shibboleth) is pre-enrolled.
//
// A wall-clock driver advances the federation's simulation clock while the
// server runs (default 60 simulated seconds per wall second, so a wall
// minute meters an hour of VM time): billing pollers, monitoring sweeps and
// VM boot timers all fire under live traffic, and /console/usage actually
// accrues.
//
// Topology: by default both clouds share the federation engine behind
// per-cloud loopback servers (single process, one clock). With
// -remote-clouds every cloud instead runs as its own site — a private
// sim.Engine, its own wall-clock driver, its own HTTP listener — and the
// console, billing and monitoring reach it only through cloudapi.Remote
// clients speaking the cloud's native dialect, the paper's actual
// deployment shape (§5.2, §7).
//
// Usage:
//
//	tukey-server [-addr :8080] [-speedup 60] [-session-ttl 12h]
//	             [-remote-clouds] [-rate-limit N] [-rate-burst M]
//
// Then:
//
//	curl -s -X POST localhost:8080/login \
//	  -d '{"provider":"shibboleth","username":"demo","secret":"demo-pw"}'
//	curl -s localhost:8080/console/instances -H "X-Tukey-Session: <token>"
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"osdc/internal/cloudapi"
	"osdc/internal/core"
	"osdc/internal/iaas"
	"osdc/internal/sim"
	"osdc/internal/tukey"
)

// options bundle the server knobs (one struct so tests can set exactly
// what they exercise).
type options struct {
	seed         uint64
	speedup      float64       // simulated seconds per wall second; <= 0 freezes every clock
	sessionTTL   time.Duration // 0 = sessions never expire
	remoteClouds bool          // per-site topology: one engine + listener per cloud
	rateLimit    float64       // per-user console requests/second; 0 = off
	rateBurst    float64       // per-user burst; 0 = 2× rateLimit
}

// server is the assembled service: the federation, its console handler,
// the clock drivers keeping the simulation(s) live, and every listener to
// shut down.
type server struct {
	fed     *core.Federation
	console *tukey.Console
	driver  *sim.Driver      // console-side clock; nil when frozen
	sites   []*cloudapi.Site // per-cloud worlds in -remote-clouds mode
	close   func()           // shuts the native-API listeners down
}

// newServer builds the federation in the requested topology, enrolls the
// demo researcher, and starts the clock driver(s).
func newServer(opt options) (*server, error) {
	f, err := core.New(core.Options{Seed: opt.seed, Scale: 4})
	if err != nil {
		return nil, err
	}
	if opt.sessionTTL > 0 {
		f.Tukey.SetSessionTTL(opt.sessionTTL)
	}

	s := &server{fed: f, close: func() {}}
	// apis reach each cloud's operator plane for quota administration.
	apis := make(map[string]cloudapi.CloudAPI)

	if opt.remoteClouds {
		// Every cloud becomes a site: own engine (offset seeds keep the
		// worlds distinct), own driver, own listener. The console-side
		// services are rewired onto Remote transports — after this, a
		// cloud is an address.
		sites, err := f.StartRemoteSites(opt.seed, 4, opt.speedup)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.sites = sites
		for _, site := range sites {
			apis[site.Cloud.Name] = site.Remote()
			log.Printf("cloud site %s (%s) on %s, private engine", site.Cloud.Name, site.Cloud.Stack, site.URL)
		}
	} else {
		novaLn, novaURL, err := serve(cloudapi.NewServer(f.Adler))
		if err != nil {
			return nil, err
		}
		eucaLn, eucaURL, err := serve(cloudapi.NewServer(f.Sullivan))
		if err != nil {
			novaLn.Close()
			return nil, err
		}
		s.close = func() {
			novaLn.Close()
			eucaLn.Close()
		}
		f.Tukey.AttachCloud(tukey.CloudConfig{Name: core.ClusterAdler, Stack: "openstack", Endpoint: novaURL})
		f.Tukey.AttachCloud(tukey.CloudConfig{Name: core.ClusterSullivan, Stack: "eucalyptus", Endpoint: eucaURL})
		apis[core.ClusterAdler] = f.AdlerAPI
		apis[core.ClusterSullivan] = f.SullivanAPI
		log.Printf("OSDC up: adler(openstack)=%s sullivan(eucalyptus)=%s", novaURL, eucaURL)
	}

	f.EnrollResearcher("demo", "demo-pw")
	for _, api := range apis {
		if err := api.SetQuota("demo", iaas.Quota{MaxInstances: 10, MaxCores: 64}); err != nil {
			s.Close()
			return nil, err
		}
	}

	s.console = &tukey.Console{MW: f.Tukey, Biller: f.Biller, Catalog: f.Catalog}
	if opt.rateLimit > 0 {
		burst := opt.rateBurst
		if burst <= 0 {
			burst = 2 * opt.rateLimit
		}
		s.console.Limiter = tukey.NewRateLimiter(opt.rateLimit, burst)
	}
	if opt.speedup > 0 {
		s.driver = sim.StartDriver(f.Engine, opt.speedup, 5*time.Millisecond)
	}
	return s, nil
}

// Close stops every driver and listener.
func (s *server) Close() {
	if s.driver != nil {
		s.driver.Stop()
	}
	for _, site := range s.sites {
		site.Close()
	}
	s.close()
}

func main() {
	addr := flag.String("addr", ":8080", "console listen address")
	speedup := flag.Float64("speedup", 60, "simulated seconds advanced per wall second (0 freezes the clock)")
	sessionTTL := flag.Duration("session-ttl", 12*time.Hour, "wall-clock session lifetime (0 = never expire)")
	remote := flag.Bool("remote-clouds", false, "run each cloud behind its own HTTP listener with its own engine and clock driver")
	rateLimit := flag.Float64("rate-limit", 0, "per-user console requests/second (0 = unlimited)")
	rateBurst := flag.Float64("rate-burst", 0, "per-user burst size (0 = 2× -rate-limit)")
	flag.Parse()

	s, err := newServer(options{
		seed: 1, speedup: *speedup, sessionTTL: *sessionTTL,
		remoteClouds: *remote, rateLimit: *rateLimit, rateBurst: *rateBurst,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	topology := "single-process"
	if *remote {
		topology = "per-site remote"
	}
	log.Printf("Tukey console on %s (%s topology) — login with demo/demo-pw (shibboleth); clock at %gx",
		*addr, topology, *speedup)
	log.Fatal(http.ListenAndServe(*addr, s.console))
}

// serve mounts a handler on an ephemeral loopback port and returns the
// listener (for shutdown) and its URL.
func serve(h http.Handler) (net.Listener, string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	go func() {
		if err := http.Serve(ln, h); err != nil {
			log.Printf("backend server: %v", err)
		}
	}()
	return ln, fmt.Sprintf("http://%s", ln.Addr()), nil
}
