// Command tukey-server runs the Tukey Console and middleware as a real HTTP
// service over a freshly built OSDC federation, with both cloud stacks'
// native APIs mounted on loopback. A demo researcher account
// (demo / demo-pw, Shibboleth) is pre-enrolled.
//
// Usage:
//
//	tukey-server [-addr :8080]
//
// Then:
//
//	curl -s -X POST localhost:8080/login \
//	  -d '{"provider":"shibboleth","username":"demo","secret":"demo-pw"}'
//	curl -s localhost:8080/console/instances -H "X-Tukey-Session: <token>"
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"

	"osdc/internal/core"
	"osdc/internal/iaas"
	"osdc/internal/tukey"
)

func main() {
	addr := flag.String("addr", ":8080", "console listen address")
	flag.Parse()

	f, err := core.New(core.Options{Seed: 1, Scale: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Native cloud APIs on loopback listeners.
	novaURL, err := serve(&iaas.NovaAPI{Cloud: f.Adler})
	if err != nil {
		log.Fatal(err)
	}
	eucaURL, err := serve(&iaas.EucaAPI{Cloud: f.Sullivan})
	if err != nil {
		log.Fatal(err)
	}
	f.Tukey.AttachCloud(tukey.CloudConfig{Name: core.ClusterAdler, Stack: "openstack", Endpoint: novaURL})
	f.Tukey.AttachCloud(tukey.CloudConfig{Name: core.ClusterSullivan, Stack: "eucalyptus", Endpoint: eucaURL})

	f.EnrollResearcher("demo", "demo-pw")
	f.Adler.SetQuota("demo", iaas.Quota{MaxInstances: 10, MaxCores: 64})
	f.Sullivan.SetQuota("demo", iaas.Quota{MaxInstances: 10, MaxCores: 64})

	console := &tukey.Console{MW: f.Tukey, Biller: f.Biller, Catalog: f.Catalog}
	log.Printf("OSDC up: adler(openstack)=%s sullivan(eucalyptus)=%s", novaURL, eucaURL)
	log.Printf("Tukey console on %s — login with demo/demo-pw (shibboleth)", *addr)
	log.Fatal(http.ListenAndServe(*addr, console))
}

// serve mounts a handler on an ephemeral loopback port and returns its URL.
func serve(h http.Handler) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go func() {
		if err := http.Serve(ln, h); err != nil {
			log.Printf("backend server: %v", err)
		}
	}()
	return fmt.Sprintf("http://%s", ln.Addr()), nil
}
