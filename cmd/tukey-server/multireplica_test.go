package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"osdc/internal/cloudapi"
	"osdc/internal/core"
	"osdc/internal/lb"
	"osdc/internal/sim"
	"osdc/internal/telemetry"
	"osdc/internal/tukey"
	"osdc/internal/tukeystate"
)

// TestMultiReplicaSmoke is the whole PR in one test: two stateless console
// replicas sharing a tukey-state plane, fronted by the tukey-lb pool.
// A researcher logs in through the balancer, their session is valid on
// every replica, the per-user admission budget is shared (429s count
// requests across replicas, not per replica), and killing the exact
// replica the session is pinned to loses nothing — the next request
// retries onto the survivor with the same token.
func TestMultiReplicaSmoke(t *testing.T) {
	// One shared world: both clouds live behind cloudapi sites that every
	// replica attaches by URL, so a VM launched through replica 1 is
	// visible through replica 2.
	e := sim.NewEngine(21)
	adler := core.BuildCloud(e, core.ClusterAdler, 8)
	sullivan := core.BuildCloud(e, core.ClusterSullivan, 8)
	siteA, err := cloudapi.StartSite(e, adler, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer siteA.Close()
	siteS, err := cloudapi.StartSite(e, sullivan, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer siteS.Close()

	// The state plane: shared sessions plus a shared limiter. Rate 0 means
	// buckets never refill, so the 429 arithmetic below is deterministic.
	// Every binary in this deployment carries the same operator secret, so
	// the telemetry sweep below can scrape all of them.
	const burst = 30
	const opSecret = "smoke-op-secret"
	statePlane := tukeystate.NewServer(
		tukey.NewMemorySessionStore(), tukey.NewRateLimiter(0, burst))
	statePlane.OperatorSecret = opSecret
	stateSrv := httptest.NewServer(statePlane)
	defer stateSrv.Close()

	shared := siteList{
		{name: core.ClusterAdler, url: siteA.URL},
		{name: core.ClusterSullivan, url: siteS.URL},
	}
	mkReplica := func(name string, seed uint64) (*httptest.Server, func()) {
		s, err := newServer(options{seed: seed, stateURL: stateSrv.URL, replica: name,
			sites: shared, operatorSecret: opSecret})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(s.handler)
		return srv, func() { srv.CloseClientConnections(); srv.Close(); s.Close() }
	}
	r1, kill1 := mkReplica("r1", 22)
	defer kill1()
	r2, kill2 := mkReplica("r2", 23)
	defer kill2()

	// Front the pool the way cmd/tukey-lb does: the balancer's own gated
	// /metrics on the same listener, everything else proxied.
	pool := lb.NewPool([]string{r1.URL, r2.URL}, nil)
	lbReg := telemetry.NewRegistry()
	pool.RegisterMetrics(lbReg)
	lbMux := http.NewServeMux()
	lbMux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		telemetry.ServeMetrics(opSecret, lbReg, w, r)
	})
	lbMux.Handle("/", pool)
	front := httptest.NewServer(lbMux)
	defer front.Close()

	// Login through the balancer. The token carries whichever replica's
	// prefix minted it — proof the replicas, not the plane, mint tokens.
	tok := login(t, front.URL)
	if !strings.HasPrefix(tok, "tukey-sess-r1-") && !strings.HasPrefix(tok, "tukey-sess-r2-") {
		t.Fatalf("token %q carries no replica prefix", tok)
	}

	// The session is valid on BOTH replicas directly: it lives in the
	// state plane, not in whichever replica minted it. (2 × cost 1)
	for _, base := range []string{r1.URL, r2.URL} {
		resp := consoleDo(t, base, "GET", "/console/status", tok, "")
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("session minted through lb invalid on %s: %d", base, resp.StatusCode)
		}
	}
	// Full read through the balancer. (cost 2)
	resp := consoleDo(t, front.URL, "GET", "/console/instances", tok, "")
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("instances through lb: %d", resp.StatusCode)
	}

	// The telemetry sweep: every binary in the deployment — both replicas,
	// the balancer, and the state plane — serves gated exposition text with
	// its own characteristic series. Scrapes ride outside the admission
	// budget, so the 429 arithmetic below is untouched.
	scrape := func(base string) map[string]float64 {
		t.Helper()
		req, _ := http.NewRequest("GET", base+"/metrics", nil)
		req.Header.Set("X-OSDC-Operator", opSecret)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("scrape %s/metrics: status %d", base, resp.StatusCode)
		}
		parsed, err := telemetry.ParseText(body)
		if err != nil {
			t.Fatalf("scrape %s/metrics: %v", base, err)
		}
		return parsed
	}
	for _, base := range []string{r1.URL, r2.URL} {
		parsed := scrape(base)
		for _, want := range []string{
			`osdc_engine_fired_total{shard="0"}`, "osdc_billing_polls_total",
			"osdc_console_throttled_total",
		} {
			if _, ok := parsed[want]; !ok {
				t.Errorf("replica %s exposition missing %s", base, want)
			}
		}
	}
	if parsed := scrape(front.URL); parsed["osdc_lb_backends"] != 2 ||
		parsed["osdc_lb_backends_healthy"] != 2 {
		t.Errorf("balancer gauges = %v/%v, want 2/2",
			parsed["osdc_lb_backends"], parsed["osdc_lb_backends_healthy"])
	}
	if parsed := scrape(stateSrv.URL); parsed["osdc_state_requests_total"] <= 0 {
		t.Errorf("state plane served %v requests, want > 0", parsed["osdc_state_requests_total"])
	}

	// Kill the exact replica this session is pinned to, mid-run. The next
	// request through the balancer must retry onto the survivor and
	// succeed with the same token — an established session survives its
	// replica. (cost 1)
	victim := pool.PickBackend(tok)
	if victim == r1.URL {
		kill1()
	} else if victim == r2.URL {
		kill2()
	} else {
		t.Fatalf("token pinned to unknown backend %q", victim)
	}
	resp = consoleDo(t, front.URL, "GET", "/console/status", tok, "")
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("session lost with its replica: status %d after kill", resp.StatusCode)
	}
	if pool.Retries == 0 {
		t.Fatal("balancer never retried onto the survivor")
	}
	if h := pool.Healthy(); h != 1 {
		t.Fatalf("healthy backends after kill = %d, want 1", h)
	}

	// A mutating flow still completes on the survivor. (cost 10)
	resp = consoleDo(t, front.URL, "POST", "/console/launch", tok,
		`{"cloud":"OSDC-Adler","name":"smoke-vm","flavor":"m1.large"}`)
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("launch through lb after kill: %d", resp.StatusCode)
	}

	// The admission budget is shared across replicas: 15 tokens are spent
	// above (1+1 direct, 2 instances, 1 post-kill status, 10 launch), so
	// exactly burst-15 more status reads are admitted before the shared
	// bucket answers 429 — no matter which replica serves them.
	const spent = 15
	admitted := 0
	sawLimit := false
	for i := 0; i <= burst-spent; i++ {
		resp := consoleDo(t, front.URL, "GET", "/console/status", tok, "")
		resp.Body.Close()
		switch resp.StatusCode {
		case 200:
			admitted++
		case 429:
			sawLimit = true
		default:
			t.Fatalf("drain request %d: status %d", i, resp.StatusCode)
		}
		if sawLimit {
			break
		}
	}
	if !sawLimit {
		t.Fatalf("shared limiter never answered 429 (admitted %d)", admitted)
	}
	if admitted != burst-spent {
		t.Fatalf("admitted %d requests before 429, want %d (shared budget drifted)", admitted, burst-spent)
	}
}
