package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"osdc/internal/core"
	"osdc/internal/datastore"
)

// stageBody builds the /console/datasets/stage request for a dataset.
func stageBody(dataset, cloud string) string {
	b, _ := json.Marshal(map[string]string{"dataset": dataset, "cloud": cloud})
	return string(b)
}

// TestReplicationAndStagingInProcess wires -replication-factor in the
// single-process topology: the coordinator's background loop replicates
// the catalog onto the cloud stores, and a console stage call places a
// specific dataset.
func TestReplicationAndStagingInProcess(t *testing.T) {
	s, err := newServer(options{
		seed: 21, speedup: 86_400,
		replicationFactor: 1, replicationInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.handler)
	defer srv.Close()
	tok := login(t, srv.URL)

	// Factor 1 is already satisfied by OSDC-Root's masters: the
	// placement view reports every catalog dataset at its target.
	resp := consoleDo(t, srv.URL, "GET", "/console/datasets/replicas", tok, "")
	var view struct {
		Placement []datastore.PlacementRow `json:"placement"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(view.Placement) == 0 {
		t.Fatal("placement view is empty")
	}

	// Stage the Enron corpus (1 TB) onto Adler: accepted with an ETA,
	// then installed once the wall driver carries the virtual clock past
	// the simulated transfer.
	resp = consoleDo(t, srv.URL, "POST", "/console/datasets/stage", tok,
		stageBody("Enron Email", core.ClusterAdler))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("stage = %d", resp.StatusCode)
	}
	var st datastore.StageStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != "staging" || st.ETASecs <= 0 {
		t.Fatalf("stage status = %+v", st)
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, err := s.fed.Stores[core.ClusterAdler].Get("Enron Email"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("staged replica never landed (eta was %.0f virtual s)", st.ETASecs)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStageAcrossSubprocessSite is the data plane's multi-process smoke
// test (CI runs it under -race next to TestCloudSiteSubprocess): a real
// cloud-site OS process serves its dataset store with -operator-secret,
// tukey-server attaches it, and a console stage call moves a dataset
// across the process boundary — authenticated puts only.
func TestStageAcrossSubprocessSite(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a subprocess and builds a binary")
	}
	bin := filepath.Join(t.TempDir(), "cloud-site")
	build := exec.Command("go", "build", "-o", bin, "osdc/cmd/cloud-site")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cloud-site: %v\n%s", err, out)
	}

	const secret = "wire-secret"
	site := exec.Command(bin,
		"-cloud", core.ClusterSullivan, "-addr", "127.0.0.1:0",
		"-seed", "33", "-scale", "4", "-speedup", "86400",
		"-operator-secret", secret)
	stdout, err := site.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := site.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = site.Process.Kill()
		_ = site.Wait()
	}()
	var siteURL string
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		if i := strings.Index(scanner.Text(), "listening on "); i >= 0 {
			siteURL = strings.TrimSpace(scanner.Text()[i+len("listening on "):])
			break
		}
	}
	if siteURL == "" {
		t.Fatalf("cloud-site never printed its address (scan err %v)", scanner.Err())
	}

	// The subprocess enforces the shared secret: an unauthenticated put
	// is rejected before it touches the store.
	bare := datastore.NewRemote(core.ClusterSullivan, core.SiteOf(core.ClusterSullivan), siteURL, nil)
	if err := bare.Put(datastore.Replica{Dataset: "x", SizeBytes: 1, Version: 1}); err == nil {
		t.Fatal("unauthenticated put crossed the process boundary")
	}

	s, err := newServer(options{
		seed: 34, speedup: 86_400,
		sites:             siteList{{name: core.ClusterSullivan, url: siteURL}},
		replicationFactor: 1, replicationInterval: 20 * time.Millisecond,
		operatorSecret: secret,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.handler)
	defer srv.Close()
	tok := login(t, srv.URL)

	// Stage the Enron corpus onto the subprocess cloud.
	resp := consoleDo(t, srv.URL, "POST", "/console/datasets/stage", tok,
		stageBody("Enron Email", core.ClusterSullivan))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("stage onto subprocess site = %d", resp.StatusCode)
	}
	var st datastore.StageStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.From != core.ClusterRoot {
		t.Fatalf("stage sourced from %q, want the Root masters", st.From)
	}

	// The replica lands in the OTHER PROCESS: read it back through the
	// site's own datasets plane.
	probe, err := datastore.ProbeRemote(siteURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		if rep, err := probe.Get("Enron Email"); err == nil {
			if rep.Checksum != datastore.Fingerprint("Enron Email", rep.Version) {
				t.Fatalf("replica crossed the boundary corrupt: %+v", rep)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("staged replica never landed on the subprocess site (eta %.0f virtual s)", st.ETASecs)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The console placement view agrees once a round observes it.
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp := consoleDo(t, srv.URL, "GET",
			"/console/datasets/replicas?dataset="+url.QueryEscape("Enron Email"), tok, "")
		var view struct {
			Placement []datastore.PlacementRow `json:"placement"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(view.Placement) == 1 && len(view.Placement[0].Sites) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("placement never showed the subprocess replica: %+v", view.Placement)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
