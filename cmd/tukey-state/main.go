// Command tukey-state serves the console's shared state plane: one
// SessionStore and one per-user rate limiter, spoken over HTTP by every
// stateless console replica (tukey-server -state-url).
//
// The store defaults to in-memory; -session-file backs it with the
// append-only session log, so the *state plane* restarting keeps everyone
// logged in (replicas restarting never mattered — that is the point).
// Rate limiting is configured here, not on the replicas: the budget is
// per user, not per user per replica.
//
// Usage:
//
//	tukey-state [-addr :9200] [-session-file sessions.json]
//	            [-rate-limit N] [-rate-burst M] [-operator-secret S]
//
// With -operator-secret the state plane serves GET /metrics behind the
// federation's operator gate.
package main

import (
	"flag"
	"log"
	"net/http"

	"osdc/internal/tukey"
	"osdc/internal/tukeystate"
)

func main() {
	addr := flag.String("addr", ":9200", "state plane listen address")
	sessionFile := flag.String("session-file", "", "persist sessions to this append-only log (\"\" = in-memory)")
	rateLimit := flag.Float64("rate-limit", 0, "per-user console requests/second shared across replicas (0 = unlimited)")
	rateBurst := flag.Float64("rate-burst", 0, "per-user burst size (0 = 2× -rate-limit)")
	operatorSecret := flag.String("operator-secret", "", "serve GET /metrics behind this operator secret (\"\" = metrics plane absent)")
	flag.Parse()

	var store tukey.SessionStore = tukey.NewMemorySessionStore()
	if *sessionFile != "" {
		fs, err := tukey.NewFileSessionStore(*sessionFile)
		if err != nil {
			log.Fatal(err)
		}
		if n := fs.Count(); n > 0 {
			log.Printf("session log %s: %d sessions survive the restart", *sessionFile, n)
		}
		store = fs
	}
	var limiter tukey.Limiter
	if *rateLimit > 0 {
		burst := *rateBurst
		if burst <= 0 {
			burst = 2 * *rateLimit
		}
		limiter = tukey.NewRateLimiter(*rateLimit, burst)
		log.Printf("shared rate limiter: %g req/s per user, burst %g", *rateLimit, burst)
	}
	srv := tukeystate.NewServer(store, limiter)
	srv.OperatorSecret = *operatorSecret
	log.Printf("tukey-state on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
