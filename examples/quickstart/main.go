// Quickstart: stand up the OSDC federation, enroll a researcher, provision
// VMs on both cloud stacks through Tukey, store and share data, mint a
// dataset ARK, and read the first month's bill.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"osdc/internal/ark"
	"osdc/internal/core"
	"osdc/internal/iaas"
	"osdc/internal/sim"
	"osdc/internal/tukey"
)

func main() {
	// 1. The federation: four sites, five clusters, all services (Fig 3).
	f, err := core.New(core.Options{Seed: 7, Scale: 8})
	if err != nil {
		log.Fatal(err)
	}
	cores, disk := f.Totals()
	fmt.Printf("OSDC up: %d cores, %.1f PB across %d clusters\n",
		cores, float64(disk)/1024, len(f.Inventory()))

	// 2. Mount both clouds' native APIs and wire Tukey (Fig 1).
	nova := httptest.NewServer(&iaas.NovaAPI{Cloud: f.Adler})
	defer nova.Close()
	euca := httptest.NewServer(&iaas.EucaAPI{Cloud: f.Sullivan})
	defer euca.Close()
	f.Tukey.AttachCloud(tukey.CloudConfig{Name: core.ClusterAdler, Stack: "openstack", Endpoint: nova.URL})
	f.Tukey.AttachCloud(tukey.CloudConfig{Name: core.ClusterSullivan, Stack: "eucalyptus", Endpoint: euca.URL})

	// 3. Enroll a researcher and log in via the campus Shibboleth IdP.
	f.EnrollResearcher("grace", "hopper")
	f.Adler.SetQuota("grace", iaas.Quota{MaxInstances: 10, MaxCores: 64})
	f.Sullivan.SetQuota("grace", iaas.Quota{MaxInstances: 10, MaxCores: 64})
	token, err := f.Tukey.Login(tukey.Shibboleth, "grace", "hopper")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("logged in via shibboleth:", token)

	// 4. One VM per stack through the same canonical API.
	for _, cloud := range []string{core.ClusterAdler, core.ClusterSullivan} {
		srv, err := f.Tukey.LaunchServer(token, cloud, "analysis", "m1.large")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("launched %s on %s (%s)\n", srv.ID, cloud, srv.Status)
	}
	servers, err := f.Tukey.ListServers(token)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregated view: %d servers across %d stacks\n", len(servers), 2)

	// 5. Share a result file with a collaborator group.
	f.Sharing.AddUser("barbara")
	f.DropDir.Drop("grace", "/share/grace/results.csv", []byte("gene,expr\nBRCA2,7.2\n"))
	f.Engine.RunFor(15) // the drop-directory daemon's scan tick
	coll, err := f.Sharing.NewCollection("grace", "paper-artifacts")
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Sharing.AddFileToCollection("grace", coll.ID, "/share/grace/results.csv"); err != nil {
		log.Fatal(err)
	}
	if err := f.Sharing.Grant("grace", coll.ID, "user:barbara", 1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("shared results.csv with barbara:",
		f.Sharing.CanRead("barbara", "/share/grace/results.csv"))

	// 6. Mint a permanent ID for the dataset (§6.1).
	rec := f.IDs.Mint(ark.Metadata{
		Who: "grace", What: "expression results", When: "2012-10",
		Where: "/share/grace/results.csv",
	})
	loc, _ := f.IDs.Resolve(rec.ARK)
	fmt.Printf("minted %s → %s\n", rec.ARK, loc)

	// 7. Browse public data (§6.3).
	hits := f.Catalog.Search("genomes")
	fmt.Printf("public catalog: %d datasets match 'genomes' (of %d, %.0f TB total)\n",
		len(hits), len(f.Catalog.All()), float64(f.Catalog.TotalBytes())/float64(core.TB))

	// 8. A month passes; the bill arrives (§6.4).
	f.Engine.RunFor(31 * sim.Day)
	for _, inv := range f.Biller.Invoices("grace") {
		fmt.Printf("invoice cycle %d: %.0f core-hours → $%.2f\n",
			inv.Cycle, inv.CoreHours, inv.Total)
	}
}
