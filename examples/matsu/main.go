// Project Matsu example (paper §4.2, Figure 2): process an EO-1
// Hyperion-like scene over Namibia — Level 0 → Level 1 calibration,
// tiling, flood and fire detection on the OCC-Matsu MapReduce cluster —
// and print the tile map plus the alerts that would go to interested
// parties.
package main

import (
	"fmt"
	"log"

	"osdc/internal/core"
	"osdc/internal/matsu"
	"osdc/internal/sim"
)

func main() {
	f, err := core.New(core.Options{Seed: 11, Scale: 8})
	if err != nil {
		log.Fatal(err)
	}

	// Downlink: a raw Level 0 scene (synthetic stand-in for an EO-1 pass).
	rng := sim.NewRNG(11)
	raw := matsu.SynthesizeScene(rng, "EO1H1790742012", matsu.SynthSpec{
		W: 384, H: 256, FloodFrac: 0.20, FireSpots: 4, NoiseSigma: 25,
	})
	fmt.Printf("ingested %s: %dx%d Level %d\n", raw.ID, raw.W, raw.H, raw.Level)

	// Ground processing ported to the cloud (§4.2): L0 → L1.
	l1 := matsu.CalibrateL0ToL1(raw, -18.96, 16.0)
	fmt.Printf("calibrated to Level %d, geolocated at (%.2f, %.2f)\n", l1.Level, l1.Lat0, l1.Lon0)

	// Flood analytics on the Hadoop cluster.
	res, tiles, err := matsu.RunOnCluster(f.Matsu, l1, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure 2 — tiles over Namibia (≈ flood, ^ fire, . clear):\n%s\n", matsu.TileMap(tiles))
	fmt.Printf("mapreduce: %v wall, %.0f%% data-local maps on %s\n",
		sim.Time(res.Duration()), 100*res.LocalityFraction(), "OCC-Matsu")
	fmt.Printf("flooded area: %.2f km²\n", matsu.FloodArea(tiles))

	for _, a := range matsu.Alerts(tiles) {
		if a.Kind == "fire" {
			fmt.Printf("ALERT %s tile (%d,%d) at (%.3f, %.3f): %0.f hot pixels\n",
				a.Kind, a.TileX, a.TileY, a.Lat, a.Lon, a.Severity)
		}
	}
	floods := 0
	for _, a := range matsu.Alerts(tiles) {
		if a.Kind == "flood" {
			floods++
		}
	}
	fmt.Printf("%d flood-tile alerts distributed to interested parties\n", floods)
}
