// Bionimbus example (paper §4.1): manage genomic data on the OSDC — open
// data on the shared cloud, controlled human data on a secure private
// cloud — and run the curated variant-calling pipeline image instead of
// maintaining your own.
package main

import (
	"fmt"
	"log"

	"osdc/internal/bionimbus"
	"osdc/internal/core"
	"osdc/internal/dfs"
	"osdc/internal/sim"
	"osdc/internal/simdisk"
	"osdc/internal/workload"
)

func main() {
	f, err := core.New(core.Options{Seed: 21, Scale: 8})
	if err != nil {
		log.Fatal(err)
	}

	// An open Bionimbus cloud over OSDC-Adler's storage, and a secure
	// private cloud for controlled human data.
	open := bionimbus.New("bionimbus", false, f.AdlerGFS, f.Adler)
	pdcVol := smallVolume(f.Engine)
	pdc := bionimbus.New("bionimbus-pdc", true, pdcVol, nil)

	// Curated pipeline images ship with the cloud (§4.1).
	for _, img := range open.Images() {
		fmt.Printf("curated image: %s (tools: %v)\n", img.Name, img.Tools)
	}

	// Open data: modENCODE tracks are world-fetchable.
	if err := open.Ingest("curator", bionimbus.GenomicDataset{
		Name: "modENCODE fly tracks", Project: "modENCODE", Class: bionimbus.AccessOpen,
	}, []byte(">track data...")); err != nil {
		log.Fatal(err)
	}
	if _, err := open.Fetch("any-researcher", "modENCODE fly tracks"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("open cloud: modENCODE tracks shared without download ceremony")

	// Controlled data: refused on the open cloud, accepted on the PDC for
	// enrolled users only.
	human := bionimbus.GenomicDataset{
		Name: "T2D exomes", Project: "T2D-Genes", Class: bionimbus.AccessControlled,
	}
	if err := open.Ingest("alice", human, []byte("ACGT")); err != nil {
		fmt.Println("open cloud correctly refused controlled data:", err)
	}
	pdc.Enroll("alice")
	if err := pdc.Ingest("alice", human, []byte("ACGT")); err != nil {
		log.Fatal(err)
	}
	if _, err := pdc.Fetch("mallory", "T2D exomes"); err != nil {
		fmt.Println("secure cloud correctly refused unenrolled access:", err)
	}

	// The analysis: align synthetic reads and call a planted variant.
	rng := sim.NewRNG(5)
	ref, _ := workload.GenomeReads(rng, 50000, 0, 100, 0)
	donor := append([]byte(nil), ref...)
	pos := 25000
	alt := byte('G')
	if donor[pos] == 'G' {
		alt = 'T'
	}
	donor[pos] = alt
	var reads [][]byte
	for start := pos - 90; start <= pos-10; start += 2 {
		read := make([]byte, 100)
		copy(read, donor[start:start+100])
		reads = append(reads, read)
	}
	variants := bionimbus.Pipeline(ref, reads)
	fmt.Printf("pipeline: %d reads aligned, %d variant(s) called\n", len(reads), len(variants))
	for _, v := range variants {
		fmt.Printf("  %d: %c → %c (depth %d, alt reads %d)\n", v.Pos, v.Ref, v.Alt, v.Depth, v.AltCount)
	}
}

func smallVolume(e *sim.Engine) *dfs.Volume {
	var bricks []*dfs.Brick
	for i := 0; i < 2; i++ {
		d := simdisk.New(e, fmt.Sprintf("pdc-d%d", i), 3072e6, 1136e6, 1<<40)
		bricks = append(bricks, dfs.NewBrick(fmt.Sprintf("pdc-b%d", i), "pdc-node", d))
	}
	v, err := dfs.NewVolume(e, "pdc", 2, dfs.Version33, bricks)
	if err != nil {
		log.Fatal(err)
	}
	return v
}
