// Data-transfer example (paper §7.2, Table 3): move datasets between OSDC
// sites with UDR vs rsync, with and without encryption, and sync an edited
// dataset where only the rsync delta travels.
package main

import (
	"bytes"
	"fmt"

	"osdc/internal/cipher"
	"osdc/internal/experiments"
	"osdc/internal/sim"
	"osdc/internal/udr"
)

func main() {
	path := experiments.ChicagoLVOCPath(3)
	fmt.Printf("Chicago → LVOC: %.0f ms RTT, 10G path (the paper's testbed)\n\n", path.RTT*1000)

	// The Table 3 matrix on the 108 GB dataset.
	rng := sim.NewRNG(3)
	fmt.Println("Table 3 matrix, 108 GB dataset:")
	for _, cfg := range udr.Table3Configs() {
		res, caps := udr.Transfer(rng, cfg, path, 108<<30)
		fmt.Printf("  %-24s %5.0f mbit/s  LLR %.2f  (%v)\n",
			cfg.String(), res.ThroughputMbit(), res.LLR(caps), sim.Time(res.Duration))
	}

	// Incremental sync: one project "generates and preprocesses their data
	// on OSDC-Adler and then sends it to OCC-Matsu for further analysis"
	// (§7.2). After an edit, only the delta travels.
	fmt.Println("\nincremental sync after editing 4 KB of a 64 MB dataset:")
	content := bytes.Repeat([]byte("hyperion-stripe-"), 4<<20) // 64 MB
	src := udr.FileSet{"scene.l1": content}
	dst := udr.FileSet{"scene.l1": append([]byte(nil), content...)}
	copy(src["scene.l1"][10<<20:], bytes.Repeat([]byte("REPROCESSED!"), 341)) // ~4 KB edit
	plan, res, err := udr.SyncOver(sim.NewRNG(4), udr.Config{Tool: udr.ToolUDR, Cipher: cipher.Blowfish}, path, src, dst)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  wire bytes : %d of %d (%.2f%%)\n", plan.WireBytes, len(content),
		100*float64(plan.WireBytes)/float64(len(content)))
	fmt.Printf("  transfer   : %v at %.0f mbit/s over encrypted UDR\n",
		sim.Time(res.Duration), res.ThroughputMbit())
	fmt.Printf("  dst synced : %v\n", bytes.Equal(src["scene.l1"], dst["scene.l1"]))
}
