package bionimbus

import (
	"bytes"
	"fmt"
	"testing"

	"osdc/internal/dfs"
	"osdc/internal/iaas"
	"osdc/internal/sim"
	"osdc/internal/simdisk"
	"osdc/internal/workload"
)

func newClouds(t *testing.T) (*Cloud, *Cloud) {
	t.Helper()
	e := sim.NewEngine(33)
	mk := func(name string) *dfs.Volume {
		var bricks []*dfs.Brick
		for i := 0; i < 2; i++ {
			d := simdisk.New(e, fmt.Sprintf("%s-d%d", name, i), 3072e6, 1136e6, 1<<40)
			bricks = append(bricks, dfs.NewBrick(fmt.Sprintf("%s-b%d", name, i), "n", d))
		}
		v, err := dfs.NewVolume(e, name, 2, dfs.Version33, bricks)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	compute := iaas.NewCloud(e, "adler", "openstack", "chicago")
	compute.AddRack("r", 2)
	open := New("bionimbus-open", false, mk("open"), compute)
	secure := New("bionimbus-pdc", true, mk("pdc"), nil)
	return open, secure
}

func TestControlledDataRefusedOnOpenCloud(t *testing.T) {
	open, _ := newClouds(t)
	err := open.Ingest("alice", GenomicDataset{
		Name: "T2D human exomes", Project: "T2D-Genes", Class: AccessControlled,
	}, []byte("ACGT"))
	if err == nil {
		t.Fatal("controlled data accepted on a non-secure cloud")
	}
}

func TestSecureCloudRequiresEnrollment(t *testing.T) {
	_, secure := newClouds(t)
	d := GenomicDataset{Name: "human-wgs", Project: "T2D-Genes", Class: AccessControlled}
	if err := secure.Ingest("alice", d, []byte("ACGT")); err == nil {
		t.Fatal("unenrolled user ingested controlled data")
	}
	secure.Enroll("alice")
	if err := secure.Ingest("alice", d, []byte("ACGTACGT")); err != nil {
		t.Fatal(err)
	}
	if _, err := secure.Fetch("mallory", "human-wgs"); err == nil {
		t.Fatal("unenrolled user fetched controlled data")
	}
	got, err := secure.Fetch("alice", "human-wgs")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("ACGTACGT")) {
		t.Fatal("content mismatch")
	}
}

func TestOpenCloudSharing(t *testing.T) {
	open, _ := newClouds(t)
	d := GenomicDataset{Name: "modENCODE tracks", Project: "modENCODE", Class: AccessOpen}
	if err := open.Ingest("curator", d, []byte("track data")); err != nil {
		t.Fatal(err)
	}
	if got := open.Datasets(); len(got) != 1 || got[0] != "modENCODE tracks" {
		t.Fatalf("Datasets = %v", got)
	}
	if _, err := open.Fetch("anyone", "modENCODE tracks"); err != nil {
		t.Fatalf("open data not fetchable: %v", err)
	}
}

func TestCuratedImagesRegistered(t *testing.T) {
	open, _ := newClouds(t)
	imgs := open.Images()
	if len(imgs) != 2 {
		t.Fatalf("images = %d, want 2 pipelines", len(imgs))
	}
	for _, img := range imgs {
		if !img.Public {
			t.Fatal("open-cloud pipeline image not public")
		}
		if !img.Portable {
			t.Fatal("image not AWS-portable (§9 interop)")
		}
		if len(img.Tools) == 0 {
			t.Fatal("image carries no tools")
		}
	}
}

// --- pipeline ---

func TestAlignerPlacesCleanReadsExactly(t *testing.T) {
	rng := sim.NewRNG(44)
	ref, reads := workload.GenomeReads(rng, 20000, 100, 100, 0) // no mutations
	a := NewAligner(ref)
	als := a.Align(reads, 4)
	if len(als) != 100 {
		t.Fatalf("aligned %d of 100 clean reads", len(als))
	}
	for _, al := range als {
		if al.Mismatches != 0 {
			t.Fatalf("clean read has %d mismatches", al.Mismatches)
		}
		if !bytes.Equal(reads[al.ReadIndex], ref[al.Pos:al.Pos+100]) {
			t.Fatal("alignment position wrong")
		}
	}
}

func TestAlignerToleratesMutations(t *testing.T) {
	rng := sim.NewRNG(45)
	ref, reads := workload.GenomeReads(rng, 20000, 200, 100, 0.01)
	a := NewAligner(ref)
	als := a.Align(reads, 8)
	// ~1% mutation on 100bp: ~1 mismatch/read; nearly all should align.
	if len(als) < 180 {
		t.Fatalf("aligned %d of 200 mutated reads, want ≥180", len(als))
	}
}

func TestVariantCallingFindsPlantedSNV(t *testing.T) {
	rng := sim.NewRNG(46)
	ref, _ := workload.GenomeReads(rng, 5000, 0, 100, 0)
	// Build a donor genome with one SNV and sample deep reads around it.
	donor := append([]byte(nil), ref...)
	pos := 2500
	old := donor[pos]
	var alt byte = 'A'
	if old == 'A' {
		alt = 'C'
	}
	donor[pos] = alt
	var reads [][]byte
	for start := pos - 90; start <= pos-10; start += 4 {
		read := make([]byte, 100)
		copy(read, donor[start:start+100])
		reads = append(reads, read)
	}
	vars := Pipeline(ref, reads)
	found := false
	for _, v := range vars {
		if v.Pos == pos && v.Alt == alt && v.Ref == old {
			found = true
			if v.Depth < 4 || v.AltCount < 4 {
				t.Fatalf("weak call: %+v", v)
			}
		}
	}
	if !found {
		t.Fatalf("planted SNV at %d not called; calls: %+v", pos, vars)
	}
	// No spurious calls elsewhere (clean reads).
	if len(vars) != 1 {
		t.Fatalf("extra variant calls: %+v", vars)
	}
}

func TestPipelineNoVariantsOnCleanReads(t *testing.T) {
	rng := sim.NewRNG(47)
	ref, reads := workload.GenomeReads(rng, 10000, 300, 100, 0)
	if vars := Pipeline(ref, reads); len(vars) != 0 {
		t.Fatalf("clean reads produced %d variant calls", len(vars))
	}
}
