// Package bionimbus implements Bionimbus (paper §4.1,
// www.bionimbus.org): "a cloud-based infrastructure for managing,
// analyzing, archiving, and sharing large genomic datasets", used by
// modENCODE and the T2D-Genes consortia, with "secure, private Bionimbus
// clouds that are designed to hold controlled data, such as human genomic
// data".
//
// The genomics here is deliberately simple but real: a k-mer index aligner
// places synthetic short reads on a reference, a pileup consensus caller
// emits variants, and the pipeline is packaged the way the OSDC packaged
// community tools — as a curated VM image users launch instead of
// maintaining their own pipelines.
package bionimbus

import (
	"fmt"
	"sort"
	"strings"

	"osdc/internal/dfs"
	"osdc/internal/gateway"
	"osdc/internal/iaas"
)

// AccessClass tags datasets by sensitivity.
type AccessClass string

// Dataset access classes.
const (
	AccessOpen       AccessClass = "open"       // public release
	AccessControlled AccessClass = "controlled" // human genomic data: private cloud only
)

// GenomicDataset is one managed dataset.
type GenomicDataset struct {
	Name    string
	Project string // e.g. "modENCODE", "T2D-Genes"
	Class   AccessClass
	Path    string
}

// Cloud is a Bionimbus deployment: storage plus compute plus the curated
// pipeline images. Private clouds (Secure=true) only admit enrolled users
// and refuse open-network export of controlled data.
type Cloud struct {
	Name     string
	Secure   bool
	volume   *dfs.Volume
	export   *gateway.Export
	compute  *iaas.Cloud
	enrolled map[string]bool
	datasets map[string]*GenomicDataset
	images   []*iaas.Image
}

// New creates a Bionimbus cloud over a DFS volume and an IaaS cloud.
func New(name string, secure bool, vol *dfs.Volume, compute *iaas.Cloud) *Cloud {
	c := &Cloud{
		Name: name, Secure: secure, volume: vol, compute: compute,
		export:   gateway.New(name+"-export", vol),
		enrolled: make(map[string]bool),
		datasets: make(map[string]*GenomicDataset),
	}
	// The curated pipeline images (§4.1: images "include the analysis tools
	// and pipelines used by the different research groups").
	if compute != nil {
		c.images = append(c.images,
			compute.RegisterImage(iaas.Image{
				Name: "bionimbus-align-" + name, Public: !secure, Portable: true,
				Tools: []string{"kmer-aligner", "samtools-like", "pileup-caller"},
			}),
			compute.RegisterImage(iaas.Image{
				Name: "bionimbus-rnaseq-" + name, Public: !secure, Portable: true,
				Tools: []string{"quantifier", "normalizer"},
			}),
		)
	}
	return c
}

// Enroll admits a user to a secure cloud (data-access committee approval).
func (c *Cloud) Enroll(user string) {
	c.enrolled[user] = true
	c.export.Allow(gateway.ACE{Prefix: "/", User: user, Mode: gateway.PermRead | gateway.PermWrite})
}

// Images lists the curated pipeline images.
func (c *Cloud) Images() []*iaas.Image { return c.images }

// Ingest stores a dataset. Controlled data is refused by non-secure clouds.
func (c *Cloud) Ingest(user string, d GenomicDataset, content []byte) error {
	if d.Class == AccessControlled && !c.Secure {
		return fmt.Errorf("bionimbus: %s is controlled-access; cloud %s is not a secure private cloud", d.Name, c.Name)
	}
	if c.Secure && !c.enrolled[user] {
		return fmt.Errorf("bionimbus: %s is not enrolled in secure cloud %s", user, c.Name)
	}
	if d.Path == "" {
		d.Path = "/genomics/" + strings.ToLower(d.Project) + "/" + strings.ToLower(strings.ReplaceAll(d.Name, " ", "-"))
	}
	if err := c.volume.Write(d.Path, content); err != nil {
		return err
	}
	cp := d
	c.datasets[d.Name] = &cp
	return nil
}

// Fetch reads a dataset on behalf of user, enforcing enrollment on secure
// clouds.
func (c *Cloud) Fetch(user, name string) ([]byte, error) {
	d, ok := c.datasets[name]
	if !ok {
		return nil, fmt.Errorf("bionimbus: no dataset %q", name)
	}
	if c.Secure && !c.enrolled[user] {
		return nil, fmt.Errorf("bionimbus: %s not enrolled in %s", user, c.Name)
	}
	f, err := c.volume.Read(d.Path)
	if err != nil {
		return nil, err
	}
	return f.Content, nil
}

// Datasets lists managed dataset names, sorted.
func (c *Cloud) Datasets() []string {
	out := make([]string, 0, len(c.datasets))
	for n := range c.datasets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// --- the analysis pipeline ---

// Alignment is one read placed on the reference.
type Alignment struct {
	ReadIndex  int
	Pos        int // reference offset
	Mismatches int
}

// Variant is a called difference against the reference.
type Variant struct {
	Pos      int
	Ref      byte
	Alt      byte
	Depth    int
	AltCount int
}

// KmerSize is the aligner's seed length.
const KmerSize = 16

// Aligner is a k-mer seed index over a reference sequence.
type Aligner struct {
	ref   []byte
	index map[string][]int
}

// NewAligner indexes the reference.
func NewAligner(ref []byte) *Aligner {
	a := &Aligner{ref: ref, index: make(map[string][]int)}
	for i := 0; i+KmerSize <= len(ref); i++ {
		k := string(ref[i : i+KmerSize])
		a.index[k] = append(a.index[k], i)
	}
	return a
}

// Align seeds each read by its first k-mer and extends, returning the best
// placement (fewest mismatches) if it clears maxMismatch.
func (a *Aligner) Align(reads [][]byte, maxMismatch int) []Alignment {
	var out []Alignment
	for ri, read := range reads {
		if len(read) < KmerSize {
			continue
		}
		best := Alignment{ReadIndex: ri, Pos: -1, Mismatches: maxMismatch + 1}
		// Try several seed positions to survive mutations in the first kmer.
		for _, seedOff := range []int{0, KmerSize, 2 * KmerSize} {
			if seedOff+KmerSize > len(read) {
				break
			}
			seed := string(read[seedOff : seedOff+KmerSize])
			for _, hit := range a.index[seed] {
				pos := hit - seedOff
				if pos < 0 || pos+len(read) > len(a.ref) {
					continue
				}
				mm := 0
				for j := range read {
					if read[j] != a.ref[pos+j] {
						mm++
						if mm > maxMismatch {
							break
						}
					}
				}
				if mm < best.Mismatches {
					best = Alignment{ReadIndex: ri, Pos: pos, Mismatches: mm}
				}
			}
		}
		if best.Pos >= 0 && best.Mismatches <= maxMismatch {
			out = append(out, best)
		}
	}
	return out
}

// CallVariants does a pileup over alignments and calls positions where the
// alternate allele fraction is at least minFrac with at least minDepth
// coverage.
func CallVariants(ref []byte, reads [][]byte, alignments []Alignment, minDepth int, minFrac float64) []Variant {
	type pile struct {
		depth int
		alts  map[byte]int
	}
	piles := make(map[int]*pile)
	for _, al := range alignments {
		read := reads[al.ReadIndex]
		for j, b := range read {
			pos := al.Pos + j
			p := piles[pos]
			if p == nil {
				p = &pile{alts: make(map[byte]int)}
				piles[pos] = p
			}
			p.depth++
			if b != ref[pos] {
				p.alts[b]++
			}
		}
	}
	var out []Variant
	for pos, p := range piles {
		if p.depth < minDepth {
			continue
		}
		for alt, n := range p.alts {
			if float64(n)/float64(p.depth) >= minFrac {
				out = append(out, Variant{Pos: pos, Ref: ref[pos], Alt: alt, Depth: p.depth, AltCount: n})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// Pipeline runs align+call end to end, the workload the curated VM image
// packages.
func Pipeline(ref []byte, reads [][]byte) []Variant {
	a := NewAligner(ref)
	alignments := a.Align(reads, 8)
	return CallVariants(ref, reads, alignments, 4, 0.6)
}
