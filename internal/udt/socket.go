package udt

import (
	"fmt"

	"osdc/internal/sim"
	"osdc/internal/simnet"
	"osdc/internal/transport"
)

// Packet-level UDT over simnet. One Sender/Receiver pair per transfer; the
// wire protocol carries three control packet types (ACK, NAK, DONE) plus
// data packets, mirroring UDT's design: receiver-driven selective NAKs for
// loss reporting, periodic cumulative ACKs, and sender-side pacing from the
// DAIMD rate controller.

const (
	ctlHeader = 16 // bytes of header per packet, data or control
)

type dataPayload struct {
	seq   int64
	off   int64 // byte offset of this chunk in the stream
	total int64 // total packets in the transfer (so the receiver can finish)
	data  []byte
	sess  string
}

type ackPayload struct {
	cumulative int64 // all packets < cumulative received
	sess       string
}

type nakPayload struct {
	missing []int64
	sess    string
}

type donePayload struct{ sess string }

// Stats collects transfer-level counters for assertions and reports.
type Stats struct {
	DataSent    int64
	Retransmits int64
	AcksSent    int64
	NaksSent    int64
	RateDecs    int64
}

// Sender streams a byte slice to a Receiver over the network.
type Sender struct {
	nw      *simnet.Network
	e       *sim.Engine
	src     string
	dst     string
	sess    string
	mss     int
	data    []byte
	total   int64
	next    int64 // next fresh sequence to send
	acked   int64 // cumulative ack point
	rc      *RateControl
	lossQ   []int64 // sequences NAK'd, to retransmit first
	inLossQ map[int64]bool
	// Congestion-epoch tracking: only one rate decrease per window of data,
	// as in UDT.
	lastDecSeq int64
	stats      Stats
	finished   bool
	onDone     func(*Stats)
	started    sim.Time
	Done       sim.Time
	sending    bool
}

// Receiver reassembles the byte stream and reports loss via NAKs.
type Receiver struct {
	nw       *simnet.Network
	e        *sim.Engine
	node     string
	peer     string
	sess     string
	buf      []byte
	got      map[int64]bool
	expected int64 // lowest sequence not yet received
	maxSeen  int64 // highest sequence received so far
	total    int64 // learned from data packets; -1 until known
	stats    *Stats
	finished bool
	ackTick  *sim.Ticker
	nakTick  *sim.Ticker
}

// proto returns the simnet protocol key for a session at a node.
func proto(sess string) string { return "udt:" + sess }

// Transfer starts a packet-level UDT transfer of data from src to dst and
// returns the sender. onDone (may be nil) fires when the receiver has every
// byte and the sender has been notified.
func Transfer(nw *simnet.Network, src, dst, sess string, data []byte, onDone func(*Stats)) (*Sender, *Receiver) {
	if len(data) == 0 {
		panic("udt: empty transfer")
	}
	path := transport.PathBetween(nw, src, dst)
	mss := path.MSS - ctlHeader
	total := int64((len(data) + mss - 1) / mss)
	s := &Sender{
		nw: nw, e: nw.Engine, src: src, dst: dst, sess: sess, mss: mss,
		data: data, total: total, rc: NewRateControl(path),
		inLossQ: make(map[int64]bool), onDone: onDone,
		lastDecSeq: -1, started: nw.Engine.Now(),
	}
	r := &Receiver{
		nw: nw, e: nw.Engine, node: dst, peer: src, sess: sess,
		buf: make([]byte, len(data)), got: make(map[int64]bool),
		maxSeen: -1, total: total, stats: &s.stats,
	}
	nw.Node(dst).Handle(proto(sess), r.onPacket)
	nw.Node(src).Handle(proto(sess)+":ctl", s.onControl)

	// Receiver timers: ACK every SYN; NAK sweep for stale holes every 4×SYN.
	r.ackTick = nw.Engine.Every(SYN, r.sendAck)
	r.nakTick = nw.Engine.Every(4*SYN, r.sweepHoles)

	// Sender control loop: one rate-control step per SYN.
	var synTick *sim.Ticker
	synTick = nw.Engine.Every(SYN, func() {
		if s.finished {
			synTick.Stop()
			return
		}
		s.rc.OnInterval(false) // NAK-driven decreases happen in onControl
	})
	// Expiry timer (UDT's EXP event): if every fresh packet has been sent
	// but the ACK point is stuck — tail loss the receiver cannot NAK, or a
	// lost DONE — retransmit from the ACK point.
	lastAcked := int64(-1)
	var expTick *sim.Ticker
	expTick = nw.Engine.Every(16*SYN, func() {
		if s.finished {
			expTick.Stop()
			return
		}
		if s.next >= s.total && len(s.lossQ) == 0 && s.acked == lastAcked {
			for seq := s.acked; seq < s.total && len(s.lossQ) < 64; seq++ {
				if !s.inLossQ[seq] {
					s.inLossQ[seq] = true
					s.lossQ = append(s.lossQ, seq)
				}
			}
			s.pump()
		}
		lastAcked = s.acked
	})
	s.pump()
	return s, r
}

// Stats returns a snapshot of the transfer counters.
func (s *Sender) Stats() Stats {
	st := s.stats
	st.RateDecs = s.rc.decreases
	return st
}

// pump paces data packets at the controller rate, preferring NAK'd
// sequences.
func (s *Sender) pump() {
	if s.finished || s.sending {
		return
	}
	seq, ok := s.nextSeq()
	if !ok {
		// Nothing to send right now; NAKs or the final ACK will wake us.
		return
	}
	s.sending = true
	s.sendData(seq)
	period := 1.0 / s.rc.RatePps()
	s.e.After(period, func() {
		s.sending = false
		s.pump()
	})
}

func (s *Sender) nextSeq() (int64, bool) {
	for len(s.lossQ) > 0 {
		seq := s.lossQ[0]
		s.lossQ = s.lossQ[1:]
		delete(s.inLossQ, seq)
		if seq >= s.acked {
			s.stats.Retransmits++
			return seq, true
		}
	}
	if s.next < s.total {
		seq := s.next
		s.next++
		return seq, true
	}
	return 0, false
}

func (s *Sender) sendData(seq int64) {
	lo := seq * int64(s.mss)
	hi := lo + int64(s.mss)
	if hi > int64(len(s.data)) {
		hi = int64(len(s.data))
	}
	s.stats.DataSent++
	s.nw.Send(&simnet.Packet{
		Src: s.src, Dst: s.dst, Proto: proto(s.sess), Seq: seq,
		Size:    int(hi-lo) + ctlHeader,
		Payload: dataPayload{seq: seq, off: lo, total: s.total, data: s.data[lo:hi], sess: s.sess},
	})
}

func (s *Sender) onControl(pkt *simnet.Packet) {
	switch p := pkt.Payload.(type) {
	case ackPayload:
		if p.cumulative > s.acked {
			s.acked = p.cumulative
		}
	case nakPayload:
		// One rate decrease per congestion epoch: only if this NAK reports a
		// sequence beyond the last decrease point.
		maxSeq := int64(-1)
		for _, seq := range p.missing {
			if seq > maxSeq {
				maxSeq = seq
			}
			if seq >= s.acked && !s.inLossQ[seq] {
				s.inLossQ[seq] = true
				s.lossQ = append(s.lossQ, seq)
			}
		}
		if maxSeq > s.lastDecSeq {
			s.rc.OnInterval(true)
			s.lastDecSeq = s.next - 1
		}
		s.pump()
	case donePayload:
		s.finish()
	}
}

func (s *Sender) finish() {
	if s.finished {
		return
	}
	s.finished = true
	s.Done = s.e.Now()
	if s.onDone != nil {
		st := s.Stats()
		s.onDone(&st)
	}
}

// ThroughputBps returns the average goodput; valid after completion.
func (s *Sender) ThroughputBps() float64 {
	d := float64(s.Done - s.started)
	if d <= 0 {
		return 0
	}
	return float64(len(s.data)) * 8 / d
}

func (r *Receiver) onPacket(pkt *simnet.Packet) {
	p, ok := pkt.Payload.(dataPayload)
	if !ok || r.finished {
		return
	}
	if r.total < 0 {
		r.total = p.total
	}
	if !r.got[p.seq] {
		r.got[p.seq] = true
		copy(r.buf[p.off:], p.data)
	}
	if p.seq > r.maxSeen {
		r.maxSeen = p.seq
	}
	// Immediate NAK when a gap opens: packets between expected and seq-1
	// missing and seq jumped ahead.
	if p.seq > r.expected {
		var missing []int64
		for q := r.expected; q < p.seq && len(missing) < 256; q++ {
			if !r.got[q] {
				missing = append(missing, q)
			}
		}
		if len(missing) > 0 {
			r.sendNak(missing)
		}
	}
	for r.got[r.expected] {
		r.expected++
	}
	if r.complete() {
		r.finish()
	}
}

func (r *Receiver) complete() bool {
	return r.total >= 0 && r.expected >= r.total
}

// Data returns the reassembled bytes; valid after completion.
func (r *Receiver) Data() []byte { return r.buf }

// Finished reports whether every packet arrived.
func (r *Receiver) Finished() bool { return r.finished }

func (r *Receiver) sendAck( /* every SYN */ ) {
	if r.finished {
		return
	}
	r.stats.AcksSent++
	r.nw.Send(&simnet.Packet{
		Src: r.node, Dst: r.peer, Proto: proto(r.sess) + ":ctl",
		Size: ctlHeader, Payload: ackPayload{cumulative: r.expected, sess: r.sess},
	})
}

// sweepHoles re-reports long-standing holes below the highest sequence seen,
// covering lost NAKs. Packets above maxSeen may simply not have been sent
// yet, so they are never NAK'd here; losses at the very tail are recovered
// by the sender's expiry timer.
func (r *Receiver) sweepHoles() {
	if r.finished || r.total < 0 {
		return
	}
	var missing []int64
	for q := r.expected; q <= r.maxSeen && len(missing) < 256; q++ {
		if !r.got[q] {
			missing = append(missing, q)
		}
	}
	if len(missing) > 0 {
		r.sendNak(missing)
	}
}

func (r *Receiver) sendNak(missing []int64) {
	r.stats.NaksSent++
	r.nw.Send(&simnet.Packet{
		Src: r.node, Dst: r.peer, Proto: proto(r.sess) + ":ctl",
		Size: ctlHeader + 4*len(missing), Payload: nakPayload{missing: missing, sess: r.sess},
	})
}

func (r *Receiver) finish() {
	r.finished = true
	r.ackTick.Stop()
	r.nakTick.Stop()
	// Tell the sender we are done; repeat a few times in case of loss.
	for i := 0; i < 3; i++ {
		r.nw.Send(&simnet.Packet{
			Src: r.node, Dst: r.peer, Proto: proto(r.sess) + ":ctl",
			Size: ctlHeader, Payload: donePayload{sess: r.sess},
		})
	}
}

func (r *Receiver) String() string {
	return fmt.Sprintf("udt-recv[%s] expected=%d total=%d", r.sess, r.expected, r.total)
}
