package udt

import (
	"bytes"
	"crypto/sha256"
	"math"
	"testing"

	"osdc/internal/sim"
	"osdc/internal/simnet"
	"osdc/internal/transport"
)

func lvocPath() transport.Path {
	return transport.Path{
		BandwidthBps: 10 * simnet.Gbit,
		RTT:          0.104,
		Loss:         1.15e-7,
		MSS:          transport.DefaultMSS,
	}
}

func TestRateControlRampsTowardCapacity(t *testing.T) {
	rc := NewRateControl(lvocPath())
	// 30 simulated seconds without loss.
	for i := 0; i < 3000; i++ {
		rc.OnInterval(false)
	}
	gbps := rc.RatePps() * float64(transport.DefaultMSS*8) / 1e9
	if gbps < 5 {
		t.Fatalf("after 30 s UDT rate = %.2f Gbit/s, want ≥5 (fast ramp)", gbps)
	}
}

func TestRateControlDecreaseFactor(t *testing.T) {
	rc := NewRateControl(lvocPath())
	for i := 0; i < 1000; i++ {
		rc.OnInterval(false)
	}
	before := rc.RatePps()
	rc.OnInterval(true)
	after := rc.RatePps()
	if math.Abs(after/before-DecreaseFactor) > 1e-9 {
		t.Fatalf("decrease ratio = %v, want 8/9", after/before)
	}
	if rc.Decreases() != 1 {
		t.Fatalf("decreases = %d, want 1", rc.Decreases())
	}
}

func TestRateControlFloorsAtOnePacketPerSYN(t *testing.T) {
	rc := NewRateControl(lvocPath())
	for i := 0; i < 10000; i++ {
		rc.OnInterval(true)
	}
	if got := rc.RatePps(); got < 1/SYN-1e-9 {
		t.Fatalf("rate fell to %v pps, below floor", got)
	}
}

func TestIncrementShrinksNearCapacity(t *testing.T) {
	rc := NewRateControl(lvocPath())
	farInc := rc.increment()
	rc.ratePps = rc.capacityPps * 0.999
	nearInc := rc.increment()
	if nearInc >= farInc {
		t.Fatalf("increment near capacity (%v) not smaller than far (%v)", nearInc, farInc)
	}
	rc.ratePps = rc.capacityPps * 1.5
	overInc := rc.increment()
	if overInc != 1.0/float64(rc.mss) {
		t.Fatalf("increment above capacity = %v, want minimum 1/MSS", overInc)
	}
}

func TestMacroTransferApproachesBottleneckOnCleanPath(t *testing.T) {
	path := transport.Path{BandwidthBps: 1 * simnet.Gbit, RTT: 0.104, Loss: 0, MSS: 1460}
	rc := NewRateControl(path)
	res := transport.Simulate(sim.NewRNG(1), path, rc, 10_000_000_000, transport.Caps{})
	mb := res.ThroughputMbit()
	// DAIMD oscillates just under the bottleneck.
	if mb < 800 || mb > 1001 {
		t.Fatalf("UDT on clean 1G path = %.0f Mbit/s, want 800–1000", mb)
	}
}

func TestMacroTransferRespectsCipherCap(t *testing.T) {
	path := lvocPath()
	rc := NewRateControl(path)
	caps := transport.Caps{SenderBps: 394e6, DiskReadBps: 3072e6, DiskWriteBps: 1136e6}
	res := transport.Simulate(sim.NewRNG(1), path, rc, 5_000_000_000, caps)
	mb := res.ThroughputMbit()
	if mb < 370 || mb > 395 {
		t.Fatalf("UDT with 394 Mbit cipher cap = %.0f Mbit/s, want ~390", mb)
	}
}

// --- packet-level socket tests ---

func testNet(loss float64) (*sim.Engine, *simnet.Network) {
	e := sim.NewEngine(42)
	nw := simnet.New(e)
	nw.AddNode("src", "chi")
	nw.AddNode("dst", "lvoc")
	nw.AddDuplex("src", "dst", simnet.Gbit, 10*sim.Millisecond, loss)
	return e, nw
}

func payload(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + seed
	}
	return b
}

func TestSocketLosslessDeliveryExact(t *testing.T) {
	e, nw := testNet(0)
	data := payload(1_000_000, 3)
	var done bool
	_, r := Transfer(nw, "src", "dst", "s1", data, func(*Stats) { done = true })
	e.RunUntil(60)
	if !done || !r.Finished() {
		t.Fatal("transfer did not complete")
	}
	if sha256.Sum256(r.Data()) != sha256.Sum256(data) {
		t.Fatal("received bytes differ from sent bytes")
	}
}

func TestSocketRecoversFromHeavyLoss(t *testing.T) {
	e, nw := testNet(0.05) // 5% loss each way
	data := payload(500_000, 9)
	var stats *Stats
	_, r := Transfer(nw, "src", "dst", "s2", data, func(s *Stats) { stats = s })
	e.RunUntil(300)
	if stats == nil || !r.Finished() {
		t.Fatal("transfer did not complete under 5% loss")
	}
	if !bytes.Equal(r.Data(), data) {
		t.Fatal("data corrupted under loss")
	}
	if stats.Retransmits == 0 {
		t.Fatal("expected retransmissions under 5% loss")
	}
	if stats.NaksSent == 0 {
		t.Fatal("expected NAKs under loss")
	}
	if stats.RateDecs == 0 {
		t.Fatal("expected rate decreases under loss")
	}
}

func TestSocketNoLossNoRetransmit(t *testing.T) {
	e, nw := testNet(0)
	data := payload(200_000, 1)
	var stats *Stats
	Transfer(nw, "src", "dst", "s3", data, func(s *Stats) { stats = s })
	e.RunUntil(60)
	if stats == nil {
		t.Fatal("no completion")
	}
	if stats.Retransmits != 0 {
		t.Fatalf("retransmits = %d on lossless path", stats.Retransmits)
	}
	if stats.RateDecs != 0 {
		t.Fatalf("rate decreases = %d on lossless path", stats.RateDecs)
	}
}

func TestSocketTinyTransfer(t *testing.T) {
	e, nw := testNet(0)
	data := []byte("hello OSDC")
	var done bool
	_, r := Transfer(nw, "src", "dst", "s4", data, func(*Stats) { done = true })
	e.RunUntil(10)
	if !done {
		t.Fatal("tiny transfer did not complete")
	}
	if !bytes.Equal(r.Data(), data) {
		t.Fatalf("got %q want %q", r.Data(), data)
	}
}

func TestSocketEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty transfer")
		}
	}()
	_, nw := testNet(0)
	Transfer(nw, "src", "dst", "s5", nil, nil)
}

func TestSocketConcurrentSessionsIsolated(t *testing.T) {
	e, nw := testNet(0.01)
	a := payload(300_000, 5)
	b := payload(300_000, 11)
	_, ra := Transfer(nw, "src", "dst", "sa", a, nil)
	_, rb := Transfer(nw, "src", "dst", "sb", b, nil)
	e.RunUntil(120)
	if !ra.Finished() || !rb.Finished() {
		t.Fatal("concurrent sessions did not both finish")
	}
	if !bytes.Equal(ra.Data(), a) || !bytes.Equal(rb.Data(), b) {
		t.Fatal("sessions cross-contaminated data")
	}
}
