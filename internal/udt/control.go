// Package udt implements the UDT protocol used by the OSDC's UDR transfer
// tool (paper §7.2).
//
// UDT (UDP-based Data Transfer) is a reliable, rate-based protocol designed
// for high bandwidth-delay-product research networks, where TCP's AIMD
// window control leaves most of a 10G path idle. This package provides:
//
//   - RateControl: UDT's DAIMD congestion control law (decreasing AIMD),
//     usable with the transport.Simulate macro driver for terabyte-scale
//     transfers;
//   - Sender/Receiver: a packet-level implementation with sequence numbers,
//     selective NAK-based loss reporting, periodic ACKs and pacing, running
//     over simnet for protocol-correctness tests.
//
// The control law follows Gu & Grossman's UDT: every SYN interval (10 ms)
// the sending rate increases by inc/SYN packets per second, where
//
//	inc = max( 10^ceil(log10(B_residual_bits)) × 1.5e-6 / MSS, 1/MSS )
//
// and on a loss event the sending period is increased by 1.125× (the rate is
// multiplied by 8/9).
package udt

import (
	"math"

	"osdc/internal/sim"
	"osdc/internal/transport"
)

// SYN is UDT's fixed control interval: 0.01 seconds.
const SYN sim.Duration = 0.01

// Beta is UDT's rate-increase scaling constant (packets per bit, per the
// published control law).
const Beta = 1.5e-6

// DecreaseFactor is applied to the rate on a loss event: 8/9 ≈ 1/1.125.
const DecreaseFactor = 8.0 / 9.0

// RateControl is UDT's DAIMD law. It implements transport.Controller.
type RateControl struct {
	mss         int
	capacityPps float64 // receiver's estimated link capacity, packets/s
	ratePps     float64
	decreases   int64
	increases   int64
}

var _ transport.Controller = (*RateControl)(nil)

// NewRateControl builds the controller for a path. The capacity estimate
// comes from UDT's receiver-side packet-pair measurement; in simulation we
// hand it the true bottleneck bandwidth, which is what the estimator
// converges to on a clean path.
func NewRateControl(path transport.Path) *RateControl {
	mss := path.MSS
	if mss <= 0 {
		mss = transport.DefaultMSS
	}
	return &RateControl{
		mss:         mss,
		capacityPps: path.BandwidthBps / float64(mss*8),
		// UDT leaves slow start after the first SYN in practice; starting at
		// a small positive rate, the DAIMD ramp reaches gigabit rates in
		// seconds.
		ratePps: 2 / SYN,
	}
}

// Name implements transport.Controller.
func (rc *RateControl) Name() string { return "udt" }

// Interval implements transport.Controller: UDT's fixed SYN.
func (rc *RateControl) Interval() sim.Duration { return SYN }

// RatePps implements transport.Controller.
func (rc *RateControl) RatePps() float64 { return rc.ratePps }

// Decreases returns the number of loss-triggered rate decreases.
func (rc *RateControl) Decreases() int64 { return rc.decreases }

// OnInterval advances one SYN.
func (rc *RateControl) OnInterval(lossEvent bool) {
	if lossEvent {
		rc.ratePps *= DecreaseFactor
		if rc.ratePps < 1/SYN {
			rc.ratePps = 1 / SYN
		}
		rc.decreases++
		return
	}
	rc.ratePps += rc.increment() / SYN
	rc.increases++
}

// increment returns UDT's per-SYN additive increase in packets.
func (rc *RateControl) increment() float64 {
	residualPps := rc.capacityPps - rc.ratePps
	minInc := 1.0 / float64(rc.mss)
	if residualPps <= 0 {
		return minInc
	}
	residualBits := residualPps * float64(rc.mss*8)
	inc := math.Pow(10, math.Ceil(math.Log10(residualBits))) * Beta / float64(rc.mss)
	if inc < minInc {
		return minInc
	}
	return inc
}
