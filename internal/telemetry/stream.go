package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"osdc/internal/sim"
)

// Streamer pushes aggregated telemetry deltas to subscribers as
// Server-Sent Events. It ticks on the *simulation's* virtual clock, not
// wall time: Start arms a sim.Ticker, and each firing snapshots the
// source, diffs it against the previous snapshot, and broadcasts one SSE
// frame carrying only the changed series.
//
// Driving the stream off virtual time is what makes it testable as a
// golden: a scenario that advances the engine deterministically (frozen
// clock while requests run, fixed virtual quanta between phases) gets the
// same tick times, the same snapshots, and — because encoding/json sorts
// map keys and the frame carries no wall-clock fields — byte-identical
// event sequences on every run.
type Streamer struct {
	source func() map[string]float64
	sel    func(series string) bool // nil = stream everything

	engine *sim.Engine
	ticker *sim.Ticker

	mu     sync.Mutex
	subs   map[int]chan []byte
	nextID int
	prev   map[string]float64
	seq    int64
	closed bool

	// Dropped counts frames discarded because a subscriber's buffer was
	// full: a tick fires inside an engine callback and must never block
	// on a slow reader.
	Dropped int64
}

// NewStreamer builds a streamer over a snapshot source (typically
// Registry.Snapshot, Collector.Snapshot, or a merge of both).
func NewStreamer(source func() map[string]float64) *Streamer {
	return &Streamer{source: source, subs: make(map[int]chan []byte), prev: map[string]float64{}}
}

// SetSelect filters which series the stream carries. A scenario pins the
// stream as a golden by selecting only series that are deterministic
// functions of virtual time (counters, engine state) and dropping
// wall-clock measurements (request latency histograms).
func (s *Streamer) SetSelect(fn func(series string) bool) { s.sel = fn }

// Start arms the stream's ticker on e: one frame every period of virtual
// time, for as long as the engine keeps advancing.
func (s *Streamer) Start(e *sim.Engine, period sim.Duration) {
	s.engine = e
	s.ticker = e.Every(period, s.tick)
}

// event is the SSE data payload: the virtual timestamp, the frame
// sequence number, and every series whose value changed since the last
// frame (absolute values, not diffs — a late joiner can trust any frame).
type event struct {
	T       float64            `json:"t"`
	Seq     int64              `json:"seq"`
	Changed map[string]float64 `json:"changed"`
}

// tick builds and broadcasts one frame. Runs inside an engine callback
// (the engine fires callbacks with its lock released, so the source may
// read engine state).
func (s *Streamer) tick() {
	snap := s.source()
	if s.sel != nil {
		for k := range snap {
			if !s.sel(k) {
				delete(snap, k)
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	changed := make(map[string]float64)
	for k, v := range snap {
		if old, ok := s.prev[k]; !ok || old != v {
			changed[k] = v
		}
	}
	s.prev = snap
	s.seq++
	data, _ := json.Marshal(event{T: float64(s.engine.Now()), Seq: s.seq, Changed: changed})
	frame := []byte(fmt.Sprintf("id: %d\nevent: telemetry\ndata: %s\n\n", s.seq, data))
	for id, ch := range s.subs {
		select {
		case ch <- frame:
		default:
			s.Dropped++
			_ = id
		}
	}
}

// Subscribe returns a frame channel (buffered to buffer, floored at 16)
// and a cancel function. The channel closes when the streamer closes.
func (s *Streamer) Subscribe(buffer int) (<-chan []byte, func()) {
	if buffer < 16 {
		buffer = 16
	}
	ch := make(chan []byte, buffer)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		close(ch)
		return ch, func() {}
	}
	id := s.nextID
	s.nextID++
	s.subs[id] = ch
	return ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(ch)
		}
	}
}

// Close stops the ticker and closes every subscriber channel, ending
// their streams. Idempotent.
func (s *Streamer) Close() {
	if s.ticker != nil {
		s.ticker.Stop()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for id, ch := range s.subs {
		delete(s.subs, id)
		close(ch)
	}
}

// ServeStream writes frames to w as an SSE response until the stream
// closes or the client goes away. The console mounts it at
// GET /console/stream behind its session chain.
func (s *Streamer) ServeStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch, cancel := s.Subscribe(256)
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case frame, open := <-ch:
			if !open {
				return
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
