package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"osdc/internal/fanout"
)

// Member is one federation endpoint the Collector scrapes: a name (the
// `member` label on every aggregated series) and the base URL whose
// /metrics the member serves.
type Member struct {
	Name string
	URL  string
}

// MemberStats aggregates the collector's history with one member.
type MemberStats struct {
	Member  string
	Scrapes int64 // successful scrape rounds
	Errors  int64 // unreachable, non-200, unparseable, or abandoned at deadline
	Series  int   // series count in the last successful scrape
}

// Collector is the federation-wide scrape loop: every interval of wall
// time it GETs each member's /metrics (authenticated with the operator
// secret), parses the exposition text, and folds the series into one
// aggregated view with a `member` label injected. Scrapes fan out over a
// bounded worker pool with a per-member deadline, exactly the
// ClockCoordinator's round shape: one hung site may miss a round (and
// count an error), never stall the sweep.
type Collector struct {
	members []Member
	secret  string
	client  *http.Client
	workers int

	mu       sync.Mutex
	deadline time.Duration // per-scrape wall budget; <= 0 waits. Written by Start, read by Round.
	stats    map[string]*MemberStats
	data     map[string]map[string]float64 // member → series → value

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	started  bool
}

// scrapeWorkers bounds the per-round scrape pool.
const scrapeWorkers = 8

// NewCollector builds a collector over the given members. client may be
// nil for a private client with a 10 s timeout. The collector is passive
// until Start (wall-clock loop) or Round (one synchronous sweep — what a
// deterministic scenario drives off the sim clock).
func NewCollector(secret string, client *http.Client, members ...Member) *Collector {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	c := &Collector{
		members: members, secret: secret, client: client,
		workers: scrapeWorkers,
		stats:   make(map[string]*MemberStats),
		data:    make(map[string]map[string]float64),
		stop:    make(chan struct{}), done: make(chan struct{}),
	}
	for _, m := range members {
		c.stats[m.Name] = &MemberStats{Member: m.Name}
	}
	return c
}

// Round runs one synchronous scrape sweep over every member. Each scrape
// settles exactly once per round: a goroutine still running when the
// fanout deadline passes is counted as an error here, and if it later
// finishes anyway its result is discarded — never one error plus one
// success for the same member in the same round. Both sides settle under
// c.mu, so whichever gets there first wins.
func (c *Collector) Round() {
	c.mu.Lock()
	deadline := c.deadline
	c.mu.Unlock()
	settled := make([]bool, len(c.members)) // guarded by c.mu
	tasks := make([]func(), len(c.members))
	for i, m := range c.members {
		i, m := i, m
		tasks[i] = func() { c.scrapeOne(m, &settled[i]) }
	}
	completed := fanout.Each(c.workers, deadline, tasks)
	c.mu.Lock()
	for i, ok := range completed {
		if !ok && !settled[i] {
			settled[i] = true
			c.stats[c.members[i].Name].Errors++
		}
	}
	c.mu.Unlock()
}

// Start begins scraping every interval of wall time (<= 0 means 1 s)
// until Stop. Each member's per-scrape deadline is half the interval,
// floored at 100 ms — the coordinator convention: tight enough that a
// hung member cannot eat the round, loose enough that HTTP jitter at
// test-scale intervals does not count healthy members as errors.
func (c *Collector) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	deadline := interval / 2
	if deadline < 100*time.Millisecond {
		deadline = 100 * time.Millisecond
	}
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.deadline = deadline
	c.mu.Unlock()
	go func() {
		defer close(c.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-tick.C:
				c.Round()
			}
		}
	}()
}

// Stop halts the scrape loop (if Start ran) and waits for it to exit.
// Idempotent; safe on a collector only ever driven by Round.
func (c *Collector) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.mu.Lock()
	started := c.started
	c.mu.Unlock()
	if started {
		<-c.done
	}
}

// scrapeOne GETs one member's /metrics and folds the parse into the view.
// settled is this scrape's per-round token (see Round); every outcome is
// recorded through it so an abandoned scrape that limps in late is a
// no-op rather than a second count.
func (c *Collector) scrapeOne(m Member, settled *bool) {
	req, err := http.NewRequest(http.MethodGet, m.URL+"/metrics", nil)
	if err != nil {
		c.countError(m.Name, settled)
		return
	}
	if c.secret != "" {
		req.Header.Set("X-OSDC-Operator", c.secret)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.countError(m.Name, settled)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		c.countError(m.Name, settled)
		return
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		c.countError(m.Name, settled)
		return
	}
	parsed, err := ParseText(body)
	if err != nil {
		c.countError(m.Name, settled)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if *settled {
		return
	}
	*settled = true
	c.data[m.Name] = parsed
	st := c.stats[m.Name]
	st.Scrapes++
	st.Series = len(parsed)
}

func (c *Collector) countError(name string, settled *bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if *settled {
		return
	}
	*settled = true
	c.stats[name].Errors++
}

// Snapshot returns the aggregated federation view: every member's series
// with a `member` label injected as the first label of each series key
// (our format, our rule: the collector's own output keeps member first so
// one cloud's series group together).
func (c *Collector) Snapshot() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64)
	for member, seriesMap := range c.data {
		for key, v := range seriesMap {
			out[injectMember(key, member)] = v
		}
	}
	return out
}

// injectMember rewrites `name{a="b"}` to `name{member="X",a="b"}` (and
// `name` to `name{member="X"}`).
func injectMember(key, member string) string {
	tag := fmt.Sprintf("member=%q", member)
	if i := indexLabelBrace(key); i >= 0 {
		if key[len(key)-1] == '}' && len(key) > i+1 && key[i+1] != '}' {
			return key[:i+1] + tag + "," + key[i+1:]
		}
		return key[:i+1] + tag + "}"
	}
	return key + "{" + tag + "}"
}

// indexLabelBrace finds the label block's opening brace, or -1.
func indexLabelBrace(key string) int {
	for i := 0; i < len(key); i++ {
		if key[i] == '{' {
			return i
		}
	}
	return -1
}

// Stats returns a copy of every member's scrape statistics, sorted by
// member name.
func (c *Collector) Stats() []MemberStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]MemberStats, 0, len(c.stats))
	for _, s := range c.stats {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Member < out[j].Member })
	return out
}

// RegisterMetrics contributes the collector's own health to reg: scrape
// and error counts plus last-seen series per member, so the telemetry
// plane reports on itself through the same pipe.
func (c *Collector) RegisterMetrics(reg *Registry) {
	member := func(pick func(MemberStats) float64) func() []Sample {
		return func() []Sample {
			stats := c.Stats()
			out := make([]Sample, 0, len(stats))
			for _, st := range stats {
				out = append(out, Sample{
					Labels: []Label{{Key: "member", Value: st.Member}},
					Value:  pick(st),
				})
			}
			return out
		}
	}
	reg.SampleFunc("osdc_scrapes_total",
		"Successful /metrics scrapes per federation member.", "counter",
		member(func(s MemberStats) float64 { return float64(s.Scrapes) }))
	reg.SampleFunc("osdc_scrape_errors_total",
		"Failed /metrics scrapes per federation member.", "counter",
		member(func(s MemberStats) float64 { return float64(s.Errors) }))
	reg.SampleFunc("osdc_scrape_series",
		"Series seen in each member's last successful scrape.", "gauge",
		member(func(s MemberStats) float64 { return float64(s.Series) }))
}
