package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"osdc/internal/sim"
)

// runStream drives one deterministic stream session: a counter bumped
// between fixed virtual advances, three ticks per advance, and returns
// the concatenated frames a subscriber saw.
func runStream(t *testing.T) []byte {
	t.Helper()
	e := sim.NewEngine(42)
	reg := NewRegistry()
	c := reg.Counter("osdc_work_total", "work", Label{"kind", "launch"})
	s := NewStreamer(reg.Snapshot)
	s.Start(e, 10)
	ch, cancel := s.Subscribe(64)
	defer cancel()

	c.Add(2)
	e.RunFor(30) // ticks at t=10,20,30
	c.Inc()
	e.RunFor(30) // ticks at t=40,50,60
	s.Close()

	var buf bytes.Buffer
	for frame := range ch {
		buf.Write(frame)
	}
	return buf.Bytes()
}

func TestStreamFramesAreDeterministic(t *testing.T) {
	first := runStream(t)
	second := runStream(t)
	if !bytes.Equal(first, second) {
		t.Fatalf("two identical sessions produced different streams:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	got := string(first)
	// Frame 1 carries the initial value; frames 2-3 are unchanged (empty
	// delta); frame 4 carries the bump.
	for _, want := range []string{
		"id: 1\nevent: telemetry\ndata: {\"t\":10,\"seq\":1,\"changed\":{\"osdc_work_total{kind=\\\"launch\\\"}\":2}}\n\n",
		"id: 2\nevent: telemetry\ndata: {\"t\":20,\"seq\":2,\"changed\":{}}\n\n",
		"id: 4\nevent: telemetry\ndata: {\"t\":40,\"seq\":4,\"changed\":{\"osdc_work_total{kind=\\\"launch\\\"}\":3}}\n\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("stream missing frame %q\n--- got ---\n%s", want, got)
		}
	}
	if n := strings.Count(got, "event: telemetry"); n != 6 {
		t.Errorf("stream carried %d frames, want 6", n)
	}
}

func TestStreamSelectFilters(t *testing.T) {
	e := sim.NewEngine(1)
	reg := NewRegistry()
	reg.Counter("keep_total", "k").Inc()
	reg.Counter("drop_total", "d").Inc()
	s := NewStreamer(reg.Snapshot)
	s.SetSelect(func(series string) bool { return !strings.HasPrefix(series, "drop_") })
	s.Start(e, 5)
	ch, cancel := s.Subscribe(16)
	defer cancel()
	e.RunFor(5)
	s.Close()
	var buf bytes.Buffer
	for frame := range ch {
		buf.Write(frame)
	}
	if strings.Contains(buf.String(), "drop_total") {
		t.Fatalf("filtered series leaked into stream:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "keep_total") {
		t.Fatalf("kept series missing from stream:\n%s", buf.String())
	}
}

// TestStreamNeverBlocksEngine pins the no-backpressure contract: a
// subscriber that never reads cannot stall ticks; overflow frames are
// counted, not waited on.
func TestStreamNeverBlocksEngine(t *testing.T) {
	e := sim.NewEngine(1)
	reg := NewRegistry()
	c := reg.Counter("x_total", "x")
	s := NewStreamer(reg.Snapshot)
	s.Start(e, 1)
	_, cancel := s.Subscribe(16) // never read
	defer cancel()
	for i := 0; i < 100; i++ {
		c.Inc()
		e.RunFor(1)
	}
	s.mu.Lock()
	dropped := s.Dropped
	s.mu.Unlock()
	if dropped == 0 {
		t.Fatal("expected dropped frames on an unread subscriber")
	}
}

func TestSubscribeAfterCloseGetsClosedChannel(t *testing.T) {
	s := NewStreamer(func() map[string]float64 { return nil })
	s.Close()
	ch, cancel := s.Subscribe(16)
	defer cancel()
	if _, open := <-ch; open {
		t.Fatal("subscription on a closed streamer delivered a frame")
	}
}
