// Package telemetry is the federation's live measurement plane: a
// dependency-free metric registry rendered in the Prometheus text
// exposition format, a cross-site Collector that scrapes member /metrics
// endpoints, and a Streamer that pushes aggregated deltas to operators
// over SSE on the simulation's virtual clock.
//
// The registry exists because every scale claim so far is proven post-hoc
// — scenario goldens and BENCH snapshots — while a running federation
// shows operators only point-in-time JSON. Counters and histograms ride
// the hot paths (console requests, lb retries, engine dispatch), so the
// increment path is a single atomic add: no locks, no allocations, no
// label hashing at observation time. Label sets are fixed at registration
// and rendered into a sorted, escaped block once, which is also what makes
// two renders of an unchanged registry byte-identical — the property the
// format-stability test and the deterministic stream goldens pin.
package telemetry

import (
	"bufio"
	"bytes"
	"crypto/subtle"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, fixed at registration time.
type Label struct {
	Key   string
	Value string
}

// Sample is one dynamically-labelled observation returned by a SampleFunc
// family — for sources whose label population is not known at
// registration time (replication links appear as transfers happen,
// clock-sync sites attach after startup).
type Sample struct {
	Labels []Label
	Value  float64
}

// Counter is a monotonically increasing metric. The increment path is one
// atomic add: safe on every hot path, zero allocations.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are dropped: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable metric (float64 bits behind one atomic word).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Observe is lock-free: a
// linear scan over the (small, fixed) bound slice, one atomic add on the
// owning bucket, one on the count, and a CAS loop folding the value into
// the sum.
type Histogram struct {
	bounds  []float64       // upper bounds, ascending; +Inf is implicit
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// LatencyBuckets are the fixed bounds (seconds) the console's per-route
// request histograms use: half a millisecond to 2.5 s, roughly
// logarithmic — the range a loopback federation actually produces.
var LatencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// series is one labelled instance of a family: exactly one of the value
// fields is set, matching the family's type.
type series struct {
	labels string // rendered, sorted label block: "" or `{a="b",c="d"}`
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64 // counterfunc / gaugefunc reading an external source
}

func (s *series) value() float64 {
	switch {
	case s.ctr != nil:
		return float64(s.ctr.Value())
	case s.gauge != nil:
		return s.gauge.Value()
	case s.fn != nil:
		return s.fn()
	}
	return 0
}

// family is every series sharing one metric name.
type family struct {
	name string
	help string
	typ  string // "counter", "gauge", "histogram"

	series   map[string]*series
	sampleFn func() []Sample // dynamic families; exclusive with series
}

// Registry holds metric families. Registration and rendering take the
// registry lock; observation never does — handles returned at
// registration carry their own atomics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelBlock renders a sorted, escaped label block ("" for no labels).
// extra, when non-empty, is appended after the sorted set (the histogram
// `le` bound, which Prometheus convention renders last).
func labelBlock(labels []Label, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extra != "" {
		if len(sorted) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register finds or creates the (family, series) slot, panicking on a
// type mismatch: metric names are programmer-chosen identifiers and a
// collision between types is always a bug.
func (r *Registry) register(name, help, typ string, labels []Label) (*family, *series, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: %s registered as %s and %s", name, f.typ, typ))
	}
	if f.sampleFn != nil {
		panic("telemetry: " + name + " is a sample-func family; no static series allowed")
	}
	key := labelBlock(labels, "")
	if s, ok := f.series[key]; ok {
		return f, s, false
	}
	s := &series{labels: key}
	f.series[key] = s
	return f, s, true
}

// Counter registers (or finds) a counter series and returns its handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	_, s, fresh := r.register(name, help, "counter", labels)
	if fresh {
		s.ctr = &Counter{}
	}
	if s.ctr == nil {
		panic("telemetry: " + name + " is not a plain counter series")
	}
	return s.ctr
}

// Gauge registers (or finds) a gauge series and returns its handle.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	_, s, fresh := r.register(name, help, "gauge", labels)
	if fresh {
		s.gauge = &Gauge{}
	}
	if s.gauge == nil {
		panic("telemetry: " + name + " is not a plain gauge series")
	}
	return s.gauge
}

// CounterFunc registers a counter series whose value is read from fn at
// render time — the bridge to counters that already exist elsewhere
// (engine fired counts, biller poll errors) without double accounting.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	_, s, fresh := r.register(name, help, "counter", labels)
	if !fresh {
		panic("telemetry: duplicate series " + name + s.labels)
	}
	s.fn = fn
}

// GaugeFunc registers a gauge series read from fn at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	_, s, fresh := r.register(name, help, "gauge", labels)
	if !fresh {
		panic("telemetry: duplicate series " + name + s.labels)
	}
	s.fn = fn
}

// Histogram registers (or finds) a fixed-bucket histogram series.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	_, s, fresh := r.register(name, help, "histogram", labels)
	if fresh {
		s.hist = &Histogram{bounds: append([]float64(nil), buckets...), counts: make([]atomic.Uint64, len(buckets)+1)}
	}
	if s.hist == nil {
		panic("telemetry: " + name + " is not a histogram series")
	}
	return s.hist
}

// SampleFunc registers a whole dynamic family: fn is called at render
// time and may return a different label population every call (per-link
// replication traffic, per-site clock skew). typ is "counter" or "gauge".
func (r *Registry) SampleFunc(name, help, typ string, fn func() []Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("telemetry: duplicate family " + name)
	}
	r.families[name] = &family{name: name, help: help, typ: typ, sampleFn: fn}
}

// formatValue renders a metric value the way the exposition format wants
// it: shortest round-trippable form ('g' with -1 precision renders
// integers without a decimal point).
func formatValue(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// familySnapshot is a render-stable copy of one family taken under the
// registry lock. The series pointers themselves are safe to read without
// it (their values live behind atomics), but the family's series map is
// not: register() grows it under r.mu, so iterating the live map while a
// lazy registration runs (console per-route series on the first request)
// would be a concurrent map read/write — a runtime throw, not a race the
// values could tolerate.
type familySnapshot struct {
	name, help, typ string
	sampleFn        func() []Sample
	series          []*series // sorted by label block
}

// snapshotFamilies copies every family — and each static family's series,
// sorted — under r.mu, returning families sorted by name. SampleFunc and
// value callbacks are invoked by the caller after the lock is released,
// so external sources may themselves register metrics without deadlock.
func (r *Registry) snapshotFamilies() []familySnapshot {
	r.mu.Lock()
	fams := make([]familySnapshot, 0, len(r.families))
	for _, f := range r.families {
		fs := familySnapshot{name: f.name, help: f.help, typ: f.typ, sampleFn: f.sampleFn}
		if f.sampleFn == nil {
			fs.series = make([]*series, 0, len(f.series))
			for _, s := range f.series {
				fs.series = append(fs.series, s)
			}
			sort.Slice(fs.series, func(i, j int) bool { return fs.series[i].labels < fs.series[j].labels })
		}
		fams = append(fams, fs)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// WriteTo renders the registry in the Prometheus text exposition format:
// families sorted by name, series within a family sorted by label block,
// histogram buckets in bound order. Deterministic for a fixed registry
// state — two renders with no observations in between are byte-identical.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	for _, f := range r.snapshotFamilies() {
		fmt.Fprintf(cw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(cw, "# TYPE %s %s\n", f.name, f.typ)
		if f.sampleFn != nil {
			lines := make([]string, 0, 8)
			for _, smp := range f.sampleFn() {
				lines = append(lines, f.name+labelBlock(smp.Labels, "")+" "+formatValue(smp.Value))
			}
			sort.Strings(lines)
			for _, l := range lines {
				fmt.Fprintln(cw, l)
			}
			continue
		}
		for _, s := range f.series {
			if s.hist != nil {
				writeHistogram(cw, f.name, s)
				continue
			}
			fmt.Fprintf(cw, "%s%s %s\n", f.name, s.labels, formatValue(s.value()))
		}
	}
	err := cw.w.(*bufio.Writer).Flush()
	return cw.n, err
}

// writeHistogram renders one histogram series: cumulative buckets, sum,
// count. The le label is appended after the series' own (sorted) labels.
func writeHistogram(w io.Writer, name string, s *series) {
	h := s.hist
	base := strings.TrimSuffix(strings.TrimPrefix(s.labels, "{"), "}")
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		bound := "+Inf"
		if i < len(h.bounds) {
			bound = formatValue(h.bounds[i])
		}
		le := `le="` + bound + `"`
		block := "{" + le + "}"
		if base != "" {
			block = "{" + base + "," + le + "}"
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, block, cum)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatValue(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, h.Count())
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Render returns the text exposition as a byte slice.
func (r *Registry) Render() []byte {
	var b bytes.Buffer
	_, _ = r.WriteTo(&b)
	return b.Bytes()
}

// Snapshot returns every series as "name{labels}" → value, histograms
// expanded into their _bucket/_sum/_count series — the form the Streamer
// diffs and the Collector aggregates.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, f := range r.snapshotFamilies() {
		if f.sampleFn != nil {
			for _, smp := range f.sampleFn() {
				out[f.name+labelBlock(smp.Labels, "")] = smp.Value
			}
			continue
		}
		for _, s := range f.series {
			if s.hist != nil {
				base := strings.TrimSuffix(strings.TrimPrefix(s.labels, "{"), "}")
				var cum uint64
				for i := range s.hist.counts {
					cum += s.hist.counts[i].Load()
					bound := "+Inf"
					if i < len(s.hist.bounds) {
						bound = formatValue(s.hist.bounds[i])
					}
					le := `le="` + bound + `"`
					block := "{" + le + "}"
					if base != "" {
						block = "{" + base + "," + le + "}"
					}
					out[f.name+"_bucket"+block] = float64(cum)
				}
				out[f.name+"_sum"+s.labels] = s.hist.Sum()
				out[f.name+"_count"+s.labels] = float64(s.hist.Count())
				continue
			}
			out[f.name+s.labels] = s.value()
		}
	}
	return out
}

// ParseText parses a text-exposition body (the subset this package emits:
// one "series value" per line, # comments) into series → value. The
// Collector uses it to fold member scrapes into the federation view.
func ParseText(b []byte) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			return nil, fmt.Errorf("telemetry: unparseable line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: bad value in %q: %w", line, err)
		}
		out[line[:i]] = v
	}
	return out, nil
}

// ServeMetrics serves GET /metrics behind the operator secret, gated
// exactly like cloudapi.ServePprof: with no secret configured the metrics
// plane does not exist (404), and a request without the matching
// X-OSDC-Operator header is refused (403). Shared by every binary so all
// four gate metrics identically.
func ServeMetrics(secret string, reg *Registry, w http.ResponseWriter, r *http.Request) {
	if secret == "" {
		serveError(w, http.StatusNotFound, "metrics plane requires an operator secret")
		return
	}
	if subtle.ConstantTimeCompare([]byte(r.Header.Get("X-OSDC-Operator")), []byte(secret)) != 1 {
		serveError(w, http.StatusForbidden, "metrics plane requires X-OSDC-Operator")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if reg != nil {
		_, _ = reg.WriteTo(w)
	}
}

// serveError mirrors the cloudapi operator plane's JSON error shape
// (telemetry sits below cloudapi, so it cannot import it).
func serveError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = fmt.Fprintf(w, "{%q:%q}\n", "error", msg)
}
