package telemetry

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// buildRegistry populates a registry with one of everything, labelled and
// unlabelled, so render tests exercise every family shape at once.
func buildRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("osdc_requests_total", "Requests served.", Label{"route", "GET /x"}).Add(3)
	reg.Counter("osdc_requests_total", "Requests served.", Label{"route", "POST /y"}).Inc()
	reg.Counter("osdc_errors_total", "Errors.").Add(2)
	reg.Gauge("osdc_backends", "Live backends.").Set(4)
	reg.GaugeFunc("osdc_pending", "Queued events.", func() float64 { return 17 })
	reg.CounterFunc("osdc_fired_total", "Fired events.", func() float64 { return 99 }, Label{"shard", "0"})
	h := reg.Histogram("osdc_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	reg.SampleFunc("osdc_link_bytes_total", "Per-link bytes.", "counter", func() []Sample {
		return []Sample{
			{Labels: []Label{{"link", "b->a"}}, Value: 7},
			{Labels: []Label{{"link", "a->b"}}, Value: 12},
		}
	})
	return reg
}

func TestRenderShape(t *testing.T) {
	out := string(buildRegistry().Render())
	for _, want := range []string{
		"# TYPE osdc_requests_total counter",
		`osdc_requests_total{route="GET /x"} 3`,
		`osdc_requests_total{route="POST /y"} 1`,
		"osdc_errors_total 2",
		"osdc_backends 4",
		"osdc_pending 17",
		`osdc_fired_total{shard="0"} 99`,
		`osdc_latency_seconds_bucket{le="0.01"} 1`,
		`osdc_latency_seconds_bucket{le="0.1"} 2`,
		`osdc_latency_seconds_bucket{le="1"} 2`,
		`osdc_latency_seconds_bucket{le="+Inf"} 3`,
		"osdc_latency_seconds_sum 5.055",
		"osdc_latency_seconds_count 3",
		`osdc_link_bytes_total{link="a->b"} 12`,
		`osdc_link_bytes_total{link="b->a"} 7`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("render missing %q\n%s", want, out)
		}
	}
}

// TestRenderStability pins the format-determinism contract: two renders
// of an unchanged registry are byte-identical, and the series come out
// sorted (families by name, series by label block).
func TestRenderStability(t *testing.T) {
	reg := buildRegistry()
	first := reg.Render()
	second := reg.Render()
	if !bytes.Equal(first, second) {
		t.Fatalf("two renders differ:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	var series []string
	for _, line := range strings.Split(string(first), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		series = append(series, line)
	}
	// Family names must appear in sorted blocks; series within a family
	// sorted by label key. Extract the family prefix (up to '{' or ' ')
	// with histogram suffixes folded back onto their family.
	famOf := func(s string) string {
		name := s
		if i := strings.IndexAny(s, "{ "); i >= 0 {
			name = s[:i]
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suf)
		}
		return name
	}
	fams := make([]string, 0, len(series))
	for _, s := range series {
		if n := famOf(s); len(fams) == 0 || fams[len(fams)-1] != n {
			fams = append(fams, n)
		}
	}
	if !sort.StringsAreSorted(fams) {
		t.Errorf("families not sorted: %v", fams)
	}
}

func TestSnapshotAndParseRoundTrip(t *testing.T) {
	reg := buildRegistry()
	snap := reg.Snapshot()
	parsed, err := ParseText(reg.Render())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(snap) {
		t.Fatalf("parsed %d series, snapshot has %d", len(parsed), len(snap))
	}
	for k, v := range snap {
		got, ok := parsed[k]
		if !ok {
			t.Errorf("parse lost series %s", k)
			continue
		}
		if math.Abs(got-v) > 1e-9 {
			t.Errorf("%s: parsed %v, snapshot %v", k, got, v)
		}
	}
}

func TestCounterIgnoresNegativeAdd(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d after negative add, want 5", c.Value())
	}
}

func TestSameSeriesReturnsSameHandle(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "x", Label{"k", "v"})
	b := reg.Counter("x_total", "x", Label{"k", "v"})
	if a != b {
		t.Fatal("same name+labels minted two counter handles")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handles do not share state")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("x_total", "x")
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "esc", Label{"path", `a"b\c`}).Inc()
	out := string(reg.Render())
	if !strings.Contains(out, `esc_total{path="a\"b\\c"} 1`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
}

// TestServeMetricsGate pins gating parity with ServePprof: 404 with no
// secret configured, 403 without the header, 200 with it.
func TestServeMetricsGate(t *testing.T) {
	reg := buildRegistry()
	get := func(secret, header string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
		if header != "" {
			req.Header.Set("X-OSDC-Operator", header)
		}
		ServeMetrics(secret, reg, rec, req)
		return rec
	}
	if rec := get("", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("ungated /metrics = %d, want 404", rec.Code)
	}
	if rec := get("s3cret", ""); rec.Code != http.StatusForbidden {
		t.Fatalf("unauthenticated /metrics = %d, want 403", rec.Code)
	}
	if rec := get("s3cret", "wrong"); rec.Code != http.StatusForbidden {
		t.Fatalf("wrong-secret /metrics = %d, want 403", rec.Code)
	}
	rec := get("s3cret", "s3cret")
	if rec.Code != http.StatusOK {
		t.Fatalf("authenticated /metrics = %d, want 200", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "osdc_requests_total") {
		t.Fatalf("authenticated /metrics body missing series:\n%s", rec.Body.String())
	}
}

// BenchmarkCounterInc is the registry hot path the BENCH snapshots track:
// one atomic add, zero allocations.
func BenchmarkCounterInc(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench_total", "bench", Label{"route", "GET /bench"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve tracks the latency-observation path.
func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("bench_seconds", "bench", LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

// TestConcurrentRegisterAndRender pins the registry's central concurrency
// contract: lazy registration (console routes instrumented on the first
// request) may race a render (/metrics scrape, Streamer tick) without the
// renderer iterating a family map another goroutine is growing — which
// would be an unrecoverable runtime throw, not just a flaky value. Run
// with -race this also proves the snapshot path takes the lock.
func TestConcurrentRegisterAndRender(t *testing.T) {
	reg := NewRegistry()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			reg.Counter("osdc_requests_total", "Requests served.",
				Label{"route", "GET /r" + strconv.Itoa(i)}).Inc()
			reg.Histogram("osdc_latency_seconds", "Latency.", LatencyBuckets,
				Label{"route", "GET /r" + strconv.Itoa(i)}).Observe(0.002)
		}
	}()
	for i := 0; i < 200; i++ {
		_ = reg.Render()
		_ = reg.Snapshot()
	}
	<-done
}
