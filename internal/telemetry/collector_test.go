package telemetry

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// memberServer stands up one fake federation member: a registry behind a
// gated /metrics, exactly the surface every binary exposes.
func memberServer(t *testing.T, secret string, reg *Registry) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		ServeMetrics(secret, reg, w, r)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestCollectorAggregatesMembers(t *testing.T) {
	const secret = "op-secret"
	regA := NewRegistry()
	regA.Counter("osdc_things_total", "things").Add(5)
	regB := NewRegistry()
	regB.Counter("osdc_things_total", "things").Add(9)
	regB.Gauge("osdc_depth", "depth", Label{"shard", "0"}).Set(3)
	a := memberServer(t, secret, regA)
	b := memberServer(t, secret, regB)

	c := NewCollector(secret, nil,
		Member{Name: "alpha", URL: a.URL},
		Member{Name: "beta", URL: b.URL})
	c.Round()

	snap := c.Snapshot()
	if snap[`osdc_things_total{member="alpha"}`] != 5 {
		t.Errorf("alpha series missing or wrong: %v", snap)
	}
	if snap[`osdc_things_total{member="beta"}`] != 9 {
		t.Errorf("beta series missing or wrong: %v", snap)
	}
	if snap[`osdc_depth{member="beta",shard="0"}`] != 3 {
		t.Errorf("labelled beta series missing or wrong: %v", snap)
	}
	for _, st := range c.Stats() {
		if st.Scrapes != 1 || st.Errors != 0 {
			t.Errorf("member %s stats = %+v, want 1 scrape 0 errors", st.Member, st)
		}
		if st.Series == 0 {
			t.Errorf("member %s reported no series", st.Member)
		}
	}
}

// TestCollectorCountsErrors pins the failure accounting: a dead member
// and a member refusing the secret both count errors, neither stalls the
// round, and the healthy member's data still lands.
func TestCollectorCountsErrors(t *testing.T) {
	const secret = "op-secret"
	reg := NewRegistry()
	reg.Counter("osdc_ok_total", "ok").Inc()
	healthy := memberServer(t, secret, reg)
	dead := memberServer(t, secret, NewRegistry())
	dead.Close()
	wrongSecret := memberServer(t, "other-secret", NewRegistry())

	c := NewCollector(secret, nil,
		Member{Name: "up", URL: healthy.URL},
		Member{Name: "down", URL: dead.URL},
		Member{Name: "denied", URL: wrongSecret.URL})
	c.Round()
	c.Round()

	stats := map[string]MemberStats{}
	for _, st := range c.Stats() {
		stats[st.Member] = st
	}
	if st := stats["up"]; st.Scrapes != 2 || st.Errors != 0 {
		t.Errorf("up = %+v", st)
	}
	if st := stats["down"]; st.Errors != 2 {
		t.Errorf("down = %+v, want 2 errors", st)
	}
	if st := stats["denied"]; st.Errors != 2 {
		t.Errorf("denied = %+v, want 2 errors (403 is an error)", st)
	}
	if snap := c.Snapshot(); snap[`osdc_ok_total{member="up"}`] != 1 {
		t.Errorf("healthy member data missing: %v", snap)
	}
}

func TestInjectMember(t *testing.T) {
	cases := map[string]string{
		"plain":            `plain{member="m"}`,
		`x{a="b"}`:         `x{member="m",a="b"}`,
		`x{a="b",c="d"}`:   `x{member="m",a="b",c="d"}`,
		`h_bucket{le="1"}`: `h_bucket{member="m",le="1"}`,
	}
	for in, want := range cases {
		if got := injectMember(in, "m"); got != want {
			t.Errorf("injectMember(%q) = %q, want %q", in, got, want)
		}
	}
}
