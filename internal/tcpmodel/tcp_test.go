package tcpmodel

import (
	"bytes"
	"math"
	"testing"

	"osdc/internal/sim"
	"osdc/internal/simnet"
	"osdc/internal/transport"
)

func lvocPath() transport.Path {
	return transport.Path{
		BandwidthBps: 10 * simnet.Gbit,
		RTT:          0.104,
		Loss:         2e-9,
		MSS:          transport.DefaultMSS,
	}
}

func TestRenoSlowStartDoubles(t *testing.T) {
	r := NewReno(lvocPath(), 0)
	w0 := r.Cwnd()
	r.OnInterval(false)
	if got := r.Cwnd(); math.Abs(got-2*w0) > 1e-9 {
		t.Fatalf("cwnd after one RTT = %v, want %v (doubling)", got, 2*w0)
	}
}

func TestRenoCongestionAvoidanceLinear(t *testing.T) {
	r := NewReno(lvocPath(), 0)
	r.OnInterval(true) // exit slow start
	w := r.Cwnd()
	r.OnInterval(false)
	if got := r.Cwnd(); math.Abs(got-(w+1)) > 1e-9 {
		t.Fatalf("CA growth = %v, want +1 packet/RTT", got-w)
	}
}

func TestRenoHalvesOnLoss(t *testing.T) {
	r := NewReno(lvocPath(), 0)
	for i := 0; i < 10; i++ {
		r.OnInterval(false)
	}
	w := r.Cwnd()
	r.OnInterval(true)
	if got := r.Cwnd(); math.Abs(got-w/2) > 1e-9 {
		t.Fatalf("cwnd after loss = %v, want %v", got, w/2)
	}
	if r.Losses() != 1 {
		t.Fatalf("losses = %d, want 1", r.Losses())
	}
}

func TestRenoWindowCap(t *testing.T) {
	// ssh channel window: 3.64 MB caps throughput at ~280 Mbit/s on 104 ms.
	capBytes := 3_640_000
	r := NewReno(lvocPath(), capBytes)
	for i := 0; i < 5000; i++ {
		r.OnInterval(false)
	}
	maxRate := float64(capBytes) * 8 / 0.104
	got := r.RatePps() * float64(transport.DefaultMSS) * 8
	if got > maxRate*1.01 {
		t.Fatalf("rate %v exceeds window cap rate %v", got, maxRate)
	}
	if got < maxRate*0.95 {
		t.Fatalf("rate %v did not reach window cap rate %v", got, maxRate)
	}
}

func TestRenoFloorAtTwoSegments(t *testing.T) {
	r := NewReno(lvocPath(), 0)
	for i := 0; i < 100; i++ {
		r.OnInterval(true)
	}
	if r.Cwnd() < 2 {
		t.Fatalf("cwnd = %v, must not fall below 2", r.Cwnd())
	}
}

func TestMacroRenoMathisShape(t *testing.T) {
	// With non-trivial loss, uncapped Reno settles near the Mathis rate
	// MSS/RTT × sqrt(1.5/p). At p = 2e-6 that is ≈ 97 Mbit/s.
	path := lvocPath()
	path.Loss = 2e-6
	r := NewReno(path, 0)
	res := transport.Simulate(sim.NewRNG(5), path, r, 20_000_000_000, transport.Caps{})
	mb := res.ThroughputMbit()
	if mb < 55 || mb > 200 {
		t.Fatalf("Reno at p=2e-6 = %.0f Mbit/s, want ~100 (Mathis)", mb)
	}
}

func TestMacroRenoWindowCapDominates(t *testing.T) {
	path := lvocPath()
	r := NewReno(path, 3_640_000)
	res := transport.Simulate(sim.NewRNG(5), path, r, 5_000_000_000, transport.Caps{})
	mb := res.ThroughputMbit()
	if mb < 230 || mb > 285 {
		t.Fatalf("capped Reno = %.0f Mbit/s, want ~260–280", mb)
	}
}

// --- packet-level socket tests ---

func testNet(loss float64) (*sim.Engine, *simnet.Network) {
	e := sim.NewEngine(42)
	nw := simnet.New(e)
	nw.AddNode("src", "chi")
	nw.AddNode("dst", "lvoc")
	nw.AddDuplex("src", "dst", simnet.Gbit, 10*sim.Millisecond, loss)
	return e, nw
}

func payload(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*13 + seed
	}
	return b
}

func TestSockLosslessExactDelivery(t *testing.T) {
	e, nw := testNet(0)
	data := payload(1_000_000, 2)
	var done bool
	_, r := TransferSock(nw, "src", "dst", "t1", data, 0, func(*SockStats) { done = true })
	e.RunUntil(120)
	if !done || !r.Finished() {
		t.Fatal("transfer did not complete")
	}
	if !bytes.Equal(r.Data(), data) {
		t.Fatal("bytes differ")
	}
}

func TestSockRecoversFromLoss(t *testing.T) {
	e, nw := testNet(0.02)
	data := payload(400_000, 8)
	var st *SockStats
	_, r := TransferSock(nw, "src", "dst", "t2", data, 0, func(s *SockStats) { st = s })
	e.RunUntil(600)
	if st == nil || !r.Finished() {
		t.Fatal("transfer did not complete under loss")
	}
	if !bytes.Equal(r.Data(), data) {
		t.Fatal("bytes corrupted under loss")
	}
	if st.Retransmits == 0 {
		t.Fatal("expected retransmissions")
	}
}

func TestSockWindowCapLimitsInFlight(t *testing.T) {
	e, nw := testNet(0)
	data := payload(3_000_000, 4)
	capBytes := 64 << 10
	s, r := TransferSock(nw, "src", "dst", "t3", data, capBytes, nil)
	// Sample in-flight at several points.
	maxInflight := int64(0)
	for i := 0; i < 200; i++ {
		e.RunFor(0.05)
		if fl := s.sndNxt - s.sndUna; fl > maxInflight {
			maxInflight = fl
		}
		if r.Finished() {
			break
		}
	}
	e.RunUntil(e.Now() + 600)
	if !r.Finished() {
		t.Fatal("capped transfer did not finish")
	}
	capPkts := int64(capBytes/(transport.DefaultMSS-tcpHeader)) + 1
	if maxInflight > capPkts {
		t.Fatalf("in-flight %d exceeds window cap %d pkts", maxInflight, capPkts)
	}
}

func TestSockTinyTransfer(t *testing.T) {
	e, nw := testNet(0)
	data := []byte("x")
	var done bool
	_, r := TransferSock(nw, "src", "dst", "t4", data, 0, func(*SockStats) { done = true })
	e.RunUntil(10)
	if !done || !bytes.Equal(r.Data(), data) {
		t.Fatal("1-byte transfer failed")
	}
}

func TestSockEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, nw := testNet(0)
	TransferSock(nw, "src", "dst", "t5", nil, 0, nil)
}

func TestBufferLimitedRenoLeavesPathIdle(t *testing.T) {
	// The paper's core claim (Table 3): rsync over TCP leaves most of a
	// 10G×104 ms path idle. With a 2012-default ~5.3 MB socket buffer the
	// window cap alone bounds TCP at ~405 Mbit/s — 4% of the path.
	path := lvocPath()
	tcp := transport.Simulate(sim.NewRNG(9), path, NewReno(path, 5_270_000), 10_000_000_000, transport.Caps{})
	frac := tcp.ThroughputBps() / path.BandwidthBps
	if frac > 0.06 {
		t.Fatalf("buffer-limited TCP achieved %.1f%% of the path; want ≤6%%", frac*100)
	}
	if mb := tcp.ThroughputMbit(); mb < 350 || mb > 410 {
		t.Fatalf("buffer-limited TCP = %.0f Mbit/s, want ~400", mb)
	}
}
