// Package tcpmodel implements the TCP Reno behaviour that limits rsync/ssh
// on the OSDC's high bandwidth-delay-product WAN paths (paper §7.2,
// Table 3's baseline).
//
// Like internal/udt it provides both a macro congestion-control law
// (transport.Controller) and a packet-level sliding-window socket over
// simnet with cumulative ACKs, duplicate-ACK fast retransmit and a
// retransmission timeout.
//
// The key phenomenon Table 3 turns on: on a 104 ms RTT path, Reno's
// one-packet-per-RTT additive increase and halve-on-loss multiplicative
// decrease keep the average window near sqrt(1.5/p) packets, far below the
// 10G path's bandwidth-delay product — while UDT's rate-based DAIMD
// recovers to near the bottleneck in seconds. When rsync is tunneled over
// ssh, the ssh channel's fixed flow-control window caps the window
// regardless of the congestion state (modelled by WindowCapBytes).
package tcpmodel

import (
	"osdc/internal/sim"
	"osdc/internal/transport"
)

// Reno is TCP Reno's AIMD law at one-RTT granularity. It implements
// transport.Controller.
type Reno struct {
	mss      int
	rtt      sim.Duration
	cwnd     float64 // packets
	ssthresh float64 // packets
	capPkts  float64 // flow-control (receive/ssh-channel) cap; 0 = none
	losses   int64
}

var _ transport.Controller = (*Reno)(nil)

// InitialWindow is the RFC 6928 initial congestion window in packets.
const InitialWindow = 10

// NewReno builds the controller for a path. windowCapBytes models the
// smaller of the receive window and any tunnel window (ssh); 0 disables the
// cap.
func NewReno(path transport.Path, windowCapBytes int) *Reno {
	mss := path.MSS
	if mss <= 0 {
		mss = transport.DefaultMSS
	}
	r := &Reno{
		mss:      mss,
		rtt:      path.RTT,
		cwnd:     InitialWindow,
		ssthresh: 1e12, // slow start until the first loss
	}
	if windowCapBytes > 0 {
		r.capPkts = float64(windowCapBytes) / float64(mss)
		if r.capPkts < 2 {
			r.capPkts = 2
		}
	}
	return r
}

// Name implements transport.Controller.
func (r *Reno) Name() string { return "tcp-reno" }

// Interval implements transport.Controller: one RTT.
func (r *Reno) Interval() sim.Duration { return r.rtt }

// RatePps implements transport.Controller.
func (r *Reno) RatePps() float64 { return r.window() / r.rtt }

// Cwnd returns the current congestion window in packets (after caps).
func (r *Reno) Cwnd() float64 { return r.window() }

// Losses returns the number of loss events reacted to.
func (r *Reno) Losses() int64 { return r.losses }

func (r *Reno) window() float64 {
	w := r.cwnd
	if r.capPkts > 0 && w > r.capPkts {
		w = r.capPkts
	}
	return w
}

// OnInterval advances one RTT of Reno dynamics.
func (r *Reno) OnInterval(lossEvent bool) {
	if lossEvent {
		// Fast recovery: halve.
		r.ssthresh = r.cwnd / 2
		if r.ssthresh < 2 {
			r.ssthresh = 2
		}
		r.cwnd = r.ssthresh
		r.losses++
		return
	}
	if r.cwnd < r.ssthresh {
		r.cwnd *= 2 // slow start doubles per RTT
		if r.cwnd > r.ssthresh {
			r.cwnd = r.ssthresh
		}
	} else {
		r.cwnd++ // congestion avoidance: one packet per RTT
	}
	if r.capPkts > 0 && r.cwnd > r.capPkts {
		r.cwnd = r.capPkts
	}
}
