package tcpmodel

import (
	"osdc/internal/sim"
	"osdc/internal/simnet"
	"osdc/internal/transport"
)

// Packet-level TCP over simnet: sliding window, cumulative ACKs, duplicate-
// ACK fast retransmit, and a coarse retransmission timeout. Enough Reno to
// validate the behaviour the macro model assumes; not a full TCP (no SACK,
// no delayed ACKs, no Nagle).

const tcpHeader = 40 // TCP/IP header bytes

type segPayload struct {
	seq  int64 // segment index (not byte offset)
	off  int64 // byte offset
	data []byte
	sess string
}

type tcpAck struct {
	cumulative int64 // next expected segment
	sess       string
}

// SockStats counts socket-level events.
type SockStats struct {
	Sent        int64
	Retransmits int64
	FastRetx    int64
	Timeouts    int64
}

// SockSender is the sending side of a packet-level TCP transfer.
type SockSender struct {
	nw   *simnet.Network
	e    *sim.Engine
	src  string
	dst  string
	sess string
	mss  int
	data []byte

	total    int64
	sndUna   int64 // oldest unacked segment
	sndNxt   int64 // next fresh segment
	cwnd     float64
	ssthresh float64
	capPkts  float64
	dupAcks  int
	rto      sim.Duration
	rtoTimer sim.Handle
	rtoArmed bool

	stats    SockStats
	finished bool
	onDone   func(*SockStats)
	started  sim.Time
	Done     sim.Time
}

// SockReceiver is the receiving side.
type SockReceiver struct {
	nw       *simnet.Network
	node     string
	peer     string
	sess     string
	buf      []byte
	got      map[int64]bool
	expected int64
	total    int64
	finished bool
}

func sockProto(sess string) string { return "tcp:" + sess }

// TransferSock starts a packet-level TCP transfer. windowCapBytes models the
// receive/ssh-channel window (0 = unlimited).
func TransferSock(nw *simnet.Network, src, dst, sess string, data []byte, windowCapBytes int, onDone func(*SockStats)) (*SockSender, *SockReceiver) {
	if len(data) == 0 {
		panic("tcpmodel: empty transfer")
	}
	path := transport.PathBetween(nw, src, dst)
	mss := path.MSS - tcpHeader
	total := int64((len(data) + mss - 1) / mss)
	rto := 3 * path.RTT
	if rto < 0.2 {
		rto = 0.2
	}
	s := &SockSender{
		nw: nw, e: nw.Engine, src: src, dst: dst, sess: sess, mss: mss,
		data: data, total: total, cwnd: InitialWindow, ssthresh: 1e12,
		rto: rto, onDone: onDone, started: nw.Engine.Now(),
	}
	if windowCapBytes > 0 {
		s.capPkts = float64(windowCapBytes) / float64(mss)
		if s.capPkts < 2 {
			s.capPkts = 2
		}
	}
	r := &SockReceiver{
		nw: nw, node: dst, peer: src, sess: sess,
		buf: make([]byte, len(data)), got: make(map[int64]bool), total: total,
	}
	nw.Node(dst).Handle(sockProto(sess), r.onSegment)
	nw.Node(src).Handle(sockProto(sess)+":ack", s.onAck)
	s.fill()
	s.armRTO()
	return s, r
}

// Stats returns the socket counters.
func (s *SockSender) Stats() SockStats { return s.stats }

// ThroughputBps returns average goodput; valid after completion.
func (s *SockSender) ThroughputBps() float64 {
	d := float64(s.Done - s.started)
	if d <= 0 {
		return 0
	}
	return float64(len(s.data)) * 8 / d
}

func (s *SockSender) window() float64 {
	w := s.cwnd
	if s.capPkts > 0 && w > s.capPkts {
		w = s.capPkts
	}
	return w
}

// fill sends fresh segments while the window allows (ACK-clocked).
func (s *SockSender) fill() {
	for s.sndNxt < s.total && float64(s.sndNxt-s.sndUna) < s.window() {
		s.sendSeg(s.sndNxt, false)
		s.sndNxt++
	}
}

func (s *SockSender) sendSeg(seq int64, retx bool) {
	lo := seq * int64(s.mss)
	hi := lo + int64(s.mss)
	if hi > int64(len(s.data)) {
		hi = int64(len(s.data))
	}
	s.stats.Sent++
	if retx {
		s.stats.Retransmits++
	}
	s.nw.Send(&simnet.Packet{
		Src: s.src, Dst: s.dst, Proto: sockProto(s.sess), Seq: seq,
		Size:    int(hi-lo) + tcpHeader,
		Payload: segPayload{seq: seq, off: lo, data: s.data[lo:hi], sess: s.sess},
	})
}

func (s *SockSender) onAck(pkt *simnet.Packet) {
	ack, ok := pkt.Payload.(tcpAck)
	if !ok || s.finished {
		return
	}
	switch {
	case ack.cumulative > s.sndUna:
		// New data acknowledged.
		acked := ack.cumulative - s.sndUna
		s.sndUna = ack.cumulative
		s.dupAcks = 0
		for i := int64(0); i < acked; i++ {
			if s.cwnd < s.ssthresh {
				s.cwnd++ // slow start: +1 per ACK
			} else {
				s.cwnd += 1 / s.cwnd // congestion avoidance
			}
		}
		if s.capPkts > 0 && s.cwnd > s.capPkts {
			s.cwnd = s.capPkts
		}
		s.armRTO()
	case ack.cumulative == s.sndUna && s.sndNxt > s.sndUna:
		s.dupAcks++
		if s.dupAcks == 3 {
			// Fast retransmit + fast recovery.
			s.ssthresh = s.cwnd / 2
			if s.ssthresh < 2 {
				s.ssthresh = 2
			}
			s.cwnd = s.ssthresh
			s.sendSeg(s.sndUna, true)
			s.stats.FastRetx++
		}
	}
	if s.sndUna >= s.total {
		s.finish()
		return
	}
	s.fill()
}

func (s *SockSender) armRTO() {
	if s.rtoArmed {
		s.rtoTimer.Cancel()
	}
	s.rtoArmed = true
	s.rtoTimer = s.e.After(s.rto, s.onRTO)
}

func (s *SockSender) onRTO() {
	if s.finished {
		return
	}
	if s.sndUna < s.sndNxt {
		// Timeout: collapse to slow start and resend the hole.
		s.stats.Timeouts++
		s.ssthresh = s.cwnd / 2
		if s.ssthresh < 2 {
			s.ssthresh = 2
		}
		s.cwnd = 1
		s.dupAcks = 0
		s.sendSeg(s.sndUna, true)
	}
	s.armRTO()
}

func (s *SockSender) finish() {
	if s.finished {
		return
	}
	s.finished = true
	s.Done = s.e.Now()
	if s.rtoArmed {
		s.rtoTimer.Cancel()
	}
	if s.onDone != nil {
		st := s.stats
		s.onDone(&st)
	}
}

func (r *SockReceiver) onSegment(pkt *simnet.Packet) {
	p, ok := pkt.Payload.(segPayload)
	if !ok {
		return
	}
	if !r.got[p.seq] {
		r.got[p.seq] = true
		copy(r.buf[p.off:], p.data)
	}
	for r.got[r.expected] {
		r.expected++
	}
	if r.expected >= r.total {
		r.finished = true
	}
	// Cumulative ACK for every segment (no delayed ACKs).
	r.nw.Send(&simnet.Packet{
		Src: r.node, Dst: r.peer, Proto: sockProto(r.sess) + ":ack",
		Size: tcpHeader, Payload: tcpAck{cumulative: r.expected, sess: r.sess},
	})
}

// Data returns the reassembled bytes.
func (r *SockReceiver) Data() []byte { return r.buf }

// Finished reports whether the stream is complete.
func (r *SockReceiver) Finished() bool { return r.finished }
