package experiments

// The mixed-workload scenario is not a paper artifact: it composes the
// pieces the paper describes separately — Table 1's traffic classes,
// Table 2's federation, §6.4's metering, §7.2's WAN transfers — into one
// federation-wide run, which is the shape of load a production OSDC
// actually saw.

import (
	"fmt"
	"strings"

	"osdc/internal/cloudapi"
	"osdc/internal/core"
	"osdc/internal/iaas"
	"osdc/internal/scenario"
	"osdc/internal/sim"
	"osdc/internal/udr"
	"osdc/internal/workload"
)

const mixedWorkloadDesc = "federation-wide mix: web + science flows, VM metering, and a WAN elephant in one run"

// MixedWorkload builds the federation, offers both Table 1 traffic classes,
// keeps eight VM cores metered on the federation clock, and ships the
// largest science elephant over the Chicago↔LVOC path with UDR — all from
// one seed. shards > 1 runs the same composition on the sharded kernel
// (instance timers homed by ID, all shards advanced in lockstep); every
// metric is invariant across shard counts because billing samples count
// BUILD and ACTIVE alike, so the only cross-shard reads are
// transition-insensitive.
func MixedWorkload(seed uint64, shards int) (scenario.Result, error) {
	f, err := core.New(core.Options{Seed: seed, Scale: 8, Shards: shards})
	if err != nil {
		return scenario.Result{}, err
	}

	// Compute side: one researcher with four m1.large per cloud, driven
	// through the same CloudAPI transports the services use.
	const user = "mixed"
	launched := 0
	for _, c := range []cloudapi.CloudAPI{f.AdlerAPI, f.SullivanAPI} {
		if err := c.SetQuota(user, iaas.Quota{MaxInstances: 10, MaxCores: 64}); err != nil {
			return scenario.Result{}, err
		}
		for v := 0; v < 2; v++ {
			if _, err := c.Launch(user, fmt.Sprintf("mixed-%d", v), "m1.large", ""); err != nil {
				return scenario.Result{}, err
			}
			launched++
		}
	}

	// Traffic side: both Table 1 classes from the same seed.
	rng := sim.NewRNG(seed)
	p := workload.DefaultParams()
	p.Flows = 4000
	web := workload.Characterize(workload.Generate(rng, workload.ClassWeb, p))
	science := workload.Characterize(workload.Generate(rng, workload.ClassScience, p))

	// WAN side: the largest science elephant rides UDR Chicago → LVOC.
	path := ChicagoLVOCPath(seed)
	cfg := udr.Table3Configs()[0] // udr, no encryption
	res, caps := udr.Transfer(rng, cfg, path, science.MaxBytes)

	// Let six hours of metering accrue while everything above is
	// "running". f.RunFor advances the whole kernel — anchor-only RunFor
	// would leave off-anchor boot timers frozen; at shards <= 1 it is the
	// same call as f.Engine.RunFor.
	f.RunFor(6 * sim.Hour)
	coreHours := f.Biller.CurrentUsage(user).CoreHours()

	var b strings.Builder
	fmt.Fprintf(&b, "federation mixed workload (seed %d)\n", seed)
	fmt.Fprintln(&b, strings.Repeat("-", 64))
	fmt.Fprintf(&b, "web traffic      : %v\n", web)
	fmt.Fprintf(&b, "science traffic  : %v\n", science)
	fmt.Fprintf(&b, "VMs metered      : %d m1.large for 6h → %.1f core-hours\n", launched, coreHours)
	fmt.Fprintf(&b, "elephant via UDR : %s\n", res)

	metrics := map[string]float64{
		"web-total-GB":           float64(web.TotalBytes) / (1 << 30),
		"science-total-TB":       float64(science.TotalBytes) / (1 << 40),
		"science-elephant-share": science.ElephantShare,
		"vm-core-hours":          coreHours,
		"elephant-bytes":         float64(science.MaxBytes),
		"elephant-mbit":          res.ThroughputMbit(),
		"elephant-llr":           res.LLR(caps),
		"elephant-hours":         res.Duration / sim.Hour,
	}
	// Only a sharded run adds the key: the default golden predates the
	// shard axis and must stay byte-identical.
	if shards > 1 {
		metrics["shards"] = float64(f.Set.K())
	}
	return scenario.Result{Metrics: metrics, Table: b.String()}, nil
}
