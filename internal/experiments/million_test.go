package experiments

import (
	"reflect"
	"sync"
	"testing"

	"osdc/internal/scenario"
)

// millionSmall is a reduced shape for tests that run the scenario several
// times; the full default shape is pinned by the osdc-bench golden.
var millionSmall = map[string]float64{"entities": 20000, "shards": 4, "hours": 0.25}

func TestMillionEntityDeterministic(t *testing.T) {
	a, err := MillionEntity(21, millionSmall)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MillionEntity(21, millionSmall)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a.Metrics, b.Metrics)
	}
	// Structural invariants: every entity holds exactly one pending timer
	// at all times, and every kernel event is a heartbeat or a transfer.
	if a.Metrics["entities"] != 20000 || a.Metrics["shards"] != 4 {
		t.Fatalf("population wrong: %v", a.Metrics)
	}
	if a.Metrics["pending-final"] != a.Metrics["entities"] {
		t.Fatalf("pending-final = %v, want %v (one live timer per entity)",
			a.Metrics["pending-final"], a.Metrics["entities"])
	}
	if got := a.Metrics["heartbeats"] + a.Metrics["transfers"]; got != a.Metrics["events-fired"] {
		t.Fatalf("heartbeats+transfers = %v, events-fired = %v", got, a.Metrics["events-fired"])
	}
	if a.Metrics["heartbeats"] == 0 || a.Metrics["transfers"] == 0 || a.Metrics["science-TB"] <= 0 {
		t.Fatalf("workload did not run: %v", a.Metrics)
	}
	if a.Metrics["skew-final-sec"] != 0 {
		t.Fatalf("final skew %v, want 0", a.Metrics["skew-final-sec"])
	}
}

// TestMillionEntityConcurrentRunsBitIdentical runs the same seed from
// several goroutines at once — the -parallel sweep shape — and requires
// every result bit-identical: parallel shard advance in one run must not
// leak into another.
func TestMillionEntityConcurrentRunsBitIdentical(t *testing.T) {
	const n = 3
	results := make([]scenario.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = MillionEntity(7, millionSmall)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("concurrent run %d diverged:\n%+v\nvs\n%+v",
				i, results[i].Metrics, results[0].Metrics)
		}
	}
}

// TestMillionEntityParallelSweepBitIdentical drives the registered
// scenario through scenario.Sweep with a worker pool twice: the aggregate
// metrics must not move between sweeps.
func TestMillionEntityParallelSweepBitIdentical(t *testing.T) {
	p, ok := scenario.Get("million-entity")
	if !ok {
		t.Fatal("million-entity not registered")
	}
	param, ok := p.(scenario.Parametric)
	if !ok {
		t.Fatal("million-entity is not parametric")
	}
	small, err := param.With(millionSmall)
	if err != nil {
		t.Fatal(err)
	}
	seeds := scenario.Seeds(11, 3)
	a, err := scenario.Sweep(small, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scenario.Sweep(small, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel sweeps diverged:\n%+v\nvs\n%+v", a.Metrics, b.Metrics)
	}
}

func TestMillionEntityBadParams(t *testing.T) {
	if _, err := MillionEntity(1, map[string]float64{"entities": 0, "shards": 8, "hours": 1}); err == nil {
		t.Fatal("entities=0 accepted")
	}
	if _, err := MillionEntity(1, map[string]float64{"entities": 10, "shards": 8, "hours": 0}); err == nil {
		t.Fatal("hours=0 accepted")
	}
}
