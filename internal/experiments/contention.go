package experiments

// The wan-contention scenario probes what Table 3 never had to: several
// loss-reactive flows discovering their share of the same 10G Chicago↔LVOC
// path. The single-flow Table 3 model gives each transfer the path to
// itself; transport.SimulateShared drops the excess offered load
// proportionally at the bottleneck, so UDT's DAIMD has to back off against
// its own siblings.

import (
	"fmt"
	"strings"

	"osdc/internal/scenario"
	"osdc/internal/sim"
	"osdc/internal/transport"
	"osdc/internal/udt"
)

const wanContentionDesc = "multi-flow WAN contention: 1..8 UDT flows sharing the 10G Chicago↔LVOC path"

// WANContention sweeps 1, 2, 4 and 8 concurrent UDT flows over the shared
// Chicago↔LVOC bottleneck, each moving 4 GB, and reports aggregate
// utilization and Jain fairness per flow count.
func WANContention(seed uint64) (scenario.Result, error) {
	path := ChicagoLVOCPath(seed)
	rng := sim.NewRNG(seed)
	const perFlowBytes = 4 << 30

	metrics := map[string]float64{}
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %16s %16s %10s %12s\n", "flows", "aggregate mbit/s", "per-flow mbit/s", "fairness", "loss events")
	fmt.Fprintln(&b, strings.Repeat("-", 68))
	for _, n := range []int{1, 2, 4, 8} {
		ctrls := make([]transport.Controller, n)
		sizes := make([]int64, n)
		for i := range ctrls {
			ctrls[i] = udt.NewRateControl(path)
			sizes[i] = perFlowBytes
		}
		results := transport.SimulateShared(rng, path, ctrls, sizes, transport.Caps{})
		var aggBps, lossEvents float64
		for _, r := range results {
			aggBps += r.ThroughputBps()
			lossEvents += float64(r.LossEvents)
		}
		fairness := transport.JainFairness(results)
		key := fmt.Sprintf("%d-flows", n)
		metrics["aggregate-mbit["+key+"]"] = aggBps / 1e6
		metrics["fairness["+key+"]"] = fairness
		metrics["utilization["+key+"]"] = aggBps / path.BandwidthBps
		fmt.Fprintf(&b, "%-8d %16.0f %16.0f %10.3f %12.0f\n",
			n, aggBps/1e6, aggBps/1e6/float64(n), fairness, lossEvents)
	}
	return scenario.Result{Metrics: metrics, Table: b.String()}, nil
}
