package experiments

// The telemetry-stream scenario pins the federation-wide telemetry plane
// end to end — and proves the /console/stream SSE feed is a deterministic
// function of the seed. The trick is that nothing here runs on a wall
// clock: the streamer frames deltas off the simulation's virtual clock,
// the cross-site collector is driven synchronously inside the streamer's
// source (one scrape sweep per frame, no per-poll wall deadline), and
// every console request lands between RunFor quanta while the engine is
// parked. The only wall-dependent series the plane produces — console
// request latency histograms — are filtered out of the stream by name, so
// the full SSE transcript (ids, virtual timestamps, changed-series maps)
// is byte-identical across runs and lives in the golden file verbatim.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"

	"osdc/internal/cloudapi"
	"osdc/internal/core"
	"osdc/internal/iaas"
	"osdc/internal/scenario"
	"osdc/internal/sim"
	"osdc/internal/telemetry"
	"osdc/internal/tukey"
)

const telemetryStreamDesc = "federation telemetry plane: /metrics on every member, one collector sweep per frame, and a byte-identical /console/stream SSE transcript"

// telemetryStreamPeriod is the stream's frame cadence in simulated
// seconds: two frames per one-minute phase quantum.
const telemetryStreamPeriod = sim.Duration(30)

// telemetryQuantum is one phase advance: a simulated minute, so the
// per-minute billing sweep fires inside every phase.
const telemetryQuantum = sim.Duration(1 * sim.Minute)

// TelemetryStream stands up the single-process federation with a gated
// /metrics on each cloud server, aggregates them through a collector into
// the console registry, and drives /console/stream through five phases of
// console traffic — asserting along the way and returning the complete
// SSE transcript as the table.
func TelemetryStream(seed uint64) (scenario.Result, error) {
	f, err := core.New(core.Options{Seed: seed, Scale: 8})
	if err != nil {
		return scenario.Result{}, err
	}
	// No wall driver anywhere: the engine advances only in RunFor quanta
	// below. Handlers and stream ticks still touch it from several
	// goroutines, so it runs shared.
	f.Set.Share()

	const secret = "telemetry-scenario"
	var closers []func()
	defer func() {
		for _, c := range closers {
			c()
		}
	}()

	// Per-cloud servers with the metrics plane gated like every other
	// operator surface; the collector scrapes them as named members.
	var members []telemetry.Member
	cloudServers := map[string]*cloudapi.Server{}
	for _, c := range []*iaas.Cloud{f.Adler, f.Sullivan} {
		api := cloudapi.NewServer(c)
		api.OperatorSecret = secret
		srv := httptest.NewServer(api)
		closers = append(closers, srv.Close)
		f.Tukey.AttachCloud(tukey.CloudConfig{Name: c.Name, Stack: c.Stack, Endpoint: srv.URL})
		cloudServers[c.Name] = api
		members = append(members, telemetry.Member{Name: c.Name, URL: srv.URL})
	}

	reg := telemetry.NewRegistry()
	f.RegisterTelemetry(reg)
	console := &tukey.Console{MW: f.Tukey, Biller: f.Biller, Catalog: f.Catalog, UsageMon: f.UsageMon}
	console.RegisterMetrics(reg)
	console.UsageCacheHits = func() map[string]int64 {
		out := make(map[string]int64, len(cloudServers))
		for name, srv := range cloudServers {
			out[name] = srv.UsageCacheHits.Load()
		}
		return out
	}

	// The collector never Start()s: one synchronous Round per stream frame
	// instead, with the zero deadline (wait forever) — scrape completion
	// is ordered with the frame, not raced against a wall timer.
	col := telemetry.NewCollector(secret, nil, members...)
	col.RegisterMetrics(reg)

	stream := telemetry.NewStreamer(func() map[string]float64 {
		col.Round()
		snap := reg.Snapshot()
		for k, v := range col.Snapshot() {
			snap[k] = v
		}
		return snap
	})
	// Console latency histograms are the plane's one wall-clock family;
	// everything else is counts and virtual clocks.
	stream.SetSelect(func(series string) bool {
		return !strings.HasPrefix(series, "osdc_console_request_seconds")
	})
	stream.Start(f.Engine, telemetryStreamPeriod)
	defer stream.Close()
	frames, cancelSub := stream.Subscribe(1024)
	defer cancelSub()

	consoleSrv := httptest.NewServer(console)
	console.Stream = stream
	closers = append(closers, consoleSrv.Close)

	const user = "tele"
	f.EnrollResearcher(user, "pw-"+user)
	for _, api := range []cloudapi.CloudAPI{f.AdlerAPI, f.SullivanAPI} {
		if err := api.SetQuota(user, iaas.Quota{MaxInstances: 4, MaxCores: 16}); err != nil {
			return scenario.Result{}, err
		}
	}

	// Phase 1: idle baseline — the first frame carries the full series
	// set, the second an empty delta.
	f.RunFor(telemetryQuantum)

	// Phase 2: one researcher logs in, parks a VM, and walks the read
	// routes. Requests are sequential and the clock is parked, so the
	// counters land between frames, not during them.
	tok, err := telemetryLogin(consoleSrv.URL, user)
	if err != nil {
		return scenario.Result{}, err
	}
	serverID, err := telemetryLaunch(consoleSrv.URL, tok, core.ClusterAdler, user+"-vm")
	if err != nil {
		return scenario.Result{}, err
	}
	for _, path := range []string{"/console/instances", "/console/status", "/console/usage"} {
		if _, err := telemetryGet(consoleSrv.URL, tok, path); err != nil {
			return scenario.Result{}, err
		}
	}
	f.RunFor(telemetryQuantum)

	// Phase 3: exercise the per-cloud usage cache — two same-rev reads
	// per cloud, the second always a hit.
	for _, m := range members {
		for i := 0; i < 2; i++ {
			resp, err := http.Get(m.URL + "/cloudapi/usage")
			if err != nil {
				return scenario.Result{}, err
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	f.RunFor(2 * telemetryQuantum)

	// Phase 4: terminate and wind down.
	if err := telemetryTerminate(consoleSrv.URL, tok, core.ClusterAdler, serverID); err != nil {
		return scenario.Result{}, err
	}
	f.RunFor(telemetryQuantum)

	// The gating contract, probed live on a member: 403 without the
	// header, 200 with it, and the body parses as exposition text.
	status, body, err := telemetryScrape(members[0].URL, "")
	if err != nil || status != http.StatusForbidden {
		return scenario.Result{}, fmt.Errorf("ungated scrape: status %d, err %v", status, err)
	}
	status, body, err = telemetryScrape(members[0].URL, secret)
	if err != nil || status != http.StatusOK {
		return scenario.Result{}, fmt.Errorf("gated scrape: status %d, err %v", status, err)
	}
	parsed, err := telemetry.ParseText(body)
	if err != nil {
		return scenario.Result{}, fmt.Errorf("member exposition does not parse: %w", err)
	}

	stream.Close()
	var transcript bytes.Buffer
	for fr := range frames {
		transcript.Write(fr)
	}

	var cacheHits int64
	for _, srv := range cloudServers {
		cacheHits += srv.UsageCacheHits.Load()
	}
	scrapes := int64(0)
	for _, st := range col.Stats() {
		scrapes += st.Scrapes
		if st.Errors != 0 {
			return scenario.Result{}, fmt.Errorf("member %s: %d scrape errors in a healthy run", st.Member, st.Errors)
		}
	}
	h := fnv.New32a()
	_, _ = h.Write(transcript.Bytes())

	metrics := map[string]float64{
		"stream-events":       float64(strings.Count(transcript.String(), "event: telemetry")),
		"stream-bytes":        float64(transcript.Len()),
		"stream-fnv32":        float64(h.Sum32()),
		"scrape-rounds":       float64(scrapes),
		"usage-cache-hits":    float64(cacheHits),
		"member-series":       float64(len(parsed)),
		"console-series":      float64(len(reg.Snapshot())),
		"launches":            1,
		"stream-frames-empty": float64(strings.Count(transcript.String(), `"changed":{}`)),
	}
	return scenario.Result{Metrics: metrics, Table: transcript.String()}, nil
}

// telemetryLogin authenticates and returns the session token.
func telemetryLogin(base, user string) (string, error) {
	resp, err := http.Post(base+"/login", "application/json", strings.NewReader(fmt.Sprintf(
		`{"provider":"shibboleth","username":%q,"secret":%q}`, user, "pw-"+user)))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("login: status %d", resp.StatusCode)
	}
	var out struct {
		Token string `json:"token"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	return out.Token, nil
}

// telemetryLaunch parks one VM and returns its instance ID.
func telemetryLaunch(base, tok, cloud, name string) (string, error) {
	req, _ := http.NewRequest("POST", base+"/console/launch", strings.NewReader(fmt.Sprintf(
		`{"cloud":%q,"name":%q,"flavor":"m1.small"}`, cloud, name)))
	req.Header.Set("X-Tukey-Session", tok)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("launch: status %d", resp.StatusCode)
	}
	var out struct {
		Server tukey.TaggedServer `json:"server"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	return out.Server.ID, nil
}

// telemetryTerminate shuts the VM down through the console.
func telemetryTerminate(base, tok, cloud, id string) error {
	req, _ := http.NewRequest("POST", base+"/console/terminate", strings.NewReader(fmt.Sprintf(
		`{"cloud":%q,"id":%q}`, cloud, id)))
	req.Header.Set("X-Tukey-Session", tok)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("terminate: status %d", resp.StatusCode)
	}
	return nil
}

// telemetryGet walks one session read route.
func telemetryGet(base, tok, path string) (int, error) {
	req, _ := http.NewRequest("GET", base+path, nil)
	req.Header.Set("X-Tukey-Session", tok)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	return resp.StatusCode, nil
}

// telemetryScrape GETs a member's /metrics with (or without) the operator
// header, returning status and body.
func telemetryScrape(base, secret string) (int, []byte, error) {
	req, _ := http.NewRequest("GET", base+"/metrics", nil)
	if secret != "" {
		req.Header.Set("X-OSDC-Operator", secret)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}
