package experiments

// The rate-limit sweep answers the ROADMAP's admission-control question:
// with the per-user token bucket (-rate-limit) in front of every console
// route, what do different limits cost in throughput and 429s under the
// console-load workload? The sweep runs the same workload against no
// limit, 50 req/s and 10 req/s per user (burst = 1 second's worth), and
// charts delivered throughput against throttle rate.
//
// Request *attempts* are deterministic — every researcher issues the same
// request sequence whatever the statuses — so requests-total pins the
// golden; everything downstream of a 429 (throttle counts, error counts,
// latency, usage visibility) is wall-clock-dependent and carried as live-
// metrics.

import (
	"fmt"
	"strings"

	"osdc/internal/scenario"
)

const rateLimitSweepDesc = "console-load vs per-user -rate-limit (∞/50/10 req/s): delivered throughput against 429 rate"

// rateLimitPoints is the swept axis: requests/second per user, 0 = no
// limit. Burst is one second's worth of tokens (production shape: absorb a
// dashboard refresh, throttle a loop).
var rateLimitPoints = []struct {
	label string
	limit float64
}{
	{"inf", 0},
	{"50rps", 50},
	{"10rps", 10},
}

// rateLimitSweepWorkload is the per-point console-load shape: enough
// requests per user (~52) that the 10 req/s bucket visibly throttles while
// the unlimited point stays clean.
var rateLimitSweepWorkload = ConsoleLoadOpts{Users: 4, Iters: 8}

// RateLimitSweep runs console-load at each rate-limit point in the
// single-process topology.
func RateLimitSweep(seed uint64) (scenario.Result, error) {
	metrics := map[string]float64{"points": float64(len(rateLimitPoints))}
	var b strings.Builder
	fmt.Fprintf(&b, "rate-limit sweep: %d researchers × %d op loops per point, burst = 1 s of tokens\n",
		rateLimitSweepWorkload.Users, rateLimitSweepWorkload.Iters)
	fmt.Fprintln(&b, strings.Repeat("-", 72))
	fmt.Fprintf(&b, "%8s %10s %10s %10s %12s %10s\n", "limit", "attempts", "429s", "429-rate", "rps", "p95-ms")

	for _, p := range rateLimitPoints {
		opts := rateLimitSweepWorkload
		opts.RateLimit = p.limit
		opts.RateBurst = p.limit // 1 second of tokens; 0 keeps "no limiter"
		res, err := ConsoleLoad(seed, opts)
		if err != nil {
			return scenario.Result{}, fmt.Errorf("rate-limit-sweep at %s: %w", p.label, err)
		}
		attempts := res.Metrics["requests-total"]
		throttled := res.Metrics["throttled-429"]
		rate := 0.0
		if attempts > 0 {
			rate = throttled / attempts
		}
		key := "[" + p.label + "]"
		metrics["requests-total"+key] = attempts
		metrics["live-429s"+key] = throttled
		metrics["live-429-rate"+key] = rate
		metrics["live-errors"+key] = res.Metrics["request-errors"]
		metrics["live-rps"+key] = res.Metrics["live-rps"]
		metrics["live-p95-ms"+key] = res.Metrics["live-p95-ms"]
		fmt.Fprintf(&b, "%8s %10.0f %10.0f %9.0f%% %12.0f %10.2f\n",
			p.label, attempts, throttled, 100*rate, res.Metrics["live-rps"], res.Metrics["live-p95-ms"])
	}
	fmt.Fprintln(&b, "\nproduction default (DESIGN.md §6): -rate-limit 50 -rate-burst 100 —")
	fmt.Fprintln(&b, "invisible to interactive use, caps a runaway per-user loop at 50 req/s.")
	return scenario.Result{Metrics: metrics, Table: b.String()}, nil
}
