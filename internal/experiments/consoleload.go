package experiments

// The console-load scenario is the "many concurrent users" axis the paper
// only implies: §5.1's Tukey console in front of the full federation,
// hammered by N simulated researchers at once while the wall-clock driver
// keeps the simulation clock — billing pollers, monitoring sweeps, VM boot
// timers — running underneath the HTTP traffic. It doubles as the
// integration stress for the service-layer locking: run it under -race and
// every console route races against every poller.
//
// The scenario is parametric (users, iters, think-ms) and runs in either
// federation topology:
//
//   - console-load: the single-process topology — both clouds share the
//     federation engine, served over loopback HTTP by per-cloud servers;
//   - console-load-remote: the per-site topology — every cloud gets its
//     own sim.Engine, wall-clock driver and HTTP listener (a
//     cloudapi.Site), and Tukey/billing reach it only through
//     cloudapi.Remote. Same workload, different deployment.
//
// console-knee sweeps the user axis (8/32/128) with a read-only request
// mix and reports where console p95 latency knees.
//
// Metric convention: keys with the "live-" prefix are measured wall-clock
// quantities (latency percentiles, requests/sec, metered usage) and are
// NOT deterministic functions of the seed; everything else (request
// counts, error counts, catalog hits) is. The osdc-bench golden test
// normalizes live- metrics to zero before comparing.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"osdc/internal/cloudapi"
	"osdc/internal/core"
	"osdc/internal/iaas"
	"osdc/internal/lb"
	"osdc/internal/scenario"
	"osdc/internal/sim"
	"osdc/internal/tukey"
	"osdc/internal/tukeystate"
)

const (
	consoleLoadDesc           = "Tukey console under N concurrent researchers with the sim clock live (requests/sec, p50/p95/p99)"
	consoleLoadRemoteDesc     = "console-load in the per-site topology: every cloud behind its own engine, driver and HTTP listener"
	consoleLoadRemoteSyncDesc = "console-load-remote with followed clocks: a coordinator pushes the console engine's time to every site"
	consoleKneeDesc           = "console p95 latency across (users × replicas): stateless console replicas over a shared state plane behind tukey-lb, locating the knee per replica count (params: users, replicas, iters; 0 = sweep 128/1024/4096 × 1/2/4)"
)

// consoleLoadSpeedup is simulated seconds per wall second: fast enough
// that minute-granularity billing polls land many times within a
// sub-second run.
const consoleLoadSpeedup = 60_000

// consoleGridSpeedup replaces consoleLoadSpeedup in grid mode: with 10⁵
// background instances each heartbeating every gridHeartbeat, 60 000×
// would ask the kernel for ~3×10⁶ events per wall second; 600× keeps the
// live event rate in the 10⁴/s range while still packing 31 simulated
// minutes of billing into a few wall seconds.
const consoleGridSpeedup = 600

// Grid-mode background population shape: dense synthetic hypervisors (so
// 10⁵ VMs need a few hundred host records rather than 10⁴ paper hosts),
// every VM heartbeating usage on its owning shard.
const (
	gridHostCores = 512
	gridHeartbeat = sim.Duration(30 * sim.Minute)
	gridUser      = "grid"
)

// consoleLoadSyncInterval is the coordinator's wall push period in the
// followed-clock topology: long enough that HTTP round trips stay a small
// fraction of it, short enough for many sync rounds per run.
const consoleLoadSyncInterval = 10 * time.Millisecond

// ConsoleLoadOpts shape the console-load workload; the scenario registry
// exposes them as parameters (users, iters, think-ms) plus the topology
// choice baked into the scenario name.
type ConsoleLoadOpts struct {
	Users int           // concurrent researchers
	Iters int           // op loops per researcher
	Think time.Duration // wall-clock pause between op loops
	// Remote selects the per-site topology: each cloud on its own engine
	// behind its own cloudapi.Site, services federating over HTTP.
	Remote bool
	// ClockFollow (remote topology only) puts every site clock in follow
	// mode behind a coordinator pushing the console engine's time — the
	// federated clock plane under load. The deterministic request
	// accounting must not change: only clocks move differently.
	ClockFollow bool
	// RateLimit, when > 0, puts the per-user token bucket in front of the
	// console (requests/second; RateBurst 0 means 2× RateLimit). 429s are
	// counted separately from errors, and the throttle makes
	// status-dependent metrics wall-clock-dependent — the rate-limit-sweep
	// scenario maps them to live- keys.
	RateLimit float64
	RateBurst float64
	// Shards is the live kernel's shard count (<= 1 = one engine). K=1
	// reproduces the historic single-engine runs bit for bit; K>1 homes
	// every instance's boot/heartbeat/stop timers on the shard its ID
	// hashes to and drives all shards in lockstep.
	Shards int
	// BgInstances > 0 switches on grid mode: that many background
	// m1.small VMs are parked on Adler (dense synthetic hosts, a usage
	// heartbeat armed on each) before the console storm starts, so
	// latencies are measured against a kernel busy with a large live
	// entity population. Grid mode runs at consoleGridSpeedup and only in
	// the single-process topology.
	BgInstances int
}

// DefaultConsoleLoadOpts is the historic 8×5 workload.
func DefaultConsoleLoadOpts() ConsoleLoadOpts { return ConsoleLoadOpts{Users: 8, Iters: 5} }

// consoleLoadOptsFrom maps scenario params onto opts.
func consoleLoadOptsFrom(params map[string]float64, remote, clockFollow bool) ConsoleLoadOpts {
	return ConsoleLoadOpts{
		Users:       int(params["users"]),
		Iters:       int(params["iters"]),
		Think:       time.Duration(params["think-ms"]) * time.Millisecond,
		Remote:      remote,
		ClockFollow: clockFollow,
		Shards:      int(params["shards"]),
		BgInstances: int(params["bg-instances"]),
	}
}

// consoleRig is a live-HTTP federation in either topology: the console
// server, the per-cloud admin transports (for quotas), and every running
// clock driver and listener that teardown must stop.
type consoleRig struct {
	f       *core.Federation
	console *httptest.Server
	// admin reaches each cloud's operator plane: Local wrappers in the
	// single-process topology, Remotes in the per-site one.
	admin   map[string]cloudapi.CloudAPI
	drivers []*sim.Driver
	closers []func()
}

// startConsoleRig stands the federation up behind live HTTP. In the local
// topology both clouds share the federation engine behind per-cloud
// servers; in the remote topology each cloud gets a private engine +
// clock source + listener (cloudapi.Site) and the console-side services
// are rewired onto Remote transports — free-running by default, or
// coordinator-followed with opts.ClockFollow.
func startConsoleRig(seed uint64, opts ConsoleLoadOpts, speedup float64) (*consoleRig, error) {
	f, err := core.New(core.Options{Seed: seed, Scale: 8, Shards: opts.Shards})
	if err != nil {
		return nil, err
	}
	rig := &consoleRig{f: f, admin: map[string]cloudapi.CloudAPI{}}

	if opts.BgInstances > 0 {
		if opts.Remote {
			rig.close()
			return nil, fmt.Errorf("console-load: grid mode (bg-instances) requires the single-process topology")
		}
		// Hosts and the heartbeat setting must land before the clock goes
		// live: AddHost is a setup-phase call (unlocked), and SetHeartbeat
		// only arms instances launched after it.
		for i := 0; i*gridHostCores < opts.BgInstances+gridHostCores; i++ {
			f.Adler.AddHost(iaas.NewHost(fmt.Sprintf("grid-%03d", i),
				gridHostCores, gridHostCores*4096, gridHostCores*100))
		}
		f.Adler.SetHeartbeat(gridHeartbeat)
	}

	if opts.Remote {
		// Per-site worlds: own engine, own cloud, own listener, own
		// clock; billing and monitoring watch them over the wire.
		clock := cloudapi.ClockFreeRun
		siteSpeedup, syncEvery := speedup, time.Duration(0)
		if opts.ClockFollow {
			// Followed sites take their time from the coordinator, which
			// StartRemoteSitesWithOptions starts against the console
			// engine (f.ClockSync); speedup 0 = jump to each target.
			clock, siteSpeedup, syncEvery = cloudapi.ClockFollow, 0, consoleLoadSyncInterval
		}
		sites, err := f.StartRemoteSitesWithOptions(core.RemoteSiteOptions{
			Seed: seed, Scale: 8, Speedup: siteSpeedup,
			Clock: clock, SyncInterval: syncEvery, Shards: opts.Shards,
		})
		if err != nil {
			rig.close()
			return nil, err
		}
		for _, site := range sites {
			rig.closers = append(rig.closers, site.Close)
			rig.admin[site.Cloud.Name] = site.Remote()
		}
	} else {
		for _, c := range []*iaas.Cloud{f.Adler, f.Sullivan} {
			srv := httptest.NewServer(cloudapi.NewServer(c))
			rig.closers = append(rig.closers, srv.Close)
			f.Tukey.AttachCloud(tukey.CloudConfig{Name: c.Name, Stack: c.Stack, Endpoint: srv.URL})
		}
		rig.admin[core.ClusterAdler] = f.AdlerAPI
		rig.admin[core.ClusterSullivan] = f.SullivanAPI
	}

	console := &tukey.Console{MW: f.Tukey, Biller: f.Biller, Catalog: f.Catalog, UsageMon: f.UsageMon}
	if opts.RateLimit > 0 {
		burst := opts.RateBurst
		if burst <= 0 {
			burst = 2 * opts.RateLimit
		}
		console.Limiter = tukey.NewRateLimiter(opts.RateLimit, burst)
	}
	rig.console = httptest.NewServer(console)
	rig.closers = append(rig.closers, rig.console.Close)

	// The console-side engine goes live last: from here on handlers and
	// pollers share it. A sharded kernel needs the shard driver — driving
	// only the anchor would strand off-anchor boot and heartbeat timers.
	if f.Set.K() > 1 {
		rig.drivers = append(rig.drivers, sim.StartShardDriver(f.Set, speedup, 2*time.Millisecond))
	} else {
		rig.drivers = append(rig.drivers, sim.StartDriver(f.Engine, speedup, 2*time.Millisecond))
	}
	return rig, nil
}

// stopDrivers halts every clock (idempotent); close also stops listeners.
func (rig *consoleRig) stopDrivers() {
	for _, d := range rig.drivers {
		d.Stop()
	}
}

func (rig *consoleRig) close() {
	rig.stopDrivers()
	// The coordinator (if any) stops before its target sites go away.
	rig.f.StopClockSync()
	for _, c := range rig.closers {
		c()
	}
}

// enroll provisions n researchers with quotas on every cloud, returning
// their usernames.
func (rig *consoleRig) enroll(n int, quota iaas.Quota) ([]string, error) {
	users := make([]string, n)
	for i := range users {
		users[i] = fmt.Sprintf("load%03d", i)
		rig.f.EnrollResearcher(users[i], "pw-"+users[i])
		for _, api := range rig.admin {
			if err := api.SetQuota(users[i], quota); err != nil {
				return nil, err
			}
		}
	}
	return users, nil
}

// consoleLoadResult carries one researcher's measurements back to the
// aggregator.
type consoleLoadResult struct {
	latencies []time.Duration
	errors    int
	limited   int // 429s from the admission-control bucket, not errors
	launched  int
	token     string
}

// consoleClient is one researcher's view of the console: it times every
// request and counts unexpected statuses. A nil client means
// http.DefaultClient; the knee sweep passes a shared pooled client so
// thousands of researchers reuse one socket pool.
type consoleClient struct {
	base   string
	tok    string
	client *http.Client
	res    *consoleLoadResult
}

func (c *consoleClient) do(method, path, body string, wantStatus int) (*http.Response, error) {
	req, err := http.NewRequest(method, c.base+path, strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	if c.tok != "" {
		req.Header.Set("X-Tukey-Session", c.tok)
	}
	hc := c.client
	if hc == nil {
		hc = http.DefaultClient
	}
	start := time.Now()
	resp, err := hc.Do(req)
	c.res.latencies = append(c.res.latencies, time.Since(start))
	if err != nil {
		c.res.errors++
		return nil, err
	}
	if resp.StatusCode == http.StatusTooManyRequests && wantStatus != http.StatusTooManyRequests {
		c.res.limited++
	} else if resp.StatusCode != wantStatus {
		c.res.errors++
	}
	return resp, nil
}

// drain closes a response body after decoding is done with it.
func drain(resp *http.Response) {
	if resp != nil {
		resp.Body.Close()
	}
}

// login authenticates one researcher and records the token.
func (c *consoleClient) login(user string) error {
	resp, err := c.do("POST", "/login", fmt.Sprintf(
		`{"provider":"shibboleth","username":%q,"secret":%q}`, user, "pw-"+user), http.StatusOK)
	if err != nil {
		return err
	}
	var login struct {
		Token string `json:"token"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&login)
	drain(resp)
	c.tok = login.Token
	c.res.token = login.Token
	return nil
}

// ConsoleLoad runs opts.Users concurrent researchers through login →
// launch → list → usage → datasets → status → terminate loops against the
// live federation in the chosen topology. It reports throughput and
// latency percentiles (live- metrics) alongside deterministic request
// accounting.
func ConsoleLoad(seed uint64, opts ConsoleLoadOpts) (scenario.Result, error) {
	if opts.Users <= 0 {
		opts.Users = 8
	}
	if opts.Iters <= 0 {
		opts.Iters = 5
	}
	speedup := float64(consoleLoadSpeedup)
	if opts.BgInstances > 0 {
		speedup = consoleGridSpeedup
	}
	rig, err := startConsoleRig(seed, opts, speedup)
	if err != nil {
		return scenario.Result{}, err
	}
	defer rig.close()
	users, err := rig.enroll(opts.Users, iaas.Quota{MaxInstances: 10, MaxCores: 16})
	if err != nil {
		return scenario.Result{}, err
	}
	console := rig.console
	f := rig.f

	// Grid mode: park the background population on Adler before the storm.
	// Launches go straight through the iaas control plane — the point is a
	// busy kernel under the console, not 10⁵ HTTP round trips — and the
	// clock is already live, so boots and heartbeats start firing on their
	// owning shards while the loop is still running.
	bgShardsPopulated := 0
	if opts.BgInstances > 0 {
		f.Adler.SetQuota(gridUser, iaas.Quota{
			MaxInstances: opts.BgInstances + 1, MaxCores: opts.BgInstances + 1})
		for i := 0; i < opts.BgInstances; i++ {
			if _, err := f.Adler.Launch(gridUser, fmt.Sprintf("bg-%06d", i), "m1.small", ""); err != nil {
				return scenario.Result{}, fmt.Errorf("console-load: grid launch %d/%d: %w", i, opts.BgInstances, err)
			}
		}
		for _, n := range f.Adler.ShardPopulation() {
			if n > 0 {
				bgShardsPopulated++
			}
		}
	}

	wallStart := time.Now()
	simStart := f.Engine.Now()

	results := make([]consoleLoadResult, opts.Users)
	var datasetHits int64
	var datasetOnce sync.Once

	// Phase 1 (concurrent): every researcher logs in and parks one
	// persistent VM on Adler. The barrier afterwards gives a sim timestamp
	// at which all persistent VMs are provably running, which makes
	// "usage becomes nonzero" deterministic rather than a timing accident.
	var wg sync.WaitGroup
	for i := range users {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &consoleClient{base: console.URL, res: &results[i]}
			if err := c.login(users[i]); err != nil {
				return
			}
			resp, _ := c.do("POST", "/console/launch", fmt.Sprintf(
				`{"cloud":%q,"name":"%s-home","flavor":"m1.small"}`, core.ClusterAdler, users[i]), http.StatusAccepted)
			if resp != nil && resp.StatusCode == http.StatusAccepted {
				results[i].launched++
			}
			drain(resp)
		}()
	}
	wg.Wait()
	vmsUpAt := f.Engine.Now()

	// Phase 2 (concurrent): the request storm. Each iteration launches a
	// scratch VM on Sullivan, walks every read route, terminates it, and
	// then thinks for opts.Think of wall time.
	for i := range users {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &consoleClient{base: console.URL, tok: results[i].token, res: &results[i]}
			for it := 0; it < opts.Iters; it++ {
				resp, _ := c.do("POST", "/console/launch", fmt.Sprintf(
					`{"cloud":%q,"name":"%s-it%d","flavor":"m1.small"}`, core.ClusterSullivan, users[i], it), http.StatusAccepted)
				var launch struct {
					Server tukey.TaggedServer `json:"server"`
				}
				if resp != nil {
					_ = json.NewDecoder(resp.Body).Decode(&launch)
					if resp.StatusCode == http.StatusAccepted {
						results[i].launched++
					}
				}
				drain(resp)

				resp, _ = c.do("GET", "/console/instances", "", http.StatusOK)
				drain(resp)
				resp, _ = c.do("GET", "/console/usage", "", http.StatusOK)
				drain(resp)
				resp, _ = c.do("GET", "/console/datasets?q=genomics", "", http.StatusOK)
				if resp != nil && resp.StatusCode == http.StatusOK {
					var ds struct {
						Datasets []json.RawMessage `json:"datasets"`
					}
					_ = json.NewDecoder(resp.Body).Decode(&ds)
					datasetOnce.Do(func() { datasetHits = int64(len(ds.Datasets)) })
				}
				drain(resp)
				resp, _ = c.do("GET", "/console/status", "", http.StatusOK)
				drain(resp)

				resp, _ = c.do("POST", "/console/terminate", fmt.Sprintf(
					`{"cloud":%q,"id":%q}`, core.ClusterSullivan, launch.Server.ID), http.StatusOK)
				drain(resp)

				if opts.Think > 0 {
					time.Sleep(opts.Think)
				}
			}
		}()
	}
	wg.Wait()

	// Phase 3: wait (wall-clock) until the persistent VMs have been up for
	// 31 simulated minutes on the billing engine, so the per-minute poll
	// has sampled them — then every researcher reads their usage and shuts
	// down. In the remote topology the clouds' clocks tick elsewhere;
	// billing samples whatever the sites report, so the console engine is
	// still the right clock to wait on.
	waitDeadline := time.Now().Add(10 * time.Second)
	for f.Engine.Now() < vmsUpAt+sim.Time(31*sim.Minute) {
		if time.Now().After(waitDeadline) {
			return scenario.Result{}, fmt.Errorf("console-load: clock driver advanced only to %v (from %v) in 10 s wall",
				f.Engine.Now(), vmsUpAt)
		}
		time.Sleep(time.Millisecond)
	}
	minCoreHours := -1.0
	for i := range users {
		c := &consoleClient{base: console.URL, tok: results[i].token, res: &results[i]}
		resp, err := c.do("GET", "/console/usage", "", http.StatusOK)
		if err != nil {
			return scenario.Result{}, err
		}
		var usage struct {
			CoreHours float64 `json:"core_hours"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&usage)
		drain(resp)
		if minCoreHours < 0 || usage.CoreHours < minCoreHours {
			minCoreHours = usage.CoreHours
		}
		resp, _ = c.do("POST", "/console/terminate", fmt.Sprintf(
			`{"cloud":%q,"id":%q}`, core.ClusterAdler, firstInstanceID(console.URL, results[i].token, core.ClusterAdler)), http.StatusOK)
		drain(resp)
	}
	wallElapsed := time.Since(wallStart)
	rig.stopDrivers()
	simElapsed := f.Engine.Now() - simStart

	// Aggregate.
	var all []time.Duration
	totalReqs, totalErrs, totalLimited, totalLaunched := 0, 0, 0, 0
	for i := range results {
		all = append(all, results[i].latencies...)
		totalReqs += len(results[i].latencies)
		totalErrs += results[i].errors
		totalLimited += results[i].limited
		totalLaunched += results[i].launched
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	usageNonzero := 0.0
	if minCoreHours > 0 {
		usageNonzero = 1
	}
	topology, remoteFlag := "single-process", 0.0
	if opts.Remote {
		topology, remoteFlag = "per-site remote", 1
	}
	clockFlag := 0.0
	if opts.ClockFollow {
		topology += " (followed clocks)"
		clockFlag = 1
	}
	if opts.Shards > 1 {
		topology += fmt.Sprintf(", %d-shard kernel", f.Set.K())
	}

	var b strings.Builder
	fmt.Fprintf(&b, "console load: %d researchers × (login + persistent VM + %d op loops), %s topology\n",
		opts.Users, opts.Iters, topology)
	fmt.Fprintln(&b, strings.Repeat("-", 72))
	fmt.Fprintf(&b, "requests         : %d total, %d errors, %d throttled, %d launches\n",
		totalReqs, totalErrs, totalLimited, totalLaunched)
	fmt.Fprintf(&b, "throughput       : %.0f req/s over %v wall\n", float64(totalReqs)/wallElapsed.Seconds(), wallElapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "latency          : p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
		quantileMs(all, 0.50), quantileMs(all, 0.95), quantileMs(all, 0.99))
	fmt.Fprintf(&b, "sim clock        : advanced %v while serving (speedup %.0f×)\n", sim.Time(simElapsed), speedup)
	fmt.Fprintf(&b, "metered usage    : every researcher nonzero (min %.2f core-hours)\n", minCoreHours)
	if opts.BgInstances > 0 {
		fmt.Fprintf(&b, "grid background  : %d VMs across %d shard bucket(s), %d usage heartbeats, shard skew %.0f s at join\n",
			opts.BgInstances, bgShardsPopulated, f.Adler.Heartbeats(), float64(f.Set.Skew()))
	}

	metrics := map[string]float64{
		"users":              float64(opts.Users),
		"iterations":         float64(opts.Iters),
		"think-ms":           float64(opts.Think) / float64(time.Millisecond),
		"remote-topology":    remoteFlag,
		"requests-total":     float64(totalReqs),
		"request-errors":     float64(totalErrs),
		"throttled-429":      float64(totalLimited),
		"instances-launched": float64(totalLaunched),
		"datasets-hits":      float64(datasetHits),
		"usage-nonzero":      usageNonzero,
		"live-rps":           float64(totalReqs) / wallElapsed.Seconds(),
		"live-p50-ms":        quantileMs(all, 0.50),
		"live-p95-ms":        quantileMs(all, 0.95),
		"live-p99-ms":        quantileMs(all, 0.99),
		"live-sim-minutes":   float64(simElapsed) / sim.Minute,
		"live-core-hours":    minCoreHours,
	}
	// Shard/grid keys appear only when the axes are exercised, so the
	// default-run goldens pinned before sharding stay byte-identical.
	if opts.Shards > 1 {
		metrics["shards"] = float64(f.Set.K())
	}
	if opts.BgInstances > 0 {
		metrics["bg-instances"] = float64(opts.BgInstances)
		metrics["bg-shards-populated"] = float64(bgShardsPopulated)
		metrics["live-bg-heartbeats"] = float64(f.Adler.Heartbeats())
		metrics["live-shard-skew-s"] = float64(f.Set.Skew())
	}
	if opts.ClockFollow {
		metrics["clock-follow"] = clockFlag
		if coord := f.ClockSync; coord != nil {
			metrics["live-clock-syncs"] = float64(coord.Syncs())
			metrics["live-max-skew-s"] = coord.MaxSkew()
			metrics["live-max-skew-excess-s"] = coord.MaxExcess()
			fmt.Fprintf(&b, "clock plane      : %d syncs, max skew %.0f sim s (excess over one interval %.0f s)\n",
				coord.Syncs(), coord.MaxSkew(), coord.MaxExcess())
		}
	}
	return scenario.Result{Metrics: metrics, Table: b.String()}, nil
}

// kneeUserPoints is the user axis ConsoleKnee sweeps: past the historic
// 128-user ceiling into the 10³–10⁴ region where a single console's locks
// and accept queue actually matter.
var kneeUserPoints = []int{128, 1024, 4096}

// kneeReplicaPoints is the replica axis: how many stateless consoles share
// the state plane behind the balancer at each user point.
var kneeReplicaPoints = []int{1, 2, 4}

// kneeIters is the read loops per researcher at each point — enough
// requests for a stable p95, small enough that 4096 users stay tractable.
// Request accounting per user is 1 login + kneeIters×4 reads = 9.
const kneeIters = 2

// kneeMaxInFlight bounds concurrently active researchers. 4096 users each
// holding sockets to the balancer (which holds sockets to replicas, which
// hold sockets to the state plane) would exhaust the fd table; a real
// population that size is mostly thinking anyway. The bound is identical
// across replica counts, so the replica comparison stays fair.
const kneeMaxInFlight = 256

// ConsoleKneeOpts shape the knee sweep; zero values mean "sweep the
// default axis" (all kneeUserPoints × all kneeReplicaPoints).
type ConsoleKneeOpts struct {
	Users    int // fix the user axis to one point; 0 = sweep
	Replicas int // fix the replica axis to one point; 0 = sweep
	Iters    int // read loops per researcher; 0 = kneeIters
}

func consoleKneeOptsFrom(params map[string]float64) ConsoleKneeOpts {
	return ConsoleKneeOpts{
		Users:    int(params["users"]),
		Replicas: int(params["replicas"]),
		Iters:    int(params["iters"]),
	}
}

// kneeRig is one knee point's world: a federation whose console runs as K
// stateless replicas — each a Middleware clone resolving sessions through
// a shared tukeystate plane, each behind its own listener — fronted by an
// lb.Pool with session affinity. No rate limiter anywhere: the knee
// measures the console itself, and request accounting stays deterministic.
type kneeRig struct {
	f       *core.Federation
	front   *httptest.Server // the balancer: what researchers talk to
	pool    *lb.Pool
	admin   map[string]cloudapi.CloudAPI
	drivers []*sim.Driver
	closers []func()
}

func startKneeRig(seed uint64, replicas int) (*kneeRig, error) {
	f, err := core.New(core.Options{Seed: seed, Scale: 8})
	if err != nil {
		return nil, err
	}
	rig := &kneeRig{f: f, admin: map[string]cloudapi.CloudAPI{
		core.ClusterAdler:    f.AdlerAPI,
		core.ClusterSullivan: f.SullivanAPI,
	}}
	for _, c := range []*iaas.Cloud{f.Adler, f.Sullivan} {
		srv := httptest.NewServer(cloudapi.NewServer(c))
		rig.closers = append(rig.closers, srv.Close)
		f.Tukey.AttachCloud(tukey.CloudConfig{Name: c.Name, Stack: c.Stack, Endpoint: srv.URL})
	}

	// The shared state plane. Sessions live here and only here; the
	// replicas are wire clients. One pooled transport is shared by every
	// replica's store client so state-plane sockets are reused, not
	// re-dialed per request.
	state := httptest.NewServer(tukeystate.NewServer(tukey.NewMemorySessionStore(), nil))
	rig.closers = append(rig.closers, state.Close)
	stateClient := &http.Client{Timeout: tukeystate.DefaultTimeout, Transport: &http.Transport{
		MaxIdleConns: kneeMaxInFlight, MaxIdleConnsPerHost: kneeMaxInFlight,
	}}

	// K stateless console replicas: cloned middleware (clouds attached
	// above come along), remote session store, distinct token prefix, own
	// listener. Enrollment happens after this, so EnrollResearcher fans
	// credentials across every replica.
	urls := make([]string, 0, replicas)
	for k := 0; k < replicas; k++ {
		mw := f.AddTukeyReplica(tukeystate.NewRemoteSessionStore(state.URL, stateClient), fmt.Sprintf("r%d-", k))
		console := &tukey.Console{MW: mw, Biller: f.Biller, Catalog: f.Catalog, UsageMon: f.UsageMon}
		srv := httptest.NewServer(console)
		rig.closers = append(rig.closers, srv.Close)
		urls = append(urls, srv.URL)
	}

	lbClient := &http.Client{Timeout: 30 * time.Second, Transport: &http.Transport{
		MaxIdleConns: kneeMaxInFlight, MaxIdleConnsPerHost: kneeMaxInFlight,
	}}
	rig.pool = lb.NewPool(urls, lbClient)
	rig.front = httptest.NewServer(rig.pool)
	rig.closers = append(rig.closers, rig.front.Close, lbClient.CloseIdleConnections, stateClient.CloseIdleConnections)

	rig.drivers = append(rig.drivers, sim.StartDriver(f.Engine, consoleLoadSpeedup, 2*time.Millisecond))
	return rig, nil
}

func (rig *kneeRig) close() {
	for _, d := range rig.drivers {
		d.Stop()
	}
	for _, c := range rig.closers {
		c()
	}
}

// enroll provisions n researchers with free-tier quotas on every cloud.
func (rig *kneeRig) enroll(n int) ([]string, error) {
	users := make([]string, n)
	for i := range users {
		users[i] = fmt.Sprintf("load%04d", i)
		rig.f.EnrollResearcher(users[i], "pw-"+users[i])
		for _, api := range rig.admin {
			if err := api.SetQuota(users[i], iaas.FreeTierQuota()); err != nil {
				return nil, err
			}
		}
	}
	return users, nil
}

// kneePointResult is one (users, replicas) grid point's aggregate.
type kneePointResult struct {
	reqs, errs int
	p50, p95   float64
}

// runKneePoint storms one grid point: U researchers (at most
// kneeMaxInFlight active at once) each log in through the balancer and
// walk the read routes iters times. All traffic shares one pooled client —
// the fd budget must not scale with U.
func runKneePoint(seed uint64, users, replicas, iters int) (kneePointResult, error) {
	rig, err := startKneeRig(seed, replicas)
	if err != nil {
		return kneePointResult{}, err
	}
	defer rig.close()
	names, err := rig.enroll(users)
	if err != nil {
		return kneePointResult{}, err
	}

	client := &http.Client{Timeout: 60 * time.Second, Transport: &http.Transport{
		MaxIdleConns: kneeMaxInFlight, MaxIdleConnsPerHost: kneeMaxInFlight,
	}}
	defer client.CloseIdleConnections()

	results := make([]consoleLoadResult, users)
	sem := make(chan struct{}, kneeMaxInFlight)
	var wg sync.WaitGroup
	for i := range names {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c := &consoleClient{base: rig.front.URL, client: client, res: &results[i]}
			if err := c.login(names[i]); err != nil {
				return
			}
			for it := 0; it < iters; it++ {
				for _, path := range []string{
					"/console/instances", "/console/usage",
					"/console/datasets?q=genomics", "/console/status",
				} {
					resp, _ := c.do("GET", path, "", http.StatusOK)
					drain(resp)
				}
			}
		}()
	}
	wg.Wait()

	var all []time.Duration
	out := kneePointResult{}
	for i := range results {
		all = append(all, results[i].latencies...)
		out.reqs += len(results[i].latencies)
		out.errs += results[i].errors
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	out.p50, out.p95 = quantileMs(all, 0.50), quantileMs(all, 0.95)
	return out, nil
}

// ConsoleKnee probes console p95 latency across a (users × replicas) grid:
// at each point U researchers hammer the read routes through tukey-lb
// fronting K stateless console replicas over a shared tukeystate plane.
// Per replica count, the knee is the first user point whose p95 exceeds
// twice that replica count's baseline p95 — so the sweep answers the
// capacity-planning question directly: how far does each added replica
// push the knee?
func ConsoleKnee(seed uint64, opts ConsoleKneeOpts) (scenario.Result, error) {
	userPoints, replicaPoints := kneeUserPoints, kneeReplicaPoints
	if opts.Users > 0 {
		userPoints = []int{opts.Users}
	}
	if opts.Replicas > 0 {
		replicaPoints = []int{opts.Replicas}
	}
	iters := opts.Iters
	if iters <= 0 {
		iters = kneeIters
	}

	metrics := map[string]float64{"points": float64(len(userPoints) * len(replicaPoints))}
	var b strings.Builder
	fmt.Fprintf(&b, "console latency knee: read-route storm, %v researchers × %v replicas\n",
		userPoints, replicaPoints)
	fmt.Fprintln(&b, strings.Repeat("-", 72))

	// p95 at the largest user point per replica count: the headline
	// "does adding replicas move the knee" series.
	maxUsers := userPoints[len(userPoints)-1]
	topP95 := make([]float64, 0, len(replicaPoints))

	for _, k := range replicaPoints {
		baseP95, knee := 0.0, 0.0
		for _, u := range userPoints {
			pt, err := runKneePoint(seed, u, k, iters)
			if err != nil {
				return scenario.Result{}, err
			}
			if baseP95 == 0 {
				baseP95 = pt.p95
			} else if knee == 0 && pt.p95 > 2*baseP95 {
				knee = float64(u)
			}
			key := fmt.Sprintf("[%d-users,%d-replicas]", u, k)
			metrics["requests-total"+key] = float64(pt.reqs)
			metrics["request-errors"+key] = float64(pt.errs)
			metrics["live-p50-ms"+key] = pt.p50
			metrics["live-p95-ms"+key] = pt.p95
			if u == maxUsers {
				topP95 = append(topP95, pt.p95)
			}
			fmt.Fprintf(&b, "%4d users × %d replicas: %5d requests, %d errors, p50 %.2f ms, p95 %.2f ms\n",
				u, k, pt.reqs, pt.errs, pt.p50, pt.p95)
		}
		metrics[fmt.Sprintf("live-knee-users[%d-replicas]", k)] = knee
		if knee > 0 {
			fmt.Fprintf(&b, "  %d replica(s): p95 knees (>2× the %d-user baseline) at %.0f users\n",
				k, userPoints[0], knee)
		} else {
			fmt.Fprintf(&b, "  %d replica(s): no p95 knee up to %d users\n", k, maxUsers)
		}
	}
	if len(topP95) == len(replicaPoints) && len(replicaPoints) > 1 {
		improves := true
		for i := 1; i < len(topP95); i++ {
			if topP95[i] > topP95[i-1] {
				improves = false
			}
		}
		fmt.Fprintf(&b, "p95 at %d users across %v replicas: %v ms (monotone improvement: %v)\n",
			maxUsers, replicaPoints, topP95, improves)
	}
	return scenario.Result{Metrics: metrics, Table: b.String()}, nil
}

// firstInstanceID fetches the caller's first live instance ID on cloud via
// the console listing (the persistent VM parked in phase 1).
func firstInstanceID(base, token, cloud string) string {
	req, _ := http.NewRequest("GET", base+"/console/instances", nil)
	req.Header.Set("X-Tukey-Session", token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	var list struct {
		Servers []tukey.TaggedServer `json:"servers"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&list)
	for _, s := range list.Servers {
		if s.Cloud == cloud {
			return s.ID
		}
	}
	return ""
}

// quantileMs returns the q-quantile (nearest-rank) of sorted durations, in
// milliseconds.
func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}
