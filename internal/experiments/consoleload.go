package experiments

// The console-load scenario is the "many concurrent users" axis the paper
// only implies: §5.1's Tukey console in front of the full federation,
// hammered by N simulated researchers at once while the wall-clock driver
// keeps the simulation clock — billing pollers, monitoring sweeps, VM boot
// timers — running underneath the HTTP traffic. It doubles as the
// integration stress for the service-layer locking: run it under -race and
// every console route races against every poller.
//
// Metric convention: keys with the "live-" prefix are measured wall-clock
// quantities (latency percentiles, requests/sec, metered usage) and are
// NOT deterministic functions of the seed; everything else (request
// counts, error counts, catalog hits) is. The osdc-bench golden test
// normalizes live- metrics to zero before comparing.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"osdc/internal/core"
	"osdc/internal/iaas"
	"osdc/internal/scenario"
	"osdc/internal/sim"
	"osdc/internal/tukey"
)

const consoleLoadDesc = "Tukey console under N concurrent researchers with the sim clock live (requests/sec, p50/p95/p99)"

// consoleLoadUsers and consoleLoadIters fix the workload shape so the
// request arithmetic below stays deterministic.
const (
	consoleLoadUsers = 8
	consoleLoadIters = 5
	// consoleLoadSpeedup is simulated seconds per wall second: fast enough
	// that minute-granularity billing polls land many times within a
	// sub-second run.
	consoleLoadSpeedup = 60_000
)

// consoleLoadResult carries one researcher's measurements back to the
// aggregator.
type consoleLoadResult struct {
	latencies []time.Duration
	errors    int
	launched  int
	token     string
}

// consoleClient is one researcher's view of the console: it times every
// request and counts unexpected statuses.
type consoleClient struct {
	base string
	tok  string
	res  *consoleLoadResult
}

func (c *consoleClient) do(method, path, body string, wantStatus int) (*http.Response, error) {
	req, err := http.NewRequest(method, c.base+path, strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	if c.tok != "" {
		req.Header.Set("X-Tukey-Session", c.tok)
	}
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	c.res.latencies = append(c.res.latencies, time.Since(start))
	if err != nil {
		c.res.errors++
		return nil, err
	}
	if resp.StatusCode != wantStatus {
		c.res.errors++
	}
	return resp, nil
}

// drain closes a response body after decoding is done with it.
func drain(resp *http.Response) {
	if resp != nil {
		resp.Body.Close()
	}
}

// ConsoleLoad stands the federation up behind live HTTP — both native
// cloud APIs plus the console — starts the wall-clock driver, and runs
// consoleLoadUsers concurrent researchers through login → launch → list →
// usage → datasets → status → terminate loops. It reports throughput and
// latency percentiles (live- metrics) alongside deterministic request
// accounting.
func ConsoleLoad(seed uint64) (scenario.Result, error) {
	f, err := core.New(core.Options{Seed: seed, Scale: 8})
	if err != nil {
		return scenario.Result{}, err
	}
	novaSrv := httptest.NewServer(&iaas.NovaAPI{Cloud: f.Adler})
	defer novaSrv.Close()
	eucaSrv := httptest.NewServer(&iaas.EucaAPI{Cloud: f.Sullivan})
	defer eucaSrv.Close()
	f.Tukey.AttachCloud(tukey.CloudConfig{Name: core.ClusterAdler, Stack: "openstack", Endpoint: novaSrv.URL})
	f.Tukey.AttachCloud(tukey.CloudConfig{Name: core.ClusterSullivan, Stack: "eucalyptus", Endpoint: eucaSrv.URL})
	console := httptest.NewServer(&tukey.Console{MW: f.Tukey, Biller: f.Biller, Catalog: f.Catalog})
	defer console.Close()

	users := make([]string, consoleLoadUsers)
	for i := range users {
		users[i] = fmt.Sprintf("load%02d", i)
		f.EnrollResearcher(users[i], "pw-"+users[i])
		f.Adler.SetQuota(users[i], iaas.Quota{MaxInstances: 10, MaxCores: 16})
		f.Sullivan.SetQuota(users[i], iaas.Quota{MaxInstances: 10, MaxCores: 16})
	}

	// From here on the engine is shared: the driver advances the clock
	// while the researchers' handlers schedule against it.
	driver := sim.StartDriver(f.Engine, consoleLoadSpeedup, 2*time.Millisecond)
	defer driver.Stop()
	wallStart := time.Now()
	simStart := f.Engine.Now()

	results := make([]consoleLoadResult, consoleLoadUsers)
	var datasetHits int64
	var datasetOnce sync.Once

	// Phase 1 (concurrent): every researcher logs in and parks one
	// persistent VM on Adler. The barrier afterwards gives a sim timestamp
	// at which all persistent VMs are provably running, which makes
	// "usage becomes nonzero" deterministic rather than a timing accident.
	var wg sync.WaitGroup
	for i := range users {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &consoleClient{base: console.URL, res: &results[i]}
			resp, err := c.do("POST", "/login", fmt.Sprintf(
				`{"provider":"shibboleth","username":%q,"secret":%q}`, users[i], "pw-"+users[i]), http.StatusOK)
			if err != nil {
				return
			}
			var login struct {
				Token string `json:"token"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&login)
			drain(resp)
			c.tok = login.Token
			results[i].token = login.Token

			resp, _ = c.do("POST", "/console/launch", fmt.Sprintf(
				`{"cloud":%q,"name":"%s-home","flavor":"m1.small"}`, core.ClusterAdler, users[i]), http.StatusAccepted)
			if resp != nil && resp.StatusCode == http.StatusAccepted {
				results[i].launched++
			}
			drain(resp)
		}()
	}
	wg.Wait()
	vmsUpAt := f.Engine.Now()

	// Phase 2 (concurrent): the request storm. Each iteration launches a
	// scratch VM on Sullivan, walks every read route, and terminates it.
	for i := range users {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &consoleClient{base: console.URL, tok: results[i].token, res: &results[i]}
			for it := 0; it < consoleLoadIters; it++ {
				resp, _ := c.do("POST", "/console/launch", fmt.Sprintf(
					`{"cloud":%q,"name":"%s-it%d","flavor":"m1.small"}`, core.ClusterSullivan, users[i], it), http.StatusAccepted)
				var launch struct {
					Server tukey.TaggedServer `json:"server"`
				}
				if resp != nil {
					_ = json.NewDecoder(resp.Body).Decode(&launch)
					if resp.StatusCode == http.StatusAccepted {
						results[i].launched++
					}
				}
				drain(resp)

				resp, _ = c.do("GET", "/console/instances", "", http.StatusOK)
				drain(resp)
				resp, _ = c.do("GET", "/console/usage", "", http.StatusOK)
				drain(resp)
				resp, _ = c.do("GET", "/console/datasets?q=genomics", "", http.StatusOK)
				if resp != nil && resp.StatusCode == http.StatusOK {
					var ds struct {
						Datasets []json.RawMessage `json:"datasets"`
					}
					_ = json.NewDecoder(resp.Body).Decode(&ds)
					datasetOnce.Do(func() { datasetHits = int64(len(ds.Datasets)) })
				}
				drain(resp)
				resp, _ = c.do("GET", "/console/status", "", http.StatusOK)
				drain(resp)

				resp, _ = c.do("POST", "/console/terminate", fmt.Sprintf(
					`{"cloud":%q,"id":%q}`, core.ClusterSullivan, launch.Server.ID), http.StatusOK)
				drain(resp)
			}
		}()
	}
	wg.Wait()

	// Phase 3: wait (wall-clock) until the persistent VMs have been up for
	// 31 simulated minutes, so the per-minute billing poll has sampled
	// them — then every researcher reads their usage and shuts down.
	waitDeadline := time.Now().Add(10 * time.Second)
	for f.Engine.Now() < vmsUpAt+sim.Time(31*sim.Minute) {
		if time.Now().After(waitDeadline) {
			return scenario.Result{}, fmt.Errorf("console-load: clock driver advanced only to %v (from %v) in 10 s wall",
				f.Engine.Now(), vmsUpAt)
		}
		time.Sleep(time.Millisecond)
	}
	minCoreHours := -1.0
	for i := range users {
		c := &consoleClient{base: console.URL, tok: results[i].token, res: &results[i]}
		resp, err := c.do("GET", "/console/usage", "", http.StatusOK)
		if err != nil {
			return scenario.Result{}, err
		}
		var usage struct {
			CoreHours float64 `json:"core_hours"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&usage)
		drain(resp)
		if minCoreHours < 0 || usage.CoreHours < minCoreHours {
			minCoreHours = usage.CoreHours
		}
		resp, _ = c.do("POST", "/console/terminate", fmt.Sprintf(
			`{"cloud":%q,"id":%q}`, core.ClusterAdler, firstInstanceID(console.URL, results[i].token, core.ClusterAdler)), http.StatusOK)
		drain(resp)
	}
	wallElapsed := time.Since(wallStart)
	driver.Stop()
	simElapsed := f.Engine.Now() - simStart

	// Aggregate.
	var all []time.Duration
	totalReqs, totalErrs, totalLaunched := 0, 0, 0
	for i := range results {
		all = append(all, results[i].latencies...)
		totalReqs += len(results[i].latencies)
		totalErrs += results[i].errors
		totalLaunched += results[i].launched
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	usageNonzero := 0.0
	if minCoreHours > 0 {
		usageNonzero = 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, "console load: %d researchers × (login + persistent VM + %d op loops) against the live federation\n",
		consoleLoadUsers, consoleLoadIters)
	fmt.Fprintln(&b, strings.Repeat("-", 72))
	fmt.Fprintf(&b, "requests         : %d total, %d errors, %d launches\n", totalReqs, totalErrs, totalLaunched)
	fmt.Fprintf(&b, "throughput       : %.0f req/s over %v wall\n", float64(totalReqs)/wallElapsed.Seconds(), wallElapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "latency          : p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
		quantileMs(all, 0.50), quantileMs(all, 0.95), quantileMs(all, 0.99))
	fmt.Fprintf(&b, "sim clock        : advanced %v while serving (speedup %d×)\n", sim.Time(simElapsed), consoleLoadSpeedup)
	fmt.Fprintf(&b, "metered usage    : every researcher nonzero (min %.2f core-hours)\n", minCoreHours)

	return scenario.Result{
		Metrics: map[string]float64{
			"users":              float64(consoleLoadUsers),
			"requests-total":     float64(totalReqs),
			"request-errors":     float64(totalErrs),
			"instances-launched": float64(totalLaunched),
			"datasets-hits":      float64(datasetHits),
			"usage-nonzero":      usageNonzero,
			"live-rps":           float64(totalReqs) / wallElapsed.Seconds(),
			"live-p50-ms":        quantileMs(all, 0.50),
			"live-p95-ms":        quantileMs(all, 0.95),
			"live-p99-ms":        quantileMs(all, 0.99),
			"live-sim-minutes":   float64(simElapsed) / sim.Minute,
			"live-core-hours":    minCoreHours,
		},
		Table: b.String(),
	}, nil
}

// firstInstanceID fetches the caller's first live instance ID on cloud via
// the console listing (the persistent VM parked in phase 1).
func firstInstanceID(base, token, cloud string) string {
	req, _ := http.NewRequest("GET", base+"/console/instances", nil)
	req.Header.Set("X-Tukey-Session", token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	var list struct {
		Servers []tukey.TaggedServer `json:"servers"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&list)
	for _, s := range list.Servers {
		if s.Cloud == cloud {
			return s.ID
		}
	}
	return ""
}

// quantileMs returns the q-quantile (nearest-rank) of sorted durations, in
// milliseconds.
func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}
