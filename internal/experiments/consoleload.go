package experiments

// The console-load scenario is the "many concurrent users" axis the paper
// only implies: §5.1's Tukey console in front of the full federation,
// hammered by N simulated researchers at once while the wall-clock driver
// keeps the simulation clock — billing pollers, monitoring sweeps, VM boot
// timers — running underneath the HTTP traffic. It doubles as the
// integration stress for the service-layer locking: run it under -race and
// every console route races against every poller.
//
// The scenario is parametric (users, iters, think-ms) and runs in either
// federation topology:
//
//   - console-load: the single-process topology — both clouds share the
//     federation engine, served over loopback HTTP by per-cloud servers;
//   - console-load-remote: the per-site topology — every cloud gets its
//     own sim.Engine, wall-clock driver and HTTP listener (a
//     cloudapi.Site), and Tukey/billing reach it only through
//     cloudapi.Remote. Same workload, different deployment.
//
// console-knee sweeps the user axis (8/32/128) with a read-only request
// mix and reports where console p95 latency knees.
//
// Metric convention: keys with the "live-" prefix are measured wall-clock
// quantities (latency percentiles, requests/sec, metered usage) and are
// NOT deterministic functions of the seed; everything else (request
// counts, error counts, catalog hits) is. The osdc-bench golden test
// normalizes live- metrics to zero before comparing.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"osdc/internal/cloudapi"
	"osdc/internal/core"
	"osdc/internal/iaas"
	"osdc/internal/scenario"
	"osdc/internal/sim"
	"osdc/internal/tukey"
)

const (
	consoleLoadDesc           = "Tukey console under N concurrent researchers with the sim clock live (requests/sec, p50/p95/p99)"
	consoleLoadRemoteDesc     = "console-load in the per-site topology: every cloud behind its own engine, driver and HTTP listener"
	consoleLoadRemoteSyncDesc = "console-load-remote with followed clocks: a coordinator pushes the console engine's time to every site"
	consoleKneeDesc           = "console p95 latency across the user axis (8/32/128 researchers), locating the knee"
)

// consoleLoadSpeedup is simulated seconds per wall second: fast enough
// that minute-granularity billing polls land many times within a
// sub-second run.
const consoleLoadSpeedup = 60_000

// consoleLoadSyncInterval is the coordinator's wall push period in the
// followed-clock topology: long enough that HTTP round trips stay a small
// fraction of it, short enough for many sync rounds per run.
const consoleLoadSyncInterval = 10 * time.Millisecond

// ConsoleLoadOpts shape the console-load workload; the scenario registry
// exposes them as parameters (users, iters, think-ms) plus the topology
// choice baked into the scenario name.
type ConsoleLoadOpts struct {
	Users int           // concurrent researchers
	Iters int           // op loops per researcher
	Think time.Duration // wall-clock pause between op loops
	// Remote selects the per-site topology: each cloud on its own engine
	// behind its own cloudapi.Site, services federating over HTTP.
	Remote bool
	// ClockFollow (remote topology only) puts every site clock in follow
	// mode behind a coordinator pushing the console engine's time — the
	// federated clock plane under load. The deterministic request
	// accounting must not change: only clocks move differently.
	ClockFollow bool
	// RateLimit, when > 0, puts the per-user token bucket in front of the
	// console (requests/second; RateBurst 0 means 2× RateLimit). 429s are
	// counted separately from errors, and the throttle makes
	// status-dependent metrics wall-clock-dependent — the rate-limit-sweep
	// scenario maps them to live- keys.
	RateLimit float64
	RateBurst float64
}

// DefaultConsoleLoadOpts is the historic 8×5 workload.
func DefaultConsoleLoadOpts() ConsoleLoadOpts { return ConsoleLoadOpts{Users: 8, Iters: 5} }

// consoleLoadOptsFrom maps scenario params onto opts.
func consoleLoadOptsFrom(params map[string]float64, remote, clockFollow bool) ConsoleLoadOpts {
	return ConsoleLoadOpts{
		Users:       int(params["users"]),
		Iters:       int(params["iters"]),
		Think:       time.Duration(params["think-ms"]) * time.Millisecond,
		Remote:      remote,
		ClockFollow: clockFollow,
	}
}

// consoleRig is a live-HTTP federation in either topology: the console
// server, the per-cloud admin transports (for quotas), and every running
// clock driver and listener that teardown must stop.
type consoleRig struct {
	f       *core.Federation
	console *httptest.Server
	// admin reaches each cloud's operator plane: Local wrappers in the
	// single-process topology, Remotes in the per-site one.
	admin   map[string]cloudapi.CloudAPI
	drivers []*sim.Driver
	closers []func()
}

// startConsoleRig stands the federation up behind live HTTP. In the local
// topology both clouds share the federation engine behind per-cloud
// servers; in the remote topology each cloud gets a private engine +
// clock source + listener (cloudapi.Site) and the console-side services
// are rewired onto Remote transports — free-running by default, or
// coordinator-followed with opts.ClockFollow.
func startConsoleRig(seed uint64, opts ConsoleLoadOpts, speedup float64) (*consoleRig, error) {
	f, err := core.New(core.Options{Seed: seed, Scale: 8})
	if err != nil {
		return nil, err
	}
	rig := &consoleRig{f: f, admin: map[string]cloudapi.CloudAPI{}}

	if opts.Remote {
		// Per-site worlds: own engine, own cloud, own listener, own
		// clock; billing and monitoring watch them over the wire.
		clock := cloudapi.ClockFreeRun
		siteSpeedup, syncEvery := speedup, time.Duration(0)
		if opts.ClockFollow {
			// Followed sites take their time from the coordinator, which
			// StartRemoteSitesWithOptions starts against the console
			// engine (f.ClockSync); speedup 0 = jump to each target.
			clock, siteSpeedup, syncEvery = cloudapi.ClockFollow, 0, consoleLoadSyncInterval
		}
		sites, err := f.StartRemoteSitesWithOptions(core.RemoteSiteOptions{
			Seed: seed, Scale: 8, Speedup: siteSpeedup,
			Clock: clock, SyncInterval: syncEvery,
		})
		if err != nil {
			rig.close()
			return nil, err
		}
		for _, site := range sites {
			rig.closers = append(rig.closers, site.Close)
			rig.admin[site.Cloud.Name] = site.Remote()
		}
	} else {
		for _, c := range []*iaas.Cloud{f.Adler, f.Sullivan} {
			srv := httptest.NewServer(cloudapi.NewServer(c))
			rig.closers = append(rig.closers, srv.Close)
			f.Tukey.AttachCloud(tukey.CloudConfig{Name: c.Name, Stack: c.Stack, Endpoint: srv.URL})
		}
		rig.admin[core.ClusterAdler] = f.AdlerAPI
		rig.admin[core.ClusterSullivan] = f.SullivanAPI
	}

	console := &tukey.Console{MW: f.Tukey, Biller: f.Biller, Catalog: f.Catalog, UsageMon: f.UsageMon}
	if opts.RateLimit > 0 {
		burst := opts.RateBurst
		if burst <= 0 {
			burst = 2 * opts.RateLimit
		}
		console.Limiter = tukey.NewRateLimiter(opts.RateLimit, burst)
	}
	rig.console = httptest.NewServer(console)
	rig.closers = append(rig.closers, rig.console.Close)

	// The console-side engine goes live last: from here on handlers and
	// pollers share it.
	rig.drivers = append(rig.drivers, sim.StartDriver(f.Engine, speedup, 2*time.Millisecond))
	return rig, nil
}

// stopDrivers halts every clock (idempotent); close also stops listeners.
func (rig *consoleRig) stopDrivers() {
	for _, d := range rig.drivers {
		d.Stop()
	}
}

func (rig *consoleRig) close() {
	rig.stopDrivers()
	// The coordinator (if any) stops before its target sites go away.
	rig.f.StopClockSync()
	for _, c := range rig.closers {
		c()
	}
}

// enroll provisions n researchers with quotas on every cloud, returning
// their usernames.
func (rig *consoleRig) enroll(n int, quota iaas.Quota) ([]string, error) {
	users := make([]string, n)
	for i := range users {
		users[i] = fmt.Sprintf("load%03d", i)
		rig.f.EnrollResearcher(users[i], "pw-"+users[i])
		for _, api := range rig.admin {
			if err := api.SetQuota(users[i], quota); err != nil {
				return nil, err
			}
		}
	}
	return users, nil
}

// consoleLoadResult carries one researcher's measurements back to the
// aggregator.
type consoleLoadResult struct {
	latencies []time.Duration
	errors    int
	limited   int // 429s from the admission-control bucket, not errors
	launched  int
	token     string
}

// consoleClient is one researcher's view of the console: it times every
// request and counts unexpected statuses.
type consoleClient struct {
	base string
	tok  string
	res  *consoleLoadResult
}

func (c *consoleClient) do(method, path, body string, wantStatus int) (*http.Response, error) {
	req, err := http.NewRequest(method, c.base+path, strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	if c.tok != "" {
		req.Header.Set("X-Tukey-Session", c.tok)
	}
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	c.res.latencies = append(c.res.latencies, time.Since(start))
	if err != nil {
		c.res.errors++
		return nil, err
	}
	if resp.StatusCode == http.StatusTooManyRequests && wantStatus != http.StatusTooManyRequests {
		c.res.limited++
	} else if resp.StatusCode != wantStatus {
		c.res.errors++
	}
	return resp, nil
}

// drain closes a response body after decoding is done with it.
func drain(resp *http.Response) {
	if resp != nil {
		resp.Body.Close()
	}
}

// login authenticates one researcher and records the token.
func (c *consoleClient) login(user string) error {
	resp, err := c.do("POST", "/login", fmt.Sprintf(
		`{"provider":"shibboleth","username":%q,"secret":%q}`, user, "pw-"+user), http.StatusOK)
	if err != nil {
		return err
	}
	var login struct {
		Token string `json:"token"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&login)
	drain(resp)
	c.tok = login.Token
	c.res.token = login.Token
	return nil
}

// ConsoleLoad runs opts.Users concurrent researchers through login →
// launch → list → usage → datasets → status → terminate loops against the
// live federation in the chosen topology. It reports throughput and
// latency percentiles (live- metrics) alongside deterministic request
// accounting.
func ConsoleLoad(seed uint64, opts ConsoleLoadOpts) (scenario.Result, error) {
	if opts.Users <= 0 {
		opts.Users = 8
	}
	if opts.Iters <= 0 {
		opts.Iters = 5
	}
	rig, err := startConsoleRig(seed, opts, consoleLoadSpeedup)
	if err != nil {
		return scenario.Result{}, err
	}
	defer rig.close()
	users, err := rig.enroll(opts.Users, iaas.Quota{MaxInstances: 10, MaxCores: 16})
	if err != nil {
		return scenario.Result{}, err
	}
	console := rig.console
	f := rig.f

	wallStart := time.Now()
	simStart := f.Engine.Now()

	results := make([]consoleLoadResult, opts.Users)
	var datasetHits int64
	var datasetOnce sync.Once

	// Phase 1 (concurrent): every researcher logs in and parks one
	// persistent VM on Adler. The barrier afterwards gives a sim timestamp
	// at which all persistent VMs are provably running, which makes
	// "usage becomes nonzero" deterministic rather than a timing accident.
	var wg sync.WaitGroup
	for i := range users {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &consoleClient{base: console.URL, res: &results[i]}
			if err := c.login(users[i]); err != nil {
				return
			}
			resp, _ := c.do("POST", "/console/launch", fmt.Sprintf(
				`{"cloud":%q,"name":"%s-home","flavor":"m1.small"}`, core.ClusterAdler, users[i]), http.StatusAccepted)
			if resp != nil && resp.StatusCode == http.StatusAccepted {
				results[i].launched++
			}
			drain(resp)
		}()
	}
	wg.Wait()
	vmsUpAt := f.Engine.Now()

	// Phase 2 (concurrent): the request storm. Each iteration launches a
	// scratch VM on Sullivan, walks every read route, terminates it, and
	// then thinks for opts.Think of wall time.
	for i := range users {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &consoleClient{base: console.URL, tok: results[i].token, res: &results[i]}
			for it := 0; it < opts.Iters; it++ {
				resp, _ := c.do("POST", "/console/launch", fmt.Sprintf(
					`{"cloud":%q,"name":"%s-it%d","flavor":"m1.small"}`, core.ClusterSullivan, users[i], it), http.StatusAccepted)
				var launch struct {
					Server tukey.TaggedServer `json:"server"`
				}
				if resp != nil {
					_ = json.NewDecoder(resp.Body).Decode(&launch)
					if resp.StatusCode == http.StatusAccepted {
						results[i].launched++
					}
				}
				drain(resp)

				resp, _ = c.do("GET", "/console/instances", "", http.StatusOK)
				drain(resp)
				resp, _ = c.do("GET", "/console/usage", "", http.StatusOK)
				drain(resp)
				resp, _ = c.do("GET", "/console/datasets?q=genomics", "", http.StatusOK)
				if resp != nil && resp.StatusCode == http.StatusOK {
					var ds struct {
						Datasets []json.RawMessage `json:"datasets"`
					}
					_ = json.NewDecoder(resp.Body).Decode(&ds)
					datasetOnce.Do(func() { datasetHits = int64(len(ds.Datasets)) })
				}
				drain(resp)
				resp, _ = c.do("GET", "/console/status", "", http.StatusOK)
				drain(resp)

				resp, _ = c.do("POST", "/console/terminate", fmt.Sprintf(
					`{"cloud":%q,"id":%q}`, core.ClusterSullivan, launch.Server.ID), http.StatusOK)
				drain(resp)

				if opts.Think > 0 {
					time.Sleep(opts.Think)
				}
			}
		}()
	}
	wg.Wait()

	// Phase 3: wait (wall-clock) until the persistent VMs have been up for
	// 31 simulated minutes on the billing engine, so the per-minute poll
	// has sampled them — then every researcher reads their usage and shuts
	// down. In the remote topology the clouds' clocks tick elsewhere;
	// billing samples whatever the sites report, so the console engine is
	// still the right clock to wait on.
	waitDeadline := time.Now().Add(10 * time.Second)
	for f.Engine.Now() < vmsUpAt+sim.Time(31*sim.Minute) {
		if time.Now().After(waitDeadline) {
			return scenario.Result{}, fmt.Errorf("console-load: clock driver advanced only to %v (from %v) in 10 s wall",
				f.Engine.Now(), vmsUpAt)
		}
		time.Sleep(time.Millisecond)
	}
	minCoreHours := -1.0
	for i := range users {
		c := &consoleClient{base: console.URL, tok: results[i].token, res: &results[i]}
		resp, err := c.do("GET", "/console/usage", "", http.StatusOK)
		if err != nil {
			return scenario.Result{}, err
		}
		var usage struct {
			CoreHours float64 `json:"core_hours"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&usage)
		drain(resp)
		if minCoreHours < 0 || usage.CoreHours < minCoreHours {
			minCoreHours = usage.CoreHours
		}
		resp, _ = c.do("POST", "/console/terminate", fmt.Sprintf(
			`{"cloud":%q,"id":%q}`, core.ClusterAdler, firstInstanceID(console.URL, results[i].token, core.ClusterAdler)), http.StatusOK)
		drain(resp)
	}
	wallElapsed := time.Since(wallStart)
	rig.stopDrivers()
	simElapsed := f.Engine.Now() - simStart

	// Aggregate.
	var all []time.Duration
	totalReqs, totalErrs, totalLimited, totalLaunched := 0, 0, 0, 0
	for i := range results {
		all = append(all, results[i].latencies...)
		totalReqs += len(results[i].latencies)
		totalErrs += results[i].errors
		totalLimited += results[i].limited
		totalLaunched += results[i].launched
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	usageNonzero := 0.0
	if minCoreHours > 0 {
		usageNonzero = 1
	}
	topology, remoteFlag := "single-process", 0.0
	if opts.Remote {
		topology, remoteFlag = "per-site remote", 1
	}
	clockFlag := 0.0
	if opts.ClockFollow {
		topology += " (followed clocks)"
		clockFlag = 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, "console load: %d researchers × (login + persistent VM + %d op loops), %s topology\n",
		opts.Users, opts.Iters, topology)
	fmt.Fprintln(&b, strings.Repeat("-", 72))
	fmt.Fprintf(&b, "requests         : %d total, %d errors, %d throttled, %d launches\n",
		totalReqs, totalErrs, totalLimited, totalLaunched)
	fmt.Fprintf(&b, "throughput       : %.0f req/s over %v wall\n", float64(totalReqs)/wallElapsed.Seconds(), wallElapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "latency          : p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
		quantileMs(all, 0.50), quantileMs(all, 0.95), quantileMs(all, 0.99))
	fmt.Fprintf(&b, "sim clock        : advanced %v while serving (speedup %d×)\n", sim.Time(simElapsed), consoleLoadSpeedup)
	fmt.Fprintf(&b, "metered usage    : every researcher nonzero (min %.2f core-hours)\n", minCoreHours)

	metrics := map[string]float64{
		"users":              float64(opts.Users),
		"iterations":         float64(opts.Iters),
		"think-ms":           float64(opts.Think) / float64(time.Millisecond),
		"remote-topology":    remoteFlag,
		"requests-total":     float64(totalReqs),
		"request-errors":     float64(totalErrs),
		"throttled-429":      float64(totalLimited),
		"instances-launched": float64(totalLaunched),
		"datasets-hits":      float64(datasetHits),
		"usage-nonzero":      usageNonzero,
		"live-rps":           float64(totalReqs) / wallElapsed.Seconds(),
		"live-p50-ms":        quantileMs(all, 0.50),
		"live-p95-ms":        quantileMs(all, 0.95),
		"live-p99-ms":        quantileMs(all, 0.99),
		"live-sim-minutes":   float64(simElapsed) / sim.Minute,
		"live-core-hours":    minCoreHours,
	}
	if opts.ClockFollow {
		metrics["clock-follow"] = clockFlag
		if coord := f.ClockSync; coord != nil {
			metrics["live-clock-syncs"] = float64(coord.Syncs())
			metrics["live-max-skew-s"] = coord.MaxSkew()
			metrics["live-max-skew-excess-s"] = coord.MaxExcess()
			fmt.Fprintf(&b, "clock plane      : %d syncs, max skew %.0f sim s (excess over one interval %.0f s)\n",
				coord.Syncs(), coord.MaxSkew(), coord.MaxExcess())
		}
	}
	return scenario.Result{Metrics: metrics, Table: b.String()}, nil
}

// kneeUserPoints is the user axis ConsoleKnee sweeps.
var kneeUserPoints = []int{8, 32, 128}

// kneeIters is the read loops per researcher at each point — enough
// requests for a stable p95, small enough that 128 users stay fast.
const kneeIters = 2

// ConsoleKnee probes console latency across the user axis: at each point N
// researchers log in and hammer the read routes (instances, usage,
// datasets, status) concurrently, in the single-process topology. The knee
// is the first point whose p95 exceeds twice the baseline p95 — the
// admission-control sizing number ROADMAP asked for.
func ConsoleKnee(seed uint64) (scenario.Result, error) {
	metrics := map[string]float64{"points": float64(len(kneeUserPoints))}
	var b strings.Builder
	fmt.Fprintf(&b, "console latency knee: read-route storm at %v researchers\n", kneeUserPoints)
	fmt.Fprintln(&b, strings.Repeat("-", 72))

	baseP95, knee := 0.0, 0.0
	for _, n := range kneeUserPoints {
		rig, err := startConsoleRig(seed, ConsoleLoadOpts{}, consoleLoadSpeedup)
		if err != nil {
			return scenario.Result{}, err
		}
		users, err := rig.enroll(n, iaas.FreeTierQuota())
		if err != nil {
			rig.close()
			return scenario.Result{}, err
		}
		results := make([]consoleLoadResult, n)
		var wg sync.WaitGroup
		for i := range users {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := &consoleClient{base: rig.console.URL, res: &results[i]}
				if err := c.login(users[i]); err != nil {
					return
				}
				for it := 0; it < kneeIters; it++ {
					for _, path := range []string{
						"/console/instances", "/console/usage",
						"/console/datasets?q=genomics", "/console/status",
					} {
						resp, _ := c.do("GET", path, "", http.StatusOK)
						drain(resp)
					}
				}
			}()
		}
		wg.Wait()
		rig.close()

		var all []time.Duration
		reqs, errs := 0, 0
		for i := range results {
			all = append(all, results[i].latencies...)
			reqs += len(results[i].latencies)
			errs += results[i].errors
		}
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		p95 := quantileMs(all, 0.95)
		if baseP95 == 0 {
			baseP95 = p95
		} else if knee == 0 && p95 > 2*baseP95 {
			knee = float64(n)
		}
		key := fmt.Sprintf("[%d-users]", n)
		metrics["requests-total"+key] = float64(reqs)
		metrics["request-errors"+key] = float64(errs)
		metrics["live-p50-ms"+key] = quantileMs(all, 0.50)
		metrics["live-p95-ms"+key] = p95
		fmt.Fprintf(&b, "%4d users: %4d requests, %d errors, p50 %.2f ms, p95 %.2f ms\n",
			n, reqs, errs, quantileMs(all, 0.50), p95)
	}
	metrics["live-knee-users"] = knee
	if knee > 0 {
		fmt.Fprintf(&b, "p95 knees (>2× the %d-user baseline) at %.0f users\n", kneeUserPoints[0], knee)
	} else {
		fmt.Fprintf(&b, "no p95 knee up to %d users (>2× the %d-user baseline)\n",
			kneeUserPoints[len(kneeUserPoints)-1], kneeUserPoints[0])
	}
	return scenario.Result{Metrics: metrics, Table: b.String()}, nil
}

// firstInstanceID fetches the caller's first live instance ID on cloud via
// the console listing (the persistent VM parked in phase 1).
func firstInstanceID(base, token, cloud string) string {
	req, _ := http.NewRequest("GET", base+"/console/instances", nil)
	req.Header.Set("X-Tukey-Session", token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	var list struct {
		Servers []tukey.TaggedServer `json:"servers"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&list)
	for _, s := range list.Servers {
		if s.Cloud == cloud {
			return s.ID
		}
	}
	return ""
}

// quantileMs returns the q-quantile (nearest-rank) of sorted durations, in
// milliseconds.
func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}
