package experiments

// The replication-sweep scenario exercises the data plane the paper
// describes but never measures: curated datasets held at a target
// replication factor across federation sites, moved by UDT-class flows
// over the shared WAN (§1, §4, §6.3). The sweep crosses the replication
// factor with the backbone bandwidth and reports how much the coordinator
// moved, how long convergence took in virtual time, and what the links
// saw — all deterministic functions of the seed.

import (
	"fmt"
	"strings"

	"osdc/internal/ark"
	"osdc/internal/datasets"
	"osdc/internal/datastore"
	"osdc/internal/dfs"
	"osdc/internal/scenario"
	"osdc/internal/sim"
	"osdc/internal/simdisk"
	"osdc/internal/simnet"
)

const replicationSweepDesc = "data plane: replication factor (1/2/3) × backbone bandwidth (1G/10G), coordinator convergence"

// sweepGB scales the catalog to gigabytes so the macro flow model stays
// fast at 1 Gbit while the byte ratios echo §4's disciplines.
const sweepGB = int64(1) << 30

// replicationSweepDatasets is the miniature catalog every sweep point
// replicates: names from §4, sizes scaled from TB to GB.
func replicationSweepDatasets() []datasets.Dataset {
	return []datasets.Dataset{
		{Name: "1000 Genomes", Discipline: "biology", SizeBytes: 8 * sweepGB},
		{Name: "EO-1 ALI and Hyperion", Discipline: "earth science", SizeBytes: 3 * sweepGB},
		{Name: "Common Crawl", Discipline: "information science", SizeBytes: 4 * sweepGB},
		{Name: "US Census", Discipline: "social science", SizeBytes: 1 * sweepGB},
	}
}

// sweepVolume builds a deterministic 2-brick volume for one sweep store.
func sweepVolume(e *sim.Engine, name string) (*dfs.Volume, error) {
	bricks := make([]*dfs.Brick, 2)
	for i := range bricks {
		d := simdisk.New(e, fmt.Sprintf("%s-d%d", name, i), 3072e6, 1136e6, 1<<40)
		bricks[i] = dfs.NewBrick(fmt.Sprintf("%s-b%d", name, i), fmt.Sprintf("%s-n%d", name, i), d)
	}
	return dfs.NewVolume(e, name, 2, dfs.Version33, bricks)
}

// replicationPoint runs one (factor, bandwidth) cell: a fresh four-site
// data plane — masters on OSDC-Root — converged by coordinator rounds.
func replicationPoint(seed uint64, factor int, backbone float64) (datastore.Stats, sim.Time, error) {
	e := sim.NewEngine(seed)
	wan := simnet.DefaultWAN()
	wan.Backbone = backbone
	nw := simnet.BuildOSDCTopology(e, wan)

	catVol, err := sweepVolume(e, "cat")
	if err != nil {
		return datastore.Stats{}, 0, err
	}
	cat := datasets.NewCatalog(ark.NewService(""), catVol)
	cat.AddCurator("curator")

	stores := make([]datastore.API, 0, 4)
	for _, s := range []struct{ name, loc string }{
		{"OSDC-Root", simnet.SiteChicagoKenwood},
		{"OSDC-Adler", simnet.SiteChicagoKenwood},
		{"OSDC-Sullivan", simnet.SiteChicagoNU},
		{"OCC-Matsu", simnet.SiteAMPATH},
	} {
		vol, err := sweepVolume(e, strings.ToLower(s.name))
		if err != nil {
			return datastore.Stats{}, 0, err
		}
		stores = append(stores, datastore.NewStore(s.name, s.loc, vol))
	}
	root := stores[0].(*datastore.Store)
	for _, d := range replicationSweepDatasets() {
		if _, err := cat.Publish("curator", d); err != nil {
			return datastore.Stats{}, 0, err
		}
		if err := root.Put(datastore.Replica{Dataset: d.Name, SizeBytes: d.SizeBytes, Version: 1}); err != nil {
			return datastore.Stats{}, 0, err
		}
	}

	coord := datastore.NewCoordinator(e, nw, cat, datastore.Options{Factor: factor, Seed: seed}, stores...)
	for rounds := 0; ; rounds++ {
		if rounds > 50 {
			return datastore.Stats{}, 0, fmt.Errorf("replication-sweep: factor %d did not converge", factor)
		}
		planned, _ := coord.Round()
		if planned == 0 && coord.InFlight() == 0 {
			break
		}
		if at, ok := coord.NextArrival(); ok {
			e.RunUntil(at)
		}
	}
	return coord.Stats(), e.Now(), nil
}

// ReplicationSweep crosses replication factor (1, 2, 3) with backbone
// bandwidth (1G, 10G) and reports bytes moved, convergence time, transfer
// counts and per-link retransmits per point.
func ReplicationSweep(seed uint64) (scenario.Result, error) {
	factors := []int{1, 2, 3}
	bands := []struct {
		label string
		bps   float64
	}{{"1G", 1 * simnet.Gbit}, {"10G", 10 * simnet.Gbit}}

	metrics := map[string]float64{"points": float64(len(factors) * len(bands))}
	var b strings.Builder
	fmt.Fprintf(&b, "replication sweep: 4 datasets (%d GB masters on OSDC-Root), 4 sites\n",
		totalSweepGB())
	fmt.Fprintln(&b, strings.Repeat("-", 76))
	fmt.Fprintf(&b, "%8s %6s %10s %12s %10s %8s %12s\n",
		"factor", "wan", "moved GB", "converge h", "transfers", "links", "retransmits")

	for _, f := range factors {
		for _, bw := range bands {
			st, at, err := replicationPoint(seed, f, bw.bps)
			if err != nil {
				return scenario.Result{}, err
			}
			key := fmt.Sprintf("[f%d-%s]", f, bw.label)
			movedGB := float64(st.BytesMoved) / float64(sweepGB)
			hours := float64(at) / sim.Hour
			metrics["moved-GB"+key] = movedGB
			metrics["converge-hours"+key] = hours
			metrics["transfers"+key] = float64(st.Transfers)
			metrics["links-used"+key] = float64(len(st.Links))
			metrics["retransmits"+key] = float64(st.Retransmits)
			metrics["max-in-flight"+key] = float64(st.MaxInFlight)
			fmt.Fprintf(&b, "%8d %6s %10.1f %12.3f %10d %8d %12d\n",
				f, bw.label, movedGB, hours, st.Transfers, len(st.Links), st.Retransmits)
		}
	}
	fmt.Fprintln(&b, "\nfactor 1 moves nothing (masters already placed); every added factor")
	fmt.Fprintln(&b, "re-ships the catalog once, and the 1G backbone pays several times the")
	fmt.Fprintln(&b, "10G wall (LAN-local placements dilute the pure-WAN ratio).")
	return scenario.Result{Metrics: metrics, Table: b.String()}, nil
}

func totalSweepGB() int64 {
	var n int64
	for _, d := range replicationSweepDatasets() {
		n += d.SizeBytes
	}
	return n / sweepGB
}
