package experiments

// Sharded live-path stress: a K=8 grid rig with console traffic racing
// boot/heartbeat/stop timers on every shard. Run under -race this is the
// integration check for the shard-homing lock discipline — API goroutines
// take bucket locks against callbacks firing concurrently on eight clock
// goroutines.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"osdc/internal/core"
	"osdc/internal/iaas"
	"osdc/internal/tukey"
)

func TestShardedConsoleGridRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("live-HTTP load scenario")
	}
	const bg = 1000
	opts := ConsoleLoadOpts{Shards: 8, BgInstances: bg}
	rig, err := startConsoleRig(7, opts, consoleGridSpeedup)
	if err != nil {
		t.Fatal(err)
	}
	defer rig.close()
	f := rig.f
	if f.Set.K() != 8 {
		t.Fatalf("rig kernel K = %d, want 8", f.Set.K())
	}

	// The background grid population, launched while the clock is live so
	// boots and heartbeats are already firing on their shards during the
	// console storm below.
	f.Adler.SetQuota(gridUser, iaas.Quota{MaxInstances: bg + 1, MaxCores: bg + 1})
	for i := 0; i < bg; i++ {
		if _, err := f.Adler.Launch(gridUser, fmt.Sprintf("bg-%06d", i), "m1.small", ""); err != nil {
			t.Fatal(err)
		}
	}

	users, err := rig.enroll(4, iaas.Quota{MaxInstances: 20, MaxCores: 40})
	if err != nil {
		t.Fatal(err)
	}

	// The storm: every researcher loops launch → list → usage → stop →
	// terminate against Adler, so the full lifecycle (including the
	// stop-path cancellation that must resolve the owning shard) races the
	// background timers.
	var wg sync.WaitGroup
	errCh := make(chan error, len(users))
	for _, u := range users {
		u := u
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := &consoleLoadResult{}
			c := &consoleClient{base: rig.console.URL, res: res}
			if err := c.login(u); err != nil {
				errCh <- err
				return
			}
			for it := 0; it < 8; it++ {
				resp, _ := c.do("POST", "/console/launch", fmt.Sprintf(
					`{"cloud":%q,"name":"%s-it%d","flavor":"m1.small"}`, core.ClusterAdler, u, it), http.StatusAccepted)
				var launch struct {
					Server tukey.TaggedServer `json:"server"`
				}
				if resp != nil {
					_ = json.NewDecoder(resp.Body).Decode(&launch)
				}
				drain(resp)
				resp, _ = c.do("GET", "/console/instances", "", http.StatusOK)
				drain(resp)
				resp, _ = c.do("GET", "/console/usage", "", http.StatusOK)
				drain(resp)
				resp, _ = c.do("POST", "/console/stop", fmt.Sprintf(
					`{"cloud":%q,"id":%q}`, core.ClusterAdler, launch.Server.ID), http.StatusOK)
				drain(resp)
				resp, _ = c.do("POST", "/console/terminate", fmt.Sprintf(
					`{"cloud":%q,"id":%q}`, core.ClusterAdler, launch.Server.ID), http.StatusOK)
				drain(resp)
			}
			if res.errors > 0 {
				errCh <- fmt.Errorf("%s saw %d unexpected statuses", u, res.errors)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The storm is quick; let the live clock reach the first heartbeat
	// window (gridHeartbeat sim seconds ≈ 3 s wall at this speedup) before
	// stopping the drivers.
	hbDeadline := time.Now().Add(10 * time.Second)
	for f.Adler.Heartbeats() == 0 && time.Now().Before(hbDeadline) {
		time.Sleep(10 * time.Millisecond)
	}

	rig.stopDrivers()
	if skew := f.Set.Skew(); skew != 0 {
		t.Errorf("shard skew %v after driver join, want 0", skew)
	}
	populated := 0
	for _, n := range f.Adler.ShardPopulation() {
		if n > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Errorf("grid population collapsed onto %d shard bucket(s)", populated)
	}
	if f.Adler.Heartbeats() == 0 {
		t.Error("no grid heartbeats fired during the storm")
	}
}
