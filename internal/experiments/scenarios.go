package experiments

// Every experiment in this package is exposed through the scenario
// registry, which is what cmd/osdc-bench, the root benchmarks, and the
// integration tests iterate. Porting an experiment means mapping its
// structured result onto scenario.Result: named numeric metrics (so sweeps
// can aggregate across seeds) plus the paper-style formatted table.

import (
	"fmt"
	"strings"

	"osdc/internal/scenario"
	"osdc/internal/sim"
	"osdc/internal/udr"
)

func init() {
	scenario.Register(scenario.New("table1",
		"Table 1 — commercial vs science CSP traffic characterization",
		func(seed uint64) (scenario.Result, error) {
			r := Table1(seed)
			return scenario.Result{
				Metrics: map[string]float64{
					"web-median-bytes":       float64(r.Web.MedianBytes),
					"web-elephant-share":     r.Web.ElephantShare,
					"web-incoming-share":     r.Web.IncomingShare,
					"science-median-bytes":   float64(r.Science.MedianBytes),
					"science-elephant-share": r.Science.ElephantShare,
					"science-incoming-share": r.Science.IncomingShare,
				},
				Table: FormatTable1(r),
			}, nil
		}))

	scenario.Register(scenario.New("table2",
		"Table 2 — OCC resource inventory",
		func(seed uint64) (scenario.Result, error) {
			rows, cores, disk, err := Table2(seed)
			if err != nil {
				return scenario.Result{}, err
			}
			return scenario.Result{
				Metrics: map[string]float64{
					"resources": float64(len(rows)),
					"cores":     float64(cores),
					"disk-TB":   float64(disk),
				},
				Table: FormatTable2(rows, cores, disk),
			}, nil
		}))

	scenario.Register(scenario.New("table3",
		"Table 3 — UDR vs rsync transfer matrix, Chicago↔LVOC (104 ms RTT)",
		func(seed uint64) (scenario.Result, error) {
			rows := Table3(seed)
			metrics := map[string]float64{}
			for _, r := range rows {
				metrics["mbit-108GB["+r.Config.String()+"]"] = r.Mbit108
				metrics["llr-108GB["+r.Config.String()+"]"] = r.LLR108
				metrics["mbit-1.1TB["+r.Config.String()+"]"] = r.Mbit1T
			}
			table := "measured (this reproduction):\n" + FormatTable3(rows) +
				"\npaper (Grossman et al. 2012, Table 3):\n" + FormatTable3(PaperTable3())
			return scenario.Result{Metrics: metrics, Table: table}, nil
		}))

	scenario.Register(scenario.New("fig1",
		"Figure 1 — Tukey end to end over live HTTP",
		func(seed uint64) (scenario.Result, error) {
			r, err := Figure1(seed)
			if err != nil {
				return scenario.Result{}, err
			}
			return scenario.Result{
				Metrics: map[string]float64{
					"instances-launched": float64(r.Launched),
					"clouds-aggregated":  float64(r.Clouds),
					"core-hours-2h":      r.CoreHours,
				},
				Table: r.Log,
			}, nil
		}))

	scenario.Register(scenario.New("fig2",
		"Figure 2 — Project Matsu flood detection on OCC-Matsu",
		func(seed uint64) (scenario.Result, error) {
			r, err := Figure2(seed, 256, 256)
			if err != nil {
				return scenario.Result{}, err
			}
			table := fmt.Sprintf("EO-1 Hyperion tiles over Namibia (≈ flood, ^ fire, . clear):\n%s"+
				"flooded tiles: %d/%d (%.2f km²), alerts: %d\n"+
				"mapreduce job: %v on OCC-Matsu, %.0f%% data-local maps\n",
				r.TileMap, r.FloodTiles, r.TotalTiles, r.FloodKm2, r.Alerts,
				sim.Time(r.JobDuration), 100*r.Locality)
			return scenario.Result{
				Metrics: map[string]float64{
					"flood-tiles":  float64(r.FloodTiles),
					"total-tiles":  float64(r.TotalTiles),
					"flood-km2":    r.FloodKm2,
					"alerts":       float64(r.Alerts),
					"job-seconds":  r.JobDuration,
					"map-locality": r.Locality,
				},
				Table: table,
			}, nil
		}))

	scenario.Register(scenario.New("fig3",
		"Figure 3 — OSDC cluster topology",
		func(seed uint64) (scenario.Result, error) {
			out, err := Figure3(seed)
			if err != nil {
				return scenario.Result{}, err
			}
			return scenario.Result{
				Metrics: map[string]float64{
					"clusters":   float64(strings.Count(out, "OSDC-") + strings.Count(out, "OCC-")),
					"full-tukey": float64(strings.Count(out, "solid")),
				},
				Table: out,
			}, nil
		}))

	scenario.Register(scenario.New("cost",
		"§9.1 — OSDC rack vs AWS utilization sweep",
		func(seed uint64) (scenario.Result, error) {
			r := CostSweep()
			osdcCheaper := 0
			for _, row := range r.Rows {
				if row.OSDCCheaper {
					osdcCheaper++
				}
			}
			return scenario.Result{
				Metrics: map[string]float64{
					"crossover-utilization": r.Crossover,
					"osdc-cheaper-points":   float64(osdcCheaper),
					"sweep-points":          float64(len(r.Rows)),
				},
				Table: FormatCostSweep(r),
			}, nil
		}))

	scenario.Register(scenario.New("provision",
		"§7.3 — bare metal to cloud, manual vs automated rack install",
		func(seed uint64) (scenario.Result, error) {
			r := Provisioning(seed)
			return scenario.Result{
				Metrics: map[string]float64{
					"automated-hours": r.AutomatedDur / sim.Hour,
					"manual-days":     r.ManualDur / sim.Day,
					"speedup":         r.Speedup,
					"retries":         float64(r.Retries),
				},
				Table: FormatProvisioning(r),
			}, nil
		}))

	scenario.Register(scenario.New("ciphers",
		"Cipher self-test and modeled throughput caps",
		func(seed uint64) (scenario.Result, error) {
			out, err := CipherSanity()
			if err != nil {
				return scenario.Result{}, err
			}
			metrics := map[string]float64{}
			for _, cfg := range udr.Table3Configs() {
				caps := cfg.Caps()
				metrics["cap-mbit["+cfg.String()+"]"] = caps.Min() / 1e6
			}
			return scenario.Result{Metrics: metrics, Table: out}, nil
		}))

	// mixed-workload's shards param runs the composition on the sharded
	// kernel; the default (1) is the historic single-engine run.
	scenario.Register(scenario.NewParametric("mixed-workload", mixedWorkloadDesc,
		map[string]float64{"shards": 1},
		func(seed uint64, params map[string]float64) (scenario.Result, error) {
			return MixedWorkload(seed, int(params["shards"]))
		}))
	scenario.Register(scenario.New("wan-contention", wanContentionDesc, WANContention))

	// console-load runs in both federation topologies and takes its
	// workload shape from scenario params (osdc-bench -param users=32,...).
	// shards > 1 puts the live path on the sharded kernel; bg-instances > 0
	// (single-process topology only) parks that many background VMs on
	// Adler first — the 10⁵-entity grid the sharded p95 benchmarks sweep.
	consoleLoadDefaults := map[string]float64{
		"users": 8, "iters": 5, "think-ms": 0, "shards": 1, "bg-instances": 0}
	scenario.Register(scenario.NewParametric("console-load", consoleLoadDesc, consoleLoadDefaults,
		func(seed uint64, params map[string]float64) (scenario.Result, error) {
			return ConsoleLoad(seed, consoleLoadOptsFrom(params, false, false))
		}))
	scenario.Register(scenario.NewParametric("console-load-remote", consoleLoadRemoteDesc, consoleLoadDefaults,
		func(seed uint64, params map[string]float64) (scenario.Result, error) {
			return ConsoleLoad(seed, consoleLoadOptsFrom(params, true, false))
		}))
	// The followed-clock variant: same workload, same per-site topology,
	// but every site engine takes its time from the console's coordinator.
	// Its deterministic request accounting must match the free-running
	// remote (and local) runs exactly — only the clocks move differently.
	scenario.Register(scenario.NewParametric("console-load-remote-sync", consoleLoadRemoteSyncDesc, consoleLoadDefaults,
		func(seed uint64, params map[string]float64) (scenario.Result, error) {
			return ConsoleLoad(seed, consoleLoadOptsFrom(params, true, true))
		}))
	// console-knee sweeps a (users × replicas) grid by default; fixing
	// either param (e.g. -param users=1024,replicas=4) runs one point.
	scenario.Register(scenario.NewParametric("console-knee", consoleKneeDesc,
		map[string]float64{"users": 0, "replicas": 0, "iters": 0},
		func(seed uint64, params map[string]float64) (scenario.Result, error) {
			return ConsoleKnee(seed, consoleKneeOptsFrom(params))
		}))
	scenario.Register(scenario.New("rate-limit-sweep", rateLimitSweepDesc, RateLimitSweep))

	// The sharded kernel's scale workload: defaults hit 10⁵ entities in a
	// few wall seconds; -param entities=1000000 stays within minutes.
	scenario.Register(scenario.NewParametric("million-entity", millionEntityDesc,
		map[string]float64{"entities": 100000, "shards": 8, "hours": 1},
		MillionEntity))

	// The data plane: replication-factor × bandwidth convergence sweep,
	// and the GRANDMA-style stage-then-compute campaign. Both run purely
	// on virtual clocks, so every metric is seed-deterministic.
	scenario.Register(scenario.New("replication-sweep", replicationSweepDesc, ReplicationSweep))
	scenario.Register(scenario.New("stage-and-compute", stageAndComputeDesc, StageAndCompute))

	// The telemetry plane end to end, on virtual clocks only: the full
	// /console/stream SSE transcript is golden-pinned byte for byte.
	scenario.Register(scenario.New("telemetry-stream", telemetryStreamDesc, TelemetryStream))
}
