package experiments

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"

	"osdc/internal/core"
	"osdc/internal/iaas"
	"osdc/internal/sim"
	"osdc/internal/tukey"
)

// Figure1Result captures the Figure 1 walk: every hop of user → Tukey
// Console → middleware → {OpenStack Adler, Eucalyptus Sullivan} → billing,
// performed over live HTTP servers.
type Figure1Result struct {
	Log       string  // the per-hop narration osdc-bench prints
	Launched  int     // instances created through the console
	Clouds    int     // distinct clouds visible in the aggregated listing
	CoreHours float64 // metered usage after two simulated hours
}

// Figure1 performs the Figure 1 walk with live HTTP servers at every hop.
// Unlike the other experiments it exercises real net/http round trips, so
// one run is slower than a pure-simulation scenario but still headless and
// safe to fan out across seeds.
func Figure1(seed uint64) (Figure1Result, error) {
	f, err := core.New(core.Options{Seed: seed, Scale: 8})
	if err != nil {
		return Figure1Result{}, err
	}
	novaSrv := httptest.NewServer(&iaas.NovaAPI{Cloud: f.Adler})
	defer novaSrv.Close()
	eucaSrv := httptest.NewServer(&iaas.EucaAPI{Cloud: f.Sullivan})
	defer eucaSrv.Close()
	f.Tukey.AttachCloud(tukey.CloudConfig{Name: core.ClusterAdler, Stack: "openstack", Endpoint: novaSrv.URL})
	f.Tukey.AttachCloud(tukey.CloudConfig{Name: core.ClusterSullivan, Stack: "eucalyptus", Endpoint: eucaSrv.URL})
	console := httptest.NewServer(&tukey.Console{MW: f.Tukey, Biller: f.Biller, Catalog: f.Catalog})
	defer console.Close()

	f.EnrollResearcher("demo", "demo-pw")
	f.Adler.SetQuota("demo", iaas.Quota{MaxInstances: 10, MaxCores: 64})
	f.Sullivan.SetQuota("demo", iaas.Quota{MaxInstances: 10, MaxCores: 64})

	var out Figure1Result
	var b strings.Builder

	resp, err := http.Post(console.URL+"/login", "application/json",
		strings.NewReader(`{"provider":"shibboleth","username":"demo","secret":"demo-pw"}`))
	if err != nil {
		return out, err
	}
	var login struct {
		Token string `json:"token"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&login); err != nil {
		return out, err
	}
	resp.Body.Close()
	fmt.Fprintf(&b, "login: shibboleth demo@uchicago.edu → session granted\n")

	for _, cloud := range []string{core.ClusterAdler, core.ClusterSullivan} {
		req, _ := http.NewRequest("POST", console.URL+"/console/launch",
			strings.NewReader(fmt.Sprintf(`{"cloud":%q,"name":"fig1","flavor":"m1.large"}`, cloud)))
		req.Header.Set("X-Tukey-Session", login.Token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return out, err
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted {
			out.Launched++
		}
		fmt.Fprintf(&b, "launch: m1.large on %-14s → HTTP %d (native dialect: %s)\n",
			cloud, resp.StatusCode, map[string]string{
				core.ClusterAdler: "OpenStack JSON", core.ClusterSullivan: "EC2 query/XML",
			}[cloud])
	}

	req, _ := http.NewRequest("GET", console.URL+"/console/instances", nil)
	req.Header.Set("X-Tukey-Session", login.Token)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		return out, err
	}
	var list struct {
		Servers []tukey.TaggedServer `json:"servers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return out, err
	}
	resp.Body.Close()
	fmt.Fprintln(&b, "aggregated OpenStack-format response:")
	clouds := map[string]bool{}
	for _, s := range list.Servers {
		clouds[s.Cloud] = true
		fmt.Fprintf(&b, "  cloud=%-14s id=%-22s status=%-6s flavor=%s\n", s.Cloud, s.ID, s.Status, s.Flavor)
	}
	out.Clouds = len(clouds)

	f.Engine.RunFor(2 * sim.Hour)
	u := f.Biller.CurrentUsage("demo")
	out.CoreHours = u.CoreHours()
	fmt.Fprintf(&b, "billing after 2 simulated hours: %.1f core-hours (8 cores running)\n", out.CoreHours)
	out.Log = b.String()
	return out, nil
}
