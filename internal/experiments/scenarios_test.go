package experiments

import (
	"reflect"
	"testing"

	"osdc/internal/scenario"
)

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"table1", "table2", "table3", "fig1", "fig2", "fig3",
		"cost", "provision", "ciphers", "mixed-workload", "wan-contention"}
	have := map[string]bool{}
	for _, n := range scenario.Names() {
		have[n] = true
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("scenario %q not registered", n)
		}
	}
}

func TestMixedWorkloadDeterministic(t *testing.T) {
	a, err := MixedWorkload(21)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MixedWorkload(21)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a.Metrics, b.Metrics)
	}
	if a.Metrics["vm-core-hours"] != 96 {
		t.Fatalf("4 m1.large for 6h = %v core-hours, want 96", a.Metrics["vm-core-hours"])
	}
	if a.Metrics["elephant-mbit"] <= 0 || a.Metrics["science-total-TB"] <= 0 {
		t.Fatalf("metrics incomplete: %v", a.Metrics)
	}
}

func TestWANContentionSharesThePipe(t *testing.T) {
	r, err := WANContention(11)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"1-flows", "2-flows", "4-flows", "8-flows"} {
		util := r.Metrics["utilization["+key+"]"]
		if util <= 0 || util > 1.02 {
			t.Fatalf("utilization[%s] = %v out of (0,1]", key, util)
		}
		if f := r.Metrics["fairness["+key+"]"]; f < 0.8 {
			t.Fatalf("fairness[%s] = %v, identical flows should share evenly", key, f)
		}
	}
	// Aggregate throughput must never exceed the bottleneck, and more
	// flows must not fill the pipe less than one flow does (ramp-up
	// amortizes across flows).
	if r.Metrics["utilization[8-flows]"] < r.Metrics["utilization[1-flows]"] {
		t.Fatalf("8 flows underused the path vs 1: %v", r.Metrics)
	}
}
