package experiments

import (
	"reflect"
	"strings"
	"testing"

	"osdc/internal/scenario"
)

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"table1", "table2", "table3", "fig1", "fig2", "fig3",
		"cost", "provision", "ciphers", "mixed-workload", "wan-contention",
		"console-load"}
	have := map[string]bool{}
	for _, n := range scenario.Names() {
		have[n] = true
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("scenario %q not registered", n)
		}
	}
}

func TestMixedWorkloadDeterministic(t *testing.T) {
	a, err := MixedWorkload(21)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MixedWorkload(21)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a.Metrics, b.Metrics)
	}
	if a.Metrics["vm-core-hours"] != 96 {
		t.Fatalf("4 m1.large for 6h = %v core-hours, want 96", a.Metrics["vm-core-hours"])
	}
	if a.Metrics["elephant-mbit"] <= 0 || a.Metrics["science-total-TB"] <= 0 {
		t.Fatalf("metrics incomplete: %v", a.Metrics)
	}
}

// deterministicAggregates strips the live- (wall-clock-measured) metrics
// from a sweep result, leaving only the seed-deterministic ones.
func deterministicAggregates(sr scenario.SweepResult) map[string]scenario.Aggregate {
	out := map[string]scenario.Aggregate{}
	for _, m := range sr.Metrics {
		if !strings.HasPrefix(m.Metric, "live-") {
			out[m.Metric] = m
		}
	}
	return out
}

// TestConsoleLoadSweepDeterministic runs the console-load scenario over a
// multi-seed sweep twice: the live latency metrics may differ run to run,
// but the request accounting must be bit-identical — concurrency must not
// leak into the deterministic surface.
func TestConsoleLoadSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("live-HTTP load scenario")
	}
	s, ok := scenario.Get("console-load")
	if !ok {
		t.Fatal("console-load not registered")
	}
	seeds := scenario.Seeds(31, 2)
	a, err := scenario.Sweep(s, seeds, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scenario.Sweep(s, seeds, 2)
	if err != nil {
		t.Fatal(err)
	}
	da, db := deterministicAggregates(a), deterministicAggregates(b)
	if len(da) == 0 {
		t.Fatalf("no deterministic metrics in %v", a.Metrics)
	}
	if !reflect.DeepEqual(da, db) {
		t.Fatalf("deterministic metrics diverged across identical sweeps:\n%v\nvs\n%v", da, db)
	}
	if agg := da["request-errors"]; agg.Max != 0 {
		t.Fatalf("console requests failed under load: %+v", agg)
	}
	if agg := da["usage-nonzero"]; agg.Min != 1 {
		t.Fatalf("a researcher saw zero usage despite the clock driver: %+v", agg)
	}
	// Every live- metric must still be reported (the whole point of the
	// scenario) even though its values float.
	for _, name := range []string{"live-rps", "live-p50-ms", "live-p95-ms", "live-p99-ms"} {
		found := false
		for _, m := range a.Metrics {
			if m.Metric == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("sweep lost metric %s: %v", name, a.Metrics)
		}
	}
}

func TestWANContentionSharesThePipe(t *testing.T) {
	r, err := WANContention(11)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"1-flows", "2-flows", "4-flows", "8-flows"} {
		util := r.Metrics["utilization["+key+"]"]
		if util <= 0 || util > 1.02 {
			t.Fatalf("utilization[%s] = %v out of (0,1]", key, util)
		}
		if f := r.Metrics["fairness["+key+"]"]; f < 0.8 {
			t.Fatalf("fairness[%s] = %v, identical flows should share evenly", key, f)
		}
	}
	// Aggregate throughput must never exceed the bottleneck, and more
	// flows must not fill the pipe less than one flow does (ramp-up
	// amortizes across flows).
	if r.Metrics["utilization[8-flows]"] < r.Metrics["utilization[1-flows]"] {
		t.Fatalf("8 flows underused the path vs 1: %v", r.Metrics)
	}
}
