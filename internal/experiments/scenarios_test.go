package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"osdc/internal/scenario"
)

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"table1", "table2", "table3", "fig1", "fig2", "fig3",
		"cost", "provision", "ciphers", "mixed-workload", "wan-contention",
		"console-load", "console-load-remote", "console-knee", "million-entity"}
	have := map[string]bool{}
	for _, n := range scenario.Names() {
		have[n] = true
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("scenario %q not registered", n)
		}
	}
}

func TestMixedWorkloadDeterministic(t *testing.T) {
	a, err := MixedWorkload(21, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MixedWorkload(21, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a.Metrics, b.Metrics)
	}
	if a.Metrics["vm-core-hours"] != 96 {
		t.Fatalf("4 m1.large for 6h = %v core-hours, want 96", a.Metrics["vm-core-hours"])
	}
	if a.Metrics["elephant-mbit"] <= 0 || a.Metrics["science-total-TB"] <= 0 {
		t.Fatalf("metrics incomplete: %v", a.Metrics)
	}
}

// TestMixedWorkloadShardInvariant: the sharded kernel changes which engine
// fires each instance timer, never what the run computes — every metric
// except the shards marker matches the single-engine run exactly.
func TestMixedWorkloadShardInvariant(t *testing.T) {
	serial, err := MixedWorkload(21, 1)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := MixedWorkload(21, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Metrics["shards"] != 8 {
		t.Fatalf("sharded run did not report its shard count: %v", sharded.Metrics)
	}
	if _, ok := serial.Metrics["shards"]; ok {
		t.Fatalf("K=1 run leaked the shards key (golden would change): %v", serial.Metrics)
	}
	for key, want := range serial.Metrics {
		if got := sharded.Metrics[key]; got != want {
			t.Fatalf("%s diverged on the sharded kernel: K=1 %v, K=8 %v", key, want, got)
		}
	}
}

// deterministicAggregates strips the live- (wall-clock-measured) metrics
// from a sweep result, leaving only the seed-deterministic ones.
func deterministicAggregates(sr scenario.SweepResult) map[string]scenario.Aggregate {
	out := map[string]scenario.Aggregate{}
	for _, m := range sr.Metrics {
		if !strings.HasPrefix(m.Metric, "live-") {
			out[m.Metric] = m
		}
	}
	return out
}

// TestConsoleLoadSweepDeterministic runs the console-load scenario over a
// multi-seed sweep twice: the live latency metrics may differ run to run,
// but the request accounting must be bit-identical — concurrency must not
// leak into the deterministic surface.
func TestConsoleLoadSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("live-HTTP load scenario")
	}
	s, ok := scenario.Get("console-load")
	if !ok {
		t.Fatal("console-load not registered")
	}
	seeds := scenario.Seeds(31, 2)
	a, err := scenario.Sweep(s, seeds, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scenario.Sweep(s, seeds, 2)
	if err != nil {
		t.Fatal(err)
	}
	da, db := deterministicAggregates(a), deterministicAggregates(b)
	if len(da) == 0 {
		t.Fatalf("no deterministic metrics in %v", a.Metrics)
	}
	if !reflect.DeepEqual(da, db) {
		t.Fatalf("deterministic metrics diverged across identical sweeps:\n%v\nvs\n%v", da, db)
	}
	if agg := da["request-errors"]; agg.Max != 0 {
		t.Fatalf("console requests failed under load: %+v", agg)
	}
	if agg := da["usage-nonzero"]; agg.Min != 1 {
		t.Fatalf("a researcher saw zero usage despite the clock driver: %+v", agg)
	}
	// Every live- metric must still be reported (the whole point of the
	// scenario) even though its values float.
	for _, name := range []string{"live-rps", "live-p50-ms", "live-p95-ms", "live-p99-ms"} {
		found := false
		for _, m := range a.Metrics {
			if m.Metric == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("sweep lost metric %s: %v", name, a.Metrics)
		}
	}
}

// TestConsoleLoadRemoteTopology runs the same workload in the per-site
// topology: every cloud behind its own engine and listener, billing
// sampling over the wire. The deterministic surface must match the
// single-process run: same request count, zero errors, usage metered.
func TestConsoleLoadRemoteTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("live-HTTP load scenario")
	}
	remote, err := ConsoleLoad(31, ConsoleLoadOpts{Users: 8, Iters: 5, Remote: true})
	if err != nil {
		t.Fatal(err)
	}
	local, err := ConsoleLoad(31, ConsoleLoadOpts{Users: 8, Iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"requests-total", "request-errors", "instances-launched", "usage-nonzero"} {
		if remote.Metrics[key] != local.Metrics[key] {
			t.Fatalf("%s diverged across topologies: remote=%v local=%v",
				key, remote.Metrics[key], local.Metrics[key])
		}
	}
	if remote.Metrics["request-errors"] != 0 {
		t.Fatalf("remote topology saw request errors: %v", remote.Metrics)
	}
	if remote.Metrics["usage-nonzero"] != 1 {
		t.Fatalf("remote topology metered no usage: %v", remote.Metrics)
	}
	if remote.Metrics["remote-topology"] != 1 || local.Metrics["remote-topology"] != 0 {
		t.Fatalf("topology flags wrong: remote=%v local=%v",
			remote.Metrics["remote-topology"], local.Metrics["remote-topology"])
	}
}

// TestConsoleLoadParams pins that scenario params actually reshape the
// workload: more users and iterations mean proportionally more requests.
func TestConsoleLoadParams(t *testing.T) {
	if testing.Short() {
		t.Skip("live-HTTP load scenario")
	}
	p, ok := scenario.Get("console-load")
	if !ok {
		t.Fatal("console-load not registered")
	}
	param, ok := p.(scenario.Parametric)
	if !ok {
		t.Fatal("console-load is not parametric")
	}
	small, err := param.With(map[string]float64{"users": 2, "iters": 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := small.Run(77)
	if err != nil {
		t.Fatal(err)
	}
	// 2 users × (login + persistent launch) + 2 × 1 iteration × 6 ops
	// + 2 × (usage + terminate) in the wind-down.
	if got := r.Metrics["requests-total"]; got != 2*2+2*6+2*2 {
		t.Fatalf("requests-total = %v with users=2 iters=1, want 20", got)
	}
	if r.Metrics["users"] != 2 || r.Metrics["iterations"] != 1 {
		t.Fatalf("params not reflected in metrics: %v", r.Metrics)
	}
	if _, err := param.With(map[string]float64{"no-such-param": 1}); err == nil {
		t.Fatal("unknown parameter silently accepted")
	}
}

// TestConsoleKneeShape checks one cheap grid point of the (users ×
// replicas) sweep end to end: 2 replica consoles over a live state plane
// behind the balancer, with exact request accounting and zero errors.
// (The full default grid is pinned by the osdc-bench golden.)
func TestConsoleKneeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("live-HTTP load scenario")
	}
	const users, replicas = 32, 2
	r, err := ConsoleKnee(13, ConsoleKneeOpts{Users: users, Replicas: replicas})
	if err != nil {
		t.Fatal(err)
	}
	key := fmt.Sprintf("[%d-users,%d-replicas]", users, replicas)
	// login + iters × 4 read routes per user.
	want := float64(users * (1 + kneeIters*4))
	if got := r.Metrics["requests-total"+key]; got != want {
		t.Fatalf("requests-total%s = %v, want %v", key, got, want)
	}
	if errs := r.Metrics["request-errors"+key]; errs != 0 {
		t.Fatalf("request-errors%s = %v", key, errs)
	}
	if _, ok := r.Metrics["live-p95-ms"+key]; !ok {
		t.Fatalf("missing p95 for %s: %v", key, r.Metrics)
	}
	if k, ok := r.Metrics[fmt.Sprintf("live-knee-users[%d-replicas]", replicas)]; !ok || k != 0 {
		t.Fatalf("single-point run should report knee 0, got %v (present %v)", k, ok)
	}
}

func TestWANContentionSharesThePipe(t *testing.T) {
	r, err := WANContention(11)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"1-flows", "2-flows", "4-flows", "8-flows"} {
		util := r.Metrics["utilization["+key+"]"]
		if util <= 0 || util > 1.02 {
			t.Fatalf("utilization[%s] = %v out of (0,1]", key, util)
		}
		if f := r.Metrics["fairness["+key+"]"]; f < 0.8 {
			t.Fatalf("fairness[%s] = %v, identical flows should share evenly", key, f)
		}
	}
	// Aggregate throughput must never exceed the bottleneck, and more
	// flows must not fill the pipe less than one flow does (ramp-up
	// amortizes across flows).
	if r.Metrics["utilization[8-flows]"] < r.Metrics["utilization[1-flows]"] {
		t.Fatalf("8 flows underused the path vs 1: %v", r.Metrics)
	}
}
