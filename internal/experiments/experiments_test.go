package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestChicagoLVOCPathMatchesPaperTestbed(t *testing.T) {
	p := ChicagoLVOCPath(1)
	if math.Abs(p.RTT-0.104) > 0.001 {
		t.Fatalf("RTT = %v, want 104 ms", p.RTT)
	}
	if p.BandwidthBps != 10e9 {
		t.Fatalf("bandwidth = %v, want 10G", p.BandwidthBps)
	}
}

func TestTable3Deterministic(t *testing.T) {
	a := Table3(99)
	b := Table3(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across identical seeds", i)
		}
	}
}

func TestPaperTable3RowOrderMatchesConfigs(t *testing.T) {
	rows := PaperTable3()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Mbit108 != 752 || rows[4].Mbit1T != 285 {
		t.Fatalf("paper constants wrong: %+v", rows)
	}
}

func TestTable1MatchesClassShapes(t *testing.T) {
	r := Table1(5)
	if r.Web.MedianBytes >= r.Science.MedianBytes {
		t.Fatal("web median not smaller than science median")
	}
	if r.Science.ElephantShare < 0.9 {
		t.Fatalf("science elephant share %.2f", r.Science.ElephantShare)
	}
}

func TestTable2Totals(t *testing.T) {
	rows, cores, disk, err := Table2(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || cores != 2296 || disk != 3348 {
		t.Fatalf("inventory = %d rows, %d cores, %d TB", len(rows), cores, disk)
	}
}

func TestFigure2DetectsFlood(t *testing.T) {
	r, err := Figure2(8, 128, 128)
	if err != nil {
		t.Fatal(err)
	}
	if r.FloodTiles == 0 || r.FloodKm2 <= 0 {
		t.Fatalf("no flood: %+v", r)
	}
	if r.JobDuration <= 0 {
		t.Fatal("mapreduce job took no time")
	}
}

func TestCostSweepCrossoverNearPaper(t *testing.T) {
	r := CostSweep()
	if r.Crossover < 0.72 || r.Crossover > 0.88 {
		t.Fatalf("crossover %.2f, want ≈0.80", r.Crossover)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("sweep rows = %d", len(r.Rows))
	}
}

func TestProvisioningClaim(t *testing.T) {
	r := Provisioning(3)
	if r.ManualDur <= 7*86400 {
		t.Fatalf("manual = %v, want > a week", r.ManualDur)
	}
	if r.AutomatedDur >= 86400 {
		t.Fatalf("automated = %v, want < a day", r.AutomatedDur)
	}
	if r.Speedup < 7 {
		t.Fatalf("speedup %.1f", r.Speedup)
	}
}

func TestFormattersContainKeyContent(t *testing.T) {
	if out := FormatTable3(PaperTable3()); !strings.Contains(out, "108 GB Data Set") {
		t.Fatal("table 3 header missing")
	}
	fig3, err := Figure3(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig3, "OCC-Matsu") {
		t.Fatal("figure 3 missing Matsu")
	}
	sanity, err := CipherSanity()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"none", "blowfish", "3des"} {
		if !strings.Contains(sanity, c) {
			t.Fatalf("cipher sanity missing %s", c)
		}
	}
}
