// Package experiments regenerates every table and figure in the paper's
// evaluation. Each experiment returns a structured result plus a formatted
// rendition matching the paper's presentation; cmd/osdc-bench and the
// repository-root benchmarks are thin wrappers over these functions.
//
// Index (see DESIGN.md §3):
//
//	Table1   — commercial vs science CSP traffic characterization
//	Table2   — OCC resource inventory
//	Table3   — UDR vs rsync transfer matrix (the paper's headline numbers)
//	Figure1  — Tukey end-to-end over live HTTP
//	Figure2  — Matsu flood detection tile map
//	Figure3  — federation topology
//	Cost     — §9.1 utilization crossover sweep
//	Provision— §7.3 manual vs automated rack install
//	Billing  — §6.4 a month of metering
package experiments

import (
	"fmt"
	"strings"

	"osdc/internal/cipher"
	"osdc/internal/core"
	"osdc/internal/cost"
	"osdc/internal/matsu"
	"osdc/internal/provision"
	"osdc/internal/sim"
	"osdc/internal/simnet"
	"osdc/internal/transport"
	"osdc/internal/udr"
	"osdc/internal/workload"
)

// Table3Row is one row of Table 3 for one dataset size.
type Table3Row struct {
	Config  udr.Config
	Mbit108 float64 // 108 GB dataset
	LLR108  float64
	Mbit1T  float64 // 1.1 TB dataset
	LLR1T   float64
}

// PaperTable3 returns the paper's measured values for EXPERIMENTS.md
// comparison, in the same row order as Table3.
func PaperTable3() []Table3Row {
	cfgs := udr.Table3Configs()
	vals := [][4]float64{
		{752, 0.66, 738, 0.64},
		{401, 0.35, 405, 0.36},
		{394, 0.35, 396, 0.35},
		{280, 0.25, 281, 0.25},
		{284, 0.25, 285, 0.25},
	}
	out := make([]Table3Row, len(cfgs))
	for i, c := range cfgs {
		out[i] = Table3Row{Config: c, Mbit108: vals[i][0], LLR108: vals[i][1],
			Mbit1T: vals[i][2], LLR1T: vals[i][3]}
	}
	return out
}

// ChicagoLVOCPath builds the measured path of §7.2: Chicago ↔ LVOC,
// 104 ms RTT over 10G.
func ChicagoLVOCPath(seed uint64) transport.Path {
	e := sim.NewEngine(seed)
	nw := simnet.BuildOSDCTopology(e, simnet.DefaultWAN())
	simnet.AttachHost(nw, "adler-xfer", simnet.SiteChicagoKenwood)
	simnet.AttachHost(nw, "lvoc-xfer", simnet.SiteLVOC)
	return transport.PathBetween(nw, "adler-xfer", "lvoc-xfer")
}

// Table3 runs the full transfer matrix. Sizes in bytes default to the
// paper's 108 GB and 1.1 TB.
func Table3(seed uint64) []Table3Row {
	path := ChicagoLVOCPath(seed)
	rng := sim.NewRNG(seed)
	const size108 = 108 << 30
	const size1T = int64(11) << 40 / 10 // 1.1 TB
	var rows []Table3Row
	for _, cfg := range udr.Table3Configs() {
		r108, caps := udr.Transfer(rng, cfg, path, size108)
		r1t, _ := udr.Transfer(rng, cfg, path, size1T)
		rows = append(rows, Table3Row{
			Config:  cfg,
			Mbit108: r108.ThroughputMbit(), LLR108: r108.LLR(caps),
			Mbit1T: r1t.ThroughputMbit(), LLR1T: r1t.LLR(caps),
		})
	}
	return rows
}

// FormatTable3 renders rows the way the paper prints Table 3.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s | %-16s | %-16s\n", "", "108 GB Data Set", "1.1 TB Data Set")
	fmt.Fprintf(&b, "%-24s | %8s %7s | %8s %7s\n", "", "mbit/s", "LLR", "mbit/s", "LLR")
	fmt.Fprintln(&b, strings.Repeat("-", 64))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s | %8.0f %7.2f | %8.0f %7.2f\n",
			r.Config.String(), r.Mbit108, r.LLR108, r.Mbit1T, r.LLR1T)
	}
	return b.String()
}

// Table1Result contrasts the two CSP traffic classes.
type Table1Result struct {
	Web     workload.Stats
	Science workload.Stats
}

// Table1 generates and characterizes both traffic classes.
func Table1(seed uint64) Table1Result {
	rng := sim.NewRNG(seed)
	p := workload.DefaultParams()
	return Table1Result{
		Web:     workload.Characterize(workload.Generate(rng, workload.ClassWeb, p)),
		Science: workload.Characterize(workload.Generate(rng, workload.ClassScience, p)),
	}
}

// FormatTable1 renders the measured contrast alongside the paper's
// qualitative rows.
func FormatTable1(r Table1Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s | %-34s | %-34s\n", "", "Commercial CSP", "Science CSP")
	fmt.Fprintln(&b, strings.Repeat("-", 86))
	fmt.Fprintf(&b, "%-12s | %-34s | %-34s\n", "Flows",
		fmt.Sprintf("lots of small web flows (med %s)", humanBytes(r.Web.MedianBytes)),
		fmt.Sprintf("large in+out data flows (med %s)", humanBytes(r.Science.MedianBytes)))
	fmt.Fprintf(&b, "%-12s | %-34s | %-34s\n", "Elephants",
		fmt.Sprintf("%.1f%% of bytes in ≥1GB flows", 100*r.Web.ElephantShare),
		fmt.Sprintf("%.1f%% of bytes in ≥1GB flows", 100*r.Science.ElephantShare))
	fmt.Fprintf(&b, "%-12s | %-34s | %-34s\n", "Direction",
		fmt.Sprintf("%.0f%% bytes incoming (responses out)", 100*r.Web.IncomingShare),
		fmt.Sprintf("%.0f%% bytes incoming (symmetric)", 100*r.Science.IncomingShare))
	fmt.Fprintf(&b, "%-12s | %-34s | %-34s\n", "Accounting", "essential", "essential (per-minute core polls)")
	fmt.Fprintf(&b, "%-12s | %-34s | %-34s\n", "Lock in", "lock in is good", "portable images, UDR export")
	return b.String()
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<40:
		return fmt.Sprintf("%.1fTB", float64(n)/(1<<40))
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Table2 builds the federation and returns the inventory.
func Table2(seed uint64) ([]core.InventoryRow, int, int64, error) {
	f, err := core.New(core.Options{Seed: seed, Scale: 8})
	if err != nil {
		return nil, 0, 0, err
	}
	rows := f.Inventory()
	cores, disk := f.Totals()
	return rows, cores, disk, nil
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []core.InventoryRow, cores int, diskTB int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-46s %s\n", "Resource", "Type", "Size")
	fmt.Fprintln(&b, strings.Repeat("-", 92))
	for _, r := range rows {
		size := fmt.Sprintf("%d TB disk", r.DiskTB)
		if r.Cores > 0 {
			size = fmt.Sprintf("%d cores and %d TB disk", r.Cores, r.DiskTB)
		}
		fmt.Fprintf(&b, "%-24s %-46s %s\n", r.Resource, r.Type, size)
	}
	fmt.Fprintf(&b, "TOTAL: %d cores, %.1f PB\n", cores, float64(diskTB)/1024)
	return b.String()
}

// Figure2Result is the Matsu run.
type Figure2Result struct {
	TileMap     string
	FloodTiles  int
	TotalTiles  int
	FloodKm2    float64
	Alerts      int
	JobDuration sim.Duration
	Locality    float64
}

// Figure2 synthesizes a Hyperion-like scene over Namibia, processes
// L0→L1, and runs flood detection on the OCC-Matsu MapReduce cluster.
func Figure2(seed uint64, w, h int) (Figure2Result, error) {
	f, err := core.New(core.Options{Seed: seed, Scale: 8})
	if err != nil {
		return Figure2Result{}, err
	}
	rng := sim.NewRNG(seed)
	raw := matsu.SynthesizeScene(rng, "EO1-HYP-NAMIBIA", matsu.SynthSpec{
		W: w, H: h, FloodFrac: 0.22, FireSpots: 3, NoiseSigma: 20,
	})
	l1 := matsu.CalibrateL0ToL1(raw, -18.96, 16.0) // Namibia
	res, tiles, err := matsu.RunOnCluster(f.Matsu, l1, 32)
	if err != nil {
		return Figure2Result{}, err
	}
	out := Figure2Result{
		TileMap: matsu.TileMap(tiles), TotalTiles: len(tiles),
		FloodKm2: matsu.FloodArea(tiles), Alerts: len(matsu.Alerts(tiles)),
		JobDuration: res.Duration(), Locality: res.LocalityFraction(),
	}
	for _, t := range tiles {
		if t.Flooded {
			out.FloodTiles++
		}
	}
	return out, nil
}

// Figure3 renders the federation wiring.
func Figure3(seed uint64) (string, error) {
	f, err := core.New(core.Options{Seed: seed, Scale: 8})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-18s %-12s %s\n", "Cluster", "Site", "Stack", "Tukey")
	fmt.Fprintln(&b, strings.Repeat("-", 60))
	for _, r := range f.Topology() {
		arrow := "partial (some services)"
		if r.FullTukey {
			arrow = "solid (fully operational)"
		}
		fmt.Fprintf(&b, "%-16s %-18s %-12s %s\n", r.Cluster, r.Site, r.Stack, arrow)
	}
	return b.String(), nil
}

// CostSweepResult is the §9.1 sweep.
type CostSweepResult struct {
	Rows      []cost.Comparison
	Crossover float64
}

// CostSweep runs the utilization sweep.
func CostSweep() CostSweepResult {
	rack, costs, aws := cost.PaperRack(), cost.Defaults2012(), cost.AWS2012()
	utils := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	return CostSweepResult{
		Rows:      cost.Sweep(rack, costs, aws, utils),
		Crossover: cost.Crossover(rack, costs, aws),
	}
}

// FormatCostSweep renders the sweep.
func FormatCostSweep(r CostSweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-14s %-16s %-12s %s\n", "Utilization", "Rack $/yr", "AWS-equiv $/yr", "$/core-hr", "Cheaper")
	fmt.Fprintln(&b, strings.Repeat("-", 68))
	for _, row := range r.Rows {
		who := "AWS"
		if row.OSDCCheaper {
			who = "OSDC"
		}
		fmt.Fprintf(&b, "%-12.0f %-14.0f %-16.0f %-12.4f %s\n",
			row.Utilization*100, row.RackAnnual, row.AWSEquivalent, row.RackPerCoreHr, who)
	}
	fmt.Fprintf(&b, "crossover at %.0f%% utilization (paper: ~80%%)\n", r.Crossover*100)
	return b.String()
}

// ProvisionResult is the §7.3 comparison.
type ProvisionResult struct {
	AutomatedDur sim.Duration
	ManualDur    sim.Duration
	Speedup      float64
	Retries      int
}

// Provisioning compares the automated pipeline to the manual install for a
// 39-server rack.
func Provisioning(seed uint64) ProvisionResult {
	e := sim.NewEngine(seed)
	p := provision.NewPipeline(e, provision.DefaultDurations(), 16, 0.02)
	rack := provision.ProvisionRack(e, p, 39)
	manual := provision.ManualRackTime(provision.DefaultManual(), 39)
	return ProvisionResult{
		AutomatedDur: rack.Duration, ManualDur: manual,
		Speedup: manual / rack.Duration, Retries: rack.Retries,
	}
}

// FormatProvisioning renders the comparison.
func FormatProvisioning(r ProvisionResult) string {
	return fmt.Sprintf(
		"manual first rack install : %v  (paper: \"over a week\")\n"+
			"automated PXE/IPMI/Chef   : %v  (paper: \"much less than a day\")\n"+
			"speedup                   : %.1fx  (transient failures retried: %d)\n",
		sim.Time(r.ManualDur), sim.Time(r.AutomatedDur), r.Speedup, r.Retries)
}

// CipherSanity verifies the real cipher round trips used in Table 3 and
// reports the modeled throughput caps.
func CipherSanity() (string, error) {
	msg := []byte("OSDC cipher self-test: Chicago to Livermore, 104 ms away")
	var b strings.Builder
	for _, name := range []cipher.Name{cipher.None, cipher.Blowfish, cipher.TripleDES} {
		enc, err := cipher.NewStream(name, []byte("bench-key"), []byte("iv"))
		if err != nil {
			return "", err
		}
		dec, err := cipher.NewStream(name, []byte("bench-key"), []byte("iv"))
		if err != nil {
			return "", err
		}
		ct := make([]byte, len(msg))
		enc.Process(ct, msg)
		pt := make([]byte, len(ct))
		dec.Process(pt, ct)
		if string(pt) != string(msg) {
			return "", fmt.Errorf("cipher %s failed round trip", name)
		}
		fmt.Fprintf(&b, "%-10s udr-cap=%5.0f mbit/s  ssh-cap=%5.0f mbit/s\n", name,
			cipher.ThroughputBps(name, cipher.ImplUDR)/1e6,
			cipher.ThroughputBps(name, cipher.ImplSSH)/1e6)
	}
	return b.String(), nil
}
