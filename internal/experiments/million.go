package experiments

// The million-entity scenario is the sharded kernel's scale proof: a
// mixed-workload-shaped population — heartbeating m1-class instances plus
// long-running science flows, the same two classes Table 1 characterizes —
// at 10⁵–10⁶ entities, pinned to K engine shards by stable ID hash and
// advanced in lockstep windows. Heartbeats are phase-aligned to whole
// seconds so each tick lands hundreds of same-timestamp events per shard
// (the batch-dispatch hot path), and every entity cycles one pooled
// sim.Timer (the zero-alloc reschedule hot path). Every metric is a
// deterministic function of the seed: per-shard accumulators are owned by
// their shard's callbacks and only summed — in shard order — after the
// advance joins.

import (
	"fmt"
	"math"
	"strings"

	"osdc/internal/scenario"
	"osdc/internal/sim"
)

const millionEntityDesc = "sharded kernel at scale: 10⁵–10⁶ heartbeating instances + science flows over K shards"

const (
	// Web instances heartbeat on whole-second phases every 120 s, so each
	// simulated second carries a same-tick batch on every shard.
	millionHeartbeat = 120 * sim.Second
	// Science flows run back-to-back transfers at 1 Gbit/s with
	// Pareto-tailed sizes (alpha 1.1, 1 GB scale): the Table 1 elephant
	// shape, cheap enough to draw per transfer.
	millionFlowRate   = 125e6 // bytes per simulated second
	millionFlowScale  = 1e9   // Pareto scale: minimum transfer bytes
	millionFlowAlpha  = 1.1
	millionWindows    = 6
	millionWebPerFlow = 10 // 1 in 10 entities is a science flow
)

// millionShardStats is one shard's accumulator set. It is written only by
// callbacks on the owning shard (the ShardSet determinism contract) and
// read only after RunUntil joins.
type millionShardStats struct {
	entities   int
	flows      int
	heartbeats uint64
	transfers  uint64
	bytes      float64
}

// MillionEntity runs the sharded-kernel scale workload. Parameters:
// entities (total population), shards (kernel width), hours (simulated
// duration). The default 100 000 entities over 8 shards completes in a few
// wall seconds; entities=1000000 stays within minutes.
func MillionEntity(seed uint64, params map[string]float64) (scenario.Result, error) {
	entities := int(params["entities"])
	shards := int(params["shards"])
	hours := params["hours"]
	if entities < 1 || shards < 1 || hours <= 0 {
		return scenario.Result{}, fmt.Errorf("million-entity: bad params entities=%d shards=%d hours=%v",
			entities, shards, hours)
	}
	deadline := sim.Time(hours * float64(sim.Hour))

	set := sim.NewShardSet(seed, shards)
	stats := make([]millionShardStats, set.K())

	// Population: every entity owns exactly one pooled Timer on the shard
	// its ID hashes to. Setup runs serially before any advance, so the
	// per-shard RNG draws here are part of the deterministic stream.
	hbSeconds := int(millionHeartbeat / sim.Second)
	for i := 0; i < entities; i++ {
		id := fmt.Sprintf("ent-%07d", i)
		si := set.ShardIndex(id)
		e := set.ShardAt(si)
		st := &stats[si]
		st.entities++
		if i%millionWebPerFlow == millionWebPerFlow-1 {
			// Science flow: transfer completes, bytes land, next size is
			// drawn from the owning shard's RNG, timer re-arms for its
			// wire time. One event per transfer, zero allocs per cycle.
			st.flows++
			var tm *sim.Timer
			size := millionDrawSize(e)
			tm = sim.NewTimer(e, func() {
				st.transfers++
				st.bytes += size
				size = millionDrawSize(e)
				tm.Reset(sim.Duration(size / millionFlowRate))
			})
			start := sim.Time(e.RandFloat64() * float64(millionHeartbeat))
			tm.ResetAt(start + sim.Time(size/millionFlowRate))
		} else {
			// Web instance: whole-second heartbeat phase, fixed period —
			// every entity sharing a phase fires in one same-tick batch.
			var tm *sim.Timer
			tm = sim.NewTimer(e, func() {
				st.heartbeats++
				tm.Reset(millionHeartbeat)
			})
			tm.ResetAt(sim.Time(i % hbSeconds))
		}
	}

	// Advance in lockstep windows, the same cadence a clock coordinator
	// imposes on federated sites. Between windows every shard sits at the
	// common target (skew 0) and the aggregate fired counter is stable.
	var progress strings.Builder
	window := sim.Duration(deadline) / millionWindows
	for w := 1; w <= millionWindows; w++ {
		set.RunUntil(sim.Time(window) * sim.Time(w))
		if skew := set.Skew(); skew != 0 {
			return scenario.Result{}, fmt.Errorf("million-entity: shard skew %v after window %d", skew, w)
		}
		fmt.Fprintf(&progress, "  window %d/%d: t=%6.0fs  events fired %d\n",
			w, millionWindows, float64(set.Now()), set.Fired())
	}

	// Sum in shard order: each shard's accumulation order is its event
	// order, so the totals are bit-stable run to run.
	var total millionShardStats
	var b strings.Builder
	fmt.Fprintf(&b, "million-entity (seed %d): %d entities over %d shards, %.2g h simulated\n",
		seed, entities, set.K(), hours)
	fmt.Fprintln(&b, strings.Repeat("-", 72))
	fmt.Fprintf(&b, "%-6s %10s %8s %12s %12s %10s\n",
		"shard", "entities", "flows", "heartbeats", "transfers", "TB moved")
	for i := range stats {
		st := &stats[i]
		total.entities += st.entities
		total.flows += st.flows
		total.heartbeats += st.heartbeats
		total.transfers += st.transfers
		total.bytes += st.bytes
		fmt.Fprintf(&b, "%-6d %10d %8d %12d %12d %10.2f\n",
			i, st.entities, st.flows, st.heartbeats, st.transfers, st.bytes/1e12)
	}
	fmt.Fprintln(&b, strings.Repeat("-", 72))
	fmt.Fprintf(&b, "%-6s %10d %8d %12d %12d %10.2f\n",
		"total", total.entities, total.flows, total.heartbeats, total.transfers, total.bytes/1e12)
	fmt.Fprintf(&b, "lockstep advance (%d windows):\n%s", millionWindows, progress.String())

	return scenario.Result{
		Metrics: map[string]float64{
			"entities":       float64(total.entities),
			"shards":         float64(set.K()),
			"web-instances":  float64(total.entities - total.flows),
			"science-flows":  float64(total.flows),
			"heartbeats":     float64(total.heartbeats),
			"transfers":      float64(total.transfers),
			"science-TB":     total.bytes / 1e12,
			"events-fired":   float64(set.Fired()),
			"pending-final":  float64(set.Pending()),
			"skew-final-sec": float64(set.Skew()),
		},
		Table: b.String(),
	}, nil
}

// millionDrawSize draws one Pareto-tailed transfer size from the shard's
// RNG. The quantile is clamped so the tail stays heavy but finite.
func millionDrawSize(e *sim.Engine) float64 {
	u := e.RandFloat64()
	if u > 0.9999 {
		u = 0.9999
	}
	return millionFlowScale / math.Pow(1-u, 1/millionFlowAlpha)
}
