package experiments

// The stage-and-compute scenario is the GRANDMA shape (PAPERS.md):
// a multi-site observation campaign stages shared imagery to the site
// that will compute on it, launches instances there, and accrues metered
// usage — the paper's "compute next to the data" workflow (§4) end to
// end through the console: catalog search → stage → launch → usage.
//
// Everything runs on the federation's virtual clock (no wall-clock
// drivers), so every metric is a deterministic function of the seed: the
// stage ETA is the simulated UDT flow's duration over the Chicago metro
// WAN, and the core-hours are the billing poller's accrual across the
// post-launch RunFor.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"

	"osdc/internal/core"
	"osdc/internal/datastore"
	"osdc/internal/iaas"
	"osdc/internal/scenario"
	"osdc/internal/sim"
	"osdc/internal/tukey"
)

const stageAndComputeDesc = "GRANDMA-style campaign: stage EO-1 imagery to a site over the console, launch there, accrue usage"

// stageDataset is the imagery the campaign stages: §4's EO-1 archive,
// 30 TB of it, mastered on OSDC-Root.
const stageDataset = "EO-1 ALI and Hyperion"

// stageClient is a minimal sequential console client; requests issue one
// at a time, so the federation engine only advances when the scenario
// says so and the run stays deterministic.
type stageClient struct {
	base string
	tok  string
}

func (c *stageClient) do(method, path, body string) (*http.Response, error) {
	req, err := http.NewRequest(method, c.base+path, strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	if c.tok != "" {
		req.Header.Set("X-Tukey-Session", c.tok)
	}
	return http.DefaultClient.Do(req)
}

func (c *stageClient) json(method, path, body string, wantStatus int, into interface{}) error {
	resp, err := c.do(method, path, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		return fmt.Errorf("%s %s: status %d, want %d", method, path, resp.StatusCode, wantStatus)
	}
	if into == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// StageAndCompute stages the EO-1 archive from OSDC-Root to OSDC-Sullivan
// through the console, launches the campaign's instances on that cloud,
// lets two hours of metering accrue, and reports the whole path.
func StageAndCompute(seed uint64) (scenario.Result, error) {
	f, err := core.New(core.Options{Seed: seed, Scale: 8})
	if err != nil {
		return scenario.Result{}, err
	}
	// Manual rounds: the scenario owns the engine, so the coordinator
	// runs with no background loop and stays deterministic.
	coord := f.StartReplication(core.ReplicationOptions{Factor: 1, Seed: seed})
	defer f.StopReplication()

	// The campaign provisions through the in-process transports: same
	// engine, no wall-clock anywhere.
	f.Tukey.AttachCloud(tukey.CloudConfig{API: f.AdlerAPI})
	f.Tukey.AttachCloud(tukey.CloudConfig{API: f.SullivanAPI})

	console := &tukey.Console{MW: f.Tukey, Biller: f.Biller, Catalog: f.Catalog,
		UsageMon: f.UsageMon, Replication: coord}
	srv := httptest.NewServer(console)
	defer srv.Close()

	const user = "grandma"
	f.EnrollResearcher(user, "pw-"+user)
	for _, api := range []interface {
		SetQuota(string, iaas.Quota) error
	}{f.AdlerAPI, f.SullivanAPI} {
		if err := api.SetQuota(user, iaas.Quota{MaxInstances: 8, MaxCores: 64}); err != nil {
			return scenario.Result{}, err
		}
	}

	c := &stageClient{base: srv.URL}
	var login struct {
		Token string `json:"token"`
	}
	if err := c.json("POST", "/login",
		fmt.Sprintf(`{"provider":"shibboleth","username":%q,"secret":%q}`, user, "pw-"+user),
		http.StatusOK, &login); err != nil {
		return scenario.Result{}, err
	}
	c.tok = login.Token

	// 1. Find the imagery in the catalog (the Matsu tag marks it).
	var search struct {
		Datasets []json.RawMessage `json:"datasets"`
	}
	if err := c.json("GET", "/console/datasets?q=matsu", "", http.StatusOK, &search); err != nil {
		return scenario.Result{}, err
	}

	// 2. Stage it to the compute site: Root (Kenwood) → Sullivan (NU)
	// crosses the metro WAN as one simulated UDT flow.
	var st datastore.StageStatus
	if err := c.json("POST", "/console/datasets/stage",
		fmt.Sprintf(`{"dataset":%q,"cloud":%q}`, stageDataset, core.ClusterSullivan),
		http.StatusAccepted, &st); err != nil {
		return scenario.Result{}, err
	}
	stageHours := st.ETASecs / sim.Hour

	// 3. The transfer rides the virtual clock; once it lands, staging
	// again reports the replica present.
	f.Engine.RunFor(st.ETASecs + sim.Minute)
	if err := c.json("POST", "/console/datasets/stage",
		fmt.Sprintf(`{"dataset":%q,"cloud":%q}`, stageDataset, core.ClusterSullivan),
		http.StatusOK, &st); err != nil {
		return scenario.Result{}, err
	}
	if st.State != "present" {
		return scenario.Result{}, fmt.Errorf("stage-and-compute: replica %q after the ETA", st.State)
	}

	// 4. Launch the campaign next to the data.
	launched := 0
	for i := 0; i < 2; i++ {
		if err := c.json("POST", "/console/launch",
			fmt.Sprintf(`{"cloud":%q,"name":"grandma-%d","flavor":"m1.large"}`, core.ClusterSullivan, i),
			http.StatusAccepted, nil); err != nil {
			return scenario.Result{}, err
		}
		launched++
	}

	// 5. Two hours of observation: the billing poller meters the VMs on
	// the same virtual clock the transfer rode.
	f.Engine.RunFor(2 * sim.Hour)
	var usage struct {
		CoreHours float64 `json:"core_hours"`
	}
	if err := c.json("GET", "/console/usage", "", http.StatusOK, &usage); err != nil {
		return scenario.Result{}, err
	}

	// 6. Placement view: the imagery now lives at two sites.
	var view struct {
		Placement []datastore.PlacementRow `json:"placement"`
	}
	coord.Round() // refresh the observed inventories
	if err := c.json("GET", "/console/datasets/replicas?dataset=EO-1+ALI+and+Hyperion", "",
		http.StatusOK, &view); err != nil {
		return scenario.Result{}, err
	}
	replicas := 0
	if len(view.Placement) == 1 {
		replicas = len(view.Placement[0].Sites)
	}

	stats := coord.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "stage-and-compute: %s (%d TB) staged %s → %s, then %d × m1.large for 2 h\n",
		stageDataset, int64(30), core.ClusterRoot, core.ClusterSullivan, launched)
	fmt.Fprintln(&b, strings.Repeat("-", 76))
	fmt.Fprintf(&b, "catalog search   : %d hits for 'matsu'\n", len(search.Datasets))
	fmt.Fprintf(&b, "stage transfer   : %.2f h over the metro WAN (%d retransmits)\n", stageHours, stats.Retransmits)
	fmt.Fprintf(&b, "placement        : %d sites hold the imagery\n", replicas)
	fmt.Fprintf(&b, "metered usage    : %.1f core-hours across the campaign\n", usage.CoreHours)

	return scenario.Result{
		Metrics: map[string]float64{
			"catalog-hits":     float64(len(search.Datasets)),
			"stage-tb":         float64(stats.BytesMoved) / float64(core.TB),
			"stage-hours":      stageHours,
			"stage-retransmit": float64(stats.Retransmits),
			"replica-sites":    float64(replicas),
			"launched":         float64(launched),
			"core-hours":       usage.CoreHours,
		},
		Table: b.String(),
	}, nil
}
