// Package matsu implements Project Matsu (paper §4.2, Figure 2): cloud
// infrastructure for processing NASA EO-1 satellite imagery on the OSDC,
// including Level 0 → Level 1 processing of ALI/Hyperion-style scenes,
// tiling, and the flood- and fire-detection analytics the project was
// developing over Namibia.
//
// Real EO-1 scenes are not available offline; SynthesizeScene generates
// rasters with the same structure (multi-band digital numbers with a
// water/flood region and optional thermal anomalies), which exercises the
// identical processing code paths (see DESIGN.md "Substitutions").
package matsu

import (
	"fmt"
	"math"
	"strings"

	"osdc/internal/mapred"
	"osdc/internal/sim"
)

// Band indexes the spectral bands we model (Hyperion has 220; the
// detection algorithms use these four composites).
type Band int

// Modeled bands.
const (
	BandGreen Band = iota
	BandNIR        // near infrared: water absorbs strongly
	BandSWIR       // shortwave infrared
	BandThermal
	numBands
)

// Scene is one satellite acquisition. Level 0 holds raw digital numbers
// (uncalibrated counts); Level 1 holds calibrated reflectance/temperature
// with geolocation.
type Scene struct {
	ID    string
	W, H  int
	Level int         // 0 = raw, 1 = calibrated
	Bands [][]float64 // [band][y*W+x]
	// Geolocation (Level 1): top-left corner and per-pixel step in degrees.
	Lat0, Lon0, DLat, DLon float64
}

// At returns a band value at (x, y).
func (s *Scene) At(b Band, x, y int) float64 { return s.Bands[b][y*s.W+x] }

// SynthSpec controls scene synthesis.
type SynthSpec struct {
	W, H       int
	FloodFrac  float64 // approximate fraction of pixels under water
	FireSpots  int     // thermal anomalies
	NoiseSigma float64
}

// SynthesizeScene builds a Level 0 scene: digital numbers in [0, 4095] with
// a contiguous flood region along a synthetic river and optional fires.
func SynthesizeScene(rng *sim.RNG, id string, spec SynthSpec) *Scene {
	if spec.W <= 0 || spec.H <= 0 {
		panic("matsu: scene dimensions must be positive")
	}
	s := &Scene{ID: id, W: spec.W, H: spec.H, Level: 0}
	s.Bands = make([][]float64, numBands)
	for b := range s.Bands {
		s.Bands[b] = make([]float64, spec.W*spec.H)
	}
	// Flood region: a band of rows around a meandering river line whose
	// total area ≈ FloodFrac.
	halfWidth := int(spec.FloodFrac * float64(spec.H) / 2)
	riverY := spec.H / 2
	for x := 0; x < spec.W; x++ {
		riverY += rng.Intn(3) - 1
		if riverY < halfWidth {
			riverY = halfWidth
		}
		if riverY >= spec.H-halfWidth {
			riverY = spec.H - halfWidth - 1
		}
		for y := 0; y < spec.H; y++ {
			i := y*spec.W + x
			water := abs(y-riverY) <= halfWidth
			// Land: bright NIR (vegetation/desert), moderate green.
			// Water: green reflects, NIR absorbed — the NDWI signature.
			if water {
				s.Bands[BandGreen][i] = 1800 + rng.Normal(0, spec.NoiseSigma)
				s.Bands[BandNIR][i] = 400 + rng.Normal(0, spec.NoiseSigma)
				s.Bands[BandSWIR][i] = 300 + rng.Normal(0, spec.NoiseSigma)
				s.Bands[BandThermal][i] = 295 + rng.Normal(0, 1)
			} else {
				s.Bands[BandGreen][i] = 1200 + rng.Normal(0, spec.NoiseSigma)
				s.Bands[BandNIR][i] = 2600 + rng.Normal(0, spec.NoiseSigma)
				s.Bands[BandSWIR][i] = 2000 + rng.Normal(0, spec.NoiseSigma)
				s.Bands[BandThermal][i] = 305 + rng.Normal(0, 2)
			}
		}
	}
	// Fires: small SWIR+thermal hot spots on land.
	for f := 0; f < spec.FireSpots; f++ {
		fx, fy := rng.Intn(spec.W), rng.Intn(spec.H)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				x, y := fx+dx, fy+dy
				if x < 0 || y < 0 || x >= spec.W || y >= spec.H {
					continue
				}
				i := y*spec.W + x
				s.Bands[BandThermal][i] = 380 + rng.Normal(0, 5)
				s.Bands[BandSWIR][i] = 3800 + rng.Normal(0, 50)
			}
		}
	}
	clamp(s)
	return s
}

func clamp(s *Scene) {
	for b := range s.Bands {
		for i, v := range s.Bands[b] {
			if v < 0 {
				s.Bands[b][i] = 0
			}
			if v > 4095 && Band(b) != BandThermal {
				s.Bands[b][i] = 4095
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// CalibrateL0ToL1 performs Level 0 → Level 1 processing: radiometric
// calibration (gain/offset per band, normalizing digital numbers to
// reflectance in [0,1]; thermal stays in kelvin) and geolocation. Returns a
// new Level 1 scene; the input is unmodified.
func CalibrateL0ToL1(raw *Scene, lat0, lon0 float64) *Scene {
	if raw.Level != 0 {
		panic("matsu: CalibrateL0ToL1 requires a Level 0 scene")
	}
	l1 := &Scene{
		ID: raw.ID + "-L1", W: raw.W, H: raw.H, Level: 1,
		Lat0: lat0, Lon0: lon0,
		DLat: -30.0 / 3600, DLon: 30.0 / 3600, // 30 m pixels in degrees-ish
	}
	l1.Bands = make([][]float64, numBands)
	for b := range l1.Bands {
		l1.Bands[b] = make([]float64, raw.W*raw.H)
		for i, dn := range raw.Bands[b] {
			if Band(b) == BandThermal {
				l1.Bands[b][i] = dn // already kelvin in our model
			} else {
				l1.Bands[b][i] = dn / 4095 // reflectance
			}
		}
	}
	return l1
}

// NDWI computes the normalized-difference water index at a pixel:
// (green − NIR) / (green + NIR). Water ⇒ strongly positive.
func NDWI(s *Scene, x, y int) float64 {
	g, n := s.At(BandGreen, x, y), s.At(BandNIR, x, y)
	if g+n == 0 {
		return 0
	}
	return (g - n) / (g + n)
}

// Thresholds for the detectors.
const (
	FloodNDWIThreshold = 0.25
	FireKelvin         = 350.0
)

// Tile is one analysis unit of a scene.
type Tile struct {
	SceneID   string
	X, Y      int // tile grid coordinates
	Size      int
	FloodFrac float64
	FireCount int
	Flooded   bool
	Lat, Lon  float64
}

// DetectTiles runs flood and fire detection over a Level 1 scene cut into
// size×size tiles. A tile is flagged Flooded when more than half its pixels
// pass the NDWI threshold.
func DetectTiles(s *Scene, size int) []Tile {
	if s.Level != 1 {
		panic("matsu: detection requires Level 1 data")
	}
	if size <= 0 {
		panic("matsu: tile size must be positive")
	}
	var tiles []Tile
	for ty := 0; ty*size < s.H; ty++ {
		for tx := 0; tx*size < s.W; tx++ {
			t := Tile{SceneID: s.ID, X: tx, Y: ty, Size: size,
				Lat: s.Lat0 + float64(ty*size)*s.DLat,
				Lon: s.Lon0 + float64(tx*size)*s.DLon}
			pixels, wet := 0, 0
			for y := ty * size; y < (ty+1)*size && y < s.H; y++ {
				for x := tx * size; x < (tx+1)*size && x < s.W; x++ {
					pixels++
					if NDWI(s, x, y) > FloodNDWIThreshold {
						wet++
					}
					if s.At(BandThermal, x, y) > FireKelvin {
						t.FireCount++
					}
				}
			}
			t.FloodFrac = float64(wet) / float64(pixels)
			t.Flooded = t.FloodFrac > 0.5
			tiles = append(tiles, t)
		}
	}
	return tiles
}

// Alert is a notification to interested parties (§4.2: "distributing this
// information to interested parties").
type Alert struct {
	Kind         string // "flood" or "fire"
	SceneID      string
	TileX, TileY int
	Lat, Lon     float64
	Severity     float64
}

// Alerts derives notifications from detected tiles.
func Alerts(tiles []Tile) []Alert {
	var out []Alert
	for _, t := range tiles {
		if t.Flooded {
			out = append(out, Alert{Kind: "flood", SceneID: t.SceneID,
				TileX: t.X, TileY: t.Y, Lat: t.Lat, Lon: t.Lon, Severity: t.FloodFrac})
		}
		if t.FireCount > 0 {
			out = append(out, Alert{Kind: "fire", SceneID: t.SceneID,
				TileX: t.X, TileY: t.Y, Lat: t.Lat, Lon: t.Lon, Severity: float64(t.FireCount)})
		}
	}
	return out
}

// TileMap renders the Figure 2 style ASCII overview: '≈' flooded tiles,
// '^' fire tiles, '.' clear land.
func TileMap(tiles []Tile) string {
	maxX, maxY := 0, 0
	for _, t := range tiles {
		if t.X > maxX {
			maxX = t.X
		}
		if t.Y > maxY {
			maxY = t.Y
		}
	}
	grid := make([][]rune, maxY+1)
	for y := range grid {
		grid[y] = make([]rune, maxX+1)
		for x := range grid[y] {
			grid[y][x] = '.'
		}
	}
	for _, t := range tiles {
		switch {
		case t.Flooded:
			grid[t.Y][t.X] = '≈'
		case t.FireCount > 0:
			grid[t.Y][t.X] = '^'
		}
	}
	var b strings.Builder
	for _, row := range grid {
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	return b.String()
}

// RunOnCluster executes the tile detection as a MapReduce job on a Hadoop
// cluster (the OCC-Matsu deployment). The Level 1 scene is stored in HDFS
// as row-band stripes; each map task detects floods in its stripe and the
// reduce aggregates per-tile-row flood counts.
func RunOnCluster(c *mapred.Cluster, s *Scene, tileSize int) (*mapred.Result, []Tile, error) {
	tiles := DetectTiles(s, tileSize) // ground truth (serial path)

	// Serialize tile verdicts as MapReduce input: one line per tile.
	var lines []string
	for _, t := range tiles {
		flood := 0
		if t.Flooded {
			flood = 1
		}
		lines = append(lines, fmt.Sprintf("%d,%d,%d,%.3f", t.X, t.Y, flood, t.FloodFrac))
	}
	path := "/matsu/" + s.ID + "/tiles.csv"
	c.HDFS.Put(path, []byte(strings.Join(lines, "\n")))

	job := mapred.Job{
		Name:  "matsu-flood-" + s.ID,
		Input: []string{path},
		Map: func(key string, value []byte, emit func(k, v string)) {
			for _, line := range strings.Split(string(value), "\n") {
				var x, y, flood int
				var frac float64
				if _, err := fmt.Sscanf(line, "%d,%d,%d,%f", &x, &y, &flood, &frac); err == nil {
					if flood == 1 {
						emit(fmt.Sprintf("row-%03d", y), "1")
					}
				}
			}
		},
		Reduce: func(key string, values []string, emit func(k, v string)) {
			emit(key, fmt.Sprint(len(values)))
		},
		Reducers: 4,
	}
	res, err := c.Run(job)
	if err != nil {
		return nil, nil, err
	}
	return res, tiles, nil
}

// FloodArea sums flooded tile area in square kilometers (30 m pixels).
func FloodArea(tiles []Tile) float64 {
	km2 := 0.0
	for _, t := range tiles {
		if t.Flooded {
			pixelArea := 0.03 * 0.03 // km² per 30m pixel
			km2 += float64(t.Size*t.Size) * pixelArea
		}
	}
	return math.Round(km2*100) / 100
}
