package matsu

import (
	"fmt"
	"strings"
	"testing"

	"osdc/internal/mapred"
	"osdc/internal/sim"
)

func synth(t *testing.T, spec SynthSpec) (*sim.RNG, *Scene) {
	t.Helper()
	rng := sim.NewRNG(101)
	return rng, SynthesizeScene(rng, "EO1-NAM-001", spec)
}

func TestSceneSynthesisBands(t *testing.T) {
	_, s := synth(t, SynthSpec{W: 128, H: 128, FloodFrac: 0.2, NoiseSigma: 30})
	if s.Level != 0 {
		t.Fatal("synthesized scene must be Level 0")
	}
	for b := Band(0); b < numBands; b++ {
		if len(s.Bands[b]) != 128*128 {
			t.Fatalf("band %d size wrong", b)
		}
	}
}

func TestCalibrationNormalizes(t *testing.T) {
	_, raw := synth(t, SynthSpec{W: 64, H: 64, FloodFrac: 0.2, NoiseSigma: 20})
	l1 := CalibrateL0ToL1(raw, -19.0, 16.0)
	if l1.Level != 1 {
		t.Fatal("not level 1")
	}
	for _, v := range l1.Bands[BandGreen] {
		if v < 0 || v > 1 {
			t.Fatalf("reflectance %v out of [0,1]", v)
		}
	}
	// Thermal stays physical.
	if l1.At(BandThermal, 0, 0) < 250 {
		t.Fatal("thermal band was wrongly normalized")
	}
	// Geolocation assigned.
	if l1.Lat0 != -19.0 || l1.DLon == 0 {
		t.Fatal("geolocation missing")
	}
	// Raw scene unmodified.
	if raw.Level != 0 || raw.At(BandGreen, 0, 0) <= 1 {
		t.Fatal("input scene mutated")
	}
}

func TestCalibrateRejectsL1(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, raw := synth(t, SynthSpec{W: 8, H: 8})
	l1 := CalibrateL0ToL1(raw, 0, 0)
	CalibrateL0ToL1(l1, 0, 0)
}

func TestNDWISeparatesWaterFromLand(t *testing.T) {
	_, raw := synth(t, SynthSpec{W: 64, H: 64, FloodFrac: 0.3, NoiseSigma: 10})
	l1 := CalibrateL0ToL1(raw, -19, 16)
	// Center row is the river.
	water := NDWI(l1, 32, 32)
	land := NDWI(l1, 32, 2)
	if water <= FloodNDWIThreshold {
		t.Fatalf("water NDWI = %v, want > %v", water, FloodNDWIThreshold)
	}
	if land >= 0 {
		t.Fatalf("land NDWI = %v, want negative", land)
	}
}

func TestDetectTilesFindsFloodBand(t *testing.T) {
	_, raw := synth(t, SynthSpec{W: 256, H: 256, FloodFrac: 0.25, NoiseSigma: 20})
	l1 := CalibrateL0ToL1(raw, -19, 16)
	tiles := DetectTiles(l1, 32)
	if len(tiles) != 64 {
		t.Fatalf("tiles = %d, want 64", len(tiles))
	}
	flooded := 0
	for _, t := range tiles {
		if t.Flooded {
			flooded++
		}
	}
	// ~25% of rows are water → roughly 1-3 of 8 tile rows flood-dominated.
	if flooded < 8 || flooded > 32 {
		t.Fatalf("flooded tiles = %d of 64, want 8–32", flooded)
	}
}

func TestFireDetection(t *testing.T) {
	rng := sim.NewRNG(55)
	raw := SynthesizeScene(rng, "fire-scene", SynthSpec{W: 128, H: 128, FloodFrac: 0.05, FireSpots: 5, NoiseSigma: 10})
	l1 := CalibrateL0ToL1(raw, -19, 16)
	tiles := DetectTiles(l1, 32)
	fires := 0
	for _, t := range tiles {
		fires += t.FireCount
	}
	if fires == 0 {
		t.Fatal("no fire pixels detected despite 5 hot spots")
	}
	alerts := Alerts(tiles)
	hasFire := false
	for _, a := range alerts {
		if a.Kind == "fire" {
			hasFire = true
		}
	}
	if !hasFire {
		t.Fatal("no fire alert raised")
	}
}

func TestNoFloodNoAlerts(t *testing.T) {
	rng := sim.NewRNG(56)
	raw := SynthesizeScene(rng, "dry", SynthSpec{W: 64, H: 64, FloodFrac: 0.0, NoiseSigma: 10})
	l1 := CalibrateL0ToL1(raw, -19, 16)
	tiles := DetectTiles(l1, 16)
	for _, a := range Alerts(tiles) {
		if a.Kind == "flood" {
			t.Fatal("flood alert on a dry scene")
		}
	}
}

func TestTileMapRendersFloodRows(t *testing.T) {
	_, raw := synth(t, SynthSpec{W: 128, H: 128, FloodFrac: 0.3, NoiseSigma: 15})
	l1 := CalibrateL0ToL1(raw, -19, 16)
	tiles := DetectTiles(l1, 16)
	m := TileMap(tiles)
	if !strings.Contains(m, "≈") {
		t.Fatalf("tile map has no flood glyphs:\n%s", m)
	}
	if strings.Count(m, "\n") != 8 {
		t.Fatalf("tile map rows = %d, want 8", strings.Count(m, "\n"))
	}
}

func TestRunOnClusterMatchesSerialDetection(t *testing.T) {
	e := sim.NewEngine(77)
	nodes := []string{"m0", "m1", "m2", "m3"}
	fs := mapred.NewHDFS(e, nodes, 4<<10, 2)
	cluster := mapred.NewCluster(e, "occ-matsu", fs, 2)
	rng := sim.NewRNG(9)
	raw := SynthesizeScene(rng, "EO1-NAM-042", SynthSpec{W: 256, H: 256, FloodFrac: 0.25, NoiseSigma: 15})
	l1 := CalibrateL0ToL1(raw, -19, 16)
	res, tiles, err := RunOnCluster(cluster, l1, 32)
	if err != nil {
		t.Fatal(err)
	}
	// The reduce output (flooded tiles per row) must sum to the serial
	// flood count.
	serial := 0
	for _, tl := range tiles {
		if tl.Flooded {
			serial++
		}
	}
	mrTotal := 0
	for _, kv := range res.Output {
		var n int
		if _, err := fmt.Sscan(kv.Value, &n); err != nil {
			t.Fatal(err)
		}
		mrTotal += n
	}
	if mrTotal != serial {
		t.Fatalf("mapreduce found %d flooded tiles, serial found %d", mrTotal, serial)
	}
	if res.Duration() <= 0 {
		t.Fatal("job took no simulated time")
	}
}

func TestFloodAreaPositiveWhenFlooded(t *testing.T) {
	_, raw := synth(t, SynthSpec{W: 128, H: 128, FloodFrac: 0.3, NoiseSigma: 10})
	l1 := CalibrateL0ToL1(raw, -19, 16)
	tiles := DetectTiles(l1, 16)
	if FloodArea(tiles) <= 0 {
		t.Fatal("no flood area measured")
	}
}
