// Package workload generates the synthetic traffic and datasets that stand
// in for the OSDC's production workloads (see DESIGN.md "Substitutions").
//
// Table 1 of the paper contrasts commercial and science cloud service
// providers: commercial CSPs see "lots of small web flows" while science
// CSPs "also [see] large incoming and outgoing data flows". FlowGen
// produces both traffic classes with the appropriate size distributions so
// the benchmark can measure the contrast; the dataset synthesizers feed the
// Matsu and Bionimbus pipelines.
package workload

import (
	"fmt"
	"math"
	"sort"

	"osdc/internal/sim"
)

// FlowClass selects a traffic mix.
type FlowClass string

// The two Table 1 traffic classes.
const (
	ClassWeb     FlowClass = "web"     // commercial: many small request/response flows
	ClassScience FlowClass = "science" // research: elephant dataset transfers
)

// FlowSpec is one generated transfer demand.
type FlowSpec struct {
	Class    FlowClass
	Bytes    int64
	Incoming bool // toward the provider (upload) vs outgoing
	Start    sim.Time
}

// GenParams tunes the generator.
type GenParams struct {
	Flows int
	// Web flows: lognormal, median ~20 KB, occasionally MBs.
	WebMu, WebSigma float64
	// Science flows: Pareto with multi-GB scale and a heavy tail into TBs.
	ParetoScale float64 // bytes
	ParetoAlpha float64
	// Science traffic is symmetric (datasets both arrive and leave);
	// commercial web traffic is mostly responses (outgoing).
	ScienceIncomingFrac float64
	WebIncomingFrac     float64
	// Arrival process: exponential inter-arrivals with this mean (seconds).
	MeanInterarrival float64
}

// DefaultParams returns calibrated generator settings.
func DefaultParams() GenParams {
	return GenParams{
		Flows: 10000,
		WebMu: math.Log(20 << 10), WebSigma: 1.2,
		ParetoScale: 2 << 30, ParetoAlpha: 1.05,
		ScienceIncomingFrac: 0.5, WebIncomingFrac: 0.1,
		MeanInterarrival: 0.5,
	}
}

// Generate produces flows of one class.
func Generate(rng *sim.RNG, class FlowClass, p GenParams) []FlowSpec {
	out := make([]FlowSpec, 0, p.Flows)
	var t sim.Time
	for i := 0; i < p.Flows; i++ {
		t += sim.Time(rng.Exp(p.MeanInterarrival))
		var bytes int64
		var inFrac float64
		switch class {
		case ClassWeb:
			bytes = int64(rng.LogNormal(p.WebMu, p.WebSigma))
			inFrac = p.WebIncomingFrac
		case ClassScience:
			bytes = int64(rng.Pareto(p.ParetoScale, p.ParetoAlpha))
			// Cap at 10 TB: a single transfer larger than that is split by
			// the tooling anyway.
			if bytes > 10<<40 {
				bytes = 10 << 40
			}
			inFrac = p.ScienceIncomingFrac
		default:
			panic("workload: unknown class " + string(class))
		}
		if bytes < 1 {
			bytes = 1
		}
		out = append(out, FlowSpec{
			Class: class, Bytes: bytes,
			Incoming: rng.Bernoulli(inFrac), Start: t,
		})
	}
	return out
}

// Stats characterizes a flow population — the measured form of Table 1.
type Stats struct {
	Class         FlowClass
	Count         int
	TotalBytes    int64
	MeanBytes     float64
	MedianBytes   int64
	P99Bytes      int64
	MaxBytes      int64
	ElephantShare float64 // fraction of BYTES carried by flows ≥ 1 GB
	IncomingShare float64 // fraction of BYTES flowing inward
}

// Characterize computes the statistics for a flow set.
func Characterize(flows []FlowSpec) Stats {
	if len(flows) == 0 {
		return Stats{}
	}
	s := Stats{Class: flows[0].Class, Count: len(flows)}
	sizes := make([]int64, len(flows))
	var elephantBytes, inBytes int64
	for i, f := range flows {
		sizes[i] = f.Bytes
		s.TotalBytes += f.Bytes
		if f.Bytes >= 1<<30 {
			elephantBytes += f.Bytes
		}
		if f.Incoming {
			inBytes += f.Bytes
		}
		if f.Bytes > s.MaxBytes {
			s.MaxBytes = f.Bytes
		}
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	s.MeanBytes = float64(s.TotalBytes) / float64(len(flows))
	s.MedianBytes = sizes[len(sizes)/2]
	s.P99Bytes = sizes[len(sizes)*99/100]
	s.ElephantShare = float64(elephantBytes) / float64(s.TotalBytes)
	s.IncomingShare = float64(inBytes) / float64(s.TotalBytes)
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("%s: n=%d median=%s p99=%s elephant=%.0f%% incoming=%.0f%%",
		s.Class, s.Count, human(s.MedianBytes), human(s.P99Bytes),
		100*s.ElephantShare, 100*s.IncomingShare)
}

func human(b int64) string {
	switch {
	case b >= 1<<40:
		return fmt.Sprintf("%.1fTB", float64(b)/(1<<40))
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// --- dataset synthesizers ---

// GenomeReads synthesizes n short reads of readLen bases with a given
// per-base mutation rate relative to a reference, returning reference and
// reads. Bionimbus's variant-calling example consumes these.
func GenomeReads(rng *sim.RNG, refLen, n, readLen int, mutRate float64) (ref []byte, reads [][]byte) {
	const bases = "ACGT"
	ref = make([]byte, refLen)
	for i := range ref {
		ref[i] = bases[rng.Intn(4)]
	}
	reads = make([][]byte, n)
	for i := range reads {
		start := rng.Intn(refLen - readLen)
		read := make([]byte, readLen)
		copy(read, ref[start:start+readLen])
		for j := range read {
			if rng.Bernoulli(mutRate) {
				read[j] = bases[rng.Intn(4)]
			}
		}
		reads[i] = read
	}
	return ref, reads
}

// CensusRow is one record of a synthetic census extract (social-science
// example data).
type CensusRow struct {
	Tract      string
	Population int
	MedianAge  float64
	Households int
}

// CensusTable synthesizes n census tracts.
func CensusTable(rng *sim.RNG, n int) []CensusRow {
	out := make([]CensusRow, n)
	for i := range out {
		pop := 500 + rng.Intn(8000)
		out[i] = CensusRow{
			Tract:      fmt.Sprintf("17031%06d", i),
			Population: pop,
			MedianAge:  20 + rng.Float64()*45,
			Households: pop / (2 + rng.Intn(3)),
		}
	}
	return out
}

// NGramCounts synthesizes Bookworm-style ngram counts over a tiny
// vocabulary with a Zipf-like distribution.
func NGramCounts(rng *sim.RNG, vocab []string, samples int) map[string]int {
	counts := make(map[string]int, len(vocab))
	for i := 0; i < samples; i++ {
		// Zipf via inverse-rank sampling.
		r := rng.Float64()
		rank := int(math.Pow(float64(len(vocab)), r)) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= len(vocab) {
			rank = len(vocab) - 1
		}
		counts[vocab[rank]]++
	}
	return counts
}
