package workload

import (
	"testing"

	"osdc/internal/sim"
)

func TestWebFlowsAreSmall(t *testing.T) {
	rng := sim.NewRNG(1)
	flows := Generate(rng, ClassWeb, DefaultParams())
	s := Characterize(flows)
	if s.Count != 10000 {
		t.Fatalf("count = %d", s.Count)
	}
	// Median web flow ~20 KB; certainly under 1 MB.
	if s.MedianBytes > 1<<20 {
		t.Fatalf("web median = %d bytes, want ~20 KB", s.MedianBytes)
	}
	if s.ElephantShare > 0.2 {
		t.Fatalf("web elephant share = %.2f, want small", s.ElephantShare)
	}
}

func TestScienceFlowsAreElephants(t *testing.T) {
	rng := sim.NewRNG(2)
	flows := Generate(rng, ClassScience, DefaultParams())
	s := Characterize(flows)
	// Median science flow is GBs; most bytes in ≥1 GB flows.
	if s.MedianBytes < 1<<30 {
		t.Fatalf("science median = %d bytes, want ≥1 GB", s.MedianBytes)
	}
	if s.ElephantShare < 0.95 {
		t.Fatalf("science elephant share = %.2f, want ≈1", s.ElephantShare)
	}
}

func TestTable1Contrast(t *testing.T) {
	rng := sim.NewRNG(3)
	web := Characterize(Generate(rng, ClassWeb, DefaultParams()))
	sci := Characterize(Generate(rng, ClassScience, DefaultParams()))
	// Table 1: science traffic has large incoming AND outgoing flows;
	// commercial traffic is response-dominated (mostly outgoing bytes).
	if web.IncomingShare > 0.3 {
		t.Fatalf("web incoming share = %.2f, want small", web.IncomingShare)
	}
	if sci.IncomingShare < 0.3 || sci.IncomingShare > 0.7 {
		t.Fatalf("science incoming share = %.2f, want ~0.5 (symmetric)", sci.IncomingShare)
	}
	// Size contrast: orders of magnitude.
	if float64(sci.MedianBytes) < 1000*float64(web.MedianBytes) {
		t.Fatalf("science median (%d) not ≫ web median (%d)", sci.MedianBytes, web.MedianBytes)
	}
}

func TestArrivalsMonotone(t *testing.T) {
	rng := sim.NewRNG(4)
	flows := Generate(rng, ClassWeb, GenParams{
		Flows: 100, WebMu: 10, WebSigma: 1, MeanInterarrival: 1,
	})
	for i := 1; i < len(flows); i++ {
		if flows[i].Start < flows[i-1].Start {
			t.Fatal("arrival times not monotone")
		}
	}
}

func TestCharacterizeEmpty(t *testing.T) {
	s := Characterize(nil)
	if s.Count != 0 || s.TotalBytes != 0 {
		t.Fatal("empty stats not zero")
	}
}

func TestGenomeReads(t *testing.T) {
	rng := sim.NewRNG(5)
	ref, reads := GenomeReads(rng, 10000, 200, 100, 0.01)
	if len(ref) != 10000 || len(reads) != 200 {
		t.Fatalf("sizes: ref=%d reads=%d", len(ref), len(reads))
	}
	for _, b := range ref[:100] {
		switch b {
		case 'A', 'C', 'G', 'T':
		default:
			t.Fatalf("bad base %c", b)
		}
	}
	for _, r := range reads {
		if len(r) != 100 {
			t.Fatalf("read length %d", len(r))
		}
	}
}

func TestCensusTableShape(t *testing.T) {
	rng := sim.NewRNG(6)
	rows := CensusTable(rng, 500)
	if len(rows) != 500 {
		t.Fatal("row count")
	}
	for _, r := range rows {
		if r.Population < 500 || r.Households <= 0 || r.MedianAge < 20 || r.MedianAge > 65 {
			t.Fatalf("implausible row %+v", r)
		}
	}
}

func TestNGramZipfHead(t *testing.T) {
	rng := sim.NewRNG(7)
	vocab := []string{"the", "of", "science", "cloud", "petabyte", "hyperion"}
	counts := NGramCounts(rng, vocab, 50000)
	if counts["the"] <= counts["hyperion"] {
		t.Fatalf("head word not dominant: the=%d hyperion=%d", counts["the"], counts["hyperion"])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 50000 {
		t.Fatalf("total = %d", total)
	}
}

func TestHumanFormatter(t *testing.T) {
	cases := map[int64]string{
		500:     "500B",
		2 << 10: "2.0KB",
		3 << 20: "3.0MB",
		5 << 30: "5.0GB",
		2 << 40: "2.0TB",
	}
	for in, want := range cases {
		if got := human(in); got != want {
			t.Fatalf("human(%d) = %q, want %q", in, got, want)
		}
	}
}
