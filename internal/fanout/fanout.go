// Package fanout provides the bounded worker pool the federation's
// coordinators push through: N tasks (one per site) run over at most
// `workers` goroutines, and each task gets a per-task wall deadline so one
// hung site cannot eat the whole coordination interval (ROADMAP:
// coordinator fan-out).
//
// The pool does not cancel an overrunning task — the targets' HTTP clients
// carry their own timeouts — it merely stops waiting for it, reports it
// incomplete, and moves on. An abandoned task finishes (or times out) in
// the background; its effects on locked state are still safe, callers just
// must tolerate "counted as missed, later completed anyway".
package fanout

import (
	"sync"
	"time"
)

// Each runs every task over at most workers goroutines, waiting up to
// perTask of wall time for each. The returned slice reports, per task,
// whether it completed within its deadline. perTask <= 0 means wait
// forever; workers < 1 means one.
func Each(workers int, perTask time.Duration, tasks []func()) []bool {
	done := make([]bool, len(tasks))
	if len(tasks) == 0 {
		return done
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // covers done: abandoned tasks may report late
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				runOne(i, perTask, tasks[i], done, &mu)
			}
		}()
	}
	for i := range tasks {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	// Snapshot under the lock: a task abandoned at its deadline may still
	// be writing its completion bit.
	mu.Lock()
	out := append([]bool(nil), done...)
	mu.Unlock()
	return out
}

// runOne executes one task, abandoning the wait (not the task) when the
// deadline passes.
func runOne(i int, perTask time.Duration, task func(), done []bool, mu *sync.Mutex) {
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		task()
		mu.Lock()
		done[i] = true
		mu.Unlock()
	}()
	if perTask <= 0 {
		<-finished
		return
	}
	timer := time.NewTimer(perTask)
	defer timer.Stop()
	select {
	case <-finished:
	case <-timer.C:
	}
}
