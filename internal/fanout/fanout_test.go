package fanout

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEachRunsEveryTask(t *testing.T) {
	var ran int64
	tasks := make([]func(), 50)
	for i := range tasks {
		tasks[i] = func() { atomic.AddInt64(&ran, 1) }
	}
	done := Each(8, 0, tasks)
	if ran != 50 {
		t.Fatalf("ran %d tasks, want 50", ran)
	}
	for i, ok := range done {
		if !ok {
			t.Fatalf("task %d reported incomplete", i)
		}
	}
}

func TestEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak int64
	var mu sync.Mutex
	tasks := make([]func(), 20)
	for i := range tasks {
		tasks[i] = func() {
			n := atomic.AddInt64(&cur, 1)
			mu.Lock()
			if n > peak {
				peak = n
			}
			mu.Unlock()
			time.Sleep(2 * time.Millisecond)
			atomic.AddInt64(&cur, -1)
		}
	}
	Each(workers, 0, tasks)
	mu.Lock()
	defer mu.Unlock()
	if peak > workers {
		t.Fatalf("observed %d concurrent tasks, want <= %d", peak, workers)
	}
}

func TestEachAbandonsOverrunningTask(t *testing.T) {
	release := make(chan struct{})
	var slowFinished int64
	tasks := []func(){
		func() { <-release; atomic.AddInt64(&slowFinished, 1) },
		func() {},
	}
	start := time.Now()
	done := Each(2, 20*time.Millisecond, tasks)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Each blocked %v on a hung task", elapsed)
	}
	if done[0] {
		t.Fatal("hung task reported complete")
	}
	if !done[1] {
		t.Fatal("fast task reported incomplete")
	}
	// The abandoned task still runs to completion in the background.
	close(release)
	deadline := time.Now().Add(2 * time.Second)
	for atomic.LoadInt64(&slowFinished) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned task never finished")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEachEmptyAndSmall(t *testing.T) {
	if got := Each(4, 0, nil); len(got) != 0 {
		t.Fatalf("Each(nil) = %v", got)
	}
	// More workers than tasks, and a non-positive worker count.
	ran := false
	if got := Each(0, 0, []func(){func() { ran = true }}); !got[0] || !ran {
		t.Fatalf("single task not run: %v", got)
	}
}
