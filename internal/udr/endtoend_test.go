package udr

// End-to-end tests composing every real component of the transfer path:
// the rsync delta algorithm, a real cipher, and the packet-level UDT
// protocol state machine over the simulated WAN — no macro model anywhere.

import (
	"bytes"
	"testing"

	"osdc/internal/cipher"
	"osdc/internal/sim"
	"osdc/internal/simnet"
	"osdc/internal/tcpmodel"
	"osdc/internal/udt"
)

func wanPair(loss float64) (*sim.Engine, *simnet.Network) {
	e := sim.NewEngine(2020)
	nw := simnet.New(e)
	nw.AddNode("adler", "chicago")
	nw.AddNode("lvoc", "livermore")
	nw.AddDuplex("adler", "lvoc", simnet.Gbit, 52*sim.Millisecond, loss)
	return e, nw
}

// TestUDREncryptedDeltaOverPacketUDT is the full UDR stack in miniature:
// compute the rsync delta of an edited file, encrypt its wire form with the
// blowfish stand-in, push the ciphertext through the packet-level UDT
// socket across a lossy 104 ms-RTT link, decrypt, apply — and recover the
// edited file exactly.
func TestUDREncryptedDeltaOverPacketUDT(t *testing.T) {
	// Source edits a file the destination already has.
	old := bytes.Repeat([]byte("level1-hyperion-stripe/"), 20000) // ~460 KB
	edited := append([]byte(nil), old...)
	copy(edited[200000:], []byte("<<REPROCESSED-CALIBRATION>>"))

	// rsync: destination's signatures → source's delta.
	sigs := Signatures(old, DefaultBlockSize)
	delta := ComputeDelta(sigs, DefaultBlockSize, edited)
	if delta.LiteralBytes() > 3*DefaultBlockSize {
		t.Fatalf("delta too fat: %d literal bytes", delta.LiteralBytes())
	}

	// Serialize the delta ops' literals into one wire buffer (copies are
	// references; only literals travel).
	var wire bytes.Buffer
	for _, op := range delta.Ops {
		if op.Literal != nil {
			wire.Write(op.Literal)
		}
	}
	plain := wire.Bytes()
	if len(plain) == 0 {
		t.Fatal("no literals to transfer")
	}

	// Encrypt with the real cipher.
	enc, err := cipher.NewStream(cipher.Blowfish, []byte("udr-session-key"), []byte("iv0"))
	if err != nil {
		t.Fatal(err)
	}
	ct := make([]byte, len(plain))
	enc.Process(ct, plain)

	// Ship the ciphertext over packet-level UDT through 1% loss.
	e, nw := wanPair(0.01)
	var received []byte
	_, recvr := udt.Transfer(nw, "adler", "lvoc", "udr-e2e", ct, nil)
	e.RunUntil(600)
	if !recvr.Finished() {
		t.Fatal("UDT transfer did not complete under loss")
	}
	received = recvr.Data()

	// Decrypt and splice the literals back into the delta.
	dec, err := cipher.NewStream(cipher.Blowfish, []byte("udr-session-key"), []byte("iv0"))
	if err != nil {
		t.Fatal(err)
	}
	pt := make([]byte, len(received))
	dec.Process(pt, received)
	off := 0
	for i, op := range delta.Ops {
		if op.Literal != nil {
			n := len(op.Literal)
			delta.Ops[i].Literal = pt[off : off+n]
			off += n
		}
	}

	// Apply at the destination: must equal the source's edited file.
	rebuilt, err := Apply(old, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rebuilt, edited) {
		t.Fatal("end-to-end UDR pipeline corrupted the file")
	}
}

// TestPacketLevelUDTFasterThanTCPUnderLoss validates the protocol-level
// claim behind Table 3 with the actual socket implementations: on a lossy
// high-BDP path, UDT's NAK-driven rate control finishes a bulk transfer
// well before window-halving TCP.
func TestPacketLevelUDTFasterThanTCPUnderLoss(t *testing.T) {
	payload := bytes.Repeat([]byte{0xA5}, 2_000_000) // 2 MB

	eU, nwU := wanPair(0.005)
	udtSend, udtRecv := udt.Transfer(nwU, "adler", "lvoc", "race-udt", payload, nil)
	eU.RunUntil(1200)
	if !udtRecv.Finished() {
		t.Fatal("udt did not finish")
	}
	udtTime := float64(udtSend.Done)

	eT, nwT := wanPair(0.005)
	tcpSend, tcpRecv := tcpmodel.TransferSock(nwT, "adler", "lvoc", "race-tcp", payload, 0, nil)
	eT.RunUntil(3600)
	if !tcpRecv.Finished() {
		t.Fatal("tcp did not finish")
	}
	tcpTime := float64(tcpSend.Done)

	if udtTime >= tcpTime {
		t.Fatalf("UDT (%.1fs) not faster than TCP (%.1fs) on lossy 104ms path", udtTime, tcpTime)
	}
	if !bytes.Equal(udtRecv.Data(), payload) || !bytes.Equal(tcpRecv.Data(), payload) {
		t.Fatal("payload corrupted")
	}
}
