package udr

import (
	"fmt"
	"sort"

	"osdc/internal/cipher"
	"osdc/internal/sim"
	"osdc/internal/simdisk"
	"osdc/internal/tcpmodel"
	"osdc/internal/transport"
	"osdc/internal/udt"
)

// Tool selects the transfer engine: UDR (rsync interface over UDT) or plain
// rsync (over TCP; over ssh when a cipher is configured).
type Tool string

// The two tools compared in Table 3.
const (
	ToolUDR   Tool = "udr"
	ToolRsync Tool = "rsync"
)

// Host-side calibration constants for the paper's testbed (2012 Xeon-class
// servers; see DESIGN.md "Substitutions").
const (
	// UDRSenderCPUBps is UDR's single-stream UDP send-path throughput:
	// per-packet syscall and checksum cost bound a 2012 host near
	// 750 Mbit/s regardless of the 10G NIC.
	UDRSenderCPUBps = 753e6
	// RsyncSocketBufBytes is the effective TCP window with 2012 default
	// socket-buffer tuning; on a 104 ms path it caps TCP near 405 Mbit/s.
	RsyncSocketBufBytes = 5_270_000
	// SSHWindowBytes is the ssh channel flow-control window that caps all
	// encrypted rsync runs near 280 Mbit/s on a 104 ms path, regardless of
	// cipher.
	SSHWindowBytes = 3_640_000
)

// Config describes one row of Table 3.
type Config struct {
	Tool   Tool
	Cipher cipher.Name
}

func (c Config) String() string {
	if c.Cipher == cipher.None {
		return fmt.Sprintf("%s (no encryption)", c.Tool)
	}
	return fmt.Sprintf("%s (%s)", c.Tool, c.Cipher)
}

// Table3Configs returns the five tool/cipher combinations of Table 3, in
// the paper's row order.
func Table3Configs() []Config {
	return []Config{
		{ToolUDR, cipher.None},
		{ToolRsync, cipher.None},
		{ToolUDR, cipher.Blowfish},
		{ToolRsync, cipher.Blowfish},
		{ToolRsync, cipher.TripleDES},
	}
}

// Caps builds the pipeline caps for a configuration against the paper's
// disks.
func (c Config) Caps() transport.Caps {
	caps := transport.Caps{
		DiskReadBps:  simdisk.PaperSourceReadBps,
		DiskWriteBps: simdisk.PaperTargetWriteBps,
	}
	impl := cipher.ImplSSH
	if c.Tool == ToolUDR {
		impl = cipher.ImplUDR
		caps.SenderBps = UDRSenderCPUBps
	}
	if cbps := cipher.ThroughputBps(c.Cipher, impl); cbps > 0 {
		if caps.SenderBps == 0 || cbps < caps.SenderBps {
			caps.SenderBps = cbps
		}
	}
	return caps
}

// Controller builds the congestion controller for a configuration.
func (c Config) Controller(path transport.Path) transport.Controller {
	if c.Tool == ToolUDR {
		return udt.NewRateControl(path)
	}
	window := RsyncSocketBufBytes
	if c.Cipher != cipher.None {
		window = SSHWindowBytes // rsync tunnels through ssh when encrypting
	}
	return tcpmodel.NewReno(path, window)
}

// Transfer simulates moving totalBytes over path with this configuration
// and returns the result plus the caps used (for LLR computation).
func Transfer(rng *sim.RNG, cfg Config, path transport.Path, totalBytes int64) (transport.Result, transport.Caps) {
	caps := cfg.Caps()
	ctrl := cfg.Controller(path)
	res := transport.Simulate(rng, path, ctrl, totalBytes, caps)
	res.Protocol = cfg.String()
	return res, caps
}

// --- rsync-interface file synchronization ---

// FileSet is an in-memory file tree: path → contents.
type FileSet map[string][]byte

// Paths returns the sorted paths.
func (fs FileSet) Paths() []string {
	out := make([]string, 0, len(fs))
	for p := range fs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// TotalBytes sums all file sizes.
func (fs FileSet) TotalBytes() int64 {
	var n int64
	for _, b := range fs {
		n += int64(len(b))
	}
	return n
}

// SyncPlan describes what a sync must move: per-file wire bytes, computed
// with the rsync delta algorithm against the destination's current state.
type SyncPlan struct {
	Files     []FileSync
	WireBytes int64
}

// FileSync is the plan for one file.
type FileSync struct {
	Path      string
	Wire      int64 // bytes on the wire
	Delta     bool  // true if delta-encoded against an existing copy
	Unchanged bool  // true if already identical (only a signature exchange)
}

// PlanSync computes the rsync transfer plan from src to dst and mutates dst
// to match src (the actual sync). Files present only in dst are left alone,
// as with rsync without --delete.
func PlanSync(src, dst FileSet, blockSize int) (SyncPlan, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	var plan SyncPlan
	for _, path := range src.Paths() {
		data := src[path]
		old, exists := dst[path]
		fsync := FileSync{Path: path}
		switch {
		case !exists:
			// Whole file travels.
			fsync.Wire = int64(len(data))
			dst[path] = append([]byte(nil), data...)
		default:
			sigs := Signatures(old, blockSize)
			delta := ComputeDelta(sigs, blockSize, data)
			rebuilt, err := Apply(old, delta)
			if err != nil {
				return SyncPlan{}, fmt.Errorf("sync %s: %w", path, err)
			}
			dst[path] = rebuilt
			fsync.Delta = true
			fsync.Wire = delta.WireSize() + int64(len(sigs))*20 // sigs travel dst→src
			fsync.Unchanged = delta.LiteralBytes() == 0
		}
		plan.WireBytes += fsync.Wire
		plan.Files = append(plan.Files, fsync)
	}
	return plan, nil
}

// SyncOver plans a sync and simulates moving its wire bytes with cfg over
// path. dst is mutated to match src.
func SyncOver(rng *sim.RNG, cfg Config, path transport.Path, src, dst FileSet) (SyncPlan, transport.Result, error) {
	plan, err := PlanSync(src, dst, DefaultBlockSize)
	if err != nil {
		return plan, transport.Result{}, err
	}
	if plan.WireBytes == 0 {
		return plan, transport.Result{Protocol: cfg.String()}, nil
	}
	res, _ := Transfer(rng, cfg, path, plan.WireBytes)
	return plan, res, nil
}
