// Package udr implements UDR, the OSDC's high-speed transfer tool (paper
// §7.2): "a tool that provides the familiar interface of rsync while
// utilizing the high performance UDT protocol".
//
// The package has two halves:
//
//   - the rsync algorithm itself (this file): rolling weak checksums,
//     strong block hashes, delta computation and application — the part
//     that gives UDR its familiar interface and incremental-sync semantics;
//   - the transfer engine (udr.go): the tool configurations of Table 3
//     (udr vs rsync × none/blowfish/3des), their host-side caps, and the
//     simulated end-to-end transfers over the OSDC WAN.
package udr

import (
	"crypto/md5"
	"fmt"
)

// DefaultBlockSize is the rsync block length used for signatures.
const DefaultBlockSize = 2048

// BlockSig is the signature of one block of the old file: a cheap rolling
// checksum to find candidate matches and a strong hash to confirm them.
type BlockSig struct {
	Index  int
	Weak   uint32
	Strong [md5.Size]byte
}

// weakSum computes the rsync rolling checksum of b: a = Σxᵢ, b = Σ(l−i)xᵢ,
// packed as (b<<16)|a (both mod 2¹⁶).
func weakSum(p []byte) uint32 {
	var a, b uint32
	l := len(p)
	for i, x := range p {
		a += uint32(x)
		b += uint32(l-i) * uint32(x)
	}
	return (b&0xffff)<<16 | (a & 0xffff)
}

// roll updates the checksum when the window slides one byte: drop out, add
// in. l is the window length.
func roll(sum uint32, out, in byte, l int) uint32 {
	a := sum & 0xffff
	b := sum >> 16
	a = (a - uint32(out) + uint32(in)) & 0xffff
	b = (b - uint32(l)*uint32(out) + a) & 0xffff
	return b<<16 | a
}

// Signatures splits old into blockSize blocks and returns their signatures.
// The final short block (if any) is included.
func Signatures(old []byte, blockSize int) []BlockSig {
	if blockSize <= 0 {
		panic("udr: blockSize must be positive")
	}
	var sigs []BlockSig
	for i := 0; i*blockSize < len(old); i++ {
		lo := i * blockSize
		hi := lo + blockSize
		if hi > len(old) {
			hi = len(old)
		}
		blk := old[lo:hi]
		sigs = append(sigs, BlockSig{Index: i, Weak: weakSum(blk), Strong: md5.Sum(blk)})
	}
	return sigs
}

// Op is one delta instruction: either copy a block of the old file
// (Literal == nil) or insert literal bytes.
type Op struct {
	BlockIndex int
	Literal    []byte
}

// Delta is the instruction stream that rebuilds the new file from the old.
type Delta struct {
	Ops       []Op
	BlockSize int
	NewLen    int
}

// WireSize estimates the bytes on the wire for this delta: literals plus a
// small fixed cost per op (rsync sends 4-byte block references and
// run-length headers).
func (d Delta) WireSize() int64 {
	var n int64
	for _, op := range d.Ops {
		if op.Literal != nil {
			n += int64(len(op.Literal)) + 4
		} else {
			n += 8
		}
	}
	return n
}

// LiteralBytes returns the number of literal bytes (data not found in the
// old file).
func (d Delta) LiteralBytes() int64 {
	var n int64
	for _, op := range d.Ops {
		n += int64(len(op.Literal))
	}
	return n
}

// ComputeDelta scans data with a rolling window against the old file's
// signatures and emits a minimal stream of copy/literal ops. This is the
// real rsync receiver-side algorithm.
func ComputeDelta(sigs []BlockSig, blockSize int, data []byte) Delta {
	if blockSize <= 0 {
		panic("udr: blockSize must be positive")
	}
	d := Delta{BlockSize: blockSize, NewLen: len(data)}
	// Index signatures by weak sum. The strong hash disambiguates both weak
	// collisions and the trailing short block (whose md5 can only match a
	// window of the same length).
	byWeak := make(map[uint32][]BlockSig, len(sigs))
	for _, s := range sigs {
		byWeak[s.Weak] = append(byWeak[s.Weak], s)
	}

	var lit []byte
	flush := func() {
		if len(lit) > 0 {
			cp := make([]byte, len(lit))
			copy(cp, lit)
			d.Ops = append(d.Ops, Op{BlockIndex: -1, Literal: cp})
			lit = lit[:0]
		}
	}

	i := 0
	var sum uint32
	haveSum := false
	for i < len(data) {
		if len(data)-i < blockSize {
			// Window shorter than a block: try to match the tail block
			// exactly, else emit as literal.
			blk := data[i:]
			w := weakSum(blk)
			matched := false
			for _, s := range byWeak[w] {
				if s.Strong == md5.Sum(blk) {
					flush()
					d.Ops = append(d.Ops, Op{BlockIndex: s.Index})
					matched = true
					break
				}
			}
			if !matched {
				lit = append(lit, blk...)
			}
			i = len(data)
			break
		}
		if !haveSum {
			sum = weakSum(data[i : i+blockSize])
			haveSum = true
		}
		matched := false
		if cands, ok := byWeak[sum]; ok {
			window := data[i : i+blockSize]
			strong := md5.Sum(window)
			for _, s := range cands {
				if s.Strong == strong {
					flush()
					d.Ops = append(d.Ops, Op{BlockIndex: s.Index})
					i += blockSize
					haveSum = false
					matched = true
					break
				}
			}
		}
		if !matched {
			lit = append(lit, data[i])
			if i+blockSize < len(data) {
				sum = roll(sum, data[i], data[i+blockSize], blockSize)
			} else {
				haveSum = false
			}
			i++
		}
	}
	flush()
	return d
}

// Apply rebuilds the new file from the old file and a delta.
func Apply(old []byte, d Delta) ([]byte, error) {
	out := make([]byte, 0, d.NewLen)
	for _, op := range d.Ops {
		if op.Literal != nil {
			out = append(out, op.Literal...)
			continue
		}
		lo := op.BlockIndex * d.BlockSize
		hi := lo + d.BlockSize
		if lo < 0 || lo >= len(old) {
			return nil, fmt.Errorf("udr: delta references block %d beyond old file (%d bytes)", op.BlockIndex, len(old))
		}
		if hi > len(old) {
			hi = len(old)
		}
		out = append(out, old[lo:hi]...)
	}
	if len(out) != d.NewLen {
		return nil, fmt.Errorf("udr: rebuilt %d bytes, expected %d", len(out), d.NewLen)
	}
	return out, nil
}
