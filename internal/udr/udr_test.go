package udr

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"osdc/internal/cipher"
	"osdc/internal/sim"
	"osdc/internal/simnet"
	"osdc/internal/transport"
)

// --- rsync algorithm ---

func TestWeakSumRollEquivalence(t *testing.T) {
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(i*37 + 11)
	}
	const w = 64
	sum := weakSum(data[0:w])
	for i := 1; i+w <= len(data); i++ {
		sum = roll(sum, data[i-1], data[i+w-1], w)
		if want := weakSum(data[i : i+w]); sum != want {
			t.Fatalf("rolled sum at %d = %08x, want %08x", i, sum, want)
		}
	}
}

func TestDeltaIdenticalFilesAllCopies(t *testing.T) {
	data := bytes.Repeat([]byte("scientific data "), 1000)
	sigs := Signatures(data, 512)
	d := ComputeDelta(sigs, 512, data)
	if d.LiteralBytes() != 0 {
		t.Fatalf("identical file produced %d literal bytes", d.LiteralBytes())
	}
	out, err := Apply(data, d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("rebuild differs")
	}
	// Wire size should be tiny relative to the file.
	if d.WireSize() > int64(len(data))/10 {
		t.Fatalf("wire size %d too large for identical file of %d", d.WireSize(), len(data))
	}
}

func TestDeltaSmallEdit(t *testing.T) {
	old := bytes.Repeat([]byte("abcdefgh"), 4096) // 32 KB
	new := append([]byte(nil), old...)
	copy(new[10000:], []byte("MUTATION"))
	sigs := Signatures(old, 1024)
	d := ComputeDelta(sigs, 1024, new)
	out, err := Apply(old, d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, new) {
		t.Fatal("rebuild differs after edit")
	}
	// Only the damaged block should travel as literals.
	if d.LiteralBytes() > 2048 {
		t.Fatalf("literal bytes = %d, want ≤ one block region", d.LiteralBytes())
	}
}

func TestDeltaInsertionShiftsHandled(t *testing.T) {
	old := bytes.Repeat([]byte("0123456789abcdef"), 2048)
	new := append([]byte("INSERTED-PREFIX:"), old...)
	sigs := Signatures(old, 1024)
	d := ComputeDelta(sigs, 1024, new)
	out, err := Apply(old, d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, new) {
		t.Fatal("rebuild differs after insertion")
	}
	// Rolling checksum must re-find alignment: literals ≈ the insertion,
	// not the whole file.
	if d.LiteralBytes() > int64(len("INSERTED-PREFIX:"))+1024 {
		t.Fatalf("literal bytes = %d; rolling match failed to realign", d.LiteralBytes())
	}
}

func TestDeltaAgainstEmptyOldIsAllLiteral(t *testing.T) {
	data := []byte("fresh file with no prior copy")
	d := ComputeDelta(nil, 512, data)
	if d.LiteralBytes() != int64(len(data)) {
		t.Fatalf("literals = %d, want full file", d.LiteralBytes())
	}
	out, err := Apply(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("rebuild differs")
	}
}

func TestDeltaPropertyRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(func(oldSeed, newSeed []byte, mutate bool) bool {
		old := bytes.Repeat(oldSeed, 50)
		var data []byte
		if mutate && len(old) > 0 {
			data = append(append([]byte(nil), old...), newSeed...)
		} else {
			data = bytes.Repeat(newSeed, 30)
		}
		sigs := Signatures(old, 128)
		d := ComputeDelta(sigs, 128, data)
		out, err := Apply(old, d)
		return err == nil && bytes.Equal(out, data)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSignaturesShortTailBlock(t *testing.T) {
	data := make([]byte, 1000) // not a multiple of 512
	sigs := Signatures(data, 512)
	if len(sigs) != 2 {
		t.Fatalf("got %d signatures, want 2", len(sigs))
	}
	d := ComputeDelta(sigs, 512, data)
	if d.LiteralBytes() != 0 {
		t.Fatalf("tail block not matched: %d literal bytes", d.LiteralBytes())
	}
}

func TestApplyRejectsBadBlockRef(t *testing.T) {
	d := Delta{Ops: []Op{{BlockIndex: 99}}, BlockSize: 512, NewLen: 512}
	if _, err := Apply([]byte("short"), d); err == nil {
		t.Fatal("expected error for out-of-range block reference")
	}
}

// --- sync planning ---

func TestPlanSyncNewFilesTravelWhole(t *testing.T) {
	src := FileSet{"a.dat": bytes.Repeat([]byte{1}, 10000)}
	dst := FileSet{}
	plan, err := PlanSync(src, dst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.WireBytes != 10000 {
		t.Fatalf("wire = %d, want 10000", plan.WireBytes)
	}
	if !bytes.Equal(dst["a.dat"], src["a.dat"]) {
		t.Fatal("dst not synced")
	}
}

func TestPlanSyncUnchangedFileCheap(t *testing.T) {
	content := bytes.Repeat([]byte("stable"), 20000)
	src := FileSet{"b.dat": content}
	dst := FileSet{"b.dat": append([]byte(nil), content...)}
	plan, err := PlanSync(src, dst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.WireBytes >= int64(len(content))/5 {
		t.Fatalf("unchanged file moved %d of %d bytes", plan.WireBytes, len(content))
	}
	if !plan.Files[0].Unchanged {
		t.Fatal("file not flagged unchanged")
	}
}

func TestPlanSyncMutatesDstToMatchSrc(t *testing.T) {
	src := FileSet{
		"x": []byte("new content x"),
		"y": bytes.Repeat([]byte("yy"), 5000),
	}
	dst := FileSet{
		"y":    bytes.Repeat([]byte("yy"), 4000),
		"only": []byte("untouched"),
	}
	if _, err := PlanSync(src, dst, 256); err != nil {
		t.Fatal(err)
	}
	for p, want := range src {
		if !bytes.Equal(dst[p], want) {
			t.Fatalf("dst[%s] differs after sync", p)
		}
	}
	if string(dst["only"]) != "untouched" {
		t.Fatal("sync deleted unrelated destination file")
	}
}

// --- Table 3 behaviour ---

func chicagoLVOC() transport.Path {
	e := sim.NewEngine(1)
	nw := simnet.BuildOSDCTopology(e, simnet.DefaultWAN())
	simnet.AttachHost(nw, "adler", simnet.SiteChicagoKenwood)
	simnet.AttachHost(nw, "lvoc1", simnet.SiteLVOC)
	return transport.PathBetween(nw, "adler", "lvoc1")
}

func TestTable3RowOrdering(t *testing.T) {
	path := chicagoLVOC()
	rng := sim.NewRNG(2012)
	const size = 108 << 30 // the 108 GB dataset
	speeds := map[Config]float64{}
	for _, cfg := range Table3Configs() {
		res, _ := Transfer(rng, cfg, path, size)
		speeds[cfg] = res.ThroughputMbit()
	}
	udrPlain := speeds[Config{ToolUDR, cipher.None}]
	rsyncPlain := speeds[Config{ToolRsync, cipher.None}]
	udrBF := speeds[Config{ToolUDR, cipher.Blowfish}]
	rsyncBF := speeds[Config{ToolRsync, cipher.Blowfish}]
	rsync3DES := speeds[Config{ToolRsync, cipher.TripleDES}]

	// Paper Table 3 orderings.
	if !(udrPlain > rsyncPlain && udrBF > rsyncBF) {
		t.Fatalf("UDR must beat rsync: %v", speeds)
	}
	if !(udrPlain > udrBF) {
		t.Fatalf("encryption must slow UDR: plain %.0f vs bf %.0f", udrPlain, udrBF)
	}
	// Paper: UDR plain ≈ 1.87× rsync plain.
	if ratio := udrPlain / rsyncPlain; ratio < 1.5 || ratio > 2.3 {
		t.Fatalf("UDR/rsync plain ratio = %.2f, want ~1.87", ratio)
	}
	// Paper: rsync blowfish ≈ rsync 3des (ssh window binds both).
	if math.Abs(rsyncBF-rsync3DES)/rsyncBF > 0.1 {
		t.Fatalf("encrypted rsync rows should be near-equal: bf=%.0f 3des=%.0f", rsyncBF, rsync3DES)
	}
}

func TestTable3AbsoluteBands(t *testing.T) {
	path := chicagoLVOC()
	rng := sim.NewRNG(7)
	const size = 20 << 30 // smaller size for test speed; rates are steady
	check := func(cfg Config, lo, hi float64) {
		res, caps := Transfer(rng, cfg, path, size)
		mb := res.ThroughputMbit()
		if mb < lo || mb > hi {
			t.Errorf("%s = %.0f Mbit/s, want [%v, %v]", cfg, mb, lo, hi)
		}
		llr := res.LLR(caps)
		if llr <= 0 || llr > 1 {
			t.Errorf("%s LLR = %.2f out of (0,1]", cfg, llr)
		}
	}
	check(Config{ToolUDR, cipher.None}, 700, 780)        // paper: 752/738
	check(Config{ToolRsync, cipher.None}, 380, 420)      // paper: 401/405
	check(Config{ToolUDR, cipher.Blowfish}, 370, 400)    // paper: 394/396
	check(Config{ToolRsync, cipher.Blowfish}, 255, 290)  // paper: 280/281
	check(Config{ToolRsync, cipher.TripleDES}, 255, 295) // paper: 284/285
}

func TestTransferSizeIndependence(t *testing.T) {
	// Paper: 108 GB and 1.1 TB give nearly identical speeds.
	path := chicagoLVOC()
	cfg := Config{ToolUDR, cipher.None}
	a, _ := Transfer(sim.NewRNG(1), cfg, path, 10<<30)
	b, _ := Transfer(sim.NewRNG(2), cfg, path, 100<<30)
	if math.Abs(a.ThroughputMbit()-b.ThroughputMbit())/a.ThroughputMbit() > 0.05 {
		t.Fatalf("speeds size-dependent: %.0f vs %.0f", a.ThroughputMbit(), b.ThroughputMbit())
	}
}

func TestSyncOverMovesOnlyDelta(t *testing.T) {
	path := chicagoLVOC()
	content := bytes.Repeat([]byte("genome-read-"), 100000) // 1.2 MB
	src := FileSet{"reads.fastq": content}
	dst := FileSet{"reads.fastq": append([]byte(nil), content...)}
	// Mutate 1 KB in src.
	copy(src["reads.fastq"][500000:], bytes.Repeat([]byte("X"), 1024))
	plan, res, err := SyncOver(sim.NewRNG(3), Config{ToolUDR, cipher.None}, path, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if plan.WireBytes >= int64(len(content))/2 {
		t.Fatalf("sync moved %d bytes for a 1 KB edit of %d", plan.WireBytes, len(content))
	}
	if !bytes.Equal(dst["reads.fastq"], src["reads.fastq"]) {
		t.Fatal("dst not synced")
	}
	if res.Duration <= 0 {
		t.Fatal("no transfer time simulated")
	}
}

func TestEncryptedPipelineRoundTrip(t *testing.T) {
	// The cipher layer composes with the delta layer: encrypt a delta's
	// literals, decrypt, apply — bytes must survive.
	old := bytes.Repeat([]byte("block"), 4000)
	new := append(append([]byte(nil), old[:9000]...), []byte("EDIT")...)
	new = append(new, old[9000:]...)
	sigs := Signatures(old, 512)
	d := ComputeDelta(sigs, 512, new)
	enc, _ := cipher.NewStream(cipher.Blowfish, []byte("k"), []byte("iv"))
	dec, _ := cipher.NewStream(cipher.Blowfish, []byte("k"), []byte("iv"))
	for i, op := range d.Ops {
		if op.Literal != nil {
			ct := make([]byte, len(op.Literal))
			enc.Process(ct, op.Literal)
			pt := make([]byte, len(ct))
			dec.Process(pt, ct)
			d.Ops[i].Literal = pt
		}
	}
	out, err := Apply(old, d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, new) {
		t.Fatal("encrypted delta pipeline corrupted data")
	}
}

func TestFileSetHelpers(t *testing.T) {
	fs := FileSet{"b": []byte("22"), "a": []byte("1")}
	paths := fs.Paths()
	if len(paths) != 2 || paths[0] != "a" || paths[1] != "b" {
		t.Fatalf("Paths = %v", paths)
	}
	if fs.TotalBytes() != 3 {
		t.Fatalf("TotalBytes = %d, want 3", fs.TotalBytes())
	}
}
