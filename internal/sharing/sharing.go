// Package sharing implements the OSDC's distributed file sharing prototype
// (paper §6.2): access control based on users, groups, and hierarchical
// file-collection objects; a designated drop directory monitored by a
// daemon that propagates file information into a database; and a WebDAV
// service that serves shared files against that database, so collaborators
// mount shares with their own credentials.
package sharing

import (
	"fmt"
	"sort"
	"strings"

	"osdc/internal/sim"
)

// Perm is the access level granted on a collection.
type Perm int

// Permission levels.
const (
	PermNone Perm = iota
	PermRead
	PermWrite
)

// FileInfo is the database record the monitoring daemon maintains for each
// shared file.
type FileInfo struct {
	Path    string
	Owner   string
	Size    int64
	Content []byte
	Added   sim.Time
}

// Collection is a file-collection object: "a file, a collection of files,
// or a collection of collections" (§6.2).
type Collection struct {
	ID       string
	Name     string
	Owner    string
	Files    []string // member file paths
	Children []string // member collection IDs
}

// Store is the sharing database.
type Store struct {
	engine *sim.Engine
	users  map[string]bool
	groups map[string]map[string]bool // group -> members (managed by users)
	files  map[string]*FileInfo
	colls  map[string]*Collection
	grants map[string]map[string]Perm // collection -> principal -> perm
	nextID int
}

// NewStore creates an empty sharing database.
func NewStore(e *sim.Engine) *Store {
	return &Store{
		engine: e,
		users:  make(map[string]bool),
		groups: make(map[string]map[string]bool),
		files:  make(map[string]*FileInfo),
		colls:  make(map[string]*Collection),
		grants: make(map[string]map[string]Perm),
	}
}

// AddUser registers a user.
func (s *Store) AddUser(name string) {
	if strings.TrimSpace(name) == "" {
		panic("sharing: empty user name")
	}
	s.users[name] = true
}

// CreateGroup lets a user create a group they own and manage ("users have
// the ability to create and modify groups").
func (s *Store) CreateGroup(owner, group string, members ...string) error {
	if !s.users[owner] {
		return fmt.Errorf("sharing: unknown user %q", owner)
	}
	if _, ok := s.groups[group]; ok {
		return fmt.Errorf("sharing: group %q exists", group)
	}
	m := map[string]bool{owner: true}
	for _, u := range members {
		m[u] = true
	}
	s.groups[group] = m
	return nil
}

// ModifyGroup adds or removes a member. Only current members may modify.
func (s *Store) ModifyGroup(actor, group, member string, add bool) error {
	m, ok := s.groups[group]
	if !ok {
		return fmt.Errorf("sharing: unknown group %q", group)
	}
	if !m[actor] {
		return fmt.Errorf("sharing: %s is not a member of %s", actor, group)
	}
	if add {
		m[member] = true
	} else {
		delete(m, member)
	}
	return nil
}

// NewCollection creates a collection object owned by owner.
func (s *Store) NewCollection(owner, name string) (*Collection, error) {
	if !s.users[owner] {
		return nil, fmt.Errorf("sharing: unknown user %q", owner)
	}
	s.nextID++
	c := &Collection{ID: fmt.Sprintf("coll-%04d", s.nextID), Name: name, Owner: owner}
	s.colls[c.ID] = c
	return c, nil
}

// AddFileToCollection attaches a registered file to a collection (owner
// only).
func (s *Store) AddFileToCollection(actor, collID, path string) error {
	c, ok := s.colls[collID]
	if !ok {
		return fmt.Errorf("sharing: unknown collection %q", collID)
	}
	if c.Owner != actor {
		return fmt.Errorf("sharing: %s does not own %s", actor, collID)
	}
	if _, ok := s.files[path]; !ok {
		return fmt.Errorf("sharing: file %q not registered (drop it in the shared directory first)", path)
	}
	c.Files = append(c.Files, path)
	return nil
}

// Nest makes child a sub-collection of parent (owner of parent only).
// Cycles are rejected.
func (s *Store) Nest(actor, parentID, childID string) error {
	p, ok := s.colls[parentID]
	if !ok {
		return fmt.Errorf("sharing: unknown collection %q", parentID)
	}
	if _, ok := s.colls[childID]; !ok {
		return fmt.Errorf("sharing: unknown collection %q", childID)
	}
	if p.Owner != actor {
		return fmt.Errorf("sharing: %s does not own %s", actor, parentID)
	}
	if parentID == childID || s.reachable(childID, parentID) {
		return fmt.Errorf("sharing: nesting %s under %s would create a cycle", childID, parentID)
	}
	p.Children = append(p.Children, childID)
	return nil
}

func (s *Store) reachable(from, to string) bool {
	if from == to {
		return true
	}
	c, ok := s.colls[from]
	if !ok {
		return false
	}
	for _, ch := range c.Children {
		if s.reachable(ch, to) {
			return true
		}
	}
	return false
}

// Grant gives a user or group permission on a collection (owner only).
// Principals are "user:name" or "group:name".
func (s *Store) Grant(actor, collID, principal string, p Perm) error {
	c, ok := s.colls[collID]
	if !ok {
		return fmt.Errorf("sharing: unknown collection %q", collID)
	}
	if c.Owner != actor {
		return fmt.Errorf("sharing: %s does not own %s", actor, collID)
	}
	if !strings.HasPrefix(principal, "user:") && !strings.HasPrefix(principal, "group:") {
		return fmt.Errorf("sharing: principal must be user: or group:, got %q", principal)
	}
	g, ok := s.grants[collID]
	if !ok {
		g = make(map[string]Perm)
		s.grants[collID] = g
	}
	g[principal] = p
	return nil
}

// permOn resolves user's permission on a single collection (not counting
// parents).
func (s *Store) permOn(user, collID string) Perm {
	c, ok := s.colls[collID]
	if !ok {
		return PermNone
	}
	if c.Owner == user {
		return PermWrite
	}
	best := PermNone
	for principal, p := range s.grants[collID] {
		if p <= best {
			continue
		}
		switch {
		case principal == "user:"+user:
			best = p
		case strings.HasPrefix(principal, "group:"):
			if s.groups[strings.TrimPrefix(principal, "group:")][user] {
				best = p
			}
		}
	}
	return best
}

// CanRead reports whether user may read a file through any collection
// containing it (directly or via nesting) — or owns it.
func (s *Store) CanRead(user, path string) bool {
	f, ok := s.files[path]
	if !ok {
		return false
	}
	if f.Owner == user {
		return true
	}
	for id := range s.colls {
		if s.permOn(user, id) >= PermRead && s.collContains(id, path, map[string]bool{}) {
			return true
		}
	}
	return false
}

func (s *Store) collContains(collID, path string, seen map[string]bool) bool {
	if seen[collID] {
		return false
	}
	seen[collID] = true
	c, ok := s.colls[collID]
	if !ok {
		return false
	}
	for _, p := range c.Files {
		if p == path {
			return true
		}
	}
	for _, ch := range c.Children {
		if s.collContains(ch, path, seen) {
			return true
		}
	}
	return false
}

// File returns the database record for path.
func (s *Store) File(path string) (*FileInfo, bool) {
	f, ok := s.files[path]
	return f, ok
}

// ReadableFiles lists paths user may read, sorted.
func (s *Store) ReadableFiles(user string) []string {
	var out []string
	for p := range s.files {
		if s.CanRead(user, p) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// registerFile inserts or updates the database record (daemon path).
func (s *Store) registerFile(f *FileInfo) { s.files[f.Path] = f }

// DropDir models the designated shared directory: "users share files by
// adding them to a designated directory. This directory is monitored by a
// daemon process that propagates file information to a database" (§6.2).
type DropDir struct {
	engine  *sim.Engine
	store   *Store
	pending []*FileInfo
	ticker  *sim.Ticker

	Propagated int64
}

// NewDropDir starts the monitoring daemon with the given scan interval.
func NewDropDir(e *sim.Engine, store *Store, scanEvery sim.Duration) *DropDir {
	d := &DropDir{engine: e, store: store}
	d.ticker = e.Every(scanEvery, d.scan)
	return d
}

// Drop places a file into the shared directory; it becomes visible to the
// database at the daemon's next scan.
func (d *DropDir) Drop(owner, path string, content []byte) {
	d.pending = append(d.pending, &FileInfo{
		Path: path, Owner: owner, Size: int64(len(content)),
		Content: append([]byte(nil), content...),
	})
}

// Pending returns files dropped but not yet propagated.
func (d *DropDir) Pending() int { return len(d.pending) }

func (d *DropDir) scan() {
	for _, f := range d.pending {
		f.Added = d.engine.Now()
		d.store.registerFile(f)
		d.Propagated++
	}
	d.pending = nil
}

// Stop halts the daemon.
func (d *DropDir) Stop() { d.ticker.Stop() }
