package sharing

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"osdc/internal/sim"
)

func newStore(t *testing.T, users ...string) (*sim.Engine, *Store) {
	t.Helper()
	e := sim.NewEngine(8)
	s := NewStore(e)
	for _, u := range users {
		s.AddUser(u)
	}
	return e, s
}

func dropNow(e *sim.Engine, d *DropDir, owner, path string, content []byte) {
	d.Drop(owner, path, content)
	e.RunFor(20) // past a scan tick
}

func TestDropDaemonPropagatesOnTick(t *testing.T) {
	e, s := newStore(t, "alice")
	d := NewDropDir(e, s, 10)
	d.Drop("alice", "/share/alice/data.csv", []byte("1,2,3"))
	if _, ok := s.File("/share/alice/data.csv"); ok {
		t.Fatal("file visible before daemon scan")
	}
	if d.Pending() != 1 {
		t.Fatalf("pending = %d", d.Pending())
	}
	e.RunFor(11)
	f, ok := s.File("/share/alice/data.csv")
	if !ok {
		t.Fatal("file not propagated after scan")
	}
	if f.Owner != "alice" || f.Size != 5 {
		t.Fatalf("record = %+v", f)
	}
	if d.Propagated != 1 {
		t.Fatalf("Propagated = %d", d.Propagated)
	}
}

func TestOwnerAlwaysReads(t *testing.T) {
	e, s := newStore(t, "alice", "bob")
	d := NewDropDir(e, s, 10)
	dropNow(e, d, "alice", "/share/a", []byte("x"))
	if !s.CanRead("alice", "/share/a") {
		t.Fatal("owner cannot read own file")
	}
	if s.CanRead("bob", "/share/a") {
		t.Fatal("unshared file readable by stranger")
	}
}

func TestCollectionGrantToUser(t *testing.T) {
	e, s := newStore(t, "alice", "bob")
	d := NewDropDir(e, s, 10)
	dropNow(e, d, "alice", "/share/genome.vcf", []byte("v"))
	coll, err := s.NewCollection("alice", "t2d-release")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddFileToCollection("alice", coll.ID, "/share/genome.vcf"); err != nil {
		t.Fatal(err)
	}
	if err := s.Grant("alice", coll.ID, "user:bob", PermRead); err != nil {
		t.Fatal(err)
	}
	if !s.CanRead("bob", "/share/genome.vcf") {
		t.Fatal("grantee cannot read")
	}
}

func TestCollectionGrantToGroup(t *testing.T) {
	e, s := newStore(t, "alice", "bob", "carol")
	d := NewDropDir(e, s, 10)
	dropNow(e, d, "alice", "/share/tracks.bed", []byte("t"))
	if err := s.CreateGroup("alice", "consortium", "bob"); err != nil {
		t.Fatal(err)
	}
	coll, _ := s.NewCollection("alice", "release")
	if err := s.AddFileToCollection("alice", coll.ID, "/share/tracks.bed"); err != nil {
		t.Fatal(err)
	}
	if err := s.Grant("alice", coll.ID, "group:consortium", PermRead); err != nil {
		t.Fatal(err)
	}
	if !s.CanRead("bob", "/share/tracks.bed") {
		t.Fatal("group member cannot read")
	}
	if s.CanRead("carol", "/share/tracks.bed") {
		t.Fatal("non-member can read")
	}
	// Group modification: alice adds carol.
	if err := s.ModifyGroup("alice", "consortium", "carol", true); err != nil {
		t.Fatal(err)
	}
	if !s.CanRead("carol", "/share/tracks.bed") {
		t.Fatal("newly added member cannot read")
	}
}

func TestNestedCollectionsInheritAccess(t *testing.T) {
	e, s := newStore(t, "alice", "bob")
	d := NewDropDir(e, s, 10)
	dropNow(e, d, "alice", "/share/deep.dat", []byte("d"))
	parent, _ := s.NewCollection("alice", "project")
	child, _ := s.NewCollection("alice", "subdir")
	if err := s.AddFileToCollection("alice", child.ID, "/share/deep.dat"); err != nil {
		t.Fatal(err)
	}
	if err := s.Nest("alice", parent.ID, child.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Grant("alice", parent.ID, "user:bob", PermRead); err != nil {
		t.Fatal(err)
	}
	if !s.CanRead("bob", "/share/deep.dat") {
		t.Fatal("grant on parent does not reach nested collection's files")
	}
}

func TestNestCycleRejected(t *testing.T) {
	_, s := newStore(t, "alice")
	a, _ := s.NewCollection("alice", "a")
	b, _ := s.NewCollection("alice", "b")
	if err := s.Nest("alice", a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Nest("alice", b.ID, a.ID); err == nil {
		t.Fatal("cycle allowed")
	}
	if err := s.Nest("alice", a.ID, a.ID); err == nil {
		t.Fatal("self-nesting allowed")
	}
}

func TestOnlyOwnerGrants(t *testing.T) {
	_, s := newStore(t, "alice", "mallory")
	coll, _ := s.NewCollection("alice", "c")
	if err := s.Grant("mallory", coll.ID, "user:mallory", PermWrite); err == nil {
		t.Fatal("non-owner granted permissions")
	}
}

func TestGroupModifyRequiresMembership(t *testing.T) {
	_, s := newStore(t, "alice", "mallory")
	if err := s.CreateGroup("alice", "g"); err != nil {
		t.Fatal(err)
	}
	if err := s.ModifyGroup("mallory", "g", "mallory", true); err == nil {
		t.Fatal("outsider modified group")
	}
}

// --- WebDAV ---

func davServer(t *testing.T) (*sim.Engine, *Store, *DropDir, *httptest.Server) {
	e, s := newStore(t, "alice", "bob")
	d := NewDropDir(e, s, 10)
	srv := httptest.NewServer(&WebDAV{Store: s})
	t.Cleanup(srv.Close)
	return e, s, d, srv
}

func davReq(t *testing.T, method, url, user, pass string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if user != "" {
		req.SetBasicAuth(user, pass)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestWebDAVRequiresAuth(t *testing.T) {
	_, _, _, srv := davServer(t)
	resp := davReq(t, "GET", srv.URL+"/share/x", "", "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d, want 401", resp.StatusCode)
	}
	if resp.Header.Get("WWW-Authenticate") == "" {
		t.Fatal("no WWW-Authenticate challenge")
	}
}

func TestWebDAVGetOwnFile(t *testing.T) {
	e, _, d, srv := davServer(t)
	dropNow(e, d, "alice", "/share/alice/hello.txt", []byte("hello webdav"))
	resp := davReq(t, "GET", srv.URL+"/share/alice/hello.txt", "alice", "alice")
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || string(body) != "hello webdav" {
		t.Fatalf("status %d body %q", resp.StatusCode, body)
	}
}

func TestWebDAVForbiddenWithoutGrant(t *testing.T) {
	e, _, d, srv := davServer(t)
	dropNow(e, d, "alice", "/share/alice/private", []byte("p"))
	resp := davReq(t, "GET", srv.URL+"/share/alice/private", "bob", "bob")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("status = %d, want 403", resp.StatusCode)
	}
}

func TestWebDAVPropfindListsReadable(t *testing.T) {
	e, s, d, srv := davServer(t)
	dropNow(e, d, "alice", "/share/alice/a.txt", []byte("aaa"))
	dropNow(e, d, "bob", "/share/bob/b.txt", []byte("b"))
	coll, _ := s.NewCollection("alice", "pub")
	if err := s.AddFileToCollection("alice", coll.ID, "/share/alice/a.txt"); err != nil {
		t.Fatal(err)
	}
	if err := s.Grant("alice", coll.ID, "user:bob", PermRead); err != nil {
		t.Fatal(err)
	}
	resp := davReq(t, "PROPFIND", srv.URL+"/", "bob", "bob")
	defer resp.Body.Close()
	if resp.StatusCode != 207 {
		t.Fatalf("status = %d, want 207 Multi-Status", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	if !strings.Contains(text, "/share/alice/a.txt") || !strings.Contains(text, "/share/bob/b.txt") {
		t.Fatalf("PROPFIND missing entries: %s", text)
	}
	if !strings.Contains(text, "multistatus") {
		t.Fatal("not a multistatus response")
	}
}

func TestWebDAVOptionsAdvertisesDAV(t *testing.T) {
	_, _, _, srv := davServer(t)
	resp := davReq(t, "OPTIONS", srv.URL+"/", "alice", "alice")
	defer resp.Body.Close()
	if resp.Header.Get("DAV") != "1" {
		t.Fatal("no DAV header")
	}
}

func TestWebDAVCustomAuth(t *testing.T) {
	e, s := newStore(t, "alice")
	_ = e
	srv := httptest.NewServer(&WebDAV{Store: s, Auth: func(u, p string) bool {
		return u == "alice" && p == "s3cret"
	}})
	defer srv.Close()
	resp := davReq(t, "OPTIONS", srv.URL+"/", "alice", "wrong")
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad password accepted: %d", resp.StatusCode)
	}
	resp = davReq(t, "OPTIONS", srv.URL+"/", "alice", "s3cret")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good password rejected: %d", resp.StatusCode)
	}
}
