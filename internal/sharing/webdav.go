package sharing

import (
	"encoding/xml"
	"fmt"
	"net/http"
	"path"
	"strings"
)

// WebDAV serves the sharing database over the WebDAV protocol subset the
// OSDC prototype used (§6.2): "The system serves the files using the WebDAV
// protocol while referencing the database backend. Users can access shared
// files on the OSDC by mounting the WebDAV file system with their own
// credentials."
//
// Supported: OPTIONS, PROPFIND (depth 1 listings as multistatus XML), GET.
// Authentication is HTTP Basic; the password check is delegated to Auth.
type WebDAV struct {
	Store *Store
	// Auth validates credentials; defaults to accepting any registered
	// user whose password equals their username (tests) — production wires
	// this to the Tukey identity proxy.
	Auth func(user, pass string) bool
}

type davResponse struct {
	XMLName xml.Name `xml:"D:response"`
	Href    string   `xml:"D:href"`
	Size    int64    `xml:"D:propstat>D:prop>D:getcontentlength"`
	Status  string   `xml:"D:propstat>D:status"`
}

type davMultistatus struct {
	XMLName   xml.Name      `xml:"D:multistatus"`
	XmlnsD    string        `xml:"xmlns:D,attr"`
	Responses []davResponse `xml:"D:response"`
}

func (d *WebDAV) authenticate(r *http.Request) (string, bool) {
	user, pass, ok := r.BasicAuth()
	if !ok {
		return "", false
	}
	if d.Auth != nil {
		if !d.Auth(user, pass) {
			return "", false
		}
		return user, true
	}
	if d.Store.users[user] && pass == user {
		return user, true
	}
	return "", false
}

// ServeHTTP implements http.Handler.
func (d *WebDAV) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	user, ok := d.authenticate(r)
	if !ok {
		w.Header().Set("WWW-Authenticate", `Basic realm="OSDC sharing"`)
		http.Error(w, "authentication required", http.StatusUnauthorized)
		return
	}
	switch r.Method {
	case http.MethodOptions:
		w.Header().Set("DAV", "1")
		w.Header().Set("Allow", "OPTIONS, GET, PROPFIND")
		w.WriteHeader(http.StatusOK)

	case "PROPFIND":
		prefix := r.URL.Path
		if !strings.HasSuffix(prefix, "/") {
			prefix += "/"
		}
		ms := davMultistatus{XmlnsD: "DAV:"}
		for _, p := range d.Store.ReadableFiles(user) {
			if !strings.HasPrefix(p, prefix) && prefix != "/" {
				continue
			}
			f, _ := d.Store.File(p)
			ms.Responses = append(ms.Responses, davResponse{
				Href: p, Size: f.Size, Status: "HTTP/1.1 200 OK",
			})
		}
		w.Header().Set("Content-Type", "application/xml; charset=utf-8")
		w.WriteHeader(207) // Multi-Status
		fmt.Fprint(w, xml.Header)
		_ = xml.NewEncoder(w).Encode(ms)

	case http.MethodGet:
		p := path.Clean(r.URL.Path)
		f, exists := d.Store.File(p)
		if !exists {
			http.NotFound(w, r)
			return
		}
		if !d.Store.CanRead(user, p) {
			http.Error(w, "forbidden", http.StatusForbidden)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(f.Content)

	default:
		http.Error(w, "method not supported", http.StatusMethodNotAllowed)
	}
}
