package lb

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"osdc/internal/telemetry"
)

// echoBackend is a fake console replica that reports its own name, so
// tests can see where each request landed.
func echoBackend(t *testing.T, name string) (*httptest.Server, *int64) {
	t.Helper()
	var hits int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		atomic.AddInt64(&hits, 1)
		fmt.Fprintf(w, "%s:%s %s", name, r.Method, r.URL.RequestURI())
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func get(t *testing.T, lb *httptest.Server, path, token string) (int, string) {
	t.Helper()
	req, _ := http.NewRequest("GET", lb.URL+path, nil)
	if token != "" {
		req.Header.Set("X-Tukey-Session", token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestSessionAffinity: requests bearing the same token land on the same
// replica every time; distinct tokens spread over the pool.
func TestSessionAffinity(t *testing.T) {
	a, _ := echoBackend(t, "a")
	b, _ := echoBackend(t, "b")
	c, _ := echoBackend(t, "c")
	pool := NewPool([]string{a.URL, b.URL, c.URL}, nil)
	front := httptest.NewServer(pool)
	defer front.Close()

	// Affinity: one token, ten requests, one backend.
	landed := map[string]bool{}
	for i := 0; i < 10; i++ {
		_, body := get(t, front, "/console/status", "tukey-sess-000042")
		landed[strings.SplitN(body, ":", 2)[0]] = true
	}
	if len(landed) != 1 {
		t.Fatalf("one session landed on %d backends: %v", len(landed), landed)
	}

	// Spread: many tokens should not all hash to one backend.
	landed = map[string]bool{}
	for i := 0; i < 64; i++ {
		_, body := get(t, front, "/console/status", fmt.Sprintf("tukey-sess-%06d", i))
		landed[strings.SplitN(body, ":", 2)[0]] = true
	}
	if len(landed) < 2 {
		t.Fatalf("64 sessions all landed on one backend")
	}
}

// TestTokenlessRoundRobin: requests without a session header rotate over
// the pool instead of hammering one replica with every login.
func TestTokenlessRoundRobin(t *testing.T) {
	a, hitsA := echoBackend(t, "a")
	b, hitsB := echoBackend(t, "b")
	pool := NewPool([]string{a.URL, b.URL}, nil)
	front := httptest.NewServer(pool)
	defer front.Close()

	for i := 0; i < 10; i++ {
		get(t, front, "/login", "")
	}
	if *hitsA != 5 || *hitsB != 5 {
		t.Fatalf("round robin split = %d/%d, want 5/5", *hitsA, *hitsB)
	}
}

// TestFailoverRetry: a dead replica's requests transparently retry on a
// surviving one — the caller sees a 200, not a 502.
func TestFailoverRetry(t *testing.T) {
	a, _ := echoBackend(t, "a")
	b, _ := echoBackend(t, "b")
	pool := NewPool([]string{a.URL, b.URL}, nil)
	front := httptest.NewServer(pool)
	defer front.Close()

	// Find a token that hashes to a, then kill a.
	var tok string
	for i := 0; ; i++ {
		tok = fmt.Sprintf("tukey-sess-%06d", i)
		_, body := get(t, front, "/x", tok)
		if strings.HasPrefix(body, "a:") {
			break
		}
	}
	a.Close()

	code, body := get(t, front, "/console/instances", tok)
	if code != http.StatusOK || !strings.HasPrefix(body, "b:") {
		t.Fatalf("failover request: code=%d body=%q, want 200 from b", code, body)
	}
	if pool.Retries == 0 {
		t.Fatal("retry counter not incremented")
	}
	if h := pool.Healthy(); h != 1 {
		t.Fatalf("healthy = %d after passive mark-down, want 1", h)
	}
	// Bodies are buffered, so POSTs retry too.
	req, _ := http.NewRequest("POST", front.URL+"/console/launch", strings.NewReader(`{"cloud":"adler"}`))
	req.Header.Set("X-Tukey-Session", tok)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "/console/launch") {
		t.Fatalf("retried POST body = %q", raw)
	}
}

// TestProbeEviction: enough failed health probes remove the backend from
// the pool entirely, and its sessions remap to survivors.
func TestProbeEviction(t *testing.T) {
	a, _ := echoBackend(t, "a")
	b, _ := echoBackend(t, "b")
	pool := NewPool([]string{a.URL, b.URL}, nil)

	if pool.Probe(2) != 0 {
		t.Fatal("healthy sweep evicted something")
	}
	if h := pool.Healthy(); h != 2 {
		t.Fatalf("healthy = %d, want 2", h)
	}

	a.Close()
	if pool.Probe(2) != 0 {
		t.Fatal("evicted after one strike, want two")
	}
	if h := pool.Healthy(); h != 1 {
		t.Fatalf("healthy after first strike = %d, want 1", h)
	}
	if pool.Probe(2) != 1 {
		t.Fatal("second strike did not evict")
	}
	if got := pool.Backends(); len(got) != 1 || got[0] != b.URL {
		t.Fatalf("backends after eviction = %v, want [%s]", got, b.URL)
	}

	// Every session now lands on b.
	front := httptest.NewServer(pool)
	defer front.Close()
	for i := 0; i < 8; i++ {
		code, body := get(t, front, "/y", fmt.Sprintf("tukey-sess-%06d", i))
		if code != http.StatusOK || !strings.HasPrefix(body, "b:") {
			t.Fatalf("post-eviction request %d: code=%d body=%q", i, code, body)
		}
	}
}

// TestProbeRecovery: a replica that comes back is marked up again rather
// than staying black-holed forever.
func TestProbeRecovery(t *testing.T) {
	var down atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			panic(http.ErrAbortHandler)
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	pool := NewPool([]string{srv.URL}, nil)

	down.Store(true)
	pool.Probe(0) // evictAfter 0: never evict
	if pool.Healthy() != 0 {
		t.Fatal("dead backend still healthy")
	}
	down.Store(false)
	pool.Probe(0)
	if pool.Healthy() != 1 {
		t.Fatal("recovered backend not marked up")
	}
}

// TestNoBackends: an empty pool answers 502, not a panic.
func TestNoBackends(t *testing.T) {
	pool := NewPool(nil, nil)
	front := httptest.NewServer(pool)
	defer front.Close()
	code, _ := get(t, front, "/x", "tok")
	if code != http.StatusBadGateway {
		t.Fatalf("empty pool code = %d, want 502", code)
	}
	if pool.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", pool.Rejected)
	}
}

// TestMetricsThroughReplicaDeath pins the balancer's health accounting
// through the registry: kill a replica, and the retry, mark-down, probe
// and eviction counters plus the backend gauges all tell the story at
// /metrics.
func TestMetricsThroughReplicaDeath(t *testing.T) {
	a, _ := echoBackend(t, "a")
	b, _ := echoBackend(t, "b")
	pool := NewPool([]string{a.URL, b.URL}, nil)
	reg := telemetry.NewRegistry()
	pool.RegisterMetrics(reg)

	snap := reg.Snapshot()
	if snap["osdc_lb_backends"] != 2 || snap["osdc_lb_backends_healthy"] != 2 {
		t.Fatalf("fresh pool gauges = %v", snap)
	}

	// Find a token pinned to a, then kill a: the proxied request must
	// retry onto b, marking a down exactly once.
	var tok string
	for i := 0; ; i++ {
		tok = fmt.Sprintf("tukey-sess-%06d", i)
		if pool.PickBackend(tok) == a.URL {
			break
		}
	}
	a.Close()
	front := httptest.NewServer(pool)
	defer front.Close()
	if code, body := get(t, front, "/x", tok); code != http.StatusOK || !strings.HasPrefix(body, "b:") {
		t.Fatalf("failover request: code=%d body=%q", code, body)
	}
	snap = reg.Snapshot()
	if snap["osdc_lb_retries_total"] != 1 || snap["osdc_lb_markdowns_total"] != 1 {
		t.Fatalf("post-failover counters = retries %v, markdowns %v",
			snap["osdc_lb_retries_total"], snap["osdc_lb_markdowns_total"])
	}
	if snap["osdc_lb_backends_healthy"] != 1 {
		t.Fatalf("healthy gauge after mark-down = %v", snap["osdc_lb_backends_healthy"])
	}

	// Two failed probes evict the corpse for good.
	pool.Probe(2)
	pool.Probe(2)
	snap = reg.Snapshot()
	if snap["osdc_lb_probe_failures_total"] != 2 {
		t.Fatalf("probe failures = %v, want 2", snap["osdc_lb_probe_failures_total"])
	}
	if snap["osdc_lb_evictions_total"] != 1 || snap["osdc_lb_backends"] != 1 {
		t.Fatalf("post-eviction: evictions %v, backends %v",
			snap["osdc_lb_evictions_total"], snap["osdc_lb_backends"])
	}
	if snap["osdc_lb_rejected_total"] != 0 {
		t.Fatalf("rejected = %v, want 0 (b absorbed everything)", snap["osdc_lb_rejected_total"])
	}
}
