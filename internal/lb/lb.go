// Package lb is the console's front door: an HTTP reverse proxy fanning
// requests over N stateless console replicas.
//
// Placement is a consistent-hash ring keyed by the session token
// (X-Tukey-Session), so one user's requests stick to one replica — with
// the shared state plane any replica *can* serve any session, but affinity
// keeps each replica's HTTP connections and caches warm and makes request
// traces readable. Tokenless requests (logins) round-robin. Ring hashing
// (rather than hash-mod-N) means losing a replica remaps only the sessions
// it owned; everyone else stays put.
//
// Health is tracked two ways: active probes against each backend's
// /healthz, and passive mark-down when a proxied request fails at the
// transport layer (the request is retried on the next healthy backend, so
// a replica dying mid-flight costs the user nothing — their session lives
// in the state plane, not the corpse).
package lb

import (
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"osdc/internal/telemetry"
)

// vnodes is how many ring points each backend gets. 64 points per backend
// keeps the max/min key-share ratio near 1 for single-digit replica
// counts without making ring rebuilds expensive.
const vnodes = 64

// maxRetries bounds how many distinct backends one request may be tried
// against before the balancer gives up with a 502.
const maxRetries = 3

// backend is one console replica.
type backend struct {
	url  string
	down atomic.Bool
	// fails counts consecutive health-probe failures; Evict threshold.
	fails int
}

// Pool balances requests over console replicas.
type Pool struct {
	client *http.Client

	mu       sync.Mutex
	backends []*backend
	ring     []ringPoint // sorted by hash
	rr       uint64      // round-robin cursor for tokenless requests

	// Retries counts requests that needed a second (or third) backend;
	// Rejected counts requests that ran out of healthy backends.
	Retries  int64
	Rejected int64
	// MarkDowns counts passive mark-downs (a proxied request failed at
	// the transport layer); ProbeFails counts failed health probes;
	// Evictions counts backends removed from the pool for good.
	MarkDowns  int64
	ProbeFails int64
	Evictions  int64
}

type ringPoint struct {
	hash uint32
	b    *backend
}

// NewPool builds a balancer over the given replica base URLs. A nil client
// gets a pooled default sized for many concurrent console requests.
func NewPool(urls []string, client *http.Client) *Pool {
	if client == nil {
		client = &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 64,
			},
		}
	}
	p := &Pool{client: client}
	for _, u := range urls {
		p.backends = append(p.backends, &backend{url: strings.TrimRight(u, "/")})
	}
	p.rebuildRing()
	return p
}

// rebuildRing recomputes the hash ring from the live backend list. Callers
// hold p.mu (or are the constructor).
func (p *Pool) rebuildRing() {
	p.ring = p.ring[:0]
	for _, b := range p.backends {
		for v := 0; v < vnodes; v++ {
			p.ring = append(p.ring, ringPoint{hash: hash32(fmt.Sprintf("%s#%d", b.url, v)), b: b})
		}
	}
	sort.Slice(p.ring, func(i, j int) bool { return p.ring[i].hash < p.ring[j].hash })
}

func hash32(s string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(s))
	x := h.Sum32()
	// FNV-1a alone has weak avalanche on its low bytes: session tokens
	// differ only in their trailing digits, and without finalization the
	// whole token population lands in a few narrow bands of the ring,
	// starving some backends entirely. The murmur3 finalizer spreads them.
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

// Backends returns the current backend URLs (healthy or not).
func (p *Pool) Backends() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.backends))
	for i, b := range p.backends {
		out[i] = b.url
	}
	return out
}

// Healthy returns how many backends are currently up.
func (p *Pool) Healthy() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, b := range p.backends {
		if !b.down.Load() {
			n++
		}
	}
	return n
}

// Evict permanently removes a backend from the pool (dead-replica
// eviction: after enough failed probes there is no point hashing sessions
// at a corpse — removing it from the ring hands its key range to the
// survivors).
func (p *Pool) Evict(url string) bool {
	url = strings.TrimRight(url, "/")
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, b := range p.backends {
		if b.url == url {
			p.backends = append(p.backends[:i], p.backends[i+1:]...)
			p.rebuildRing()
			return true
		}
	}
	return false
}

// pick returns the preferred backend for a session token plus the ordered
// fallbacks after it (walking the ring), skipping down backends. Tokenless
// requests start from the round-robin cursor instead of a hash.
func (p *Pool) pick(token string) []*backend {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.backends) == 0 {
		return nil
	}
	// Order backends: ring walk from the token's hash, or round-robin.
	var ordered []*backend
	seen := make(map[*backend]bool, len(p.backends))
	if token != "" && len(p.ring) > 0 {
		h := hash32(token)
		start := sort.Search(len(p.ring), func(i int) bool { return p.ring[i].hash >= h })
		for i := 0; i < len(p.ring) && len(ordered) < len(p.backends); i++ {
			b := p.ring[(start+i)%len(p.ring)].b
			if !seen[b] {
				seen[b] = true
				ordered = append(ordered, b)
			}
		}
	} else {
		start := int(p.rr % uint64(len(p.backends)))
		p.rr++
		for i := 0; i < len(p.backends); i++ {
			ordered = append(ordered, p.backends[(start+i)%len(p.backends)])
		}
	}
	// Healthy backends first, marked-down ones as a last resort (they may
	// have recovered before the next probe notices).
	healthy := ordered[:0:len(ordered)]
	var down []*backend
	for _, b := range ordered {
		if b.down.Load() {
			down = append(down, b)
		} else {
			healthy = append(healthy, b)
		}
	}
	return append(healthy, down...)
}

// PickBackend reports which backend URL a session token is currently
// pinned to ("" with an empty pool) — an operator's "where is this user"
// probe; tests use it to kill exactly the replica a session lives on.
func (p *Pool) PickBackend(token string) string {
	bs := p.pick(token)
	if len(bs) == 0 {
		return ""
	}
	return bs[0].url
}

// ServeHTTP proxies one console request, retrying transport-level failures
// on the next backend in session order. The body is buffered so a retry
// can replay it.
func (p *Pool) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			http.Error(w, "reading request body: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	candidates := p.pick(r.Header.Get("X-Tukey-Session"))
	if len(candidates) > maxRetries {
		candidates = candidates[:maxRetries]
	}
	for i, b := range candidates {
		if i > 0 {
			atomic.AddInt64(&p.Retries, 1)
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, b.url+r.URL.RequestURI(), strings.NewReader(string(body)))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := p.client.Do(req)
		if err != nil {
			// Transport failure: the replica is gone or wedged. Mark it
			// down (the prober will revive or evict it) and try the next.
			if !b.down.Swap(true) {
				atomic.AddInt64(&p.MarkDowns, 1)
			}
			continue
		}
		// Any HTTP response — including 4xx/5xx — is the console speaking;
		// relay it. Only transport errors mean "try another replica".
		copyResponse(w, resp)
		return
	}
	atomic.AddInt64(&p.Rejected, 1)
	http.Error(w, "no console replica reachable", http.StatusBadGateway)
}

func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// Probe runs one health sweep: GET /healthz on every backend. A backend
// that answers 200 is marked up (and its failure streak cleared); one that
// does not gets a strike, and evictAfter consecutive strikes removes it
// from the pool entirely (0 = never evict). Returns how many backends were
// evicted this sweep.
func (p *Pool) Probe(evictAfter int) int {
	p.mu.Lock()
	backends := append([]*backend(nil), p.backends...)
	p.mu.Unlock()
	evicted := 0
	for _, b := range backends {
		resp, err := p.client.Get(b.url + "/healthz")
		ok := err == nil && resp.StatusCode == http.StatusOK
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		p.mu.Lock()
		if ok {
			b.fails = 0
			b.down.Store(false)
		} else {
			atomic.AddInt64(&p.ProbeFails, 1)
			b.fails++
			b.down.Store(true)
			if evictAfter > 0 && b.fails >= evictAfter {
				p.mu.Unlock()
				if p.Evict(b.url) {
					atomic.AddInt64(&p.Evictions, 1)
					evicted++
				}
				p.mu.Lock()
			}
		}
		p.mu.Unlock()
	}
	return evicted
}

// RegisterMetrics contributes the balancer's health accounting to reg:
// retry/rejection/mark-down/probe/eviction counters plus live backend
// gauges — everything an operator needs to see a replica die and the
// pool absorb it.
func (p *Pool) RegisterMetrics(reg *telemetry.Registry) {
	ctr := func(name, help string, v *int64) {
		reg.CounterFunc(name, help, func() float64 { return float64(atomic.LoadInt64(v)) })
	}
	ctr("osdc_lb_retries_total", "Requests retried on a second (or third) backend.", &p.Retries)
	ctr("osdc_lb_rejected_total", "Requests that ran out of reachable backends (502).", &p.Rejected)
	ctr("osdc_lb_markdowns_total", "Passive backend mark-downs from transport failures.", &p.MarkDowns)
	ctr("osdc_lb_probe_failures_total", "Failed /healthz probes.", &p.ProbeFails)
	ctr("osdc_lb_evictions_total", "Backends evicted from the pool.", &p.Evictions)
	reg.GaugeFunc("osdc_lb_backends", "Backends in the pool, healthy or not.",
		func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return float64(len(p.backends))
		})
	reg.GaugeFunc("osdc_lb_backends_healthy", "Backends currently marked up.",
		func() float64 { return float64(p.Healthy()) })
}

// ProbeLoop runs Probe every interval until stop is closed.
func (p *Pool) ProbeLoop(interval time.Duration, evictAfter int, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			p.Probe(evictAfter)
		}
	}
}
