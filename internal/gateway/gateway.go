// Package gateway implements the Samba-like permission-enforcing re-export
// of GlusterFS shares (paper §7.1).
//
// OSDC users have root on their virtual machines, so they cannot be allowed
// to mount the GlusterFS shares directly — GlusterFS would grant them root
// on the whole share. Instead the shares are exported through a gateway
// that authenticates each user and enforces per-path permissions,
// independent of whatever uid the client claims.
package gateway

import (
	"fmt"
	"sort"
	"strings"

	"osdc/internal/dfs"
)

// Mode is a simplified POSIX-style permission triple on a path prefix.
type Mode uint8

// Permission bits.
const (
	PermRead Mode = 1 << iota
	PermWrite
)

// ACE is one access-control entry: who may do what under a path prefix.
type ACE struct {
	Prefix string // path prefix this entry governs
	User   string // exact user, or "" if group-scoped
	Group  string // group name, or "" if user-scoped
	Mode   Mode
}

// Export is a gateway share: a DFS volume plus its access-control list.
type Export struct {
	Name   string
	volume *dfs.Volume
	acl    []ACE
	groups map[string]map[string]bool // group -> members

	Grants  int64 // permitted operations
	Denials int64 // rejected operations
}

// New creates an export over a volume.
func New(name string, vol *dfs.Volume) *Export {
	return &Export{Name: name, volume: vol, groups: make(map[string]map[string]bool)}
}

// AddGroup registers a group with members. Re-adding replaces membership.
func (e *Export) AddGroup(group string, members ...string) {
	m := make(map[string]bool, len(members))
	for _, u := range members {
		m[u] = true
	}
	e.groups[group] = m
}

// Allow appends an ACE. Longest-prefix entries win over shorter ones; among
// equal prefixes, later entries win.
func (e *Export) Allow(ace ACE) {
	if !strings.HasPrefix(ace.Prefix, "/") {
		panic("gateway: ACE prefix must start with /")
	}
	e.acl = append(e.acl, ace)
	// Keep stable longest-prefix-first evaluation order.
	sort.SliceStable(e.acl, func(i, j int) bool {
		return len(e.acl[i].Prefix) > len(e.acl[j].Prefix)
	})
}

// ErrDenied reports a permission failure.
type ErrDenied struct {
	User string
	Path string
	Op   string
}

func (e ErrDenied) Error() string {
	return fmt.Sprintf("gateway: %s denied %s on %s", e.User, e.Op, e.Path)
}

// check resolves the effective mode for user on path: among the ACEs that
// match the user (directly, via a group, or as a world entry), the ones at
// the longest matching prefix decide, and their modes combine. A matching
// longest-prefix entry with Mode 0 is therefore an explicit deny that
// shorter prefixes cannot override.
func (e *Export) check(user, path string, want Mode) error {
	bestLen := -1
	var mode Mode
	for _, ace := range e.acl {
		if !strings.HasPrefix(path, ace.Prefix) {
			continue
		}
		match := false
		switch {
		case ace.User != "" && ace.User == user:
			match = true
		case ace.Group != "" && e.groups[ace.Group][user]:
			match = true
		case ace.User == "" && ace.Group == "":
			match = true // world entry
		}
		if !match {
			continue
		}
		switch {
		case len(ace.Prefix) > bestLen:
			bestLen = len(ace.Prefix)
			mode = ace.Mode
		case len(ace.Prefix) == bestLen:
			mode |= ace.Mode
		}
	}
	if bestLen >= 0 && mode&want == want {
		e.Grants++
		return nil
	}
	e.Denials++
	op := "read"
	if want&PermWrite != 0 {
		op = "write"
	}
	return ErrDenied{User: user, Path: path, Op: op}
}

// Read fetches a file on behalf of user.
func (e *Export) Read(user, path string) (*dfs.File, error) {
	if err := e.check(user, path, PermRead); err != nil {
		return nil, err
	}
	return e.volume.Read(path)
}

// Write stores a file on behalf of user.
func (e *Export) Write(user, path string, content []byte) error {
	if err := e.check(user, path, PermWrite); err != nil {
		return err
	}
	return e.volume.Write(path, content)
}

// Delete removes a file on behalf of user (requires write).
func (e *Export) Delete(user, path string) error {
	if err := e.check(user, path, PermWrite); err != nil {
		return err
	}
	return e.volume.Delete(path)
}

// List enumerates paths under prefix that user may read.
func (e *Export) List(user, prefix string) []string {
	var out []string
	for _, p := range e.volume.List(prefix) {
		if e.check(user, p, PermRead) == nil {
			out = append(out, p)
		}
	}
	return out
}

// MountRaw models a direct GlusterFS mount attempt from a user VM: always
// rejected, because the current GlusterFS "would allow them root access on
// the whole share" (§7.1).
func (e *Export) MountRaw(user string) error {
	e.Denials++
	return fmt.Errorf("gateway: raw glusterfs mount refused for %s: clients have VM root; use the gateway export", user)
}
