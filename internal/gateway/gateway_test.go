package gateway

import (
	"fmt"
	"testing"

	"osdc/internal/dfs"
	"osdc/internal/sim"
	"osdc/internal/simdisk"
)

func newExport(t *testing.T) *Export {
	t.Helper()
	e := sim.NewEngine(1)
	var bricks []*dfs.Brick
	for i := 0; i < 2; i++ {
		d := simdisk.New(e, fmt.Sprintf("d%d", i), 3072e6, 1136e6, 1<<40)
		bricks = append(bricks, dfs.NewBrick(fmt.Sprintf("b%d", i), "n", d))
	}
	vol, err := dfs.NewVolume(e, "vol", 1, dfs.Version33, bricks)
	if err != nil {
		t.Fatal(err)
	}
	return New("osdc-root", vol)
}

func TestOwnerReadWrite(t *testing.T) {
	ex := newExport(t)
	ex.Allow(ACE{Prefix: "/home/alice/", User: "alice", Mode: PermRead | PermWrite})
	if err := ex.Write("alice", "/home/alice/notes.txt", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	f, err := ex.Read("alice", "/home/alice/notes.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(f.Content) != "hi" {
		t.Fatal("content mismatch")
	}
}

func TestStrangerDenied(t *testing.T) {
	ex := newExport(t)
	ex.Allow(ACE{Prefix: "/home/alice/", User: "alice", Mode: PermRead | PermWrite})
	if err := ex.Write("alice", "/home/alice/secret", []byte("s")); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Read("mallory", "/home/alice/secret"); err == nil {
		t.Fatal("stranger read allowed")
	} else if _, ok := err.(ErrDenied); !ok {
		t.Fatalf("got %T, want ErrDenied", err)
	}
	if ex.Denials == 0 {
		t.Fatal("denial not counted")
	}
}

func TestGroupAccess(t *testing.T) {
	ex := newExport(t)
	ex.AddGroup("t2dgenes", "alice", "bob")
	ex.Allow(ACE{Prefix: "/projects/t2d/", Group: "t2dgenes", Mode: PermRead | PermWrite})
	if err := ex.Write("alice", "/projects/t2d/variants.vcf", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Read("bob", "/projects/t2d/variants.vcf"); err != nil {
		t.Fatalf("group member denied: %v", err)
	}
	if _, err := ex.Read("carol", "/projects/t2d/variants.vcf"); err == nil {
		t.Fatal("non-member allowed")
	}
}

func TestWorldReadablePublicData(t *testing.T) {
	ex := newExport(t)
	ex.Allow(ACE{Prefix: "/public/", Mode: PermRead}) // world-readable
	ex.Allow(ACE{Prefix: "/public/", User: "curator", Mode: PermRead | PermWrite})
	if err := ex.Write("curator", "/public/1000genomes/README", []byte("open")); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Read("anyone", "/public/1000genomes/README"); err != nil {
		t.Fatalf("public read denied: %v", err)
	}
	if err := ex.Write("anyone", "/public/1000genomes/README", []byte("vandal")); err == nil {
		t.Fatal("world write allowed on read-only public data")
	}
}

func TestLongestPrefixWins(t *testing.T) {
	ex := newExport(t)
	ex.Allow(ACE{Prefix: "/data/", User: "alice", Mode: PermRead | PermWrite})
	ex.Allow(ACE{Prefix: "/data/restricted/", User: "alice", Mode: 0}) // explicit deny
	if err := ex.Write("alice", "/data/ok.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := ex.Write("alice", "/data/restricted/x", []byte("x")); err == nil {
		t.Fatal("longest-prefix deny not enforced")
	}
}

func TestDeleteRequiresWrite(t *testing.T) {
	ex := newExport(t)
	ex.Allow(ACE{Prefix: "/d/", User: "w", Mode: PermRead | PermWrite})
	ex.Allow(ACE{Prefix: "/d/", User: "r", Mode: PermRead})
	if err := ex.Write("w", "/d/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := ex.Delete("r", "/d/f"); err == nil {
		t.Fatal("read-only user deleted file")
	}
	if err := ex.Delete("w", "/d/f"); err != nil {
		t.Fatal(err)
	}
}

func TestListFiltersByPermission(t *testing.T) {
	ex := newExport(t)
	ex.Allow(ACE{Prefix: "/mix/alice/", User: "alice", Mode: PermRead | PermWrite})
	ex.Allow(ACE{Prefix: "/mix/bob/", User: "bob", Mode: PermRead | PermWrite})
	if err := ex.Write("alice", "/mix/alice/a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := ex.Write("bob", "/mix/bob/b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	got := ex.List("alice", "/mix/")
	if len(got) != 1 || got[0] != "/mix/alice/a" {
		t.Fatalf("List = %v, want only alice's file", got)
	}
}

func TestRawMountAlwaysRefused(t *testing.T) {
	ex := newExport(t)
	if err := ex.MountRaw("root-on-vm"); err == nil {
		t.Fatal("raw gluster mount must be refused")
	}
}

func TestBadACEPrefixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newExport(t).Allow(ACE{Prefix: "relative", User: "x", Mode: PermRead})
}
