// Package core assembles the Open Science Data Cloud: the four-site
// federation of Figure 3, the resource inventory of Table 2, and the
// services of Figure 1, built from the substrate packages.
//
// A Federation holds:
//
//   - the WAN topology (simnet) joining the two Chicago data centers, the
//     Livermore Valley Open Campus and AMPATH/Miami through StarLight;
//   - OSDC-Adler (OpenStack-like) and OSDC-Sullivan (Eucalyptus-like)
//     utility clouds with their GlusterFS-like volumes and Samba-like
//     permission gateways;
//   - OSDC-Root, the ~1 PB storage cloud holding the public datasets;
//   - OCC-Y and OCC-Matsu, the Hadoop-like data clouds;
//   - the science-cloud services: Tukey middleware, ARK dataset IDs, the
//     public-data catalog, file sharing, billing/accounting and monitoring.
package core

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"osdc/internal/ark"
	"osdc/internal/billing"
	"osdc/internal/cloudapi"
	"osdc/internal/datasets"
	"osdc/internal/datastore"
	"osdc/internal/dfs"
	"osdc/internal/gateway"
	"osdc/internal/iaas"
	"osdc/internal/mapred"
	"osdc/internal/monitor"
	"osdc/internal/sharing"
	"osdc/internal/sim"
	"osdc/internal/simdisk"
	"osdc/internal/simnet"
	"osdc/internal/tukey"
)

// TB is one terabyte in bytes.
const TB = int64(1) << 40

// Cluster names from Table 2 / §7.1.
const (
	ClusterAdler    = "OSDC-Adler"
	ClusterSullivan = "OSDC-Sullivan"
	ClusterRoot     = "OSDC-Root"
	ClusterOCCY     = "OCC-Y"
	ClusterMatsu    = "OCC-Matsu"
)

// Federation is the assembled OSDC.
type Federation struct {
	// Engine is the console engine — the anchor shard of Set. All
	// service-plane timers (billing pollers, monitoring sweeps, the WAN)
	// live here; per-entity timers spread across Set's shards when
	// Options.Shards > 1.
	Engine *sim.Engine
	// Set is the sharded simulation kernel. With the default Shards=1 it
	// holds only the anchor and the federation behaves exactly as the
	// single-engine assembly (goldens are bit-identical).
	Set     *sim.ShardSet
	Network *simnet.Network

	Adler    *iaas.Cloud
	Sullivan *iaas.Cloud

	// AdlerAPI and SullivanAPI are the transports the science-cloud
	// services use to reach the clouds: Local wrappers in this
	// single-process assembly, swappable for Remotes via UseCloudAPIs in
	// the per-site topology.
	AdlerAPI    cloudapi.CloudAPI
	SullivanAPI cloudapi.CloudAPI

	AdlerGFS    *dfs.Volume // 156 TB (§7.1)
	SullivanGFS *dfs.Volume // 38 TB
	RootGFS     *dfs.Volume // 459 TB primary store + ~1 PB raw cloud

	RootExport *gateway.Export

	OCCY  *mapred.Cluster // 928 cores, 1.0 PB (Table 2)
	Matsu *mapred.Cluster // ~120 cores, 100 TB

	IDs      *ark.Service
	Catalog  *datasets.Catalog
	Sharing  *sharing.Store
	DropDir  *sharing.DropDir
	Biller   *billing.Biller
	Tukey    *tukey.Middleware
	Nagios   *monitor.Master
	UsageMon *monitor.UsageMonitor

	// TukeyReplicas are stateless clones of Tukey created by
	// AddTukeyReplica: same IdPs and clouds, a shared session store, a
	// distinct token prefix each. EnrollResearcher fans credential grants
	// across them so every replica can serve every researcher.
	TukeyReplicas []*tukey.Middleware

	// Identity providers, exposed so examples and benchmarks can enroll
	// accounts.
	ShibIdP   *tukey.ShibbolethIdP
	OpenIDIdP *tukey.OpenIDIdP

	// ClockSync is the clock coordinator keeping followed per-site engines
	// within a bounded skew of the console engine; nil until StartClockSync
	// (free-running remote sites never need one).
	ClockSync *cloudapi.ClockCoordinator

	// Stores are the per-site dataset stores, keyed by cluster name:
	// OSDC-Root adopts the catalog's master copies (the bytes the catalog
	// published onto RootGFS), the utility clouds start empty and receive
	// replicas from the replication coordinator.
	Stores map[string]*datastore.Store
	// Replication is the data-plane coordinator; nil until
	// StartReplication.
	Replication *datastore.Coordinator
}

// Options tunes federation construction.
type Options struct {
	Seed uint64
	// Scale shrinks server counts by this divisor for fast tests (1 =
	// paper-scale). Capacities in the inventory report are unaffected.
	Scale int
	// Shards is the simulation kernel's shard count (<= 1 means a single
	// engine). With K > 1, per-entity timers (instance boots, workload
	// flows keyed by entity ID) spread over K engines advanced in
	// lockstep by Federation.RunFor; everything scheduled on f.Engine
	// stays on the anchor shard.
	Shards int
}

// New builds the full federation. With Scale=1 this is the paper-scale
// deployment: ~2300 cores across compute and Hadoop clusters.
func New(opt Options) (*Federation, error) {
	if opt.Scale < 1 {
		opt.Scale = 1
	}
	set := sim.NewShardSet(opt.Seed, opt.Shards)
	e := set.Anchor()
	f := &Federation{Engine: e, Set: set}

	// --- network: Figure 3's four data centers ---
	f.Network = simnet.BuildOSDCTopology(e, simnet.DefaultWAN())

	// --- compute clouds ---
	// OSDC-Adler & Sullivan together are 1248 cores (Table 2): 156 paper
	// servers. Split 2 racks Adler / 2 racks Sullivan.
	f.Adler = BuildCloud(e, ClusterAdler, opt.Scale)
	f.Sullivan = BuildCloud(e, ClusterSullivan, opt.Scale)
	if set.K() > 1 {
		f.Adler.SetShards(set)
		f.Sullivan.SetShards(set)
	}
	f.AdlerAPI = cloudapi.NewLocal(f.Adler)
	f.SullivanAPI = cloudapi.NewLocal(f.Sullivan)

	// --- storage volumes (§7.1 sizes) ---
	var err error
	if f.AdlerGFS, err = buildVolume(e, "adler-gfs", simnet.SiteChicagoKenwood, 156*TB, 4/boundScale(opt.Scale, 4)); err != nil {
		return nil, err
	}
	if f.SullivanGFS, err = buildVolume(e, "sullivan-gfs", simnet.SiteChicagoNU, 38*TB, 2); err != nil {
		return nil, err
	}
	// Table 2: OSDC-Root is "approximately 1 PB of disk" (459 TB of it is
	// the §7.1 primary GlusterFS share). One replica set: the public
	// datasets are placed together, so a multi-set elastic hash could
	// overload a single set.
	if f.RootGFS, err = buildVolume(e, "root-gfs", simnet.SiteChicagoKenwood, 1024*TB, 2); err != nil {
		return nil, err
	}
	f.RootExport = gateway.New("osdc-root", f.RootGFS)
	// Public data world-readable; curator-writable.
	f.RootExport.Allow(gateway.ACE{Prefix: "/glusterfs/public/", Mode: gateway.PermRead})
	f.RootExport.Allow(gateway.ACE{Prefix: "/glusterfs/public/", User: "curator", Mode: gateway.PermRead | gateway.PermWrite})

	// --- Hadoop data clouds ---
	f.OCCY = buildHadoop(e, ClusterOCCY, 116/opt.Scale, 8)  // 928 cores
	f.Matsu = buildHadoop(e, ClusterMatsu, 15/opt.Scale, 8) // 120 cores

	// --- science cloud services ---
	f.IDs = ark.NewService("")
	f.Catalog = datasets.NewCatalog(f.IDs, f.RootGFS)
	f.Catalog.AddCurator("curator")
	for _, d := range datasets.PaperDatasets() {
		if _, err := f.Catalog.Publish("curator", d); err != nil {
			return nil, fmt.Errorf("core: publishing %s: %w", d.Name, err)
		}
	}
	// --- per-site dataset stores (the data plane's Local backends) ---
	f.Stores = map[string]*datastore.Store{
		ClusterAdler:    datastore.NewStore(ClusterAdler, simnet.SiteChicagoKenwood, f.AdlerGFS),
		ClusterSullivan: datastore.NewStore(ClusterSullivan, simnet.SiteChicagoNU, f.SullivanGFS),
		ClusterRoot:     datastore.NewStore(ClusterRoot, simnet.SiteChicagoKenwood, f.RootGFS),
	}
	for _, d := range f.Catalog.All() {
		// The master copies already live on RootGFS (Publish wrote them);
		// Adopt registers the replicas without accounting the bytes twice.
		if err := f.Stores[ClusterRoot].Adopt(datastore.Replica{Dataset: d.Name, SizeBytes: d.SizeBytes, Version: 1}); err != nil {
			return nil, fmt.Errorf("core: adopting %s on %s: %w", d.Name, ClusterRoot, err)
		}
	}

	f.Sharing = sharing.NewStore(e)
	f.DropDir = sharing.NewDropDir(e, f.Sharing, 10)
	f.Biller = billing.New(e, billing.DefaultRates(), []cloudapi.CloudAPI{f.AdlerAPI, f.SullivanAPI}, nil)
	f.UsageMon = monitor.NewUsageMonitor(e, []cloudapi.CloudAPI{f.AdlerAPI, f.SullivanAPI}, 5*sim.Minute)

	// --- Tukey middleware with both IdPs ---
	f.Tukey = tukey.NewMiddleware()
	shib := tukey.NewShibboleth("uchicago.edu")
	oid := tukey.NewOpenID("https://id.opensciencedatacloud.org")
	f.Tukey.RegisterIdP(shib)
	f.Tukey.RegisterIdP(oid)
	f.ShibIdP, f.OpenIDIdP = shib, oid

	// --- Nagios over every cluster's nodes ---
	f.Nagios = monitor.NewMaster(e, 5*sim.Minute, nil)
	for _, vol := range []*dfs.Volume{f.AdlerGFS, f.SullivanGFS, f.RootGFS} {
		vol := vol
		for _, b := range vol.Bricks() {
			b := b
			a := monitor.NewAgent(b.Name)
			a.Register(monitor.Check{
				Name:   "disk-util",
				Plugin: func() (float64, error) { return b.Disk.Utilization() * 100, nil },
				Warn:   80, Crit: 95,
			})
			f.Nagios.AddAgent(a)
		}
	}
	return f, nil
}

// EngineFor returns the shard engine owning key (an instance ID, flow ID,
// or any stable entity key). With the default single-shard kernel this is
// always the console engine.
func (f *Federation) EngineFor(key string) *sim.Engine { return f.Set.Shard(key) }

// RunFor advances the whole kernel — every shard — by d virtual seconds
// in lockstep. Scenarios running a sharded federation must use this (or
// f.Set.RunUntil) instead of f.Engine.RunFor, which would advance only
// the anchor shard. With Shards=1 the two are identical.
func (f *Federation) RunFor(d sim.Duration) sim.Time { return f.Set.RunFor(d) }

// BuildCloud constructs one of the federation's utility clouds — racks,
// images, stack dialect per Table 2 — standalone on the given engine. It is
// the per-site building block: core.New uses it for the single-process
// assembly, and the remote topologies (tukey-server -remote-clouds, the
// console-load remote scenario) call it once per private engine to stand
// each cloud up behind its own cloudapi.Server.
func BuildCloud(e *sim.Engine, name string, scale int) *iaas.Cloud {
	if scale < 1 {
		scale = 1
	}
	var c *iaas.Cloud
	switch name {
	case ClusterAdler:
		c = iaas.NewCloud(e, ClusterAdler, "openstack", simnet.SiteChicagoKenwood)
		c.AddRack("adler-r1", 39/scale)
		c.AddRack("adler-r2", 39/scale)
	case ClusterSullivan:
		c = iaas.NewCloud(e, ClusterSullivan, "eucalyptus", simnet.SiteChicagoNU)
		c.AddRack("sullivan-r1", 39/scale)
		c.AddRack("sullivan-r2", 39/scale)
	default:
		panic("core: BuildCloud knows no cloud " + name)
	}
	c.RegisterImage(iaas.Image{Name: "ubuntu-12.04-server", Public: true, Portable: true})
	c.RegisterImage(iaas.Image{Name: "osdc-datasci", Public: true, Portable: true,
		Tools: []string{"python-numpy", "R", "hadoop-client"}})
	return c
}

// RemoteSiteOptions tune StartRemoteSitesWithOptions.
type RemoteSiteOptions struct {
	Seed  uint64
	Scale int
	// Speedup is simulated seconds per wall second for free-running site
	// clocks; in follow mode it caps the catch-up rate instead (0 =
	// unbounded).
	Speedup float64
	// Clock picks every site's clock mode. With ClockFollow and a positive
	// SyncInterval, a ClockCoordinator is started pushing the console
	// engine's time to each site (f.ClockSync; stopped by StopClockSync or
	// left to the caller).
	Clock        cloudapi.ClockMode
	SyncInterval time.Duration
	// Client, when set, is the HTTP client every site Remote uses (the
	// -site-timeout knob); nil means a private client with
	// cloudapi.DefaultTimeout.
	Client *http.Client
	// Clouds names the utility clouds to stand up as sites; nil means both.
	// tukey-server narrows this when -site attaches a cloud running in
	// another process instead.
	Clouds []string
	// Datasets stands a per-site dataset store up on each site's engine
	// (its own volume, sized per Table 2) and serves it on the site's
	// /cloudapi/datasets plane.
	Datasets bool
	// OperatorSecret gates operator-plane writes on every site server;
	// the Remotes built here carry it.
	OperatorSecret string
	// Shards is each site's kernel shard count (<= 1 means a single
	// engine per site, the historic behavior). With K > 1 every site gets
	// a ShardSet whose anchor carries the site's offset seed, so K=1
	// remains bit-identical.
	Shards int
}

// StartRemoteSites converts the federation to the per-site topology with
// free-running site clocks — the historic behavior; see
// StartRemoteSitesWithOptions for the clock-mode choice.
func (f *Federation) StartRemoteSites(seed uint64, scale int, speedup float64) ([]*cloudapi.Site, error) {
	return f.StartRemoteSitesWithOptions(RemoteSiteOptions{Seed: seed, Scale: scale, Speedup: speedup})
}

// StartRemoteSitesWithOptions converts the federation to the per-site
// topology: each utility cloud is stood up as its own cloudapi.Site — a
// private engine at an offset seed, its own clock source and its own HTTP
// listener — then attached to Tukey and wired into billing/monitoring
// through cloudapi.Remote transports only. With opt.Clock ==
// cloudapi.ClockFollow the sites' engines advance only toward targets
// pushed from the console engine (the coordinator starts when
// opt.SyncInterval > 0). The returned sites are the caller's to Close.
func (f *Federation) StartRemoteSitesWithOptions(opt RemoteSiteOptions) ([]*cloudapi.Site, error) {
	names := opt.Clouds
	if names == nil {
		names = []string{ClusterAdler, ClusterSullivan}
	}
	var sites []*cloudapi.Site
	var remotes []cloudapi.CloudAPI
	var syncTargets []cloudapi.ClockSyncTarget
	for i, name := range names {
		set := sim.NewShardSet(opt.Seed+uint64(i+1)*1000, opt.Shards)
		e := set.Anchor()
		siteOpts := cloudapi.SiteOptions{Clock: opt.Clock, Speedup: opt.Speedup, OperatorSecret: opt.OperatorSecret}
		if set.K() > 1 {
			siteOpts.Set = set
		}
		if opt.Datasets {
			vol, err := BuildDatasetVolume(e, name)
			if err != nil {
				for _, s := range sites {
					s.Close()
				}
				return nil, err
			}
			siteOpts.Datasets = datastore.NewStore(name, SiteOf(name), vol)
		}
		site, err := cloudapi.StartSiteWithOptions(e, BuildCloud(e, name, opt.Scale), siteOpts)
		if err != nil {
			for _, s := range sites {
				s.Close()
			}
			return nil, err
		}
		sites = append(sites, site)
		remote := site.RemoteWithClient(opt.Client)
		remotes = append(remotes, remote)
		syncTargets = append(syncTargets, remote)
		f.Tukey.AttachCloud(tukey.CloudConfig{API: remote})
	}
	f.UseCloudAPIs(remotes...)
	if opt.Clock == cloudapi.ClockFollow && opt.SyncInterval > 0 {
		f.StartClockSync(opt.SyncInterval, syncTargets...)
	}
	return sites, nil
}

// SiteOf maps a cluster name to the simnet site hosting it (Figure 3).
func SiteOf(cluster string) string {
	switch cluster {
	case ClusterAdler, ClusterRoot:
		return simnet.SiteChicagoKenwood
	case ClusterSullivan, ClusterOCCY:
		return simnet.SiteChicagoNU
	case ClusterMatsu:
		return simnet.SiteAMPATH
	}
	return simnet.SiteChicagoKenwood
}

// BuildDatasetVolume builds the storage volume backing a per-site dataset
// store on the site's own engine — the remote-topology counterpart of the
// GlusterFS shares core.New builds (§7.1 sizes).
func BuildDatasetVolume(e *sim.Engine, cluster string) (*dfs.Volume, error) {
	switch cluster {
	case ClusterAdler:
		return buildVolume(e, "adler-gfs", simnet.SiteChicagoKenwood, 156*TB, 4)
	case ClusterSullivan:
		return buildVolume(e, "sullivan-gfs", simnet.SiteChicagoNU, 38*TB, 2)
	case ClusterRoot:
		return buildVolume(e, "root-gfs", simnet.SiteChicagoKenwood, 1024*TB, 2)
	}
	return buildVolume(e, strings.ToLower(cluster)+"-gfs", SiteOf(cluster), 100*TB, 2)
}

// ReplicationOptions tune StartReplication.
type ReplicationOptions struct {
	// Factor is the target replication factor per dataset (< 1 means 1).
	Factor int
	// Factors overrides the target per dataset name.
	Factors map[string]int
	// Interval starts the coordinator's background loop when > 0; with 0
	// the caller drives Rounds directly (the deterministic scenario
	// shape).
	Interval time.Duration
	// Seed feeds the coordinator's flow RNG.
	Seed uint64
	// Sites are the dataset planes to coordinate; nil means the three
	// in-process stores (Root, Adler, Sullivan).
	Sites []datastore.API
}

// StartReplication builds (and with opt.Interval > 0, starts) the data
// plane's replication coordinator over the federation engine, topology and
// catalog, replacing any previous one.
func (f *Federation) StartReplication(opt ReplicationOptions) *datastore.Coordinator {
	f.StopReplication()
	sites := opt.Sites
	if sites == nil {
		sites = []datastore.API{
			f.Stores[ClusterRoot], f.Stores[ClusterAdler], f.Stores[ClusterSullivan],
		}
	}
	f.Replication = datastore.NewCoordinator(f.Engine, f.Network, f.Catalog,
		datastore.Options{Factor: opt.Factor, Factors: opt.Factors, Seed: opt.Seed,
			Shards: f.Set}, sites...)
	if opt.Interval > 0 {
		f.Replication.Start(opt.Interval)
	}
	return f.Replication
}

// StopReplication halts the replication coordinator, if one is running.
// In-flight transfers are abandoned.
func (f *Federation) StopReplication() {
	if f.Replication != nil {
		f.Replication.Stop()
	}
}

// StartClockSync starts the coordinator goroutine pushing the console
// engine's virtual time to every followed site each interval, replacing
// any previous coordinator. The coordinator records observed skew per site
// (f.ClockSync.Stats).
func (f *Federation) StartClockSync(interval time.Duration, targets ...cloudapi.ClockSyncTarget) *cloudapi.ClockCoordinator {
	f.StopClockSync()
	f.ClockSync = cloudapi.StartClockCoordinator(f.Engine, interval, targets...)
	return f.ClockSync
}

// StopClockSync halts the coordinator, if one is running. Followed sites
// keep their clocks where the last push left them.
func (f *Federation) StopClockSync() {
	if f.ClockSync != nil {
		f.ClockSync.Stop()
	}
}

// UseCloudAPIs rewires the federation's metering and usage monitoring onto
// the given cloud transports — typically cloudapi.Remote clients for
// per-site cloud servers — stopping the pollers that watched the
// in-process clouds. The in-process Adler/Sullivan stay constructed (other
// subsystems reference them) but are no longer what the services bill or
// monitor.
func (f *Federation) UseCloudAPIs(apis ...cloudapi.CloudAPI) {
	f.Biller.Stop()
	f.UsageMon.Stop()
	f.Biller = billing.New(f.Engine, billing.DefaultRates(), apis, nil)
	f.UsageMon = monitor.NewUsageMonitor(f.Engine, apis, 5*sim.Minute)
}

func boundScale(scale, max int) int {
	if scale > max {
		return max
	}
	return scale
}

func buildVolume(e *sim.Engine, name, site string, capacity int64, bricks int) (*dfs.Volume, error) {
	if bricks < 2 {
		bricks = 2
	}
	per := capacity / int64(bricks) * 2 // replica 2 doubles raw need
	bs := make([]*dfs.Brick, bricks)
	for i := range bs {
		d := simdisk.New(e, fmt.Sprintf("%s-disk%d", name, i), 3072e6, 1136e6, per)
		bs[i] = dfs.NewBrick(fmt.Sprintf("%s-brick%d", name, i), fmt.Sprintf("%s-node%d", name, i), d)
	}
	return dfs.NewVolume(e, name, 2, dfs.Version33, bs)
}

func buildHadoop(e *sim.Engine, name string, nodes, slotsPerNode int) *mapred.Cluster {
	if nodes < 2 {
		nodes = 2
	}
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("%s-dn%03d", name, i)
	}
	fs := mapred.NewHDFS(e, names, mapred.DefaultBlockSize, 3)
	return mapred.NewCluster(e, name, fs, slotsPerNode)
}

// InventoryRow is one Table 2 row.
type InventoryRow struct {
	Resource string
	Type     string
	Cores    int
	DiskTB   int64
}

// Inventory reproduces Table 2 (sizes are the paper's stated capacities,
// independent of test-scale shrinking of the simulated host counts).
func (f *Federation) Inventory() []InventoryRow {
	return []InventoryRow{
		{Resource: "OSDC-Adler & Sullivan", Type: "OpenStack & Eucalyptus based utility cloud", Cores: 1248, DiskTB: 1200},
		{Resource: "OSDC-Root", Type: "Storage cloud", Cores: 0, DiskTB: 1024},
		{Resource: "OCC-Y", Type: "Hadoop data cloud", Cores: 928, DiskTB: 1024},
		{Resource: "OCC-Matsu", Type: "Hadoop data cloud", Cores: 120, DiskTB: 100},
	}
}

// Totals sums the inventory; the paper's abstract quotes "more than 2000
// cores and 2 PB of storage".
func (f *Federation) Totals() (cores int, diskTB int64) {
	for _, r := range f.Inventory() {
		cores += r.Cores
		diskTB += r.DiskTB
	}
	return cores, diskTB
}

// TopologyRow describes one Figure 3 cluster box.
type TopologyRow struct {
	Cluster string
	Site    string
	Stack   string
	// FullTukey marks clusters fully operational behind Tukey (solid arrows
	// in Figure 3); the Hadoop clusters support only some Tukey services.
	FullTukey bool
}

// Topology reproduces Figure 3's wiring.
func (f *Federation) Topology() []TopologyRow {
	rows := []TopologyRow{
		{ClusterAdler, simnet.SiteChicagoKenwood, "openstack", true},
		{ClusterSullivan, simnet.SiteChicagoNU, "eucalyptus", true},
		{ClusterRoot, simnet.SiteChicagoKenwood, "glusterfs", true},
		{ClusterOCCY, simnet.SiteChicagoNU, "hadoop", false},
		{ClusterMatsu, simnet.SiteAMPATH, "hadoop", false},
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Cluster < rows[j].Cluster })
	return rows
}

// EnrollResearcher provisions an end-to-end account: campus IdP entry,
// per-cloud credentials, sharing-store user, and free-tier quotas.
func (f *Federation) EnrollResearcher(username, password string) {
	f.ShibIdP.Enroll(username, password)
	creds := []tukey.CloudCredential{
		{Cloud: ClusterAdler, AuthUser: username},
		{Cloud: ClusterSullivan, AuthUser: username},
	}
	f.Tukey.GrantCredentials(username+"@uchicago.edu", creds...)
	// Replicas keep their own credential tables (a snapshot taken at clone
	// time), so grants made after AddTukeyReplica must fan out — otherwise
	// a login through one replica would be an unknown account on another.
	for _, r := range f.TukeyReplicas {
		r.GrantCredentials(username+"@uchicago.edu", creds...)
	}
	f.Sharing.AddUser(username)
}

// AddTukeyReplica clones f.Tukey into a stateless replica: same IdPs, a
// snapshot of the current user DB and attached clouds, sessions resolved
// through store (nil = share f.Tukey's store), tokens minted under
// tokenPrefix. Call after AttachCloud wiring is done and before serving
// traffic; later EnrollResearcher calls reach every replica.
func (f *Federation) AddTukeyReplica(store tukey.SessionStore, tokenPrefix string) *tukey.Middleware {
	r := f.Tukey.Replica(store, tokenPrefix)
	f.TukeyReplicas = append(f.TukeyReplicas, r)
	return r
}
