package core

import (
	"testing"

	"osdc/internal/sim"
)

func newFed(t *testing.T) *Federation {
	t.Helper()
	f, err := New(Options{Seed: 7, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestTable2Inventory(t *testing.T) {
	f := newFed(t)
	rows := f.Inventory()
	if len(rows) != 4 {
		t.Fatalf("inventory rows = %d, want 4 (Table 2)", len(rows))
	}
	cores, disk := f.Totals()
	// Abstract: "more than 2000 cores and 2 PB of storage".
	if cores <= 2000 {
		t.Fatalf("total cores = %d, want >2000", cores)
	}
	if disk < 2048 {
		t.Fatalf("total disk = %d TB, want ≥2 PB", disk)
	}
	// Specific Table 2 figures.
	if rows[0].Cores != 1248 || rows[2].Cores != 928 || rows[3].Cores != 120 {
		t.Fatalf("per-cluster cores wrong: %+v", rows)
	}
}

func TestFigure3Topology(t *testing.T) {
	f := newFed(t)
	rows := f.Topology()
	full, partial := 0, 0
	sites := map[string]bool{}
	for _, r := range rows {
		sites[r.Site] = true
		if r.FullTukey {
			full++
		} else {
			partial++
		}
	}
	// Figure 3: utility clouds + root storage fully behind Tukey (solid
	// arrows); the two Hadoop clusters only partially.
	if full != 3 || partial != 2 {
		t.Fatalf("full=%d partial=%d, want 3/2", full, partial)
	}
	if len(sites) < 3 {
		t.Fatalf("clusters span %d sites, want ≥3", len(sites))
	}
	// The WAN connects all sites.
	if f.Network.PathRTT(
		"gw-chicago-kenwood", "gw-lvoc") < 0.09 {
		t.Fatal("Chicago-LVOC RTT unexpectedly low")
	}
}

func TestPaperScaleCores(t *testing.T) {
	f, err := New(Options{Seed: 1, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Simulated hypervisors at paper scale: 4 racks × 39 × 8 = 1248.
	if got := f.Adler.TotalCores() + f.Sullivan.TotalCores(); got != 1248 {
		t.Fatalf("simulated utility cores = %d, want 1248", got)
	}
	// Hadoop slots exist.
	if f.OCCY.TotalSlots() == 0 || f.Matsu.TotalSlots() == 0 {
		t.Fatal("hadoop clusters have no slots")
	}
}

func TestPublicDatasetsPublished(t *testing.T) {
	f := newFed(t)
	if total := f.Catalog.TotalBytes(); total < 600*TB {
		t.Fatalf("public data = %d TB, want >600 TB", total/TB)
	}
	// Every dataset got an ARK that resolves.
	for _, d := range f.Catalog.All() {
		loc, err := f.IDs.Resolve(d.ARK)
		if err != nil {
			t.Fatalf("ARK %s does not resolve: %v", d.ARK, err)
		}
		if loc != d.Path {
			t.Fatalf("ARK %s resolves to %q, want %q", d.ARK, loc, d.Path)
		}
	}
}

func TestEnrolledResearcherCanUseTukey(t *testing.T) {
	f := newFed(t)
	f.EnrollResearcher("chris", "pw")
	tok, err := f.Tukey.Login("shibboleth", "chris", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if tok == "" {
		t.Fatal("no session token")
	}
	// No HTTP endpoints attached in this unit test, so just the session
	// machinery; the Figure 1 end-to-end test lives at the repo root.
}

func TestGatewayProtectsPublicShare(t *testing.T) {
	f := newFed(t)
	if err := f.RootExport.Write("curator", "/glusterfs/public/test/README", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.RootExport.Read("anyone", "/glusterfs/public/test/README"); err != nil {
		t.Fatalf("public read denied: %v", err)
	}
	if err := f.RootExport.Write("anyone", "/glusterfs/public/test/README", []byte("y")); err == nil {
		t.Fatal("public write allowed")
	}
}

func TestBillingRunsOnFederationClock(t *testing.T) {
	f := newFed(t)
	f.EnrollResearcher("chris", "pw")
	if _, err := f.Adler.Launch("chris", "vm", "m1.large", ""); err != nil {
		t.Fatal(err)
	}
	f.Engine.RunFor(2 * sim.Hour)
	u := f.Biller.CurrentUsage("chris")
	if u.CoreHours() < 7 || u.CoreHours() > 9 {
		t.Fatalf("core-hours after 2 h on 4 cores = %v, want ~8", u.CoreHours())
	}
}

func TestMonitoringWiredToBricks(t *testing.T) {
	f := newFed(t)
	f.Engine.RunFor(6 * sim.Minute)
	if f.Nagios.ChecksRun == 0 {
		t.Fatal("no nagios checks ran on the federation")
	}
	// No alerts on a healthy, empty federation.
	if n := len(f.Nagios.Alerts()); n != 0 {
		t.Fatalf("unexpected alerts on empty federation: %d", n)
	}
}

func TestUsageMonitorPublishes(t *testing.T) {
	f := newFed(t)
	f.EnrollResearcher("dana", "pw")
	if _, err := f.Adler.Launch("dana", "vm", "m1.small", ""); err != nil {
		t.Fatal(err)
	}
	f.Engine.RunFor(6 * sim.Minute)
	status := f.UsageMon.PublicStatus()
	if len(status) != 2 {
		t.Fatalf("status clouds = %d, want 2", len(status))
	}
	for _, s := range status {
		if s.Cloud == ClusterAdler && s.RunningVMs != 1 {
			t.Fatalf("adler snapshot = %+v", s)
		}
	}
}

func TestDefaultKernelIsSingleShard(t *testing.T) {
	f := newFed(t)
	if f.Set.K() != 1 {
		t.Fatalf("default shard count = %d, want 1", f.Set.K())
	}
	if f.Set.Anchor() != f.Engine {
		t.Fatal("console engine is not the kernel anchor")
	}
	if f.EngineFor("anything") != f.Engine {
		t.Fatal("K=1 EngineFor routed off the anchor")
	}
}

// TestShardedFederationBootsInstances builds a K=4 federation, launches
// across several users, and advances the whole kernel: every boot timer
// lands on the shard owning its instance ID, so the instances only reach
// ACTIVE if RunFor advanced all shards in lockstep.
func TestShardedFederationBootsInstances(t *testing.T) {
	f, err := New(Options{Seed: 7, Scale: 8, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if f.Set.K() != 4 {
		t.Fatalf("shard count = %d, want 4", f.Set.K())
	}
	users := []string{"ann", "ben", "cam", "deb", "eve", "fox"}
	var ids []string
	for _, u := range users {
		inst, err := f.Adler.Launch(u, "vm", "m1.small", "")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, inst.ID)
	}
	// The IDs must spread over more than one shard for this to exercise
	// cross-shard advance.
	shardsUsed := map[int]bool{}
	for _, id := range ids {
		shardsUsed[f.Set.ShardIndex(id)] = true
	}
	if len(shardsUsed) < 2 {
		t.Fatalf("all %d instances hashed to one shard — keying broken?", len(ids))
	}
	f.RunFor(2 * sim.Minute)
	for _, id := range ids {
		inst, ok := f.Adler.Instance(id)
		if !ok {
			t.Fatalf("instance %s vanished", id)
		}
		if inst.State != "ACTIVE" {
			t.Fatalf("instance %s state %s after boot window, want ACTIVE", id, inst.State)
		}
	}
	if f.Set.Skew() != 0 {
		t.Fatalf("cross-shard skew %v after lockstep advance, want 0", f.Set.Skew())
	}
}
