package core

import (
	"sync/atomic"

	"osdc/internal/cloudapi"
	"osdc/internal/telemetry"
)

// RegisterTelemetry contributes the federation's service-plane sources to
// reg: kernel shards, biller sweeps, usage-monitor samples, the
// replication coordinator's links, and clock-sync skew. Sources that
// start later (replication, clock sync) are read through f at render
// time, so registration order against StartReplication/StartClockSync
// does not matter — absent sources simply render no series.
//
// Per-cloud error families use SampleFunc because the polled cloud set
// changes when UseCloudAPIs swaps transports.
func (f *Federation) RegisterTelemetry(reg *telemetry.Registry) {
	cloudapi.RegisterKernel(reg, f.Set)

	// --- billing: per-minute VM sweeps (§6.1) ---
	reg.CounterFunc("osdc_billing_polls_total",
		"Completed per-minute billing VM sweeps.",
		func() float64 { return float64(atomic.LoadInt64(&f.Biller.Polls)) })
	reg.SampleFunc("osdc_billing_poll_errors_total",
		"Failed billing samples per polled cloud.", "counter",
		func() []telemetry.Sample { return perCloudSamples(f.Biller.PollErrorsByCloud()) })

	// --- usage monitor: Nagios-style resource sampling (§6.2) ---
	reg.SampleFunc("osdc_monitor_sample_errors_total",
		"Failed usage-monitor samples per polled cloud.", "counter",
		func() []telemetry.Sample { return perCloudSamples(f.UsageMon.SampleErrorsByCloud()) })

	// --- replication coordinator: the data plane's WAN view ---
	reg.GaugeFunc("osdc_replication_rounds",
		"Completed replication rounds.",
		func() float64 {
			if f.Replication == nil {
				return 0
			}
			return float64(f.Replication.Stats().Rounds)
		})
	reg.GaugeFunc("osdc_replication_bytes_moved",
		"Total bytes moved by the replication coordinator.",
		func() float64 {
			if f.Replication == nil {
				return 0
			}
			return float64(f.Replication.Stats().BytesMoved)
		})
	reg.GaugeFunc("osdc_replication_max_in_flight",
		"Most concurrent in-flight replica transfers observed.",
		func() float64 {
			if f.Replication == nil {
				return 0
			}
			return float64(f.Replication.Stats().MaxInFlight)
		})
	linkSample := func(pick func(telemetryLink) float64) func() []telemetry.Sample {
		return func() []telemetry.Sample {
			if f.Replication == nil {
				return nil
			}
			st := f.Replication.Stats()
			out := make([]telemetry.Sample, 0, len(st.Links))
			for _, l := range st.Links {
				out = append(out, telemetry.Sample{
					Labels: []telemetry.Label{{Key: "link", Value: l.Link}},
					Value:  pick(telemetryLink{l.Flows, l.Bytes, l.Retransmits}),
				})
			}
			return out
		}
	}
	reg.SampleFunc("osdc_replication_link_bytes_total",
		"Bytes replicated per WAN link.", "counter",
		linkSample(func(l telemetryLink) float64 { return float64(l.bytes) }))
	reg.SampleFunc("osdc_replication_link_retransmits_total",
		"Retransmitted transfers per WAN link.", "counter",
		linkSample(func(l telemetryLink) float64 { return float64(l.retransmits) }))
	reg.SampleFunc("osdc_replication_link_flows_total",
		"Completed flows per WAN link.", "counter",
		linkSample(func(l telemetryLink) float64 { return float64(l.flows) }))

	// --- clock sync: read through f so a coordinator started after
	// registration still shows up ---
	cloudapi.RegisterClockSync(reg, func() *cloudapi.ClockCoordinator { return f.ClockSync })
}

type telemetryLink struct {
	flows, bytes, retransmits int64
}

// perCloudSamples lifts a per-cloud counter map into label/value samples;
// the registry sorts lines at render time, so map order is irrelevant.
func perCloudSamples(m map[string]int64) []telemetry.Sample {
	out := make([]telemetry.Sample, 0, len(m))
	for cloud, v := range m {
		out = append(out, telemetry.Sample{
			Labels: []telemetry.Label{{Key: "cloud", Value: cloud}},
			Value:  float64(v),
		})
	}
	return out
}
