package simnet

import (
	"math"
	"sort"

	"osdc/internal/sim"
)

// The fluid model treats a transfer as a continuous flow rather than
// packets. Link capacity is divided among concurrent flows by progressive
// filling (max-min fairness). It is the right granularity for Table 1's
// traffic characterization, where we care about flow counts, sizes and
// completion times for tens of thousands of flows, not per-packet dynamics.

// Flow is a fluid transfer of Size bytes from Src to Dst.
type Flow struct {
	ID       int64
	Src, Dst string
	Size     int64  // bytes total
	Class    string // e.g. "web", "science"; carried through to reports

	Started   sim.Time
	Finished  sim.Time
	remaining float64 // bytes
	rate      float64 // bytes/sec, set by the max-min allocation
	links     []*Link
	done      func(*Flow)
	net       *Network
}

// Remaining returns the bytes not yet transferred.
func (f *Flow) Remaining() int64 { return int64(math.Ceil(f.remaining)) }

// Duration returns the flow completion time; valid after completion.
func (f *Flow) Duration() sim.Duration { return sim.Duration(f.Finished - f.Started) }

// ThroughputBps returns the average achieved throughput in bits/s; valid
// after completion.
func (f *Flow) ThroughputBps() float64 {
	d := f.Duration()
	if d <= 0 {
		return 0
	}
	return float64(f.Size) * 8 / d
}

type fluidState struct {
	flows    map[int64]*Flow
	nextID   int64
	lastEval sim.Time
	wake     sim.Handle
	hasWake  bool
}

func (nw *Network) fluidInit() {
	if nw.fluid == nil {
		nw.fluid = &fluidState{flows: make(map[int64]*Flow)}
	}
}

// StartFlow begins a fluid transfer and returns the flow. done (may be nil)
// is invoked when the transfer completes.
func (nw *Network) StartFlow(src, dst string, size int64, class string, done func(*Flow)) *Flow {
	nw.fluidInit()
	if size <= 0 {
		panic("simnet: flow size must be positive")
	}
	links := nw.PathLinks(src, dst)
	if len(links) == 0 && src != dst {
		panic("simnet: no route for flow " + src + "->" + dst)
	}
	st := nw.fluid
	st.nextID++
	f := &Flow{
		ID: st.nextID, Src: src, Dst: dst, Size: size, Class: class,
		Started: nw.Engine.Now(), remaining: float64(size), links: links,
		done: done, net: nw,
	}
	nw.fluidAdvance()
	st.flows[f.ID] = f
	nw.fluidReallocate()
	return f
}

// ActiveFlows returns the number of in-progress fluid flows.
func (nw *Network) ActiveFlows() int {
	if nw.fluid == nil {
		return 0
	}
	return len(nw.fluid.flows)
}

// fluidAdvance drains progress accrued since the last evaluation at the
// current rates.
func (nw *Network) fluidAdvance() {
	st := nw.fluid
	now := nw.Engine.Now()
	dt := float64(now - st.lastEval)
	if dt > 0 {
		for _, f := range st.flows {
			f.remaining -= f.rate * dt
			if f.remaining < 1e-6 {
				f.remaining = 0
			}
		}
	}
	st.lastEval = now
	// Complete any flows that reached zero.
	var doneFlows []*Flow
	for id, f := range st.flows {
		if f.remaining == 0 {
			delete(st.flows, id)
			f.Finished = now
			doneFlows = append(doneFlows, f)
		}
	}
	// Deterministic completion order.
	sort.Slice(doneFlows, func(i, j int) bool { return doneFlows[i].ID < doneFlows[j].ID })
	for _, f := range doneFlows {
		if f.done != nil {
			f.done(f)
		}
	}
}

// fluidReallocate recomputes max-min fair rates and schedules a wake-up at
// the next flow completion.
func (nw *Network) fluidReallocate() {
	st := nw.fluid
	if st.hasWake {
		st.wake.Cancel()
		st.hasWake = false
	}
	if len(st.flows) == 0 {
		return
	}

	// Progressive filling. Each link's capacity (bytes/s) is shared among
	// unfrozen flows crossing it; repeatedly freeze flows at the tightest
	// link's fair share.
	type linkState struct {
		capacity float64 // bytes/s remaining
		flows    []*Flow
	}
	ls := make(map[*Link]*linkState)
	unfrozen := make(map[int64]*Flow, len(st.flows))
	for id, f := range st.flows {
		f.rate = 0
		unfrozen[id] = f
		for _, l := range f.links {
			s := ls[l]
			if s == nil {
				s = &linkState{capacity: l.Bandwidth / 8}
				ls[l] = s
			}
			s.flows = append(s.flows, f)
		}
	}
	// Flows with no links (src == dst) move at local-copy speed: effectively
	// instantaneous for our purposes — give them a very high rate.
	for _, f := range unfrozen {
		if len(f.links) == 0 {
			f.rate = 100 * Gbit / 8
		}
	}

	for len(unfrozen) > 0 {
		// Find the bottleneck: link with the smallest fair share among its
		// unfrozen flows.
		var bottleneck *linkState
		share := math.Inf(1)
		for _, s := range ls {
			n := 0
			for _, f := range s.flows {
				if _, ok := unfrozen[f.ID]; ok {
					n++
				}
			}
			if n == 0 {
				continue
			}
			fs := s.capacity / float64(n)
			if fs < share {
				share = fs
				bottleneck = s
			}
		}
		if bottleneck == nil {
			// Only linkless flows remain; already rated above.
			for id := range unfrozen {
				delete(unfrozen, id)
			}
			break
		}
		// Freeze the bottleneck's flows at the fair share and charge every
		// link they traverse.
		var frozen []*Flow
		for _, f := range bottleneck.flows {
			if _, ok := unfrozen[f.ID]; ok {
				frozen = append(frozen, f)
			}
		}
		for _, f := range frozen {
			f.rate = share
			delete(unfrozen, f.ID)
			for _, l := range f.links {
				ls[l].capacity -= share
				if ls[l].capacity < 0 {
					ls[l].capacity = 0
				}
			}
		}
	}

	// Next completion time at current rates.
	next := sim.Forever
	for _, f := range st.flows {
		if f.rate <= 0 {
			continue
		}
		t := nw.Engine.Now() + sim.Time(f.remaining/f.rate)
		if t < next {
			next = t
		}
	}
	if next < sim.Forever {
		// Guard against zero-length steps due to float rounding.
		if next <= nw.Engine.Now() {
			next = nw.Engine.Now() + sim.Time(1e-9)
		}
		st.wake = nw.Engine.At(next, func() {
			st.hasWake = false
			nw.fluidAdvance()
			nw.fluidReallocate()
		})
		st.hasWake = true
	}
}
