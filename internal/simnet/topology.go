package simnet

import "osdc/internal/sim"

// The OSDC's physical footprint (paper §1, §7.2, Figure 3): two data centers
// in Chicago, one at the Livermore Valley Open Campus (LVOC), and one at the
// AMPATH facility in Miami, joined by 10G research networks (StarLight).
// The paper's Table 3 measured Chicago↔LVOC at a 104 ms round-trip time.

// Site names used across the repository.
const (
	SiteChicagoKenwood = "chicago-kenwood" // hosts OSDC-Adler, OSDC-Root
	SiteChicagoNU      = "chicago-nu"      // hosts OSDC-Sullivan, OCC-Y
	SiteLVOC           = "lvoc"            // Livermore Valley Open Campus
	SiteAMPATH         = "ampath-miami"    // AMPATH, Miami (OCC-Matsu)
	SiteStarLight      = "starlight"       // exchange point joining the sites
)

// WANParams configures the OSDC wide-area topology.
type WANParams struct {
	Backbone float64      // backbone bandwidth, bits/s
	ChiLVOC  sim.Duration // one-way Chicago→LVOC propagation delay
	ChiMiami sim.Duration // one-way Chicago→Miami propagation delay
	ChiChi   sim.Duration // one-way metro Chicago↔Chicago delay
	Loss     float64      // per-packet loss probability on WAN links
}

// DefaultWAN matches the paper: 10G links; 104 ms RTT Chicago↔LVOC (so a
// 52 ms one-way path: 0.05 ms LAN + 0.75 ms metro + 51.15 ms long-haul +
// 0.05 ms LAN); ~18 ms RTT Chicago↔Miami. Loss is the residual loss of a
// clean research WAN.
func DefaultWAN() WANParams {
	return WANParams{
		Backbone: 10 * Gbit,
		ChiLVOC:  51.15 * sim.Millisecond,
		ChiMiami: 8 * sim.Millisecond,
		ChiChi:   0.75 * sim.Millisecond,
		// Residual per-link loss. The paper's Table 3 throughputs are
		// identical for 108 GB and 1.1 TB transfers, which means the
		// production path was effectively clean: host-side limits (socket
		// buffers, cipher CPU) bound the rates, not congestion recovery.
		Loss: 1e-9,
	}
}

// BuildOSDCTopology wires the four-site OSDC WAN with one gateway node per
// site joined through the StarLight exchange, and returns the network.
// Additional hosts should be attached to site gateways with AttachHost.
func BuildOSDCTopology(e *sim.Engine, p WANParams) *Network {
	nw := New(e)
	for _, site := range []string{SiteChicagoKenwood, SiteChicagoNU, SiteLVOC, SiteAMPATH, SiteStarLight} {
		nw.AddNode("gw-"+site, site)
	}
	// Chicago sites reach StarLight over metro fiber; LVOC and AMPATH over
	// long-haul circuits. Delays chosen so the paper's measured RTTs hold.
	nw.AddDuplex("gw-"+SiteChicagoKenwood, "gw-"+SiteStarLight, p.Backbone, p.ChiChi, p.Loss)
	nw.AddDuplex("gw-"+SiteChicagoNU, "gw-"+SiteStarLight, p.Backbone, p.ChiChi, p.Loss)
	nw.AddDuplex("gw-"+SiteLVOC, "gw-"+SiteStarLight, p.Backbone, p.ChiLVOC, p.Loss)
	nw.AddDuplex("gw-"+SiteAMPATH, "gw-"+SiteStarLight, p.Backbone, p.ChiMiami, p.Loss)
	return nw
}

// AttachHost adds a host at a site, connected to the site gateway by a LAN
// link (10G, 50 µs, lossless).
func AttachHost(nw *Network, name, site string) *Node {
	n := nw.AddNode(name, site)
	nw.AddDuplex(name, "gw-"+site, 10*Gbit, 50*sim.Microsecond, 0)
	return n
}

// Gateway returns the gateway node name for a site.
func Gateway(site string) string { return "gw-" + site }
