// Package simnet models the OSDC's wide-area and datacenter networks.
//
// The real OSDC spans four data centers (two in Chicago, the Livermore
// Valley Open Campus, and the AMPATH facility in Miami) connected by 10G
// research networks. This package provides:
//
//   - a packet-level model (Link, Node, Packet) with serialization delay,
//     propagation delay, drop-tail queues and random loss, used by the
//     transfer-protocol state machines in internal/udt and internal/tcpmodel;
//   - static shortest-path routing over arbitrary topologies;
//   - a max-min fair fluid-flow model for coarse traffic studies (Table 1's
//     commercial-vs-science flow characterization);
//   - the canonical OSDC topology used throughout the benchmarks.
//
// All timing runs on a sim.Engine, so everything is deterministic.
package simnet

import (
	"fmt"
	"sort"

	"osdc/internal/sim"
)

// Mbit and Gbit express bandwidths in bits per second.
const (
	Kbit = 1e3
	Mbit = 1e6
	Gbit = 1e9
)

// Packet is the unit of packet-level transmission. Size is the on-wire size
// in bytes. Payload carries protocol state (opaque to the network).
type Packet struct {
	Src, Dst string // node names
	Proto    string // demultiplexing key, e.g. "udt", "tcp"
	Size     int    // bytes on the wire
	Seq      int64  // protocol sequence number (for traces)
	Payload  interface{}
}

// Handler receives packets delivered to a node for a given protocol.
type Handler func(pkt *Packet)

// Node is a host or router attached to the network.
type Node struct {
	Name     string
	Site     string // data center this node lives in
	handlers map[string]Handler
	net      *Network
}

// Handle registers the packet handler for a protocol on this node.
// Registering twice for the same protocol replaces the handler.
func (n *Node) Handle(proto string, h Handler) { n.handlers[proto] = h }

// Network returns the network this node is attached to.
func (n *Node) Network() *Network { return n.net }

// Link is a unidirectional pipe between two nodes with finite bandwidth, a
// fixed propagation delay, an optional random loss probability, and a
// drop-tail queue bounded in bytes.
type Link struct {
	From, To  string
	Bandwidth float64 // bits per second
	Delay     sim.Duration
	LossProb  float64 // per-packet independent drop probability
	QueueCap  int     // bytes; 0 means a generous default

	nextFree  sim.Time // when the transmitter finishes the current packet
	queued    int      // bytes currently queued (committed, not yet serialized)
	Delivered int64    // packets delivered
	Dropped   int64    // packets dropped (loss or queue overflow)
	Bytes     int64    // bytes delivered
}

// DefaultQueueCap is used when QueueCap is zero: 2 MB, a typical 2012-era
// router buffer for a 10G port.
const DefaultQueueCap = 2 << 20

// Network holds the topology and delivers packets.
type Network struct {
	Engine *sim.Engine
	nodes  map[string]*Node
	links  map[string]*Link             // keyed "from->to"
	routes map[string]map[string]string // routes[src][dst] = next hop
	rng    *sim.RNG
	fluid  *fluidState
}

// New creates an empty network on the given engine.
func New(e *sim.Engine) *Network {
	return &Network{
		Engine: e,
		nodes:  make(map[string]*Node),
		links:  make(map[string]*Link),
		rng:    e.RNG().Fork(),
	}
}

// AddNode creates a node. Adding a duplicate name panics: topologies are
// static configuration and a duplicate is a construction bug.
func (nw *Network) AddNode(name, site string) *Node {
	if _, ok := nw.nodes[name]; ok {
		panic("simnet: duplicate node " + name)
	}
	n := &Node{Name: name, Site: site, handlers: make(map[string]Handler), net: nw}
	nw.nodes[name] = n
	nw.routes = nil // invalidate routing
	return n
}

// Node returns a node by name, or nil.
func (nw *Network) Node(name string) *Node { return nw.nodes[name] }

// Nodes returns all node names in sorted order.
func (nw *Network) Nodes() []string {
	out := make([]string, 0, len(nw.nodes))
	for name := range nw.nodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func linkKey(from, to string) string { return from + "->" + to }

// AddLink installs a unidirectional link. Both endpoints must exist.
func (nw *Network) AddLink(l Link) *Link {
	if nw.nodes[l.From] == nil || nw.nodes[l.To] == nil {
		panic(fmt.Sprintf("simnet: link %s->%s references unknown node", l.From, l.To))
	}
	if l.Bandwidth <= 0 {
		panic("simnet: link bandwidth must be positive")
	}
	if l.QueueCap == 0 {
		l.QueueCap = DefaultQueueCap
	}
	cp := l
	nw.links[linkKey(l.From, l.To)] = &cp
	nw.routes = nil
	return &cp
}

// AddDuplex installs links in both directions with identical parameters.
func (nw *Network) AddDuplex(a, b string, bandwidth float64, delay sim.Duration, loss float64) (*Link, *Link) {
	f := nw.AddLink(Link{From: a, To: b, Bandwidth: bandwidth, Delay: delay, LossProb: loss})
	r := nw.AddLink(Link{From: b, To: a, Bandwidth: bandwidth, Delay: delay, LossProb: loss})
	return f, r
}

// LinkBetween returns the direct link from a to b, or nil.
func (nw *Network) LinkBetween(a, b string) *Link { return nw.links[linkKey(a, b)] }

// Send injects a packet at its source node and delivers it along the
// shortest path. Delivery (or silent drop) is scheduled on the engine. Send
// panics if no route exists — in a static topology that is a wiring bug.
func (nw *Network) Send(pkt *Packet) {
	if nw.nodes[pkt.Src] == nil || nw.nodes[pkt.Dst] == nil {
		panic(fmt.Sprintf("simnet: send %s->%s references unknown node", pkt.Src, pkt.Dst))
	}
	nw.forward(pkt, pkt.Src)
}

func (nw *Network) forward(pkt *Packet, at string) {
	if at == pkt.Dst {
		nw.deliver(pkt)
		return
	}
	next := nw.NextHop(at, pkt.Dst)
	if next == "" {
		panic(fmt.Sprintf("simnet: no route %s->%s", at, pkt.Dst))
	}
	link := nw.links[linkKey(at, next)]
	nw.transmit(link, pkt, func() { nw.forward(pkt, next) })
}

// transmit models one link hop: queueing, serialization, propagation, loss.
func (nw *Network) transmit(link *Link, pkt *Packet, arrive func()) {
	e := nw.Engine
	now := e.Now()
	// Drop-tail queue admission: bytes awaiting serialization.
	if link.queued+pkt.Size > link.QueueCap {
		link.Dropped++
		return
	}
	// Random loss.
	if link.LossProb > 0 && nw.rng.Bernoulli(link.LossProb) {
		link.Dropped++
		return
	}
	link.queued += pkt.Size
	start := link.nextFree
	if start < now {
		start = now
	}
	serialization := sim.Duration(float64(pkt.Size*8) / link.Bandwidth)
	done := start + sim.Time(serialization)
	link.nextFree = done
	e.At(done, func() {
		link.queued -= pkt.Size
		e.At(done+sim.Time(link.Delay), func() {
			link.Delivered++
			link.Bytes += int64(pkt.Size)
			arrive()
		})
	})
}

func (nw *Network) deliver(pkt *Packet) {
	node := nw.nodes[pkt.Dst]
	h := node.handlers[pkt.Proto]
	if h == nil {
		// Unhandled protocol: drop silently, like a closed port.
		return
	}
	h(pkt)
}

// PathRTT returns the round-trip propagation delay between two nodes along
// shortest paths (ignoring queueing and serialization).
func (nw *Network) PathRTT(a, b string) sim.Duration {
	return nw.pathDelay(a, b) + nw.pathDelay(b, a)
}

// PathBandwidth returns the bottleneck bandwidth along the shortest path.
func (nw *Network) PathBandwidth(a, b string) float64 {
	hops := nw.PathLinks(a, b)
	if len(hops) == 0 {
		return 0
	}
	bw := hops[0].Bandwidth
	for _, l := range hops[1:] {
		if l.Bandwidth < bw {
			bw = l.Bandwidth
		}
	}
	return bw
}

// PathLoss returns the combined per-packet loss probability along the path.
func (nw *Network) PathLoss(a, b string) float64 {
	keep := 1.0
	for _, l := range nw.PathLinks(a, b) {
		keep *= 1 - l.LossProb
	}
	return 1 - keep
}

// PathLinks returns the links on the shortest path from a to b.
func (nw *Network) PathLinks(a, b string) []*Link {
	var out []*Link
	at := a
	for at != b {
		next := nw.NextHop(at, b)
		if next == "" {
			return nil
		}
		out = append(out, nw.links[linkKey(at, next)])
		at = next
	}
	return out
}

func (nw *Network) pathDelay(a, b string) sim.Duration {
	var d sim.Duration
	for _, l := range nw.PathLinks(a, b) {
		d += l.Delay
	}
	return d
}
