package simnet

import "container/heap"

// NextHop returns the next node on the minimum-delay path from src to dst,
// or "" if unreachable. Routes are computed lazily and cached; any topology
// change invalidates the cache.
func (nw *Network) NextHop(src, dst string) string {
	if nw.routes == nil {
		nw.computeRoutes()
	}
	m := nw.routes[src]
	if m == nil {
		return ""
	}
	return m[dst]
}

type dijkstraItem struct {
	node string
	dist float64
}

type dijkstraQueue []dijkstraItem

func (q dijkstraQueue) Len() int            { return len(q) }
func (q dijkstraQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q dijkstraQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *dijkstraQueue) Push(x interface{}) { *q = append(*q, x.(dijkstraItem)) }
func (q *dijkstraQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// computeRoutes runs Dijkstra from every node using propagation delay as the
// edge metric (ties broken deterministically by node-name order, so routing
// is stable run to run).
func (nw *Network) computeRoutes() {
	adj := make(map[string][]*Link)
	for _, l := range nw.links {
		adj[l.From] = append(adj[l.From], l)
	}
	// Deterministic neighbor order.
	for _, ls := range adj {
		sortLinks(ls)
	}

	nw.routes = make(map[string]map[string]string, len(nw.nodes))
	for src := range nw.nodes {
		dist := map[string]float64{src: 0}
		first := map[string]string{} // first hop from src toward node
		pq := &dijkstraQueue{{src, 0}}
		for pq.Len() > 0 {
			it := heap.Pop(pq).(dijkstraItem)
			if it.dist > dist[it.node] {
				continue
			}
			for _, l := range adj[it.node] {
				// Metric: delay plus a tiny per-hop cost so equal-delay paths
				// prefer fewer hops.
				nd := it.dist + float64(l.Delay) + 1e-9
				if old, ok := dist[l.To]; !ok || nd < old {
					dist[l.To] = nd
					if it.node == src {
						first[l.To] = l.To
					} else {
						first[l.To] = first[it.node]
					}
					heap.Push(pq, dijkstraItem{l.To, nd})
				}
			}
		}
		nw.routes[src] = first
	}
}

func sortLinks(ls []*Link) {
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j].To < ls[j-1].To; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}
