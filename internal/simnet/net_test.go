package simnet

import (
	"math"
	"testing"

	"osdc/internal/sim"
)

func twoNodeNet(t *testing.T, bw float64, delay sim.Duration, loss float64) (*sim.Engine, *Network) {
	t.Helper()
	e := sim.NewEngine(1)
	nw := New(e)
	nw.AddNode("a", "s1")
	nw.AddNode("b", "s2")
	nw.AddDuplex("a", "b", bw, delay, loss)
	return e, nw
}

func TestPacketDeliveryTiming(t *testing.T) {
	e, nw := twoNodeNet(t, 8*Mbit, 10*sim.Millisecond, 0)
	var arrival sim.Time
	nw.Node("b").Handle("x", func(pkt *Packet) { arrival = e.Now() })
	// 1000 bytes at 8 Mbit/s serializes in 1 ms, plus 10 ms propagation.
	nw.Send(&Packet{Src: "a", Dst: "b", Proto: "x", Size: 1000})
	e.Run()
	want := sim.Time(0.011)
	if math.Abs(float64(arrival-want)) > 1e-9 {
		t.Fatalf("arrival = %v, want %v", arrival, want)
	}
}

func TestSerializationQueuesBackToBack(t *testing.T) {
	e, nw := twoNodeNet(t, 8*Mbit, 0, 0)
	var arrivals []sim.Time
	nw.Node("b").Handle("x", func(pkt *Packet) { arrivals = append(arrivals, e.Now()) })
	for i := 0; i < 3; i++ {
		nw.Send(&Packet{Src: "a", Dst: "b", Proto: "x", Size: 1000})
	}
	e.Run()
	if len(arrivals) != 3 {
		t.Fatalf("got %d arrivals, want 3", len(arrivals))
	}
	// Each packet serializes in 1 ms; they must arrive 1 ms apart.
	for i, want := range []sim.Time{0.001, 0.002, 0.003} {
		if math.Abs(float64(arrivals[i]-want)) > 1e-9 {
			t.Fatalf("arrival[%d] = %v, want %v", i, arrivals[i], want)
		}
	}
}

func TestLossDropsPackets(t *testing.T) {
	e, nw := twoNodeNet(t, 10*Gbit, 0, 0.5)
	got := 0
	nw.Node("b").Handle("x", func(pkt *Packet) { got++ })
	const n = 10000
	for i := 0; i < n; i++ {
		nw.Send(&Packet{Src: "a", Dst: "b", Proto: "x", Size: 100})
	}
	e.Run()
	if got < 4700 || got > 5300 {
		t.Fatalf("delivered %d of %d at 50%% loss, want ~5000", got, n)
	}
	l := nw.LinkBetween("a", "b")
	if l.Delivered+l.Dropped != n {
		t.Fatalf("delivered(%d)+dropped(%d) != %d", l.Delivered, l.Dropped, n)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e)
	nw.AddNode("a", "s")
	nw.AddNode("b", "s")
	nw.AddLink(Link{From: "a", To: "b", Bandwidth: 8 * Kbit, QueueCap: 2500})
	got := 0
	nw.Node("b").Handle("x", func(pkt *Packet) { got++ })
	// 10 × 1000-byte packets into a 2500-byte queue on a slow link: only the
	// first two fit at once; the rest are tail-dropped at injection.
	for i := 0; i < 10; i++ {
		nw.Send(&Packet{Src: "a", Dst: "b", Proto: "x", Size: 1000})
	}
	e.Run()
	if got != 2 {
		t.Fatalf("delivered %d, want 2 (tail drop)", got)
	}
	if d := nw.LinkBetween("a", "b").Dropped; d != 8 {
		t.Fatalf("dropped = %d, want 8", d)
	}
}

func TestUnhandledProtocolSilentlyDropped(t *testing.T) {
	e, nw := twoNodeNet(t, Gbit, 0, 0)
	nw.Send(&Packet{Src: "a", Dst: "b", Proto: "nobody", Size: 10})
	e.Run() // must not panic
}

func TestMultiHopRouting(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e)
	for _, n := range []string{"a", "m", "b"} {
		nw.AddNode(n, "s")
	}
	nw.AddDuplex("a", "m", Gbit, 5*sim.Millisecond, 0)
	nw.AddDuplex("m", "b", Gbit, 7*sim.Millisecond, 0)
	delivered := false
	nw.Node("b").Handle("x", func(pkt *Packet) { delivered = true })
	nw.Send(&Packet{Src: "a", Dst: "b", Proto: "x", Size: 100})
	e.Run()
	if !delivered {
		t.Fatal("multi-hop packet not delivered")
	}
	if rtt := nw.PathRTT("a", "b"); math.Abs(rtt-0.024) > 1e-9 {
		t.Fatalf("PathRTT = %v, want 24 ms", rtt)
	}
}

func TestShortestPathPreferred(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e)
	for _, n := range []string{"a", "fast", "slow", "b"} {
		nw.AddNode(n, "s")
	}
	nw.AddDuplex("a", "fast", Gbit, 1*sim.Millisecond, 0)
	nw.AddDuplex("fast", "b", Gbit, 1*sim.Millisecond, 0)
	nw.AddDuplex("a", "slow", Gbit, 50*sim.Millisecond, 0)
	nw.AddDuplex("slow", "b", Gbit, 50*sim.Millisecond, 0)
	if hop := nw.NextHop("a", "b"); hop != "fast" {
		t.Fatalf("NextHop = %q, want fast", hop)
	}
	links := nw.PathLinks("a", "b")
	if len(links) != 2 {
		t.Fatalf("path has %d links, want 2", len(links))
	}
}

func TestPathBandwidthBottleneck(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e)
	for _, n := range []string{"a", "m", "b"} {
		nw.AddNode(n, "s")
	}
	nw.AddDuplex("a", "m", 10*Gbit, sim.Millisecond, 0)
	nw.AddDuplex("m", "b", Gbit, sim.Millisecond, 0)
	if bw := nw.PathBandwidth("a", "b"); bw != Gbit {
		t.Fatalf("PathBandwidth = %v, want 1 Gbit", bw)
	}
}

func TestPathLossCompounds(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e)
	for _, n := range []string{"a", "m", "b"} {
		nw.AddNode(n, "s")
	}
	nw.AddDuplex("a", "m", Gbit, 0, 0.1)
	nw.AddDuplex("m", "b", Gbit, 0, 0.1)
	want := 1 - 0.9*0.9
	if got := nw.PathLoss("a", "b"); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PathLoss = %v, want %v", got, want)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate node")
		}
	}()
	e := sim.NewEngine(1)
	nw := New(e)
	nw.AddNode("a", "s")
	nw.AddNode("a", "s")
}

func TestFluidSingleFlowRate(t *testing.T) {
	e, nw := twoNodeNet(t, Gbit, 0, 0)
	var done *Flow
	nw.StartFlow("a", "b", 125_000_000, "test", func(f *Flow) { done = f }) // 1 Gbit of data
	e.Run()
	if done == nil {
		t.Fatal("flow never completed")
	}
	// 125 MB over 1 Gbit/s = 1 s.
	if math.Abs(done.Duration()-1.0) > 1e-6 {
		t.Fatalf("duration = %v, want 1 s", done.Duration())
	}
	if math.Abs(done.ThroughputBps()-Gbit) > 1 {
		t.Fatalf("throughput = %v, want 1 Gbit", done.ThroughputBps())
	}
}

func TestFluidFairSharing(t *testing.T) {
	e, nw := twoNodeNet(t, Gbit, 0, 0)
	var durations []sim.Duration
	for i := 0; i < 2; i++ {
		nw.StartFlow("a", "b", 125_000_000, "test", func(f *Flow) {
			durations = append(durations, f.Duration())
		})
	}
	e.Run()
	if len(durations) != 2 {
		t.Fatalf("completed %d flows, want 2", len(durations))
	}
	// Two equal flows share the link: both take 2 s.
	for _, d := range durations {
		if math.Abs(d-2.0) > 1e-6 {
			t.Fatalf("duration = %v, want 2 s", d)
		}
	}
}

func TestFluidLateArrivalSlowsFirst(t *testing.T) {
	e, nw := twoNodeNet(t, Gbit, 0, 0)
	var first, second *Flow
	nw.StartFlow("a", "b", 125_000_000, "t", func(f *Flow) { first = f })
	e.At(0.5, func() {
		second = nw.StartFlow("a", "b", 125_000_000, "t", nil)
	})
	e.Run()
	// First flow: 0.5 s alone (half done) + 1 s shared = 1.5 s total.
	if math.Abs(first.Duration()-1.5) > 1e-6 {
		t.Fatalf("first duration = %v, want 1.5 s", first.Duration())
	}
	// Second flow: 1 s shared (half) + 0.5 s alone = finishes at t=2.
	if math.Abs(float64(second.Finished)-2.0) > 1e-6 {
		t.Fatalf("second finished = %v, want 2 s", second.Finished)
	}
}

func TestFluidMaxMinUnevenPaths(t *testing.T) {
	// Flow X crosses a 100 Mbit link; flow Y shares only the 1 Gbit link
	// with X. Max-min: X gets 100 Mbit, Y gets the remaining 900 Mbit.
	e := sim.NewEngine(1)
	nw := New(e)
	for _, n := range []string{"a", "m", "b", "c"} {
		nw.AddNode(n, "s")
	}
	nw.AddDuplex("a", "m", Gbit, 0, 0)
	nw.AddDuplex("m", "b", 100*Mbit, 0, 0)
	nw.AddDuplex("m", "c", 10*Gbit, 0, 0)
	x := nw.StartFlow("a", "b", 12_500_000, "t", nil)  // 100 Mbit of data
	y := nw.StartFlow("a", "c", 112_500_000, "t", nil) // 900 Mbit of data
	e.Run()
	if math.Abs(x.Duration()-1.0) > 1e-6 {
		t.Fatalf("x duration = %v, want 1 s at 100 Mbit/s", x.Duration())
	}
	if math.Abs(y.Duration()-1.0) > 1e-6 {
		t.Fatalf("y duration = %v, want 1 s at 900 Mbit/s", y.Duration())
	}
}

func TestOSDCTopologyRTTs(t *testing.T) {
	e := sim.NewEngine(1)
	nw := BuildOSDCTopology(e, DefaultWAN())
	a := AttachHost(nw, "host-chi", SiteChicagoKenwood)
	b := AttachHost(nw, "host-lvoc", SiteLVOC)
	_ = a
	_ = b
	rtt := nw.PathRTT("host-chi", "host-lvoc")
	// Paper Table 3: 104 ms RTT Chicago↔LVOC (plus negligible LAN hops).
	if rtt < 0.1035 || rtt > 0.1045 {
		t.Fatalf("Chicago-LVOC RTT = %v, want ~104 ms", rtt)
	}
	if bw := nw.PathBandwidth("host-chi", "host-lvoc"); bw != 10*Gbit {
		t.Fatalf("path bandwidth = %v, want 10 Gbit", bw)
	}
}

func TestOSDCTopologyAllSitesReachable(t *testing.T) {
	e := sim.NewEngine(1)
	nw := BuildOSDCTopology(e, DefaultWAN())
	sites := []string{SiteChicagoKenwood, SiteChicagoNU, SiteLVOC, SiteAMPATH}
	for _, s := range sites {
		AttachHost(nw, "h-"+s, s)
	}
	for _, a := range sites {
		for _, b := range sites {
			if a == b {
				continue
			}
			if nw.NextHop("h-"+a, "h-"+b) == "" {
				t.Fatalf("no route %s -> %s", a, b)
			}
		}
	}
}

func TestLinkByteAccounting(t *testing.T) {
	e, nw := twoNodeNet(t, Gbit, 0, 0)
	nw.Node("b").Handle("x", func(pkt *Packet) {})
	for i := 0; i < 5; i++ {
		nw.Send(&Packet{Src: "a", Dst: "b", Proto: "x", Size: 1500})
	}
	e.Run()
	l := nw.LinkBetween("a", "b")
	if l.Bytes != 7500 {
		t.Fatalf("link bytes = %d, want 7500", l.Bytes)
	}
}
