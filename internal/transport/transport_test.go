package transport

import (
	"math"
	"testing"

	"osdc/internal/sim"
	"osdc/internal/simnet"
)

// fixedRate is a trivial controller sending at a constant rate.
type fixedRate struct {
	pps float64
	dt  sim.Duration
}

func (f *fixedRate) Name() string           { return "fixed" }
func (f *fixedRate) Interval() sim.Duration { return f.dt }
func (f *fixedRate) RatePps() float64       { return f.pps }
func (f *fixedRate) OnInterval(bool)        {}

func TestSimulateFixedRateLossless(t *testing.T) {
	path := Path{BandwidthBps: 1e9, RTT: 0.1, Loss: 0, MSS: 1000}
	// 1000 packets/s × 1000 B = 8 Mbit/s; 8 MB should take ~8 s.
	ctrl := &fixedRate{pps: 1000, dt: 0.01}
	res := Simulate(sim.NewRNG(1), path, ctrl, 8_000_000, Caps{})
	if math.Abs(res.Duration-8.0) > 0.05 {
		t.Fatalf("duration = %v, want ~8 s", res.Duration)
	}
	if res.LossEvents != 0 {
		t.Fatalf("loss events = %d on a lossless path", res.LossEvents)
	}
	if mb := res.ThroughputMbit(); math.Abs(mb-8.0) > 0.1 {
		t.Fatalf("throughput = %v Mbit/s, want ~8", mb)
	}
}

func TestSimulateCapLimits(t *testing.T) {
	path := Path{BandwidthBps: 10e9, RTT: 0.1, Loss: 0, MSS: 1000}
	ctrl := &fixedRate{pps: 1e6, dt: 0.01} // wants 8 Gbit/s
	caps := Caps{SenderBps: 400e6}         // cipher allows 400 Mbit/s
	res := Simulate(sim.NewRNG(1), path, ctrl, 500_000_000, caps)
	if mb := res.ThroughputMbit(); math.Abs(mb-400) > 5 {
		t.Fatalf("throughput = %v Mbit/s, want ~400 (cap)", mb)
	}
	if res.LossEvents != 0 {
		t.Fatal("cap-limited sending must not register loss")
	}
}

func TestSimulateBottleneckCongestion(t *testing.T) {
	path := Path{BandwidthBps: 100e6, RTT: 0.01, Loss: 0, MSS: 1000}
	ctrl := &fixedRate{pps: 25000, dt: 0.01} // wants 200 Mbit/s: 2× bottleneck
	res := Simulate(sim.NewRNG(1), path, ctrl, 50_000_000, Caps{})
	// Goodput is bounded by the bottleneck.
	if mb := res.ThroughputMbit(); mb > 101 {
		t.Fatalf("throughput = %v Mbit/s exceeds 100 Mbit bottleneck", mb)
	}
	if res.LossEvents == 0 {
		t.Fatal("sending at 2× bottleneck must cause congestion loss events")
	}
}

func TestSimulateRandomLossRetransmits(t *testing.T) {
	path := Path{BandwidthBps: 1e9, RTT: 0.05, Loss: 0.01, MSS: 1000}
	ctrl := &fixedRate{pps: 10000, dt: 0.01}
	res := Simulate(sim.NewRNG(7), path, ctrl, 10_000_000, Caps{})
	if res.Retransmit == 0 {
		t.Fatal("1% loss must cause retransmissions")
	}
	// ~1% of ~10k packets.
	if res.Retransmit < 30 || res.Retransmit > 300 {
		t.Fatalf("retransmits = %d, want ~100", res.Retransmit)
	}
}

func TestCapsMin(t *testing.T) {
	c := Caps{SenderBps: 500e6, DiskWriteBps: 1136e6, DiskReadBps: 3072e6}
	if got := c.Min(); got != 500e6 {
		t.Fatalf("Min = %v, want 500e6", got)
	}
	if got := (Caps{}).Min(); !math.IsInf(got, 1) {
		t.Fatalf("empty caps Min = %v, want +Inf", got)
	}
}

func TestLLRUsesSlowerDisk(t *testing.T) {
	caps := Caps{DiskReadBps: 3072e6, DiskWriteBps: 1136e6}
	r := Result{Bytes: 142_000_000, Duration: 1.0} // 1136 Mbit/s exactly
	if llr := r.LLR(caps); math.Abs(llr-1.0) > 1e-9 {
		t.Fatalf("LLR = %v, want 1.0", llr)
	}
	r2 := Result{Bytes: 94_000_000, Duration: 1.0} // 752 Mbit/s
	if llr := r2.LLR(caps); math.Abs(llr-0.6620) > 0.001 {
		t.Fatalf("LLR = %v, want ~0.662 (paper's UDR plain)", llr)
	}
}

func TestPathBetweenDerivesFromTopology(t *testing.T) {
	e := sim.NewEngine(1)
	nw := simnet.BuildOSDCTopology(e, simnet.DefaultWAN())
	simnet.AttachHost(nw, "a", simnet.SiteChicagoKenwood)
	simnet.AttachHost(nw, "b", simnet.SiteLVOC)
	p := PathBetween(nw, "a", "b")
	if p.BandwidthBps != 10*simnet.Gbit {
		t.Fatalf("bandwidth = %v, want 10G", p.BandwidthBps)
	}
	if p.RTT < 0.1035 || p.RTT > 0.1045 {
		t.Fatalf("RTT = %v, want ~104 ms", p.RTT)
	}
	if p.Loss <= 0 {
		t.Fatal("path loss should be positive on the WAN")
	}
	if p.BDP() < 100e6 {
		t.Fatalf("BDP = %v bytes, expected >100 MB on 10G×104ms", p.BDP())
	}
}

func TestSimulatePanicsOnZeroBytes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Simulate(sim.NewRNG(1), Path{BandwidthBps: 1e9, RTT: 0.1, MSS: 1000}, &fixedRate{pps: 10, dt: 0.01}, 0, Caps{})
}

func TestPoissonMean(t *testing.T) {
	rng := sim.NewRNG(3)
	for _, mean := range []float64{0.5, 5, 200} {
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += poisson(rng, mean)
		}
		got := sum / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Fatalf("poisson(%v) sample mean = %v", mean, got)
		}
	}
	if poisson(rng, 0) != 0 {
		t.Fatal("poisson(0) != 0")
	}
}

func TestResultThroughputZeroDuration(t *testing.T) {
	r := Result{Bytes: 100}
	if r.ThroughputBps() != 0 {
		t.Fatal("zero-duration result must report zero throughput")
	}
}

// TestSimulateFractionalDropsAccumulate pins the retransmit accounting for
// slow flows: a sender 0.4% above the bottleneck drops exactly half a
// packet per 10 ms interval, which per-interval truncation would count as
// zero forever.
func TestSimulateFractionalDropsAccumulate(t *testing.T) {
	path := Path{BandwidthBps: 100e6, RTT: 0.01, Loss: 0, MSS: 1000}
	// bottleneck = 12500 pps; offering 12550 drops 0.5 packets per 10 ms.
	ctrl := &fixedRate{pps: 12550, dt: 0.01}
	res := Simulate(sim.NewRNG(3), path, ctrl, 10_000_000, Caps{})
	// 10 MB at 125 kB per interval = 80 intervals × 0.5 drops = ~40.
	if res.Retransmit < 35 || res.Retransmit > 45 {
		t.Fatalf("retransmits = %d, want ~40 (fractional drops must accumulate)", res.Retransmit)
	}
}
