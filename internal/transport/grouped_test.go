package transport

import (
	"reflect"
	"testing"
)

// testGroups builds fresh flow groups (controllers carry state, so every
// SimulateGrouped call needs its own).
func testGroups() []FlowGroup {
	path := Path{BandwidthBps: 1e9, RTT: 0.1, Loss: 0.001, MSS: DefaultMSS}
	mk := func(n int) ([]Controller, []int64) {
		ctrls := make([]Controller, n)
		sizes := make([]int64, n)
		for i := range ctrls {
			ctrls[i] = &stubCtrl{name: "stub", interval: 0.01, pps: path.PacketsPerSec() * 2}
			sizes[i] = int64(64+i) << 20
		}
		return ctrls, sizes
	}
	names := []string{"kenwood→nu", "nu→ampath", "ampath→kenwood", "kenwood→llnl"}
	groups := make([]FlowGroup, len(names))
	for gi, name := range names {
		ctrls, sizes := mk(1 + gi%3)
		groups[gi] = FlowGroup{Name: name, Path: path, Ctrls: ctrls, Sizes: sizes}
	}
	return groups
}

// TestSimulateGroupedDeterministicAcrossK: grouped pricing is a pure
// function of (seed, groups) — the home partition (k) only changes which
// goroutine prices a group, never the result.
func TestSimulateGroupedDeterministicAcrossK(t *testing.T) {
	base := SimulateGrouped(42, 1, testGroups())
	for _, k := range []int{2, 4, 8, 16} {
		got := SimulateGrouped(42, k, testGroups())
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("k=%d pricing diverged from k=1:\nk=1: %+v\nk=%d: %+v", k, base, k, got)
		}
	}
	// A different seed draws different loss samples.
	other := SimulateGrouped(43, 4, testGroups())
	if reflect.DeepEqual(base, other) {
		t.Fatal("seed 42 and 43 priced identically; per-group RNG streams not seeded")
	}
}

// TestGroupHomeStableAndBounded: homes are a stable pure function of the
// name, always in [0, k).
func TestGroupHomeStableAndBounded(t *testing.T) {
	for _, name := range []string{"a→b", "b→a", "", "kenwood→nu"} {
		for _, k := range []int{1, 2, 8} {
			h := GroupHome(name, k)
			if h < 0 || h >= k {
				t.Fatalf("GroupHome(%q, %d) = %d out of range", name, k, h)
			}
			if h2 := GroupHome(name, k); h2 != h {
				t.Fatalf("GroupHome(%q, %d) unstable: %d then %d", name, k, h, h2)
			}
		}
	}
	// With several links and k=8 at least two distinct homes appear — the
	// concurrency is real, not everything collapsing onto one shard.
	homes := map[int]bool{}
	for _, g := range testGroups() {
		homes[GroupHome(g.Name, 8)] = true
	}
	if len(homes) < 2 {
		t.Fatalf("all %d links homed to one shard", len(testGroups()))
	}
}
