// Package transport provides the shared machinery for simulating bulk data
// transfers over the OSDC WAN (paper §7.2, Table 3).
//
// Two granularities are supported:
//
//   - Packet level: internal/udt and internal/tcpmodel implement full
//     protocol state machines (sequence numbers, ACK/NAK, retransmission)
//     over simnet packets. Used to validate protocol correctness.
//   - Macro level: the same congestion-control laws advanced one control
//     interval at a time against an analytic path model. Used for the
//     terabyte-scale transfers of Table 3, where packet-level simulation
//     would need ~10⁹ events.
//
// The Controller interface is the bridge: both UDT's DAIMD rate control and
// TCP Reno's AIMD window control implement it, so the macro driver and the
// benchmarks treat them uniformly.
package transport

import (
	"fmt"
	"math"

	"osdc/internal/sim"
	"osdc/internal/simnet"
)

// DefaultMSS is the Ethernet-path maximum segment size in bytes.
const DefaultMSS = 1460

// Path is the analytic view of a network path: what a transfer sees.
type Path struct {
	BandwidthBps float64      // bottleneck link bandwidth, bits/s
	RTT          sim.Duration // round-trip propagation delay, seconds
	Loss         float64      // per-packet random loss probability
	MSS          int          // segment size, bytes
}

// PathBetween derives the analytic path between two nodes of a simnet
// topology.
func PathBetween(nw *simnet.Network, a, b string) Path {
	return Path{
		BandwidthBps: math.Min(nw.PathBandwidth(a, b), nw.PathBandwidth(b, a)),
		RTT:          nw.PathRTT(a, b),
		Loss:         nw.PathLoss(a, b),
		MSS:          DefaultMSS,
	}
}

// PacketsPerSec converts the path bandwidth to packets per second.
func (p Path) PacketsPerSec() float64 { return p.BandwidthBps / float64(p.MSS*8) }

// BDP returns the bandwidth-delay product in bytes.
func (p Path) BDP() float64 { return p.BandwidthBps / 8 * p.RTT }

// Controller is a congestion-control law advanced in fixed control
// intervals. Implementations must be deterministic given the same feedback
// sequence.
type Controller interface {
	// Name identifies the law, e.g. "udt-daimd" or "tcp-reno".
	Name() string
	// Interval is the control-loop period: UDT's SYN (10 ms) or one RTT for
	// TCP.
	Interval() sim.Duration
	// RatePps is the currently allowed sending rate in packets/second.
	RatePps() float64
	// OnInterval advances the law by one interval. lossEvent reports whether
	// at least one loss was detected during the interval.
	OnInterval(lossEvent bool)
}

// Caps model the non-network stages of a transfer pipeline. A zero value
// means "not limiting". The pipeline is assumed fully overlapped (UDR and
// rsync both pipeline read→encrypt→send→decrypt→write), so the steady-state
// goodput is the minimum of all stage rates.
type Caps struct {
	SenderBps    float64 // sender CPU / cipher throughput, bits/s
	ReceiverBps  float64 // receiver CPU / cipher throughput, bits/s
	DiskReadBps  float64 // source disk streaming read, bits/s
	DiskWriteBps float64 // target disk streaming write, bits/s
}

// Min returns the binding cap in bits/s, or +Inf if none is set.
func (c Caps) Min() float64 {
	m := math.Inf(1)
	for _, v := range []float64{c.SenderBps, c.ReceiverBps, c.DiskReadBps, c.DiskWriteBps} {
		if v > 0 && v < m {
			m = v
		}
	}
	return m
}

// Result summarizes a simulated transfer.
type Result struct {
	Protocol   string
	Bytes      int64
	Duration   sim.Duration
	LossEvents int64   // control intervals that saw loss
	Retransmit int64   // packets retransmitted
	PeakBps    float64 // highest interval goodput observed
}

// ThroughputBps is the average goodput in bits per second.
func (r Result) ThroughputBps() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / r.Duration
}

// ThroughputMbit is the average goodput in Mbit/s, the unit Table 3 uses.
func (r Result) ThroughputMbit() float64 { return r.ThroughputBps() / 1e6 }

// LLR is the paper's "long distance to local ratio": achieved throughput
// divided by the slower of the two local disk speeds (§7.2).
func (r Result) LLR(caps Caps) float64 {
	denom := math.Min(caps.DiskReadBps, caps.DiskWriteBps)
	if denom <= 0 {
		return 0
	}
	return r.ThroughputBps() / denom
}

func (r Result) String() string {
	return fmt.Sprintf("%s: %.0f mbit/s over %s (%d loss events)",
		r.Protocol, r.ThroughputMbit(), sim.Time(r.Duration), r.LossEvents)
}

// Simulate runs the macro transfer model: advance the controller one
// interval at a time, send at min(controller rate, caps, path bandwidth),
// sample random loss, detect queue-overload loss, and accumulate goodput
// until totalBytes are delivered.
//
// Loss model per interval: the number of randomly lost packets is sampled
// Poisson(n·p); additionally, if the controller's raw rate exceeds the path
// bandwidth, the excess fraction is dropped at the bottleneck queue
// (congestion loss). Lost packets are retransmitted (they consume sending
// budget but do not count toward goodput).
func Simulate(rng *sim.RNG, path Path, ctrl Controller, totalBytes int64, caps Caps) Result {
	if totalBytes <= 0 {
		panic("transport: totalBytes must be positive")
	}
	if path.MSS <= 0 {
		path.MSS = DefaultMSS
	}
	res := Result{Protocol: ctrl.Name(), Bytes: totalBytes}
	capBps := caps.Min()
	pktBits := float64(path.MSS * 8)
	bottleneckPps := path.BandwidthBps / pktBits

	var delivered float64
	var t sim.Duration
	// Fractional lost packets accumulate across intervals and are rounded
	// once at the end; truncating per interval undercounts slow flows
	// whose per-interval loss is < 1 packet (mirrored in SimulateShared).
	var retrans float64
	for delivered < float64(totalBytes) {
		dt := ctrl.Interval()
		rawPps := ctrl.RatePps()
		// Application-side caps throttle the send loop; that is not loss,
		// the sender simply paces slower.
		effPps := rawPps
		if capBps < effPps*pktBits {
			effPps = capBps / pktBits
		}
		// Pushing above the bottleneck overflows its queue: the excess is
		// congestion loss the controller must react to.
		congDrops := 0.0
		if effPps > bottleneckPps {
			congDrops = (effPps - bottleneckPps) * dt
			effPps = bottleneckPps
		}
		sent := effPps * dt // packets that actually traverse the bottleneck
		// Random tail loss, Poisson-approximated binomial.
		lost := poisson(rng, sent*path.Loss)
		if lost > sent {
			lost = sent
		}
		lossEvent := lost > 0 || congDrops >= 1
		// Every packet that arrives delivers a unique useful chunk: dropped
		// chunks are simply re-sent from future sending budget, so counting
		// arrivals as goodput and drops as retransmissions is exact in the
		// steady state (duplicates are rare enough to ignore).
		arrived := sent - lost
		retrans += lost + congDrops
		deliveredNow := arrived * float64(path.MSS)
		delivered += deliveredNow
		if bps := deliveredNow * 8 / dt; bps > res.PeakBps {
			res.PeakBps = bps
		}
		if lossEvent {
			res.LossEvents++
		}
		ctrl.OnInterval(lossEvent)
		t += dt
		if t > 100*sim.Day {
			panic("transport: transfer did not converge (rate stuck near zero?)")
		}
	}
	// Remove the overshoot of the final interval for a fair duration.
	over := delivered - float64(totalBytes)
	if over > 0 {
		lastRate := delivered / t
		if lastRate > 0 {
			t -= over / lastRate
		}
	}
	res.Duration = t
	res.Retransmit = int64(math.Round(retrans))
	return res
}

// poisson samples a Poisson(mean) variate. For large means it uses a normal
// approximation, which is fine at the scales we simulate.
func poisson(rng *sim.RNG, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	if mean > 50 {
		v := math.Round(rng.Normal(mean, math.Sqrt(mean)))
		if v < 0 {
			v = 0
		}
		return v
	}
	// Knuth's method.
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			break
		}
		k++
	}
	return float64(k)
}
