package transport

import (
	"sync"

	"osdc/internal/sim"
)

// FlowGroup is one shared-bottleneck pricing job: flows contending on one
// path (a directed WAN link, say), named so the group can be homed onto a
// shard deterministically.
type FlowGroup struct {
	Name  string
	Path  Path
	Ctrls []Controller
	Sizes []int64
	Caps  Caps
}

// GroupHome returns the home index a group name hashes to (FNV-1a mod k)
// — the same function sim.ShardSet.ShardIndex applies to entity keys, so
// a flow group and an entity sharing a key land on the same shard index.
func GroupHome(name string, k int) int {
	if k <= 1 {
		return 0
	}
	return int(fnv64(name) % uint64(k))
}

func fnv64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// SimulateGrouped prices every group, fanned out over one goroutine per
// home (GroupHome(name, k)); each home prices its groups serially in
// input order. Every group draws from a private RNG stream seeded
// seed^FNV(name), so the results are a pure function of (seed, groups):
// bit-identical for any k >= 1 and stable under concurrent pricing.
func SimulateGrouped(seed uint64, k int, groups []FlowGroup) [][]Result {
	out := make([][]Result, len(groups))
	if len(groups) == 0 {
		return out
	}
	if k < 1 {
		k = 1
	}
	byHome := make([][]int, k)
	for i, g := range groups {
		h := GroupHome(g.Name, k)
		byHome[h] = append(byHome[h], i)
	}
	var wg sync.WaitGroup
	for _, idxs := range byHome {
		if len(idxs) == 0 {
			continue
		}
		idxs := idxs
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, i := range idxs {
				g := groups[i]
				out[i] = SimulateShared(sim.NewRNG(seed^fnv64(g.Name)), g.Path, g.Ctrls, g.Sizes, g.Caps)
			}
		}()
	}
	wg.Wait()
	return out
}
