package transport

import (
	"testing"

	"osdc/internal/sim"
)

// stubCtrl is a fixed-rate controller with a decrease-on-loss law, enough
// to exercise the shared-bottleneck accounting deterministically.
type stubCtrl struct {
	name     string
	interval sim.Duration
	pps      float64
	losses   int
}

func (c *stubCtrl) Name() string           { return c.name }
func (c *stubCtrl) Interval() sim.Duration { return c.interval }
func (c *stubCtrl) RatePps() float64       { return c.pps }
func (c *stubCtrl) OnInterval(loss bool) {
	if loss {
		c.losses++
		c.pps *= 0.9
	} else {
		c.pps *= 1.01
	}
}

func testPath() Path {
	return Path{BandwidthBps: 1e9, RTT: 0.1, Loss: 0, MSS: DefaultMSS}
}

func TestSharedSingleFlowMatchesDedicated(t *testing.T) {
	path := testPath()
	const bytes = 1 << 30
	mk := func() Controller { return &stubCtrl{name: "stub", interval: 0.01, pps: path.PacketsPerSec() * 2} }
	solo := Simulate(sim.NewRNG(1), path, mk(), bytes, Caps{})
	shared := SimulateShared(sim.NewRNG(1), path, []Controller{mk()}, []int64{bytes}, Caps{})
	if len(shared) != 1 {
		t.Fatalf("results = %d", len(shared))
	}
	a, b := solo.ThroughputMbit(), shared[0].ThroughputMbit()
	if ratio := a / b; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("single shared flow %.0f mbit/s vs dedicated %.0f mbit/s", b, a)
	}
}

func TestSharedFlowsSplitBottleneckFairly(t *testing.T) {
	path := testPath()
	const n = 4
	ctrls := make([]Controller, n)
	sizes := make([]int64, n)
	for i := range ctrls {
		ctrls[i] = &stubCtrl{name: "stub", interval: 0.01, pps: path.PacketsPerSec()}
		sizes[i] = 512 << 20
	}
	results := SimulateShared(sim.NewRNG(2), path, ctrls, sizes, Caps{})
	var aggBps float64
	for _, r := range results {
		aggBps += r.ThroughputBps()
	}
	if aggBps > path.BandwidthBps*1.02 {
		t.Fatalf("aggregate %.0f mbit/s exceeds the %.0f mbit/s bottleneck", aggBps/1e6, path.BandwidthBps/1e6)
	}
	if aggBps < path.BandwidthBps*0.5 {
		t.Fatalf("aggregate %.0f mbit/s badly underuses the bottleneck", aggBps/1e6)
	}
	if f := JainFairness(results); f < 0.9 {
		t.Fatalf("fairness %.3f for identical flows, want ~1", f)
	}
	// Identical flows competing must each see congestion loss.
	for i, r := range results {
		if r.LossEvents == 0 {
			t.Fatalf("flow %d saw no loss despite 4x overload", i)
		}
	}
}

func TestSharedHeterogeneousIntervals(t *testing.T) {
	path := testPath()
	ctrls := []Controller{
		&stubCtrl{name: "fast", interval: 0.01, pps: path.PacketsPerSec()},
		&stubCtrl{name: "slow", interval: 0.1, pps: path.PacketsPerSec()},
	}
	results := SimulateShared(sim.NewRNG(3), path, ctrls, []int64{256 << 20, 256 << 20}, Caps{})
	for i, r := range results {
		if r.Duration <= 0 || r.ThroughputBps() <= 0 {
			t.Fatalf("flow %d did not complete: %+v", i, r)
		}
	}
	// The slow controller advanced at its own cadence: its loss-event count
	// is bounded by elapsed/interval.
	slow := results[1]
	if max := int64(slow.Duration/0.1) + 1; slow.LossEvents > max {
		t.Fatalf("slow flow counted %d loss events in %d windows", slow.LossEvents, max)
	}
}

func TestSharedCapsThrottlePerFlow(t *testing.T) {
	path := testPath()
	caps := Caps{SenderBps: 100e6}
	ctrls := []Controller{&stubCtrl{name: "capped", interval: 0.01, pps: path.PacketsPerSec() * 4}}
	results := SimulateShared(sim.NewRNG(4), path, ctrls, []int64{64 << 20}, caps)
	if mbit := results[0].ThroughputMbit(); mbit > 101 {
		t.Fatalf("capped flow ran at %.0f mbit/s past its 100 mbit/s cap", mbit)
	}
}

// TestSharedFractionalDropsAccumulate is the SimulateShared mirror of
// TestSimulateFractionalDropsAccumulate: sub-packet per-tick drops must
// accumulate instead of truncating to zero every tick.
func TestSharedFractionalDropsAccumulate(t *testing.T) {
	path := Path{BandwidthBps: 100e6, RTT: 0.01, Loss: 0, MSS: 1000}
	ctrls := []Controller{&stubNoBackoff{interval: 0.01, pps: 12550}}
	results := SimulateShared(sim.NewRNG(3), path, ctrls, []int64{10_000_000}, Caps{})
	if got := results[0].Retransmit; got < 35 || got > 45 {
		t.Fatalf("retransmits = %d, want ~40 (fractional drops must accumulate)", got)
	}
}

// stubNoBackoff keeps a constant rate regardless of loss feedback.
type stubNoBackoff struct {
	interval sim.Duration
	pps      float64
}

func (c *stubNoBackoff) Name() string           { return "stub-constant" }
func (c *stubNoBackoff) Interval() sim.Duration { return c.interval }
func (c *stubNoBackoff) RatePps() float64       { return c.pps }
func (c *stubNoBackoff) OnInterval(bool)        {}
