package transport

import (
	"fmt"
	"math"

	"osdc/internal/sim"
)

// SimulateShared runs several transfers concurrently over one bottleneck
// path. Where Simulate gives each flow the path to itself, here the flows'
// offered rates are summed each tick; when the sum exceeds the bottleneck,
// the excess is dropped in proportion to each flow's share of the offered
// load (a fluid model of a FIFO queue overflowing), and each flow's
// controller sees the loss in its own control interval. This is the
// contention regime the single-flow model cannot express: N loss-reactive
// flows discovering their fair share of a 10G WAN.
//
// ctrls[i] moves totalBytes[i]; caps apply per flow (each flow has its own
// disks and cipher pipeline). Flows that finish stop offering load. The
// returned Results are per flow, with Duration the virtual time at which
// that flow completed.
//
// The per-tick accounting (cap clamp, Poisson tail loss, congestion-drop
// threshold, retransmit/PeakBps bookkeeping) deliberately mirrors
// Simulate; keep the two in sync when touching the loss model.
// TestSharedSingleFlowMatchesDedicated pins the single-flow case to the
// dedicated model within 10%.
func SimulateShared(rng *sim.RNG, path Path, ctrls []Controller, totalBytes []int64, caps Caps) []Result {
	if len(ctrls) == 0 || len(ctrls) != len(totalBytes) {
		panic(fmt.Sprintf("transport: %d controllers for %d transfer sizes", len(ctrls), len(totalBytes)))
	}
	if path.MSS <= 0 {
		path.MSS = DefaultMSS
	}
	pktBits := float64(path.MSS * 8)
	bottleneckPps := path.BandwidthBps / pktBits
	capPps := math.Inf(1)
	if c := caps.Min(); !math.IsInf(c, 1) {
		capPps = c / pktBits
	}

	// The global tick is the fastest control interval; slower controllers
	// accumulate ticks and are advanced once per own interval.
	tick := math.Inf(1)
	for i, c := range ctrls {
		if c.Interval() <= 0 {
			panic(fmt.Sprintf("transport: controller %d has non-positive interval", i))
		}
		tick = math.Min(tick, c.Interval())
	}

	type flowState struct {
		remaining float64
		// retrans accumulates fractional lost packets across ticks; the
		// per-tick losses of a slow flow are routinely < 1 packet, so
		// truncating every tick would systematically undercount. Rounded
		// into Result.Retransmit once, at flow completion.
		retrans   float64
		sinceCtrl sim.Duration
		lossInWin bool
		done      bool
	}
	flows := make([]flowState, len(ctrls))
	results := make([]Result, len(ctrls))
	active := len(ctrls)
	for i := range ctrls {
		if totalBytes[i] <= 0 {
			panic("transport: totalBytes must be positive")
		}
		flows[i].remaining = float64(totalBytes[i])
		results[i] = Result{Protocol: ctrls[i].Name(), Bytes: totalBytes[i]}
	}

	offered := make([]float64, len(ctrls))
	var t sim.Duration
	for active > 0 {
		// Offered load this tick.
		var total float64
		for i := range flows {
			offered[i] = 0
			if flows[i].done {
				continue
			}
			pps := math.Min(ctrls[i].RatePps(), capPps)
			offered[i] = pps
			total += pps
		}
		// Proportional overflow at the shared bottleneck.
		overload := total > bottleneckPps
		for i := range flows {
			if flows[i].done || offered[i] == 0 {
				continue
			}
			eff := offered[i]
			congDrops := 0.0
			if overload {
				keep := bottleneckPps / total
				congDrops = eff * (1 - keep) * tick
				eff *= keep
			}
			sent := eff * tick
			lost := poisson(rng, sent*path.Loss)
			if lost > sent {
				lost = sent
			}
			arrived := sent - lost
			flows[i].retrans += lost + congDrops
			if lost > 0 || congDrops >= 1 {
				flows[i].lossInWin = true
			}
			deliveredNow := arrived * float64(path.MSS)
			flows[i].remaining -= deliveredNow
			if bps := deliveredNow * 8 / tick; bps > results[i].PeakBps {
				results[i].PeakBps = bps
			}
			if flows[i].remaining <= 0 {
				// Credit back the final-tick overshoot for a fair duration.
				over := -flows[i].remaining
				dt := tick
				if deliveredNow > 0 {
					dt -= over / deliveredNow * tick
				}
				results[i].Duration = t + dt
				results[i].Retransmit = int64(math.Round(flows[i].retrans))
				flows[i].done = true
				active--
			}
		}
		// Advance each live controller at its own cadence.
		for i := range flows {
			if flows[i].done {
				continue
			}
			flows[i].sinceCtrl += tick
			if flows[i].sinceCtrl >= ctrls[i].Interval()-1e-12 {
				if flows[i].lossInWin {
					results[i].LossEvents++
				}
				ctrls[i].OnInterval(flows[i].lossInWin)
				flows[i].sinceCtrl = 0
				flows[i].lossInWin = false
			}
		}
		t += tick
		if t > 100*sim.Day {
			panic("transport: shared transfer did not converge")
		}
	}
	return results
}

// JainFairness computes Jain's fairness index over per-flow throughputs:
// 1.0 means perfectly equal shares, 1/n means one flow starved the rest.
func JainFairness(results []Result) float64 {
	var sum, sumsq float64
	for _, r := range results {
		x := r.ThroughputBps()
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 0
	}
	return sum * sum / (float64(len(results)) * sumsq)
}
