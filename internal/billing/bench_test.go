package billing

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"osdc/internal/sim"
)

// TestShardedAccrualConcurrent drives accruals and reads for many users
// from many goroutines and checks no sample is lost: the sharded
// accumulators must behave exactly like the old single-mutex map.
func TestShardedAccrualConcurrent(t *testing.T) {
	b := New(sim.NewEngine(1), DefaultRates(), nil, nil)
	const users, perUser = 64, 200
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		name := fmt.Sprintf("user%02d", u)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perUser; i++ {
				b.accrueCores(name, 4)
				_ = b.CurrentUsage(name)
			}
		}()
	}
	wg.Wait()
	for u := 0; u < users; u++ {
		name := fmt.Sprintf("user%02d", u)
		usage := b.CurrentUsage(name)
		if usage.Samples != perUser || usage.CoreMinutes != perUser*4 {
			t.Fatalf("%s: samples=%d core-minutes=%v, want %d/%d",
				name, usage.Samples, usage.CoreMinutes, perUser, perUser*4)
		}
	}
}

// TestShardsSpreadUsers pins that the FNV hash actually spreads a user
// population across shards instead of collapsing onto a few locks.
func TestShardsSpreadUsers(t *testing.T) {
	b := New(sim.NewEngine(1), DefaultRates(), nil, nil)
	for u := 0; u < 1024; u++ {
		b.accrueCores(fmt.Sprintf("user%04d", u), 1)
	}
	occupied := 0
	for i := range b.shards {
		b.shards[i].mu.Lock()
		if len(b.shards[i].usage) > 0 {
			occupied++
		}
		b.shards[i].mu.Unlock()
	}
	if occupied != usageShards {
		t.Fatalf("1024 users occupy %d/%d shards", occupied, usageShards)
	}
}

// BenchmarkBillerParallelAccrual is the contention benchmark the sharding
// exists for: every worker accrues minute-samples and reads usage for its
// own slice of a large user population, the access pattern of pollers
// racing console reads. Compare -cpu 1,4,16 to see the shards scale.
func BenchmarkBillerParallelAccrual(b *testing.B) {
	biller := New(sim.NewEngine(1), DefaultRates(), nil, nil)
	const users = 1024
	names := make([]string, users)
	for i := range names {
		names[i] = fmt.Sprintf("user%04d", i)
	}
	var next int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Each worker walks the population from its own offset so workers
		// collide on shards, not on a single user.
		i := int(atomic.AddInt64(&next, 257))
		for pb.Next() {
			name := names[i%users]
			biller.accrueCores(name, 4)
			_ = biller.CurrentUsage(name)
			i++
		}
	})
}
