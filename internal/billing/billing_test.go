package billing

import (
	"fmt"
	"math"
	"testing"
	"time"

	"osdc/internal/cloudapi"
	"osdc/internal/iaas"
	"osdc/internal/sim"
)

func setup(t *testing.T) (*sim.Engine, *iaas.Cloud, *Biller) {
	t.Helper()
	e := sim.NewEngine(21)
	c := iaas.NewCloud(e, "adler", "openstack", "chicago")
	c.AddRack("r", 8)
	c.SetQuota("alice", iaas.Quota{MaxInstances: 50, MaxCores: 400})
	b := New(e, DefaultRates(), []cloudapi.CloudAPI{cloudapi.NewLocal(c)}, nil)
	return e, c, b
}

func TestCoreHourAccumulation(t *testing.T) {
	e, c, b := setup(t)
	// 4-core VM for 10 hours.
	inst, err := c.Launch("alice", "vm", "m1.large", "")
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(10 * sim.Hour)
	if err := c.Terminate("alice", inst.ID); err != nil {
		t.Fatal(err)
	}
	u := b.CurrentUsage("alice")
	// Per-minute sampling of 4 cores for 600 minutes = 2400 core-minutes.
	if math.Abs(u.CoreHours()-40) > 0.5 {
		t.Fatalf("core-hours = %v, want ~40", u.CoreHours())
	}
	if u.Samples < 590 || u.Samples > 610 {
		t.Fatalf("samples = %d, want ~600 (per-minute polling)", u.Samples)
	}
}

func TestStorageDailySampling(t *testing.T) {
	e := sim.NewEngine(2)
	stored := int64(10) << 30 // 10 GB constant
	b := New(e, DefaultRates(), nil, func() map[string]int64 {
		return map[string]int64{"bob": stored}
	})
	e.RunFor(10 * sim.Day)
	u := b.CurrentUsage("bob")
	if math.Abs(u.GBDays-100) > 1 {
		t.Fatalf("GB-days = %v, want ~100", u.GBDays)
	}
}

func TestMonthlyInvoiceCut(t *testing.T) {
	e, c, b := setup(t)
	if _, err := c.Launch("alice", "vm", "m1.xlarge", ""); err != nil { // 8 cores
		t.Fatal(err)
	}
	e.RunFor(31 * sim.Day)
	invs := b.Invoices("alice")
	if len(invs) != 1 {
		t.Fatalf("invoices = %d, want 1 after a 30-day cycle", len(invs))
	}
	inv := invs[0]
	// 8 cores × 24 h × 30 d = 5760 core-hours.
	if math.Abs(inv.CoreHours-5760) > 20 {
		t.Fatalf("invoice core-hours = %v, want ~5760", inv.CoreHours)
	}
	wantCompute := (inv.CoreHours - 100) * DefaultRates().PerCoreHour
	if math.Abs(inv.Compute-wantCompute) > 0.01 {
		t.Fatalf("compute charge = %v, want %v", inv.Compute, wantCompute)
	}
	// Accumulators reset for the new cycle.
	if b.CurrentUsage("alice").CoreHours() > 200 {
		t.Fatal("usage not reset after invoice")
	}
	if b.Cycle() != 2 {
		t.Fatalf("cycle = %d, want 2", b.Cycle())
	}
}

func TestFreeTierCoversSmallUsage(t *testing.T) {
	e, c, b := setup(t)
	inst, err := c.Launch("alice", "vm", "m1.small", "") // 1 core
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(50 * sim.Hour) // 50 core-hours < 100 free
	if err := c.Terminate("alice", inst.ID); err != nil {
		t.Fatal(err)
	}
	e.RunFor(31*sim.Day - 50*sim.Hour)
	inv := b.Invoices("alice")[0]
	if inv.Compute != 0 {
		t.Fatalf("small usage billed %v, want 0 (free tier)", inv.Compute)
	}
	if inv.FreeCredit <= 0 {
		t.Fatal("free credit not recorded")
	}
}

func TestBillingCreatesIncentiveToRelease(t *testing.T) {
	// The paper's lesson: metering discourages holding idle VMs. A hoarder
	// who keeps an 8-core VM all month pays ~12× a user who releases after
	// two days of work.
	e, c, b := setup(t)
	c.SetQuota("hoarder", iaas.Quota{MaxInstances: 10, MaxCores: 100})
	c.SetQuota("sharer", iaas.Quota{MaxInstances: 10, MaxCores: 100})
	if _, err := c.Launch("hoarder", "idle", "m1.xlarge", ""); err != nil {
		t.Fatal(err)
	}
	sh, err := c.Launch("sharer", "job", "m1.xlarge", "")
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(2 * sim.Day)
	if err := c.Terminate("sharer", sh.ID); err != nil {
		t.Fatal(err)
	}
	e.RunFor(29 * sim.Day)
	var hoarder, sharer Invoice
	for _, inv := range b.Invoices("") {
		switch inv.User {
		case "hoarder":
			hoarder = inv
		case "sharer":
			sharer = inv
		}
	}
	if hoarder.Total < 10*sharer.Total {
		t.Fatalf("hoarder pays %v vs sharer %v; metering not incentivizing", hoarder.Total, sharer.Total)
	}
}

func TestPollsCounted(t *testing.T) {
	e, _, b := setup(t)
	e.RunFor(sim.Hour)
	if b.Polls < 59 || b.Polls > 61 {
		t.Fatalf("polls in 1 h = %d, want ~60", b.Polls)
	}
}

// failingCloud is a CloudAPI whose usage samples always fail — an
// unreachable remote site as the pollers see it.
type failingCloud struct {
	cloudapi.CloudAPI
	name string
}

func (f failingCloud) Name() string { return f.name }
func (f failingCloud) Usage() (cloudapi.Usage, error) {
	return cloudapi.Usage{}, fmt.Errorf("site %s unreachable", f.name)
}
func (f failingCloud) UsageSince(int64) (cloudapi.UsageDelta, error) {
	return cloudapi.UsageDelta{}, fmt.Errorf("site %s unreachable", f.name)
}

func TestPollErrorsBrokenDownPerCloud(t *testing.T) {
	e := sim.NewEngine(3)
	good := iaas.NewCloud(e, "healthy", "openstack", "chicago")
	good.AddRack("r", 2)
	b := New(e, DefaultRates(), []cloudapi.CloudAPI{
		cloudapi.NewLocal(good),
		failingCloud{name: "down-site"},
	}, nil)
	e.RunFor(10 * sim.Minute)
	b.Stop()

	per := b.PollErrorsByCloud()
	if per["healthy"] != 0 {
		t.Fatalf("healthy cloud charged %d poll errors", per["healthy"])
	}
	if per["down-site"] < 9 || per["down-site"] != b.PollErrors {
		t.Fatalf("down-site errors = %d (total %d), want ~10 and equal", per["down-site"], b.PollErrors)
	}
}

func TestStopHaltsPolling(t *testing.T) {
	e, _, b := setup(t)
	e.RunFor(10 * sim.Minute)
	b.Stop()
	before := b.Polls
	e.RunFor(10 * sim.Minute)
	if b.Polls != before {
		t.Fatal("polling continued after Stop")
	}
}

// hangingCloud is a CloudAPI whose usage samples block until released — a
// hung remote site that never answers, as opposed to one that errors fast.
type hangingCloud struct {
	cloudapi.CloudAPI
	name    string
	release chan struct{}
}

func (h *hangingCloud) Name() string { return h.name }
func (h *hangingCloud) Usage() (cloudapi.Usage, error) {
	<-h.release
	return cloudapi.Usage{}, nil
}
func (h *hangingCloud) UsageSince(int64) (cloudapi.UsageDelta, error) {
	<-h.release
	return cloudapi.UsageDelta{}, nil
}

// TestAbandonedPollSurfacesAsPollError: a site whose Usage hangs past the
// per-poll deadline is counted in PollErrorsByCloud while the healthy site
// keeps accruing — the poll abandons the wait instead of stalling the
// clock goroutine behind the hung transport.
func TestAbandonedPollSurfacesAsPollError(t *testing.T) {
	e := sim.NewEngine(3)
	good := iaas.NewCloud(e, "healthy", "openstack", "chicago")
	good.AddRack("r", 2)
	good.SetQuota("alice", iaas.Quota{MaxInstances: 10, MaxCores: 100})
	if _, err := good.Launch("alice", "vm", "m1.small", ""); err != nil {
		t.Fatal(err)
	}
	hung := &hangingCloud{name: "hung-site", release: make(chan struct{})}
	t.Cleanup(func() { close(hung.release) }) // drain the abandoned tasks

	b := New(e, DefaultRates(), []cloudapi.CloudAPI{
		cloudapi.NewLocal(good),
		hung,
	}, nil)
	b.SetPollDeadline(5 * time.Millisecond)
	e.RunFor(5 * sim.Minute)
	b.Stop()

	per := b.PollErrorsByCloud()
	if per["healthy"] != 0 {
		t.Fatalf("healthy cloud charged %d poll errors", per["healthy"])
	}
	if per["hung-site"] < 4 {
		t.Fatalf("hung-site abandoned polls = %d, want ~5", per["hung-site"])
	}
	if u := b.CurrentUsage("alice"); u.Samples < 4 {
		t.Fatalf("healthy accrual stalled behind the hung site: %d samples", u.Samples)
	}
}

// TestTerminatedUserStopsAccruing is the delta-path regression: a user
// whose last instance terminates must be *removed* from the poller's
// maintained snapshot by the next delta — silently retaining the entry
// would keep accruing core-minutes for a VM that no longer exists.
func TestTerminatedUserStopsAccruing(t *testing.T) {
	e, c, b := setup(t)
	c.SetQuota("bob", iaas.Quota{MaxInstances: 4, MaxCores: 16})
	inst, err := c.Launch("bob", "vm", "m1.large", "") // 4 cores
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(1 * sim.Hour)
	if err := c.Terminate("bob", inst.ID); err != nil {
		t.Fatal(err)
	}
	at := b.CurrentUsage("bob")
	e.RunFor(10 * sim.Hour)
	after := b.CurrentUsage("bob")
	if after.CoreMinutes != at.CoreMinutes {
		t.Fatalf("bob kept accruing after terminate: %v → %v core-minutes",
			at.CoreMinutes, after.CoreMinutes)
	}
	if math.Abs(after.CoreHours()-4) > 0.5 {
		t.Fatalf("bob's hour of 4 cores = %v core-hours, want ~4", after.CoreHours())
	}
	b.Stop()
}
