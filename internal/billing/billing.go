// Package billing implements OSDC accounting (paper §6.4): "we currently
// bill based on core hours and storage usage. For OSDC-Adler and
// OSDC-Sullivan, we poll every minute to see the number and types of
// virtual machine a user has provisioned ... Storage is checked per user
// once a day. ... Our billing cycle is monthly and users can check their
// current usage via the OSDC web interface."
//
// The paper's operational lesson — "even basic billing and accounting are
// effective limiting bad behavior and providing incentives to properly
// share resources" — is reproduced in the benchmarks by comparing resource
// hoarding with and without metering.
package billing

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"osdc/internal/cloudapi"
	"osdc/internal/fanout"
	"osdc/internal/sim"
)

// Rates are the cost-recovery prices (§8 rule 2: "charge for these
// resources on a cost recovery basis").
type Rates struct {
	PerCoreHour   float64 // dollars
	PerGBMonth    float64 // dollars per gigabyte-month of storage
	FreeCoreHours float64 // monthly free tier per user
}

// DefaultRates reflect 2012 cost-recovery pricing (about half of AWS
// on-demand; see internal/cost).
func DefaultRates() Rates {
	return Rates{PerCoreHour: 0.04, PerGBMonth: 0.05, FreeCoreHours: 100}
}

// StorageFunc reports each user's current stored bytes; wired to the DFS
// volumes / sharing database.
type StorageFunc func() map[string]int64

// Usage accumulates one user's metered consumption in the current cycle.
type Usage struct {
	User        string
	CoreMinutes float64 // Σ per-minute samples of allocated cores
	GBDays      float64 // Σ daily samples of stored GB
	Samples     int64
}

// CoreHours converts the per-minute samples to core-hours.
func (u Usage) CoreHours() float64 { return u.CoreMinutes / 60 }

// Invoice is one user's bill for one monthly cycle.
type Invoice struct {
	User       string
	Cycle      int // 1-based month index
	CoreHours  float64
	GBMonths   float64
	Storage    float64 // dollars
	Compute    float64 // dollars
	Total      float64
	FreeCredit float64
}

// usageShards is the accumulator shard count. At millions of users one
// mutex over every accumulator serializes the pollers against every
// console usage read; sharding by user hash (the same trick as sim's heap
// sharding) keeps contention bounded by shard, not by population.
const usageShards = 16

// usageShard is one lock's worth of per-user accumulators.
type usageShard struct {
	mu    sync.Mutex
	usage map[string]*Usage
}

// Biller polls clouds and storage and cuts monthly invoices.
//
// The pollers fire on the clock-driving goroutine while the Tukey console
// reads CurrentUsage/Invoices/Cycle from HTTP handlers. Per-user
// accumulators live in 16 user-hash shards, each behind its own mutex, so
// one hot reader no longer serializes every other user; the invoice
// history and cycle counter have their own lock, and the poll counters are
// atomics.
//
// The clouds are reached only through cloudapi.CloudAPI: in the
// single-process topology they are Local wrappers sharing the engine, in
// the remote topology they are HTTP clients — metering does not care.
type Biller struct {
	engine  *sim.Engine
	rates   Rates
	clouds  []cloudapi.CloudAPI
	storage StorageFunc

	shards [usageShards]usageShard

	histMu  sync.Mutex
	history []Invoice
	cycle   int

	pollMin *sim.Ticker
	pollDay *sim.Ticker
	pollMon *sim.Ticker

	// Polls counts completed per-minute VM sweeps; PollErrors counts
	// per-cloud sample failures (an unreachable remote site). Both are
	// atomics — read them with atomic.LoadInt64 while pollers may fire.
	Polls      int64
	PollErrors int64

	// errByCloud breaks PollErrors down per cloud, so an operator can see
	// *which* site is unreachable, not just that one is. Keys are fixed at
	// construction; values are atomics.
	errByCloud map[string]*int64

	// deadline bounds one cloud sample's wall time per poll; defaults to
	// pollDeadline. Set during setup (SetPollDeadline).
	deadline time.Duration

	// The delta-poll machinery, built once at construction and reused
	// every minute-tick (the per-poll slot/task allocations used to be the
	// poller's only steady-state garbage). slots carry results across the
	// fanout boundary; prior holds each cloud's maintained usage snapshot
	// plus the revision to ask for next — touched only on the
	// clock-driving goroutine. gen stamps each poll so a task abandoned by
	// an earlier deadline cannot write a stale result into a later poll's
	// slot.
	slots []pollSlot
	tasks []func()
	prior []cloudUsageState
	gen   uint64
}

// pollSlot is one cloud's result cell, reused across polls. The mutex
// exists because an abandoned task may try to write late; gen matching
// makes that write a no-op.
type pollSlot struct {
	mu    sync.Mutex
	gen   uint64 // poll generation the task was armed for
	since int64  // revision the task should poll with
	d     cloudapi.UsageDelta
	err   error
}

// cloudUsageState is one cloud's maintained per-user snapshot: the delta
// poller's accumulator. Only the clock-driving goroutine touches it.
type cloudUsageState struct {
	since  int64
	byUser map[string]cloudapi.UserUsage
}

// apply folds a delta into the snapshot.
func (st *cloudUsageState) apply(d cloudapi.UsageDelta) {
	if d.Reset || st.byUser == nil {
		st.byUser = make(map[string]cloudapi.UserUsage, len(d.Changed))
	}
	for user, v := range d.Changed {
		st.byUser[user] = v
	}
	for _, user := range d.Removed {
		delete(st.byUser, user)
	}
	st.since = d.Rev
}

// DaysPerCycle is the billing month (30 days).
const DaysPerCycle = 30

// New starts a biller: per-minute VM polling, daily storage sampling, and a
// 30-day invoice cycle, all on the simulation clock.
func New(e *sim.Engine, rates Rates, clouds []cloudapi.CloudAPI, storage StorageFunc) *Biller {
	b := &Biller{engine: e, rates: rates, clouds: clouds, storage: storage, cycle: 1,
		deadline: pollDeadline}
	for i := range b.shards {
		b.shards[i].usage = make(map[string]*Usage)
	}
	b.errByCloud = make(map[string]*int64, len(clouds))
	for _, c := range clouds {
		b.errByCloud[c.Name()] = new(int64)
	}
	b.slots = make([]pollSlot, len(clouds))
	b.prior = make([]cloudUsageState, len(clouds))
	b.tasks = make([]func(), len(clouds))
	for i, c := range clouds {
		i, c := i, c
		b.tasks[i] = func() {
			s := &b.slots[i]
			s.mu.Lock()
			gen, since := s.gen, s.since
			s.mu.Unlock()
			d, err := c.UsageSince(since)
			s.mu.Lock()
			if s.gen == gen { // a later poll may have re-armed the slot
				s.d, s.err = d, err
			}
			s.mu.Unlock()
		}
	}
	b.pollMin = e.Every(sim.Minute, b.pollVMs)
	b.pollDay = e.Every(sim.Day, b.pollStorage)
	b.pollMon = e.Every(DaysPerCycle*sim.Day, b.closeCycle)
	return b
}

// SetPollDeadline overrides the per-cloud sample deadline (0 = wait
// forever). Call during setup, before the clock is driven.
func (b *Biller) SetPollDeadline(d time.Duration) { b.deadline = d }

// Stop halts all pollers.
func (b *Biller) Stop() {
	b.pollMin.Stop()
	b.pollDay.Stop()
	b.pollMon.Stop()
}

// PollErrorsByCloud returns each polled cloud's sample-failure count —
// zero entries included, so a healthy federation reports every site.
func (b *Biller) PollErrorsByCloud() map[string]int64 {
	out := make(map[string]int64, len(b.errByCloud))
	for name, n := range b.errByCloud {
		out[name] = atomic.LoadInt64(n)
	}
	return out
}

// shardFor hashes a user onto its accumulator shard.
func (b *Biller) shardFor(user string) *usageShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(user))
	return &b.shards[h.Sum32()%usageShards]
}

// accrueCores credits one minute-sample of cores to user.
func (b *Biller) accrueCores(user string, cores int) {
	sh := b.shardFor(user)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	u := sh.user(user)
	u.CoreMinutes += float64(cores)
	u.Samples++
}

// AccrueCoresSample credits one minute-sample of cores to user — the
// poller's accrual path, exported so the perf snapshot suite
// (internal/perf) can drive the sharded accumulators directly without
// standing up a federation to poll.
func (b *Biller) AccrueCoresSample(user string, cores int) { b.accrueCores(user, cores) }

// accrueGB credits a daily storage sample to user.
func (b *Biller) accrueGB(user string, bytes int64) {
	sh := b.shardFor(user)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.user(user).GBDays += float64(bytes) / float64(1<<30)
}

// user returns the accumulator for u, creating it; callers hold sh.mu.
func (sh *usageShard) user(u string) *Usage {
	if x, ok := sh.usage[u]; ok {
		return x
	}
	x := &Usage{User: u}
	sh.usage[u] = x
	return x
}

// pollWorkers bounds the per-poll fan-out — the same worker count the
// ClockCoordinator pushes with.
const pollWorkers = 8

// pollDeadline is the wall budget one cloud's Usage sample gets before the
// poll abandons the wait (half the Remote client's own timeout, so the
// poll surfaces a hung site well before the transport gives up). An
// abandoned sample is counted as a poll error against that cloud; its
// late result is discarded.
const pollDeadline = cloudapi.DefaultTimeout / 2

// pollVMs samples every cloud: one sample = one minute of the user's
// currently allocated cores.
//
// The samples fan out over the bounded pool with a per-poll deadline —
// pollVMs fires on the clock-driving goroutine, and serial sampling would
// let one hung remote site (a network round trip) stall the simulation
// clock for every site behind it. Accrual stays on this goroutine, in
// cloud-attachment order, so the metered sums remain deterministic.
//
// Each cloud is polled incrementally: the task asks UsageSince(prior
// rev), and the poll folds the returned churn into the cloud's maintained
// snapshot before accruing from it — a steady-state tick over an
// unchanged grid ships an empty delta instead of the full per-user map.
// The first poll (since 0) and any rev reset arrive as full snapshots.
// An errored or abandoned sample leaves the prior snapshot and rev
// untouched and accrues nothing for that cloud, exactly as a failed full
// fetch did: the missed churn is re-sent next poll because deltas carry
// absolute values.
func (b *Biller) pollVMs() {
	b.gen++
	for i := range b.slots {
		s := &b.slots[i]
		s.mu.Lock()
		s.gen, s.since = b.gen, b.prior[i].since
		s.err = errPollAbandoned
		s.mu.Unlock()
	}
	completed := fanout.Each(pollWorkers, b.deadline, b.tasks)
	atomic.AddInt64(&b.Polls, 1)
	for i, c := range b.clouds {
		if !completed[i] {
			atomic.AddInt64(&b.PollErrors, 1)
			atomic.AddInt64(b.errByCloud[c.Name()], 1)
			continue
		}
		s := &b.slots[i]
		s.mu.Lock()
		d, err := s.d, s.err
		s.mu.Unlock()
		if err != nil {
			atomic.AddInt64(&b.PollErrors, 1)
			atomic.AddInt64(b.errByCloud[c.Name()], 1)
			continue
		}
		st := &b.prior[i]
		st.apply(d)
		for user, v := range st.byUser {
			b.accrueCores(user, v.Cores)
		}
	}
}

// errPollAbandoned pre-fills a slot each poll so a slot whose task never
// ran (or wrote only in a previous generation) reads as a failure, never
// as a stale success.
var errPollAbandoned = fmt.Errorf("billing: poll abandoned before the sample returned")

// pollStorage samples each user's stored GB once a day.
func (b *Biller) pollStorage() {
	if b.storage == nil {
		return
	}
	for user, bytes := range b.storage() {
		b.accrueGB(user, bytes)
	}
}

// closeCycle cuts invoices and resets the accumulators.
func (b *Biller) closeCycle() {
	// histMu is taken for the whole close, before any shard is drained:
	// a console handler that reads a freshly reset accumulator (zero
	// usage) then asks Cycle()/Invoices() blocks here and observes the
	// *new* cycle with the old cycle's invoices cut — never "no usage" in
	// a cycle it accrued in. Lock order histMu → shard is safe because no
	// other path holds a shard lock while taking histMu.
	b.histMu.Lock()
	defer b.histMu.Unlock()

	// Drain every shard. Pollers interleaving mid-drain would split a
	// user's sample between two cycles, but both tickers fire on the
	// clock-driving goroutine, so drain and accrual never overlap.
	all := make(map[string]*Usage)
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.Lock()
		for name, u := range sh.usage {
			all[name] = u
		}
		sh.usage = make(map[string]*Usage)
		sh.mu.Unlock()
	}
	users := make([]string, 0, len(all))
	for u := range all {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, name := range users {
		u := all[name]
		inv := Invoice{User: name, Cycle: b.cycle}
		inv.CoreHours = u.CoreHours()
		billable := inv.CoreHours - b.rates.FreeCoreHours
		if billable < 0 {
			inv.FreeCredit = inv.CoreHours
			billable = 0
		} else {
			inv.FreeCredit = b.rates.FreeCoreHours
		}
		inv.Compute = billable * b.rates.PerCoreHour
		inv.GBMonths = u.GBDays / DaysPerCycle
		inv.Storage = inv.GBMonths * b.rates.PerGBMonth
		inv.Total = inv.Compute + inv.Storage
		b.history = append(b.history, inv)
	}
	b.cycle++
}

// CurrentUsage is what the web console shows mid-cycle; it takes only the
// caller's shard lock.
func (b *Biller) CurrentUsage(user string) Usage {
	sh := b.shardFor(user)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if u, ok := sh.usage[user]; ok {
		return *u
	}
	return Usage{User: user}
}

// Invoices returns cut invoices, optionally filtered by user ("" = all).
func (b *Biller) Invoices(user string) []Invoice {
	b.histMu.Lock()
	defer b.histMu.Unlock()
	var out []Invoice
	for _, inv := range b.history {
		if user == "" || inv.User == user {
			out = append(out, inv)
		}
	}
	return out
}

// Cycle returns the current (open) cycle number.
func (b *Biller) Cycle() int {
	b.histMu.Lock()
	defer b.histMu.Unlock()
	return b.cycle
}

func (u Usage) String() string {
	return fmt.Sprintf("%s: %.1f core-hours, %.1f GB-days", u.User, u.CoreHours(), u.GBDays)
}
