// Package billing implements OSDC accounting (paper §6.4): "we currently
// bill based on core hours and storage usage. For OSDC-Adler and
// OSDC-Sullivan, we poll every minute to see the number and types of
// virtual machine a user has provisioned ... Storage is checked per user
// once a day. ... Our billing cycle is monthly and users can check their
// current usage via the OSDC web interface."
//
// The paper's operational lesson — "even basic billing and accounting are
// effective limiting bad behavior and providing incentives to properly
// share resources" — is reproduced in the benchmarks by comparing resource
// hoarding with and without metering.
package billing

import (
	"fmt"
	"sort"
	"sync"

	"osdc/internal/iaas"
	"osdc/internal/sim"
)

// Rates are the cost-recovery prices (§8 rule 2: "charge for these
// resources on a cost recovery basis").
type Rates struct {
	PerCoreHour   float64 // dollars
	PerGBMonth    float64 // dollars per gigabyte-month of storage
	FreeCoreHours float64 // monthly free tier per user
}

// DefaultRates reflect 2012 cost-recovery pricing (about half of AWS
// on-demand; see internal/cost).
func DefaultRates() Rates {
	return Rates{PerCoreHour: 0.04, PerGBMonth: 0.05, FreeCoreHours: 100}
}

// StorageFunc reports each user's current stored bytes; wired to the DFS
// volumes / sharing database.
type StorageFunc func() map[string]int64

// Usage accumulates one user's metered consumption in the current cycle.
type Usage struct {
	User        string
	CoreMinutes float64 // Σ per-minute samples of allocated cores
	GBDays      float64 // Σ daily samples of stored GB
	Samples     int64
}

// CoreHours converts the per-minute samples to core-hours.
func (u Usage) CoreHours() float64 { return u.CoreMinutes / 60 }

// Invoice is one user's bill for one monthly cycle.
type Invoice struct {
	User       string
	Cycle      int // 1-based month index
	CoreHours  float64
	GBMonths   float64
	Storage    float64 // dollars
	Compute    float64 // dollars
	Total      float64
	FreeCredit float64
}

// Biller polls clouds and storage and cuts monthly invoices.
//
// The pollers fire on the clock-driving goroutine while the Tukey console
// reads CurrentUsage/Invoices/Cycle from HTTP handlers; mu covers the
// accumulators, the invoice history and the cycle counter. Polls is
// exported for tests and is only written under mu; read it only when no
// poller can fire.
type Biller struct {
	engine  *sim.Engine
	rates   Rates
	clouds  []*iaas.Cloud
	storage StorageFunc

	mu      sync.Mutex
	usage   map[string]*Usage
	history []Invoice
	cycle   int

	pollMin *sim.Ticker
	pollDay *sim.Ticker
	pollMon *sim.Ticker

	Polls int64
}

// DaysPerCycle is the billing month (30 days).
const DaysPerCycle = 30

// New starts a biller: per-minute VM polling, daily storage sampling, and a
// 30-day invoice cycle, all on the simulation clock.
func New(e *sim.Engine, rates Rates, clouds []*iaas.Cloud, storage StorageFunc) *Biller {
	b := &Biller{
		engine: e, rates: rates, clouds: clouds, storage: storage,
		usage: make(map[string]*Usage), cycle: 1,
	}
	b.pollMin = e.Every(sim.Minute, b.pollVMs)
	b.pollDay = e.Every(sim.Day, b.pollStorage)
	b.pollMon = e.Every(DaysPerCycle*sim.Day, b.closeCycle)
	return b
}

// Stop halts all pollers.
func (b *Biller) Stop() {
	b.pollMin.Stop()
	b.pollDay.Stop()
	b.pollMon.Stop()
}

func (b *Biller) user(u string) *Usage {
	if x, ok := b.usage[u]; ok {
		return x
	}
	x := &Usage{User: u}
	b.usage[u] = x
	return x
}

// pollVMs samples every cloud: one sample = one minute of the user's
// currently allocated cores.
func (b *Biller) pollVMs() {
	// Sample the clouds before taking b.mu: RunningByUser takes each
	// cloud's own lock, and holding one service lock while acquiring
	// another is how deadlocks start.
	samples := make([]map[string][2]int, 0, len(b.clouds))
	for _, c := range b.clouds {
		samples = append(samples, c.RunningByUser())
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.Polls++
	for _, byUser := range samples {
		for user, v := range byUser {
			u := b.user(user)
			u.CoreMinutes += float64(v[1])
			u.Samples++
		}
	}
}

// pollStorage samples each user's stored GB once a day.
func (b *Biller) pollStorage() {
	if b.storage == nil {
		return
	}
	stored := b.storage()
	b.mu.Lock()
	defer b.mu.Unlock()
	for user, bytes := range stored {
		b.user(user).GBDays += float64(bytes) / float64(1<<30)
	}
}

// closeCycle cuts invoices and resets the accumulators.
func (b *Biller) closeCycle() {
	b.mu.Lock()
	defer b.mu.Unlock()
	users := make([]string, 0, len(b.usage))
	for u := range b.usage {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, name := range users {
		u := b.usage[name]
		inv := Invoice{User: name, Cycle: b.cycle}
		inv.CoreHours = u.CoreHours()
		billable := inv.CoreHours - b.rates.FreeCoreHours
		if billable < 0 {
			inv.FreeCredit = inv.CoreHours
			billable = 0
		} else {
			inv.FreeCredit = b.rates.FreeCoreHours
		}
		inv.Compute = billable * b.rates.PerCoreHour
		inv.GBMonths = u.GBDays / DaysPerCycle
		inv.Storage = inv.GBMonths * b.rates.PerGBMonth
		inv.Total = inv.Compute + inv.Storage
		b.history = append(b.history, inv)
	}
	b.usage = make(map[string]*Usage)
	b.cycle++
}

// CurrentUsage is what the web console shows mid-cycle.
func (b *Biller) CurrentUsage(user string) Usage {
	b.mu.Lock()
	defer b.mu.Unlock()
	if u, ok := b.usage[user]; ok {
		return *u
	}
	return Usage{User: user}
}

// Invoices returns cut invoices, optionally filtered by user ("" = all).
func (b *Biller) Invoices(user string) []Invoice {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Invoice
	for _, inv := range b.history {
		if user == "" || inv.User == user {
			out = append(out, inv)
		}
	}
	return out
}

// Cycle returns the current (open) cycle number.
func (b *Biller) Cycle() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cycle
}

func (u Usage) String() string {
	return fmt.Sprintf("%s: %.1f core-hours, %.1f GB-days", u.User, u.CoreHours(), u.GBDays)
}
