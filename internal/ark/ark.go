// Package ark implements the OSDC's persistent dataset-identifier service
// (paper §6.1): ARK identifiers (Archival Resource Keys) minted under a
// registered Name Assigning Authority Number (NAAN), with resolution and
// metadata via ARK "inflections" — appending '?' for brief metadata and
// '??' for full policy/metadata, per the ARK specification the paper cites.
package ark

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// OSDCNAAN is the OSDC's registered Name Assigning Authority Number. (The
// real OSDC NAAN; any 5-digit NAAN works with the service.)
const OSDCNAAN = "31807"

// Metadata is the descriptive record bound to an identifier (ERC-style
// who/what/when plus free-form pairs).
type Metadata struct {
	Who   string // responsible party
	What  string // dataset title
	When  string // relevant date
	Where string // current access location (target of resolution)
	Extra map[string]string
}

// Record is one minted identifier.
type Record struct {
	ARK      string
	Meta     Metadata
	Resolves int64 // access count
}

// Service mints and resolves ARKs for one NAAN.
type Service struct {
	NAAN string
	mu   sync.Mutex
	next int
	byID map[string]*Record

	Minted int64
}

// NewService creates an ID service for a NAAN. An empty NAAN uses the
// OSDC's.
func NewService(naan string) *Service {
	if naan == "" {
		naan = OSDCNAAN
	}
	return &Service{NAAN: naan, byID: make(map[string]*Record)}
}

// checkChar reports whether c is legal in an ARK blade (betanumeric:
// digits plus consonants, avoiding vowels to prevent words).
const betanumeric = "0123456789bcdfghjkmnpqrstvwxz"

// Mint assigns a new ARK with the given metadata and returns it. Names use
// a betanumeric blade with a final check character, e.g.
// ark:/31807/osdc0f9k2m.
func (s *Service) Mint(meta Metadata) *Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	blade := encodeBlade(s.next)
	id := fmt.Sprintf("ark:/%s/osdc%s%c", s.NAAN, blade, checkChar(blade))
	rec := &Record{ARK: id, Meta: meta}
	if rec.Meta.Extra == nil {
		rec.Meta.Extra = map[string]string{}
	}
	s.byID[id] = rec
	s.Minted++
	return rec
}

// encodeBlade renders n in base-29 betanumeric, fixed width 6.
func encodeBlade(n int) string {
	const w = 6
	buf := make([]byte, w)
	for i := w - 1; i >= 0; i-- {
		buf[i] = betanumeric[n%len(betanumeric)]
		n /= len(betanumeric)
	}
	return string(buf)
}

// checkChar computes the NOID-style check character over the blade.
func checkChar(blade string) byte {
	sum := 0
	for i, c := range blade {
		sum += (i + 1) * strings.IndexRune(betanumeric, c)
	}
	return betanumeric[sum%len(betanumeric)]
}

// Valid reports whether an ARK parses, belongs to this NAAN, and has a
// correct check character.
func (s *Service) Valid(id string) bool {
	base, _ := splitInflection(id)
	rest, ok := strings.CutPrefix(base, "ark:/"+s.NAAN+"/osdc")
	if !ok || len(rest) != 7 {
		return false
	}
	blade, check := rest[:6], rest[6]
	for _, c := range blade {
		if !strings.ContainsRune(betanumeric, c) {
			return false
		}
	}
	return checkChar(blade) == check
}

// splitInflection separates a trailing '?' or '??' from the base ARK.
func splitInflection(id string) (base, inflection string) {
	switch {
	case strings.HasSuffix(id, "??"):
		return id[:len(id)-2], "??"
	case strings.HasSuffix(id, "?"):
		return id[:len(id)-1], "?"
	default:
		return id, ""
	}
}

// ErrUnknown reports an unminted or foreign identifier.
type ErrUnknown struct{ ID string }

func (e ErrUnknown) Error() string { return "ark: unknown identifier " + e.ID }

// Resolve handles a dereference request. Without an inflection it returns
// the access location; with '?' a brief ERC metadata record; with '??' the
// full metadata including extras.
func (s *Service) Resolve(id string) (string, error) {
	base, inflection := splitInflection(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.byID[base]
	if !ok {
		return "", ErrUnknown{ID: base}
	}
	rec.Resolves++
	switch inflection {
	case "":
		return rec.Meta.Where, nil
	case "?":
		return fmt.Sprintf("erc:\nwho: %s\nwhat: %s\nwhen: %s\nwhere: %s\n",
			rec.Meta.Who, rec.Meta.What, rec.Meta.When, rec.Meta.Where), nil
	default: // "??"
		var b strings.Builder
		fmt.Fprintf(&b, "erc:\nwho: %s\nwhat: %s\nwhen: %s\nwhere: %s\n",
			rec.Meta.Who, rec.Meta.What, rec.Meta.When, rec.Meta.Where)
		keys := make([]string, 0, len(rec.Meta.Extra))
		for k := range rec.Meta.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s: %s\n", k, rec.Meta.Extra[k])
		}
		b.WriteString("policy: OSDC persistent identifier; content replicated across OSDC data centers\n")
		return b.String(), nil
	}
}

// Update rebinds metadata (e.g. when a dataset moves volumes); the
// identifier itself is permanent.
func (s *Service) Update(id string, meta Metadata) error {
	base, _ := splitInflection(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.byID[base]
	if !ok {
		return ErrUnknown{ID: base}
	}
	if meta.Extra == nil {
		meta.Extra = rec.Meta.Extra
	}
	rec.Meta = meta
	return nil
}

// All returns every minted record sorted by ARK.
func (s *Service) All() []*Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Record, 0, len(s.byID))
	for _, r := range s.byID {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ARK < out[j].ARK })
	return out
}
