package ark

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMintShape(t *testing.T) {
	s := NewService("")
	r := s.Mint(Metadata{Who: "modENCODE DCC", What: "modENCODE tracks", When: "2012", Where: "/glusterfs/pub/modencode"})
	if !strings.HasPrefix(r.ARK, "ark:/31807/osdc") {
		t.Fatalf("ARK = %q", r.ARK)
	}
	if !s.Valid(r.ARK) {
		t.Fatal("minted ARK not valid")
	}
}

func TestMintUnique(t *testing.T) {
	s := NewService("99999")
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := s.Mint(Metadata{}).ARK
		if seen[id] {
			t.Fatalf("duplicate ARK %s", id)
		}
		seen[id] = true
	}
	if s.Minted != 1000 {
		t.Fatalf("Minted = %d", s.Minted)
	}
}

func TestResolvePlain(t *testing.T) {
	s := NewService("")
	r := s.Mint(Metadata{Where: "/glusterfs/pub/1000genomes"})
	got, err := s.Resolve(r.ARK)
	if err != nil {
		t.Fatal(err)
	}
	if got != "/glusterfs/pub/1000genomes" {
		t.Fatalf("Resolve = %q", got)
	}
	if r.Resolves != 1 {
		t.Fatalf("Resolves = %d", r.Resolves)
	}
}

func TestInflectionBrief(t *testing.T) {
	s := NewService("")
	r := s.Mint(Metadata{Who: "NASA EO-1", What: "Hyperion L1", When: "2012-06", Where: "/matsu"})
	got, err := s.Resolve(r.ARK + "?")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"who: NASA EO-1", "what: Hyperion L1", "when: 2012-06"} {
		if !strings.Contains(got, want) {
			t.Fatalf("brief metadata missing %q in %q", want, got)
		}
	}
}

func TestInflectionFullIncludesExtrasAndPolicy(t *testing.T) {
	s := NewService("")
	r := s.Mint(Metadata{What: "ENCODE", Extra: map[string]string{"size": "500TB", "license": "open"}})
	got, err := s.Resolve(r.ARK + "??")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"size: 500TB", "license: open", "policy:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("full metadata missing %q", want)
		}
	}
}

func TestResolveUnknown(t *testing.T) {
	s := NewService("")
	if _, err := s.Resolve("ark:/31807/osdc000000b"); err == nil {
		t.Fatal("expected ErrUnknown")
	} else if _, ok := err.(ErrUnknown); !ok {
		t.Fatalf("got %T", err)
	}
}

func TestValidRejectsTamperedCheckChar(t *testing.T) {
	s := NewService("")
	r := s.Mint(Metadata{})
	id := r.ARK
	// Flip the final (check) character to a different betanumeric.
	last := id[len(id)-1]
	var repl byte = '0'
	if last == '0' {
		repl = '1'
	}
	bad := id[:len(id)-1] + string(repl)
	if s.Valid(bad) {
		t.Fatal("tampered check character accepted")
	}
}

func TestValidRejectsForeignNAAN(t *testing.T) {
	s := NewService("31807")
	other := NewService("12345")
	r := other.Mint(Metadata{})
	if s.Valid(r.ARK) {
		t.Fatal("foreign NAAN accepted")
	}
}

func TestUpdateRebindsLocation(t *testing.T) {
	s := NewService("")
	r := s.Mint(Metadata{Where: "/old"})
	if err := s.Update(r.ARK, Metadata{Where: "/new/volume"}); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Resolve(r.ARK)
	if got != "/new/volume" {
		t.Fatalf("after update Resolve = %q", got)
	}
	if err := s.Update("ark:/31807/osdcnope", Metadata{}); err == nil {
		t.Fatal("update of unknown ARK must fail")
	}
}

func TestMintedARKsAlwaysValidate(t *testing.T) {
	s := NewService("")
	if err := quick.Check(func(n uint8) bool {
		r := s.Mint(Metadata{})
		return s.Valid(r.ARK) && s.Valid(r.ARK+"?") && s.Valid(r.ARK+"??")
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAllSorted(t *testing.T) {
	s := NewService("")
	for i := 0; i < 10; i++ {
		s.Mint(Metadata{})
	}
	all := s.All()
	if len(all) != 10 {
		t.Fatalf("All = %d records", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ARK >= all[i].ARK {
			t.Fatal("All not sorted")
		}
	}
}
