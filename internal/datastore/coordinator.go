package datastore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"osdc/internal/datasets"
	"osdc/internal/fanout"
	"osdc/internal/sim"
	"osdc/internal/simnet"
	"osdc/internal/tcpmodel"
	"osdc/internal/transport"
	"osdc/internal/udt"
)

// Transfer is one replica move in flight: planned by the coordinator,
// simulated as a WAN flow, installed at the destination when the engine's
// virtual clock passes ArriveAt.
type Transfer struct {
	Dataset    string
	From, To   string // federation site names
	Link       string // "fromLoc→toLoc"
	Bytes      int64
	Checksum   string // carried from the source replica; verified on arrival
	Version    int
	PlannedAt  sim.Time
	ArriveAt   sim.Time
	Retransmit int64 // packets retransmitted by the simulated flow
}

// LinkStats aggregates the coordinator's traffic over one directed
// topology path.
type LinkStats struct {
	Link        string `json:"link"`
	Flows       int64  `json:"flows"`
	Bytes       int64  `json:"bytes"`
	Retransmits int64  `json:"retransmits"`
}

// SiteStats is the coordinator's view of one site's data-plane health.
type SiteStats struct {
	Site           string `json:"site"`
	Replicas       int    `json:"replicas"` // last observed inventory size
	Bytes          int64  `json:"bytes"`    // last observed stored bytes
	PutBytes       int64  `json:"put_bytes"`
	Errors         int64  `json:"errors"` // unreachable lists / failed puts
	FailedVerifies int64  `json:"failed_verifies"`
}

// Stats is a snapshot of everything the coordinator has done.
type Stats struct {
	Rounds         int64
	Transfers      int64 // completed replica installs
	BytesMoved     int64
	Retransmits    int64
	MaxInFlight    int // most concurrent in-flight transfers observed
	FailedVerifies int64
	Aborted        int64 // transfers dropped when their site detached
	Drained        int64 // excess replicas deleted back to the target factor
	LostDatasets   int   // datasets with no replica anywhere, last round
	Sites          []SiteStats
	Links          []LinkStats
}

// observeGrace is how many consecutive failed observations a site gets
// before its last-known replicas stop counting toward replication
// factors. One slow List (GC pause, restart) must not trigger a round of
// duplicate repairs; a site silent this long is treated as gone and its
// datasets are repaired elsewhere.
const observeGrace = 2

// Options tune a Coordinator.
type Options struct {
	// Factor is the default target replication factor (< 1 means 1).
	Factor int
	// Factors overrides the target per dataset name.
	Factors map[string]int
	// Protocol picks the simulated transfer flow: "udt" (default) or
	// "tcp" (Reno with a BDP-sized window).
	Protocol string
	// Workers bounds the site fan-out pool (default 8).
	Workers int
	// SiteDeadline is the per-site wall budget for one List during a
	// round; a site answering slower is counted unreachable for the
	// round. Start() tightens it to half the round interval. 0 = 10 s.
	SiteDeadline time.Duration
	// Seed feeds the coordinator's private RNG (flow loss sampling).
	Seed uint64
	// Shards, when set with K > 1, homes each round's flow groups by link
	// name and prices them concurrently across shards (per-link RNG
	// streams). Nil or K = 1 keeps the serial single-stream pricing path —
	// the one the scenario goldens are pinned against.
	Shards *sim.ShardSet
}

// Coordinator keeps every catalog dataset at its target replication factor
// across the federation's site stores — the console-side planning loop of
// the data plane, shaped like cloudapi.ClockCoordinator.
//
// Each Round it (1) installs transfers whose simulated flows have arrived,
// verifying checksums first, (2) reads every site's inventory through a
// bounded fan-out pool, (3) plans transfers for under-replicated datasets
// — deterministic source/destination choice — and (4) prices every planned
// flow by running it through transport.SimulateShared over the simnet
// path it crosses, so flows planned in the same round onto the same link
// contend with each other and arrival times accrue on the shared engine's
// virtual clock. A transfer that arrives corrupt is not installed; the
// corrupt source replica is dropped so the next round repairs from a
// healthy copy. A detached site's replicas stop counting, and the next
// rounds restore the factor on the remaining sites with bounded traffic
// (exactly the lost copies), all recorded in Stats.
type Coordinator struct {
	engine  *sim.Engine
	nw      *simnet.Network
	catalog *datasets.Catalog
	factor  int
	factors map[string]int
	proto   string
	workers int

	shards  *sim.ShardSet
	rngSeed uint64

	mu           sync.Mutex
	rng          *sim.RNG
	sites        []API
	siteDeadline time.Duration
	inflight     map[string]*Transfer // key dataset + "→" + destination site
	stats        Stats
	siteStats    map[string]*SiteStats
	linkStats    map[string]*LinkStats
	// lastSeen is each site's inventory from the newest round it answered
	// (carried forward through the observeGrace window), keyed site →
	// dataset; Stage reads it before falling back to Gets.
	lastSeen map[string]map[string]Replica
	// knownRev is the store revision each site's lastSeen entry reflects:
	// what the next round's ListSince passes, so observation reads only
	// the churn since the last answer instead of the full inventory.
	knownRev map[string]int64
	// missed counts a site's consecutive failed observations.
	missed map[string]int
	// pinned marks deliberate placements (dataset + "→" + site, the
	// inflight key form) made by Stage: the drain never removes them —
	// a user parked that replica next to their compute on purpose.
	pinned map[string]bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewCoordinator builds a coordinator over the engine's virtual clock, the
// topology nw, the catalog (the universe of datasets worth replicating)
// and the given site stores. It does not start a loop: call Round directly
// (scenarios) or Start (live federations).
func NewCoordinator(e *sim.Engine, nw *simnet.Network, cat *datasets.Catalog, opt Options, sites ...API) *Coordinator {
	if opt.Factor < 1 {
		opt.Factor = 1
	}
	if opt.Workers < 1 {
		opt.Workers = 8
	}
	if opt.SiteDeadline <= 0 {
		opt.SiteDeadline = 10 * time.Second
	}
	if opt.Protocol == "" {
		opt.Protocol = "udt"
	}
	c := &Coordinator{
		engine: e, nw: nw, catalog: cat,
		factor: opt.Factor, factors: opt.Factors,
		proto: opt.Protocol, workers: opt.Workers,
		shards: opt.Shards, rngSeed: opt.Seed ^ 0xda7a,
		rng:          sim.NewRNG(opt.Seed ^ 0xda7a),
		sites:        append([]API(nil), sites...),
		siteDeadline: opt.SiteDeadline,
		inflight:     make(map[string]*Transfer),
		siteStats:    make(map[string]*SiteStats),
		linkStats:    make(map[string]*LinkStats),
		lastSeen:     make(map[string]map[string]Replica),
		knownRev:     make(map[string]int64),
		missed:       make(map[string]int),
		pinned:       make(map[string]bool),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	for _, s := range sites {
		c.siteStats[s.Name()] = &SiteStats{Site: s.Name()}
	}
	return c
}

// Start runs Round every interval of wall time until Stop. The per-site
// read deadline becomes half the interval, so a hung site cannot eat the
// round (ROADMAP: coordinator fan-out).
func (c *Coordinator) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	c.mu.Lock()
	c.siteDeadline = interval / 2
	c.mu.Unlock()
	go func() {
		defer close(c.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-tick.C:
				c.Round()
			}
		}
	}()
}

// Stop halts the Start loop, if one is running. Idempotent.
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	select {
	case <-c.done:
	case <-time.After(5 * time.Second):
	}
}

// targetFor is the replication factor a dataset must reach.
func (c *Coordinator) targetFor(dataset string) int {
	if n, ok := c.factors[dataset]; ok && n >= 1 {
		return n
	}
	return c.factor
}

// pathBetween derives the flow path for a transfer between two simnet
// sites; co-located sites move over the LAN.
func (c *Coordinator) pathBetween(fromLoc, toLoc string) transport.Path {
	if fromLoc == toLoc || c.nw == nil {
		return transport.Path{BandwidthBps: 10 * simnet.Gbit, RTT: 100 * sim.Microsecond, MSS: transport.DefaultMSS}
	}
	return transport.PathBetween(c.nw, simnet.Gateway(fromLoc), simnet.Gateway(toLoc))
}

// controller builds one flow's congestion-control law.
func (c *Coordinator) controller(path transport.Path) transport.Controller {
	if c.proto == "tcp" {
		win := int(path.BDP())
		if win < 64<<10 {
			win = 64 << 10
		}
		return tcpmodel.NewReno(path, win)
	}
	return udt.NewRateControl(path)
}

// Round advances the coordinator one planning cycle. It returns how many
// transfers were newly planned and how many arrived (installed or failed
// verification) this round; planned == 0 with InFlight() == 0 means the
// placement has converged.
func (c *Coordinator) Round() (planned, arrived int) {
	now := c.engine.Now()
	arrived = c.completeArrived(now)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Rounds++

	// Observe every site through the bounded pool, as deltas: each task
	// passes the revision the coordinator's view already reflects and
	// reads only the churn since. A plane that cannot serve the delta
	// route falls back to a full List (treated as a Reset snapshot).
	// Index i maps results to sites, so the fan-out stays deterministic.
	type listing struct {
		delta Delta
		err   error
	}
	listings := make([]listing, len(c.sites))
	tasks := make([]func(), len(c.sites))
	for i, s := range c.sites {
		i, s := i, s
		since := c.knownRev[s.Name()]
		tasks[i] = func() {
			listings[i].delta, listings[i].err = s.ListSince(since)
			if listings[i].err == nil {
				return
			}
			if reps, err := s.List(); err == nil {
				listings[i].delta, listings[i].err = Delta{Changed: reps, Reset: true}, nil
			}
		}
	}
	completed := fanout.Each(c.workers, c.siteDeadline, tasks)

	reachable := make([]API, 0, len(c.sites))
	confirmedBy := make(map[string][]string) // dataset → sites observed holding it this round
	countedBy := make(map[string]int)        // dataset → holders incl. grace-carried silent sites
	bytesBy := make(map[string]int64)        // site → observed stored bytes
	newSeen := make(map[string]map[string]Replica)
	allObserved := true
	for i, s := range c.sites {
		name := s.Name()
		if !completed[i] || listings[i].err != nil {
			c.siteStats[name].Errors++
			c.missed[name]++
			allObserved = false
			// Inside the grace window a silent site's last-known replicas
			// still count toward every factor — one slow List must not
			// trigger duplicate repairs — but the site serves as neither
			// source nor destination until it answers again.
			if prev, ok := c.lastSeen[name]; ok && c.missed[name] <= observeGrace {
				newSeen[name] = prev
				for ds := range prev {
					countedBy[ds]++
				}
			}
			continue
		}
		c.missed[name] = 0
		reachable = append(reachable, s)
		// Materialize the site's inventory: from scratch on a Reset
		// snapshot, else the carried view patched with the delta.
		d := listings[i].delta
		var seen map[string]Replica
		if d.Reset {
			seen = make(map[string]Replica, len(d.Changed))
		} else {
			prev := c.lastSeen[name]
			seen = make(map[string]Replica, len(prev)+len(d.Changed))
			for ds, r := range prev {
				seen[ds] = r
			}
		}
		for _, r := range d.Changed {
			seen[r.Dataset] = r
		}
		for _, ds := range d.Removed {
			delete(seen, ds)
		}
		c.knownRev[name] = d.Rev
		for ds, r := range seen {
			confirmedBy[ds] = append(confirmedBy[ds], name)
			countedBy[ds]++
			bytesBy[name] += r.SizeBytes
		}
		newSeen[name] = seen
		c.siteStats[name].Replicas = len(seen)
		c.siteStats[name].Bytes = bytesBy[name]
	}
	c.lastSeen = newSeen

	// Plan transfers for under-replicated datasets, deterministically:
	// datasets in name order, destinations by (observed bytes, name),
	// sources rotated by per-round outgoing count.
	outgoing := make(map[string]int)
	var plans []*Transfer
	lost := 0
	for _, d := range c.catalog.All() {
		holders := confirmedBy[d.Name]
		sort.Strings(holders)
		pending := 0
		pendingTo := make(map[string]bool)
		for _, t := range c.inflight {
			if t.Dataset == d.Name {
				pending++
				pendingTo[t.To] = true
			}
		}
		target := c.targetFor(d.Name)
		deficit := target - countedBy[d.Name] - pending
		if deficit <= 0 {
			// Over-replication (a site that outlived its grace window
			// coming back, say) drains back to the target — but only on
			// full information, and never from the anchor site (the
			// first-listed store, which holds the masters).
			if excess := len(holders) - target; excess > 0 && pending == 0 && allObserved {
				c.drainLocked(d.Name, holders, excess, bytesBy)
			}
			continue
		}
		if len(holders) == 0 {
			if countedBy[d.Name] == 0 && pending == 0 {
				lost++
			}
			continue
		}
		// Candidate destinations: reachable sites neither holding nor
		// already receiving this dataset, least-loaded first.
		var cands []API
		for _, s := range reachable {
			if _, holds := newSeen[s.Name()][d.Name]; !holds && !pendingTo[s.Name()] {
				cands = append(cands, s)
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			bi, bj := bytesBy[cands[i].Name()], bytesBy[cands[j].Name()]
			if bi != bj {
				return bi < bj
			}
			return cands[i].Name() < cands[j].Name()
		})
		for _, dst := range cands {
			if deficit == 0 {
				break
			}
			src := holders[0]
			for _, h := range holders[1:] {
				if outgoing[h] < outgoing[src] {
					src = h
				}
			}
			outgoing[src]++
			rep := c.lastSeen[src][d.Name]
			plans = append(plans, &Transfer{
				Dataset: d.Name, From: src, To: dst.Name(),
				Link:     c.locOf(src) + "→" + dst.Loc(),
				Bytes:    rep.SizeBytes,
				Checksum: rep.Checksum, Version: rep.Version,
				PlannedAt: now,
			})
			bytesBy[dst.Name()] += rep.SizeBytes
			deficit--
		}
	}
	c.stats.LostDatasets = lost

	c.priceLocked(now, plans)
	for _, t := range plans {
		c.inflight[t.Dataset+"→"+t.To] = t
	}
	if n := len(c.inflight); n > c.stats.MaxInFlight {
		c.stats.MaxInFlight = n
	}
	return len(plans), arrived
}

// drainLocked deletes excess confirmed replicas of dataset back to the
// target factor: most-loaded holders first (name-descending tie-break),
// never the anchor site's copy (the first-listed store holds the
// masters).
func (c *Coordinator) drainLocked(dataset string, holders []string, excess int, bytesBy map[string]int64) {
	anchor := ""
	if len(c.sites) > 0 {
		anchor = c.sites[0].Name()
	}
	cands := make([]string, 0, len(holders))
	for _, h := range holders {
		if h != anchor && !c.pinned[dataset+"→"+h] {
			cands = append(cands, h)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		bi, bj := bytesBy[cands[i]], bytesBy[cands[j]]
		if bi != bj {
			return bi > bj
		}
		return cands[i] > cands[j]
	})
	for i := 0; i < excess && i < len(cands); i++ {
		s, ok := c.siteByName(cands[i])
		if !ok {
			continue
		}
		if err := s.Delete(dataset); err != nil {
			c.siteStats[cands[i]].Errors++
			continue
		}
		delete(c.lastSeen[cands[i]], dataset)
		c.stats.Drained++
	}
}

// locOf resolves a site name to its simnet location.
func (c *Coordinator) locOf(name string) string {
	for _, s := range c.sites {
		if s.Name() == name {
			return s.Loc()
		}
	}
	return ""
}

// siteByName resolves a site name to its API.
func (c *Coordinator) siteByName(name string) (API, bool) {
	for _, s := range c.sites {
		if s.Name() == name {
			return s, true
		}
	}
	return nil, false
}

// priceLocked runs the planned transfers as simulated flows, grouped by
// directed link so same-link flows contend at the shared bottleneck, and
// stamps each transfer's arrival time.
func (c *Coordinator) priceLocked(now sim.Time, plans []*Transfer) {
	byLink := make(map[string][]*Transfer)
	var links []string
	for _, t := range plans {
		if _, ok := byLink[t.Link]; !ok {
			links = append(links, t.Link)
		}
		byLink[t.Link] = append(byLink[t.Link], t)
	}
	sort.Strings(links) // deterministic RNG consumption order
	if c.shards != nil && c.shards.K() > 1 {
		c.priceShardedLocked(now, links, byLink)
		return
	}
	for _, link := range links {
		group := byLink[link]
		path := c.pathBetween(c.locOf(group[0].From), c.locOf(group[0].To))
		ctrls := make([]transport.Controller, len(group))
		sizes := make([]int64, len(group))
		for i, t := range group {
			ctrls[i] = c.controller(path)
			sizes[i] = t.Bytes
		}
		results := transport.SimulateShared(c.rng, path, ctrls, sizes, transport.Caps{})
		for i, t := range group {
			t.ArriveAt = now + sim.Time(results[i].Duration)
			t.Retransmit = results[i].Retransmit
		}
	}
}

// priceShardedLocked prices the round's link groups concurrently, homed by
// link name over the kernel's shard count — replication and staging flows
// planned in one round price in parallel while arrivals still install on
// the anchor engine's clock. Each link draws a private RNG stream seeded
// from its name, so sharded pricing is bit-deterministic for any K; it is
// a different (equally valid) loss sample than the serial path's single
// shared stream, which is why K = 1 keeps the serial path and its pinned
// goldens.
func (c *Coordinator) priceShardedLocked(now sim.Time, links []string, byLink map[string][]*Transfer) {
	groups := make([]transport.FlowGroup, len(links))
	for gi, link := range links {
		group := byLink[link]
		path := c.pathBetween(c.locOf(group[0].From), c.locOf(group[0].To))
		ctrls := make([]transport.Controller, len(group))
		sizes := make([]int64, len(group))
		for i, t := range group {
			ctrls[i] = c.controller(path)
			sizes[i] = t.Bytes
		}
		groups[gi] = transport.FlowGroup{Name: link, Path: path, Ctrls: ctrls, Sizes: sizes}
	}
	results := transport.SimulateGrouped(c.rngSeed, c.shards.K(), groups)
	for gi, link := range links {
		for i, t := range byLink[link] {
			t.ArriveAt = now + sim.Time(results[gi][i].Duration)
			t.Retransmit = results[gi][i].Retransmit
		}
	}
}

// completeArrived installs every transfer whose flow has arrived by
// virtual time now, verifying checksums first. Returns how many arrived.
//
// The remote side effects — Puts at destinations, a corrupt source's
// Delete — run through the bounded fan-out pool with c.mu RELEASED: a slow
// destination plane must not pin the coordinator lock (and with it every
// console data-plane route: Stage, Poll, Placement) for the length of an
// HTTP round trip. Due transfers leave inflight before the lock drops, so
// a concurrent Round cannot install them twice; a Put abandoned at its
// deadline is counted as a site error and may still land later, which the
// next round's delta observation reconciles (and the drain trims if it
// over-replicates).
func (c *Coordinator) completeArrived(now sim.Time) int {
	c.mu.Lock()
	var due []*Transfer
	for _, t := range c.inflight {
		if t.ArriveAt <= now {
			due = append(due, t)
		}
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].ArriveAt != due[j].ArriveAt {
			return due[i].ArriveAt < due[j].ArriveAt
		}
		if due[i].Dataset != due[j].Dataset {
			return due[i].Dataset < due[j].Dataset
		}
		return due[i].To < due[j].To
	})
	// jobs[i].err is written by the pool and read back only when
	// completed[i] — the fanout package's happens-before discipline.
	type job struct {
		t       *Transfer
		corrupt bool
		src     API // corrupt: holder of the bad copy to drop
		dst     API // healthy: destination to install at
		err     error
	}
	jobs := make([]job, len(due))
	for i, t := range due {
		delete(c.inflight, t.Dataset+"→"+t.To)
		j := job{t: t, corrupt: t.Checksum != Fingerprint(t.Dataset, t.Version)}
		if j.corrupt {
			// The flow delivered what the source held — a corrupt copy.
			// Do not install it; drop the source's bad replica so the
			// next round repairs from a healthy holder.
			j.src, _ = c.siteByName(t.From)
		} else {
			j.dst, _ = c.siteByName(t.To)
		}
		jobs[i] = j
	}
	workers, deadline := c.workers, c.siteDeadline
	c.mu.Unlock()

	tasks := make([]func(), len(jobs))
	for i := range jobs {
		i := i
		switch {
		case jobs[i].corrupt && jobs[i].src != nil:
			tasks[i] = func() { _ = jobs[i].src.Delete(jobs[i].t.Dataset) }
		case !jobs[i].corrupt && jobs[i].dst != nil:
			tasks[i] = func() {
				t := jobs[i].t
				jobs[i].err = jobs[i].dst.Put(Replica{
					Dataset: t.Dataset, SizeBytes: t.Bytes,
					Checksum: t.Checksum, Version: t.Version,
				})
			}
		default:
			tasks[i] = func() {}
		}
	}
	completed := fanout.Each(workers, deadline, tasks)

	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range jobs {
		t := jobs[i].t
		link := c.linkStat(t.Link)
		link.Flows++
		link.Bytes += t.Bytes
		link.Retransmits += t.Retransmit
		c.stats.BytesMoved += t.Bytes
		c.stats.Retransmits += t.Retransmit
		switch {
		case jobs[i].corrupt:
			c.stats.FailedVerifies++
			if st, ok := c.siteStats[t.To]; ok {
				st.FailedVerifies++
			}
		case jobs[i].dst == nil:
			c.stats.Aborted++
		case !completed[i] || jobs[i].err != nil:
			if st, ok := c.siteStats[t.To]; ok {
				st.Errors++
			}
		default:
			if st, ok := c.siteStats[t.To]; ok {
				st.PutBytes += t.Bytes
			}
			c.stats.Transfers++
		}
	}
	return len(due)
}

func (c *Coordinator) linkStat(link string) *LinkStats {
	ls, ok := c.linkStats[link]
	if !ok {
		ls = &LinkStats{Link: link}
		c.linkStats[link] = ls
	}
	return ls
}

// Detach removes a site from the placement set: its replicas stop counting
// toward every dataset's factor, transfers touching it are aborted, and
// subsequent rounds repair the resulting under-replication on the
// remaining sites. Stats for the site are retained.
func (c *Coordinator) Detach(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.sites[:0]
	for _, s := range c.sites {
		if s.Name() != name {
			kept = append(kept, s)
		}
	}
	c.sites = kept
	for key, t := range c.inflight {
		if t.From == name || t.To == name {
			delete(c.inflight, key)
			c.stats.Aborted++
		}
	}
	delete(c.lastSeen, name)
	delete(c.knownRev, name)
	delete(c.missed, name)
	for key := range c.pinned {
		if strings.HasSuffix(key, "→"+name) {
			delete(c.pinned, key)
		}
	}
}

// InFlight reports the number of transfers currently in flight.
func (c *Coordinator) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.inflight)
}

// NextArrival returns the earliest in-flight arrival time, and whether any
// transfer is in flight — what a scenario advances the engine to.
func (c *Coordinator) NextArrival() (sim.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var min sim.Time
	found := false
	for _, t := range c.inflight {
		if !found || t.ArriveAt < min {
			min, found = t.ArriveAt, true
		}
	}
	return min, found
}

// StageStatus is the console's answer to a staging request.
type StageStatus struct {
	Dataset string  `json:"dataset"`
	Site    string  `json:"site"`
	State   string  `json:"state"` // "present" or "staging"
	From    string  `json:"from,omitempty"`
	ETASecs float64 `json:"eta_s,omitempty"` // virtual seconds until arrival
}

// Stage ensures a replica of dataset on the named site, planning an
// immediate transfer from the nearest holder when one is missing — the
// pre-launch placement call behind POST /console/datasets/stage. The
// returned ETA is in virtual seconds; the replica installs when the
// engine's clock passes it (a Round or Poll observes the arrival).
func (c *Coordinator) Stage(dataset, site string) (StageStatus, error) {
	now := c.engine.Now()
	c.completeArrived(now)
	c.mu.Lock()
	defer c.mu.Unlock()

	dst, ok := c.siteByName(site)
	if !ok {
		return StageStatus{}, fmt.Errorf("datastore: no site %q in the placement set", site)
	}
	// A staged placement is deliberate: pin it so the over-replication
	// drain never removes it out from under the user's compute.
	c.pinned[dataset+"→"+site] = true
	if _, err := dst.Get(dataset); err == nil {
		return StageStatus{Dataset: dataset, Site: site, State: "present"}, nil
	} else if !errors.Is(err, ErrNoReplica) {
		// An unreachable destination is an error, not "absent": planning
		// a transfer whose install can never land would have the client
		// polling "staging" forever.
		return StageStatus{}, fmt.Errorf("datastore: site %q unreachable: %w", site, err)
	}
	if t, ok := c.inflight[dataset+"→"+site]; ok {
		return StageStatus{Dataset: dataset, Site: site, State: "staging",
			From: t.From, ETASecs: float64(t.ArriveAt - now)}, nil
	}
	// Find a holder: prefer the newest round's view (no I/O), else ask
	// every other site at once through the bounded pool — the coordinator
	// may never have run a round, and one dead site must not pin c.mu
	// (and with it every console data-plane route) for serial timeouts.
	var src API
	var rep Replica
	for _, s := range c.sites {
		if s.Name() == site {
			continue
		}
		if r, ok := c.lastSeen[s.Name()][dataset]; ok {
			src, rep = s, r
			break
		}
	}
	if src == nil {
		type lookup struct {
			r   Replica
			err error
		}
		results := make([]lookup, len(c.sites))
		tasks := make([]func(), len(c.sites))
		for i, s := range c.sites {
			i, s := i, s
			if s.Name() == site {
				tasks[i] = func() { results[i].err = ErrNoReplica }
				continue
			}
			tasks[i] = func() { results[i].r, results[i].err = s.Get(dataset) }
		}
		completed := fanout.Each(c.workers, c.siteDeadline, tasks)
		for i, s := range c.sites {
			if s.Name() == site || !completed[i] || results[i].err != nil {
				continue
			}
			src, rep = s, results[i].r
			break
		}
	}
	if src == nil {
		return StageStatus{}, fmt.Errorf("datastore: no site holds a replica of %q", dataset)
	}
	t := &Transfer{
		Dataset: dataset, From: src.Name(), To: site,
		Link:     src.Loc() + "→" + dst.Loc(),
		Bytes:    rep.SizeBytes,
		Checksum: rep.Checksum, Version: rep.Version,
		PlannedAt: now,
	}
	c.priceLocked(now, []*Transfer{t})
	c.inflight[dataset+"→"+site] = t
	if n := len(c.inflight); n > c.stats.MaxInFlight {
		c.stats.MaxInFlight = n
	}
	return StageStatus{Dataset: dataset, Site: site, State: "staging",
		From: t.From, ETASecs: float64(t.ArriveAt - now)}, nil
}

// Poll installs any transfers whose arrival time has passed without
// running a full planning round — what console reads call before
// reporting placement. Returns how many arrived.
func (c *Coordinator) Poll() int {
	return c.completeArrived(c.engine.Now())
}

// PlacementRow is one dataset's placement as the console reports it.
type PlacementRow struct {
	Dataset  string   `json:"dataset"`
	Target   int      `json:"target"`
	Sites    []string `json:"sites"`
	InFlight int      `json:"in_flight"`
}

// Placement reports, per catalog dataset, which sites held a replica at
// the newest round plus the in-flight transfer count, sorted by dataset.
func (c *Coordinator) Placement() []PlacementRow {
	c.completeArrived(c.engine.Now())
	c.mu.Lock()
	defer c.mu.Unlock()
	rows := make([]PlacementRow, 0)
	for _, d := range c.catalog.All() {
		row := PlacementRow{Dataset: d.Name, Target: c.targetFor(d.Name)}
		for site, seen := range c.lastSeen {
			if _, ok := seen[d.Name]; ok {
				row.Sites = append(row.Sites, site)
			}
		}
		sort.Strings(row.Sites)
		for _, t := range c.inflight {
			if t.Dataset == d.Name {
				row.InFlight++
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Stats returns a copy of the coordinator's counters, site and link tables
// sorted by name.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.stats
	out.Sites = make([]SiteStats, 0, len(c.siteStats))
	for _, s := range c.siteStats {
		out.Sites = append(out.Sites, *s)
	}
	sort.Slice(out.Sites, func(i, j int) bool { return out.Sites[i].Site < out.Sites[j].Site })
	out.Links = make([]LinkStats, 0, len(c.linkStats))
	for _, l := range c.linkStats {
		out.Links = append(out.Links, *l)
	}
	sort.Slice(out.Links, func(i, j int) bool { return out.Links[i].Link < out.Links[j].Link })
	return out
}
