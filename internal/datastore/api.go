package datastore

// API is one site's datasets plane as the console and the replication
// coordinator see it. Two backends exist, mirroring the cloudapi pattern:
//
//   - *Store is the Local backend: the in-process inventory itself, used
//     by the single-process topology and by each cloudapi.Server to serve
//     the wire plane;
//   - *Remote is the HTTP client speaking the /cloudapi/datasets routes of
//     a per-site server.
//
// The parity test in internal/cloudapi holds both to identical observable
// behavior, including error messages.
//
// Implementations must be safe for concurrent use: console handlers and
// coordinator rounds call in at once.
type API interface {
	// Name is the federation site name (e.g. "OSDC-Adler").
	Name() string
	// Loc is the simnet site hosting the store (e.g. "chicago-kenwood") —
	// what transfer paths are derived from.
	Loc() string
	// List returns every replica sorted by dataset name.
	List() ([]Replica, error)
	// Get looks one replica up; errors.Is(err, ErrNoReplica) when absent.
	Get(dataset string) (Replica, error)
	// Put installs or replaces a replica, accounting bytes on the site
	// volume. Invalid replicas and full volumes error.
	Put(r Replica) error
	// Delete drops a replica; errors.Is(err, ErrNoReplica) when absent.
	Delete(dataset string) error
	// ListSince returns everything that changed after revision since — the
	// pagination form of List: a fresh client passes 0 for a Reset
	// snapshot, then feeds each response's Rev back and receives only the
	// churn in between. See Delta.
	ListSince(since int64) (Delta, error)
}

// Delta is ListSince's result: the store's state relative to a revision
// the caller already holds.
type Delta struct {
	// Rev is the store's current revision — what the caller passes to its
	// next ListSince.
	Rev int64 `json:"rev,omitempty"`
	// Changed holds every replica put after the caller's revision, sorted
	// by dataset name.
	Changed []Replica `json:"changed,omitempty"`
	// Removed holds every dataset deleted after the caller's revision,
	// sorted by name.
	Removed []string `json:"removed,omitempty"`
	// Reset reports that Changed is a full snapshot and anything the
	// caller carried forward must be discarded: returned for since <= 0 (a
	// fresh client) and for since ahead of the store's revision (the store
	// restarted under the client).
	Reset bool `json:"reset,omitempty"`
}

// *Store implements API directly.
var _ API = (*Store)(nil)
