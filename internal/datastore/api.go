package datastore

// API is one site's datasets plane as the console and the replication
// coordinator see it. Two backends exist, mirroring the cloudapi pattern:
//
//   - *Store is the Local backend: the in-process inventory itself, used
//     by the single-process topology and by each cloudapi.Server to serve
//     the wire plane;
//   - *Remote is the HTTP client speaking the /cloudapi/datasets routes of
//     a per-site server.
//
// The parity test in internal/cloudapi holds both to identical observable
// behavior, including error messages.
//
// Implementations must be safe for concurrent use: console handlers and
// coordinator rounds call in at once.
type API interface {
	// Name is the federation site name (e.g. "OSDC-Adler").
	Name() string
	// Loc is the simnet site hosting the store (e.g. "chicago-kenwood") —
	// what transfer paths are derived from.
	Loc() string
	// List returns every replica sorted by dataset name.
	List() ([]Replica, error)
	// Get looks one replica up; errors.Is(err, ErrNoReplica) when absent.
	Get(dataset string) (Replica, error)
	// Put installs or replaces a replica, accounting bytes on the site
	// volume. Invalid replicas and full volumes error.
	Put(r Replica) error
	// Delete drops a replica; errors.Is(err, ErrNoReplica) when absent.
	Delete(dataset string) error
}

// *Store implements API directly.
var _ API = (*Store)(nil)
