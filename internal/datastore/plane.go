package datastore

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// The /cloudapi/datasets wire protocol. The server side lives here (and is
// mounted by cloudapi.Server next to the clock and quota routes) so the
// wire forms and the Remote client stay in one package:
//
//	GET    /cloudapi/datasets                  → 200 listResponse
//	GET    /cloudapi/datasets?since=R          → 200 deltaResponse | 400 bad since
//	GET    /cloudapi/datasets/replica?dataset= → 200 Replica | 404
//	POST   /cloudapi/datasets/replica (Replica)→ 204 | 400 invalid | 507 volume full
//	DELETE /cloudapi/datasets/replica?dataset= → 204 | 404
//
// Error bodies are {"error": msg} with msg the Local backend's exact error
// string, which is how Remote reproduces Local's errors byte for byte.

// listResponse is the GET /cloudapi/datasets wire form. Site and Loc make
// the plane self-describing, so a Remote can be built from an endpoint
// alone (ProbeRemote).
type listResponse struct {
	Site     string    `json:"site"`
	Loc      string    `json:"loc"`
	Replicas []Replica `json:"replicas"`
}

// deltaResponse is the GET /cloudapi/datasets?since=R wire form: the
// store's Delta plus the plane's self-description.
type deltaResponse struct {
	Site string `json:"site"`
	Loc  string `json:"loc"`
	Delta
}

func planeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func planeError(w http.ResponseWriter, code int, msg string) {
	planeJSON(w, code, map[string]string{"error": msg})
}

// ServePlane handles one /cloudapi/datasets request against api.
// cloudapi.Server routes the prefix here after its operator-auth check.
func ServePlane(api API, w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/cloudapi/datasets" && r.Method == http.MethodGet:
		if raw := r.URL.Query().Get("since"); raw != "" {
			since, err := strconv.ParseInt(raw, 10, 64)
			if err != nil {
				planeError(w, http.StatusBadRequest, "datastore: bad since "+strconv.Quote(raw))
				return
			}
			d, err := api.ListSince(since)
			if err != nil {
				planeError(w, http.StatusBadGateway, err.Error())
				return
			}
			planeJSON(w, http.StatusOK, deltaResponse{Site: api.Name(), Loc: api.Loc(), Delta: d})
			return
		}
		reps, err := api.List()
		if err != nil {
			planeError(w, http.StatusBadGateway, err.Error())
			return
		}
		planeJSON(w, http.StatusOK, listResponse{Site: api.Name(), Loc: api.Loc(), Replicas: reps})

	case r.URL.Path == "/cloudapi/datasets/replica" && r.Method == http.MethodGet:
		rep, err := api.Get(r.URL.Query().Get("dataset"))
		if err != nil {
			planeError(w, http.StatusNotFound, err.Error())
			return
		}
		planeJSON(w, http.StatusOK, rep)

	case r.URL.Path == "/cloudapi/datasets/replica" && r.Method == http.MethodPost:
		var rep Replica
		if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
			planeError(w, http.StatusBadRequest, "datastore: bad JSON: "+err.Error())
			return
		}
		if err := api.Put(rep); err != nil {
			// Invalid replicas are the caller's fault; anything else is
			// the volume rejecting the bytes (full share → 507).
			code := http.StatusInsufficientStorage
			if validate(rep) != nil {
				code = http.StatusBadRequest
			}
			planeError(w, code, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)

	case r.URL.Path == "/cloudapi/datasets/replica" && r.Method == http.MethodDelete:
		if err := api.Delete(r.URL.Query().Get("dataset")); err != nil {
			code := http.StatusNotFound
			if !errors.Is(err, ErrNoReplica) {
				code = http.StatusBadGateway
			}
			planeError(w, code, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)

	default:
		planeError(w, http.StatusNotFound, "datastore: no route "+r.Method+" "+r.URL.Path)
	}
}
