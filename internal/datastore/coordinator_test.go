package datastore

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"osdc/internal/ark"
	"osdc/internal/datasets"
	"osdc/internal/sim"
	"osdc/internal/simnet"
)

const cgb = int64(1) << 30

// coordRig is a three-site data plane over the OSDC WAN topology: siteA
// (Chicago-Kenwood) holds the master copies, siteB (Chicago-NU) and siteC
// (AMPATH Miami) start empty.
type coordRig struct {
	e       *sim.Engine
	nw      *simnet.Network
	cat     *datasets.Catalog
	a, b, c *Store
}

func newCoordRig(t *testing.T, seed uint64) *coordRig {
	t.Helper()
	e := sim.NewEngine(seed)
	nw := simnet.BuildOSDCTopology(e, simnet.DefaultWAN())
	catVol := testVolume(t, e, "cat", 1<<40)
	cat := datasets.NewCatalog(ark.NewService(""), catVol)
	cat.AddCurator("walt")

	rig := &coordRig{
		e: e, nw: nw, cat: cat,
		a: NewStore("site-a", simnet.SiteChicagoKenwood, testVolume(t, e, "a", 1<<40)),
		b: NewStore("site-b", simnet.SiteChicagoNU, testVolume(t, e, "b", 1<<40)),
		c: NewStore("site-c", simnet.SiteAMPATH, testVolume(t, e, "c", 1<<40)),
	}
	for i, d := range []datasets.Dataset{
		{Name: "Alpha Survey", SizeBytes: 1 * cgb, Discipline: "astronomy"},
		{Name: "Beta Genomes", SizeBytes: 2 * cgb, Discipline: "biology"},
		{Name: "Gamma Imagery", SizeBytes: 3 * cgb, Discipline: "earth science"},
	} {
		if _, err := cat.Publish("walt", d); err != nil {
			t.Fatal(err)
		}
		if err := rig.a.Put(Replica{Dataset: d.Name, SizeBytes: d.SizeBytes, Version: 1}); err != nil {
			t.Fatalf("seeding dataset %d: %v", i, err)
		}
	}
	return rig
}

// converge runs planning rounds, advancing the engine to each next
// arrival, until the coordinator reports nothing to do.
func converge(t *testing.T, e *sim.Engine, c *Coordinator) int {
	t.Helper()
	rounds := 0
	for {
		rounds++
		planned, _ := c.Round()
		if planned == 0 && c.InFlight() == 0 {
			return rounds
		}
		if at, ok := c.NextArrival(); ok {
			e.RunUntil(at)
		}
		if rounds > 50 {
			t.Fatal("coordinator did not converge in 50 rounds")
		}
	}
}

// replicaCount returns how many of the rig's stores hold dataset.
func (rig *coordRig) replicaCount(dataset string) int {
	n := 0
	for _, s := range []*Store{rig.a, rig.b, rig.c} {
		if _, err := s.Get(dataset); err == nil {
			n++
		}
	}
	return n
}

func TestCoordinatorReachesFactor(t *testing.T) {
	rig := newCoordRig(t, 11)
	c := NewCoordinator(rig.e, rig.nw, rig.cat, Options{Factor: 2, Seed: 11}, rig.a, rig.b, rig.c)

	converge(t, rig.e, c)
	for _, d := range rig.cat.All() {
		if got := rig.replicaCount(d.Name); got != 2 {
			t.Errorf("%s has %d replicas, want 2", d.Name, got)
		}
	}
	st := c.Stats()
	// Exactly one copy of each dataset moved: 1+2+3 GB.
	if st.BytesMoved != 6*cgb {
		t.Errorf("BytesMoved = %d, want %d", st.BytesMoved, 6*cgb)
	}
	if st.Transfers != 3 || st.FailedVerifies != 0 {
		t.Errorf("Transfers = %d, FailedVerifies = %d", st.Transfers, st.FailedVerifies)
	}
	if st.MaxInFlight < 1 || st.MaxInFlight > 3 {
		t.Errorf("MaxInFlight = %d", st.MaxInFlight)
	}
	if len(st.Links) == 0 {
		t.Error("no per-link stats recorded")
	}
	var linkBytes int64
	for _, l := range st.Links {
		linkBytes += l.Bytes
		if l.Flows == 0 {
			t.Errorf("link %s recorded bytes but no flows", l.Link)
		}
	}
	if linkBytes != st.BytesMoved {
		t.Errorf("per-link bytes %d != total %d", linkBytes, st.BytesMoved)
	}
	// Virtual time accrued: gigabytes over a 10G WAN take real seconds.
	if rig.e.Now() <= 0 {
		t.Error("transfers accrued no virtual time")
	}
}

// TestCoordinatorRepairsDetachedSite is the kill-one-site acceptance test:
// after convergence at factor 2, one site detaches; the coordinator must
// restore the factor on the remaining sites moving only the lost copies.
func TestCoordinatorRepairsDetachedSite(t *testing.T) {
	rig := newCoordRig(t, 12)
	c := NewCoordinator(rig.e, rig.nw, rig.cat, Options{Factor: 2, Seed: 12}, rig.a, rig.b, rig.c)
	converge(t, rig.e, c)
	moved := c.Stats().BytesMoved

	// Kill whichever of B/C holds more: the repair traffic bound below is
	// exactly its holdings.
	dead := rig.b
	if rig.c.TotalBytes() > rig.b.TotalBytes() {
		dead = rig.c
	}
	lost, err := dead.List()
	if err != nil {
		t.Fatal(err)
	}
	var lostBytes int64
	for _, r := range lost {
		lostBytes += r.SizeBytes
	}
	if lostBytes == 0 {
		t.Fatal("detaching a site that held nothing proves nothing")
	}
	c.Detach(dead.Name())

	converge(t, rig.e, c)
	for _, d := range rig.cat.All() {
		n := 0
		for _, s := range []*Store{rig.a, rig.b, rig.c} {
			if s == dead {
				continue
			}
			if _, err := s.Get(d.Name); err == nil {
				n++
			}
		}
		if n != 2 {
			t.Errorf("%s has %d live replicas after repair, want 2", d.Name, n)
		}
	}
	// Bounded repair traffic: exactly the lost copies moved again.
	if repair := c.Stats().BytesMoved - moved; repair != lostBytes {
		t.Errorf("repair moved %d bytes, want exactly the %d lost", repair, lostBytes)
	}
	if c.Stats().LostDatasets != 0 {
		t.Errorf("LostDatasets = %d after repair", c.Stats().LostDatasets)
	}
}

// TestCoordinatorQuarantinesCorruptSource: a transfer from a corrupt
// master fails checksum verification on arrival; the bad copy is dropped
// (not installed) and counted.
func TestCoordinatorQuarantinesCorruptSource(t *testing.T) {
	rig := newCoordRig(t, 13)
	// Corrupt the only copy of Alpha Survey.
	if err := rig.a.Put(Replica{Dataset: "Alpha Survey", SizeBytes: 1 * cgb, Version: 1, Checksum: "rot"}); err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(rig.e, rig.nw, rig.cat, Options{Factor: 2, Seed: 13}, rig.a, rig.b, rig.c)
	converge(t, rig.e, c)

	st := c.Stats()
	if st.FailedVerifies != 1 {
		t.Fatalf("FailedVerifies = %d, want 1", st.FailedVerifies)
	}
	if _, err := rig.a.Get("Alpha Survey"); !errors.Is(err, ErrNoReplica) {
		t.Error("corrupt source replica survived quarantine")
	}
	if got := rig.replicaCount("Alpha Survey"); got != 0 {
		t.Errorf("corrupt dataset propagated to %d sites", got)
	}
	if st.LostDatasets != 1 {
		t.Errorf("LostDatasets = %d, want 1 (the quarantined master)", st.LostDatasets)
	}
	// The healthy datasets still reached their factor.
	for _, name := range []string{"Beta Genomes", "Gamma Imagery"} {
		if got := rig.replicaCount(name); got != 2 {
			t.Errorf("%s has %d replicas, want 2", name, got)
		}
	}
}

func TestCoordinatorStage(t *testing.T) {
	rig := newCoordRig(t, 14)
	c := NewCoordinator(rig.e, rig.nw, rig.cat, Options{Factor: 1, Seed: 14}, rig.a, rig.b, rig.c)

	st, err := c.Stage("Gamma Imagery", "site-c")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "staging" || st.From != "site-a" || st.ETASecs <= 0 {
		t.Fatalf("Stage = %+v", st)
	}
	// Before the flow arrives the replica is absent; repeated stages
	// report the same in-flight transfer rather than planning another.
	again, err := c.Stage("Gamma Imagery", "site-c")
	if err != nil || again.State != "staging" {
		t.Fatalf("second Stage = %+v, %v", again, err)
	}
	if c.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", c.InFlight())
	}
	at, _ := c.NextArrival()
	rig.e.RunUntil(at)
	if c.Poll() != 1 {
		t.Fatal("Poll installed nothing after arrival")
	}
	if _, err := rig.c.Get("Gamma Imagery"); err != nil {
		t.Fatalf("staged replica missing: %v", err)
	}
	done, err := c.Stage("Gamma Imagery", "site-c")
	if err != nil || done.State != "present" {
		t.Fatalf("post-arrival Stage = %+v, %v", done, err)
	}

	if _, err := c.Stage("No Such Set", "site-c"); err == nil {
		t.Error("staging an unknown dataset succeeded")
	}
	if _, err := c.Stage("Gamma Imagery", "site-x"); err == nil {
		t.Error("staging to an unknown site succeeded")
	}
}

// flakyAPI wraps a store, failing List for a programmed set of rounds —
// a site that misses one observation without actually being gone.
type flakyAPI struct {
	*Store
	calls     int
	failCalls map[int]bool // 1-based List call numbers that error
}

func (f *flakyAPI) ListSince(since int64) (Delta, error) {
	f.calls++
	if f.failCalls[f.calls] {
		return Delta{}, errors.New("transient observe failure")
	}
	return f.Store.ListSince(since)
}

// List fails alongside the same programmed observation, so the
// coordinator's full-listing fallback sees the site down too.
func (f *flakyAPI) List() ([]Replica, error) {
	if f.failCalls[f.calls] {
		return nil, errors.New("transient observe failure")
	}
	return f.Store.List()
}

// TestCoordinatorGraceSuppressesFlapRepairs: one missed observation of a
// healthy holder must not trigger duplicate repairs — inside the grace
// window the site's last-known replicas keep counting.
func TestCoordinatorGraceSuppressesFlapRepairs(t *testing.T) {
	rig := newCoordRig(t, 16)
	flaky := &flakyAPI{Store: rig.b, failCalls: map[int]bool{}}
	c := NewCoordinator(rig.e, rig.nw, rig.cat, Options{Factor: 2, Seed: 16}, rig.a, flaky, rig.c)
	converge(t, rig.e, c)
	moved := c.Stats().BytesMoved

	// The next observation of site-b fails once, then recovers.
	flaky.failCalls[flaky.calls+1] = true
	for i := 0; i < 3; i++ {
		if planned, _ := c.Round(); planned != 0 {
			t.Fatalf("flap round %d planned %d duplicate transfers", i, planned)
		}
	}
	if got := c.Stats().BytesMoved; got != moved {
		t.Fatalf("flap moved %d extra bytes", got-moved)
	}
	if c.Stats().Drained != 0 {
		t.Fatalf("flap drained %d replicas", c.Stats().Drained)
	}
	// Every dataset still sits at exactly the factor.
	for _, d := range rig.cat.All() {
		if got := rig.replicaCount(d.Name); got != 2 {
			t.Errorf("%s has %d replicas after the flap, want 2", d.Name, got)
		}
	}
}

// TestCoordinatorDrainsExcessReplicas: a dataset over its factor is
// drained back down — never from the anchor (master) site.
func TestCoordinatorDrainsExcessReplicas(t *testing.T) {
	rig := newCoordRig(t, 17)
	c := NewCoordinator(rig.e, rig.nw, rig.cat, Options{Factor: 1, Seed: 17}, rig.a, rig.b, rig.c)
	converge(t, rig.e, c) // factor 1: masters on site-a already satisfy it

	// Two stray extra copies appear (an operator's manual put, or a site
	// back from a long outage).
	for _, s := range []*Store{rig.b, rig.c} {
		if err := s.Put(Replica{Dataset: "Alpha Survey", SizeBytes: 1 * cgb, Version: 1}); err != nil {
			t.Fatal(err)
		}
	}
	converge(t, rig.e, c)
	if got := c.Stats().Drained; got != 2 {
		t.Fatalf("Drained = %d, want 2", got)
	}
	if got := rig.replicaCount("Alpha Survey"); got != 1 {
		t.Fatalf("Alpha Survey at %d replicas after drain, want 1", got)
	}
	// The surviving copy is the anchor's master.
	if _, err := rig.a.Get("Alpha Survey"); err != nil {
		t.Fatal("drain removed the anchor's master copy")
	}
}

// TestDrainSparesStagedReplicas: a deliberately staged replica lifts a
// dataset above its factor, and the drain must leave it alone — the user
// parked it next to their compute.
func TestDrainSparesStagedReplicas(t *testing.T) {
	rig := newCoordRig(t, 19)
	c := NewCoordinator(rig.e, rig.nw, rig.cat, Options{Factor: 1, Seed: 19}, rig.a, rig.b, rig.c)
	converge(t, rig.e, c)

	st, err := c.Stage("Beta Genomes", "site-c")
	if err != nil {
		t.Fatal(err)
	}
	rig.e.RunFor(sim.Duration(st.ETASecs) + sim.Second)
	converge(t, rig.e, c) // rounds see 2 > factor 1; the pin protects it
	if _, err := rig.c.Get("Beta Genomes"); err != nil {
		t.Fatalf("drain removed the staged replica: %v", err)
	}
	if got := c.Stats().Drained; got != 0 {
		t.Fatalf("Drained = %d, want 0", got)
	}
}

// TestStageUnreachableDestinationErrors: staging onto a site whose plane
// is down must error, not return an ETA for a transfer that can never
// install.
func TestStageUnreachableDestinationErrors(t *testing.T) {
	rig := newCoordRig(t, 18)
	ghost := unreachableAPI{name: "site-ghost", loc: simnet.SiteLVOC}
	c := NewCoordinator(rig.e, rig.nw, rig.cat, Options{Factor: 1, Seed: 18}, rig.a, rig.b, ghost)
	if _, err := c.Stage("Alpha Survey", "site-ghost"); err == nil {
		t.Fatal("staging to an unreachable site returned an ETA")
	}
	if c.InFlight() != 0 {
		t.Fatalf("unreachable stage left %d transfers in flight", c.InFlight())
	}
}

// unreachableAPI fails every call — a detached-but-still-configured site.
type unreachableAPI struct{ name, loc string }

func (u unreachableAPI) Name() string                { return u.name }
func (u unreachableAPI) Loc() string                 { return u.loc }
func (u unreachableAPI) List() ([]Replica, error)    { return nil, errors.New("unreachable") }
func (u unreachableAPI) Get(string) (Replica, error) { return Replica{}, errors.New("unreachable") }
func (u unreachableAPI) Put(Replica) error           { return errors.New("unreachable") }
func (u unreachableAPI) Delete(string) error         { return errors.New("unreachable") }
func (u unreachableAPI) ListSince(int64) (Delta, error) {
	return Delta{}, errors.New("unreachable")
}

func TestCoordinatorCountsUnreachableSites(t *testing.T) {
	rig := newCoordRig(t, 15)
	ghost := unreachableAPI{name: "site-ghost", loc: simnet.SiteLVOC}
	c := NewCoordinator(rig.e, rig.nw, rig.cat, Options{Factor: 2, Seed: 15}, rig.a, rig.b, ghost)
	converge(t, rig.e, c)

	for _, s := range c.Stats().Sites {
		switch s.Site {
		case "site-ghost":
			if s.Errors == 0 {
				t.Error("unreachable site recorded no errors")
			}
		default:
			if s.Errors != 0 {
				t.Errorf("healthy site %s recorded %d errors", s.Site, s.Errors)
			}
		}
	}
	// The factor is met on the reachable sites.
	for _, d := range rig.cat.All() {
		if got := rig.replicaCount(d.Name); got != 2 {
			t.Errorf("%s has %d replicas, want 2", d.Name, got)
		}
	}
}

// TestCoordinatorDeterministic pins the whole data plane to the seed: two
// rigs with the same seed produce identical stats and placements.
func TestCoordinatorDeterministic(t *testing.T) {
	run := func() (Stats, []PlacementRow, sim.Time) {
		rig := newCoordRig(t, 42)
		c := NewCoordinator(rig.e, rig.nw, rig.cat, Options{Factor: 3, Seed: 42}, rig.a, rig.b, rig.c)
		converge(t, rig.e, c)
		return c.Stats(), c.Placement(), rig.e.Now()
	}
	s1, p1, t1 := run()
	s2, p2, t2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("stats diverged across identical runs:\n%+v\n%+v", s1, s2)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Errorf("placement diverged:\n%+v\n%+v", p1, p2)
	}
	if t1 != t2 {
		t.Errorf("virtual time diverged: %v vs %v", t1, t2)
	}
	// Factor 3 over 3 sites: everything everywhere.
	for _, row := range p1 {
		if len(row.Sites) != 3 {
			t.Errorf("%s placed on %v, want all three sites", row.Dataset, row.Sites)
		}
	}
}

// deltaSpy wraps a store and records every since value the coordinator's
// observation passes, plus any full-List fallbacks.
type deltaSpy struct {
	*Store
	mu        sync.Mutex
	sinces    []int64
	fullLists int
}

func (d *deltaSpy) ListSince(since int64) (Delta, error) {
	d.mu.Lock()
	d.sinces = append(d.sinces, since)
	d.mu.Unlock()
	return d.Store.ListSince(since)
}

func (d *deltaSpy) List() ([]Replica, error) {
	d.mu.Lock()
	d.fullLists++
	d.mu.Unlock()
	return d.Store.List()
}

// TestCoordinatorObservesViaDeltas: after the first round's snapshot, the
// coordinator's observation passes each site's last revision back — rounds
// read churn, not inventories — and converges to the same placement.
func TestCoordinatorObservesViaDeltas(t *testing.T) {
	rig := newCoordRig(t, 23)
	// Spy on the master site: it holds replicas from the first round, so
	// every observation after the snapshot must carry a nonzero revision.
	spy := &deltaSpy{Store: rig.a}
	c := NewCoordinator(rig.e, rig.nw, rig.cat, Options{Factor: 2, Seed: 23}, spy, rig.b, rig.c)
	converge(t, rig.e, c)

	for _, d := range rig.cat.All() {
		if got := rig.replicaCount(d.Name); got != 2 {
			t.Errorf("%s at %d replicas after delta-driven convergence, want 2", d.Name, got)
		}
	}
	spy.mu.Lock()
	defer spy.mu.Unlock()
	if len(spy.sinces) < 2 {
		t.Fatalf("observation called ListSince %d times", len(spy.sinces))
	}
	if spy.sinces[0] != 0 {
		t.Fatalf("first observation passed since=%d, want 0", spy.sinces[0])
	}
	for i, since := range spy.sinces[1:] {
		if since <= 0 {
			t.Fatalf("round %d re-read the full inventory (since=%d) despite an answered prior round", i+2, since)
		}
	}
	if spy.fullLists != 0 {
		t.Fatalf("observation fell back to full List %d times with a healthy delta route", spy.fullLists)
	}
}

// blockingAPI wraps a store with a Put that parks until released — a
// destination plane mid-HTTP-round-trip.
type blockingAPI struct {
	*Store
	entered chan struct{} // closed when the first Put starts
	release chan struct{} // Put returns when this closes
	once    sync.Once
}

func (b *blockingAPI) Put(r Replica) error {
	b.once.Do(func() { close(b.entered) })
	<-b.release
	return b.Store.Put(r)
}

// TestArrivalInstallDoesNotHoldCoordinatorLock is the lock-hazard
// regression test: while a destination's Put is in flight, every other
// coordinator surface (InFlight, NextArrival, Placement, Stats) must stay
// responsive — the remote install runs outside c.mu.
func TestArrivalInstallDoesNotHoldCoordinatorLock(t *testing.T) {
	rig := newCoordRig(t, 29)
	slow := &blockingAPI{Store: rig.b, entered: make(chan struct{}), release: make(chan struct{})}
	c := NewCoordinator(rig.e, rig.nw, rig.cat, Options{Factor: 2, Seed: 29}, rig.a, slow, rig.c)

	// Plan the first transfers, then advance past every arrival so the
	// next Poll has installs to do.
	c.Round()
	at, ok := c.NextArrival()
	if !ok {
		t.Fatal("round planned no transfers")
	}
	rig.e.RunUntil(at + sim.Time(sim.Hour))

	polled := make(chan int)
	go func() { polled <- c.Poll() }()
	<-slow.entered // an install is now parked inside the slow Put

	// The coordinator lock must be free while the Put blocks.
	responsive := make(chan struct{})
	go func() {
		c.InFlight()
		c.NextArrival()
		c.Stats()
		close(responsive)
	}()
	select {
	case <-responsive:
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator surfaces blocked behind an in-flight destination Put")
	}

	close(slow.release)
	if n := <-polled; n == 0 {
		t.Fatal("Poll completed no arrivals")
	}
}

// TestShardedPricingDeterministicAndConverges: a coordinator homed on a
// K=4 kernel prices flow groups concurrently yet reproduces the same
// placement and stats run over run, and a K=1 shard set keeps the serial
// pricing path bit-identical to a shard-less coordinator.
func TestShardedPricingDeterministicAndConverges(t *testing.T) {
	run := func(set *sim.ShardSet) Stats {
		rig := newCoordRig(t, 11)
		c := NewCoordinator(rig.e, rig.nw, rig.cat,
			Options{Factor: 2, Seed: 11, Shards: set}, rig.a, rig.b, rig.c)
		converge(t, rig.e, c)
		for _, d := range rig.cat.All() {
			if got := rig.replicaCount(d.Name); got != 2 {
				t.Fatalf("%s has %d replicas, want 2", d.Name, got)
			}
		}
		return c.Stats()
	}

	sharded1 := run(sim.NewShardSet(11, 4))
	sharded2 := run(sim.NewShardSet(11, 4))
	if !reflect.DeepEqual(sharded1, sharded2) {
		t.Fatalf("K=4 pricing not deterministic:\nrun1: %+v\nrun2: %+v", sharded1, sharded2)
	}

	k1 := run(sim.NewShardSet(11, 1))
	serial := run(nil)
	if !reflect.DeepEqual(k1, serial) {
		t.Fatalf("K=1 shard set diverged from serial pricing:\nK=1:    %+v\nserial: %+v", k1, serial)
	}
	if sharded1.BytesMoved != serial.BytesMoved || sharded1.Transfers != serial.Transfers {
		t.Fatalf("sharded pricing changed what moved: sharded %+v vs serial %+v", sharded1, serial)
	}
}
