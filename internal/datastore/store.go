// Package datastore is the federation's data plane: per-site dataset
// replica stores, the /cloudapi/datasets wire protocol that exposes them,
// and the replication coordinator that moves bytes between sites over the
// simulated WAN.
//
// The paper's defining claim is that the OSDC is a *data* cloud (§1, §4,
// §6.3): curated public datasets live at multiple sites and move over the
// wide area with UDT-class protocols. After the compute federation (the
// cloudapi transport and clock planes), this package federates the data:
//
//   - Store is one site's replica inventory, with bytes accounted on that
//     site's dfs.Volume and checksum/version metadata per replica;
//   - API is the plane the console sees, with Local (in-process) and
//     Remote (HTTP against a cloudapi.Server's /cloudapi/datasets routes)
//     backends held to identical observable behavior by a parity test;
//   - Coordinator plans placements against a target replication factor,
//     executes transfers as contending UDT flows (transport.SimulateShared
//     over the simnet topology), verifies checksums on arrival, and
//     repairs under-replication when a site is detached.
package datastore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"osdc/internal/dfs"
)

// ErrNoReplica reports a dataset the store holds no replica of.
var ErrNoReplica = errors.New("datastore: no replica")

// Replica is one site's copy of a dataset: the wire form of the datasets
// plane. Checksum is the content fingerprint the coordinator verifies on
// arrival (Fingerprint of the dataset name and version for healthy
// copies); Version lets a re-published dataset displace stale replicas.
type Replica struct {
	Dataset   string `json:"dataset"`
	SizeBytes int64  `json:"size_bytes"`
	Checksum  string `json:"checksum"`
	Version   int    `json:"version"`
}

// Fingerprint is the canonical content checksum of a dataset version.
// Every healthy replica of (name, version) carries it; a transfer that
// arrives with anything else failed verification.
func Fingerprint(dataset string, version int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s@v%d", dataset, version)))
	return hex.EncodeToString(sum[:16])
}

// Store is one site's dataset inventory. Replica bytes are accounted on
// the site's dfs.Volume (size-only entries — the petabyte-scale accounting
// form), so a full volume rejects new replicas the way a full GlusterFS
// share would.
//
// Store is safe for concurrent use: console handlers, the replication
// coordinator and the wire plane all call in at once.
type Store struct {
	name string // federation site name, e.g. "OSDC-Adler"
	loc  string // simnet site hosting the store, e.g. "chicago-kenwood"
	vol  *dfs.Volume

	mu       sync.RWMutex
	replicas map[string]Replica
	// rev bumps on every Put/Adopt/Delete; revs and graves remember the
	// revision each dataset last changed or died at, which is what
	// ListSince serves deltas from.
	rev    int64
	revs   map[string]int64
	graves map[string]int64

	puts, deletes int64
}

// NewStore builds a store for the named federation site, located at the
// simnet site loc, accounting bytes on vol.
func NewStore(name, loc string, vol *dfs.Volume) *Store {
	return &Store{name: name, loc: loc, vol: vol,
		replicas: make(map[string]Replica),
		revs:     make(map[string]int64),
		graves:   make(map[string]int64),
	}
}

// Name returns the federation site name.
func (s *Store) Name() string { return s.name }

// Loc returns the simnet site hosting the store — what the coordinator
// derives transfer paths from.
func (s *Store) Loc() string { return s.loc }

// path is the on-volume location of a replica.
func replicaPath(dataset string) string {
	return "/datastore/" + strings.ToLower(strings.ReplaceAll(dataset, " ", "-"))
}

// validate rejects replicas no backend should accept, keeping Local and
// Remote observably identical.
func validate(r Replica) error {
	if r.Dataset == "" || r.SizeBytes <= 0 {
		return fmt.Errorf("datastore: replica needs a dataset name and positive size")
	}
	if r.Version < 1 {
		return fmt.Errorf("datastore: replica of %s needs a version >= 1", r.Dataset)
	}
	return nil
}

// Put installs (or replaces) a replica, accounting its bytes on the
// volume. Replacing a replica releases the old bytes first.
func (s *Store) Put(r Replica) error {
	if err := validate(r); err != nil {
		return err
	}
	if r.Checksum == "" {
		r.Checksum = Fingerprint(r.Dataset, r.Version)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.vol.WriteMeta(replicaPath(r.Dataset), r.SizeBytes); err != nil {
		return fmt.Errorf("datastore: %s storing %s: %w", s.name, r.Dataset, err)
	}
	s.replicas[r.Dataset] = r
	s.bumpLocked(r.Dataset)
	s.puts++
	return nil
}

// bumpLocked records a live change to dataset under s.mu.
func (s *Store) bumpLocked(dataset string) {
	s.rev++
	s.revs[dataset] = s.rev
	delete(s.graves, dataset)
}

// Adopt registers a replica whose bytes already live on this site's volume
// (e.g. the catalog's master copies on OSDC-Root, written when they were
// published). No volume write happens; everything else behaves like Put.
func (s *Store) Adopt(r Replica) error {
	if err := validate(r); err != nil {
		return err
	}
	if r.Checksum == "" {
		r.Checksum = Fingerprint(r.Dataset, r.Version)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replicas[r.Dataset] = r
	s.bumpLocked(r.Dataset)
	return nil
}

// Get looks one replica up; ErrNoReplica if the store holds none.
func (s *Store) Get(dataset string) (Replica, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.replicas[dataset]
	if !ok {
		return Replica{}, fmt.Errorf("datastore: %s: %q: %w", s.name, dataset, ErrNoReplica)
	}
	return r, nil
}

// List returns every replica sorted by dataset name.
func (s *Store) List() ([]Replica, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Replica, 0, len(s.replicas))
	for _, r := range s.replicas {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dataset < out[j].Dataset })
	return out, nil
}

// Delete drops a replica and releases its bytes. ErrNoReplica if absent.
func (s *Store) Delete(dataset string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.replicas[dataset]; !ok {
		return fmt.Errorf("datastore: %s: %q: %w", s.name, dataset, ErrNoReplica)
	}
	// A replica adopted rather than put may not live at the datastore
	// path; volume misses are fine, the inventory entry still goes.
	_ = s.vol.Delete(replicaPath(dataset))
	delete(s.replicas, dataset)
	s.rev++
	s.graves[dataset] = s.rev
	delete(s.revs, dataset)
	s.deletes++
	return nil
}

// Rev returns the store's current revision — what ListSince hands back so
// the next call sees only newer changes.
func (s *Store) Rev() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rev
}

// ListSince returns everything that changed after revision since. A fresh
// client passes 0 and gets a Reset snapshot; afterwards it passes the Rev
// from each response and receives only the replicas put and the datasets
// deleted in between — the coordinator's per-round observation shrinks
// from O(inventory) to O(churn). A since ahead of the store's revision
// (the store restarted, or the client followed a different store) also
// resets.
func (s *Store) ListSince(since int64) (Delta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d := Delta{Rev: s.rev}
	if since <= 0 || since > s.rev {
		d.Reset = true
		for _, r := range s.replicas {
			d.Changed = append(d.Changed, r)
		}
		sort.Slice(d.Changed, func(i, j int) bool { return d.Changed[i].Dataset < d.Changed[j].Dataset })
		return d, nil
	}
	for ds, rev := range s.revs {
		if rev > since {
			d.Changed = append(d.Changed, s.replicas[ds])
		}
	}
	sort.Slice(d.Changed, func(i, j int) bool { return d.Changed[i].Dataset < d.Changed[j].Dataset })
	for ds, rev := range s.graves {
		if rev > since {
			d.Removed = append(d.Removed, ds)
		}
	}
	sort.Strings(d.Removed)
	return d, nil
}

// TotalBytes sums the stored replica sizes.
func (s *Store) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, r := range s.replicas {
		n += r.SizeBytes
	}
	return n
}

// Count reports how many replicas the store holds.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.replicas)
}
