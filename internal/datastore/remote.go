package datastore

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// remoteTimeout bounds every round trip of a Remote built with a nil
// client, for the same reason cloudapi.DefaultTimeout exists: the
// replication coordinator lists every site each round, and one hung site
// must surface as a counted error, not a frozen coordinator.
const remoteTimeout = 10 * time.Second

// Remote is the over-the-wire API backend: an HTTP client speaking the
// /cloudapi/datasets routes of a per-site cloudapi.Server. Errors the
// server reports are reproduced with the Local backend's exact message
// (and ErrNoReplica class where it applies), so both backends are
// observably identical.
type Remote struct {
	name     string
	loc      string
	endpoint string // base URL, no trailing slash
	client   *http.Client
	secret   string // X-OSDC-Operator header on mutating calls, when set
}

// NewRemote builds a client for site name at loc served at endpoint.
// client may be nil for a private client with a 10 s timeout.
func NewRemote(name, loc, endpoint string, client *http.Client) *Remote {
	if client == nil {
		client = &http.Client{Timeout: remoteTimeout}
	}
	return &Remote{name: name, loc: loc, endpoint: strings.TrimRight(endpoint, "/"), client: client}
}

// ProbeRemote builds a client for whatever site serves endpoint by reading
// the datasets plane's self-description — how tukey-server attaches an
// externally running cloud-site's store knowing only its URL. A site not
// serving the plane errors.
func ProbeRemote(endpoint string, client *http.Client) (*Remote, error) {
	if client == nil {
		client = &http.Client{Timeout: remoteTimeout}
	}
	resp, err := client.Get(strings.TrimRight(endpoint, "/") + "/cloudapi/datasets")
	if err != nil {
		return nil, fmt.Errorf("datastore: probing %s: %w", endpoint, err)
	}
	defer resp.Body.Close()
	var list listResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil || resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("datastore: %s serves no datasets plane (status %d, err %v)", endpoint, resp.StatusCode, err)
	}
	if list.Site == "" || list.Loc == "" {
		return nil, fmt.Errorf("datastore: %s reported unusable plane description %+v", endpoint, list)
	}
	return NewRemote(list.Site, list.Loc, endpoint, client), nil
}

// SetOperatorSecret makes every mutating call carry the shared operator
// secret (the -operator-secret flag) in the X-OSDC-Operator header.
func (r *Remote) SetOperatorSecret(secret string) { r.secret = secret }

// Name implements API.
func (r *Remote) Name() string { return r.name }

// Loc implements API.
func (r *Remote) Loc() string { return r.loc }

// Endpoint returns the base URL the client speaks to.
func (r *Remote) Endpoint() string { return r.endpoint }

// wireError carries a server-reported message verbatim while preserving
// the error class the Local backend would have returned.
type wireError struct {
	msg  string
	kind error
}

func (e wireError) Error() string { return e.msg }
func (e wireError) Unwrap() error { return e.kind }

// decodeError extracts the {"error": msg} body, falling back to a status
// description.
func decodeError(resp *http.Response, kind error) error {
	var body struct {
		Error string `json:"error"`
	}
	raw, _ := io.ReadAll(resp.Body)
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		return wireError{msg: body.Error, kind: kind}
	}
	return wireError{msg: fmt.Sprintf("datastore: remote returned %d", resp.StatusCode), kind: kind}
}

func (r *Remote) do(method, path string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, r.endpoint+path, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if r.secret != "" {
		req.Header.Set("X-OSDC-Operator", r.secret)
	}
	return r.client.Do(req)
}

// List implements API.
func (r *Remote) List() ([]Replica, error) {
	resp, err := r.do(http.MethodGet, "/cloudapi/datasets", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp, nil)
	}
	var list listResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return nil, err
	}
	return list.Replicas, nil
}

// ListSince implements API: the ?since= form of the datasets route. The
// server evaluates the delta against the Local semantics, so both backends
// return identical Deltas for identical stores.
func (r *Remote) ListSince(since int64) (Delta, error) {
	resp, err := r.do(http.MethodGet, fmt.Sprintf("/cloudapi/datasets?since=%d", since), nil)
	if err != nil {
		return Delta{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Delta{}, decodeError(resp, nil)
	}
	var d deltaResponse
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return Delta{}, err
	}
	return d.Delta, nil
}

// Get implements API.
func (r *Remote) Get(dataset string) (Replica, error) {
	resp, err := r.do(http.MethodGet, "/cloudapi/datasets/replica?dataset="+url.QueryEscape(dataset), nil)
	if err != nil {
		return Replica{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return Replica{}, decodeError(resp, ErrNoReplica)
	}
	if resp.StatusCode != http.StatusOK {
		return Replica{}, decodeError(resp, nil)
	}
	var rep Replica
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return Replica{}, err
	}
	return rep, nil
}

// Put implements API.
func (r *Remote) Put(rep Replica) error {
	payload, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	resp, err := r.do(http.MethodPost, "/cloudapi/datasets/replica", strings.NewReader(string(payload)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return decodeError(resp, nil)
	}
	return nil
}

// Delete implements API.
func (r *Remote) Delete(dataset string) error {
	resp, err := r.do(http.MethodDelete, "/cloudapi/datasets/replica?dataset="+url.QueryEscape(dataset), nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil
	case http.StatusNotFound:
		return decodeError(resp, ErrNoReplica)
	}
	return decodeError(resp, nil)
}

var _ API = (*Remote)(nil)
