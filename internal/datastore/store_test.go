package datastore

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"osdc/internal/dfs"
	"osdc/internal/sim"
	"osdc/internal/simdisk"
	"osdc/internal/simnet"
)

// testVolume builds a small 2-brick volume with the given per-brick
// capacity in bytes.
func testVolume(t *testing.T, e *sim.Engine, name string, capacity int64) *dfs.Volume {
	t.Helper()
	bricks := make([]*dfs.Brick, 2)
	for i := range bricks {
		d := simdisk.New(e, fmt.Sprintf("%s-d%d", name, i), 3072e6, 1136e6, capacity)
		bricks[i] = dfs.NewBrick(fmt.Sprintf("%s-b%d", name, i), fmt.Sprintf("%s-n%d", name, i), d)
	}
	vol, err := dfs.NewVolume(e, name, 2, dfs.Version33, bricks)
	if err != nil {
		t.Fatal(err)
	}
	return vol
}

func testStore(t *testing.T, e *sim.Engine, name string, capacity int64) *Store {
	t.Helper()
	return NewStore(name, simnet.SiteChicagoKenwood, testVolume(t, e, name, capacity))
}

func TestStorePutGetListDelete(t *testing.T) {
	e := sim.NewEngine(1)
	s := testStore(t, e, "s1", 1<<40)

	if _, err := s.Get("nope"); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("Get(missing) = %v, want ErrNoReplica", err)
	}
	for _, r := range []Replica{
		{Dataset: "B Set", SizeBytes: 2 << 30, Version: 1},
		{Dataset: "A Set", SizeBytes: 1 << 30, Version: 1},
	} {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Get("A Set")
	if err != nil {
		t.Fatal(err)
	}
	if got.Checksum != Fingerprint("A Set", 1) {
		t.Fatalf("Put did not default the checksum: %q", got.Checksum)
	}
	list, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Dataset != "A Set" || list[1].Dataset != "B Set" {
		t.Fatalf("List = %+v, want name-sorted pair", list)
	}
	if s.TotalBytes() != 3<<30 {
		t.Fatalf("TotalBytes = %d", s.TotalBytes())
	}

	// Bytes are accounted on the volume (replica 2 doubles raw need).
	if used := s.vol.UsedBytes(); used != 3<<30 {
		t.Fatalf("volume UsedBytes = %d, want %d", used, int64(3<<30))
	}
	if err := s.Delete("B Set"); err != nil {
		t.Fatal(err)
	}
	if used := s.vol.UsedBytes(); used != 1<<30 {
		t.Fatalf("volume UsedBytes after delete = %d, want %d", used, int64(1<<30))
	}
	if err := s.Delete("B Set"); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("double delete = %v, want ErrNoReplica", err)
	}

	// Replacing a replica releases the old bytes first.
	if err := s.Put(Replica{Dataset: "A Set", SizeBytes: 4 << 30, Version: 2}); err != nil {
		t.Fatal(err)
	}
	if used := s.vol.UsedBytes(); used != 4<<30 {
		t.Fatalf("volume UsedBytes after replace = %d, want %d", used, int64(4<<30))
	}
}

func TestStoreRejectsInvalidAndFull(t *testing.T) {
	e := sim.NewEngine(1)
	// Per-brick capacity 1 GB → the volume holds ~2 GB of replica-2 data.
	s := testStore(t, e, "tiny", 1<<30)

	for _, bad := range []Replica{
		{Dataset: "", SizeBytes: 1, Version: 1},
		{Dataset: "x", SizeBytes: 0, Version: 1},
		{Dataset: "x", SizeBytes: 1, Version: 0},
	} {
		if err := s.Put(bad); err == nil {
			t.Fatalf("Put(%+v) accepted an invalid replica", bad)
		}
	}
	if err := s.Put(Replica{Dataset: "big", SizeBytes: 8 << 30, Version: 1}); err == nil {
		t.Fatal("Put onto a full volume succeeded")
	}
	if s.Count() != 0 {
		t.Fatalf("failed puts left %d replicas", s.Count())
	}
}

// TestStoreFailedReplaceKeepsAccounting: a replace that exceeds the
// volume leaves the old replica and the disk books untouched — the old
// release-then-alloc path corrupted accounting and made the eventual
// Delete double-release (panicking the server).
func TestStoreFailedReplaceKeepsAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	s := testStore(t, e, "repl", 4<<30) // per-brick 4 GB
	if err := s.Put(Replica{Dataset: "Set", SizeBytes: 2 << 30, Version: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Replica{Dataset: "Set", SizeBytes: 16 << 30, Version: 2}); err == nil {
		t.Fatal("oversized replace succeeded")
	}
	got, err := s.Get("Set")
	if err != nil || got.Version != 1 || got.SizeBytes != 2<<30 {
		t.Fatalf("failed replace clobbered the replica: %+v, %v", got, err)
	}
	if used := s.vol.UsedBytes(); used != 2<<30 {
		t.Fatalf("volume UsedBytes after failed replace = %d, want %d", used, int64(2<<30))
	}
	// The delete releases exactly once; accounting returns to zero.
	if err := s.Delete("Set"); err != nil {
		t.Fatal(err)
	}
	if used := s.vol.UsedBytes(); used != 0 {
		t.Fatalf("volume UsedBytes after delete = %d, want 0", used)
	}
}

func TestStoreAdoptSkipsVolumeAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	s := testStore(t, e, "root", 1<<40)
	if err := s.Adopt(Replica{Dataset: "Master", SizeBytes: 10 << 30, Version: 1}); err != nil {
		t.Fatal(err)
	}
	if used := s.vol.UsedBytes(); used != 0 {
		t.Fatalf("Adopt wrote %d bytes to the volume", used)
	}
	if got, err := s.Get("Master"); err != nil || got.Checksum != Fingerprint("Master", 1) {
		t.Fatalf("adopted replica = %+v, %v", got, err)
	}
}

// TestStoreConcurrentAccess drives every store method from racing
// goroutines — the coordinator lists while the wire plane puts.
func TestStoreConcurrentAccess(t *testing.T) {
	e := sim.NewEngine(1)
	s := testStore(t, e, "conc", 1<<44)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := fmt.Sprintf("set-%d", w)
			for i := 0; i < 100; i++ {
				_ = s.Put(Replica{Dataset: name, SizeBytes: 1 << 20, Version: 1})
				_, _ = s.Get(name)
				_, _ = s.List()
				s.TotalBytes()
				_ = s.Delete(name)
			}
		}()
	}
	wg.Wait()
	if s.Count() != 0 {
		t.Fatalf("Count = %d after balanced put/delete", s.Count())
	}
}

func TestFingerprintDistinguishesVersions(t *testing.T) {
	a, b := Fingerprint("X", 1), Fingerprint("X", 2)
	if a == b || a == Fingerprint("Y", 1) || len(a) != 32 {
		t.Fatalf("fingerprints not distinct: %q %q", a, b)
	}
}

// TestListSinceDeltas walks the delta protocol through a put/delete
// history: a fresh client resets, incremental calls see exactly the churn,
// and a client ahead of the store resets again.
func TestListSinceDeltas(t *testing.T) {
	e := sim.NewEngine(4)
	s := testStore(t, e, "delta", 1<<40)

	// Empty store, fresh client: an empty Reset snapshot at revision 0.
	d, err := s.ListSince(0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Reset || d.Rev != 0 || len(d.Changed) != 0 || len(d.Removed) != 0 {
		t.Fatalf("ListSince(0) on empty store = %+v", d)
	}

	for _, name := range []string{"B Set", "A Set", "C Set"} {
		if err := s.Put(Replica{Dataset: name, SizeBytes: 1 << 30, Version: 1}); err != nil {
			t.Fatal(err)
		}
	}
	d, err = s.ListSince(0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Reset || d.Rev != 3 || len(d.Changed) != 3 {
		t.Fatalf("snapshot after 3 puts = %+v", d)
	}
	if d.Changed[0].Dataset != "A Set" || d.Changed[2].Dataset != "C Set" {
		t.Fatalf("snapshot not sorted by dataset: %+v", d.Changed)
	}

	// Churn: one replace, one delete. The delta from rev 3 holds exactly
	// those two, nothing else.
	if err := s.Put(Replica{Dataset: "B Set", SizeBytes: 2 << 30, Version: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("C Set"); err != nil {
		t.Fatal(err)
	}
	d, err = s.ListSince(3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Reset || d.Rev != 5 {
		t.Fatalf("delta after churn = %+v", d)
	}
	if len(d.Changed) != 1 || d.Changed[0].Dataset != "B Set" || d.Changed[0].Version != 2 {
		t.Fatalf("Changed = %+v, want the replaced B Set v2", d.Changed)
	}
	if len(d.Removed) != 1 || d.Removed[0] != "C Set" {
		t.Fatalf("Removed = %+v, want [C Set]", d.Removed)
	}

	// Caught up: an empty delta.
	d, err = s.ListSince(5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Reset || d.Rev != 5 || len(d.Changed) != 0 || len(d.Removed) != 0 {
		t.Fatalf("caught-up delta = %+v", d)
	}

	// A re-put of a deleted dataset clears its grave: the delta reports it
	// changed, not removed.
	if err := s.Put(Replica{Dataset: "C Set", SizeBytes: 1 << 30, Version: 3}); err != nil {
		t.Fatal(err)
	}
	d, err = s.ListSince(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Changed) != 1 || d.Changed[0].Dataset != "C Set" || len(d.Removed) != 0 {
		t.Fatalf("delta after re-put = %+v", d)
	}

	// A client from the future (store restarted under it) resets.
	d, err = s.ListSince(999)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Reset || d.Rev != s.Rev() || len(d.Changed) != 3 {
		t.Fatalf("ahead-of-store delta = %+v", d)
	}
}

// TestListSinceTracksAdopt: adopted replicas (master copies) appear in
// deltas like put ones — the coordinator observes them the same way.
func TestListSinceTracksAdopt(t *testing.T) {
	e := sim.NewEngine(5)
	s := testStore(t, e, "adopt", 1<<40)
	if err := s.Adopt(Replica{Dataset: "Master Set", SizeBytes: 4 << 30, Version: 1}); err != nil {
		t.Fatal(err)
	}
	d, err := s.ListSince(0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rev != 1 || len(d.Changed) != 1 || d.Changed[0].Dataset != "Master Set" {
		t.Fatalf("delta after Adopt = %+v", d)
	}
}
