package iaas

// Shard-homed instance lifecycle: every per-instance timer (boot,
// heartbeat, stop) must live on the engine its instance ID hashes to, and
// every cancellation must resolve that same engine — never the anchor.

import (
	"fmt"
	"testing"

	"osdc/internal/sim"
)

func shardedCloud(k int) (*sim.ShardSet, *Cloud) {
	set := sim.NewShardSet(5, k)
	c := NewCloud(set.Anchor(), "adler", "openstack", "chicago-kenwood")
	c.AddRack("r1", 64)
	c.SetShards(set)
	return set, c
}

// launchOnShard launches instances until one's ID hashes to the wanted
// shard, returning it.
func launchOnShard(t *testing.T, set *sim.ShardSet, c *Cloud, user string, shard int) *Instance {
	t.Helper()
	for i := 0; i < 256; i++ {
		inst, err := c.Launch(user, fmt.Sprintf("vm%03d", i), "m1.small", "")
		if err != nil {
			t.Fatal(err)
		}
		if set.ShardIndex(inst.ID) == shard {
			return inst
		}
	}
	t.Fatalf("no instance ID hashed to shard %d in 256 launches", shard)
	return nil
}

// TestStopResolvesOwningShard is the regression for stop/terminate
// cancellation resolving the anchor engine instead of the owning shard:
// an instance booted on shard 3 of a K=8 kernel must reach SHUTOFF after
// a Stop, which requires the stop timer to fire on shard 3's clock.
func TestStopResolvesOwningShard(t *testing.T) {
	set, c := shardedCloud(8)
	c.SetQuota("alice", Quota{MaxInstances: 256, MaxCores: 256})
	inst := launchOnShard(t, set, c, "alice", 3)

	set.RunFor(120) // boot fires on shard 3, not the anchor
	booted, ok := c.Instance(inst.ID)
	if !ok || booted.State != StateActive {
		t.Fatalf("instance on shard 3 after whole-kernel advance = %+v, want ACTIVE", booted)
	}
	if err := c.Stop("alice", inst.ID); err != nil {
		t.Fatal(err)
	}
	set.RunFor(float64(stopDelay) + 1)
	stopped, ok := c.Instance(inst.ID)
	if !ok || stopped.State != StateShutoff {
		t.Fatalf("instance after stop = %+v, want SHUTOFF", stopped)
	}
}

// TestStopDuringBuildCancelsBootOnOwningShard: stopping a still-building
// off-anchor instance must cancel the pending boot on the shard that
// scheduled it — if the cancel resolved the anchor, the orphaned boot
// would flip the instance back to ACTIVE at t=90.
func TestStopDuringBuildCancelsBootOnOwningShard(t *testing.T) {
	set, c := shardedCloud(8)
	c.SetQuota("alice", Quota{MaxInstances: 256, MaxCores: 256})
	inst := launchOnShard(t, set, c, "alice", 3)

	if err := c.Stop("alice", inst.ID); err != nil {
		t.Fatal(err)
	}
	set.RunFor(200) // well past the 90 s boot window
	got, ok := c.Instance(inst.ID)
	if !ok || got.State != StateShutoff {
		t.Fatalf("stopped-during-BUILD instance = %+v, want SHUTOFF (boot not canceled on owner)", got)
	}
}

// TestShardHomedTimersNeedWholeKernel pins the ownership rule itself:
// advancing only the anchor leaves off-anchor instances frozen in BUILD,
// and a whole-kernel advance boots them all.
func TestShardHomedTimersNeedWholeKernel(t *testing.T) {
	set, c := shardedCloud(8)
	c.SetHeartbeat(60)
	c.SetQuota("alice", Quota{MaxInstances: 256, MaxCores: 256})
	for i := 0; i < 32; i++ {
		if _, err := c.Launch("alice", fmt.Sprintf("vm%03d", i), "m1.small", ""); err != nil {
			t.Fatal(err)
		}
	}
	populated := 0
	for _, n := range c.ShardPopulation() {
		if n > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Fatalf("32 instances collapsed onto %d shard bucket(s)", populated)
	}

	set.Anchor().RunFor(120)
	frozen := 0
	for _, inst := range c.Instances("alice") {
		if set.ShardIndex(inst.ID) != 0 && inst.State == StateBuild {
			frozen++
		}
	}
	if frozen == 0 {
		t.Fatal("anchor-only advance booted off-anchor instances; timers are not shard-homed")
	}

	set.RunFor(120)
	for _, inst := range c.Instances("alice") {
		if inst.State != StateActive {
			t.Fatalf("instance %s = %s after whole-kernel advance, want ACTIVE", inst.ID, inst.State)
		}
	}
	if c.Heartbeats() == 0 {
		t.Fatal("no usage heartbeats fired across the sharded kernel")
	}
}
