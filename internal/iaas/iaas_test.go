package iaas

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"osdc/internal/sim"
)

func testCloud(hosts int) (*sim.Engine, *Cloud) {
	e := sim.NewEngine(5)
	c := NewCloud(e, "adler", "openstack", "chicago-kenwood")
	c.AddRack("r1", hosts)
	return e, c
}

func TestLaunchLifecycle(t *testing.T) {
	e, c := testCloud(2)
	c.SetQuota("alice", Quota{MaxInstances: 10, MaxCores: 64})
	inst, err := c.Launch("alice", "vm1", "m1.large", "")
	if err != nil {
		t.Fatal(err)
	}
	if inst.State != StateBuild {
		t.Fatalf("state = %s, want BUILD", inst.State)
	}
	e.RunFor(120)
	// Launch returned a point-in-time copy; re-fetch to see the boot.
	booted, ok := c.Instance(inst.ID)
	if !ok || booted.State != StateActive {
		t.Fatalf("state after boot = %+v, want ACTIVE", booted)
	}
	if c.UsedCores() != 4 {
		t.Fatalf("used cores = %d, want 4", c.UsedCores())
	}
	e.RunFor(3600)
	if err := c.Terminate("alice", inst.ID); err != nil {
		t.Fatal(err)
	}
	gone, ok := c.Instance(inst.ID)
	if !ok || gone.State != StateTerminated {
		t.Fatalf("instance after terminate = %+v, want TERMINATED", gone)
	}
	if c.UsedCores() != 0 {
		t.Fatalf("cores not released: %d", c.UsedCores())
	}
	// Core-seconds: 4 cores for ~3720 s.
	cs := gone.CoreSecondsUntil(e.Now())
	if cs < 4*3700 || cs > 4*3740 {
		t.Fatalf("core-seconds = %v, want ~14880", cs)
	}
}

func TestFreeTierQuotaEnforced(t *testing.T) {
	_, c := testCloud(4)
	// Default free tier: 2 instances, 4 cores.
	if _, err := c.Launch("bob", "a", "m1.medium", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Launch("bob", "b", "m1.medium", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Launch("bob", "c", "m1.small", ""); err == nil {
		t.Fatal("third instance must exceed free tier")
	} else if _, ok := err.(ErrQuota); !ok {
		t.Fatalf("got %T, want ErrQuota", err)
	}
	if c.Rejections == 0 {
		t.Fatal("rejection not counted")
	}
}

func TestCoreQuotaSeparateFromInstanceQuota(t *testing.T) {
	_, c := testCloud(4)
	if _, err := c.Launch("eve", "a", "m1.large", ""); err != nil { // 4 cores = whole quota
		t.Fatal(err)
	}
	if _, err := c.Launch("eve", "b", "m1.small", ""); err == nil {
		t.Fatal("core quota not enforced")
	}
}

func TestCapacityExhaustion(t *testing.T) {
	_, c := testCloud(1) // 8 cores total
	c.SetQuota("u", Quota{MaxInstances: 100, MaxCores: 1000})
	for i := 0; i < 2; i++ {
		if _, err := c.Launch("u", "x", "m1.xlarge", ""); err != nil && i == 0 {
			t.Fatal(err)
		}
	}
	_, err := c.Launch("u", "y", "m1.small", "")
	if err == nil {
		t.Fatal("overcommit allowed")
	}
	if _, ok := err.(ErrCapacity); !ok {
		t.Fatalf("got %T, want ErrCapacity", err)
	}
}

func TestSchedulerSpreadsLoad(t *testing.T) {
	_, c := testCloud(4)
	c.SetQuota("u", Quota{MaxInstances: 100, MaxCores: 1000})
	hostsUsed := make(map[string]bool)
	for i := 0; i < 4; i++ {
		inst, err := c.Launch("u", "x", "m1.small", "")
		if err != nil {
			t.Fatal(err)
		}
		hostsUsed[inst.Host] = true
	}
	if len(hostsUsed) != 4 {
		t.Fatalf("4 small VMs used %d hosts, want 4 (spread)", len(hostsUsed))
	}
}

func TestImageVisibility(t *testing.T) {
	_, c := testCloud(1)
	c.RegisterImage(Image{Name: "ubuntu-12.04", Public: true, Portable: true})
	c.RegisterImage(Image{Name: "private-pipeline", Owner: "alice"})
	if n := len(c.Images("alice")); n != 2 {
		t.Fatalf("alice sees %d images, want 2", n)
	}
	if n := len(c.Images("bob")); n != 1 {
		t.Fatalf("bob sees %d images, want 1", n)
	}
}

func TestLaunchPrivateImageDenied(t *testing.T) {
	_, c := testCloud(1)
	img := c.RegisterImage(Image{Name: "secret", Owner: "alice"})
	if _, err := c.Launch("bob", "vm", "m1.small", img.ID); err == nil {
		t.Fatal("bob launched alice's private image")
	}
	if _, err := c.Launch("alice", "vm", "m1.small", img.ID); err != nil {
		t.Fatal(err)
	}
}

func TestRunningByUserPollShape(t *testing.T) {
	_, c := testCloud(4)
	c.SetQuota("u1", Quota{MaxInstances: 10, MaxCores: 100})
	if _, err := c.Launch("u1", "a", "m1.large", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Launch("u1", "b", "m1.small", ""); err != nil {
		t.Fatal(err)
	}
	poll := c.RunningByUser()
	if v := poll["u1"]; v[0] != 2 || v[1] != 5 {
		t.Fatalf("poll = %v, want {2 instances, 5 cores}", v)
	}
}

// --- Nova API ---

func novaServerFor(t *testing.T) (*httptest.Server, *Cloud, *sim.Engine) {
	t.Helper()
	e, c := testCloud(4)
	c.SetQuota("alice", Quota{MaxInstances: 10, MaxCores: 100})
	srv := httptest.NewServer(&NovaAPI{Cloud: c})
	t.Cleanup(srv.Close)
	return srv, c, e
}

func novaDo(t *testing.T, method, url, user string, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if user != "" {
		req.Header.Set("X-Auth-User", user)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestNovaCreateListDelete(t *testing.T) {
	srv, _, _ := novaServerFor(t)
	resp := novaDo(t, "POST", srv.URL+"/v2/servers", "alice",
		`{"server":{"name":"vm1","flavorRef":"m1.small"}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	var created struct {
		Server NovaServer `json:"server"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if created.Server.ID == "" {
		t.Fatal("no server id")
	}

	resp = novaDo(t, "GET", srv.URL+"/v2/servers", "alice", "")
	var list struct {
		Servers []NovaServer `json:"servers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Servers) != 1 || list.Servers[0].Name != "vm1" {
		t.Fatalf("list = %+v", list.Servers)
	}

	resp = novaDo(t, "DELETE", srv.URL+"/v2/servers/"+created.Server.ID, "alice", "")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestNovaAuthRequired(t *testing.T) {
	srv, _, _ := novaServerFor(t)
	resp := novaDo(t, "GET", srv.URL+"/v2/servers", "", "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d, want 401", resp.StatusCode)
	}
}

func TestNovaQuotaMapsTo403(t *testing.T) {
	srv, _, _ := novaServerFor(t)
	for i := 0; i < 2; i++ {
		novaDo(t, "POST", srv.URL+"/v2/servers", "bob", `{"server":{"name":"x","flavorRef":"m1.medium"}}`).Body.Close()
	}
	resp := novaDo(t, "POST", srv.URL+"/v2/servers", "bob", `{"server":{"name":"x","flavorRef":"m1.small"}}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("status = %d, want 403", resp.StatusCode)
	}
}

func TestNovaFlavorsEndpoint(t *testing.T) {
	srv, _, _ := novaServerFor(t)
	resp := novaDo(t, "GET", srv.URL+"/v2/flavors", "alice", "")
	defer resp.Body.Close()
	var out struct {
		Flavors []NovaFlavor `json:"flavors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Flavors) != 4 {
		t.Fatalf("flavors = %d, want 4", len(out.Flavors))
	}
}

// --- Eucalyptus API ---

func TestEucaRunDescribeTerminate(t *testing.T) {
	e := sim.NewEngine(6)
	c := NewCloud(e, "sullivan", "eucalyptus", "chicago-nu")
	c.AddRack("r", 2)
	c.SetQuota("alice", Quota{MaxInstances: 10, MaxCores: 100})
	srv := httptest.NewServer(&EucaAPI{Cloud: c})
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/?Action=RunInstances&AWSAccessKeyId=alice&InstanceType=m1.small&KeyName=myvm")
	if err != nil {
		t.Fatal(err)
	}
	var run RunInstancesResponse
	if err := xml.NewDecoder(resp.Body).Decode(&run); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(run.Items) != 1 || run.Items[0].StateName != "pending" {
		t.Fatalf("run = %+v", run)
	}
	id := run.Items[0].InstanceID

	resp, err = http.Get(srv.URL + "/?Action=DescribeInstances&AWSAccessKeyId=alice")
	if err != nil {
		t.Fatal(err)
	}
	var desc DescribeInstancesResponse
	if err := xml.NewDecoder(resp.Body).Decode(&desc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(desc.Reservations) != 1 || len(desc.Reservations[0].Items) != 1 {
		t.Fatalf("describe = %+v", desc)
	}

	resp, err = http.Get(srv.URL + "/?Action=TerminateInstances&AWSAccessKeyId=alice&InstanceId.1=" + id)
	if err != nil {
		t.Fatal(err)
	}
	var term TerminateInstancesResponse
	if err := xml.NewDecoder(resp.Body).Decode(&term); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if term.State != "terminated" {
		t.Fatalf("terminate state = %s", term.State)
	}
}

func TestEucaResponsesAreXML(t *testing.T) {
	e := sim.NewEngine(6)
	c := NewCloud(e, "s", "eucalyptus", "x")
	c.AddRack("r", 1)
	srv := httptest.NewServer(&EucaAPI{Cloud: c})
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/?Action=DescribeImages&AWSAccessKeyId=u")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/xml" {
		t.Fatalf("content type = %s, want text/xml", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "<?xml") {
		t.Fatal("no XML header in response")
	}
}

func TestEucaUnknownAction(t *testing.T) {
	e := sim.NewEngine(6)
	c := NewCloud(e, "s", "eucalyptus", "x")
	srv := httptest.NewServer(&EucaAPI{Cloud: c})
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/?Action=Nonsense&AWSAccessKeyId=u")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}
