package iaas

// Incremental usage accounting: the per-shard per-user counters must
// stay equal to a full instance-walk recount through every lifecycle
// transition, the per-user index must list exactly what the full walk
// lists, and UsageSince must report precisely the churn between two
// revisions — including removing a user whose last instance terminated.

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// assertCountersMatchScan requires the counter merge and the full-walk
// recount to agree exactly.
func assertCountersMatchScan(t *testing.T, c *Cloud, when string) {
	t.Helper()
	fast, slow := c.RunningByUser(), c.RunningByUserScan()
	if !reflect.DeepEqual(fast, slow) {
		t.Fatalf("%s: counters diverged from recount:\ncounters: %v\nscan    : %v", when, fast, slow)
	}
}

func TestRunningByUserCountersMatchScan(t *testing.T) {
	for _, k := range []int{1, 8} {
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			set, c := shardedCloud(k)
			c.SetQuota("alice", Quota{MaxInstances: 64, MaxCores: 64})
			c.SetQuota("bob", Quota{MaxInstances: 64, MaxCores: 64})
			assertCountersMatchScan(t, c, "empty cloud")

			var ids []string
			for i := 0; i < 12; i++ {
				user := "alice"
				if i%3 == 0 {
					user = "bob"
				}
				inst, err := c.Launch(user, fmt.Sprintf("vm%02d", i), "m1.small", "")
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, inst.ID)
			}
			assertCountersMatchScan(t, c, "after launches (BUILD)")

			set.RunFor(120) // boots complete
			assertCountersMatchScan(t, c, "after boot")

			// Stop a few: SHUTOFF leaves the running footprint.
			for _, id := range ids[:4] {
				inst, _ := c.Instance(id)
				if err := c.Stop(inst.User, id); err != nil {
					t.Fatal(err)
				}
			}
			set.RunFor(float64(stopDelay) + 1)
			assertCountersMatchScan(t, c, "after stops")

			// Terminate a mix of SHUTOFF and ACTIVE instances.
			for _, id := range ids[2:8] {
				inst, _ := c.Instance(id)
				if err := c.Terminate(inst.User, id); err != nil {
					t.Fatal(err)
				}
			}
			assertCountersMatchScan(t, c, "after terminates")

			// Drain everything: both maps must go empty, not zero-valued.
			for _, id := range ids {
				inst, _ := c.Instance(id)
				_ = c.Terminate(inst.User, id)
			}
			assertCountersMatchScan(t, c, "after full drain")
			if n := len(c.RunningByUser()); n != 0 {
				t.Fatalf("drained cloud still reports %d users", n)
			}
		})
	}
}

func TestInstancesByUserIndex(t *testing.T) {
	set, c := shardedCloud(8)
	c.SetQuota("alice", Quota{MaxInstances: 32, MaxCores: 32})
	c.SetQuota("bob", Quota{MaxInstances: 32, MaxCores: 32})
	for i := 0; i < 10; i++ {
		user := "alice"
		if i%2 == 1 {
			user = "bob"
		}
		if _, err := c.Launch(user, fmt.Sprintf("vm%02d", i), "m1.small", ""); err != nil {
			t.Fatal(err)
		}
	}
	set.RunFor(120)
	// Terminate one of alice's: the terminated record must still list,
	// exactly as the full walk lists it.
	victim := c.Instances("alice")[0]
	if err := c.Terminate("alice", victim.ID); err != nil {
		t.Fatal(err)
	}

	for _, user := range []string{"alice", "bob", "nobody"} {
		var want []*Instance
		for _, i := range c.Instances("") {
			if i.User == user {
				want = append(want, i)
			}
		}
		got := c.Instances(user)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Instances(%q) diverged from the full walk:\nindex: %+v\nwalk : %+v", user, got, want)
		}
	}
}

func TestUsageSinceDeltaSemantics(t *testing.T) {
	set, c := shardedCloud(8)
	c.SetQuota("alice", Quota{MaxInstances: 32, MaxCores: 32})
	c.SetQuota("bob", Quota{MaxInstances: 32, MaxCores: 32})

	// A fresh caller (since 0) gets a Reset snapshot, even when empty.
	d := c.UsageSince(0)
	if !d.Reset || len(d.Changed) != 0 {
		t.Fatalf("empty-cloud UsageSince(0) = %+v, want empty Reset", d)
	}

	a1, err := c.Launch("alice", "a1", "m1.small", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Launch("bob", "b1", "m1.small", ""); err != nil {
		t.Fatal(err)
	}
	d = c.UsageSince(0)
	if !d.Reset || len(d.Changed) != 2 {
		t.Fatalf("UsageSince(0) = %+v, want Reset with 2 users", d)
	}
	rev := d.Rev

	// Nothing changed: the delta is empty at the same rev.
	d = c.UsageSince(rev)
	if d.Reset || len(d.Changed) != 0 || len(d.Removed) != 0 || d.Rev != rev {
		t.Fatalf("quiescent UsageSince(%d) = %+v, want empty", rev, d)
	}

	// One more launch for alice: only alice appears, with her absolute
	// footprint.
	if _, err := c.Launch("alice", "a2", "m1.medium", ""); err != nil {
		t.Fatal(err)
	}
	d = c.UsageSince(rev)
	if d.Reset || len(d.Removed) != 0 {
		t.Fatalf("UsageSince after launch = %+v", d)
	}
	if len(d.Changed) != 1 || d.Changed["alice"] != [2]int{2, 3} {
		t.Fatalf("changed = %v, want alice with 2 instances / 3 cores", d.Changed)
	}
	rev = d.Rev

	// Terminating bob's only instance removes him from the next delta —
	// the regression this PR pins: a drained user must not be silently
	// retained (he would keep accruing forever).
	bobs := c.Instances("bob")
	if err := c.Terminate("bob", bobs[0].ID); err != nil {
		t.Fatal(err)
	}
	d = c.UsageSince(rev)
	if len(d.Changed) != 0 || !reflect.DeepEqual(d.Removed, []string{"bob"}) {
		t.Fatalf("delta after bob drains = %+v, want Removed=[bob]", d)
	}
	rev = d.Rev

	// A SHUTOFF instance keeps its allocation but leaves the running
	// footprint: stopping one of alice's reports her reduced absolute
	// value.
	if err := c.Stop("alice", a1.ID); err != nil {
		t.Fatal(err)
	}
	set.RunFor(float64(stopDelay) + 1)
	d = c.UsageSince(rev)
	if len(d.Changed) != 1 || d.Changed["alice"] != [2]int{1, 2} {
		t.Fatalf("delta after stop = %+v, want alice at 1 instance / 2 cores", d)
	}
	rev = d.Rev

	// A caller ahead of the cloud (a restart under it) gets a Reset
	// resync carrying the full population.
	d = c.UsageSince(rev + 1000)
	if !d.Reset || len(d.Changed) != 1 {
		t.Fatalf("ahead-of-rev UsageSince = %+v, want Reset with alice", d)
	}
}

// TestUsageCountersShardedStorm is the K=8 -race invariance check: full
// lifecycles on every shard racing boot/stop timers on eight clock
// goroutines and concurrent counter reads, with counter-vs-recount
// equality demanded at the join.
func TestUsageCountersShardedStorm(t *testing.T) {
	set, c := shardedCloud(8)
	set.Share() // API goroutines race the clock goroutines below
	const workers = 6
	for w := 0; w < workers; w++ {
		c.SetQuota(fmt.Sprintf("u%d", w), Quota{MaxInstances: 64, MaxCores: 64})
	}

	stop := make(chan struct{})
	var driver sync.WaitGroup
	driver.Add(1)
	go func() {
		defer driver.Done()
		for {
			select {
			case <-stop:
				return
			default:
				set.RunFor(7)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			user := fmt.Sprintf("u%d", w)
			for i := 0; i < 40; i++ {
				inst, err := c.Launch(user, fmt.Sprintf("%s-vm%02d", user, i), "m1.small", "")
				if err != nil {
					continue // capacity contention is expected
				}
				switch i % 3 {
				case 0:
					_ = c.Stop(user, inst.ID)
				case 1:
					_ = c.Terminate(user, inst.ID)
				}
				// Race the read paths against the transitions.
				_ = c.RunningByUser()
				_ = c.UsageSince(0)
				_ = c.Instances(user)
			}
		}()
	}
	wg.Wait()
	close(stop)
	driver.Wait()

	// Settle pending boot/stop timers, then demand exact equality.
	set.RunFor(200)
	assertCountersMatchScan(t, c, "at join")
	d := c.UsageSince(0)
	want := c.RunningByUser()
	if len(want) == 0 {
		if len(d.Changed) != 0 {
			t.Fatalf("full delta reports %v on a drained cloud", d.Changed)
		}
	} else if !reflect.DeepEqual(map[string][2]int(d.Changed), want) {
		t.Fatalf("full delta diverged from counters:\ndelta   : %v\ncounters: %v", d.Changed, want)
	}
}
