package iaas

import (
	"encoding/xml"
	"fmt"
	"net/http"
)

// EucaAPI serves a Eucalyptus-style EC2 query API over a Cloud: actions are
// query parameters, responses are XML. This is the second wire dialect
// Tukey's translation proxies must handle (§5.2); it is deliberately
// different in shape from NovaAPI (GET+query vs REST+JSON, XML vs JSON,
// reservation wrapping vs flat lists).
//
// Supported actions: RunInstances, DescribeInstances, StopInstances,
// TerminateInstances, DescribeImages. The caller identity arrives as
// AWSAccessKeyId.
type EucaAPI struct {
	Cloud *Cloud
}

type ec2Instance struct {
	XMLName      xml.Name `xml:"item"`
	InstanceID   string   `xml:"instanceId"`
	ImageID      string   `xml:"imageId"`
	InstanceType string   `xml:"instanceType"`
	StateName    string   `xml:"instanceState>name"`
	KeyName      string   `xml:"keyName"`
}

type ec2Reservation struct {
	XMLName xml.Name      `xml:"item"`
	OwnerID string        `xml:"ownerId"`
	Items   []ec2Instance `xml:"instancesSet>item"`
}

// RunInstancesResponse is the EC2 wire response for RunInstances.
type RunInstancesResponse struct {
	XMLName xml.Name      `xml:"RunInstancesResponse"`
	Items   []ec2Instance `xml:"instancesSet>item"`
}

// DescribeInstancesResponse is the EC2 wire response for DescribeInstances.
type DescribeInstancesResponse struct {
	XMLName      xml.Name         `xml:"DescribeInstancesResponse"`
	Reservations []ec2Reservation `xml:"reservationSet>item"`
}

// TerminateInstancesResponse is the EC2 wire response.
type TerminateInstancesResponse struct {
	XMLName xml.Name `xml:"TerminateInstancesResponse"`
	ID      string   `xml:"instancesSet>item>instanceId"`
	State   string   `xml:"instancesSet>item>currentState>name"`
}

// StopInstancesResponse is the EC2 wire response.
type StopInstancesResponse struct {
	XMLName xml.Name `xml:"StopInstancesResponse"`
	ID      string   `xml:"instancesSet>item>instanceId"`
	State   string   `xml:"instancesSet>item>currentState>name"`
}

type ec2Image struct {
	XMLName xml.Name `xml:"item"`
	ImageID string   `xml:"imageId"`
	Name    string   `xml:"name"`
	Public  bool     `xml:"isPublic"`
}

// DescribeImagesResponse is the EC2 wire response.
type DescribeImagesResponse struct {
	XMLName xml.Name   `xml:"DescribeImagesResponse"`
	Images  []ec2Image `xml:"imagesSet>item"`
}

type ec2Error struct {
	XMLName xml.Name `xml:"Response"`
	Code    string   `xml:"Errors>Error>Code"`
	Message string   `xml:"Errors>Error>Message"`
}

// ec2State maps internal states to EC2 names.
func ec2State(s InstanceState) string {
	switch s {
	case StateBuild:
		return "pending"
	case StateActive:
		return "running"
	case StateShutoff:
		return "stopped"
	case StateTerminated:
		return "terminated"
	default:
		return "error"
	}
}

func writeXML(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "text/xml")
	w.WriteHeader(code)
	fmt.Fprint(w, xml.Header)
	_ = xml.NewEncoder(w).Encode(v)
}

func ec2Fail(w http.ResponseWriter, code int, ecode, msg string) {
	writeXML(w, code, ec2Error{Code: ecode, Message: msg})
}

// ServeHTTP implements http.Handler.
func (a *EucaAPI) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	user := q.Get("AWSAccessKeyId")
	if user == "" {
		ec2Fail(w, http.StatusUnauthorized, "AuthFailure", "missing AWSAccessKeyId")
		return
	}
	switch q.Get("Action") {
	case "RunInstances":
		flavor := q.Get("InstanceType")
		image := q.Get("ImageId")
		name := q.Get("KeyName")
		inst, err := a.Cloud.Launch(user, name, flavor, image)
		if err != nil {
			code, ecode := http.StatusBadRequest, "InvalidParameterValue"
			switch err.(type) {
			case ErrQuota:
				code, ecode = http.StatusForbidden, "InstanceLimitExceeded"
			case ErrCapacity:
				code, ecode = http.StatusConflict, "InsufficientInstanceCapacity"
			}
			ec2Fail(w, code, ecode, err.Error())
			return
		}
		writeXML(w, http.StatusOK, RunInstancesResponse{Items: []ec2Instance{{
			InstanceID: inst.ID, ImageID: inst.ImageID,
			InstanceType: inst.Flavor.Name, StateName: ec2State(inst.State), KeyName: inst.Name,
		}}})

	case "DescribeInstances":
		var items []ec2Instance
		for _, i := range a.Cloud.Instances(user) {
			if i.State == StateTerminated {
				continue
			}
			items = append(items, ec2Instance{
				InstanceID: i.ID, ImageID: i.ImageID,
				InstanceType: i.Flavor.Name, StateName: ec2State(i.State), KeyName: i.Name,
			})
		}
		writeXML(w, http.StatusOK, DescribeInstancesResponse{
			Reservations: []ec2Reservation{{OwnerID: user, Items: items}},
		})

	case "StopInstances":
		id := q.Get("InstanceId.1")
		if err := a.Cloud.Stop(user, id); err != nil {
			ec2Fail(w, http.StatusNotFound, "InvalidInstanceID.NotFound", err.Error())
			return
		}
		writeXML(w, http.StatusOK, StopInstancesResponse{ID: id, State: "stopping"})

	case "TerminateInstances":
		id := q.Get("InstanceId.1")
		if err := a.Cloud.Terminate(user, id); err != nil {
			ec2Fail(w, http.StatusNotFound, "InvalidInstanceID.NotFound", err.Error())
			return
		}
		writeXML(w, http.StatusOK, TerminateInstancesResponse{ID: id, State: "terminated"})

	case "DescribeImages":
		var imgs []ec2Image
		for _, im := range a.Cloud.Images(user) {
			imgs = append(imgs, ec2Image{ImageID: im.ID, Name: im.Name, Public: im.Public})
		}
		writeXML(w, http.StatusOK, DescribeImagesResponse{Images: imgs})

	default:
		ec2Fail(w, http.StatusBadRequest, "InvalidAction", "unknown action "+q.Get("Action"))
	}
}
