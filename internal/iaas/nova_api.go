package iaas

import (
	"encoding/json"
	"net/http"
	"strings"
)

// NovaAPI serves an OpenStack-compute-style JSON API over a Cloud. This is
// the dialect Tukey treats as canonical (§5.2: requests are "based on the
// OpenStack API").
//
// Routes:
//
//	GET    /v2/servers             list the caller's servers
//	POST   /v2/servers             create a server
//	DELETE /v2/servers/{id}        terminate a server
//	POST   /v2/servers/{id}/action server actions ({"os-stop": null})
//	GET    /v2/flavors             list flavors
//	GET    /v2/images              list visible images
//
// Authentication is a bearer-style header, X-Auth-User, injected by the
// middleware after it has mapped the federated identity to per-cloud
// credentials.
type NovaAPI struct {
	Cloud *Cloud
}

// NovaServer is the wire form of an instance.
type NovaServer struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Status string `json:"status"`
	Flavor string `json:"flavorRef"`
	Image  string `json:"imageRef"`
	HostID string `json:"hostId"`
	UserID string `json:"user_id"`
}

// NovaFlavor is the wire form of a flavor.
type NovaFlavor struct {
	Name   string `json:"name"`
	VCPUs  int    `json:"vcpus"`
	RAMMB  int    `json:"ram"`
	DiskGB int    `json:"disk"`
}

// NovaImage is the wire form of an image.
type NovaImage struct {
	ID     string   `json:"id"`
	Name   string   `json:"name"`
	Public bool     `json:"public"`
	Tools  []string `json:"metadata_tools,omitempty"`
}

func novaServer(i *Instance) NovaServer {
	return NovaServer{
		ID: i.ID, Name: i.Name, Status: string(i.State),
		Flavor: i.Flavor.Name, Image: i.ImageID, HostID: i.Host, UserID: i.User,
	}
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func novaError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]map[string]string{"error": {"message": msg}})
}

// ServeHTTP implements http.Handler.
func (a *NovaAPI) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	user := r.Header.Get("X-Auth-User")
	if user == "" {
		novaError(w, http.StatusUnauthorized, "missing X-Auth-User")
		return
	}
	switch {
	case r.URL.Path == "/v2/servers" && r.Method == http.MethodGet:
		var out []NovaServer
		for _, i := range a.Cloud.Instances(user) {
			if i.State != StateTerminated {
				out = append(out, novaServer(i))
			}
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{"servers": out})

	case r.URL.Path == "/v2/servers" && r.Method == http.MethodPost:
		var req struct {
			Server struct {
				Name      string `json:"name"`
				FlavorRef string `json:"flavorRef"`
				ImageRef  string `json:"imageRef"`
			} `json:"server"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			novaError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		inst, err := a.Cloud.Launch(user, req.Server.Name, req.Server.FlavorRef, req.Server.ImageRef)
		if err != nil {
			code := http.StatusBadRequest
			switch err.(type) {
			case ErrQuota:
				code = http.StatusForbidden
			case ErrCapacity:
				code = http.StatusConflict
			}
			novaError(w, code, err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]interface{}{"server": novaServer(inst)})

	case strings.HasPrefix(r.URL.Path, "/v2/servers/") && strings.HasSuffix(r.URL.Path, "/action") && r.Method == http.MethodPost:
		id := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/v2/servers/"), "/action")
		var action map[string]json.RawMessage
		if err := json.NewDecoder(r.Body).Decode(&action); err != nil {
			novaError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		if _, ok := action["os-stop"]; !ok {
			novaError(w, http.StatusBadRequest, "unsupported server action")
			return
		}
		if err := a.Cloud.Stop(user, id); err != nil {
			novaError(w, http.StatusNotFound, err.Error())
			return
		}
		w.WriteHeader(http.StatusAccepted)

	case strings.HasPrefix(r.URL.Path, "/v2/servers/") && r.Method == http.MethodDelete:
		id := strings.TrimPrefix(r.URL.Path, "/v2/servers/")
		if err := a.Cloud.Terminate(user, id); err != nil {
			novaError(w, http.StatusNotFound, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)

	case r.URL.Path == "/v2/flavors" && r.Method == http.MethodGet:
		var out []NovaFlavor
		for _, f := range a.Cloud.Flavors() {
			out = append(out, NovaFlavor{Name: f.Name, VCPUs: f.VCPUs, RAMMB: f.RAMMB, DiskGB: f.DiskGB})
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{"flavors": out})

	case r.URL.Path == "/v2/images" && r.Method == http.MethodGet:
		var out []NovaImage
		for _, img := range a.Cloud.Images(user) {
			out = append(out, NovaImage{ID: img.ID, Name: img.Name, Public: img.Public, Tools: img.Tools})
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{"images": out})

	default:
		novaError(w, http.StatusNotFound, "no route "+r.Method+" "+r.URL.Path)
	}
}
