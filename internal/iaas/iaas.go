// Package iaas implements the OSDC's infrastructure-as-a-service compute
// substrate (paper §3.2, §7): the Eucalyptus- and OpenStack-based utility
// clouds (OSDC-Adler, OSDC-Sullivan) that Tukey provisions VMs on.
//
// The package has a neutral core — hosts, flavors, images, instances, a
// capacity scheduler, per-user quotas and usage counters — plus two real
// HTTP API dialects over that core:
//
//   - NovaAPI (nova_api.go): an OpenStack-compute-style JSON API;
//   - EucaAPI (euca_api.go): a Eucalyptus/EC2-style query API with XML
//     responses.
//
// The two dialects exist so that the Tukey middleware (internal/tukey) has
// real API translation work to do, exactly as the paper describes: "The
// translation proxies take in requests based on the OpenStack API and then
// issue commands to each cloud based on mappings outlined in configuration
// files" (§5.2).
package iaas

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"osdc/internal/sim"
)

// Flavor is an instance size, as in OpenStack flavors / EC2 instance types.
type Flavor struct {
	Name   string
	VCPUs  int
	RAMMB  int
	DiskGB int
}

// DefaultFlavors are the sizes offered across OSDC clouds.
func DefaultFlavors() []Flavor {
	return []Flavor{
		{Name: "m1.small", VCPUs: 1, RAMMB: 2048, DiskGB: 20},
		{Name: "m1.medium", VCPUs: 2, RAMMB: 4096, DiskGB: 40},
		{Name: "m1.large", VCPUs: 4, RAMMB: 8192, DiskGB: 80},
		{Name: "m1.xlarge", VCPUs: 8, RAMMB: 16384, DiskGB: 160},
	}
}

// Image is a bootable machine image. The OSDC curates images that "contain
// the software tools and applications commonly used by a community" (§3.2).
type Image struct {
	ID     string
	Name   string
	SizeGB int
	Tools  []string // preinstalled community pipelines
	Public bool
	Owner  string
	// Portable marks images built to also run on AWS (§9: "OSDC machine
	// images can also run on AWS"), the paper's anti-lock-in stance.
	Portable bool
}

// InstanceState is the VM lifecycle state.
type InstanceState string

// Lifecycle states (OpenStack naming).
const (
	StateBuild      InstanceState = "BUILD"
	StateActive     InstanceState = "ACTIVE"
	StateShutoff    InstanceState = "SHUTOFF"
	StateTerminated InstanceState = "TERMINATED"
	StateError      InstanceState = "ERROR"
)

// Instance is one virtual machine.
type Instance struct {
	ID       string
	Name     string
	User     string
	Flavor   Flavor
	ImageID  string
	Host     string
	State    InstanceState
	Launched sim.Time
	Stopped  sim.Time // valid when terminated/shutoff

	// Timer plumbing, all homed on the shard that owns ID. boot and stop
	// are per-schedule handles: cancelling one locks the engine the event
	// was scheduled on (Handle carries its engine), so a cross-shard Stop
	// or Terminate always cancels on the owning shard, never the anchor.
	// hb is the pooled usage-heartbeat timer; it is owned by the shard's
	// event goroutine and is never cancelled from API goroutines — a beat
	// that finds the instance no longer running simply does not re-arm.
	boot        sim.Handle
	stop        sim.Handle
	hb          *sim.Timer
	stopPending bool
}

// CoreSecondsUntil returns core-seconds consumed up to t (for billing).
func (i *Instance) CoreSecondsUntil(t sim.Time) float64 {
	end := t
	if i.State == StateTerminated || i.State == StateShutoff {
		end = i.Stopped
	}
	if end < i.Launched {
		return 0
	}
	return float64(end-i.Launched) * float64(i.Flavor.VCPUs)
}

// Host is one hypervisor server. The paper's rack unit: 8 cores, 8 TB disk
// per server (§9.1 footnote).
type Host struct {
	Name      string
	Cores     int
	RAMMB     int
	DiskGB    int
	usedCores int
	usedRAM   int
	usedDisk  int
	instances map[string]*Instance
}

// NewHost creates an empty hypervisor.
func NewHost(name string, cores, ramMB, diskGB int) *Host {
	return &Host{Name: name, Cores: cores, RAMMB: ramMB, DiskGB: diskGB,
		instances: make(map[string]*Instance)}
}

// PaperHost returns the paper's standard server: 8 cores, 8 TB disk.
func PaperHost(name string) *Host { return NewHost(name, 8, 49152, 8192) }

func (h *Host) fits(f Flavor) bool {
	return h.usedCores+f.VCPUs <= h.Cores &&
		h.usedRAM+f.RAMMB <= h.RAMMB &&
		h.usedDisk+f.DiskGB <= h.DiskGB
}

// FreeCores returns unallocated cores.
func (h *Host) FreeCores() int { return h.Cores - h.usedCores }

// Quota bounds one user's concurrent footprint. The paper's free tier gives
// "small amounts of computing infrastructure ... without cost" (§1).
type Quota struct {
	MaxInstances int
	MaxCores     int
}

// FreeTierQuota is the default allocation for any researcher.
func FreeTierQuota() Quota { return Quota{MaxInstances: 2, MaxCores: 4} }

// userAccount is one user's shard-local accounting: the running footprint
// (instances and cores over this bucket's BUILD/ACTIVE records), the
// bucket-local instance index, and the usage revision of the user's last
// footprint change in this bucket. Counters are maintained incrementally
// at state transitions under the bucket lock, so a usage sample merges K
// small per-user maps instead of walking every instance record, and
// Instances(user) touches only the user's own index entries. An account
// whose footprint has returned to zero is retained as a grave — its rev
// is what lets UsageSince report the user as removed.
type userAccount struct {
	n     int
	cores int
	rev   int64
	inst  map[string]*Instance
}

// instShard is one shard-local instance bucket. Every per-instance hot
// path — boot completion, usage heartbeats, stop completion, state reads
// from API handlers — goes through the bucket's own mutex, so callbacks
// firing concurrently on K shard goroutines never serialize on the cloud
// lock, and samplers (biller, usage monitor) walk K short critical
// sections instead of one global locked list.
type instShard struct {
	mu   sync.Mutex
	inst map[string]*Instance
	// users holds this bucket's per-user accounts: incremental footprint
	// counters plus the instance index, written only under mu.
	users map[string]*userAccount
	// beats counts usage heartbeats fired by this shard's instances. It is
	// written only under mu by callbacks homed on this shard's engine and
	// summed in shard order by Heartbeats().
	beats uint64
}

// account returns user's bucket-local account, creating it. Callers hold
// sh.mu.
func (sh *instShard) account(user string) *userAccount {
	a, ok := sh.users[user]
	if !ok {
		a = &userAccount{inst: make(map[string]*Instance)}
		sh.users[user] = a
	}
	return a
}

// topology pins the instance population's shard fan-out: the ShardSet
// keying instance IDs to engines (nil = unsharded) and the matching
// per-shard buckets. SetShards replaces it wholesale during setup; all
// traffic-time readers load it lock-free through the atomic pointer.
type topology struct {
	set *sim.ShardSet
	sh  []*instShard
}

func (t *topology) index(id string) int {
	if t.set == nil {
		return 0
	}
	return t.set.ShardIndex(id)
}

func (t *topology) bucket(id string) *instShard { return t.sh[t.index(id)] }

func newInstShard() *instShard {
	return &instShard{
		inst:  make(map[string]*Instance),
		users: make(map[string]*userAccount),
	}
}

// footprint is one user's running allocation (ACTIVE + BUILD instances),
// maintained incrementally so Launch's quota check is O(1) instead of a
// walk over the whole population.
type footprint struct {
	n     int
	cores int
}

// Cloud is one compute cloud (e.g. OSDC-Adler or OSDC-Sullivan).
//
// mu covers the control plane: host allocations, quotas, images, the ID
// counter, per-user footprints and the launch/reject counters. Instance
// records live in per-shard buckets guarded by their own mutexes (see
// instShard); the lock order is c.mu → instShard.mu → engine internals,
// and timer callbacks take at most the bucket lock (stop completion also
// takes c.mu first, in that order, to return the user's footprint).
// Hosts and flavors are attached before traffic starts and their identity
// is read-only after that. API handlers call the exported methods from
// concurrent goroutines while boot/heartbeat/stop timers fire on the
// owning shard's clock goroutine.
type Cloud struct {
	Name    string
	Stack   string // "openstack" or "eucalyptus" — selects the native API
	Site    string
	mu      sync.Mutex
	engine  *sim.Engine
	topo    atomic.Pointer[topology]
	hosts   []*Host
	flavors map[string]Flavor
	images  map[string]*Image
	quotas  map[string]Quota
	foot    map[string]footprint
	nextID  int
	// hbEvery > 0 arms a usage heartbeat on every launched instance,
	// firing on the instance's owning shard. Set during setup.
	hbEvery sim.Duration

	// usageRev is the cloud's monotonic usage revision: bumped on every
	// change a usage sample could observe (a footprint transition, or a
	// terminate releasing host occupancy). The bump and the matching
	// per-user account write happen under the owning bucket's lock, so a
	// reader that loads the counter and then walks the buckets sees every
	// change at or below the value it read — the invariant UsageSince
	// depends on.
	usageRev atomic.Int64

	Launches   int64
	Rejections int64
}

// NewCloud creates a cloud on an engine with the default flavors.
func NewCloud(e *sim.Engine, name, stack, site string) *Cloud {
	c := &Cloud{
		Name: name, Stack: stack, Site: site, engine: e,
		flavors: make(map[string]Flavor),
		images:  make(map[string]*Image),
		quotas:  make(map[string]Quota),
		foot:    make(map[string]footprint),
	}
	c.topo.Store(&topology{sh: []*instShard{newInstShard()}})
	for _, f := range DefaultFlavors() {
		c.flavors[f.Name] = f
	}
	return c
}

// SetShards homes the instance population on the shard set: instance
// records bucket by sim.ShardIndex(instanceID) and every per-instance
// timer (boot, heartbeat, stop) fires on the owning shard instead of the
// cloud's base engine — the sharded-kernel wiring. The set's anchor must
// be the cloud's engine, so a K=1 set reproduces the unsharded behavior
// exactly. Call during setup, before traffic starts; instances launched
// before the call are re-bucketed, but their already-scheduled timers
// stay on the engine that scheduled them (their handles cancel there
// regardless).
func (c *Cloud) SetShards(set *sim.ShardSet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := 1
	if set != nil {
		k = set.K()
	}
	next := &topology{set: set, sh: make([]*instShard, k)}
	for i := range next.sh {
		next.sh[i] = newInstShard()
	}
	prev := c.topo.Load()
	for _, sh := range prev.sh {
		sh.mu.Lock()
		for id, inst := range sh.inst {
			nsh := next.bucket(id)
			nsh.inst[id] = inst
			// Rebuild the user accounts in the new buckets: the index
			// follows the record, the footprint is recomputed from state.
			a := nsh.account(inst.User)
			a.inst[id] = inst
			if inst.State == StateBuild || inst.State == StateActive {
				a.n++
				a.cores += inst.Flavor.VCPUs
			}
		}
		// Carry each user's last-change revision (graves included) so a
		// delta client holding a pre-rebucket rev still sees the churn.
		for user, a := range sh.users {
			na := next.sh[0].account(user)
			if a.rev > na.rev {
				na.rev = a.rev
			}
		}
		next.sh[0].beats += sh.beats
		sh.mu.Unlock()
	}
	c.topo.Store(next)
}

// SetHeartbeat arms a usage heartbeat every `every` simulated seconds on
// each subsequently launched instance. Beats fire on the instance's
// owning shard, re-arm themselves while the instance is BUILD/ACTIVE, and
// drain (do not re-arm) once it stops or terminates. 0 disables (the
// default). Call during setup.
func (c *Cloud) SetHeartbeat(every sim.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hbEvery = every
}

// Heartbeats returns the total usage heartbeats fired, summed in shard
// order.
func (c *Cloud) Heartbeats() uint64 {
	t := c.topo.Load()
	var total uint64
	for _, sh := range t.sh {
		sh.mu.Lock()
		total += sh.beats
		sh.mu.Unlock()
	}
	return total
}

// ShardPopulation returns the live (non-terminated) instance count per
// shard bucket — the observability hook the sharded stress tests assert
// on.
func (c *Cloud) ShardPopulation() []int {
	t := c.topo.Load()
	out := make([]int, len(t.sh))
	for i, sh := range t.sh {
		sh.mu.Lock()
		for _, inst := range sh.inst {
			if inst.State != StateTerminated {
				out[i]++
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// timerEngine returns the engine that owns key's timers.
func (c *Cloud) timerEngine(key string) *sim.Engine {
	t := c.topo.Load()
	if t.set != nil {
		return t.set.Shard(key)
	}
	return c.engine
}

// AddHost attaches a hypervisor.
func (c *Cloud) AddHost(h *Host) { c.hosts = append(c.hosts, h) }

// AddRack attaches n paper-standard hosts named prefix-NN.
func (c *Cloud) AddRack(prefix string, n int) {
	for i := 0; i < n; i++ {
		c.AddHost(PaperHost(fmt.Sprintf("%s-%02d", prefix, i)))
	}
}

// TotalCores sums hypervisor cores.
func (c *Cloud) TotalCores() int {
	total := 0
	for _, h := range c.hosts {
		total += h.Cores
	}
	return total
}

// UsedCores sums allocated cores.
func (c *Cloud) UsedCores() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, h := range c.hosts {
		total += h.usedCores
	}
	return total
}

// RegisterImage adds a machine image.
func (c *Cloud) RegisterImage(img Image) *Image {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := img
	if cp.ID == "" {
		c.nextID++
		cp.ID = fmt.Sprintf("img-%s-%d", c.Name, c.nextID)
	}
	c.images[cp.ID] = &cp
	return &cp
}

// Images lists images visible to user, sorted by ID. Images are immutable
// once registered, so the pointers are safe to share.
func (c *Cloud) Images(user string) []*Image {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*Image
	for _, img := range c.images {
		if img.Public || img.Owner == user {
			out = append(out, img)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SetQuota assigns a user quota (replacing the free-tier default).
func (c *Cloud) SetQuota(user string, q Quota) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.quotas[user] = q
}

func (c *Cloud) quotaFor(user string) Quota {
	if q, ok := c.quotas[user]; ok {
		return q
	}
	return FreeTierQuota()
}

// Flavor looks up a flavor by name.
func (c *Cloud) Flavor(name string) (Flavor, bool) {
	f, ok := c.flavors[name]
	return f, ok
}

// Flavors lists flavors sorted by cores.
func (c *Cloud) Flavors() []Flavor {
	var out []Flavor
	for _, f := range c.flavors {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VCPUs < out[j].VCPUs })
	return out
}

// ErrQuota reports a quota rejection.
type ErrQuota struct{ User, Reason string }

func (e ErrQuota) Error() string { return fmt.Sprintf("iaas: quota: %s: %s", e.User, e.Reason) }

// ErrCapacity reports that no host fits the flavor.
type ErrCapacity struct{ Flavor string }

func (e ErrCapacity) Error() string { return "iaas: no capacity for flavor " + e.Flavor }

// stopDelay is how long an instance takes to shut down cleanly once Stop
// is accepted, in simulated seconds.
const stopDelay sim.Duration = 5

// footDec returns cores/instance slots to the user's running footprint.
// Callers hold c.mu.
func (c *Cloud) footDec(user string, cores int) {
	f := c.foot[user]
	f.n--
	f.cores -= cores
	c.foot[user] = f
}

// Launch provisions an instance for user. Scheduling is most-free-cores
// first (spreads load like nova's filter scheduler with defaults).
func (c *Cloud) Launch(user, name, flavorName, imageID string) (*Instance, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.flavors[flavorName]
	if !ok {
		return nil, fmt.Errorf("iaas: unknown flavor %q", flavorName)
	}
	if imageID != "" {
		img, ok := c.images[imageID]
		if !ok {
			return nil, fmt.Errorf("iaas: unknown image %q", imageID)
		}
		if !img.Public && img.Owner != user {
			return nil, fmt.Errorf("iaas: image %q not accessible to %s", imageID, user)
		}
	}
	// Quota check against the user's running footprint — an O(1) counter
	// read, not a walk over the population (at 10⁵ instances the walk was
	// the launch path's whole cost).
	q := c.quotaFor(user)
	ft := c.foot[user]
	if ft.n+1 > q.MaxInstances {
		c.Rejections++
		return nil, ErrQuota{User: user, Reason: "instance limit"}
	}
	if ft.cores+f.VCPUs > q.MaxCores {
		c.Rejections++
		return nil, ErrQuota{User: user, Reason: "core limit"}
	}
	// Schedule: host with the most free cores that fits.
	var best *Host
	for _, h := range c.hosts {
		if !h.fits(f) {
			continue
		}
		if best == nil || h.FreeCores() > best.FreeCores() {
			best = h
		}
	}
	if best == nil {
		c.Rejections++
		return nil, ErrCapacity{Flavor: flavorName}
	}
	best.usedCores += f.VCPUs
	best.usedRAM += f.RAMMB
	best.usedDisk += f.DiskGB
	ft.n++
	ft.cores += f.VCPUs
	c.foot[user] = ft
	c.nextID++
	inst := &Instance{
		ID: fmt.Sprintf("%s-inst-%d", c.Name, c.nextID), Name: name,
		User: user, Flavor: f, ImageID: imageID, Host: best.Name,
		State: StateBuild, Launched: c.engine.Now(),
	}
	best.instances[inst.ID] = inst
	topo := c.topo.Load()
	sh := topo.bucket(inst.ID)
	eng := c.engine
	if topo.set != nil {
		eng = topo.set.Shard(inst.ID)
	}
	sh.mu.Lock()
	sh.inst[inst.ID] = inst
	acct := sh.account(user)
	acct.inst[inst.ID] = inst
	acct.n++
	acct.cores += f.VCPUs
	acct.rev = c.usageRev.Add(1)
	c.Launches++
	// VMs take ~90 s to boot. The callback fires on the owning shard's
	// clock goroutine and takes only the bucket lock — never c.mu — so K
	// shards complete boots concurrently. Scheduling while we hold locks
	// is fine because the engine never fires events under its own lock
	// (Cloud→bucket→Engine is the only lock order between them). The
	// handle is retained so Stop/Terminate cancel the boot on the engine
	// that owns it.
	inst.boot = eng.After(90, func() {
		sh.mu.Lock()
		if inst.State == StateBuild {
			inst.State = StateActive
		}
		sh.mu.Unlock()
	})
	if every := c.hbEvery; every > 0 {
		// The usage heartbeat: a pooled timer owned by the shard's event
		// goroutine. Each beat checks liveness under the bucket lock and
		// re-arms itself; once the instance stops or terminates the next
		// beat drains without re-arming, so API goroutines never touch
		// the timer (sim.Timer is deliberately single-owner).
		inst.hb = sim.NewTimer(eng, func() {
			sh.mu.Lock()
			if inst.State == StateBuild || inst.State == StateActive {
				sh.beats++
				inst.hb.Reset(every)
			}
			sh.mu.Unlock()
		})
		inst.hb.Reset(every)
	}
	cp := *inst
	sh.mu.Unlock()
	return &cp, nil
}

// Stop shuts an instance down (OpenStack os-stop / EC2 StopInstances):
// after stopDelay it reaches SHUTOFF, keeps its host allocation, and
// stops accruing usage. Stopping a BUILD instance cancels its pending
// boot. Both cancellations and the shutdown timer resolve the shard that
// owns the instance ID — the handles carry their engine — so a Stop
// issued from any goroutine against any shard's instance cancels on the
// owning engine, never the anchor.
func (c *Cloud) Stop(user, id string) error {
	sh := c.topo.Load().bucket(id)
	eng := c.timerEngine(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	inst, ok := sh.inst[id]
	if !ok {
		return fmt.Errorf("iaas: no instance %q", id)
	}
	if inst.User != user {
		return fmt.Errorf("iaas: instance %q not owned by %s", id, user)
	}
	switch {
	case inst.State == StateTerminated:
		return fmt.Errorf("iaas: instance %q is terminated", id)
	case inst.State == StateShutoff || inst.stopPending:
		return nil // already stopped or stopping
	}
	inst.boot.Cancel()
	inst.stopPending = true
	inst.stop = eng.After(stopDelay, func() {
		// Shutdown completion: the footprint refund needs c.mu, taken
		// before the bucket lock to respect the lock order.
		c.mu.Lock()
		sh.mu.Lock()
		if inst.State == StateActive || inst.State == StateBuild {
			inst.State = StateShutoff
			inst.Stopped = eng.Now()
			c.footDec(inst.User, inst.Flavor.VCPUs)
			a := sh.account(inst.User)
			a.n--
			a.cores -= inst.Flavor.VCPUs
			a.rev = c.usageRev.Add(1)
		}
		inst.stopPending = false
		sh.mu.Unlock()
		c.mu.Unlock()
	})
	return nil
}

// Terminate releases an instance's resources, cancelling any pending
// boot or stop timer on the shard that owns them.
func (c *Cloud) Terminate(user, id string) error {
	sh := c.topo.Load().bucket(id)
	eng := c.timerEngine(id)
	c.mu.Lock()
	defer c.mu.Unlock()
	sh.mu.Lock()
	inst, ok := sh.inst[id]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("iaas: no instance %q", id)
	}
	if inst.User != user {
		sh.mu.Unlock()
		return fmt.Errorf("iaas: instance %q not owned by %s", id, user)
	}
	if inst.State == StateTerminated {
		sh.mu.Unlock()
		return nil
	}
	wasRunning := inst.State == StateActive || inst.State == StateBuild
	inst.boot.Cancel()
	inst.stop.Cancel()
	inst.stopPending = false
	inst.State = StateTerminated
	// The cloud's usage rev always moves on terminate: even for a SHUTOFF
	// instance (no running-footprint change) the host occupancy a Usage
	// sample reports just changed, so cached same-rev snapshots must not
	// be served. The user's account rev moves only when the running
	// footprint itself changed.
	rev := c.usageRev.Add(1)
	if wasRunning {
		// A SHUTOFF instance keeps its earlier stop timestamp — billing
		// must not re-open the accrual window.
		inst.Stopped = eng.Now()
		a := sh.account(inst.User)
		a.n--
		a.cores -= inst.Flavor.VCPUs
		a.rev = rev
	}
	sh.mu.Unlock()
	for _, h := range c.hosts {
		if h.Name == inst.Host {
			h.usedCores -= inst.Flavor.VCPUs
			h.usedRAM -= inst.Flavor.RAMMB
			h.usedDisk -= inst.Flavor.DiskGB
			delete(h.instances, id)
		}
	}
	if wasRunning {
		c.footDec(inst.User, inst.Flavor.VCPUs)
	}
	return nil
}

// Instances lists a user's instances ("" = all), sorted by ID. The
// returned records are point-in-time copies: the live instances keep
// changing state (boot timers, terminations) on the shard goroutines, so
// handing out the internal pointers would race with every caller that
// renders them. A named user's listing goes through the per-shard user
// index — K short bucket locks touching only that user's own records —
// so a console list stays O(the user's instances) even over a
// 10⁵-instance population; only the ""-wildcard walks every record.
func (c *Cloud) Instances(user string) []*Instance {
	t := c.topo.Load()
	var out []*Instance
	for _, sh := range t.sh {
		sh.mu.Lock()
		if user == "" {
			for _, i := range sh.inst {
				cp := *i
				out = append(out, &cp)
			}
		} else if a, ok := sh.users[user]; ok {
			for _, i := range a.inst {
				cp := *i
				out = append(out, &cp)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Instance looks up one instance, returning a point-in-time copy.
func (c *Cloud) Instance(id string) (*Instance, bool) {
	sh := c.topo.Load().bucket(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	i, ok := sh.inst[id]
	if !ok {
		return nil, false
	}
	cp := *i
	return &cp, true
}

// RunningByUser returns user → (instance count, cores) for active VMs: the
// measurement the billing poller takes every minute (§6.4). The sample
// merges the K per-shard account maps — O(active users), never an
// instance walk — because every state transition maintains the counters
// under the bucket lock it already holds. Accounts whose footprint has
// drained to zero are graves kept only for delta bookkeeping and are
// skipped here, so the result is key-identical to a full recount.
func (c *Cloud) RunningByUser() map[string][2]int {
	t := c.topo.Load()
	out := make(map[string][2]int)
	for _, sh := range t.sh {
		sh.mu.Lock()
		for user, a := range sh.users {
			if a.n == 0 {
				continue
			}
			v := out[user]
			v[0] += a.n
			v[1] += a.cores
			out[user] = v
		}
		sh.mu.Unlock()
	}
	return out
}

// RunningByUserScan recomputes the usage sample the pre-counter way: a
// full walk over every instance record in every bucket. It exists as the
// ground truth the storm test recounts against (counters ≡ scan at every
// join point) and as the baseline body behind the usage-sample-sharded
// benchmarks, so the perf trajectory keeps its pre-incremental numbers
// comparable across snapshots.
func (c *Cloud) RunningByUserScan() map[string][2]int {
	t := c.topo.Load()
	out := make(map[string][2]int)
	for _, sh := range t.sh {
		sh.mu.Lock()
		for _, i := range sh.inst {
			if i.State == StateActive || i.State == StateBuild {
				v := out[i.User]
				v[0]++
				v[1] += i.Flavor.VCPUs
				out[i.User] = v
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// UsageRev returns the cloud's current usage revision: a counter bumped,
// under the owning bucket's lock, by every footprint change. Equal revs
// imply identical usage snapshots; the converse does not hold (a bump
// with no net visible change — e.g. terminating a SHUTOFF instance
// releases host cores — still advances the rev so caches stay honest).
func (c *Cloud) UsageRev() int64 { return c.usageRev.Load() }

// UsageDelta describes how per-user running footprints changed since an
// earlier revision. Changed holds absolute (count, cores) values — not
// increments — so applying a delta is idempotent and over-reporting a
// user is harmless. Removed lists users whose footprint drained to zero
// in the window. When Reset is true the receiver must drop its snapshot
// and take Changed as the complete population (since predates what the
// counters can answer, or the caller is ahead of this cloud's rev — a
// restart).
type UsageDelta struct {
	Rev     int64
	Changed map[string][2]int
	Removed []string
	Reset   bool
}

// UsageSince reports every user whose footprint changed after revision
// since. The rev is loaded before the bucket walk: any transition that
// lands mid-walk carries a rev greater than the returned one, so a
// just-missed change is re-sent on the next poll rather than lost.
// since <= 0 or since beyond the current rev yields a full snapshot with
// Reset set.
func (c *Cloud) UsageSince(since int64) UsageDelta {
	rev := c.usageRev.Load()
	if since <= 0 || since > rev {
		full := c.RunningByUser()
		if len(full) == 0 {
			full = nil
		}
		return UsageDelta{Rev: rev, Changed: full, Reset: true}
	}
	t := c.topo.Load()
	// First pass: collect per-shard contributions for every user touched
	// after since. A user's merged footprint needs all K shards' accounts,
	// not just the ones that changed, so note the names first and total
	// them in a second pass.
	touched := make(map[string]bool)
	for _, sh := range t.sh {
		sh.mu.Lock()
		for user, a := range sh.users {
			if a.rev > since {
				touched[user] = true
			}
		}
		sh.mu.Unlock()
	}
	if len(touched) == 0 {
		return UsageDelta{Rev: rev}
	}
	merged := make(map[string][2]int, len(touched))
	for _, sh := range t.sh {
		sh.mu.Lock()
		for user := range touched {
			if a, ok := sh.users[user]; ok && a.n != 0 {
				v := merged[user]
				v[0] += a.n
				v[1] += a.cores
				merged[user] = v
			}
		}
		sh.mu.Unlock()
	}
	d := UsageDelta{Rev: rev}
	for user := range touched {
		if v, ok := merged[user]; ok {
			if d.Changed == nil {
				d.Changed = make(map[string][2]int)
			}
			d.Changed[user] = v
		} else {
			d.Removed = append(d.Removed, user)
		}
	}
	sort.Strings(d.Removed)
	return d
}
