// Package iaas implements the OSDC's infrastructure-as-a-service compute
// substrate (paper §3.2, §7): the Eucalyptus- and OpenStack-based utility
// clouds (OSDC-Adler, OSDC-Sullivan) that Tukey provisions VMs on.
//
// The package has a neutral core — hosts, flavors, images, instances, a
// capacity scheduler, per-user quotas and usage counters — plus two real
// HTTP API dialects over that core:
//
//   - NovaAPI (nova_api.go): an OpenStack-compute-style JSON API;
//   - EucaAPI (euca_api.go): a Eucalyptus/EC2-style query API with XML
//     responses.
//
// The two dialects exist so that the Tukey middleware (internal/tukey) has
// real API translation work to do, exactly as the paper describes: "The
// translation proxies take in requests based on the OpenStack API and then
// issue commands to each cloud based on mappings outlined in configuration
// files" (§5.2).
package iaas

import (
	"fmt"
	"sort"
	"sync"

	"osdc/internal/sim"
)

// Flavor is an instance size, as in OpenStack flavors / EC2 instance types.
type Flavor struct {
	Name   string
	VCPUs  int
	RAMMB  int
	DiskGB int
}

// DefaultFlavors are the sizes offered across OSDC clouds.
func DefaultFlavors() []Flavor {
	return []Flavor{
		{Name: "m1.small", VCPUs: 1, RAMMB: 2048, DiskGB: 20},
		{Name: "m1.medium", VCPUs: 2, RAMMB: 4096, DiskGB: 40},
		{Name: "m1.large", VCPUs: 4, RAMMB: 8192, DiskGB: 80},
		{Name: "m1.xlarge", VCPUs: 8, RAMMB: 16384, DiskGB: 160},
	}
}

// Image is a bootable machine image. The OSDC curates images that "contain
// the software tools and applications commonly used by a community" (§3.2).
type Image struct {
	ID     string
	Name   string
	SizeGB int
	Tools  []string // preinstalled community pipelines
	Public bool
	Owner  string
	// Portable marks images built to also run on AWS (§9: "OSDC machine
	// images can also run on AWS"), the paper's anti-lock-in stance.
	Portable bool
}

// InstanceState is the VM lifecycle state.
type InstanceState string

// Lifecycle states (OpenStack naming).
const (
	StateBuild      InstanceState = "BUILD"
	StateActive     InstanceState = "ACTIVE"
	StateShutoff    InstanceState = "SHUTOFF"
	StateTerminated InstanceState = "TERMINATED"
	StateError      InstanceState = "ERROR"
)

// Instance is one virtual machine.
type Instance struct {
	ID       string
	Name     string
	User     string
	Flavor   Flavor
	ImageID  string
	Host     string
	State    InstanceState
	Launched sim.Time
	Stopped  sim.Time // valid when terminated/shutoff
}

// CoreSecondsUntil returns core-seconds consumed up to t (for billing).
func (i *Instance) CoreSecondsUntil(t sim.Time) float64 {
	end := t
	if i.State == StateTerminated || i.State == StateShutoff {
		end = i.Stopped
	}
	if end < i.Launched {
		return 0
	}
	return float64(end-i.Launched) * float64(i.Flavor.VCPUs)
}

// Host is one hypervisor server. The paper's rack unit: 8 cores, 8 TB disk
// per server (§9.1 footnote).
type Host struct {
	Name      string
	Cores     int
	RAMMB     int
	DiskGB    int
	usedCores int
	usedRAM   int
	usedDisk  int
	instances map[string]*Instance
}

// NewHost creates an empty hypervisor.
func NewHost(name string, cores, ramMB, diskGB int) *Host {
	return &Host{Name: name, Cores: cores, RAMMB: ramMB, DiskGB: diskGB,
		instances: make(map[string]*Instance)}
}

// PaperHost returns the paper's standard server: 8 cores, 8 TB disk.
func PaperHost(name string) *Host { return NewHost(name, 8, 49152, 8192) }

func (h *Host) fits(f Flavor) bool {
	return h.usedCores+f.VCPUs <= h.Cores &&
		h.usedRAM+f.RAMMB <= h.RAMMB &&
		h.usedDisk+f.DiskGB <= h.DiskGB
}

// FreeCores returns unallocated cores.
func (h *Host) FreeCores() int { return h.Cores - h.usedCores }

// Quota bounds one user's concurrent footprint. The paper's free tier gives
// "small amounts of computing infrastructure ... without cost" (§1).
type Quota struct {
	MaxInstances int
	MaxCores     int
}

// FreeTierQuota is the default allocation for any researcher.
func FreeTierQuota() Quota { return Quota{MaxInstances: 2, MaxCores: 4} }

// Cloud is one compute cloud (e.g. OSDC-Adler or OSDC-Sullivan).
//
// mu covers everything that changes after setup: instances, host
// allocations, quotas, images and the counters. Hosts and flavors are
// attached before traffic starts and their identity is read-only after
// that (their allocation fields are guarded by mu). API handlers call the
// exported methods from concurrent goroutines while boot timers fire on
// the clock-driving one.
type Cloud struct {
	Name    string
	Stack   string // "openstack" or "eucalyptus" — selects the native API
	Site    string
	mu      sync.Mutex
	engine  *sim.Engine
	shards  *sim.ShardSet // nil: all timers on engine
	hosts   []*Host
	flavors map[string]Flavor
	images  map[string]*Image
	inst    map[string]*Instance
	quotas  map[string]Quota
	nextID  int

	Launches   int64
	Rejections int64
}

// NewCloud creates a cloud on an engine with the default flavors.
func NewCloud(e *sim.Engine, name, stack, site string) *Cloud {
	c := &Cloud{
		Name: name, Stack: stack, Site: site, engine: e,
		flavors: make(map[string]Flavor),
		images:  make(map[string]*Image),
		inst:    make(map[string]*Instance),
		quotas:  make(map[string]Quota),
	}
	for _, f := range DefaultFlavors() {
		c.flavors[f.Name] = f
	}
	return c
}

// SetShards routes per-instance timers (boot completion) onto the shard
// owning each instance ID instead of the cloud's base engine — the
// sharded-kernel wiring. The set's anchor must be the cloud's engine, so
// a K=1 set reproduces the unsharded behavior exactly. Call during setup,
// before traffic starts.
func (c *Cloud) SetShards(set *sim.ShardSet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.shards = set
}

// timerEngine returns the engine that owns key's timers. Callers hold c.mu.
func (c *Cloud) timerEngine(key string) *sim.Engine {
	if c.shards != nil {
		return c.shards.Shard(key)
	}
	return c.engine
}

// AddHost attaches a hypervisor.
func (c *Cloud) AddHost(h *Host) { c.hosts = append(c.hosts, h) }

// AddRack attaches n paper-standard hosts named prefix-NN.
func (c *Cloud) AddRack(prefix string, n int) {
	for i := 0; i < n; i++ {
		c.AddHost(PaperHost(fmt.Sprintf("%s-%02d", prefix, i)))
	}
}

// TotalCores sums hypervisor cores.
func (c *Cloud) TotalCores() int {
	total := 0
	for _, h := range c.hosts {
		total += h.Cores
	}
	return total
}

// UsedCores sums allocated cores.
func (c *Cloud) UsedCores() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, h := range c.hosts {
		total += h.usedCores
	}
	return total
}

// RegisterImage adds a machine image.
func (c *Cloud) RegisterImage(img Image) *Image {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := img
	if cp.ID == "" {
		c.nextID++
		cp.ID = fmt.Sprintf("img-%s-%d", c.Name, c.nextID)
	}
	c.images[cp.ID] = &cp
	return &cp
}

// Images lists images visible to user, sorted by ID. Images are immutable
// once registered, so the pointers are safe to share.
func (c *Cloud) Images(user string) []*Image {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*Image
	for _, img := range c.images {
		if img.Public || img.Owner == user {
			out = append(out, img)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SetQuota assigns a user quota (replacing the free-tier default).
func (c *Cloud) SetQuota(user string, q Quota) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.quotas[user] = q
}

func (c *Cloud) quotaFor(user string) Quota {
	if q, ok := c.quotas[user]; ok {
		return q
	}
	return FreeTierQuota()
}

// Flavor looks up a flavor by name.
func (c *Cloud) Flavor(name string) (Flavor, bool) {
	f, ok := c.flavors[name]
	return f, ok
}

// Flavors lists flavors sorted by cores.
func (c *Cloud) Flavors() []Flavor {
	var out []Flavor
	for _, f := range c.flavors {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VCPUs < out[j].VCPUs })
	return out
}

// ErrQuota reports a quota rejection.
type ErrQuota struct{ User, Reason string }

func (e ErrQuota) Error() string { return fmt.Sprintf("iaas: quota: %s: %s", e.User, e.Reason) }

// ErrCapacity reports that no host fits the flavor.
type ErrCapacity struct{ Flavor string }

func (e ErrCapacity) Error() string { return "iaas: no capacity for flavor " + e.Flavor }

// Launch provisions an instance for user. Scheduling is most-free-cores
// first (spreads load like nova's filter scheduler with defaults).
func (c *Cloud) Launch(user, name, flavorName, imageID string) (*Instance, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.flavors[flavorName]
	if !ok {
		return nil, fmt.Errorf("iaas: unknown flavor %q", flavorName)
	}
	if imageID != "" {
		img, ok := c.images[imageID]
		if !ok {
			return nil, fmt.Errorf("iaas: unknown image %q", imageID)
		}
		if !img.Public && img.Owner != user {
			return nil, fmt.Errorf("iaas: image %q not accessible to %s", imageID, user)
		}
	}
	// Quota check against the user's running footprint.
	q := c.quotaFor(user)
	n, cores := 0, 0
	for _, i := range c.inst {
		if i.User == user && (i.State == StateActive || i.State == StateBuild) {
			n++
			cores += i.Flavor.VCPUs
		}
	}
	if n+1 > q.MaxInstances {
		c.Rejections++
		return nil, ErrQuota{User: user, Reason: "instance limit"}
	}
	if cores+f.VCPUs > q.MaxCores {
		c.Rejections++
		return nil, ErrQuota{User: user, Reason: "core limit"}
	}
	// Schedule: host with the most free cores that fits.
	var best *Host
	for _, h := range c.hosts {
		if !h.fits(f) {
			continue
		}
		if best == nil || h.FreeCores() > best.FreeCores() {
			best = h
		}
	}
	if best == nil {
		c.Rejections++
		return nil, ErrCapacity{Flavor: flavorName}
	}
	best.usedCores += f.VCPUs
	best.usedRAM += f.RAMMB
	best.usedDisk += f.DiskGB
	c.nextID++
	inst := &Instance{
		ID: fmt.Sprintf("%s-inst-%d", c.Name, c.nextID), Name: name,
		User: user, Flavor: f, ImageID: imageID, Host: best.Name,
		State: StateBuild, Launched: c.engine.Now(),
	}
	best.instances[inst.ID] = inst
	c.inst[inst.ID] = inst
	c.Launches++
	// VMs take ~90 s to boot. The callback fires on the clock-driving
	// goroutine, so it must re-take the cloud lock; scheduling while we
	// hold c.mu is fine because the engine never fires events under its
	// own lock (Cloud→Engine is the only lock order between the two).
	// With a sharded kernel the timer lands on the shard owning this
	// instance ID.
	c.timerEngine(inst.ID).After(90, func() {
		c.mu.Lock()
		if inst.State == StateBuild {
			inst.State = StateActive
		}
		c.mu.Unlock()
	})
	cp := *inst
	return &cp, nil
}

// Terminate releases an instance's resources.
func (c *Cloud) Terminate(user, id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	inst, ok := c.inst[id]
	if !ok {
		return fmt.Errorf("iaas: no instance %q", id)
	}
	if inst.User != user {
		return fmt.Errorf("iaas: instance %q not owned by %s", id, user)
	}
	if inst.State == StateTerminated {
		return nil
	}
	for _, h := range c.hosts {
		if h.Name == inst.Host {
			h.usedCores -= inst.Flavor.VCPUs
			h.usedRAM -= inst.Flavor.RAMMB
			h.usedDisk -= inst.Flavor.DiskGB
			delete(h.instances, id)
		}
	}
	inst.State = StateTerminated
	inst.Stopped = c.engine.Now()
	return nil
}

// Instances lists a user's instances ("" = all), sorted by ID. The
// returned records are point-in-time copies: the live instances keep
// changing state (boot timers, terminations) on the clock-driving
// goroutine, so handing out the internal pointers would race with every
// caller that renders them.
func (c *Cloud) Instances(user string) []*Instance {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*Instance
	for _, i := range c.inst {
		if user == "" || i.User == user {
			cp := *i
			out = append(out, &cp)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Instance looks up one instance, returning a point-in-time copy.
func (c *Cloud) Instance(id string) (*Instance, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.inst[id]
	if !ok {
		return nil, false
	}
	cp := *i
	return &cp, true
}

// RunningByUser returns user → (instance count, cores) for active VMs: the
// measurement the billing poller takes every minute (§6.4).
func (c *Cloud) RunningByUser() map[string][2]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string][2]int)
	for _, i := range c.inst {
		if i.State == StateActive || i.State == StateBuild {
			v := out[i.User]
			v[0]++
			v[1] += i.Flavor.VCPUs
			out[i.User] = v
		}
	}
	return out
}
