package simdisk

import (
	"math"
	"testing"

	"osdc/internal/sim"
)

func TestReadTiming(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, "d", 8e6, 8e6, 1<<30) // 1 MB/s both ways
	var doneAt sim.Time
	d.Read(1_000_000, func() { doneAt = e.Now() })
	e.Run()
	if math.Abs(float64(doneAt)-1.0) > 1e-9 {
		t.Fatalf("1 MB read at 1 MB/s finished at %v, want 1 s", doneAt)
	}
}

func TestReadsSerialize(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, "d", 8e6, 8e6, 1<<30)
	var times []sim.Time
	for i := 0; i < 3; i++ {
		d.Read(500_000, func() { times = append(times, e.Now()) })
	}
	e.Run()
	want := []sim.Time{0.5, 1.0, 1.5}
	for i := range want {
		if math.Abs(float64(times[i]-want[i])) > 1e-9 {
			t.Fatalf("read %d finished at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestWriteReservesCapacity(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, "d", 8e6, 8e6, 1000)
	if err := d.Write(600, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(600, func() {}); err == nil {
		t.Fatal("expected ErrFull on second write")
	} else if _, ok := err.(ErrFull); !ok {
		t.Fatalf("error type %T, want ErrFull", err)
	}
	if d.Used() != 600 {
		t.Fatalf("used = %d, want 600", d.Used())
	}
	d.Release(600)
	if d.Free() != 1000 {
		t.Fatalf("free = %d after release, want 1000", d.Free())
	}
}

func TestReadWriteIndependentChannels(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, "d", 8e6, 8e6, 1<<30)
	var readDone, writeDone sim.Time
	d.Read(1_000_000, func() { readDone = e.Now() })
	if err := d.Write(1_000_000, func() { writeDone = e.Now() }); err != nil {
		t.Fatal(err)
	}
	e.Run()
	// Both finish at 1 s: no cross-channel contention.
	if math.Abs(float64(readDone)-1.0) > 1e-9 || math.Abs(float64(writeDone)-1.0) > 1e-9 {
		t.Fatalf("read at %v write at %v, want both 1 s", readDone, writeDone)
	}
}

func TestPaperConstants(t *testing.T) {
	e := sim.NewEngine(1)
	src := PaperSource(e, "src", 1<<40)
	dst := PaperTarget(e, "dst", 1<<40)
	if src.ReadBps != 3072e6 {
		t.Fatalf("source read = %v, want 3072 mbit/s", src.ReadBps)
	}
	if dst.WriteBps != 1136e6 {
		t.Fatalf("target write = %v, want 1136 mbit/s", dst.WriteBps)
	}
	// LLR denominator from the paper: min(3072, 1136) = 1136.
	if m := math.Min(src.ReadBps, dst.WriteBps); m != 1136e6 {
		t.Fatalf("LLR denominator = %v, want 1136e6", m)
	}
}

func TestUtilization(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, "d", 1e9, 1e9, 1000)
	if err := d.Alloc(250); err != nil {
		t.Fatal(err)
	}
	if u := d.Utilization(); math.Abs(u-0.25) > 1e-12 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
}

func TestBadReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-release")
		}
	}()
	e := sim.NewEngine(1)
	d := New(e, "d", 1e9, 1e9, 1000)
	d.Release(1)
}

func TestCounters(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, "d", 1e9, 1e9, 1<<30)
	d.Read(100, func() {})
	d.Read(100, func() {})
	if err := d.Write(50, func() {}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if d.ReadOps != 2 || d.BytesRead != 200 {
		t.Fatalf("read counters = %d ops / %d bytes", d.ReadOps, d.BytesRead)
	}
	if d.WriteOps != 1 || d.BytesWritten != 50 {
		t.Fatalf("write counters = %d ops / %d bytes", d.WriteOps, d.BytesWritten)
	}
}
