// Package simdisk models the storage hardware under the OSDC's clusters.
//
// The paper's Table 3 defines the "long distance to local ratio" (LLR)
// against measured local disk speeds: 3072 mbit/s streaming read at the
// source and 1136 mbit/s streaming write at the target. This package
// provides a bandwidth-capped streaming disk with capacity accounting; the
// distributed filesystem (internal/dfs) and the transfer benchmarks build
// on it.
package simdisk

import (
	"fmt"
	"sync/atomic"

	"osdc/internal/sim"
)

// Paper §7.2 calibration constants, bits per second.
const (
	PaperSourceReadBps  = 3072e6
	PaperTargetWriteBps = 1136e6
)

// Disk is a streaming disk with independent read and write channels, each
// serialized at its bandwidth. Operations on the same channel queue behind
// each other; reads and writes do not contend (a simplification that
// matches streaming transfer workloads, where one side only reads and the
// other only writes).
type Disk struct {
	Name     string
	ReadBps  float64 // streaming read bandwidth, bits/s
	WriteBps float64 // streaming write bandwidth, bits/s
	Capacity int64   // bytes

	engine    *sim.Engine
	used      int64
	readFree  sim.Time // when the read head finishes its current op
	writeFree sim.Time

	BytesRead    int64
	BytesWritten int64
	ReadOps      int64
	WriteOps     int64
}

// New creates a disk on the engine. Bandwidths must be positive.
func New(e *sim.Engine, name string, readBps, writeBps float64, capacity int64) *Disk {
	if readBps <= 0 || writeBps <= 0 {
		panic("simdisk: bandwidths must be positive")
	}
	if capacity <= 0 {
		panic("simdisk: capacity must be positive")
	}
	return &Disk{Name: name, ReadBps: readBps, WriteBps: writeBps, Capacity: capacity, engine: e}
}

// PaperSource returns a disk with the paper's source-node speeds.
func PaperSource(e *sim.Engine, name string, capacity int64) *Disk {
	return New(e, name, PaperSourceReadBps, PaperTargetWriteBps*2, capacity)
}

// PaperTarget returns a disk with the paper's target-node speeds.
func PaperTarget(e *sim.Engine, name string, capacity int64) *Disk {
	return New(e, name, PaperSourceReadBps, PaperTargetWriteBps, capacity)
}

// Used returns the bytes currently allocated.
func (d *Disk) Used() int64 { return atomic.LoadInt64(&d.used) }

// Free returns the bytes available.
func (d *Disk) Free() int64 { return d.Capacity - d.Used() }

// Utilization returns used/capacity in [0,1].
func (d *Disk) Utilization() float64 { return float64(d.Used()) / float64(d.Capacity) }

// ReadTime returns the streaming time to read n bytes, ignoring queueing.
func (d *Disk) ReadTime(n int64) sim.Duration { return float64(n*8) / d.ReadBps }

// WriteTime returns the streaming time to write n bytes, ignoring queueing.
func (d *Disk) WriteTime(n int64) sim.Duration { return float64(n*8) / d.WriteBps }

// ErrFull is returned when an allocation exceeds the remaining capacity.
type ErrFull struct {
	Disk      string
	Requested int64
	Free      int64
}

func (e ErrFull) Error() string {
	return fmt.Sprintf("simdisk: %s full: requested %d bytes, %d free", e.Disk, e.Requested, e.Free)
}

// Alloc reserves n bytes of capacity immediately (no I/O time). Capacity
// accounting is atomic: the dataset stores allocate from service
// goroutines while monitoring checks read Utilization on the engine.
func (d *Disk) Alloc(n int64) error {
	if n < 0 {
		panic("simdisk: negative allocation")
	}
	for {
		used := atomic.LoadInt64(&d.used)
		if used+n > d.Capacity {
			return ErrFull{Disk: d.Name, Requested: n, Free: d.Capacity - used}
		}
		if atomic.CompareAndSwapInt64(&d.used, used, used+n) {
			return nil
		}
	}
}

// Release frees n bytes of capacity.
func (d *Disk) Release(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("simdisk: bad release of %d", n))
	}
	if used := atomic.AddInt64(&d.used, -n); used < 0 {
		panic(fmt.Sprintf("simdisk: release of %d under-ran the allocation", n))
	}
}

// Read schedules a streaming read of n bytes; done fires when it completes.
// Concurrent reads serialize behind each other at ReadBps.
func (d *Disk) Read(n int64, done func()) {
	if n < 0 {
		panic("simdisk: negative read")
	}
	now := d.engine.Now()
	start := d.readFree
	if start < now {
		start = now
	}
	end := start + sim.Time(d.ReadTime(n))
	d.readFree = end
	d.ReadOps++
	d.BytesRead += n
	d.engine.At(end, done)
}

// Write schedules a streaming write of n bytes after reserving capacity;
// done fires when it completes. Returns ErrFull without scheduling if the
// disk lacks space.
func (d *Disk) Write(n int64, done func()) error {
	if err := d.Alloc(n); err != nil {
		return err
	}
	now := d.engine.Now()
	start := d.writeFree
	if start < now {
		start = now
	}
	end := start + sim.Time(d.WriteTime(n))
	d.writeFree = end
	d.WriteOps++
	d.BytesWritten += n
	d.engine.At(end, done)
	return nil
}
