package cloudapi

// The usage delta plane: Local and Remote must return identical
// UsageDeltas for identical clouds (including error text for a bad rev),
// Remote's delta-maintained Usage() must stay byte-equal to Local's full
// sample through churn and rev resets, the Server must coalesce same-rev
// reads, and the pprof plane must stay behind the operator gate.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"osdc/internal/iaas"
)

// bothDeltas runs one UsageSince through each backend and requires
// identical results.
func bothDeltas(t *testing.T, rig *parityRig, since int64) UsageDelta {
	t.Helper()
	return both(t, "UsageSince",
		func() (UsageDelta, error) { return rig.local.UsageSince(since) },
		func() (UsageDelta, error) { return rig.remote.UsageSince(since) })
}

func TestUsageDeltaParity(t *testing.T) {
	for _, stack := range []string{"openstack", "eucalyptus"} {
		t.Run(stack, func(t *testing.T) {
			rig := newParityRig(t, stack)

			// Fresh caller: Reset snapshot, empty cloud.
			d := bothDeltas(t, rig, 0)
			if !d.Reset || len(d.Changed) != 0 {
				t.Fatalf("UsageSince(0) on empty cloud = %+v", d)
			}

			// Churn, then only the churn comes back.
			a, err := rig.local.Launch("alice", "a1", "m1.small", "")
			if err != nil {
				t.Fatal(err)
			}
			d = bothDeltas(t, rig, 0)
			if !d.Reset || d.Changed["alice"].Instances != 1 {
				t.Fatalf("post-launch UsageSince(0) = %+v", d)
			}
			rev := d.Rev

			// Quiescent: the delta is empty through both backends.
			d = bothDeltas(t, rig, rev)
			if d.Reset || len(d.Changed) != 0 || len(d.Removed) != 0 {
				t.Fatalf("quiescent delta = %+v", d)
			}

			// Terminating alice's last instance removes her, through both.
			if err := rig.remote.Terminate("alice", a.ID); err != nil {
				t.Fatal(err)
			}
			d = bothDeltas(t, rig, rev)
			if !reflect.DeepEqual(d.Removed, []string{"alice"}) || len(d.Changed) != 0 {
				t.Fatalf("delta after alice drains = %+v, want Removed=[alice]", d)
			}

			// Rev reset: a caller ahead of the cloud gets a full resync.
			d = bothDeltas(t, rig, d.Rev+10_000)
			if !d.Reset {
				t.Fatalf("ahead-of-rev delta = %+v, want Reset", d)
			}

			// A bad rev errors identically through both backends (the wire
			// side is a 400 whose body carries Local's error text).
			_, errL := rig.local.UsageSince(-1)
			_, errR := rig.remote.UsageSince(-1)
			if errL == nil || errR == nil || errL.Error() != errR.Error() {
				t.Fatalf("bad-rev errors diverged: local=%v remote=%v", errL, errR)
			}
		})
	}
}

// TestRemoteUsageDeltaMaintained pins Remote.Usage()'s incremental path:
// after the first full fetch every further call applies deltas, and the
// result must stay identical to Local's full sample through launches,
// stops, terminations, and a server restart (rev reset).
func TestRemoteUsageDeltaMaintained(t *testing.T) {
	rig := newParityRig(t, "openstack")
	checkpoint := func(when string) {
		t.Helper()
		l, errL := rig.local.Usage()
		r, errR := rig.remote.Usage()
		if errL != nil || errR != nil {
			t.Fatalf("%s: local err=%v remote err=%v", when, errL, errR)
		}
		if !reflect.DeepEqual(l, r) {
			t.Fatalf("%s: delta-maintained Usage diverged:\nlocal : %+v\nremote: %+v", when, l, r)
		}
	}
	checkpoint("empty")

	a, err := rig.local.Launch("alice", "a1", "m1.small", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rig.local.Launch("bob", "b1", "m1.medium", ""); err != nil {
		t.Fatal(err)
	}
	checkpoint("after launches")

	if err := rig.local.Stop("alice", a.ID); err != nil {
		t.Fatal(err)
	}
	rig.engine.RunFor(120)
	checkpoint("after stop settles")

	if err := rig.local.Terminate("alice", a.ID); err != nil {
		t.Fatal(err)
	}
	checkpoint("after terminate")

	// Site restart: a brand-new cloud (rev far behind the client's) at a
	// new address. The delta path must detect the reset and resync in
	// full rather than serving the dead site's snapshot.
	e2 := rig.engine
	c2 := iaas.NewCloud(e2, rig.cloud.Name, "openstack", "chicago")
	c2.AddRack("r", 4)
	c2.SetQuota("carol", iaas.Quota{MaxInstances: 4, MaxCores: 16})
	if _, err := c2.Launch("carol", "c1", "m1.small", ""); err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(NewServer(c2))
	t.Cleanup(srv2.Close)
	rig.cloud = c2
	rig.local = NewLocal(c2)
	rig.remote.endpoint = strings.TrimRight(srv2.URL, "/")
	checkpoint("after site restart")
}

// TestUsagePlaneWire pins the raw wire contract: a non-integer since is a
// 400, a negative since is a 400 carrying Local's error text, and
// same-rev reads coalesce onto one computed snapshot.
func TestUsagePlaneWire(t *testing.T) {
	engineRig := newParityRig(t, "openstack")
	srv := NewServer(engineRig.cloud)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	if code, body := get("/cloudapi/usage?since=banana"); code != http.StatusBadRequest ||
		!strings.Contains(body, `bad usage since`) {
		t.Fatalf("non-integer since: %d %s", code, body)
	}
	if code, body := get("/cloudapi/usage?since=-3"); code != http.StatusBadRequest ||
		!strings.Contains(body, "cloudapi: bad usage since -3") {
		t.Fatalf("negative since: %d %s", code, body)
	}

	// Coalescing: the same since at the same rev is answered from cache
	// with byte-identical bodies; churn invalidates it.
	_, first := get("/cloudapi/usage?since=0")
	hits0 := srv.UsageCacheHits.Load()
	_, second := get("/cloudapi/usage?since=0")
	if first != second {
		t.Fatalf("coalesced bodies diverged:\n%s\n%s", first, second)
	}
	if srv.UsageCacheHits.Load() != hits0+1 {
		t.Fatalf("second same-rev read missed the cache (hits %d → %d)", hits0, srv.UsageCacheHits.Load())
	}
	// The full snapshot coalesces too, under its own key.
	_, _ = get("/cloudapi/usage")
	h := srv.UsageCacheHits.Load()
	_, _ = get("/cloudapi/usage")
	if srv.UsageCacheHits.Load() != h+1 {
		t.Fatal("full-snapshot read did not coalesce")
	}

	if _, err := engineRig.cloud.Launch("alice", "a1", "m1.small", ""); err != nil {
		t.Fatal(err)
	}
	hBefore := srv.UsageCacheHits.Load()
	_, fresh := get("/cloudapi/usage?since=0")
	if srv.UsageCacheHits.Load() != hBefore {
		t.Fatal("post-churn read was served from the stale cache")
	}
	var d UsageDelta
	if err := json.Unmarshal([]byte(fresh), &d); err != nil {
		t.Fatal(err)
	}
	if d.Changed["alice"].Instances != 1 {
		t.Fatalf("post-churn delta = %+v", d)
	}
}

// TestPprofGate pins the profiling plane's auth: absent without a
// configured secret, 403 without the header, served with it — identically
// on a cloud server and on tukey-server (which shares ServePprof).
func TestPprofGate(t *testing.T) {
	rig := newParityRig(t, "openstack")

	// newParityRig configures no secret: the plane does not exist.
	open := httptest.NewServer(NewServer(rig.cloud))
	t.Cleanup(open.Close)
	resp, err := http.Get(open.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without secret = %d, want 404", resp.StatusCode)
	}

	gatedSrv := NewServer(rig.cloud)
	gatedSrv.OperatorSecret = "s3cret"
	gated := httptest.NewServer(gatedSrv)
	t.Cleanup(gated.Close)

	resp, err = http.Get(gated.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unauthenticated pprof = %d, want 403", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodGet, gated.URL+"/debug/pprof/", nil)
	req.Header.Set("X-OSDC-Operator", "wrong")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("wrong-secret pprof = %d, want 403", resp.StatusCode)
	}

	req.Header.Set("X-OSDC-Operator", "s3cret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "profile") {
		t.Fatalf("authenticated pprof = %d (%d bytes)", resp.StatusCode, len(body))
	}
}
