package cloudapi

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"osdc/internal/telemetry"
)

// TestMetricsGate pins the telemetry plane's auth on a cloud server:
// absent without a configured secret (404), 403 without or with the
// wrong X-OSDC-Operator header, served in exposition format with it —
// the exact contract ServePprof set for the profiling plane.
func TestMetricsGate(t *testing.T) {
	rig := newParityRig(t, "openstack")

	open := httptest.NewServer(NewServer(rig.cloud))
	t.Cleanup(open.Close)
	resp, err := http.Get(open.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("metrics without secret = %d, want 404", resp.StatusCode)
	}

	gatedSrv := NewServer(rig.cloud)
	gatedSrv.OperatorSecret = "s3cret"
	gated := httptest.NewServer(gatedSrv)
	t.Cleanup(gated.Close)

	resp, err = http.Get(gated.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unauthenticated metrics = %d, want 403", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodGet, gated.URL+"/metrics", nil)
	req.Header.Set("X-OSDC-Operator", "wrong")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("wrong-secret metrics = %d, want 403", resp.StatusCode)
	}

	req.Header.Set("X-OSDC-Operator", "s3cret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated metrics = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	parsed, err := telemetry.ParseText(body)
	if err != nil {
		t.Fatalf("exposition body does not parse: %v", err)
	}
	for _, want := range []string{
		`osdc_usage_cache_hits_total{cloud="parity-openstack"}`,
		`osdc_usage_cache_resets_total{cloud="parity-openstack"}`,
	} {
		if _, ok := parsed[want]; !ok {
			t.Errorf("series %s missing from cloud-server exposition: %v", want, parsed)
		}
	}
}

// TestSiteMetricsCarryEngineSeries: a Site's /metrics includes its
// kernel's per-shard series — the collector's raw material.
func TestSiteMetricsCarryEngineSeries(t *testing.T) {
	rig := newParityRig(t, "openstack")
	site, err := StartSiteWithOptions(rig.engine, rig.cloud, SiteOptions{OperatorSecret: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)

	req, _ := http.NewRequest(http.MethodGet, site.URL+"/metrics", nil)
	req.Header.Set("X-OSDC-Operator", "s3cret")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("site metrics = %d, want 200", resp.StatusCode)
	}
	parsed, err := telemetry.ParseText(body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`osdc_engine_pending{shard="0"}`,
		`osdc_engine_fired_total{shard="0"}`,
		`osdc_engine_now_seconds{shard="0"}`,
	} {
		if _, ok := parsed[want]; !ok {
			t.Errorf("series %s missing from site exposition", want)
		}
	}
}
