package cloudapi

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"osdc/internal/datastore"
	"osdc/internal/iaas"
	"osdc/internal/sim"
)

// Site is one cloud running as its own miniature process: a private engine
// (and a clock source advancing it), the cloud it hosts, and a loopback
// HTTP listener serving the cloud's Server. This is the remote-topology
// building block — every service reaches a Site only through a Remote
// pointed at its URL.
//
// Clock: in ClockFreeRun mode the site's engine tracks wall time at its
// own speedup, independent of every other engine (the historic behavior);
// in ClockFollow mode a sim.Follower drives it toward targets published on
// the site's /cloudapi/clock plane, which is how a ClockCoordinator keeps
// the federation's engines within a bounded skew of the console.
type Site struct {
	Engine *sim.Engine
	Cloud  *iaas.Cloud
	URL    string
	Mode   ClockMode
	// Datasets is the site's dataset store, when the site serves the data
	// plane (SiteOptions.Datasets); nil otherwise.
	Datasets datastore.API
	// Set is the site's sharded kernel when one was passed in
	// (SiteOptions.Set); Engine is then its anchor shard. Nil for a
	// single-engine site.
	Set *sim.ShardSet

	clock    sim.ClockSource
	follower *sim.Follower // non-nil in follow mode
	secret   string
	ln       net.Listener
	srv      *Server
}

// SiteOptions tune how StartSiteWithOptions stands a site up.
type SiteOptions struct {
	// Clock picks the engine's clock source; see Site's doc comment.
	Clock ClockMode
	// Speedup is simulated seconds per wall second in free-run mode
	// (<= 0 leaves the clock frozen). In follow mode it caps the catch-up
	// rate instead (<= 0 means unbounded: jump to each target).
	Speedup float64
	// Tick is the clock source's wall interval; <= 0 means 2 ms.
	Tick time.Duration
	// Addr is the listen address; "" means an ephemeral loopback port
	// (the in-process default — cmd/cloud-site passes its -addr flag).
	Addr string
	// Datasets, when set, is served as the site's /cloudapi/datasets
	// plane (typically the site's local *datastore.Store).
	Datasets datastore.API
	// OperatorSecret, when non-empty, gates operator-plane writes on the
	// site's server; Remote()s built from the site carry it.
	OperatorSecret string
	// Set, when non-nil, is the site's sharded kernel: its anchor must be
	// the engine passed to StartSiteWithOptions. The clock source then
	// advances all shards to a common target each tick and the cloud's
	// per-instance timers land on their owning shards. The clock plane is
	// unchanged — it publishes and follows the anchor's time, which bounds
	// every shard through the common-target invariant.
	Set *sim.ShardSet
}

// StartSite serves c's per-cloud Server on an ephemeral loopback port with
// a free-running clock: when speedup > 0, a wall-clock driver advances e
// (speedup simulated seconds per wall second). It is the historic
// constructor; StartSiteWithOptions adds the clock mode choice.
func StartSite(e *sim.Engine, c *iaas.Cloud, speedup float64) (*Site, error) {
	return StartSiteWithOptions(e, c, SiteOptions{Clock: ClockFreeRun, Speedup: speedup})
}

// StartSiteWithOptions serves c's per-cloud Server on an ephemeral loopback
// port, with the engine driven per opt. The site's Server always exposes
// the clock plane: readable in both modes, sync-able only in follow mode.
func StartSiteWithOptions(e *sim.Engine, c *iaas.Cloud, opt SiteOptions) (*Site, error) {
	addr := opt.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cloudapi: site %s: %w", c.Name, err)
	}
	tick := opt.Tick
	if tick <= 0 {
		tick = 2 * time.Millisecond
	}
	if opt.Set != nil && opt.Set.Anchor() != e {
		_ = ln.Close()
		return nil, fmt.Errorf("cloudapi: site %s: shard set's anchor is not the site engine", c.Name)
	}
	s := &Site{
		Engine: e, Cloud: c, Mode: opt.Clock, Datasets: opt.Datasets,
		Set: opt.Set,
		URL: "http://" + ln.Addr().String(), ln: ln, secret: opt.OperatorSecret,
	}
	if opt.Set != nil {
		c.SetShards(opt.Set)
	}
	srv := NewServer(c)
	srv.Datasets = opt.Datasets
	srv.OperatorSecret = opt.OperatorSecret
	s.srv = srv
	// The site's kernel is its own: its engine series belong on the site's
	// /metrics, where the federation collector picks them up per member.
	if opt.Set != nil {
		RegisterKernel(srv.Metrics, opt.Set)
	} else {
		RegisterEngine(srv.Metrics, "0", e)
	}
	switch opt.Clock {
	case ClockFollow:
		if opt.Set != nil {
			s.follower = sim.StartShardFollower(opt.Set, opt.Speedup, tick)
		} else {
			s.follower = sim.StartFollower(e, opt.Speedup, tick)
		}
		s.clock = s.follower
		srv.Clock = FollowerClock{F: s.follower}
	default:
		if opt.Speedup > 0 {
			if opt.Set != nil {
				s.clock = sim.StartShardDriver(opt.Set, opt.Speedup, tick)
			} else {
				s.clock = sim.StartDriver(e, opt.Speedup, tick)
			}
		} else if opt.Set != nil {
			// No clock source, but handlers may still schedule against any
			// shard (instance boot timers), so the whole set goes shared.
			opt.Set.Share()
		}
		srv.Clock = EngineClock{E: e}
	}
	go func() { _ = http.Serve(ln, srv) }()
	return s, nil
}

// Remote returns a client for this site, carrying the site's operator
// secret when one is set.
func (s *Site) Remote() *Remote {
	return s.RemoteWithClient(nil)
}

// RemoteWithClient returns a client for this site using the given HTTP
// client (nil for a private client with DefaultTimeout).
func (s *Site) RemoteWithClient(client *http.Client) *Remote {
	r := NewRemote(s.Cloud.Name, s.Cloud.Stack, s.URL, client)
	r.SetOperatorSecret(s.secret)
	return r
}

// DatasetsRemote returns a data-plane client for this site, carrying the
// site's operator secret when one is set. Nil when the site serves no
// datasets plane.
func (s *Site) DatasetsRemote(client *http.Client) *datastore.Remote {
	if s.Datasets == nil {
		return nil
	}
	r := datastore.NewRemote(s.Datasets.Name(), s.Datasets.Loc(), s.URL, client)
	r.SetOperatorSecret(s.secret)
	return r
}

// Follower returns the follower driving this site's clock, or nil in
// free-run mode.
func (s *Site) Follower() *sim.Follower { return s.follower }

// Server returns the site's HTTP server — the handle services use to
// reach its telemetry registry or usage-cache counters in-process.
func (s *Site) Server() *Server { return s.srv }

// Close stops the clock source (if any) and the listener.
func (s *Site) Close() {
	if s.clock != nil {
		s.clock.Stop()
	}
	_ = s.ln.Close()
}
