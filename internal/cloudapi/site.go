package cloudapi

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"osdc/internal/iaas"
	"osdc/internal/sim"
)

// Site is one cloud running as its own miniature process: a private engine
// (and optionally a wall-clock driver advancing it), the cloud it hosts,
// and a loopback HTTP listener serving the cloud's Server. This is the
// remote-topology building block — every service reaches a Site only
// through a Remote pointed at its URL.
//
// Clock note: a Site's engine ticks independently of every other engine in
// the process. The services tolerate that (billing samples whatever the
// remote cloud reports now); cross-engine clock sync is the contained
// follow-up this layer was cut for.
type Site struct {
	Engine *sim.Engine
	Cloud  *iaas.Cloud
	URL    string

	driver *sim.Driver
	ln     net.Listener
}

// StartSite serves c's per-cloud Server on an ephemeral loopback port and,
// when speedup > 0, starts a wall-clock driver advancing e (speedup
// simulated seconds per wall second).
func StartSite(e *sim.Engine, c *iaas.Cloud, speedup float64) (*Site, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cloudapi: site %s: %w", c.Name, err)
	}
	s := &Site{Engine: e, Cloud: c, URL: "http://" + ln.Addr().String(), ln: ln}
	go func() { _ = http.Serve(ln, NewServer(c)) }()
	if speedup > 0 {
		s.driver = sim.StartDriver(e, speedup, 2*time.Millisecond)
	}
	return s, nil
}

// Remote returns a client for this site.
func (s *Site) Remote() *Remote {
	return NewRemote(s.Cloud.Name, s.Cloud.Stack, s.URL, nil)
}

// Close stops the driver (if any) and the listener.
func (s *Site) Close() {
	if s.driver != nil {
		s.driver.Stop()
	}
	_ = s.ln.Close()
}
