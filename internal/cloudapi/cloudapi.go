// Package cloudapi is the federation's transport layer: the seam between
// every OSDC service (Tukey middleware, billing, monitoring, scenarios) and
// the clouds they mediate.
//
// The paper's defining property is that the OSDC is a *federation*: the
// clouds run at different sites behind their own native APIs, and the
// science-cloud services reach them over the network (§5.2, §7). CloudAPI
// captures the operations those services need — tenant-plane provisioning
// (Launch, Terminate, Instances, Images) plus the operator plane the
// billing and monitoring pollers use (Usage sampling, quotas, flavors) —
// behind one interface with two backends:
//
//   - Local wraps an in-process *iaas.Cloud, preserving the single-process
//     deterministic topology every simulation scenario runs in;
//   - Remote is an HTTP client that speaks each cloud's native dialect
//     (OpenStack JSON for "openstack" stacks, EC2 query/XML for
//     "eucalyptus") for the tenant plane, and a small JSON operator API
//     for the rest, against a per-cloud Server.
//
// After this layer, a cloud is an address, not a pointer: tukey-server's
// -remote-clouds mode gives every cloud its own engine, clock driver and
// HTTP listener, and the services federate over the wire exactly as the
// paper deploys them.
package cloudapi

import (
	"errors"

	"osdc/internal/iaas"
)

// ErrNotFound reports an instance ID unknown to the cloud.
var ErrNotFound = errors.New("cloudapi: instance not found")

// Instance is the federation-level view of one VM: the fields every native
// dialect can carry. Site-local details (hypervisor host, launch
// timestamps) deliberately do not cross this boundary — the EC2 dialect
// never exposes them, and no mediating service needs them.
type Instance struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	User   string `json:"user"`
	Flavor string `json:"flavor"`
	Image  string `json:"image,omitempty"`
	Status string `json:"status"` // OpenStack-style: BUILD, ACTIVE, ...
}

// Image is the federation-level view of a machine image.
type Image struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Public bool   `json:"public"`
}

// UserUsage is one user's running footprint on one cloud.
type UserUsage struct {
	Instances int `json:"instances"`
	Cores     int `json:"cores"`
}

// Usage is the sample the billing and monitoring pollers take: per-user
// footprints plus cloud-wide core occupancy (§6.4: "we poll every minute to
// see the number and types of virtual machine a user has provisioned").
//
// Rev is the cloud's usage revision at (or just before) the moment the
// sample was taken: feed it to UsageSince to receive only the churn after
// this snapshot. Equal revs imply identical samples.
type Usage struct {
	Rev        int64                `json:"rev"`
	ByUser     map[string]UserUsage `json:"by_user"`
	UsedCores  int                  `json:"used_cores"`
	TotalCores int                  `json:"total_cores"`
}

// UsageDelta is UsageSince's result: the cloud's per-user footprints
// relative to a revision the caller already holds, shaped like the
// datasets plane's Delta. Changed carries absolute values, not
// increments, so applying a delta twice is harmless; Removed lists users
// whose last running instance went away in the window, sorted; Reset
// means Changed is the complete population and any carried-forward
// snapshot must be discarded (fresh caller, or the cloud restarted under
// the caller). Core occupancy rides along so a delta poller can maintain
// a full Usage without a second round trip.
type UsageDelta struct {
	Rev        int64                `json:"rev"`
	Changed    map[string]UserUsage `json:"changed,omitempty"`
	Removed    []string             `json:"removed,omitempty"`
	Reset      bool                 `json:"reset,omitempty"`
	UsedCores  int                  `json:"used_cores"`
	TotalCores int                  `json:"total_cores"`
}

// CloudAPI is one attached cloud as the federation services see it.
//
// Implementations must be safe for concurrent use: Tukey HTTP handlers,
// billing pollers and monitoring sweeps all call in at once.
type CloudAPI interface {
	// Name is the federation-wide cloud name (e.g. "OSDC-Adler").
	Name() string
	// Stack is the native API dialect: "openstack" or "eucalyptus".
	Stack() string

	// Launch provisions a VM for user. flavor is the cloud's native flavor
	// name (dialect translation happens in the Tukey middleware, per its
	// configuration files). Quota and capacity rejections surface as
	// iaas.ErrQuota / iaas.ErrCapacity through both backends.
	Launch(user, name, flavor, image string) (Instance, error)
	// Terminate releases user's instance id.
	Terminate(user, id string) error
	// Stop shuts user's instance id down (it reaches SHUTOFF after the
	// cloud's stop delay and stops accruing usage, keeping its
	// allocation). Maps to OpenStack's os-stop action and EC2's
	// StopInstances.
	Stop(user, id string) error
	// Instances lists user's non-terminated instances, sorted by ID.
	Instances(user string) ([]Instance, error)
	// Instance looks one instance up by ID (any state, any owner);
	// ErrNotFound if the cloud has never heard of it.
	Instance(id string) (Instance, error)
	// Images lists the images visible to user, sorted by ID.
	Images(user string) ([]Image, error)
	// Flavors lists offered instance sizes, sorted by cores.
	Flavors() ([]iaas.Flavor, error)
	// SetQuota replaces user's free-tier quota.
	SetQuota(user string, q iaas.Quota) error
	// Usage samples the cloud's current running footprint.
	Usage() (Usage, error)
	// UsageSince returns the usage churn after revision since: pass a
	// Usage's (or previous delta's) Rev and receive only the users whose
	// footprint changed. since == 0 is a fresh caller and yields a Reset
	// snapshot; since < 0 is rejected with an error through both
	// backends.
	UsageSince(since int64) (UsageDelta, error)
}

// IsQuota reports whether err is a quota rejection through either backend.
func IsQuota(err error) bool {
	var q iaas.ErrQuota
	return errors.As(err, &q)
}

// IsCapacity reports whether err is a capacity rejection through either
// backend.
func IsCapacity(err error) bool {
	var c iaas.ErrCapacity
	return errors.As(err, &c)
}
