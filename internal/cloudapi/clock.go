package cloudapi

import (
	"errors"

	"osdc/internal/sim"
)

// The clock plane is the transport layer's answer to the federation's
// free-running-engines problem: once every site owns a private sim.Engine,
// invoice cycles on the console engine and VM lifetimes on site engines
// drift apart over long runs. /cloudapi/clock exposes a site's virtual
// clock the same way /cloudapi/usage exposes its footprint: GET reads the
// current virtual time and mode, POST (follow mode only) publishes a sync
// target the site's sim.Follower advances toward. A ClockCoordinator on
// the console side pushes the console engine's time to every followed site
// each sync interval and records the skew it observes.

// ClockMode says how a site's engine clock advances.
type ClockMode int

const (
	// ClockFreeRun is the historic behavior: the site's engine tracks wall
	// time at its own speedup, unsynchronized with every other engine.
	ClockFreeRun ClockMode = iota
	// ClockFollow makes the site's engine advance only toward targets
	// published on the clock plane (a sim.Follower drives it).
	ClockFollow
)

// String returns the wire name of the mode.
func (m ClockMode) String() string {
	if m == ClockFollow {
		return "follow"
	}
	return "free-run"
}

// ErrFreeRunning reports a sync attempt against a free-running clock: the
// site has its own wall-clock driver and accepts no targets.
var ErrFreeRunning = errors.New("cloudapi: clock is free-running, not following")

// ClockStatus is the /cloudapi/clock wire form: the site engine's current
// virtual time in seconds, its mode, and — in follow mode — the newest
// published target.
type ClockStatus struct {
	Now    float64 `json:"now"`
	Mode   string  `json:"mode"`
	Target float64 `json:"target,omitempty"`
}

// ClockPlane is what a Server exposes under /cloudapi/clock: a readable
// virtual clock that may, in follow mode, accept sync targets.
type ClockPlane interface {
	// ClockStatus reports the clock's current state.
	ClockStatus() ClockStatus
	// SyncTo publishes a target virtual time for the clock to advance
	// toward. Free-running clocks return ErrFreeRunning.
	SyncTo(target sim.Time) error
}

// EngineClock is the free-running ClockPlane over a bare engine: readable,
// not syncable. It serves the single-process topology, where every cloud
// shares the federation engine and there is nothing to synchronize.
type EngineClock struct {
	E *sim.Engine
}

// ClockStatus implements ClockPlane.
func (c EngineClock) ClockStatus() ClockStatus {
	return ClockStatus{Now: float64(c.E.Now()), Mode: ClockFreeRun.String()}
}

// SyncTo implements ClockPlane: free-running clocks accept no targets.
func (c EngineClock) SyncTo(sim.Time) error { return ErrFreeRunning }

// FollowerClock adapts a sim.Follower into the ClockPlane: GETs read the
// engine it drives, POSTs become SetTarget calls.
type FollowerClock struct {
	F *sim.Follower
}

// ClockStatus implements ClockPlane.
func (c FollowerClock) ClockStatus() ClockStatus {
	return ClockStatus{
		Now:    float64(c.F.Engine().Now()),
		Mode:   ClockFollow.String(),
		Target: float64(c.F.Target()),
	}
}

// SyncTo implements ClockPlane.
func (c FollowerClock) SyncTo(target sim.Time) error {
	c.F.SetTarget(target)
	return nil
}
