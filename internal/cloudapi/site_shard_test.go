package cloudapi

import (
	"testing"
	"time"

	"osdc/internal/iaas"
	"osdc/internal/sim"
)

// TestShardedSiteFollowMode stands a site up on a 4-shard kernel in
// follow mode and walks the whole loop over the wire: instances launched
// through the Remote get boot timers on their owning shards, pushed clock
// targets advance every shard in lockstep, and the boots complete even
// though none of them live on the anchor engine alone.
func TestShardedSiteFollowMode(t *testing.T) {
	set := sim.NewShardSet(9, 4)
	e := set.Anchor()
	site, err := StartSiteWithOptions(e, testCloud(e, "shard-test", "openstack"),
		SiteOptions{Clock: ClockFollow, Tick: time.Millisecond, Set: set})
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	if site.Set != set {
		t.Fatal("site does not expose its shard set")
	}
	r := site.Remote()

	var ids []string
	for _, user := range []string{"alice", "bob", "carol", "dave"} {
		inst, err := r.Launch(user, "vm", "m1.small", "")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, inst.ID)
	}

	// Advance past the 90 s boot delay; the follower must carry every
	// shard (not just the anchor) to the target.
	if err := r.ClockSync(120); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, func() bool { return set.Now() >= 120 },
		"sharded follower never reached the pushed target")
	if set.Skew() != 0 {
		t.Fatalf("cross-shard skew %v at target, want 0", set.Skew())
	}
	for _, id := range ids {
		inst, ok := site.Cloud.Instance(id)
		if !ok {
			t.Fatalf("instance %s vanished", id)
		}
		if inst.State != iaas.StateActive {
			t.Fatalf("instance %s state %s after boot window, want ACTIVE", id, inst.State)
		}
	}
}

// TestShardedSiteAnchorMismatch: passing a set whose anchor is not the
// site engine is a wiring bug and must be rejected.
func TestShardedSiteAnchorMismatch(t *testing.T) {
	set := sim.NewShardSet(9, 2)
	other := sim.NewEngine(10)
	_, err := StartSiteWithOptions(other, testCloud(other, "shard-mismatch", "openstack"),
		SiteOptions{Set: set})
	if err == nil {
		t.Fatal("mismatched shard set accepted")
	}
}
