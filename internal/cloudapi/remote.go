package cloudapi

import (
	"encoding/json"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"osdc/internal/iaas"
	"osdc/internal/sim"
)

// Remote is the over-the-wire CloudAPI backend: an HTTP client that reaches
// a per-cloud Server. Tenant operations speak the cloud's *native* dialect
// — OpenStack JSON for "openstack" stacks, EC2 query calls with XML
// responses for "eucalyptus" — exactly the translation work the Tukey
// middleware's proxies did in-process before this layer existed (§5.2);
// operator operations (usage, quotas, EC2 flavor listings, ID lookup) use
// the Server's JSON plane.
//
// Quota and capacity rejections are mapped back onto iaas.ErrQuota /
// iaas.ErrCapacity so callers see the same error classes through both
// backends.
type Remote struct {
	name     string
	stack    string
	endpoint string // base URL, no trailing slash
	client   *http.Client
	secret   string // X-OSDC-Operator header on operator-plane writes

	// usageMu guards the delta-maintained usage snapshot: Usage() fetches
	// the full sample once, then advances it with UsageSince(lastRev)
	// round trips that carry only the churn — the wire-side half of the
	// incremental accounting path. A Reset delta (site restarted) rebuilds
	// the snapshot from the delta's full population.
	usageMu   sync.Mutex
	usageSnap map[string]UserUsage
	usageRev  int64
	haveUsage bool

	// deltaHits counts Usage() calls advanced by a since-rev delta;
	// deltaResets counts cache drops that forced a full resync — the
	// client-side usage-delta health the telemetry plane surfaces.
	deltaHits   atomic.Int64
	deltaResets atomic.Int64
}

// DefaultTimeout bounds every round trip of a Remote built with a nil
// client. The billing and monitoring pollers call Usage() from the
// clock-driving goroutine: without a deadline, one hung site would block
// the driver and freeze the entire simulation clock instead of surfacing
// as a PollErrors increment.
const DefaultTimeout = 10 * time.Second

// NewRemote builds a client for the cloud name speaking stack ("openstack"
// or "eucalyptus") at endpoint. client may be nil for a private client
// with DefaultTimeout.
func NewRemote(name, stack, endpoint string, client *http.Client) *Remote {
	if stack != "openstack" && stack != "eucalyptus" {
		panic("cloudapi: unsupported stack " + stack)
	}
	if client == nil {
		client = &http.Client{Timeout: DefaultTimeout}
	}
	return &Remote{name: name, stack: stack, endpoint: strings.TrimRight(endpoint, "/"), client: client}
}

// ProbeRemote builds a client for whatever cloud serves endpoint by asking
// its /cloudapi/meta discovery document for the name and stack — how
// tukey-server attaches an externally running cloud-site process it knows
// only by URL. client may be nil for a private client with DefaultTimeout.
func ProbeRemote(endpoint string, client *http.Client) (*Remote, error) {
	if client == nil {
		client = &http.Client{Timeout: DefaultTimeout}
	}
	resp, err := client.Get(strings.TrimRight(endpoint, "/") + "/cloudapi/meta")
	if err != nil {
		return nil, fmt.Errorf("cloudapi: probing %s: %w", endpoint, err)
	}
	defer resp.Body.Close()
	var m meta
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil || resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cloudapi: %s is not a cloud site (status %d, err %v)", endpoint, resp.StatusCode, err)
	}
	if m.Name == "" || (m.Stack != "openstack" && m.Stack != "eucalyptus") {
		return nil, fmt.Errorf("cloudapi: %s reported unusable meta %+v", endpoint, m)
	}
	return NewRemote(m.Name, m.Stack, endpoint, client), nil
}

// SetOperatorSecret makes every operator-plane write (quota updates, clock
// targets) carry the shared secret in the X-OSDC-Operator header — the
// client half of Server.OperatorSecret.
func (r *Remote) SetOperatorSecret(secret string) { r.secret = secret }

// operatorPost issues one operator-plane write with the secret header.
func (r *Remote) operatorPost(path, payload string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, r.endpoint+path, strings.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if r.secret != "" {
		req.Header.Set("X-OSDC-Operator", r.secret)
	}
	return r.client.Do(req)
}

// Name implements CloudAPI.
func (r *Remote) Name() string { return r.name }

// Stack implements CloudAPI.
func (r *Remote) Stack() string { return r.stack }

// Endpoint returns the base URL the client speaks to.
func (r *Remote) Endpoint() string { return r.endpoint }

// ec2ToOpenStack maps EC2 state names to OpenStack statuses — one of the
// §5.2 "rules of the configuration file".
func ec2ToOpenStack(s string) string {
	switch s {
	case "pending":
		return "BUILD"
	case "running":
		return "ACTIVE"
	case "stopped":
		return "SHUTOFF"
	case "terminated":
		return "TERMINATED"
	default:
		return strings.ToUpper(s)
	}
}

// launchError classifies a rejected launch: quota and capacity rejections
// keep their iaas error classes across the wire.
func (r *Remote) launchError(user, flavor string, status int, ecode, msg string) error {
	switch {
	case status == http.StatusForbidden || ecode == "InstanceLimitExceeded":
		return fmt.Errorf("cloudapi: %s: %w", r.name, iaas.ErrQuota{User: user, Reason: msg})
	case status == http.StatusConflict || ecode == "InsufficientInstanceCapacity":
		return fmt.Errorf("cloudapi: %s: %w", r.name, iaas.ErrCapacity{Flavor: flavor})
	}
	return fmt.Errorf("cloudapi: %s rejected launch (%d): %s", r.name, status, msg)
}

// --- the OpenStack JSON dialect ---

// novaWire is the wire form NovaAPI serves for one server.
type novaWire struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Status string `json:"status"`
	Flavor string `json:"flavorRef"`
	Image  string `json:"imageRef"`
	UserID string `json:"user_id"`
}

func (w novaWire) instance(user string) Instance {
	if w.UserID != "" {
		user = w.UserID
	}
	return Instance{ID: w.ID, Name: w.Name, User: user, Flavor: w.Flavor, Image: w.Image, Status: w.Status}
}

func (r *Remote) novaDo(method, path, body, user string) (*http.Response, error) {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, r.endpoint+path, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set("X-Auth-User", user)
	return r.client.Do(req)
}

func (r *Remote) novaInstances(user string) ([]Instance, error) {
	resp, err := r.novaDo(http.MethodGet, "/v2/servers", "", user)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var body struct {
		Servers []novaWire `json:"servers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	var out []Instance
	for _, s := range body.Servers {
		out = append(out, s.instance(user))
	}
	return out, nil
}

func (r *Remote) novaLaunch(user, name, flavor, image string) (Instance, error) {
	payload := fmt.Sprintf(`{"server":{"name":%q,"flavorRef":%q,"imageRef":%q}}`, name, flavor, image)
	resp, err := r.novaDo(http.MethodPost, "/v2/servers", payload, user)
	if err != nil {
		return Instance{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var fail struct {
			Error struct {
				Message string `json:"message"`
			} `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&fail)
		return Instance{}, r.launchError(user, flavor, resp.StatusCode, "", fail.Error.Message)
	}
	var body struct {
		Server novaWire `json:"server"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return Instance{}, err
	}
	return body.Server.instance(user), nil
}

func (r *Remote) novaTerminate(user, id string) error {
	resp, err := r.novaDo(http.MethodDelete, "/v2/servers/"+id, "", user)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("cloudapi: terminate on %s returned %d", r.name, resp.StatusCode)
	}
	return nil
}

func (r *Remote) novaStop(user, id string) error {
	resp, err := r.novaDo(http.MethodPost, "/v2/servers/"+id+"/action", `{"os-stop": null}`, user)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("cloudapi: stop on %s returned %d", r.name, resp.StatusCode)
	}
	return nil
}

func (r *Remote) novaImages(user string) ([]Image, error) {
	resp, err := r.novaDo(http.MethodGet, "/v2/images", "", user)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var body struct {
		Images []Image `json:"images"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Images, nil
}

func (r *Remote) novaFlavors() ([]iaas.Flavor, error) {
	resp, err := r.novaDo(http.MethodGet, "/v2/flavors", "", "flavor-reader")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var body struct {
		Flavors []struct {
			Name   string `json:"name"`
			VCPUs  int    `json:"vcpus"`
			RAMMB  int    `json:"ram"`
			DiskGB int    `json:"disk"`
		} `json:"flavors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	var out []iaas.Flavor
	for _, f := range body.Flavors {
		out = append(out, iaas.Flavor{Name: f.Name, VCPUs: f.VCPUs, RAMMB: f.RAMMB, DiskGB: f.DiskGB})
	}
	return out, nil
}

// --- the EC2 query/XML dialect ---

func (r *Remote) ec2Get(q url.Values) (int, []byte, error) {
	resp, err := r.client.Get(r.endpoint + "/?" + q.Encode())
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, err
}

// ec2FailBody extracts the error code and message from an EC2 error
// response.
func ec2FailBody(raw []byte) (code, msg string) {
	var fail struct {
		Code    string `xml:"Errors>Error>Code"`
		Message string `xml:"Errors>Error>Message"`
	}
	_ = xml.Unmarshal(raw, &fail)
	return fail.Code, fail.Message
}

func (r *Remote) ec2Instances(user string) ([]Instance, error) {
	q := url.Values{"Action": {"DescribeInstances"}, "AWSAccessKeyId": {user}}
	status, raw, err := r.ec2Get(q)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		_, msg := ec2FailBody(raw)
		return nil, fmt.Errorf("cloudapi: %s DescribeInstances (%d): %s", r.name, status, msg)
	}
	var body struct {
		Reservations []struct {
			Items []struct {
				InstanceID   string `xml:"instanceId"`
				ImageID      string `xml:"imageId"`
				InstanceType string `xml:"instanceType"`
				StateName    string `xml:"instanceState>name"`
				KeyName      string `xml:"keyName"`
			} `xml:"instancesSet>item"`
		} `xml:"reservationSet>item"`
	}
	if err := xml.Unmarshal(raw, &body); err != nil {
		return nil, err
	}
	var out []Instance
	for _, res := range body.Reservations {
		for _, it := range res.Items {
			out = append(out, Instance{
				ID: it.InstanceID, Name: it.KeyName, User: user,
				Flavor: it.InstanceType, Image: it.ImageID, Status: ec2ToOpenStack(it.StateName),
			})
		}
	}
	return out, nil
}

func (r *Remote) ec2Launch(user, name, flavor, image string) (Instance, error) {
	q := url.Values{
		"Action": {"RunInstances"}, "AWSAccessKeyId": {user},
		"InstanceType": {flavor}, "KeyName": {name},
	}
	if image != "" {
		q.Set("ImageId", image)
	}
	status, raw, err := r.ec2Get(q)
	if err != nil {
		return Instance{}, err
	}
	if status != http.StatusOK {
		code, msg := ec2FailBody(raw)
		return Instance{}, r.launchError(user, flavor, status, code, msg)
	}
	var body struct {
		Items []struct {
			InstanceID string `xml:"instanceId"`
			ImageID    string `xml:"imageId"`
			Type       string `xml:"instanceType"`
			StateName  string `xml:"instanceState>name"`
			KeyName    string `xml:"keyName"`
		} `xml:"instancesSet>item"`
	}
	if err := xml.Unmarshal(raw, &body); err != nil {
		return Instance{}, err
	}
	if len(body.Items) == 0 {
		return Instance{}, fmt.Errorf("cloudapi: empty RunInstances response from %s", r.name)
	}
	it := body.Items[0]
	return Instance{
		ID: it.InstanceID, Name: it.KeyName, User: user,
		Flavor: it.Type, Image: it.ImageID, Status: ec2ToOpenStack(it.StateName),
	}, nil
}

func (r *Remote) ec2Terminate(user, id string) error {
	q := url.Values{"Action": {"TerminateInstances"}, "AWSAccessKeyId": {user}, "InstanceId.1": {id}}
	status, raw, err := r.ec2Get(q)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		_, msg := ec2FailBody(raw)
		return fmt.Errorf("cloudapi: terminate on %s returned %d: %s", r.name, status, msg)
	}
	return nil
}

func (r *Remote) ec2Stop(user, id string) error {
	q := url.Values{"Action": {"StopInstances"}, "AWSAccessKeyId": {user}, "InstanceId.1": {id}}
	status, raw, err := r.ec2Get(q)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		_, msg := ec2FailBody(raw)
		return fmt.Errorf("cloudapi: stop on %s returned %d: %s", r.name, status, msg)
	}
	return nil
}

func (r *Remote) ec2Images(user string) ([]Image, error) {
	q := url.Values{"Action": {"DescribeImages"}, "AWSAccessKeyId": {user}}
	status, raw, err := r.ec2Get(q)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		_, msg := ec2FailBody(raw)
		return nil, fmt.Errorf("cloudapi: %s DescribeImages (%d): %s", r.name, status, msg)
	}
	var body struct {
		Images []struct {
			ImageID string `xml:"imageId"`
			Name    string `xml:"name"`
			Public  bool   `xml:"isPublic"`
		} `xml:"imagesSet>item"`
	}
	if err := xml.Unmarshal(raw, &body); err != nil {
		return nil, err
	}
	var out []Image
	for _, im := range body.Images {
		out = append(out, Image{ID: im.ImageID, Name: im.Name, Public: im.Public})
	}
	return out, nil
}

// --- the operator plane (JSON, stack-independent) ---

func (r *Remote) operatorGet(path string, into interface{}) (int, error) {
	resp, err := r.client.Get(r.endpoint + path)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	return resp.StatusCode, json.NewDecoder(resp.Body).Decode(into)
}

// --- CloudAPI ---

// Launch implements CloudAPI via the native dialect.
func (r *Remote) Launch(user, name, flavor, image string) (Instance, error) {
	if r.stack == "eucalyptus" {
		return r.ec2Launch(user, name, flavor, image)
	}
	return r.novaLaunch(user, name, flavor, image)
}

// Terminate implements CloudAPI via the native dialect.
func (r *Remote) Terminate(user, id string) error {
	if r.stack == "eucalyptus" {
		return r.ec2Terminate(user, id)
	}
	return r.novaTerminate(user, id)
}

// Stop implements CloudAPI via the native dialect.
func (r *Remote) Stop(user, id string) error {
	if r.stack == "eucalyptus" {
		return r.ec2Stop(user, id)
	}
	return r.novaStop(user, id)
}

// Instances implements CloudAPI via the native dialect.
func (r *Remote) Instances(user string) ([]Instance, error) {
	if r.stack == "eucalyptus" {
		return r.ec2Instances(user)
	}
	return r.novaInstances(user)
}

// Images implements CloudAPI via the native dialect.
func (r *Remote) Images(user string) ([]Image, error) {
	if r.stack == "eucalyptus" {
		return r.ec2Images(user)
	}
	return r.novaImages(user)
}

// Flavors implements CloudAPI: the OpenStack dialect lists flavors
// natively; EC2 never did, so the eucalyptus path uses the operator plane.
func (r *Remote) Flavors() ([]iaas.Flavor, error) {
	if r.stack == "openstack" {
		return r.novaFlavors()
	}
	var body struct {
		Flavors []iaas.Flavor `json:"flavors"`
	}
	status, err := r.operatorGet("/cloudapi/flavors", &body)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("cloudapi: %s flavors returned %d", r.name, status)
	}
	return body.Flavors, nil
}

// Instance implements CloudAPI via the operator plane.
func (r *Remote) Instance(id string) (Instance, error) {
	var inst Instance
	status, err := r.operatorGet("/cloudapi/instance?id="+url.QueryEscape(id), &inst)
	if err != nil {
		return Instance{}, err
	}
	if status == http.StatusNotFound {
		return Instance{}, ErrNotFound
	}
	if status != http.StatusOK {
		return Instance{}, fmt.Errorf("cloudapi: %s instance lookup returned %d", r.name, status)
	}
	return inst, nil
}

// SetQuota implements CloudAPI via the operator plane.
func (r *Remote) SetQuota(user string, q iaas.Quota) error {
	payload := fmt.Sprintf(`{"user":%q,"max_instances":%d,"max_cores":%d}`, user, q.MaxInstances, q.MaxCores)
	resp, err := r.operatorPost("/cloudapi/quota", payload)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("cloudapi: %s quota update returned %d", r.name, resp.StatusCode)
	}
	return nil
}

// Clock reads the site's clock plane: the site engine's current virtual
// time, mode, and (follow mode) newest target.
func (r *Remote) Clock() (ClockStatus, error) {
	var st ClockStatus
	status, err := r.operatorGet("/cloudapi/clock", &st)
	if err != nil {
		return ClockStatus{}, err
	}
	if status != http.StatusOK {
		return ClockStatus{}, fmt.Errorf("cloudapi: %s clock read returned %d", r.name, status)
	}
	return st, nil
}

// ClockSync publishes a target virtual time on the site's clock plane. A
// free-running site answers 409, surfaced as ErrFreeRunning so a
// coordinator can tell "does not follow" from "unreachable".
func (r *Remote) ClockSync(target sim.Time) error {
	payload := fmt.Sprintf(`{"target":%g}`, float64(target))
	resp, err := r.operatorPost("/cloudapi/clock", payload)
	if err != nil {
		return err
	}
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil
	case http.StatusConflict:
		return fmt.Errorf("cloudapi: %s: %w", r.name, ErrFreeRunning)
	}
	return fmt.Errorf("cloudapi: %s clock sync returned %d", r.name, resp.StatusCode)
}

// Usage implements CloudAPI via the operator plane. The first call takes
// a full snapshot; later calls advance it with ?since=rev deltas, so a
// steady-state poll over an unchanged cloud ships an empty delta instead
// of the whole per-user map. Any wire failure on the delta path falls
// back to a fresh full fetch, so the result is always what a full GET
// would have returned.
func (r *Remote) Usage() (Usage, error) {
	r.usageMu.Lock()
	defer r.usageMu.Unlock()
	if r.haveUsage {
		if d, err := r.UsageSince(r.usageRev); err == nil {
			r.deltaHits.Add(1)
			r.applyDelta(d)
			return r.snapshotUsage(d.UsedCores, d.TotalCores), nil
		}
		// The delta path failed (site unreachable, or it restarted with a
		// rev behind ours and rejected the since) — drop the snapshot and
		// resync in full below.
		r.deltaResets.Add(1)
		r.haveUsage = false
		r.usageSnap = nil
	}
	var u Usage
	status, err := r.operatorGet("/cloudapi/usage", &u)
	if err != nil {
		return Usage{}, err
	}
	if status != http.StatusOK {
		return Usage{}, fmt.Errorf("cloudapi: %s usage returned %d", r.name, status)
	}
	r.usageRev = u.Rev
	r.usageSnap = make(map[string]UserUsage, len(u.ByUser))
	for user, v := range u.ByUser {
		r.usageSnap[user] = v
	}
	r.haveUsage = true
	return u, nil
}

// applyDelta folds one UsageSince result into the cached snapshot.
// Callers hold usageMu.
func (r *Remote) applyDelta(d UsageDelta) {
	if d.Reset {
		r.usageSnap = make(map[string]UserUsage, len(d.Changed))
	}
	for user, v := range d.Changed {
		r.usageSnap[user] = v
	}
	for _, user := range d.Removed {
		delete(r.usageSnap, user)
	}
	r.usageRev = d.Rev
	r.haveUsage = true
}

// snapshotUsage copies the cached per-user map into a fresh Usage so
// callers never alias the cache. Callers hold usageMu.
func (r *Remote) snapshotUsage(usedCores, totalCores int) Usage {
	u := Usage{
		Rev:        r.usageRev,
		ByUser:     make(map[string]UserUsage, len(r.usageSnap)),
		UsedCores:  usedCores,
		TotalCores: totalCores,
	}
	for user, v := range r.usageSnap {
		u.ByUser[user] = v
	}
	return u
}

// UsageDeltaStats reports the delta-maintained usage cache's health:
// polls advanced by a delta versus cache drops that forced a full resync.
func (r *Remote) UsageDeltaStats() (hits, resets int64) {
	return r.deltaHits.Load(), r.deltaResets.Load()
}

// UsageSince implements CloudAPI via the operator plane's ?since= form.
// Server-reported rejections (a negative since) surface with the Local
// backend's error text, verbatim.
func (r *Remote) UsageSince(since int64) (UsageDelta, error) {
	resp, err := r.client.Get(fmt.Sprintf("%s/cloudapi/usage?since=%d", r.endpoint, since))
	if err != nil {
		return UsageDelta{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var fail struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&fail) == nil && fail.Error != "" {
			return UsageDelta{}, errors.New(fail.Error)
		}
		return UsageDelta{}, fmt.Errorf("cloudapi: %s usage delta returned %d", r.name, resp.StatusCode)
	}
	var d UsageDelta
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return UsageDelta{}, err
	}
	return d, nil
}
