package cloudapi

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"osdc/internal/iaas"
	"osdc/internal/sim"
)

// parityRig is one seeded cloud observed through both backends at once:
// Local holds the pointer, Remote goes over a live HTTP server speaking
// the cloud's native dialect.
type parityRig struct {
	engine *sim.Engine
	cloud  *iaas.Cloud
	local  *Local
	remote *Remote
}

func newParityRig(t *testing.T, stack string) *parityRig {
	t.Helper()
	e := sim.NewEngine(5)
	c := iaas.NewCloud(e, "parity-"+stack, stack, "chicago")
	c.AddRack("r", 4)
	c.RegisterImage(iaas.Image{ID: "img-pub", Name: "ubuntu", Public: true})
	c.RegisterImage(iaas.Image{ID: "img-alice", Name: "alice-private", Owner: "alice"})
	c.RegisterImage(iaas.Image{ID: "img-bob", Name: "bob-private", Owner: "bob"})
	c.SetQuota("alice", iaas.Quota{MaxInstances: 10, MaxCores: 100})

	srv := httptest.NewServer(NewServer(c))
	t.Cleanup(srv.Close)
	return &parityRig{
		engine: e, cloud: c,
		local:  NewLocal(c),
		remote: NewRemote(c.Name, stack, srv.URL, nil),
	}
}

// both runs one read through each backend and requires identical results.
func both[T any](t *testing.T, what string, viaLocal, viaRemote func() (T, error)) T {
	t.Helper()
	l, errL := viaLocal()
	r, errR := viaRemote()
	if errL != nil || errR != nil {
		t.Fatalf("%s: local err=%v remote err=%v", what, errL, errR)
	}
	if !reflect.DeepEqual(l, r) {
		t.Fatalf("%s diverged:\nlocal : %+v\nremote: %+v", what, l, r)
	}
	return l
}

// TestLocalRemoteParity drives every CloudAPI method through both backends
// against the same seeded cloud, once per native dialect, and requires
// identical observable results — the contract that makes the remote
// topology a deployment choice instead of a behavior change. CI runs it
// explicitly under -race: the Remote path crosses real HTTP server
// goroutines on every call.
func TestLocalRemoteParity(t *testing.T) {
	for _, stack := range []string{"openstack", "eucalyptus"} {
		t.Run(stack, func(t *testing.T) {
			rig := newParityRig(t, stack)
			local, remote := rig.local, rig.remote

			if local.Name() != remote.Name() || local.Stack() != remote.Stack() {
				t.Fatalf("identity diverged: %s/%s vs %s/%s",
					local.Name(), local.Stack(), remote.Name(), remote.Stack())
			}

			both(t, "Flavors",
				func() ([]iaas.Flavor, error) { return local.Flavors() },
				func() ([]iaas.Flavor, error) { return remote.Flavors() })
			images := both(t, "Images(alice)",
				func() ([]Image, error) { return local.Images("alice") },
				func() ([]Image, error) { return remote.Images("alice") })
			if len(images) != 2 {
				t.Fatalf("alice sees %d images, want public + her own: %+v", len(images), images)
			}

			// One launch through each backend; each result must be visible
			// identically through the other.
			viaRemote, err := remote.Launch("alice", "vm-r", "m1.small", "img-pub")
			if err != nil {
				t.Fatal(err)
			}
			viaLocal, err := local.Launch("alice", "vm-l", "m1.medium", "")
			if err != nil {
				t.Fatal(err)
			}
			for _, inst := range []Instance{viaRemote, viaLocal} {
				if inst.Status != string(iaas.StateBuild) {
					t.Fatalf("freshly launched %s status = %q, want BUILD", inst.ID, inst.Status)
				}
				both(t, "Instance("+inst.ID+")",
					func() (Instance, error) { return local.Instance(inst.ID) },
					func() (Instance, error) { return remote.Instance(inst.ID) })
			}
			list := both(t, "Instances(alice)",
				func() ([]Instance, error) { return local.Instances("alice") },
				func() ([]Instance, error) { return remote.Instances("alice") })
			if len(list) != 2 {
				t.Fatalf("alice lists %d instances, want 2", len(list))
			}
			both(t, "Usage",
				func() (Usage, error) { return local.Usage() },
				func() (Usage, error) { return remote.Usage() })

			// Boot timers fire; ACTIVE must round-trip through both wire
			// dialects (EC2 "running" must come back as ACTIVE).
			rig.engine.RunFor(120)
			list = both(t, "Instances(alice) after boot",
				func() ([]Instance, error) { return local.Instances("alice") },
				func() ([]Instance, error) { return remote.Instances("alice") })
			for _, inst := range list {
				if inst.Status != string(iaas.StateActive) {
					t.Fatalf("after boot %s = %q, want ACTIVE", inst.ID, inst.Status)
				}
			}

			// Stop through the native dialect (os-stop / StopInstances):
			// the instance reaches SHUTOFF after the stop delay, both
			// backends observe it identically, and a second Stop is
			// idempotent through either backend.
			stopped, err := local.Launch("alice", "vm-s", "m1.small", "")
			if err != nil {
				t.Fatal(err)
			}
			if err := remote.Stop("alice", stopped.ID); err != nil {
				t.Fatal(err)
			}
			rig.engine.RunFor(120)
			shut := both(t, "Instance(stopped)",
				func() (Instance, error) { return local.Instance(stopped.ID) },
				func() (Instance, error) { return remote.Instance(stopped.ID) })
			if shut.Status != string(iaas.StateShutoff) {
				t.Fatalf("stopped status = %q, want SHUTOFF", shut.Status)
			}
			if err := local.Stop("alice", stopped.ID); err != nil {
				t.Fatalf("second Stop not idempotent: %v", err)
			}
			if err := remote.Stop("alice", "no-such"); err == nil {
				t.Fatal("remote Stop of unknown id succeeded")
			}
			if err := local.Stop("alice", "no-such"); err == nil {
				t.Fatal("local Stop of unknown id succeeded")
			}
			if err := local.Terminate("alice", stopped.ID); err != nil {
				t.Fatal(err)
			}

			// Quota set through the Remote operator plane binds the cloud
			// both backends see, and rejections keep their error class
			// across the wire.
			if err := remote.SetQuota("alice", iaas.Quota{MaxInstances: 2, MaxCores: 100}); err != nil {
				t.Fatal(err)
			}
			_, errL := local.Launch("alice", "over", "m1.small", "")
			_, errR := remote.Launch("alice", "over", "m1.small", "")
			if !IsQuota(errL) || !IsQuota(errR) {
				t.Fatalf("quota rejection classes diverged: local=%v remote=%v", errL, errR)
			}

			// Terminate one through each backend; the listing agrees.
			if err := remote.Terminate("alice", viaLocal.ID); err != nil {
				t.Fatal(err)
			}
			if err := local.Terminate("alice", viaRemote.ID); err != nil {
				t.Fatal(err)
			}
			list = both(t, "Instances(alice) after terminate",
				func() ([]Instance, error) { return local.Instances("alice") },
				func() ([]Instance, error) { return remote.Instances("alice") })
			if len(list) != 0 {
				t.Fatalf("instances after terminate = %+v", list)
			}
			terminated := both(t, "Instance(terminated)",
				func() (Instance, error) { return local.Instance(viaRemote.ID) },
				func() (Instance, error) { return remote.Instance(viaRemote.ID) })
			if terminated.Status != string(iaas.StateTerminated) {
				t.Fatalf("terminated status = %q", terminated.Status)
			}

			// Unknown IDs miss identically.
			if _, err := local.Instance("no-such"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("local miss = %v", err)
			}
			if _, err := remote.Instance("no-such"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("remote miss = %v", err)
			}
		})
	}
}

// TestParityUnderConcurrency hammers one cloud through both backends from
// many goroutines — the -race companion to the sequential parity walk.
func TestParityUnderConcurrency(t *testing.T) {
	rig := newParityRig(t, "eucalyptus")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			api := CloudAPI(rig.local)
			if g%2 == 0 {
				api = rig.remote
			}
			const user = "alice" // all goroutines share one tenant
			for i := 0; i < 10; i++ {
				inst, err := api.Launch(user, fmt.Sprintf("c%d-%d", g, i), "m1.small", "")
				if err != nil {
					continue // quota/capacity contention is expected
				}
				if _, err := api.Instances(user); err != nil {
					t.Error(err)
					return
				}
				if _, err := api.Usage(); err != nil {
					t.Error(err)
					return
				}
				if err := api.Terminate(user, inst.ID); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Both backends agree on the final (empty) footprint.
	l, _ := rig.local.Instances("alice")
	r, _ := rig.remote.Instances("alice")
	if !reflect.DeepEqual(l, r) {
		t.Fatalf("post-storm listings diverged:\nlocal : %+v\nremote: %+v", l, r)
	}
}
