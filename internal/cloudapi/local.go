package cloudapi

import (
	"fmt"

	"osdc/internal/iaas"
)

// Local is the in-process CloudAPI backend: it wraps a *iaas.Cloud sharing
// the caller's engine, so every simulation scenario keeps its
// single-process determinism. Local and Remote must stay observably
// identical — the parity test in this package holds them to it.
type Local struct {
	C *iaas.Cloud
}

// NewLocal wraps an in-process cloud.
func NewLocal(c *iaas.Cloud) *Local { return &Local{C: c} }

// Name implements CloudAPI.
func (l *Local) Name() string { return l.C.Name }

// Stack implements CloudAPI.
func (l *Local) Stack() string { return l.C.Stack }

// view projects an iaas snapshot copy onto the federation-level record.
func view(i *iaas.Instance) Instance {
	return Instance{
		ID: i.ID, Name: i.Name, User: i.User,
		Flavor: i.Flavor.Name, Image: i.ImageID, Status: string(i.State),
	}
}

// Launch implements CloudAPI.
func (l *Local) Launch(user, name, flavor, image string) (Instance, error) {
	inst, err := l.C.Launch(user, name, flavor, image)
	if err != nil {
		return Instance{}, err
	}
	return view(inst), nil
}

// Terminate implements CloudAPI.
func (l *Local) Terminate(user, id string) error { return l.C.Terminate(user, id) }

// Stop implements CloudAPI.
func (l *Local) Stop(user, id string) error { return l.C.Stop(user, id) }

// Instances implements CloudAPI.
func (l *Local) Instances(user string) ([]Instance, error) {
	var out []Instance
	for _, i := range l.C.Instances(user) {
		if i.State == iaas.StateTerminated {
			continue
		}
		out = append(out, view(i))
	}
	return out, nil
}

// Instance implements CloudAPI.
func (l *Local) Instance(id string) (Instance, error) {
	i, ok := l.C.Instance(id)
	if !ok {
		return Instance{}, ErrNotFound
	}
	return view(i), nil
}

// Images implements CloudAPI.
func (l *Local) Images(user string) ([]Image, error) {
	var out []Image
	for _, img := range l.C.Images(user) {
		out = append(out, Image{ID: img.ID, Name: img.Name, Public: img.Public})
	}
	return out, nil
}

// Flavors implements CloudAPI.
func (l *Local) Flavors() ([]iaas.Flavor, error) { return l.C.Flavors(), nil }

// SetQuota implements CloudAPI.
func (l *Local) SetQuota(user string, q iaas.Quota) error {
	l.C.SetQuota(user, q)
	return nil
}

// Usage implements CloudAPI. The rev is read before the footprint maps:
// a transition landing mid-sample carries a higher rev than the returned
// one, so a follow-up UsageSince(u.Rev) re-reports it instead of losing
// it.
func (l *Local) Usage() (Usage, error) {
	rev := l.C.UsageRev()
	byUser := l.C.RunningByUser()
	u := Usage{
		Rev:        rev,
		ByUser:     make(map[string]UserUsage, len(byUser)),
		UsedCores:  l.C.UsedCores(),
		TotalCores: l.C.TotalCores(),
	}
	for user, v := range byUser {
		u.ByUser[user] = UserUsage{Instances: v[0], Cores: v[1]}
	}
	return u, nil
}

// UsageSince implements CloudAPI over the iaas counter index.
func (l *Local) UsageSince(since int64) (UsageDelta, error) {
	if since < 0 {
		return UsageDelta{}, fmt.Errorf("cloudapi: bad usage since %d", since)
	}
	raw := l.C.UsageSince(since)
	d := UsageDelta{
		Rev:        raw.Rev,
		Removed:    raw.Removed,
		Reset:      raw.Reset,
		UsedCores:  l.C.UsedCores(),
		TotalCores: l.C.TotalCores(),
	}
	if raw.Changed != nil {
		d.Changed = make(map[string]UserUsage, len(raw.Changed))
		for user, v := range raw.Changed {
			d.Changed[user] = UserUsage{Instances: v[0], Cores: v[1]}
		}
	}
	return d, nil
}
