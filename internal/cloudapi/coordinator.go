package cloudapi

import (
	"sort"
	"sync"
	"time"

	"osdc/internal/fanout"
	"osdc/internal/sim"
)

// ClockSyncTarget is one followed site as the coordinator sees it: a named
// clock plane reachable over some transport. *Remote implements it; tests
// may substitute in-process fakes.
type ClockSyncTarget interface {
	Name() string
	// Clock reads the site's current virtual time.
	Clock() (ClockStatus, error)
	// ClockSync publishes a target virtual time (ErrFreeRunning if the
	// site does not follow).
	ClockSync(target sim.Time) error
}

// SkewSample is one coordinator observation of one site's clock.
type SkewSample struct {
	// Skew is how far the site's virtual clock trailed the coordinator
	// engine at observation time, in virtual seconds (coordinator − site).
	Skew float64
	// Interval is how much the coordinator engine advanced since this
	// site's previous sync — the actual sync interval in virtual seconds.
	// Zero on a site's first observation.
	Interval float64
}

// SkewStats aggregates a site's samples over the coordinator's lifetime.
type SkewStats struct {
	Site   string
	Syncs  int64 // completed push rounds
	Errors int64 // failed reads or pushes (unreachable / free-running site)
	// LastSkew and MaxSkew are in virtual seconds (coordinator − site at
	// observation time, before that round's push).
	LastSkew float64
	MaxSkew  float64
	// MaxExcess is the worst observed skew *beyond* that round's actual
	// sync interval, in virtual seconds. The follower contract bounds it
	// by one follower tick plus the clock-read round trip, both converted
	// to virtual time — far under one sync interval. A large MaxExcess
	// means a site fell behind its targets, not just between them.
	MaxExcess float64
}

// ClockCoordinator keeps followed sites' engines near the authoritative
// engine (the console's): every interval of wall time it reads each site's
// clock, records the observed skew, and pushes the authoritative engine's
// current virtual time as the site's next target. Sites advance toward
// targets but never past them (sim.Follower), so at any instant a healthy
// site trails the coordinator by at most the virtual span of one sync
// interval plus one follower tick.
//
// A site that misses syncs — unreachable, or answering errors — simply
// stops advancing: its follower holds the clock still, the coordinator
// counts Errors, and the site resumes from where it stopped on the next
// successful push. Virtual time never runs backwards and never jumps ahead
// of the console.
//
// Pushes fan out concurrently over a bounded worker pool (ROADMAP:
// coordinator fan-out): at dozens of sites a sequential round-robin would
// eat the interval, so each round gives every site half the sync interval
// and abandons (and counts as an error) any site still unanswered — the
// push may still land late, which the follower tolerates by design.
type ClockCoordinator struct {
	engine   *sim.Engine
	interval time.Duration
	targets  []ClockSyncTarget
	workers  int

	mu       sync.Mutex
	stats    map[string]*SkewStats
	lastPush map[string]sim.Time // console time at a site's previous push

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartClockCoordinator begins pushing e's virtual time to every target
// each interval of wall time (<= 0 means 25 ms). Stop it before tearing
// the sites down.
func StartClockCoordinator(e *sim.Engine, interval time.Duration, targets ...ClockSyncTarget) *ClockCoordinator {
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	c := &ClockCoordinator{
		engine: e, interval: interval, targets: targets,
		workers:  syncWorkers,
		stats:    make(map[string]*SkewStats),
		lastPush: make(map[string]sim.Time),
		stop:     make(chan struct{}), done: make(chan struct{}),
	}
	for _, t := range targets {
		c.stats[t.Name()] = &SkewStats{Site: t.Name()}
	}
	go c.loop()
	return c
}

// Interval returns the coordinator's wall sync period.
func (c *ClockCoordinator) Interval() time.Duration { return c.interval }

// syncWorkers bounds the per-round push pool.
const syncWorkers = 8

func (c *ClockCoordinator) loop() {
	defer close(c.done)
	tick := time.NewTicker(c.interval)
	defer tick.Stop()
	tasks := make([]func(), len(c.targets))
	for i, t := range c.targets {
		t := t
		tasks[i] = func() { c.syncOne(t) }
	}
	// Per-site deadline: half the sync interval, floored at 100 ms. The
	// deadline exists to keep a *hung* site from eating the round, not to
	// penalize ordinary HTTP jitter — at the millisecond-scale intervals
	// tests use, half an interval is inside normal round-trip variance
	// and would count healthy pushes as errors.
	deadline := c.interval / 2
	if deadline < 100*time.Millisecond {
		deadline = 100 * time.Millisecond
	}
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			completed := fanout.Each(c.workers, deadline, tasks)
			for i, ok := range completed {
				if !ok {
					// The abandoned push may still land; the error marks
					// that this round couldn't confirm it in time.
					c.countError(c.targets[i].Name())
				}
			}
		}
	}
}

// syncOne observes one site's clock against the authoritative engine, then
// pushes the engine's current time as the site's next target.
func (c *ClockCoordinator) syncOne(t ClockSyncTarget) {
	name := t.Name()
	st, err := t.Clock()
	if err != nil {
		c.countError(name)
		return
	}
	// Sample the authoritative clock after the site answered: anything the
	// console engine gained during the read round trip is charged to the
	// observation, never credited to the site.
	now := c.engine.Now()
	c.record(name, float64(now)-st.Now, now)
	if err := t.ClockSync(now); err != nil {
		c.countError(name)
		return
	}
	c.mu.Lock()
	c.stats[name].Syncs++
	c.lastPush[name] = now
	c.mu.Unlock()
}

func (c *ClockCoordinator) countError(name string) {
	c.mu.Lock()
	c.stats[name].Errors++
	c.mu.Unlock()
}

func (c *ClockCoordinator) record(name string, skew float64, now sim.Time) {
	if skew < 0 {
		// A site can only appear ahead by measurement race (its clock was
		// read before ours); clamp rather than report negative skew.
		skew = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats[name]
	s.LastSkew = skew
	if skew > s.MaxSkew {
		s.MaxSkew = skew
	}
	if prev, ok := c.lastPush[name]; ok {
		if excess := skew - float64(now-prev); excess > s.MaxExcess {
			s.MaxExcess = excess
		}
	}
}

// Stats returns a copy of every site's skew statistics, sorted by site
// name.
func (c *ClockCoordinator) Stats() []SkewStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SkewStats, 0, len(c.stats))
	for _, s := range c.stats {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// MaxSkew returns the worst skew observed across all sites, in virtual
// seconds.
func (c *ClockCoordinator) MaxSkew() float64 {
	max := 0.0
	for _, s := range c.Stats() {
		if s.MaxSkew > max {
			max = s.MaxSkew
		}
	}
	return max
}

// MaxExcess returns the worst skew-beyond-one-interval observed across all
// sites, in virtual seconds — the quantity the skew bound is asserted on.
func (c *ClockCoordinator) MaxExcess() float64 {
	max := 0.0
	for _, s := range c.Stats() {
		if s.MaxExcess > max {
			max = s.MaxExcess
		}
	}
	return max
}

// Syncs returns the total completed push rounds across all sites.
func (c *ClockCoordinator) Syncs() int64 {
	var n int64
	for _, s := range c.Stats() {
		n += s.Syncs
	}
	return n
}

// Stop halts the coordinator goroutine and waits for it to exit.
// Idempotent.
func (c *ClockCoordinator) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}
