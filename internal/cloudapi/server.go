package cloudapi

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"osdc/internal/datastore"
	"osdc/internal/iaas"
	"osdc/internal/sim"
)

// Server exposes one cloud over HTTP the way a real OSDC site does: the
// cloud's *native* API (OpenStack JSON or EC2 query/XML, per its stack) for
// tenant operations, plus a small JSON operator plane under /cloudapi/ for
// the pieces the native dialects never carried — usage sampling for the
// billing and monitoring pollers, quota administration, flavor listings for
// the EC2 dialect, and instance lookup by ID.
//
// One Server per cloud is the unit of federation: tukey-server's
// -remote-clouds mode gives each its own listener and engine, and every
// service reaches it only through Remote.
type Server struct {
	local  *Local
	native http.Handler
	// Clock, when set, serves the clock plane under /cloudapi/clock: GET
	// reads the site engine's virtual time, POST publishes a sync target
	// (follow mode only). Nil means the site exposes no clock (the routes
	// 404), which is the pre-clock-plane contract.
	Clock ClockPlane
	// Datasets, when set, serves this site's dataset store under
	// /cloudapi/datasets (list/get/put-replica/delete-replica). Nil means
	// the site exposes no data plane (the routes 404).
	Datasets datastore.API
	// OperatorSecret, when non-empty, gates every mutating operator-plane
	// request (POST/DELETE under /cloudapi/): callers must present it in
	// the X-OSDC-Operator header or get 403. Reads stay open — the planes
	// carry no tenant data — and the native tenant dialects are untouched.
	OperatorSecret string
}

// NewServer builds the per-cloud server, picking the native dialect handler
// from the cloud's stack.
func NewServer(c *iaas.Cloud) *Server {
	s := &Server{local: NewLocal(c)}
	switch c.Stack {
	case "openstack":
		s.native = &iaas.NovaAPI{Cloud: c}
	case "eucalyptus":
		s.native = &iaas.EucaAPI{Cloud: c}
	default:
		panic("cloudapi: unsupported stack " + c.Stack)
	}
	return s
}

// meta is the /cloudapi/meta discovery document.
type meta struct {
	Name  string `json:"name"`
	Stack string `json:"stack"`
	Site  string `json:"site"`
}

// quotaRequest is the /cloudapi/quota wire form.
type quotaRequest struct {
	User         string `json:"user"`
	MaxInstances int    `json:"max_instances"`
	MaxCores     int    `json:"max_cores"`
}

// clockSyncRequest is the POST /cloudapi/clock wire form: the target
// virtual time in seconds.
type clockSyncRequest struct {
	Target float64 `json:"target"`
}

func serveJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func serveError(w http.ResponseWriter, code int, msg string) {
	serveJSON(w, code, map[string]string{"error": msg})
}

// ServeHTTP implements http.Handler: /cloudapi/* is the operator plane,
// everything else passes through to the native dialect.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasPrefix(r.URL.Path, "/cloudapi/") {
		s.native.ServeHTTP(w, r)
		return
	}
	// Operator-plane auth: mutating the planes (clock targets, quotas,
	// dataset replicas) is an operator action; with a shared secret
	// configured, unauthenticated writes get 403 before any route runs.
	if s.OperatorSecret != "" && r.Method != http.MethodGet &&
		r.Header.Get("X-OSDC-Operator") != s.OperatorSecret {
		serveError(w, http.StatusForbidden, "operator plane requires X-OSDC-Operator")
		return
	}
	if strings.HasPrefix(r.URL.Path, "/cloudapi/datasets") {
		if s.Datasets == nil {
			serveError(w, http.StatusNotFound, "site exposes no datasets plane")
			return
		}
		datastore.ServePlane(s.Datasets, w, r)
		return
	}
	switch {
	case r.URL.Path == "/cloudapi/meta" && r.Method == http.MethodGet:
		serveJSON(w, http.StatusOK, meta{Name: s.local.C.Name, Stack: s.local.C.Stack, Site: s.local.C.Site})

	case r.URL.Path == "/cloudapi/usage" && r.Method == http.MethodGet:
		u, _ := s.local.Usage()
		serveJSON(w, http.StatusOK, u)

	case r.URL.Path == "/cloudapi/flavors" && r.Method == http.MethodGet:
		fs, _ := s.local.Flavors()
		serveJSON(w, http.StatusOK, map[string]interface{}{"flavors": fs})

	case r.URL.Path == "/cloudapi/instance" && r.Method == http.MethodGet:
		id := r.URL.Query().Get("id")
		inst, err := s.local.Instance(id)
		if errors.Is(err, ErrNotFound) {
			serveError(w, http.StatusNotFound, "no instance "+id)
			return
		}
		serveJSON(w, http.StatusOK, inst)

	case r.URL.Path == "/cloudapi/clock" && r.Method == http.MethodGet:
		if s.Clock == nil {
			serveError(w, http.StatusNotFound, "site exposes no clock plane")
			return
		}
		serveJSON(w, http.StatusOK, s.Clock.ClockStatus())

	case r.URL.Path == "/cloudapi/clock" && r.Method == http.MethodPost:
		if s.Clock == nil {
			serveError(w, http.StatusNotFound, "site exposes no clock plane")
			return
		}
		var req clockSyncRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			serveError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		if req.Target < 0 {
			serveError(w, http.StatusBadRequest, "negative clock target")
			return
		}
		if err := s.Clock.SyncTo(sim.Time(req.Target)); err != nil {
			// A free-running site rejects targets; the coordinator treats
			// the conflict as "this site does not follow".
			serveError(w, http.StatusConflict, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)

	case r.URL.Path == "/cloudapi/quota" && r.Method == http.MethodPost:
		var req quotaRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			serveError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		if req.User == "" {
			serveError(w, http.StatusBadRequest, "quota needs a user")
			return
		}
		_ = s.local.SetQuota(req.User, iaas.Quota{MaxInstances: req.MaxInstances, MaxCores: req.MaxCores})
		w.WriteHeader(http.StatusNoContent)

	default:
		serveError(w, http.StatusNotFound, "no operator route "+r.Method+" "+r.URL.Path)
	}
}
