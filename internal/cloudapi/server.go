package cloudapi

import (
	"bytes"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"osdc/internal/datastore"
	"osdc/internal/iaas"
	"osdc/internal/sim"
	"osdc/internal/telemetry"
)

// Server exposes one cloud over HTTP the way a real OSDC site does: the
// cloud's *native* API (OpenStack JSON or EC2 query/XML, per its stack) for
// tenant operations, plus a small JSON operator plane under /cloudapi/ for
// the pieces the native dialects never carried — usage sampling for the
// billing and monitoring pollers, quota administration, flavor listings for
// the EC2 dialect, and instance lookup by ID.
//
// One Server per cloud is the unit of federation: tukey-server's
// -remote-clouds mode gives each its own listener and engine, and every
// service reaches it only through Remote.
type Server struct {
	local  *Local
	native http.Handler
	// Clock, when set, serves the clock plane under /cloudapi/clock: GET
	// reads the site engine's virtual time, POST publishes a sync target
	// (follow mode only). Nil means the site exposes no clock (the routes
	// 404), which is the pre-clock-plane contract.
	Clock ClockPlane
	// Datasets, when set, serves this site's dataset store under
	// /cloudapi/datasets (list/get/put-replica/delete-replica). Nil means
	// the site exposes no data plane (the routes 404).
	Datasets datastore.API
	// OperatorSecret, when non-empty, gates every mutating operator-plane
	// request (POST/DELETE under /cloudapi/): callers must present it in
	// the X-OSDC-Operator header or get 403. Reads stay open — the planes
	// carry no tenant data — and the native tenant dialects are untouched.
	// It also unlocks the /debug/pprof/ profiling plane and the /metrics
	// telemetry plane (absent without a secret, 403 without the header).
	OperatorSecret string

	// Metrics is the server's telemetry registry, served at GET /metrics
	// behind the operator secret. NewServer seeds it with the server's own
	// series; site wiring adds engine and kernel metrics.
	Metrics *telemetry.Registry

	// UsageCacheHits counts usage requests answered from the coalescing
	// cache: biller and monitor polling the same tick should pay for one
	// snapshot encode, not two.
	UsageCacheHits atomic.Int64
	// UsageCacheResets counts recomputes that invalidated stale cache
	// entries — how often the usage rev moved between polls.
	UsageCacheResets atomic.Int64

	// usageMu serializes usage computation so concurrent same-rev readers
	// coalesce: the second caller blocks until the first has encoded the
	// response, then serves the cached bytes. usageCache maps the raw
	// ?since value ("" for the full snapshot) to the encoded body, valid
	// while the cloud's usage rev still equals the one it was computed at.
	usageMu    sync.Mutex
	usageCache map[string]usageCacheEntry
}

// usageCacheEntry is one coalesced usage response: the encoded JSON body
// and the usage rev it was computed at.
type usageCacheEntry struct {
	rev  int64
	body []byte
}

// NewServer builds the per-cloud server, picking the native dialect handler
// from the cloud's stack.
func NewServer(c *iaas.Cloud) *Server {
	s := &Server{local: NewLocal(c), Metrics: telemetry.NewRegistry()}
	switch c.Stack {
	case "openstack":
		s.native = &iaas.NovaAPI{Cloud: c}
	case "eucalyptus":
		s.native = &iaas.EucaAPI{Cloud: c}
	default:
		panic("cloudapi: unsupported stack " + c.Stack)
	}
	cloud := telemetry.Label{Key: "cloud", Value: c.Name}
	s.Metrics.CounterFunc("osdc_usage_cache_hits_total",
		"Usage responses served from the coalescing cache.",
		func() float64 { return float64(s.UsageCacheHits.Load()) }, cloud)
	s.Metrics.CounterFunc("osdc_usage_cache_resets_total",
		"Usage cache invalidations (rev moved between polls).",
		func() float64 { return float64(s.UsageCacheResets.Load()) }, cloud)
	return s
}

// meta is the /cloudapi/meta discovery document.
type meta struct {
	Name  string `json:"name"`
	Stack string `json:"stack"`
	Site  string `json:"site"`
}

// quotaRequest is the /cloudapi/quota wire form.
type quotaRequest struct {
	User         string `json:"user"`
	MaxInstances int    `json:"max_instances"`
	MaxCores     int    `json:"max_cores"`
}

// clockSyncRequest is the POST /cloudapi/clock wire form: the target
// virtual time in seconds.
type clockSyncRequest struct {
	Target float64 `json:"target"`
}

func serveJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func serveError(w http.ResponseWriter, code int, msg string) {
	serveJSON(w, code, map[string]string{"error": msg})
}

// serveUsage answers GET /cloudapi/usage[?since=R]. Responses are
// coalesced: the encoded body is cached under the raw since value and
// served verbatim while the cloud's usage rev is unchanged, so the biller
// and the monitor hitting the same tick cost one snapshot walk and one
// encode. The mutex is held across the compute deliberately — a
// concurrent same-rev reader waits and then hits the cache instead of
// recomputing.
func (s *Server) serveUsage(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("since")
	var since int64
	if raw != "" {
		var err error
		since, err = strconv.ParseInt(raw, 10, 64)
		if err != nil {
			serveError(w, http.StatusBadRequest, "cloudapi: bad usage since "+strconv.Quote(raw))
			return
		}
	}
	s.usageMu.Lock()
	defer s.usageMu.Unlock()
	rev := s.local.C.UsageRev()
	if e, ok := s.usageCache[raw]; ok && e.rev == rev {
		s.UsageCacheHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(e.body)
		return
	}
	var buf bytes.Buffer
	var computedAt int64
	if raw == "" {
		u, _ := s.local.Usage()
		computedAt = u.Rev
		_ = json.NewEncoder(&buf).Encode(u)
	} else {
		d, err := s.local.UsageSince(since)
		if err != nil {
			serveError(w, http.StatusBadRequest, err.Error())
			return
		}
		computedAt = d.Rev
		_ = json.NewEncoder(&buf).Encode(d)
	}
	if s.usageCache == nil {
		s.usageCache = make(map[string]usageCacheEntry)
	}
	// Drop entries from older revs while we hold the lock: the cache only
	// ever holds the handful of since values the current pollers use.
	dropped := false
	for k, e := range s.usageCache {
		if e.rev != computedAt {
			delete(s.usageCache, k)
			dropped = true
		}
	}
	if dropped {
		s.UsageCacheResets.Add(1)
	}
	s.usageCache[raw] = usageCacheEntry{rev: computedAt, body: buf.Bytes()}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// pprofMux routes the runtime profiling endpoints; built once, shared by
// every gated server.
var pprofMux = func() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}()

// ServePprof serves /debug/pprof/* behind the operator secret: with no
// secret configured the profiling plane does not exist (404), and a
// request without the matching X-OSDC-Operator header is refused (403).
// Shared by cloudapi.Server and tukey-server so both binaries gate
// profiling identically.
func ServePprof(secret string, w http.ResponseWriter, r *http.Request) {
	if secret == "" {
		serveError(w, http.StatusNotFound, "profiling plane requires an operator secret")
		return
	}
	if subtle.ConstantTimeCompare([]byte(r.Header.Get("X-OSDC-Operator")), []byte(secret)) != 1 {
		serveError(w, http.StatusForbidden, "profiling plane requires X-OSDC-Operator")
		return
	}
	pprofMux.ServeHTTP(w, r)
}

// ServeHTTP implements http.Handler: /cloudapi/* is the operator plane,
// everything else passes through to the native dialect.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/debug/pprof/") {
		ServePprof(s.OperatorSecret, w, r)
		return
	}
	if r.URL.Path == "/metrics" {
		telemetry.ServeMetrics(s.OperatorSecret, s.Metrics, w, r)
		return
	}
	if !strings.HasPrefix(r.URL.Path, "/cloudapi/") {
		s.native.ServeHTTP(w, r)
		return
	}
	// Operator-plane auth: mutating the planes (clock targets, quotas,
	// dataset replicas) is an operator action; with a shared secret
	// configured, unauthenticated writes get 403 before any route runs.
	if s.OperatorSecret != "" && r.Method != http.MethodGet &&
		subtle.ConstantTimeCompare([]byte(r.Header.Get("X-OSDC-Operator")), []byte(s.OperatorSecret)) != 1 {
		serveError(w, http.StatusForbidden, "operator plane requires X-OSDC-Operator")
		return
	}
	if strings.HasPrefix(r.URL.Path, "/cloudapi/datasets") {
		if s.Datasets == nil {
			serveError(w, http.StatusNotFound, "site exposes no datasets plane")
			return
		}
		datastore.ServePlane(s.Datasets, w, r)
		return
	}
	switch {
	case r.URL.Path == "/cloudapi/meta" && r.Method == http.MethodGet:
		serveJSON(w, http.StatusOK, meta{Name: s.local.C.Name, Stack: s.local.C.Stack, Site: s.local.C.Site})

	case r.URL.Path == "/cloudapi/usage" && r.Method == http.MethodGet:
		s.serveUsage(w, r)

	case r.URL.Path == "/cloudapi/flavors" && r.Method == http.MethodGet:
		fs, _ := s.local.Flavors()
		serveJSON(w, http.StatusOK, map[string]interface{}{"flavors": fs})

	case r.URL.Path == "/cloudapi/instance" && r.Method == http.MethodGet:
		id := r.URL.Query().Get("id")
		inst, err := s.local.Instance(id)
		if errors.Is(err, ErrNotFound) {
			serveError(w, http.StatusNotFound, "no instance "+id)
			return
		}
		serveJSON(w, http.StatusOK, inst)

	case r.URL.Path == "/cloudapi/clock" && r.Method == http.MethodGet:
		if s.Clock == nil {
			serveError(w, http.StatusNotFound, "site exposes no clock plane")
			return
		}
		serveJSON(w, http.StatusOK, s.Clock.ClockStatus())

	case r.URL.Path == "/cloudapi/clock" && r.Method == http.MethodPost:
		if s.Clock == nil {
			serveError(w, http.StatusNotFound, "site exposes no clock plane")
			return
		}
		var req clockSyncRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			serveError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		if req.Target < 0 {
			serveError(w, http.StatusBadRequest, "negative clock target")
			return
		}
		if err := s.Clock.SyncTo(sim.Time(req.Target)); err != nil {
			// A free-running site rejects targets; the coordinator treats
			// the conflict as "this site does not follow".
			serveError(w, http.StatusConflict, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)

	case r.URL.Path == "/cloudapi/quota" && r.Method == http.MethodPost:
		var req quotaRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			serveError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		if req.User == "" {
			serveError(w, http.StatusBadRequest, "quota needs a user")
			return
		}
		_ = s.local.SetQuota(req.User, iaas.Quota{MaxInstances: req.MaxInstances, MaxCores: req.MaxCores})
		w.WriteHeader(http.StatusNoContent)

	default:
		serveError(w, http.StatusNotFound, "no operator route "+r.Method+" "+r.URL.Path)
	}
}
