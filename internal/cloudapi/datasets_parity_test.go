package cloudapi

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"osdc/internal/datastore"
	"osdc/internal/dfs"
	"osdc/internal/iaas"
	"osdc/internal/sim"
	"osdc/internal/simdisk"
)

// datasetsRig is one site's datasets plane observed through both backends
// at once: twin stores built identically, one driven in-process (the Local
// backend), one behind a live cloudapi.Server over HTTP.
type datasetsRig struct {
	local  *datastore.Store
	remote *datastore.Remote
	// remoteStore is the store behind the wire, for end-state comparison.
	remoteStore *datastore.Store
}

func datasetsVolume(t *testing.T, e *sim.Engine, name string, capacity int64) *dfs.Volume {
	t.Helper()
	bricks := make([]*dfs.Brick, 2)
	for i := range bricks {
		d := simdisk.New(e, fmt.Sprintf("%s-d%d", name, i), 3072e6, 1136e6, capacity)
		bricks[i] = dfs.NewBrick(fmt.Sprintf("%s-b%d", name, i), fmt.Sprintf("%s-n%d", name, i), d)
	}
	vol, err := dfs.NewVolume(e, name, 2, dfs.Version33, bricks)
	if err != nil {
		t.Fatal(err)
	}
	return vol
}

func newDatasetsRig(t *testing.T, capacity int64) *datasetsRig {
	t.Helper()
	e := sim.NewEngine(9)
	c := iaas.NewCloud(e, "parity-site", "openstack", "chicago")
	c.AddRack("r", 2)

	// The twin volumes share a name: volume and brick names appear in
	// rejection messages, and the parity contract includes error text.
	localStore := datastore.NewStore("parity-site", "chicago", datasetsVolume(t, e, "vol", capacity))
	remoteStore := datastore.NewStore("parity-site", "chicago", datasetsVolume(t, e, "vol", capacity))

	srv := NewServer(c)
	srv.Datasets = remoteStore
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)

	return &datasetsRig{
		local:       localStore,
		remote:      datastore.NewRemote("parity-site", "chicago", hs.URL, nil),
		remoteStore: remoteStore,
	}
}

// bothData runs one operation through each backend and requires identical
// results, including error strings — the Remote reproduces the Local error
// byte for byte off the wire.
func bothData[T any](t *testing.T, what string, viaLocal, viaRemote func() (T, error)) {
	t.Helper()
	l, errL := viaLocal()
	r, errR := viaRemote()
	if (errL == nil) != (errR == nil) {
		t.Fatalf("%s: local err=%v remote err=%v", what, errL, errR)
	}
	if errL != nil && errL.Error() != errR.Error() {
		t.Fatalf("%s error text diverged:\nlocal : %v\nremote: %v", what, errL, errR)
	}
	if errL == nil && !reflect.DeepEqual(l, r) {
		t.Fatalf("%s diverged:\nlocal : %+v\nremote: %+v", what, l, r)
	}
}

// TestDatasetsLocalRemoteParity drives every datastore.API method through
// both backends against twin stores and requires identical observable
// behavior — results, error classes and error text.
func TestDatasetsLocalRemoteParity(t *testing.T) {
	rig := newDatasetsRig(t, 1<<40)
	l, r := datastore.API(rig.local), datastore.API(rig.remote)

	if l.Name() != r.Name() || l.Loc() != r.Loc() {
		t.Fatalf("identity diverged: %s/%s vs %s/%s", l.Name(), l.Loc(), r.Name(), r.Loc())
	}

	// Empty stores agree, including the miss class and text.
	bothData(t, "List(empty)", l.List, r.List)
	bothData(t, "Get(miss)",
		func() (datastore.Replica, error) { return l.Get("nope") },
		func() (datastore.Replica, error) { return r.Get("nope") })
	if _, err := r.Get("nope"); !errors.Is(err, datastore.ErrNoReplica) {
		t.Fatalf("remote miss lost the ErrNoReplica class: %v", err)
	}

	// Puts: valid, checksum-defaulting, and invalid.
	put := func(api datastore.API, rep datastore.Replica) func() (struct{}, error) {
		return func() (struct{}, error) { return struct{}{}, api.Put(rep) }
	}
	good := datastore.Replica{Dataset: "EO-1 Slice", SizeBytes: 4 << 30, Version: 1}
	bothData(t, "Put(good)", put(l, good), put(r, good))
	bothData(t, "Put(invalid)", put(l, datastore.Replica{Dataset: "", SizeBytes: 1, Version: 1}),
		put(r, datastore.Replica{Dataset: "", SizeBytes: 1, Version: 1}))
	bothData(t, "Put(bad version)", put(l, datastore.Replica{Dataset: "x", SizeBytes: 1}),
		put(r, datastore.Replica{Dataset: "x", SizeBytes: 1}))

	bothData(t, "List(one)", l.List, r.List)
	bothData(t, "Get(hit)",
		func() (datastore.Replica, error) { return l.Get("EO-1 Slice") },
		func() (datastore.Replica, error) { return r.Get("EO-1 Slice") })

	// Deletes: present then absent.
	del := func(api datastore.API, name string) func() (struct{}, error) {
		return func() (struct{}, error) { return struct{}{}, api.Delete(name) }
	}
	bothData(t, "Delete(hit)", del(l, "EO-1 Slice"), del(r, "EO-1 Slice"))
	bothData(t, "Delete(miss)", del(l, "EO-1 Slice"), del(r, "EO-1 Slice"))
	if err := r.Delete("EO-1 Slice"); !errors.Is(err, datastore.ErrNoReplica) {
		t.Fatalf("remote delete-miss lost the ErrNoReplica class: %v", err)
	}

	// End state agrees store-to-store.
	ll, _ := rig.local.List()
	rl, _ := rig.remoteStore.List()
	if !reflect.DeepEqual(ll, rl) {
		t.Fatalf("end state diverged:\nlocal : %+v\nremote: %+v", ll, rl)
	}
}

// TestDatasetsParityOnFullVolume pins the volume-full behavior across the
// wire: both backends reject with the same error text.
func TestDatasetsParityOnFullVolume(t *testing.T) {
	rig := newDatasetsRig(t, 1<<30) // ~2 GB of replica-2 capacity per store
	big := datastore.Replica{Dataset: "Too Big", SizeBytes: 8 << 30, Version: 1}
	bothData(t, "Put(full)",
		func() (struct{}, error) { return struct{}{}, rig.local.Put(big) },
		func() (struct{}, error) { return struct{}{}, rig.remote.Put(big) })
}

// TestDatasetsParityUnderConcurrency hammers both backends with the same
// concurrent workload; run under -race in CI, it is the datasets-plane
// analogue of TestParityUnderConcurrency.
func TestDatasetsParityUnderConcurrency(t *testing.T) {
	rig := newDatasetsRig(t, 1<<44)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		w := w
		for _, api := range []datastore.API{rig.local, rig.remote} {
			api := api
			wg.Add(1)
			go func() {
				defer wg.Done()
				name := fmt.Sprintf("set-%d", w)
				for i := 0; i < 40; i++ {
					_ = api.Put(datastore.Replica{Dataset: name, SizeBytes: 1 << 20, Version: 1})
					_, _ = api.Get(name)
					_, _ = api.List()
					_ = api.Delete(name)
				}
			}()
		}
	}
	wg.Wait()
}

// TestOperatorPlaneAuth locks the operator planes down with a shared
// secret: unauthenticated POSTs (clock targets, quotas, dataset replicas)
// get 403, secret-bearing Remotes pass, and GETs stay open.
func TestOperatorPlaneAuth(t *testing.T) {
	e := sim.NewEngine(3)
	c := iaas.NewCloud(e, "auth-site", "openstack", "chicago")
	c.AddRack("r", 2)
	store := datastore.NewStore("auth-site", "chicago", datasetsVolume(t, e, "avol", 1<<40))

	srv := NewServer(c)
	srv.Datasets = store
	srv.Clock = FollowerClock{F: sim.StartFollower(e, 0, 0)}
	srv.OperatorSecret = "hunter2"
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)

	// Unauthenticated writes: 403 on every operator plane.
	for _, probe := range []struct{ method, path, body string }{
		{http.MethodPost, "/cloudapi/clock", `{"target":10}`},
		{http.MethodPost, "/cloudapi/quota", `{"user":"u","max_instances":1,"max_cores":1}`},
		{http.MethodPost, "/cloudapi/datasets/replica", `{"dataset":"d","size_bytes":1,"version":1}`},
		{http.MethodDelete, "/cloudapi/datasets/replica?dataset=d", ""},
	} {
		req, err := http.NewRequest(probe.method, hs.URL+probe.path, strings.NewReader(probe.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("unauthenticated %s %s = %d, want 403", probe.method, probe.path, resp.StatusCode)
		}
	}
	if store.Count() != 0 || e.Now() != 0 {
		t.Fatal("an unauthenticated write had an effect")
	}

	// Reads stay open: the planes carry no tenant data.
	for _, path := range []string{"/cloudapi/meta", "/cloudapi/clock", "/cloudapi/datasets"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}

	// Secret-bearing clients pass on both planes.
	cr := NewRemote("auth-site", "openstack", hs.URL, nil)
	cr.SetOperatorSecret("hunter2")
	if err := cr.ClockSync(10); err != nil {
		t.Fatalf("authenticated clock sync: %v", err)
	}
	if err := cr.SetQuota("u", iaas.Quota{MaxInstances: 2, MaxCores: 2}); err != nil {
		t.Fatalf("authenticated quota: %v", err)
	}
	dr := datastore.NewRemote("auth-site", "chicago", hs.URL, nil)
	dr.SetOperatorSecret("hunter2")
	if err := dr.Put(datastore.Replica{Dataset: "d", SizeBytes: 1 << 20, Version: 1}); err != nil {
		t.Fatalf("authenticated dataset put: %v", err)
	}
	if err := dr.Delete("d"); err != nil {
		t.Fatalf("authenticated dataset delete: %v", err)
	}

	// A wrong secret is as unauthenticated as none.
	bad := NewRemote("auth-site", "openstack", hs.URL, nil)
	bad.SetOperatorSecret("wrong")
	if err := bad.SetQuota("u", iaas.Quota{}); err == nil {
		t.Fatal("wrong secret passed the quota plane")
	}
}

// TestDatasetsListSinceParity pins the delta route across backends: after
// an identical put/delete history, Local and Remote return bit-identical
// Deltas for a fresh client, an incremental client, a caught-up client and
// a client from the future.
func TestDatasetsListSinceParity(t *testing.T) {
	rig := newDatasetsRig(t, 1<<40)
	l, r := datastore.API(rig.local), datastore.API(rig.remote)

	since := func(api datastore.API, rev int64) func() (datastore.Delta, error) {
		return func() (datastore.Delta, error) { return api.ListSince(rev) }
	}
	bothData(t, "ListSince(0, empty)", since(l, 0), since(r, 0))

	for _, api := range []datastore.API{l, r} {
		for _, rep := range []datastore.Replica{
			{Dataset: "B Set", SizeBytes: 2 << 30, Version: 1},
			{Dataset: "A Set", SizeBytes: 1 << 30, Version: 1},
			{Dataset: "C Set", SizeBytes: 3 << 30, Version: 1},
		} {
			if err := api.Put(rep); err != nil {
				t.Fatal(err)
			}
		}
		if err := api.Put(datastore.Replica{Dataset: "A Set", SizeBytes: 1 << 30, Version: 2}); err != nil {
			t.Fatal(err)
		}
		if err := api.Delete("B Set"); err != nil {
			t.Fatal(err)
		}
	}
	bothData(t, "ListSince(0)", since(l, 0), since(r, 0))
	bothData(t, "ListSince(3)", since(l, 3), since(r, 3))
	caught, _ := l.ListSince(0)
	bothData(t, "ListSince(caught-up)", since(l, caught.Rev), since(r, caught.Rev))
	bothData(t, "ListSince(future)", since(l, 9999), since(r, 9999))

	// The delta must actually be a delta: from rev 3, only the replaced
	// A Set and the dead B Set.
	d, err := r.ListSince(3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Reset || len(d.Changed) != 1 || d.Changed[0].Dataset != "A Set" ||
		len(d.Removed) != 1 || d.Removed[0] != "B Set" {
		t.Fatalf("remote delta from rev 3 = %+v", d)
	}
}

// TestDatasetsListSinceBadQuery pins the wire-only error: a non-numeric
// ?since is a 400 with a parseable body, not a silent full listing.
func TestDatasetsListSinceBadQuery(t *testing.T) {
	rig := newDatasetsRig(t, 1<<40)
	resp, err := http.Get(rig.remote.Endpoint() + "/cloudapi/datasets?since=bogus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET ?since=bogus = %d, want 400", resp.StatusCode)
	}
}
