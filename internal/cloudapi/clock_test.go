package cloudapi

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"osdc/internal/iaas"
	"osdc/internal/sim"
)

// testCloud builds a tiny cloud for clock-plane tests. Names must be
// unique per test federation: the coordinator keys its skew stats by them.
func testCloud(e *sim.Engine, name, stack string) *iaas.Cloud {
	c := iaas.NewCloud(e, name, stack, "test-site")
	c.AddRack("r1", 2)
	return c
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClockPlaneFreeRunSite: a free-run site's clock is readable over the
// wire but rejects sync targets with the free-running conflict.
func TestClockPlaneFreeRunSite(t *testing.T) {
	e := sim.NewEngine(1)
	site, err := StartSite(e, testCloud(e, "clock-test", "openstack"), 0) // frozen free-run clock
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	r := site.Remote()

	st, err := r.Clock()
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "free-run" || st.Now != 0 {
		t.Fatalf("clock status = %+v, want free-run at 0", st)
	}
	if err := r.ClockSync(100); !errors.Is(err, ErrFreeRunning) {
		t.Fatalf("sync against free-run site: %v, want ErrFreeRunning", err)
	}
	if site.Follower() != nil {
		t.Fatal("free-run site has a follower")
	}
}

// TestClockPlaneFollowSite: pushed targets advance a followed site's engine
// to the target and never past it, visible both in-process and over the
// wire.
func TestClockPlaneFollowSite(t *testing.T) {
	e := sim.NewEngine(2)
	site, err := StartSiteWithOptions(e, testCloud(e, "clock-test", "eucalyptus"),
		SiteOptions{Clock: ClockFollow, Tick: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	r := site.Remote()

	if err := r.ClockSync(sim.Time(5 * sim.Minute)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, func() bool { return e.Now() >= sim.Time(5*sim.Minute) },
		"followed site never reached the pushed target")
	if now := e.Now(); now != sim.Time(5*sim.Minute) {
		t.Fatalf("followed site overshot the target: %v", now)
	}
	st, err := r.Clock()
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "follow" || st.Now != float64(5*sim.Minute) || st.Target != float64(5*sim.Minute) {
		t.Fatalf("clock status = %+v, want follow at 300", st)
	}
}

// TestClockPlaneNoClock pins the pre-clock-plane contract: a bare Server
// with no ClockPlane answers 404 on both clock routes.
func TestClockPlaneNoClock(t *testing.T) {
	e := sim.NewEngine(3)
	srv := httptest.NewServer(NewServer(testCloud(e, "clock-test", "openstack")))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/cloudapi/clock")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET clock on clockless server: %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/cloudapi/clock", "application/json", strings.NewReader(`{"target":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST clock on clockless server: %d, want 404", resp.StatusCode)
	}
}

// TestClockSyncRejectsBadTargets: malformed and negative targets are 400s,
// not clock movements.
func TestClockSyncRejectsBadTargets(t *testing.T) {
	e := sim.NewEngine(4)
	site, err := StartSiteWithOptions(e, testCloud(e, "clock-test", "openstack"),
		SiteOptions{Clock: ClockFollow, Tick: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()

	for _, body := range []string{`{"target":-5}`, `not json`} {
		resp, err := http.Post(site.URL+"/cloudapi/clock", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %q: %d, want 400", body, resp.StatusCode)
		}
	}
	if e.Now() != 0 {
		t.Fatalf("bad targets moved the clock to %v", e.Now())
	}
}

// TestCoordinatorBoundsSkew is the clock plane working end to end in one
// process: a console engine free-runs while a coordinator pushes its time
// to two followed sites over real HTTP. Every site must track the console
// within one sync interval (the follower contract), measured as
// skew-beyond-one-actual-interval staying far below the interval's virtual
// span.
func TestCoordinatorBoundsSkew(t *testing.T) {
	const speedup = 60_000
	syncEvery := 10 * time.Millisecond

	console := sim.NewEngine(10)
	var sites []*Site
	var targets []ClockSyncTarget
	for i, stack := range []string{"openstack", "eucalyptus"} {
		e := sim.NewEngine(uint64(20 + i))
		site, err := StartSiteWithOptions(e, testCloud(e, fmt.Sprintf("clock-site-%d", i), stack),
			SiteOptions{Clock: ClockFollow, Tick: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer site.Close()
		sites = append(sites, site)
		targets = append(targets, site.Remote())
	}

	driver := sim.StartDriver(console, speedup, time.Millisecond)
	defer driver.Stop()
	coord := StartClockCoordinator(console, syncEvery, targets...)
	defer coord.Stop()

	waitUntil(t, 10*time.Second, func() bool { return coord.Syncs() >= 20 },
		"coordinator completed too few sync rounds")
	coord.Stop()
	driver.Stop()

	// Every site synced, none errored, and none ran past the console.
	consoleNow := console.Now()
	for i, st := range coord.Stats() {
		if st.Syncs < 5 {
			t.Errorf("site %s completed %d syncs, want >= 5", st.Site, st.Syncs)
		}
		if st.Errors > 0 {
			t.Errorf("site %s saw %d sync errors", st.Site, st.Errors)
		}
		if siteNow := sites[i].Engine.Now(); siteNow > consoleNow {
			t.Errorf("site %s ran past the console: %v > %v", st.Site, siteNow, consoleNow)
		}
	}
	// The skew bound: observed skew beyond one actual sync interval stays
	// well inside the virtual span of a single interval. Slack covers one
	// follower tick plus the clock-read round trip, both in virtual time.
	bound := speedup * syncEvery.Seconds()
	if excess := coord.MaxExcess(); excess > bound {
		t.Fatalf("skew exceeded one sync interval by %.0f virtual s (bound %.0f): %+v",
			excess, bound, coord.Stats())
	}
	if coord.MaxSkew() <= 0 {
		t.Fatal("coordinator observed no skew at all; measurement is broken")
	}
}
