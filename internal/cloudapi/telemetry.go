package cloudapi

import (
	"strconv"

	"osdc/internal/sim"
	"osdc/internal/telemetry"
)

// RegisterEngine contributes one simulation engine's kernel metrics to
// reg under a shard label: live event-queue depth (Pending) and the
// monotonic fired-event count — the two observers the kernel already
// keeps, now visible while the system runs instead of only in post-hoc
// scenario tables.
func RegisterEngine(reg *telemetry.Registry, shard string, e *sim.Engine) {
	l := telemetry.Label{Key: "shard", Value: shard}
	reg.GaugeFunc("osdc_engine_pending",
		"Live events queued on the simulation engine.",
		func() float64 { return float64(e.Pending()) }, l)
	reg.CounterFunc("osdc_engine_fired_total",
		"Events the simulation engine has executed.",
		func() float64 { return float64(e.Fired()) }, l)
	reg.GaugeFunc("osdc_engine_now_seconds",
		"The engine's virtual clock.",
		func() float64 { return float64(e.Now()) }, l)
}

// RegisterKernel contributes every shard of a sharded kernel to reg,
// one series per shard.
func RegisterKernel(reg *telemetry.Registry, set *sim.ShardSet) {
	for i := 0; i < set.K(); i++ {
		RegisterEngine(reg, strconv.Itoa(i), set.ShardAt(i))
	}
}

// RegisterClockSync contributes a clock coordinator's per-site skew,
// sync and error counts to reg. The site population is read at render
// time (SampleFunc), so sites attached after registration — or a
// coordinator started later, via the indirection fn — still appear.
func RegisterClockSync(reg *telemetry.Registry, coord func() *ClockCoordinator) {
	stats := func() []ClockSyncStatsRow {
		c := coord()
		if c == nil {
			return nil
		}
		rows := make([]ClockSyncStatsRow, 0, 4)
		for _, st := range c.Stats() {
			rows = append(rows, ClockSyncStatsRow{Site: st.Site, Stats: st})
		}
		return rows
	}
	sample := func(pick func(SkewStats) float64) func() []telemetry.Sample {
		return func() []telemetry.Sample {
			rows := stats()
			out := make([]telemetry.Sample, 0, len(rows))
			for _, row := range rows {
				out = append(out, telemetry.Sample{
					Labels: []telemetry.Label{{Key: "site", Value: row.Site}},
					Value:  pick(row.Stats),
				})
			}
			return out
		}
	}
	reg.SampleFunc("osdc_clock_skew_seconds",
		"Last observed per-site clock skew (virtual seconds behind the coordinator).", "gauge",
		sample(func(s SkewStats) float64 { return s.LastSkew }))
	reg.SampleFunc("osdc_clock_max_skew_seconds",
		"Worst observed per-site clock skew.", "gauge",
		sample(func(s SkewStats) float64 { return s.MaxSkew }))
	reg.SampleFunc("osdc_clock_syncs_total",
		"Completed clock-sync push rounds per site.", "counter",
		sample(func(s SkewStats) float64 { return float64(s.Syncs) }))
	reg.SampleFunc("osdc_clock_sync_errors_total",
		"Failed clock reads or pushes per site.", "counter",
		sample(func(s SkewStats) float64 { return float64(s.Errors) }))
}

// ClockSyncStatsRow pairs a site name with its skew statistics.
type ClockSyncStatsRow struct {
	Site  string
	Stats SkewStats
}

// RegisterUsageDeltaClients contributes the wire-side half of the
// incremental usage path: per-cloud counts of polls answered by applying
// a delta to the cached snapshot versus cache drops that forced a full
// resync.
func RegisterUsageDeltaClients(reg *telemetry.Registry, remotes ...*Remote) {
	for _, r := range remotes {
		r := r
		cloud := telemetry.Label{Key: "cloud", Value: r.Name()}
		reg.CounterFunc("osdc_usage_delta_hits_total",
			"Usage polls advanced by a since-rev delta instead of a full fetch.",
			func() float64 { h, _ := r.UsageDeltaStats(); return float64(h) }, cloud)
		reg.CounterFunc("osdc_usage_delta_resets_total",
			"Usage polls that dropped the cached snapshot and resynced in full.",
			func() float64 { _, rs := r.UsageDeltaStats(); return float64(rs) }, cloud)
	}
}
