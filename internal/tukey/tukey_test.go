package tukey

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"osdc/internal/iaas"
	"osdc/internal/sim"
)

// rig wires a Shibboleth IdP, an OpenID IdP, an OpenStack cloud (adler) and
// a Eucalyptus cloud (sullivan) behind one middleware — the Figure 1 stack.
type rig struct {
	e        *sim.Engine
	mw       *Middleware
	adler    *iaas.Cloud
	sullivan *iaas.Cloud
}

func newRig(t *testing.T) *rig {
	t.Helper()
	e := sim.NewEngine(12)
	adler := iaas.NewCloud(e, "adler", "openstack", "chicago-kenwood")
	adler.AddRack("a", 4)
	adler.SetQuota("alice-adler", iaas.Quota{MaxInstances: 10, MaxCores: 100})
	sullivan := iaas.NewCloud(e, "sullivan", "eucalyptus", "chicago-nu")
	sullivan.AddRack("s", 4)
	sullivan.SetQuota("alice-euca", iaas.Quota{MaxInstances: 10, MaxCores: 100})

	novaSrv := httptest.NewServer(&iaas.NovaAPI{Cloud: adler})
	t.Cleanup(novaSrv.Close)
	eucaSrv := httptest.NewServer(&iaas.EucaAPI{Cloud: sullivan})
	t.Cleanup(eucaSrv.Close)

	shib := NewShibboleth("uchicago.edu")
	shib.Enroll("alice", "pw1")
	oid := NewOpenID("https://id.opensciencedatacloud.org")
	oid.Enroll("bob", "pw2")

	mw := NewMiddleware()
	mw.RegisterIdP(shib)
	mw.RegisterIdP(oid)
	mw.AttachCloud(CloudConfig{Name: "adler", Stack: "openstack", Endpoint: novaSrv.URL})
	mw.AttachCloud(CloudConfig{Name: "sullivan", Stack: "eucalyptus", Endpoint: eucaSrv.URL,
		FlavorMap: map[string]string{"m1.large": "m1.large"}})
	mw.GrantCredentials("alice@uchicago.edu",
		CloudCredential{Cloud: "adler", AuthUser: "alice-adler"},
		CloudCredential{Cloud: "sullivan", AuthUser: "alice-euca"},
	)
	return &rig{e: e, mw: mw, adler: adler, sullivan: sullivan}
}

func TestLoginShibboleth(t *testing.T) {
	r := newRig(t)
	tok, err := r.mw.Login(Shibboleth, "alice", "pw1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(tok, "tukey-sess-") {
		t.Fatalf("token = %q", tok)
	}
	if r.mw.Logins != 1 {
		t.Fatal("login not counted")
	}
}

func TestLoginWrongPassword(t *testing.T) {
	r := newRig(t)
	if _, err := r.mw.Login(Shibboleth, "alice", "wrong"); err == nil {
		t.Fatal("bad password accepted")
	}
	if r.mw.LoginFails != 1 {
		t.Fatal("failure not counted")
	}
}

func TestLoginWithoutOSDCAccount(t *testing.T) {
	r := newRig(t)
	// bob authenticates via OpenID but has no cloud credentials.
	if _, err := r.mw.Login(OpenID, "bob", "pw2"); err == nil {
		t.Fatal("login without credentials accepted")
	}
}

func TestLaunchAndAggregateAcrossDialects(t *testing.T) {
	r := newRig(t)
	tok, err := r.mw.Login(Shibboleth, "alice", "pw1")
	if err != nil {
		t.Fatal(err)
	}
	// Launch one VM on each cloud through the canonical API.
	if _, err := r.mw.LaunchServer(tok, "adler", "vm-os", "m1.large"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.mw.LaunchServer(tok, "sullivan", "vm-euca", "m1.large"); err != nil {
		t.Fatal(err)
	}
	servers, err := r.mw.ListServers(tok)
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != 2 {
		t.Fatalf("aggregated %d servers, want 2", len(servers))
	}
	byCloud := map[string]TaggedServer{}
	for _, s := range servers {
		byCloud[s.Cloud] = s
	}
	// Both dialects reshaped into the same (OpenStack-format) status.
	if byCloud["adler"].Status != "BUILD" {
		t.Fatalf("adler status = %q", byCloud["adler"].Status)
	}
	if byCloud["sullivan"].Status != "BUILD" {
		t.Fatalf("sullivan status = %q (EC2 'pending' should map to BUILD)", byCloud["sullivan"].Status)
	}
	if r.mw.Translations < 3 {
		t.Fatalf("translations = %d", r.mw.Translations)
	}
}

func TestTerminateBothDialects(t *testing.T) {
	r := newRig(t)
	tok, _ := r.mw.Login(Shibboleth, "alice", "pw1")
	a, err := r.mw.LaunchServer(tok, "adler", "x", "m1.small")
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.mw.LaunchServer(tok, "sullivan", "y", "m1.small")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.mw.TerminateServer(tok, "adler", a.ID); err != nil {
		t.Fatal(err)
	}
	if err := r.mw.TerminateServer(tok, "sullivan", s.ID); err != nil {
		t.Fatal(err)
	}
	servers, err := r.mw.ListServers(tok)
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != 0 {
		t.Fatalf("servers after terminate = %v", servers)
	}
}

func TestQuotaErrorsSurfaceThroughMiddleware(t *testing.T) {
	r := newRig(t)
	r.adler.SetQuota("alice-adler", iaas.Quota{MaxInstances: 1, MaxCores: 8})
	tok, _ := r.mw.Login(Shibboleth, "alice", "pw1")
	if _, err := r.mw.LaunchServer(tok, "adler", "a", "m1.small"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.mw.LaunchServer(tok, "adler", "b", "m1.small"); err == nil {
		t.Fatal("quota violation not surfaced")
	}
}

func TestInvalidSessionRejected(t *testing.T) {
	r := newRig(t)
	if _, err := r.mw.ListServers("bogus"); err == nil {
		t.Fatal("bogus session accepted")
	}
}

func TestUnknownCloudRejected(t *testing.T) {
	r := newRig(t)
	tok, _ := r.mw.Login(Shibboleth, "alice", "pw1")
	if _, err := r.mw.LaunchServer(tok, "nimbus", "x", "m1.small"); err == nil {
		t.Fatal("unknown cloud accepted")
	}
}

// --- console ---

func consoleRig(t *testing.T) (*rig, *httptest.Server) {
	r := newRig(t)
	srv := httptest.NewServer(&Console{MW: r.mw})
	t.Cleanup(srv.Close)
	return r, srv
}

func consoleLogin(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	body := `{"provider":"shibboleth","username":"alice","secret":"pw1"}`
	resp, err := http.Post(srv.URL+"/login", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("login status %d", resp.StatusCode)
	}
	var out struct {
		Token string `json:"token"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Token
}

func consoleDo(t *testing.T, srv *httptest.Server, method, path, token, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, srv.URL+path, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("X-Tukey-Session", token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestConsoleEndToEnd(t *testing.T) {
	_, srv := consoleRig(t)
	tok := consoleLogin(t, srv)

	// Launch via the console.
	resp := consoleDo(t, srv, "POST", "/console/launch", tok,
		`{"cloud":"sullivan","name":"web-vm","flavor":"m1.large"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("launch status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Listed, tagged with the cloud.
	resp = consoleDo(t, srv, "GET", "/console/instances", tok, "")
	var list struct {
		Servers []TaggedServer `json:"servers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Servers) != 1 || list.Servers[0].Cloud != "sullivan" {
		t.Fatalf("instances = %+v", list.Servers)
	}

	// Terminate.
	resp = consoleDo(t, srv, "POST", "/console/terminate", tok,
		`{"cloud":"sullivan","id":"`+list.Servers[0].ID+`"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("terminate status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestConsoleRequiresSession(t *testing.T) {
	_, srv := consoleRig(t)
	resp := consoleDo(t, srv, "GET", "/console/instances", "", "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d, want 401", resp.StatusCode)
	}
}

func TestConsoleStatusRequiresSession(t *testing.T) {
	_, srv := consoleRig(t)
	// Unauthenticated: the topology must not leak.
	resp := consoleDo(t, srv, "GET", "/console/status", "", "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated status = %d, want 401", resp.StatusCode)
	}
	resp.Body.Close()

	// With a session the clouds are listed as before.
	tok := consoleLogin(t, srv)
	resp = consoleDo(t, srv, "GET", "/console/status", tok, "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated status = %d, want 200", resp.StatusCode)
	}
	var out struct {
		Clouds []string `json:"clouds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Clouds) != 2 {
		t.Fatalf("clouds = %v", out.Clouds)
	}
}

func TestSessionExpiry(t *testing.T) {
	r := newRig(t)
	clock := time.Unix(1_350_000_000, 0) // any fixed instant
	r.mw.now = func() time.Time { return clock }
	r.mw.SetSessionTTL(30 * time.Minute)

	tok, err := r.mw.Login(Shibboleth, "alice", "pw1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.mw.identityFor(tok); !ok {
		t.Fatal("fresh session rejected")
	}
	if n := r.mw.SessionCount(); n != 1 {
		t.Fatalf("session count = %d, want 1", n)
	}

	clock = clock.Add(31 * time.Minute)
	if _, ok := r.mw.identityFor(tok); ok {
		t.Fatal("expired session accepted")
	}
	if n := r.mw.SessionCount(); n != 0 {
		t.Fatalf("session count after expiry = %d, want 0", n)
	}
	// A new login mints a fresh, valid session.
	tok2, err := r.mw.Login(Shibboleth, "alice", "pw1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.mw.identityFor(tok2); !ok {
		t.Fatal("re-login session rejected")
	}
}

func TestSessionsWithoutTTLNeverExpire(t *testing.T) {
	r := newRig(t)
	clock := time.Unix(1_350_000_000, 0)
	r.mw.now = func() time.Time { return clock }
	tok, err := r.mw.Login(Shibboleth, "alice", "pw1")
	if err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(1000 * time.Hour)
	if _, ok := r.mw.identityFor(tok); !ok {
		t.Fatal("session without TTL expired")
	}
}

func TestLocalUserDerivation(t *testing.T) {
	c := &Console{}
	cases := map[Identity]string{
		{Shibboleth, "alice@uchicago.edu"}:  "alice",
		{OpenID, "https://id.osdc.org/bob"}: "bob",
		{OpenID, "plainuser"}:               "plainuser",
	}
	for id, want := range cases {
		if got := c.localUser(id); got != want {
			t.Fatalf("localUser(%v) = %q, want %q", id, got, want)
		}
	}
}
