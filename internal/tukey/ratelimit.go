package tukey

import (
	"hash/fnv"
	"sync"
	"time"
)

// Limiter is the console's admission-control seam: AllowN spends cost
// tokens against key's bucket and reports whether the request is admitted.
// The in-process RateLimiter implements it; so does the state plane's
// remote client (tukeystate.RemoteLimiter), which is how N console
// replicas share one budget per user.
type Limiter interface {
	AllowN(key string, cost float64) bool
}

// limiterShards is the bucket map's shard count. The limiter is the one
// lock every request on every replica funnels through once it moves to the
// shared state plane; the console-knee mutex profile showed the single
// bucket-map mutex as the first state-plane lock to saturate, so the map
// is split by key hash and each shard carries its own mutex.
const limiterShards = 16

// RateLimiter is a per-key token bucket: each key (a federated user) gets
// burst tokens, refilled at rate tokens per second; a request spends one.
// It is the console's admission control — the paper's operational lesson
// that "even basic billing and accounting are effective limiting bad
// behavior" applied to request traffic: one hot researcher can no longer
// consume the whole request budget (ROADMAP: per-user rate limiting).
type RateLimiter struct {
	rate    float64 // tokens per second
	burst   float64 // bucket capacity
	maxKeys int     // eviction threshold for the bucket maps (total)

	now    func() time.Time // test hook; time.Now when nil
	shards [limiterShards]limiterShard
}

// limiterShard is one slice of the key space with its own lock.
type limiterShard struct {
	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// defaultMaxKeys bounds the bucket maps. Keys include attempted /login
// usernames — attacker-chosen, unauthenticated strings — so the maps must
// not grow with the number of distinct keys ever seen, only with the keys
// active inside one refill window.
const defaultMaxKeys = 1 << 16

// NewRateLimiter builds a limiter allowing rate requests/second per key
// with bursts up to burst. burst below 1 is raised to 1 (a bucket that can
// never hold a whole token admits nothing).
func NewRateLimiter(rate, burst float64) *RateLimiter {
	if burst < 1 {
		burst = 1
	}
	rl := &RateLimiter{rate: rate, burst: burst, maxKeys: defaultMaxKeys}
	for i := range rl.shards {
		rl.shards[i].buckets = make(map[string]*tokenBucket)
	}
	return rl
}

// shardFor hashes key onto its shard.
func (rl *RateLimiter) shardFor(key string) *limiterShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return &rl.shards[h.Sum32()%limiterShards]
}

// shardMaxKeys is the per-shard slice of the total key cap (at least 1).
func (rl *RateLimiter) shardMaxKeys() int {
	per := rl.maxKeys / limiterShards
	if per < 1 {
		per = 1
	}
	return per
}

// evictStaleLocked drops buckets idle long enough to have refilled to
// burst — for those, forgetting the bucket is observably identical to
// keeping it (a fresh bucket starts full). Callers hold sh.mu.
func (rl *RateLimiter) evictStaleLocked(sh *limiterShard, now time.Time) {
	if rl.rate <= 0 {
		// Buckets never refill: nothing is ever safely forgettable, so
		// fall back to dropping everything (test-only configuration).
		sh.buckets = make(map[string]*tokenBucket)
		return
	}
	idle := time.Duration(rl.burst / rl.rate * float64(time.Second))
	for k, b := range sh.buckets {
		if now.Sub(b.last) >= idle {
			delete(sh.buckets, k)
		}
	}
}

func (rl *RateLimiter) wallNow() time.Time {
	if rl.now != nil {
		return rl.now()
	}
	return time.Now()
}

// Allow spends one token from key's bucket, reporting whether one was
// available. New keys start with a full bucket.
func (rl *RateLimiter) Allow(key string) bool { return rl.AllowN(key, 1) }

// AllowN spends cost tokens from key's bucket — the route-weighted form: a
// launch charges several tokens where a status read charges one, so the
// same bucket throttles expensive operations harder (ROADMAP: per-route
// rate-limit costs). Costs below 1 are raised to 1; a cost above the
// bucket capacity is clamped to it, so a full bucket always admits the
// request (otherwise the route could never be called at all).
func (rl *RateLimiter) AllowN(key string, cost float64) bool {
	if cost < 1 {
		cost = 1
	}
	if cost > rl.burst {
		cost = rl.burst
	}
	now := rl.wallNow()
	sh := rl.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b, ok := sh.buckets[key]
	if !ok {
		cap := rl.shardMaxKeys()
		if len(sh.buckets) >= cap {
			rl.evictStaleLocked(sh, now)
		}
		b = &tokenBucket{tokens: rl.burst, last: now}
		// Hard cap: if every existing bucket is genuinely active, admit
		// this first-time key (a fresh bucket always has a token) without
		// remembering it rather than growing without bound.
		if len(sh.buckets) < cap {
			sh.buckets[key] = b
		}
	} else {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * rl.rate
			if b.tokens > rl.burst {
				b.tokens = rl.burst
			}
		}
		b.last = now
	}
	if b.tokens >= cost {
		b.tokens -= cost
		return true
	}
	return false
}

// Keys reports how many distinct keys hold buckets (a gauge for tests and
// status pages).
func (rl *RateLimiter) Keys() int {
	n := 0
	for i := range rl.shards {
		sh := &rl.shards[i]
		sh.mu.Lock()
		n += len(sh.buckets)
		sh.mu.Unlock()
	}
	return n
}
