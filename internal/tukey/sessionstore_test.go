package tukey

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestMemorySessionStoreCRUD(t *testing.T) {
	s := NewMemorySessionStore()
	id := Identity{Provider: Shibboleth, Identifier: "alice@uchicago.edu"}
	s.Put("tok-1", Session{Identity: id})
	got, ok := s.Get("tok-1")
	if !ok || got.Identity != id {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if _, ok := s.Get("tok-2"); ok {
		t.Fatal("absent token found")
	}
	if s.Count() != 1 {
		t.Fatalf("count = %d", s.Count())
	}
	s.Delete("tok-1")
	if _, ok := s.Get("tok-1"); ok {
		t.Fatal("deleted token still resolves")
	}
	s.Delete("tok-1") // absent delete is a no-op
}

func TestMemorySessionStoreExpireBefore(t *testing.T) {
	s := NewMemorySessionStore()
	base := time.Unix(1_350_000_000, 0)
	s.Put("eternal", Session{}) // zero expiry never reaped
	s.Put("old", Session{Expires: base.Add(time.Minute)})
	s.Put("fresh", Session{Expires: base.Add(time.Hour)})
	if n := s.ExpireBefore(base.Add(30 * time.Minute)); n != 1 {
		t.Fatalf("reaped %d, want 1", n)
	}
	if _, ok := s.Get("old"); ok {
		t.Fatal("expired session survived")
	}
	for _, tok := range []string{"eternal", "fresh"} {
		if _, ok := s.Get(tok); !ok {
			t.Fatalf("%s reaped prematurely", tok)
		}
	}
}

// countingStore wraps the memory store to prove the middleware resolves
// every session through the interface, not a private map.
type countingStore struct {
	*MemorySessionStore
	mu   sync.Mutex
	gets int
}

func (c *countingStore) Get(token string) (Session, bool) {
	c.mu.Lock()
	c.gets++
	c.mu.Unlock()
	return c.MemorySessionStore.Get(token)
}

// TestMiddlewareUsesInjectedStore swaps the store before traffic and
// checks logins land in it and lookups come from it — the seam a shared
// cross-replica store will plug into.
func TestMiddlewareUsesInjectedStore(t *testing.T) {
	r := newRig(t)
	store := &countingStore{MemorySessionStore: NewMemorySessionStore()}
	r.mw.SetSessionStore(store)

	tok, err := r.mw.Login(Shibboleth, "alice", "pw1")
	if err != nil {
		t.Fatal(err)
	}
	if store.Count() != 1 {
		t.Fatalf("injected store holds %d sessions, want 1", store.Count())
	}
	if _, ok := r.mw.identityFor(tok); !ok {
		t.Fatal("session in injected store rejected")
	}
	if store.gets == 0 {
		t.Fatal("identityFor bypassed the injected store")
	}

	// A second middleware sharing the same store sees the session — the
	// multi-replica scenario.
	mw2 := NewMiddleware()
	mw2.SetSessionStore(store)
	if _, ok := mw2.identityFor(tok); !ok {
		t.Fatal("replica sharing the store rejected the session")
	}
}

func TestSessionStoreConcurrent(t *testing.T) {
	s := NewMemorySessionStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tok := fmt.Sprintf("tok-%d-%d", g, i)
				s.Put(tok, Session{Expires: time.Unix(int64(i), 0)})
				s.Get(tok)
				s.Count()
				s.ExpireBefore(time.Unix(25, 0))
			}
		}()
	}
	wg.Wait()
}
