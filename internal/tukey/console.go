package tukey

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"osdc/internal/billing"
	"osdc/internal/cloudapi"
	"osdc/internal/datasets"
	"osdc/internal/datastore"
	"osdc/internal/monitor"
	"osdc/internal/telemetry"
)

// Console is the Tukey Console web application (§5.1): "The core
// functionality of the web application is virtual machine provisioning
// with usage and billing information", plus the optional modules for file
// sharing management and public data set management.
//
// Routes (all JSON; session token in the X-Tukey-Session header except for
// /login):
//
//	POST /login                      {provider, username, secret} → {token}
//	GET  /console/instances          aggregated multi-cloud server list
//	POST /console/launch             {cloud, name, flavor} → server
//	POST /console/terminate          {cloud, id}
//	POST /console/stop               {cloud, id}: shut down, keep allocation
//	GET  /console/usage              current-cycle usage (core-hours, GB-days)
//	GET  /console/datasets           public dataset catalog (?q= to search)
//	GET  /console/datasets/replicas  per-site dataset placement (?dataset= to filter)
//	POST /console/datasets/stage     {dataset, cloud}: place a replica on a cloud's site
//	GET  /console/status             attached clouds, poller and clock health
//	GET  /console/stream             SSE telemetry feed (when a Streamer is wired)
//
// Each route is served through an interceptor chain (interceptor.go):
// auth/session resolution, then rate-limit admission, then the handler.
// The layers keep their state behind the SessionStore and Limiter seams,
// which is what makes a Console replica stateless — point MW at a shared
// (or remote) store and Limiter at a shared limiter and N replicas behave
// as one console.
type Console struct {
	MW      *Middleware
	Biller  *billing.Biller
	Catalog *datasets.Catalog
	// Replication, when set, powers the data-plane routes: replica
	// placement reads and pre-launch dataset staging.
	Replication *datastore.Coordinator
	// UsageMon, when set, contributes per-site sample-error counts to the
	// /console/status operator view alongside the biller's poll errors.
	UsageMon *monitor.UsageMonitor
	// Limiter, when set, is the per-user admission control: every console
	// route charges route-weighted tokens against the caller's federated
	// identifier (for /login, the attempted username) and answers 429 when
	// the bucket is empty. An in-process *RateLimiter and the state
	// plane's RemoteLimiter both satisfy it.
	Limiter Limiter
	// UserFor maps a federated identity to the local username the biller
	// and catalog know. Defaults to the identifier's local part.
	UserFor func(Identity) string
	// ClockSync, when set, contributes federation clock-skew health to
	// /console/status.
	ClockSync *cloudapi.ClockCoordinator
	// UsageCacheHits, when set, reports per-cloud usage-delta cache hits
	// for /console/status. A closure (not a map) because the counters
	// live on the per-cloud servers and tick between requests.
	UsageCacheHits func() map[string]int64

	// Metrics, when set via RegisterMetrics, receives per-route request
	// counts and latency histograms; nil leaves routes uninstrumented.
	Metrics *telemetry.Registry
	// Stream, when set, serves GET /console/stream: the deterministic
	// SSE telemetry feed (telemetry.Streamer).
	Stream *telemetry.Streamer

	// RateLimited counts requests rejected with 429.
	RateLimited int64

	// routes is the chained routing table, built once on first request
	// (the Console is constructed as a struct literal all over the repo,
	// so there is no constructor to hang this on).
	routesOnce sync.Once
	routes     map[string]http.Handler
}

func (c *Console) localUser(id Identity) string {
	if c.UserFor != nil {
		return c.UserFor(id)
	}
	local := id.Identifier
	if i := strings.IndexAny(local, "@"); i >= 0 {
		local = local[:i]
	}
	if i := strings.LastIndex(local, "/"); i >= 0 {
		local = local[i+1:]
	}
	return local
}

// invalidSessionKey is the shared rate-limit bucket for requests bearing
// no valid session. Tokens are sequential ("tukey-sess-000042"), so
// guessing must be throttled; one coarse bucket (rather than per-token
// keys, which would be attacker-chosen) bounds the sweep rate without
// letting the sweep grow the key space. The leading NUL keeps it disjoint
// from any federated identifier.
const invalidSessionKey = "\x00invalid-session"

// routeCosts weights each route's rate-limit charge by what it costs the
// federation: a launch provisions a VM across the transport layer, a
// dataset stage schedules a WAN transfer, a status read is a map copy.
// Unlisted routes cost 1. TestRouteCostTable pins this table.
var routeCosts = map[string]float64{
	"POST /console/launch":         10,
	"POST /console/terminate":      5,
	"POST /console/stop":           5,
	"POST /console/datasets/stage": 4,
	"GET /console/instances":       2,
}

// routeCost is the token charge for one request.
func routeCost(method, path string) float64 {
	if cost, ok := routeCosts[method+" "+path]; ok {
		return cost
	}
	return 1
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// buildRoutes assembles the routing table: every console route behind the
// session chain (authenticate → rateLimit → enforceSession → handler),
// /login behind its own (parseLogin → rateLimit → handler). Routing
// happens before any chain runs, so an unknown path stays a bare 404 with
// no session resolution and no bucket charge — exactly the monolith's
// behavior.
func (c *Console) buildRoutes() {
	session := func(h http.HandlerFunc) http.Handler {
		return Chain(h, c.authenticate, c.rateLimit, c.enforceSession)
	}
	c.routes = map[string]http.Handler{
		"POST /login":                    Chain(http.HandlerFunc(c.handleLogin), c.parseLogin, c.rateLimit),
		"GET /console/instances":         session(c.handleInstances),
		"POST /console/launch":           session(c.handleLaunch),
		"POST /console/terminate":        session(c.handleTerminate),
		"POST /console/stop":             session(c.handleStop),
		"GET /console/usage":             session(c.handleUsage),
		"GET /console/datasets":          session(c.handleDatasets),
		"GET /console/datasets/replicas": session(c.handleDatasetReplicas),
		"POST /console/datasets/stage":   session(c.handleDatasetStage),
		"GET /console/status":            session(c.handleStatus),
		"GET /console/stream":            session(c.handleStream),
	}
	if c.Metrics != nil {
		for key, h := range c.routes {
			c.routes[key] = c.instrument(key, h)
		}
	}
}

// instrument wraps one route with its request counter and wall-latency
// histogram. The wrapper sits outside the interceptor chain so throttled
// and unauthenticated requests are measured too. The ResponseWriter is
// passed through unwrapped so it advertises exactly the optional
// interfaces it supports — the SSE stream route's http.Flusher check must
// fail fast on a writer that cannot actually flush, not buffer forever
// behind a no-op Flush.
func (c *Console) instrument(key string, h http.Handler) http.Handler {
	requests := c.Metrics.Counter("osdc_console_requests_total",
		"Console requests served, by route.",
		telemetry.Label{Key: "route", Value: key})
	latency := c.Metrics.Histogram("osdc_console_request_seconds",
		"Console request wall latency, by route.", telemetry.LatencyBuckets,
		telemetry.Label{Key: "route", Value: key})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h.ServeHTTP(w, r)
		requests.Inc()
		latency.Observe(time.Since(start).Seconds())
	})
}

// RegisterMetrics attaches reg as the console's registry: per-route
// series are created when the routing table is built, plus the global
// throttle counter here. Call before the first request (route
// instrumentation is latched by routesOnce).
func (c *Console) RegisterMetrics(reg *telemetry.Registry) {
	c.Metrics = reg
	reg.CounterFunc("osdc_console_throttled_total",
		"Console requests rejected with 429 by admission control.",
		func() float64 { return float64(atomic.LoadInt64(&c.RateLimited)) })
}

// ServeHTTP implements http.Handler: pure routing — every other concern
// lives in the per-route interceptor chains.
func (c *Console) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.routesOnce.Do(c.buildRoutes)
	if h, ok := c.routes[r.Method+" "+r.URL.Path]; ok {
		h.ServeHTTP(w, r)
		return
	}
	writeJSON(w, http.StatusNotFound, map[string]string{"error": "no route " + r.Method + " " + r.URL.Path})
}

func (c *Console) handleLogin(w http.ResponseWriter, r *http.Request) {
	req, _ := loginFrom(r)
	tok, err := c.MW.Login(Provider(req.Provider), req.Username, req.Secret)
	if err != nil {
		writeJSON(w, http.StatusUnauthorized, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"token": tok})
}

func (c *Console) handleInstances(w http.ResponseWriter, r *http.Request) {
	servers, err := c.MW.ListServers(r.Header.Get("X-Tukey-Session"))
	if err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"servers": servers})
}

func (c *Console) handleLaunch(w http.ResponseWriter, r *http.Request) {
	var req struct{ Cloud, Name, Flavor string }
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	srv, err := c.MW.LaunchServer(r.Header.Get("X-Tukey-Session"), req.Cloud, req.Name, req.Flavor)
	if err != nil {
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]interface{}{"server": srv})
}

func (c *Console) handleTerminate(w http.ResponseWriter, r *http.Request) {
	var req struct{ Cloud, ID string }
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if err := c.MW.TerminateServer(r.Header.Get("X-Tukey-Session"), req.Cloud, req.ID); err != nil {
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "terminated"})
}

func (c *Console) handleStop(w http.ResponseWriter, r *http.Request) {
	var req struct{ Cloud, ID string }
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if err := c.MW.StopServer(r.Header.Get("X-Tukey-Session"), req.Cloud, req.ID); err != nil {
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "stopping"})
}

func (c *Console) handleUsage(w http.ResponseWriter, r *http.Request) {
	si, _ := sessionFrom(r)
	if c.Biller == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "billing not configured"})
		return
	}
	u := c.Biller.CurrentUsage(c.localUser(si.id))
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"user": u.User, "core_hours": u.CoreHours(), "gb_days": u.GBDays,
		"cycle": c.Biller.Cycle(),
	})
}

func (c *Console) handleDatasets(w http.ResponseWriter, r *http.Request) {
	if c.Catalog == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "catalog not configured"})
		return
	}
	q := r.URL.Query().Get("q")
	writeJSON(w, http.StatusOK, map[string]interface{}{"datasets": c.Catalog.Search(q)})
}

func (c *Console) handleDatasetReplicas(w http.ResponseWriter, r *http.Request) {
	if c.Replication == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "replication not configured"})
		return
	}
	rows := c.Replication.Placement()
	if want := r.URL.Query().Get("dataset"); want != "" {
		filtered := rows[:0]
		for _, row := range rows {
			if row.Dataset == want {
				filtered = append(filtered, row)
			}
		}
		rows = filtered
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"placement": rows})
}

// handleDatasetStage places a dataset replica on the site that will host
// the user's instances before the launch (§4: compute next to the data),
// so the VM reads it over the LAN instead of the WAN.
func (c *Console) handleDatasetStage(w http.ResponseWriter, r *http.Request) {
	if c.Replication == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "replication not configured"})
		return
	}
	var req struct{ Dataset, Cloud string }
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if req.Dataset == "" || req.Cloud == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "stage needs a dataset and a cloud"})
		return
	}
	st, err := c.Replication.Stage(req.Dataset, req.Cloud)
	if err != nil {
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
		return
	}
	code := http.StatusOK
	if st.State == "staging" {
		code = http.StatusAccepted
	}
	writeJSON(w, code, st)
}

// handleStatus reports cloud topology — operator data: like every other
// /console/* route this requires a session (it used to be the one
// unauthenticated leak).
func (c *Console) handleStatus(w http.ResponseWriter, r *http.Request) {
	status := map[string]interface{}{"clouds": c.MW.Clouds()}
	// Per-site poller health: which clouds the billing and monitoring
	// sweeps failed to reach, not just that one did.
	if c.Biller != nil {
		status["poll_errors"] = c.Biller.PollErrorsByCloud()
	}
	if c.UsageMon != nil {
		status["sample_errors"] = c.UsageMon.SampleErrorsByCloud()
	}
	// Usage-delta cache health (which clouds answer polls incrementally)
	// and federation clock skew round out the operator view: one request
	// answers "are the pollers, the usage path, and the clocks healthy?".
	if c.UsageCacheHits != nil {
		status["usage_cache_hits"] = c.UsageCacheHits()
	}
	if c.ClockSync != nil {
		status["clock"] = map[string]interface{}{
			"max_skew": c.ClockSync.MaxSkew(),
			"syncs":    c.ClockSync.Syncs(),
		}
	}
	writeJSON(w, http.StatusOK, status)
}

// handleStream serves the SSE telemetry feed: aggregated metric deltas
// framed by the streamer on its virtual-clock cadence.
func (c *Console) handleStream(w http.ResponseWriter, r *http.Request) {
	if c.Stream == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "telemetry stream not configured"})
		return
	}
	c.Stream.ServeStream(w, r)
}
