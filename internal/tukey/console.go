package tukey

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync/atomic"

	"osdc/internal/billing"
	"osdc/internal/datasets"
	"osdc/internal/datastore"
	"osdc/internal/monitor"
)

// Console is the Tukey Console web application (§5.1): "The core
// functionality of the web application is virtual machine provisioning
// with usage and billing information", plus the optional modules for file
// sharing management and public data set management.
//
// Routes (all JSON; session token in the X-Tukey-Session header except for
// /login):
//
//	POST /login                      {provider, username, secret} → {token}
//	GET  /console/instances          aggregated multi-cloud server list
//	POST /console/launch             {cloud, name, flavor} → server
//	POST /console/terminate          {cloud, id}
//	GET  /console/usage              current-cycle usage (core-hours, GB-days)
//	GET  /console/datasets           public dataset catalog (?q= to search)
//	GET  /console/datasets/replicas  per-site dataset placement (?dataset= to filter)
//	POST /console/datasets/stage     {dataset, cloud}: place a replica on a cloud's site
//	GET  /console/status             attached clouds
type Console struct {
	MW      *Middleware
	Biller  *billing.Biller
	Catalog *datasets.Catalog
	// Replication, when set, powers the data-plane routes: replica
	// placement reads and pre-launch dataset staging.
	Replication *datastore.Coordinator
	// UsageMon, when set, contributes per-site sample-error counts to the
	// /console/status operator view alongside the biller's poll errors.
	UsageMon *monitor.UsageMonitor
	// Limiter, when set, is the per-user admission control: every console
	// route charges one token against the caller's federated identifier
	// (for /login, the attempted username) and answers 429 when the bucket
	// is empty.
	Limiter *RateLimiter
	// UserFor maps a federated identity to the local username the biller
	// and catalog know. Defaults to the identifier's local part.
	UserFor func(Identity) string

	// RateLimited counts requests rejected with 429.
	RateLimited int64
}

func (c *Console) localUser(id Identity) string {
	if c.UserFor != nil {
		return c.UserFor(id)
	}
	local := id.Identifier
	if i := strings.IndexAny(local, "@"); i >= 0 {
		local = local[:i]
	}
	if i := strings.LastIndex(local, "/"); i >= 0 {
		local = local[i+1:]
	}
	return local
}

// invalidSessionKey is the shared rate-limit bucket for requests bearing
// no valid session. Tokens are sequential ("tukey-sess-000042"), so
// guessing must be throttled; one coarse bucket (rather than per-token
// keys, which would be attacker-chosen) bounds the sweep rate without
// letting the sweep grow the key space. The leading NUL keeps it disjoint
// from any federated identifier.
const invalidSessionKey = "\x00invalid-session"

// routeCosts weights each route's rate-limit charge by what it costs the
// federation: a launch provisions a VM across the transport layer, a
// dataset stage schedules a WAN transfer, a status read is a map copy.
// Unlisted routes cost 1. TestRouteCostTable pins this table.
var routeCosts = map[string]float64{
	"POST /console/launch":         10,
	"POST /console/terminate":      5,
	"POST /console/datasets/stage": 4,
	"GET /console/instances":       2,
}

// routeCost is the token charge for one request.
func routeCost(method, path string) float64 {
	if cost, ok := routeCosts[method+" "+path]; ok {
		return cost
	}
	return 1
}

func (c *Console) session(w http.ResponseWriter, r *http.Request) (Identity, bool) {
	cost := routeCost(r.Method, r.URL.Path)
	tok := r.Header.Get("X-Tukey-Session")
	id, ok := c.MW.identityFor(tok)
	if !ok {
		if !c.allow(w, invalidSessionKey, cost) {
			return Identity{}, false
		}
		writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "invalid or missing session"})
		return Identity{}, false
	}
	if !c.allow(w, id.Identifier, cost) {
		return Identity{}, false
	}
	return id, true
}

// allow charges cost rate-limit tokens for key, answering 429 when the
// caller's bucket is exhausted. With no Limiter configured everything
// passes.
func (c *Console) allow(w http.ResponseWriter, key string, cost float64) bool {
	if c.Limiter == nil || c.Limiter.AllowN(key, cost) {
		return true
	}
	atomic.AddInt64(&c.RateLimited, 1)
	writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "rate limit exceeded for " + key})
	return false
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// ServeHTTP implements http.Handler.
func (c *Console) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/login" && r.Method == http.MethodPost:
		var req struct {
			Provider string `json:"provider"`
			Username string `json:"username"`
			Secret   string `json:"secret"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		// Login attempts are charged per attempted username, bounding
		// brute force before the IdP sees it.
		if !c.allow(w, req.Username, routeCost(r.Method, r.URL.Path)) {
			return
		}
		tok, err := c.MW.Login(Provider(req.Provider), req.Username, req.Secret)
		if err != nil {
			writeJSON(w, http.StatusUnauthorized, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"token": tok})

	case r.URL.Path == "/console/instances" && r.Method == http.MethodGet:
		if _, ok := c.session(w, r); !ok {
			return
		}
		servers, err := c.MW.ListServers(r.Header.Get("X-Tukey-Session"))
		if err != nil {
			writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{"servers": servers})

	case r.URL.Path == "/console/launch" && r.Method == http.MethodPost:
		if _, ok := c.session(w, r); !ok {
			return
		}
		var req struct{ Cloud, Name, Flavor string }
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		srv, err := c.MW.LaunchServer(r.Header.Get("X-Tukey-Session"), req.Cloud, req.Name, req.Flavor)
		if err != nil {
			writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]interface{}{"server": srv})

	case r.URL.Path == "/console/terminate" && r.Method == http.MethodPost:
		if _, ok := c.session(w, r); !ok {
			return
		}
		var req struct{ Cloud, ID string }
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if err := c.MW.TerminateServer(r.Header.Get("X-Tukey-Session"), req.Cloud, req.ID); err != nil {
			writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "terminated"})

	case r.URL.Path == "/console/usage" && r.Method == http.MethodGet:
		id, ok := c.session(w, r)
		if !ok {
			return
		}
		if c.Biller == nil {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "billing not configured"})
			return
		}
		u := c.Biller.CurrentUsage(c.localUser(id))
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"user": u.User, "core_hours": u.CoreHours(), "gb_days": u.GBDays,
			"cycle": c.Biller.Cycle(),
		})

	case r.URL.Path == "/console/datasets" && r.Method == http.MethodGet:
		if _, ok := c.session(w, r); !ok {
			return
		}
		if c.Catalog == nil {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "catalog not configured"})
			return
		}
		q := r.URL.Query().Get("q")
		writeJSON(w, http.StatusOK, map[string]interface{}{"datasets": c.Catalog.Search(q)})

	case r.URL.Path == "/console/datasets/replicas" && r.Method == http.MethodGet:
		if _, ok := c.session(w, r); !ok {
			return
		}
		if c.Replication == nil {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "replication not configured"})
			return
		}
		rows := c.Replication.Placement()
		if want := r.URL.Query().Get("dataset"); want != "" {
			filtered := rows[:0]
			for _, row := range rows {
				if row.Dataset == want {
					filtered = append(filtered, row)
				}
			}
			rows = filtered
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{"placement": rows})

	case r.URL.Path == "/console/datasets/stage" && r.Method == http.MethodPost:
		// Staging places a dataset replica on the site that will host the
		// user's instances before the launch (§4: compute next to the
		// data), so the VM reads it over the LAN instead of the WAN.
		if _, ok := c.session(w, r); !ok {
			return
		}
		if c.Replication == nil {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "replication not configured"})
			return
		}
		var req struct{ Dataset, Cloud string }
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if req.Dataset == "" || req.Cloud == "" {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "stage needs a dataset and a cloud"})
			return
		}
		st, err := c.Replication.Stage(req.Dataset, req.Cloud)
		if err != nil {
			writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
			return
		}
		code := http.StatusOK
		if st.State == "staging" {
			code = http.StatusAccepted
		}
		writeJSON(w, code, st)

	case r.URL.Path == "/console/status" && r.Method == http.MethodGet:
		// Cloud topology is operator data: like every other /console/*
		// route this requires a session (it used to be the one
		// unauthenticated leak).
		if _, ok := c.session(w, r); !ok {
			return
		}
		status := map[string]interface{}{"clouds": c.MW.Clouds()}
		// Per-site poller health: which clouds the billing and monitoring
		// sweeps failed to reach, not just that one did.
		if c.Biller != nil {
			status["poll_errors"] = c.Biller.PollErrorsByCloud()
		}
		if c.UsageMon != nil {
			status["sample_errors"] = c.UsageMon.SampleErrorsByCloud()
		}
		writeJSON(w, http.StatusOK, status)

	default:
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no route " + r.Method + " " + r.URL.Path})
	}
}
