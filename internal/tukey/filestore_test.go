package tukey

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFileSessionStoreRoundTrip: sessions put by one store instance are
// visible to a fresh instance opened on the same file — the console
// restart that no longer logs everyone out.
func TestFileSessionStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.json")
	s1, err := NewFileSessionStore(path)
	if err != nil {
		t.Fatal(err)
	}
	want := Session{
		Identity: Identity{Provider: Shibboleth, Identifier: "demo@uchicago.edu"},
		Expires:  time.Now().Add(12 * time.Hour).Round(0),
	}
	s1.Put("tok-1", want)
	s1.Put("tok-2", Session{Identity: Identity{Provider: OpenID, Identifier: "https://id/x"}})
	s1.Delete("tok-2")
	if err := s1.Err(); err != nil {
		t.Fatalf("persist error: %v", err)
	}

	s2, err := NewFileSessionStore(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("tok-1")
	if !ok {
		t.Fatal("tok-1 lost across restart")
	}
	if got.Identity != want.Identity || !got.Expires.Equal(want.Expires) {
		t.Fatalf("restored session %+v, want %+v", got, want)
	}
	if _, ok := s2.Get("tok-2"); ok {
		t.Fatal("deleted token resurrected by restart")
	}
	if s2.Count() != 1 {
		t.Fatalf("count = %d, want 1", s2.Count())
	}
}

// TestFileSessionStoreTTLExpiry: ExpireBefore reaps and persists, so an
// expired session stays gone after a restart.
func TestFileSessionStoreTTLExpiry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.json")
	s, err := NewFileSessionStore(path)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	s.Put("live", Session{Identity: Identity{Provider: Shibboleth, Identifier: "a@x"}, Expires: now.Add(time.Hour)})
	s.Put("dead", Session{Identity: Identity{Provider: Shibboleth, Identifier: "b@x"}, Expires: now.Add(-time.Hour)})
	s.Put("forever", Session{Identity: Identity{Provider: Shibboleth, Identifier: "c@x"}})

	if n := s.ExpireBefore(now); n != 1 {
		t.Fatalf("reaped %d sessions, want 1", n)
	}
	reopened, err := NewFileSessionStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reopened.Get("dead"); ok {
		t.Fatal("expired session survived the restart")
	}
	for _, tok := range []string{"live", "forever"} {
		if _, ok := reopened.Get(tok); !ok {
			t.Fatalf("session %q lost", tok)
		}
	}
}

// TestFileSessionStoreCorruptFile: a mangled session file is a loud
// construction error, not a silent empty store.
func TestFileSessionStoreCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileSessionStore(path); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt file error = %v", err)
	}
}

// TestFileSessionStoreNoTempLitter: the atomic-rename dance leaves no temp
// files behind.
func TestFileSessionStoreNoTempLitter(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileSessionStore(filepath.Join(dir, "sessions.json"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Put("tok", Session{Identity: Identity{Provider: Shibboleth, Identifier: "a@x"}})
		s.Delete("tok")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".sessions-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

// TestFileSessionStoreConcurrentMutations hammers the store from many
// goroutines (run under -race): mutations interleave with persistence
// happening outside the session lock, and the final file must reflect the
// final map — the generation check forbids a stale snapshot landing last.
func TestFileSessionStoreConcurrentMutations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.json")
	s, err := NewFileSessionStore(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				tok := fmt.Sprintf("tok-%d-%d", w, i)
				s.Put(tok, Session{Identity: Identity{Provider: Shibboleth, Identifier: tok}})
				s.Get(tok)
				if i%3 == 0 {
					s.Delete(tok)
				}
			}
		}()
	}
	wg.Wait()
	if err := s.Err(); err != nil {
		t.Fatalf("persist error under concurrency: %v", err)
	}
	reopened, err := NewFileSessionStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Count() != s.Count() {
		t.Fatalf("file holds %d sessions, memory holds %d", reopened.Count(), s.Count())
	}
}

// TestMiddlewareSessionsSurviveRestart is the store working where it
// matters: a token minted by one Middleware resolves through a second one
// sharing the file, exactly like a restarted console process.
func TestMiddlewareSessionsSurviveRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.json")
	store1, err := NewFileSessionStore(path)
	if err != nil {
		t.Fatal(err)
	}
	m1 := NewMiddleware()
	m1.SetSessionStore(store1)
	idp := NewShibboleth("uchicago.edu")
	idp.Enroll("demo", "pw")
	m1.RegisterIdP(idp)
	m1.GrantCredentials("demo@uchicago.edu", CloudCredential{Cloud: "c", AuthUser: "demo"})
	tok, err := m1.Login(Shibboleth, "demo", "pw")
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new middleware over a fresh store on the file.
	store2, err := NewFileSessionStore(path)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewMiddleware()
	m2.SetSessionStore(store2)
	id, ok := m2.identityFor(tok)
	if !ok {
		t.Fatal("session did not survive the restart")
	}
	if id.Identifier != "demo@uchicago.edu" {
		t.Fatalf("restored identity %+v", id)
	}
}
