package tukey

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRateLimiterBurstThenRefill(t *testing.T) {
	clock := time.Unix(1_350_000_000, 0)
	rl := NewRateLimiter(2, 3) // 2 tokens/s, burst 3
	rl.now = func() time.Time { return clock }

	for i := 0; i < 3; i++ {
		if !rl.Allow("alice") {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	if rl.Allow("alice") {
		t.Fatal("4th request allowed with empty bucket")
	}

	// Half a second refills one token at 2/s.
	clock = clock.Add(500 * time.Millisecond)
	if !rl.Allow("alice") {
		t.Fatal("refilled token denied")
	}
	if rl.Allow("alice") {
		t.Fatal("second request allowed after a one-token refill")
	}

	// A long idle period caps at burst, not at elapsed × rate.
	clock = clock.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if !rl.Allow("alice") {
			t.Fatalf("request %d after refill-to-burst denied", i)
		}
	}
	if rl.Allow("alice") {
		t.Fatal("bucket exceeded burst after idling")
	}
}

func TestRateLimiterKeysAreIndependent(t *testing.T) {
	clock := time.Unix(1_350_000_000, 0)
	rl := NewRateLimiter(1, 1)
	rl.now = func() time.Time { return clock }
	if !rl.Allow("alice") {
		t.Fatal("alice's first request denied")
	}
	if rl.Allow("alice") {
		t.Fatal("alice's second request allowed")
	}
	// Alice's exhaustion must not touch bob.
	if !rl.Allow("bob") {
		t.Fatal("bob denied because alice was hot")
	}
	if rl.Keys() != 2 {
		t.Fatalf("keys = %d, want 2", rl.Keys())
	}
}

func TestRateLimiterMinimumBurst(t *testing.T) {
	rl := NewRateLimiter(10, 0) // burst raised to 1
	if !rl.Allow("x") {
		t.Fatal("burst<1 bucket admits nothing")
	}
}

func TestRateLimiterConcurrentAccounting(t *testing.T) {
	clock := time.Unix(1_350_000_000, 0)
	rl := NewRateLimiter(0, 100) // no refill: exactly 100 admits per key
	rl.now = func() time.Time { return clock }
	var wg sync.WaitGroup
	admitted := make(chan struct{}, 1000)
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if rl.Allow("shared") {
					admitted <- struct{}{}
				}
			}
		}()
	}
	wg.Wait()
	close(admitted)
	n := 0
	for range admitted {
		n++
	}
	if n != 100 {
		t.Fatalf("admitted %d of 1000 concurrent requests, want exactly burst=100", n)
	}
}

// TestRateLimiterBoundsKeySpace floods the limiter with unique
// attacker-chosen keys (the /login username surface) and checks the
// bucket map stays bounded: stale buckets are evicted once the cap is
// reached, and the map never exceeds it.
func TestRateLimiterBoundsKeySpace(t *testing.T) {
	clock := time.Unix(1_350_000_000, 0)
	rl := NewRateLimiter(100, 1) // idle window: 1/100 s
	rl.now = func() time.Time { return clock }
	rl.maxKeys = 64
	for i := 0; i < 10_000; i++ {
		if !rl.Allow(fmt.Sprintf("attacker-%06d", i)) {
			t.Fatalf("fresh key %d denied", i)
		}
		if rl.Keys() > 64 {
			t.Fatalf("bucket map grew to %d keys past the %d cap", rl.Keys(), 64)
		}
		// Every 64th key, everything older has idled past burst/rate and
		// becomes forgettable.
		clock = clock.Add(time.Millisecond)
	}
	// A hot key that stays inside the window is still limited even while
	// the sweep churns.
	if !rl.Allow("hot") {
		t.Fatal("hot key's first request denied")
	}
	if rl.Allow("hot") {
		t.Fatal("hot key's second immediate request allowed (burst 1)")
	}
}

// TestConsoleThrottlesTokenGuessing sweeps sequential session tokens (the
// enumerable "tukey-sess-%06d" space) and checks the 401s turn into 429s
// once the shared invalid-session bucket drains — while a valid session
// keeps working.
func TestConsoleThrottlesTokenGuessing(t *testing.T) {
	r := newRig(t)
	clock := time.Unix(1_350_000_000, 0)
	limiter := NewRateLimiter(1, 3)
	limiter.now = func() time.Time { return clock }
	console := &Console{MW: r.mw, Limiter: limiter}
	srv := httptest.NewServer(console)
	t.Cleanup(srv.Close)
	tok := consoleLogin(t, srv)

	got429 := false
	for i := 0; i < 5; i++ {
		resp := consoleDo(t, srv, "GET", "/console/instances", fmt.Sprintf("tukey-sess-%06d", 900+i), "")
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusUnauthorized: // inside the shared burst
		case http.StatusTooManyRequests:
			got429 = true
		default:
			t.Fatalf("guess %d status = %d", i, resp.StatusCode)
		}
	}
	if !got429 {
		t.Fatal("sequential token sweep never throttled")
	}
	// The legitimate session is unaffected by the guessing storm.
	resp := consoleDo(t, srv, "GET", "/console/status", tok, "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid session status = %d during guess storm, want 200", resp.StatusCode)
	}
}

// TestConsoleRateLimit429 runs the limiter through the console: the hot
// researcher is rejected with 429 on both /login and session routes while
// their session stays valid.
func TestConsoleRateLimit429(t *testing.T) {
	r := newRig(t)
	clock := time.Unix(1_350_000_000, 0)
	limiter := NewRateLimiter(1, 2)
	limiter.now = func() time.Time { return clock }
	console := &Console{MW: r.mw, Limiter: limiter}
	srv := httptest.NewServer(console)
	t.Cleanup(srv.Close)

	tok := consoleLogin(t, srv) // 1 token spent on alice's login bucket

	// alice@uchicago.edu has a fresh identity bucket: 2 requests pass,
	// the third 429s.
	statuses := []int{}
	for i := 0; i < 3; i++ {
		resp := consoleDo(t, srv, "GET", "/console/status", tok, "")
		statuses = append(statuses, resp.StatusCode)
		resp.Body.Close()
	}
	want := []int{http.StatusOK, http.StatusOK, http.StatusTooManyRequests}
	for i := range want {
		if statuses[i] != want[i] {
			t.Fatalf("request %d status = %d, want %d (all: %v)", i, statuses[i], want[i], statuses)
		}
	}
	if console.RateLimited != 1 {
		t.Fatalf("RateLimited = %d, want 1", console.RateLimited)
	}

	// The 429 did not invalidate the session: after refill the token
	// still works.
	clock = clock.Add(2 * time.Second)
	resp := consoleDo(t, srv, "GET", "/console/status", tok, "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-refill status = %d, want 200", resp.StatusCode)
	}

	// Login brute force is bounded per attempted username: alice's login
	// bucket (refilled to its burst of 2 by the clock jump above) admits
	// two bad attempts, then 429s regardless of the password being wrong.
	body := `{"provider":"shibboleth","username":"alice","secret":"nope"}`
	wantLogin := []int{http.StatusUnauthorized, http.StatusUnauthorized, http.StatusTooManyRequests}
	for i, wantCode := range wantLogin {
		resp, err := http.Post(srv.URL+"/login", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("bad login %d status = %d, want %d", i, resp.StatusCode, wantCode)
		}
	}
}
