package tukey

import (
	"sync"
	"time"
)

// Session is one logged-in identity plus its wall-clock expiry (zero =
// never expires).
type Session struct {
	Identity Identity
	Expires  time.Time
}

// expired reports whether the session is past its expiry at now.
func (s Session) expired(now time.Time) bool {
	return !s.Expires.IsZero() && now.After(s.Expires)
}

// SessionStore is where the middleware keeps login sessions. Extracting it
// from the middleware means multiple console replicas can later share one
// store (the ROADMAP's session-persistence item): the middleware never
// assumes the token it minted is still in memory, only that the store
// answers.
//
// Implementations must be safe for concurrent use; every console request
// resolves its token through the store.
type SessionStore interface {
	// Get returns the session for a token, if present (expired sessions may
	// still be returned; the middleware checks expiry and Deletes).
	Get(token string) (Session, bool)
	// Put stores a session under a token, replacing any existing one.
	Put(token string, s Session)
	// Delete removes a token; absent tokens are a no-op.
	Delete(token string)
	// Count returns the number of stored sessions, expired or not.
	Count() int
	// ExpireBefore removes every session whose expiry is set and before t,
	// returning how many were reaped.
	ExpireBefore(t time.Time) int
}

// MemorySessionStore is the default store: an in-memory TTL map, scoped to
// one process — a restart logs everyone out, which is exactly the
// limitation the interface exists to lift.
type MemorySessionStore struct {
	mu sync.Mutex
	m  map[string]Session
}

// NewMemorySessionStore creates an empty in-memory store.
func NewMemorySessionStore() *MemorySessionStore {
	return &MemorySessionStore{m: make(map[string]Session)}
}

// Get implements SessionStore.
func (s *MemorySessionStore) Get(token string) (Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.m[token]
	return sess, ok
}

// Put implements SessionStore.
func (s *MemorySessionStore) Put(token string, sess Session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[token] = sess
}

// Delete implements SessionStore.
func (s *MemorySessionStore) Delete(token string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, token)
}

// Count implements SessionStore.
func (s *MemorySessionStore) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// ExpireBefore implements SessionStore.
func (s *MemorySessionStore) ExpireBefore(t time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for tok, sess := range s.m {
		if !sess.Expires.IsZero() && t.After(sess.Expires) {
			delete(s.m, tok)
			n++
		}
	}
	return n
}
