package tukey

import (
	"hash/fnv"
	"sync"
	"time"
)

// Session is one logged-in identity plus its wall-clock expiry (zero =
// never expires).
type Session struct {
	Identity Identity
	Expires  time.Time
}

// expired reports whether the session is past its expiry at now.
func (s Session) expired(now time.Time) bool {
	return !s.Expires.IsZero() && now.After(s.Expires)
}

// SessionStore is where the middleware keeps login sessions. Extracting it
// from the middleware means multiple console replicas can share one store
// (the shared state plane): the middleware never assumes the token it
// minted is still in memory, only that the store answers.
//
// Implementations must be safe for concurrent use; every console request
// resolves its token through the store.
type SessionStore interface {
	// Get returns the session for a token, if present (expired sessions may
	// still be returned; the middleware checks expiry and Deletes).
	Get(token string) (Session, bool)
	// Put stores a session under a token, replacing any existing one.
	Put(token string, s Session)
	// Delete removes a token; absent tokens are a no-op.
	Delete(token string)
	// Count returns the number of stored sessions, expired or not.
	Count() int
	// ExpireBefore removes every session whose expiry is set and before t,
	// returning how many were reaped.
	ExpireBefore(t time.Time) int
}

// sessionShards is MemorySessionStore's shard count. The in-memory store
// is what the state plane serves to every console replica, so its lock is
// hit by every request from every replica; splitting the token space by
// hash keeps one hot shard from queueing the rest (the same treatment the
// rate limiter's bucket map gets).
const sessionShards = 16

// MemorySessionStore is the default store: an in-memory TTL map, sharded
// by token hash, scoped to one process. Put behind the tukeystate server
// it becomes the shared backend N console replicas resolve tokens against.
type MemorySessionStore struct {
	shards [sessionShards]sessionShard
}

type sessionShard struct {
	mu sync.Mutex
	m  map[string]Session
}

// NewMemorySessionStore creates an empty in-memory store.
func NewMemorySessionStore() *MemorySessionStore {
	s := &MemorySessionStore{}
	for i := range s.shards {
		s.shards[i].m = make(map[string]Session)
	}
	return s
}

func (s *MemorySessionStore) shardFor(token string) *sessionShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(token))
	return &s.shards[h.Sum32()%sessionShards]
}

// Get implements SessionStore.
func (s *MemorySessionStore) Get(token string) (Session, bool) {
	sh := s.shardFor(token)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sess, ok := sh.m[token]
	return sess, ok
}

// Put implements SessionStore.
func (s *MemorySessionStore) Put(token string, sess Session) {
	sh := s.shardFor(token)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.m[token] = sess
}

// Delete implements SessionStore.
func (s *MemorySessionStore) Delete(token string) {
	sh := s.shardFor(token)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.m, token)
}

// Count implements SessionStore.
func (s *MemorySessionStore) Count() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// ExpireBefore implements SessionStore.
func (s *MemorySessionStore) ExpireBefore(t time.Time) int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for tok, sess := range sh.m {
			if !sess.Expires.IsZero() && t.After(sess.Expires) {
				delete(sh.m, tok)
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}
