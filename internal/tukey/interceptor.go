package tukey

import (
	"context"
	"encoding/json"
	"net/http"
	"sync/atomic"
)

// Interceptor wraps an http.Handler with one console concern. The console
// used to be a monolithic switch doing auth, admission control and routing
// in one body; decomposing it into chained interceptors (the conduit-bmc
// gateway shape) makes each layer's state dependency explicit — the auth
// layer touches only the SessionStore, the rate-limit layer only the
// Limiter — which is what lets N stateless replicas share both through
// the tukeystate plane.
type Interceptor func(http.Handler) http.Handler

// Chain composes interceptors around h. The first interceptor is the
// outermost layer: Chain(h, a, b) runs a, then b, then h.
func Chain(h http.Handler, layers ...Interceptor) http.Handler {
	for i := len(layers) - 1; i >= 0; i-- {
		h = layers[i](h)
	}
	return h
}

// ctxKey namespaces the console's request-context values.
type ctxKey int

const (
	sessionCtxKey ctxKey = iota
	loginCtxKey
)

// sessionInfo is what the auth layer learned about a request: the resolved
// identity, or the fact that the token was missing/invalid/expired.
type sessionInfo struct {
	id Identity
	ok bool
}

// loginRequest is the parsed /login body, decoded once by the parseLogin
// layer and consumed by both the rate-limit layer (the attempted username
// is the charge key) and the login handler.
type loginRequest struct {
	Provider string `json:"provider"`
	Username string `json:"username"`
	Secret   string `json:"secret"`
}

// sessionFrom extracts the auth layer's verdict from the request context.
func sessionFrom(r *http.Request) (sessionInfo, bool) {
	si, ok := r.Context().Value(sessionCtxKey).(sessionInfo)
	return si, ok
}

// loginFrom extracts the parsed login body from the request context.
func loginFrom(r *http.Request) (*loginRequest, bool) {
	lr, ok := r.Context().Value(loginCtxKey).(*loginRequest)
	return lr, ok
}

// authenticate resolves the X-Tukey-Session token into the request
// context. It never writes a response itself: whether an unauthenticated
// request is rejected (401) or throttled first (429) belongs to the layers
// downstream — the rate-limit layer sees the failed auth and charges the
// shared invalid-session bucket before enforceSession writes the 401, so
// token guessing is throttled exactly as it was in the monolithic console.
func (c *Console) authenticate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id, ok := c.MW.identityFor(r.Header.Get("X-Tukey-Session"))
		ctx := context.WithValue(r.Context(), sessionCtxKey, sessionInfo{id: id, ok: ok})
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// rateLimit charges the route's weighted cost against the caller's bucket:
// the resolved identity for authenticated requests, the attempted username
// for /login, and the shared invalid-session bucket for everything else.
// An exhausted bucket answers 429 and stops the chain.
func (c *Console) rateLimit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := invalidSessionKey
		if si, ok := sessionFrom(r); ok && si.ok {
			key = si.id.Identifier
		} else if lr, ok := loginFrom(r); ok {
			key = lr.Username
		}
		if !c.allow(w, key, routeCost(r.Method, r.URL.Path)) {
			return
		}
		next.ServeHTTP(w, r)
	})
}

// enforceSession rejects requests the auth layer could not resolve. It
// runs after the rate-limit layer so a rejected request has already been
// charged to the invalid-session bucket.
func (c *Console) enforceSession(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if si, ok := sessionFrom(r); !ok || !si.ok {
			writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "invalid or missing session"})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// parseLogin decodes the /login body into the context. A malformed body is
// a 400 before any bucket is charged — the charge key is the attempted
// username, which a body that does not parse cannot assert.
func (c *Console) parseLogin(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req loginRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		ctx := context.WithValue(r.Context(), loginCtxKey, &req)
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// allow charges cost rate-limit tokens for key, answering 429 when the
// caller's bucket is exhausted. With no Limiter configured everything
// passes.
func (c *Console) allow(w http.ResponseWriter, key string, cost float64) bool {
	if c.Limiter == nil || c.Limiter.AllowN(key, cost) {
		return true
	}
	atomic.AddInt64(&c.RateLimited, 1)
	writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "rate limit exceeded for " + key})
	return false
}
