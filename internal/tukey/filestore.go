package tukey

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// FileSessionStore is the persistent SessionStore: an in-memory map backed
// by an append-only log. Each mutation (put, delete, expiry sweep) appends
// one JSON line; construction replays the log and compacts it back to a
// header plus one put per live session. A console restart pointed at the
// same -session-file keeps every live session valid — the ROADMAP's "a
// restart logs everyone out" limitation, lifted.
//
// The log replaces the v1 whole-file rewrite: with sliding-TTL refresh
// every console request may touch the store, and rewriting the entire
// session map per touch is O(sessions) work and an fsync on the hot path.
// An append is O(1) regardless of how many sessions are live. The file
// only shrinks at load time; a long-lived process's log grows with
// mutation count, which is the usual append-only trade and is bounded in
// practice by restart cadence.
//
// One process owns the file at a time — concurrent *stores* on one path
// would interleave appends but replay each other's tail only on reload.
// Replicas that need a truly shared store use the tukeystate plane, not a
// shared file.
type FileSessionStore struct {
	mu   sync.Mutex
	m    map[string]Session
	path string
	// pending queues serialized log records under mu; flush drains it to
	// the file under writeMu with mu released, so Gets (every console
	// request resolves its token here) never stall behind an fsync while
	// append order still matches mutation order.
	pending [][]byte
	saveErr error

	writeMu sync.Mutex
	f       *os.File // lazily opened O_APPEND handle
}

// logVersion is the append-log format version (v1 was the whole-file
// snapshot; loading still migrates it).
const logVersion = 2

// fileSessionWire is the v1 on-disk form, kept for migration: a file that
// parses as one JSON object with version 1 is an old snapshot.
type fileSessionWire struct {
	Version  int                `json:"version"`
	Sessions map[string]Session `json:"sessions"`
}

// logHeader is the first line of a v2 log.
type logHeader struct {
	Version int `json:"version"`
}

// logRecord is one appended mutation.
type logRecord struct {
	Op      string     `json:"op"` // "put" | "del" | "expire"
	Token   string     `json:"token,omitempty"`
	Session *Session   `json:"session,omitempty"`
	Before  *time.Time `json:"before,omitempty"`
}

// NewFileSessionStore opens (or creates) the store at path, replaying any
// log a previous process appended and compacting it: the rewritten file
// holds the header and one put per live session, so log growth is bounded
// by mutations since the last open, not since the file was created.
func NewFileSessionStore(path string) (*FileSessionStore, error) {
	s := &FileSessionStore{m: make(map[string]Session), path: path}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("tukey: session file: %w", err)
	}
	if err := s.load(raw); err != nil {
		return nil, err
	}
	if err := s.compact(); err != nil {
		return nil, fmt.Errorf("tukey: session file %s: compact: %w", path, err)
	}
	return s, nil
}

// load parses raw as a v2 append log, falling back to the v1 snapshot form
// for migration. Any line that does not parse marks the file corrupt: a
// torn final append would also fail here, but the store never syncs a
// partial line (records are written whole), so a torn line means foreign
// writes, and silently dropping it could resurrect a deleted session.
func (s *FileSessionStore) load(raw []byte) error {
	corrupt := func(err error) error {
		return fmt.Errorf("tukey: session file %s is corrupt: %w", s.path, err)
	}
	// v1 files are a single JSON object; try that form first.
	var wire fileSessionWire
	if err := json.Unmarshal(raw, &wire); err == nil {
		if wire.Version <= 1 {
			if wire.Sessions != nil {
				s.m = wire.Sessions
			}
			return nil
		}
		// A bare v2 header with no records (valid empty log).
		return nil
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return corrupt(fmt.Errorf("empty log"))
	}
	var hdr logHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Version != logVersion {
		return corrupt(fmt.Errorf("bad log header %q", sc.Text()))
	}
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec logRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return corrupt(err)
		}
		switch rec.Op {
		case "put":
			if rec.Session == nil {
				return corrupt(fmt.Errorf("put record without session"))
			}
			s.m[rec.Token] = *rec.Session
		case "del":
			delete(s.m, rec.Token)
		case "expire":
			if rec.Before == nil {
				return corrupt(fmt.Errorf("expire record without bound"))
			}
			for tok, sess := range s.m {
				if !sess.Expires.IsZero() && rec.Before.After(sess.Expires) {
					delete(s.m, tok)
				}
			}
		default:
			return corrupt(fmt.Errorf("unknown op %q", rec.Op))
		}
	}
	if err := sc.Err(); err != nil {
		return corrupt(err)
	}
	return nil
}

// compact rewrites the file as a fresh log (header + one put per live
// session) via temp file, fsync, rename — atomic, so a crash mid-compact
// leaves the old log intact.
func (s *FileSessionStore) compact() error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	_ = enc.Encode(logHeader{Version: logVersion})
	for tok, sess := range s.m {
		sess := sess
		_ = enc.Encode(logRecord{Op: "put", Token: tok, Session: &sess})
	}
	tmp, err := os.CreateTemp(filepath.Dir(s.path), ".sessions-*")
	if err != nil {
		return err
	}
	_, err = tmp.Write(buf.Bytes())
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// append serializes rec onto the pending queue under s.mu (which the
// caller holds), then drains the queue to disk with s.mu released. Errors
// are logged on transition and remembered (Err) rather than failing the
// session operation: losing persistence degrades to in-memory behavior,
// it does not log the current user out — but it must not do so silently,
// or the operator discovers it at the next restart.
func (s *FileSessionStore) append(rec logRecord) {
	line, err := json.Marshal(rec)
	if err != nil {
		// A Session is plain data; this cannot happen, but never drop a
		// mutation silently.
		s.noteErrLocked(err)
		return
	}
	s.pending = append(s.pending, append(line, '\n'))
	s.mu.Unlock()
	defer s.mu.Lock()

	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	// Drain everything queued — possibly including records queued by other
	// goroutines while we waited on writeMu; whoever gets here first writes
	// them in queue (= mutation) order.
	s.mu.Lock()
	batch := s.pending
	s.pending = nil
	s.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	err = s.flushLocked(batch)

	s.mu.Lock()
	s.noteErrLocked(err)
	s.mu.Unlock()
}

// noteErrLocked records a persistence error (or clears it), logging the
// failure transition. Callers hold s.mu.
func (s *FileSessionStore) noteErrLocked(err error) {
	if err != nil && s.saveErr == nil {
		log.Printf("tukey: session store %s: persistence failing, sessions will not survive a restart: %v", s.path, err)
	}
	s.saveErr = err
}

// flushLocked appends batch to the log file, opening it (with a header if
// new) on first use. Callers hold s.writeMu.
func (s *FileSessionStore) flushLocked(batch [][]byte) error {
	if s.f == nil {
		f, fresh, err := s.openAppend()
		if err != nil {
			return err
		}
		if fresh {
			hdr, _ := json.Marshal(logHeader{Version: logVersion})
			if _, err := f.Write(append(hdr, '\n')); err != nil {
				f.Close()
				return err
			}
		}
		s.f = f
	}
	var buf bytes.Buffer
	for _, line := range batch {
		buf.Write(line)
	}
	if _, err := s.f.Write(buf.Bytes()); err != nil {
		return err
	}
	return s.f.Sync()
}

// openAppend opens the log for appending, reporting whether the file is
// fresh (needs a header).
func (s *FileSessionStore) openAppend() (*os.File, bool, error) {
	f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o600)
	if err != nil {
		return nil, false, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, false, err
	}
	return f, st.Size() == 0, nil
}

// Err reports the most recent persistence failure, nil when the last write
// (if any) landed.
func (s *FileSessionStore) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saveErr
}

// Path returns the backing file's path.
func (s *FileSessionStore) Path() string { return s.path }

// Get implements SessionStore.
func (s *FileSessionStore) Get(token string) (Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.m[token]
	return sess, ok
}

// Put implements SessionStore.
func (s *FileSessionStore) Put(token string, sess Session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[token] = sess
	s.append(logRecord{Op: "put", Token: token, Session: &sess})
}

// Delete implements SessionStore.
func (s *FileSessionStore) Delete(token string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[token]; !ok {
		return
	}
	delete(s.m, token)
	s.append(logRecord{Op: "del", Token: token})
}

// Count implements SessionStore.
func (s *FileSessionStore) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// ExpireBefore implements SessionStore.
func (s *FileSessionStore) ExpireBefore(t time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for tok, sess := range s.m {
		if !sess.Expires.IsZero() && t.After(sess.Expires) {
			delete(s.m, tok)
			n++
		}
	}
	if n > 0 {
		t := t
		s.append(logRecord{Op: "expire", Before: &t})
	}
	return n
}
