package tukey

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// FileSessionStore is the persistent SessionStore: an in-memory map backed
// by a JSON file, rewritten atomically (write temp file, fsync, rename) on
// every mutation and loaded on construction. A console restart pointed at
// the same -session-file keeps every live session valid — the ROADMAP's
// "a restart logs everyone out" limitation, lifted.
//
// The write amplification is one file per login/logout/expiry sweep, which
// is fine for console-scale session churn; a wire-backed store can replace
// this behind the same interface when it is not.
type FileSessionStore struct {
	mu   sync.Mutex
	m    map[string]Session
	path string
	// gen stamps each mutation; a writer only lands its snapshot if no
	// newer generation beat it to the file, so concurrent mutations can
	// never roll the file back to a stale state.
	gen     uint64
	saveErr error

	// writeMu serializes the marshal/write/rename dance, which happens
	// with mu released: every console request resolves its token through
	// Get on mu, and Gets must not stall behind an fsync.
	writeMu sync.Mutex
	written uint64 // newest generation persisted
}

// fileSessionWire is the on-disk form: versioned so a future store can
// migrate old files.
type fileSessionWire struct {
	Version  int                `json:"version"`
	Sessions map[string]Session `json:"sessions"`
}

// NewFileSessionStore opens (or creates) the store at path, loading any
// sessions a previous process persisted.
func NewFileSessionStore(path string) (*FileSessionStore, error) {
	s := &FileSessionStore{m: make(map[string]Session), path: path}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("tukey: session file: %w", err)
	}
	var wire fileSessionWire
	if err := json.Unmarshal(raw, &wire); err != nil {
		return nil, fmt.Errorf("tukey: session file %s is corrupt: %w", path, err)
	}
	if wire.Sessions != nil {
		s.m = wire.Sessions
	}
	return s, nil
}

// persist snapshots the sessions under s.mu (which the caller holds),
// then rewrites the file atomically with s.mu *released*. Errors are
// logged on transition and remembered (Err) rather than failing the
// session operation: losing persistence degrades to the in-memory
// behavior, it does not log the current user out — but it must not do so
// silently, or the operator discovers it at the next restart.
func (s *FileSessionStore) persist() {
	snap := make(map[string]Session, len(s.m))
	for tok, sess := range s.m {
		snap[tok] = sess
	}
	s.gen++
	gen := s.gen
	s.mu.Unlock()
	defer s.mu.Lock()

	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if gen <= s.written {
		// A mutation that happened after ours already landed its (newer)
		// snapshot; writing ours would roll the file backwards.
		return
	}
	err := writeAtomic(s.path, snap)
	s.written = gen

	s.mu.Lock()
	if err != nil && s.saveErr == nil {
		log.Printf("tukey: session store %s: persistence failing, sessions will not survive a restart: %v", s.path, err)
	}
	s.saveErr = err
	s.mu.Unlock()
}

// writeAtomic lands one snapshot: temp file, fsync, rename.
func writeAtomic(path string, snap map[string]Session) error {
	raw, err := json.MarshalIndent(fileSessionWire{Version: 1, Sessions: snap}, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".sessions-*")
	if err != nil {
		return err
	}
	_, err = tmp.Write(raw)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Err reports the most recent persistence failure, nil when the last write
// (if any) landed.
func (s *FileSessionStore) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saveErr
}

// Path returns the backing file's path.
func (s *FileSessionStore) Path() string { return s.path }

// Get implements SessionStore.
func (s *FileSessionStore) Get(token string) (Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.m[token]
	return sess, ok
}

// Put implements SessionStore.
func (s *FileSessionStore) Put(token string, sess Session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[token] = sess
	s.persist()
}

// Delete implements SessionStore.
func (s *FileSessionStore) Delete(token string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[token]; !ok {
		return
	}
	delete(s.m, token)
	s.persist()
}

// Count implements SessionStore.
func (s *FileSessionStore) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// ExpireBefore implements SessionStore.
func (s *FileSessionStore) ExpireBefore(t time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for tok, sess := range s.m {
		if !sess.Expires.IsZero() && t.After(sess.Expires) {
			delete(s.m, tok)
			n++
		}
	}
	if n > 0 {
		s.persist()
	}
	return n
}
